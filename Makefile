# Canonical repo checks. `make check` is the gate every change must pass:
# vet + build + the full test suite under the race detector (the
# concurrent pipeline is only trustworthy race-clean).

GO ?= go

.PHONY: check vet build test test-race bench bench-pipeline serve

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Microbenchmarks (one pass; raise -benchtime for stable numbers).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Throughput trajectory of the batched paths only.
bench-pipeline:
	$(GO) test -bench 'MatVecBatch|Pipeline' -run '^$$' .

# Run the HTTP serving layer locally (docs/SERVER.md). Override flags:
#   make serve SERVE_FLAGS='-addr :9090 -fidelity physical-noisy'
serve:
	$(GO) run ./cmd/lightator-serve $(SERVE_FLAGS)
