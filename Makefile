# Canonical repo checks. `make check` is the gate every change must pass:
# vet + build + the full test suite under the race detector (the
# concurrent pipeline is only trustworthy race-clean) + the docs link
# checker (relative links in *.md must resolve).

GO ?= go

.PHONY: check vet build test test-race linkcheck metricscheck wirecompat fuzz paper bench bench-pipeline bench-kernels bench-infer bench-stream bench-profile benchdiff serve

check: vet build test-race linkcheck metricscheck wirecompat

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Coverage-guided fuzz smoke over the wire codecs and the /v1/process
# JSON decoder (seed corpora in internal/server/testdata/fuzz). Each
# target needs its own invocation: -fuzz accepts exactly one match.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzDecodeImage$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzProcessRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fault -run '^$$' -fuzz '^FuzzFaultPlan$$' -fuzztime $(FUZZTIME)

# Fail on broken relative links in the repo's markdown files.
linkcheck:
	$(GO) run ./cmd/linkcheck

# Fail when docs/OBSERVABILITY.md documents a metric series that a live
# /metrics scrape does not export (the linkcheck pattern, for metrics).
metricscheck:
	$(GO) run ./cmd/metricscheck

# Wire-compatibility gate: the committed golden bodies under
# internal/server/testdata/wire/ must keep strict-decoding into the
# current v1 types (docs/API.md#compatibility).
wirecompat:
	$(GO) test ./internal/server -run '^TestWireCompat$$' -count 1

# Regenerate the continuously-verified paper-claims table (markdown;
# exits non-zero on drift). CI uploads this as the paper-claims artifact.
paper:
	$(GO) run ./cmd/lightator-bench -paper

# Microbenchmarks (one pass; raise -benchtime for stable numbers).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Throughput trajectory of the batched paths only.
bench-pipeline:
	$(GO) test -bench 'MatVecBatch|Pipeline' -run '^$$' .

# Per-kernel compressed-domain throughput (docs/KERNELS.md).
bench-kernels:
	$(GO) run ./cmd/lightator-bench -batch 16 -kernels

# Per-model compressed-domain inference throughput + optical-vs-reference
# agreement (docs/INFER.md).
bench-infer:
	$(GO) run ./cmd/lightator-bench -batch 16 -infer

# Streaming session vs per-frame baseline on a mostly-static scene
# sequence: temporal delta reuse should win (docs/SERVER.md#sessions).
bench-stream:
	$(GO) run ./cmd/lightator-bench -stream

# CPU + allocation profiles of the pipeline bench, so the next perf PR
# starts from a pprof, not a guess (docs/PERF.md explains how to read
# them): go tool pprof cpu.pprof / go tool pprof -sample_index=alloc_objects mem.pprof
bench-profile:
	$(GO) run ./cmd/lightator-bench -batch 16 -workers 2 -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof + mem.pprof (go tool pprof <file>)"

# Bench-regression smoke gate: a fresh -json run must stay within 30% of
# the latest committed BENCH_*.json on every matched record, and may not
# allocate more per MVM than the baseline (CI runs this; cross-CPU runs
# skip the FPS part, see cmd/benchdiff). The two commands run
# sequentially through a temp file — piping them would compile the gate
# while the bench measures, skewing single-CPU numbers.
benchdiff:
	@tmp=$$(mktemp) && \
	$(GO) run ./cmd/lightator-bench -batch 16 -workers 2 -json -kernels -infer > $$tmp && \
	$(GO) run ./cmd/benchdiff -new $$tmp; rc=$$?; rm -f $$tmp; exit $$rc

# Run the HTTP serving layer locally (docs/SERVER.md). Override flags:
#   make serve SERVE_FLAGS='-addr :9090 -fidelity physical-noisy'
serve:
	$(GO) run ./cmd/lightator-serve $(SERVE_FLAGS)
