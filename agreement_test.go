package lightator_test

import (
	"testing"

	"lightator"
)

// TestModelAgreementAcrossCAPools pins the end-to-end optical fidelity
// of the built-in model zoo: at every served compression ratio the
// optical top-1 agreement against the digital-quantized reference must
// clear the zoo's floors (tiny-cnn >= 0.90, tiny-mlp >= 0.75) on the
// same structured-scene sweep the bench and GET /v1/models report.
// Before the calibrated apply path, tiny-mlp sat at ~0.19 — wide dense
// rows accumulate systematic crosstalk loss linearly with width.
func TestModelAgreementAcrossCAPools(t *testing.T) {
	floors := map[string]float64{
		"tiny-cnn": 0.90,
		"tiny-mlp": 0.75,
	}
	for _, pool := range []int{4, 8, 16} {
		cfg := lightator.DefaultConfig()
		cfg.CAPool = pool
		acc, err := lightator.New(cfg)
		if err != nil {
			t.Fatalf("pool %d: %v", pool, err)
		}
		for model, floor := range floors {
			agree, err := acc.ModelAgreement(model, lightator.DefaultAgreementFrames)
			if err != nil {
				t.Fatalf("pool %d %s: %v", pool, model, err)
			}
			if agree < floor {
				t.Errorf("pool %d: %s agreement %.3f below floor %.2f", pool, model, agree, floor)
			}
		}
	}
}

// TestModelAgreementErrors: unknown models are rejected, and a
// non-positive frame count falls back to the default sweep size.
func TestModelAgreementErrors(t *testing.T) {
	acc, err := lightator.New(lightator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.ModelAgreement("no-such-model", 4); err == nil {
		t.Fatal("unknown model accepted")
	}
	a, err := acc.ModelAgreement("tiny-mlp", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := acc.ModelAgreement("tiny-mlp", lightator.DefaultAgreementFrames)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("frames<=0 should use the default sweep: %v vs %v", a, b)
	}
}
