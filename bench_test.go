package lightator_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"lightator"
	"lightator/internal/dataset"
	"lightator/internal/experiments"
	"lightator/internal/infer"
	"lightator/internal/kernels"
	"lightator/internal/mapping"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/photonics"
	"lightator/internal/sensor"
	"lightator/internal/train"
)

// ---------------------------------------------------------------------------
// Device-level micro-benchmarks (E1 support).

// BenchmarkMRTransmission measures one add-drop transfer evaluation — the
// innermost operation of the exact photonic model (Fig. 1).
func BenchmarkMRTransmission(b *testing.B) {
	r := photonics.WeightBankRing(photonics.CBandCenter)
	lam := photonics.CBandCenter + 0.3e-9
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.ThroughTransmission(lam)
	}
	_ = sink
}

// BenchmarkSolveWeight measures programming one MR to a target weight
// (bisection over the detuning).
func BenchmarkSolveWeight(b *testing.B) {
	r := photonics.WeightBankRing(photonics.CBandCenter)
	for i := 0; i < b.N; i++ {
		if _, err := r.SolveWeight(photonics.CBandCenter, 0.42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBankModelCoefficients measures the quantized fast path: the
// 9-channel crosstalk-aware coefficients of one programmed arm.
func BenchmarkBankModelCoefficients(b *testing.B) {
	bm, err := photonics.NewBankModel(9, 4)
	if err != nil {
		b.Fatal(err)
	}
	levels := []int{0, 3, 7, 8, 11, 15, 5, 9, 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Coefficients(levels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOCMatVec measures one 64x81 photonic matrix-vector multiply
// through the physical (crosstalk) model, programming included.
func BenchmarkOCMatVec(b *testing.B) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	w := make([][]float64, 64)
	for r := range w {
		w[r] = make([]float64, 81)
		for i := range w[r] {
			w[r][i] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, 81)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MatVec(w, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensorCapture measures a full 256x256 ADC-less frame capture
// (mosaic, exposure, 983k comparator evaluations).
func BenchmarkSensorCapture(b *testing.B) {
	arr := sensor.Default()
	scene := sensor.NewImage(256, 256, 3)
	rng := rand.New(rand.NewSource(2))
	for i := range scene.Pix {
		scene.Pix[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.Capture(scene); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCACompress measures the Compressive Acquisitor: a 256x256
// frame fused to 128x128 grayscale through the optical path (E4 support).
func BenchmarkCACompress(b *testing.B) {
	acc, err := lightator.New(lightator.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	scene := lightator.NewImage(256, 256, 3)
	rng := rand.New(rand.NewSource(3))
	for i := range scene.Pix {
		scene.Pix[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.AcquireCompressed(scene); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhotonicLeNetForward measures one LeNet inference through the
// compiled photonic executor (crosstalk fidelity) — the end-to-end MVM
// path of Fig. 5.
func BenchmarkPhotonicLeNetForward(b *testing.B) {
	net := models.BuildLeNet(10, 4)
	net.InitHe(4)
	// Calibrate activation scales.
	rng := rand.New(rand.NewSource(5))
	x := nn.NewTensor(2, 1, 28, 28)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	if _, err := net.Forward(x, true); err != nil {
		b.Fatal(err)
	}
	nn.FreezeActQuant(net, true)
	nn.EnableQAT(net, 4)
	pe, err := nn.NewPhotonicExec(net, 4, oc.Physical)
	if err != nil {
		b.Fatal(err)
	}
	one := nn.NewTensor(1, 1, 28, 28)
	for i := range one.Data {
		one.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pe.Forward(one); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingEpoch measures one LeNet training epoch on synthetic
// digits (the application level of the evaluation framework, Fig. 7).
func BenchmarkTrainingEpoch(b *testing.B) {
	ds := dataset.NewDigits(256, 9)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := models.BuildLeNet(10, 4)
		net.InitHe(int64(i))
		cfg := train.DefaultConfig()
		cfg.Epochs = 1
		cfg.QATEpochs = 0
		cfg.Workers = 8
		b.StartTimer()
		if _, err := train.Train(net, ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// One benchmark per paper table/figure (DESIGN.md §3). The heavy ones
// memoise through the experiments engine, so iterations after the first
// are cheap.

// BenchmarkFig8LeNetPower regenerates Fig. 8 (E3) and reports the paper's
// headline: the [3:4] max power in watts.
func BenchmarkFig8LeNetPower(b *testing.B) {
	var maxP float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		maxP = res.Reports[1].MaxPower
	}
	b.ReportMetric(maxP, "maxPowerW[3:4]")
}

// BenchmarkFig9VGG9Power regenerates Fig. 9 (E4, E9) and reports the CA
// first-layer reduction percentage.
func BenchmarkFig9VGG9Power(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		red = res.L1Reduction * 100
	}
	b.ReportMetric(red, "L1reduction%")
}

// BenchmarkFig10ExecTime regenerates Fig. 10 (E6) and reports Lightator's
// AlexNet latency in ms.
func BenchmarkFig10ExecTime(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range res.Entries {
			if e.Design == "Lightator" {
				ms = e.AlexNet * 1e3
			}
		}
	}
	b.ReportMetric(ms, "alexnet-ms")
}

// BenchmarkTable1Comparison regenerates Table 1 (E5, E8, E10) at the
// Smoke training profile (the quick/full profiles are for
// cmd/lightator-bench). First iteration trains every configuration; the
// engine memoises afterwards.
func BenchmarkTable1Comparison(b *testing.B) {
	opt := experiments.Options{Profile: experiments.Smoke, Seed: 7, Workers: 8}
	var gpuReduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(opt)
		if err != nil {
			b.Fatal(err)
		}
		gpuReduction = res.PowerReductionGPU
	}
	b.ReportMetric(gpuReduction, "powerReductionVsGPU")
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md A1-A5).

// BenchmarkAblationCompressiveAcquisition (A1): CA on/off.
func BenchmarkAblationCompressiveAcquisition(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCA()
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.SpeedUp
	}
	b.ReportMetric(speedup, "frameSpeedup")
}

// BenchmarkAblationKernelMapping (A2): per-kernel-size MR utilisation.
func BenchmarkAblationKernelMapping(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationKernelMapping()
		if err != nil {
			b.Fatal(err)
		}
		util = rows[6].MRUtilisation // 7x7 kernel
	}
	b.ReportMetric(util*100, "7x7-utilisation%")
}

// BenchmarkAblationCrosstalkNoise (A3): accuracy across analog
// fidelities (trains one Smoke-profile LeNet on first iteration).
func BenchmarkAblationCrosstalkNoise(b *testing.B) {
	opt := experiments.Options{Profile: experiments.Smoke, Seed: 7, Workers: 8}
	var drop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationFidelity(opt)
		if err != nil {
			b.Fatal(err)
		}
		drop = (res.Ideal - res.PhysicalNoisy) * 100
	}
	b.ReportMetric(drop, "accDropCrosstalk+Noise-pts")
}

// BenchmarkAblationActivationModulation (A4): DMVA vs activation MRs.
func BenchmarkAblationActivationModulation(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		factor = experiments.AblationActivationModulation().Factor
	}
	b.ReportMetric(factor, "activationMR-overhead-x")
}

// BenchmarkAblationRemapLatency (A5): PIN vs thermal tuning.
func BenchmarkAblationRemapLatency(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRemapLatency("alexnet")
		if err != nil {
			b.Fatal(err)
		}
		slowdown = res.Slowdown
	}
	b.ReportMetric(slowdown, "thermal-slowdown-x")
}

// BenchmarkScheduleLayer measures the hardware mapper on a deep VGG
// layer.
func BenchmarkScheduleLayer(b *testing.B) {
	d := mapping.LayerDims{Kind: mapping.Conv, Name: "c", InC: 512, OutC: 512, K: 3, Stride: 1, Pad: 1, InH: 14, InW: 14}
	for i := 0; i < b.N; i++ {
		if _, err := mapping.ScheduleLayer(d); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Batched / concurrent path benchmarks. Every sub-benchmark reports
// frames/sec so successive PRs have a throughput trajectory to compare
// against. Worker sweeps cover {1, 2, 4, NumCPU}, batches {1, 16, 64}.

// benchWorkerCounts is the deduplicated worker sweep.
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

var benchBatchSizes = []int{1, 16, 64}

// BenchmarkMatVecBatch measures the batched MVM path: a 512x243 weight
// matrix programmed once (MR tuning is the slow, amortised step), then
// activation frames streamed through with the matrix rows sharded across
// workers — the oc.MatVecBatch row-sharding model.
func BenchmarkMatVecBatch(b *testing.B) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	w := make([][]float64, 512)
	for r := range w {
		w[r] = make([]float64, 243)
		for i := range w[r] {
			w[r][i] = rng.Float64()*2 - 1
		}
	}
	pm, err := core.Program(w)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range benchWorkerCounts() {
		for _, batch := range benchBatchSizes {
			xs := make([][]float64, batch)
			for i := range xs {
				xs[i] = make([]float64, 243)
				for j := range xs[i] {
					xs[i][j] = rng.Float64()
				}
			}
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for f, x := range xs {
						if _, err := pm.ApplyParallel(x, workers, oc.DeriveSeed(3, f)); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "frames/sec")
			})
		}
	}
}

// BenchmarkPipeline measures the end-to-end concurrent frame pipeline
// (capture + compressive acquisition) on a 64x64 sensor.
func BenchmarkPipeline(b *testing.B) {
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 64, 64
	acc, err := lightator.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for _, workers := range benchWorkerCounts() {
		for _, batch := range benchBatchSizes {
			scenes := make([]*lightator.Image, batch)
			for i := range scenes {
				s := lightator.NewImage(64, 64, 3)
				for j := range s.Pix {
					s.Pix[j] = rng.Float64()
				}
				scenes[i] = s
			}
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := p.Run(scenes); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "frames/sec")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Allocation-free MVM hot path (PR 5). Run with -benchmem: the *Into
// benchmarks are the committed record of the 0 allocs/op steady-state
// contract that cmd/benchdiff gates (docs/PERF.md).

// benchProgrammed programs a deterministic 64x243 matrix (27 arms/row).
func benchProgrammed(b *testing.B, fid oc.Fidelity) *oc.ProgrammedMatrix {
	b.Helper()
	core, err := oc.NewCore(4, 4, fid)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	w := make([][]float64, 64)
	for r := range w {
		w[r] = make([]float64, 243)
		for i := range w[r] {
			w[r][i] = rng.Float64()*2 - 1
		}
	}
	pm, err := core.Program(w)
	if err != nil {
		b.Fatal(err)
	}
	return pm
}

// BenchmarkApplySeededInto measures the steady-state destination-passing
// MVM — the path every kernel window, im2col patch and CA window funnels
// through. Expect 0 allocs/op in both fidelities.
func BenchmarkApplySeededInto(b *testing.B) {
	for _, tc := range []struct {
		name string
		fid  oc.Fidelity
	}{{"ideal", oc.Ideal}, {"physical-noisy", oc.PhysicalNoisy}} {
		b.Run(tc.name, func(b *testing.B) {
			pm := benchProgrammed(b, tc.fid)
			rng := rand.New(rand.NewSource(3))
			x := make([]float64, pm.Cols())
			for i := range x {
				x[i] = rng.Float64()
			}
			y := make([]float64, pm.Rows())
			if err := pm.ApplySeededInto(y, x, 1); err != nil { // warm the pools
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pm.ApplySeededInto(y, x, oc.DeriveSeed(3, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApplierSeededInto measures the reusable-scratch variant tight
// loops use (one Applier per goroutine, no pool round-trips).
func BenchmarkApplierSeededInto(b *testing.B) {
	for _, tc := range []struct {
		name string
		fid  oc.Fidelity
	}{{"ideal", oc.Ideal}, {"physical-noisy", oc.PhysicalNoisy}} {
		b.Run(tc.name, func(b *testing.B) {
			pm := benchProgrammed(b, tc.fid)
			ap := pm.NewApplier()
			rng := rand.New(rand.NewSource(3))
			x := make([]float64, pm.Cols())
			for i := range x {
				x[i] = rng.Float64()
			}
			y := make([]float64, pm.Rows())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ap.ApplySeededInto(y, x, oc.DeriveSeed(3, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressSeeded measures one seeded CA pass over a full 256x256
// frame — the per-frame pipeline stage (4096 windows of 16 taps).
func BenchmarkCompressSeeded(b *testing.B) {
	core, err := oc.NewCore(4, 4, oc.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	ca, err := oc.NewAcquisitor(core, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	f := &sensor.Frame{Rows: 256, Cols: 256, Codes: make([]uint8, 256*256)}
	for i := range f.Codes {
		f.Codes[i] = uint8(rng.Intn(16))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ca.CompressSeeded(f, oc.DeriveSeed(5, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelApply measures the streamed compressed-domain window
// walk over a 64x64 CA plane (the /v1/process hot path).
func BenchmarkKernelApply(b *testing.B) {
	core, err := oc.NewCore(4, 4, oc.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	e, err := kernels.NewEngine(core, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	plane := sensor.NewImage(64, 64, 1)
	for i := range plane.Pix {
		plane.Pix[i] = rng.Float64()
	}
	for _, name := range []string{"edge", "denoise", "reconstruct"} {
		k, err := e.Kernel(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.Apply(plane, oc.DeriveSeed(7, i), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInferApply measures one compressed-domain inference pass over
// a 64x64 CA plane (the /v1/infer hot path, streamed im2col).
func BenchmarkInferApply(b *testing.B) {
	core, err := oc.NewCore(4, 4, oc.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	e, err := infer.NewEngine(core, 4, 64, 64, 7)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	plane := sensor.NewImage(64, 64, 1)
	for i := range plane.Pix {
		plane.Pix[i] = rng.Float64()
	}
	for _, name := range e.Names() {
		m, err := e.Model(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Apply(plane, oc.DeriveSeed(9, i), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
