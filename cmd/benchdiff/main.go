// Command benchdiff is the CI bench-regression smoke gate: it compares a
// fresh `lightator-bench -json` run against the latest committed
// BENCH_*.json baseline and fails (exit 1) when a matched record's
// throughput regressed by more than the threshold.
//
// Records match on (batch, workers) for the top-level pipeline number,
// and by name for the per-kernel and per-model sweep records. Runs from
// different environments are not comparable: when the CPU count differs
// between baseline and fresh run — including the single-CPU container
// caveat the bench records — the gate reports the mismatch and passes,
// rather than failing on numbers that never measured the same machine.
//
// The gate additionally pins two deterministic records that apply even
// across environments: the steady-state MVM allocation count
// (allocs_per_op — the fresh run may not allocate more per
// oc.ApplySeededInto call than the committed baseline) and each model's
// optical-vs-reference top-1 agreement (reference_agreement — the fresh
// run may not fall below the committed baseline for the same sweep
// size).
//
// Usage:
//
//	lightator-bench -batch 16 -workers 2 -json -kernels -infer > /tmp/fresh.json
//	benchdiff -new /tmp/fresh.json              # baseline auto-picked from BENCH_*.json
//	benchdiff -old BENCH_PR4.json -new -        # explicit baseline, fresh run on stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// record is the subset of the lightator-bench -json report the gate
// reads. Unknown fields are ignored, so the gate survives report growth.
type record struct {
	Batch   int    `json:"batch"`
	Workers int    `json:"workers"`
	NumCPU  int    `json:"num_cpu"`
	Caveat  string `json:"caveat"`
	// AllocsPerOp is the steady-state MVM allocation count; nil when the
	// baseline predates the allocation gate.
	AllocsPerOp *float64 `json:"allocs_per_op"`
	Measured    struct {
		FPS float64 `json:"fps"`
	} `json:"measured"`
	Kernels []struct {
		Kernel string  `json:"kernel"`
		FPS    float64 `json:"fps"`
	} `json:"kernels"`
	Infer []struct {
		Model string  `json:"model"`
		FPS   float64 `json:"fps"`
		// ReferenceAgreement is the optical-vs-reference top-1 agreement;
		// nil when the baseline predates the agreement gate.
		ReferenceAgreement *float64 `json:"reference_agreement"`
	} `json:"infer"`
}

// diffLine is one matched record's comparison.
type diffLine struct {
	name      string
	oldFPS    float64
	newFPS    float64
	regressed bool
}

// compare matches the two records and flags every matched series whose
// fresh FPS fell below (1 - threshold) of the baseline. Baseline series
// absent from the fresh run come back in missing — the gate fails on
// them, otherwise a regression could hide behind a record that simply
// stopped being emitted (a legitimate removal means committing a new
// baseline). Fresh series with no baseline counterpart are fine: they
// gate from the next committed baseline on.
func compare(oldRec, newRec record, threshold float64) (lines []diffLine, missing []string, comparable bool, reason string) {
	if oldRec.NumCPU != newRec.NumCPU {
		return nil, nil, false, fmt.Sprintf("cpu count changed (%d -> %d); throughput not comparable across environments", oldRec.NumCPU, newRec.NumCPU)
	}
	if oldRec.Batch != newRec.Batch || oldRec.Workers != newRec.Workers {
		return nil, nil, false, fmt.Sprintf("bench shape changed (batch %d workers %d -> batch %d workers %d); no matched records",
			oldRec.Batch, oldRec.Workers, newRec.Batch, newRec.Workers)
	}
	floor := 1 - threshold
	add := func(name string, oldFPS, newFPS float64) {
		lines = append(lines, diffLine{
			name: name, oldFPS: oldFPS, newFPS: newFPS,
			regressed: oldFPS > 0 && newFPS < oldFPS*floor,
		})
	}
	add("pipeline", oldRec.Measured.FPS, newRec.Measured.FPS)
	newKernels := make(map[string]float64, len(newRec.Kernels))
	for _, k := range newRec.Kernels {
		newKernels[k.Kernel] = k.FPS
	}
	for _, k := range oldRec.Kernels {
		if fps, ok := newKernels[k.Kernel]; ok {
			add("kernel:"+k.Kernel, k.FPS, fps)
		} else {
			missing = append(missing, "kernel:"+k.Kernel)
		}
	}
	newModels := make(map[string]float64, len(newRec.Infer))
	for _, m := range newRec.Infer {
		newModels[m.Model] = m.FPS
	}
	for _, m := range oldRec.Infer {
		if fps, ok := newModels[m.Model]; ok {
			add("infer:"+m.Model, m.FPS, fps)
		} else {
			missing = append(missing, "infer:"+m.Model)
		}
	}
	return lines, missing, true, ""
}

// checkAllocs gates the steady-state MVM allocation record: the fresh
// count may not exceed the baseline's. Unlike throughput, allocation
// counts are deterministic and environment-independent, so this gate
// applies even when the FPS comparison is skipped. checked is false when
// the baseline predates the gate (no allocs_per_op field).
func checkAllocs(oldRec, newRec record) (line string, regressed, checked bool) {
	if oldRec.AllocsPerOp == nil {
		return "allocs/op: no baseline record (gate arms from the next committed baseline)", false, false
	}
	if newRec.AllocsPerOp == nil {
		return "allocs/op: MISSING from the fresh run", true, true
	}
	verdict := "ok"
	regressed = *newRec.AllocsPerOp > *oldRec.AllocsPerOp
	if regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("allocs/op: %.2f -> %.2f  %s", *oldRec.AllocsPerOp, *newRec.AllocsPerOp, verdict), regressed, true
}

// checkAgreement gates each model's optical-vs-reference top-1
// agreement: the fresh run may not fall below the committed baseline.
// Agreement is measured over a seeded structured-scene sweep, so for a
// given batch size it is deterministic and environment-independent (the
// infer determinism contract keeps worker counts unobservable) — like
// the alloc gate, it applies even when the FPS comparison is skipped.
// checked is false when the baseline predates the gate (no
// reference_agreement fields) or the sweep sizes differ.
func checkAgreement(oldRec, newRec record) (lines []string, regressions int, checked bool) {
	if oldRec.Batch != newRec.Batch {
		return []string{fmt.Sprintf("agreement: sweep size changed (batch %d -> %d); not comparable", oldRec.Batch, newRec.Batch)}, 0, false
	}
	fresh := make(map[string]*float64, len(newRec.Infer))
	for _, m := range newRec.Infer {
		fresh[m.Model] = m.ReferenceAgreement
	}
	for _, m := range oldRec.Infer {
		if m.ReferenceAgreement == nil {
			continue
		}
		checked = true
		na, ok := fresh[m.Model]
		switch {
		case !ok || na == nil:
			lines = append(lines, fmt.Sprintf("agreement:%-14s MISSING from the fresh run", m.Model))
			regressions++
		case *na < *m.ReferenceAgreement:
			lines = append(lines, fmt.Sprintf("agreement:%-14s %.4f -> %.4f  REGRESSED", m.Model, *m.ReferenceAgreement, *na))
			regressions++
		default:
			lines = append(lines, fmt.Sprintf("agreement:%-14s %.4f -> %.4f  ok", m.Model, *m.ReferenceAgreement, *na))
		}
	}
	return lines, regressions, checked
}

// latestBaseline picks the newest BENCH_*.json in dir under natural
// ordering (the repo convention: BENCH_PR3.json, BENCH_PR4.json, ... —
// digit runs compare numerically, so BENCH_PR10 sorts after BENCH_PR9).
func latestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) == 0 {
		return "", fmt.Errorf("benchdiff: no BENCH_*.json baseline in %s", dir)
	}
	sort.Slice(matches, func(i, j int) bool { return naturalLess(matches[i], matches[j]) })
	return matches[len(matches)-1], nil
}

// naturalLess compares strings with embedded integers numerically
// ("PR9" < "PR10").
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		if isDigit(a[0]) && isDigit(b[0]) {
			na, ra := takeNumber(a)
			nb, rb := takeNumber(b)
			if na != nb {
				return na < nb
			}
			a, b = ra, rb
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// takeNumber splits a leading digit run into its value and the rest.
func takeNumber(s string) (int64, string) {
	i := 0
	var n int64
	for i < len(s) && isDigit(s[i]) {
		n = n*10 + int64(s[i]-'0')
		i++
	}
	return n, s[i:]
}

// readRecord loads a bench record from a path, "-" meaning stdin.
func readRecord(path string, stdin io.Reader) (record, error) {
	var r io.Reader = stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return record{}, err
		}
		defer f.Close()
		r = f
	}
	var rec record
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return record{}, fmt.Errorf("benchdiff: parse %s: %w", path, err)
	}
	return rec, nil
}

// run executes the gate; exit status is the returned error's presence.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline bench JSON (default: latest BENCH_*.json in -dir)")
	dir := fs.String("dir", ".", "directory scanned for the default baseline")
	newPath := fs.String("new", "-", "fresh bench JSON (\"-\" = stdin)")
	threshold := fs.Float64("threshold", 0.30, "fail when a matched record loses more than this fraction of throughput")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold <= 0 || *threshold >= 1 {
		return fmt.Errorf("benchdiff: threshold %g outside (0, 1)", *threshold)
	}
	base := *oldPath
	if base == "" {
		var err error
		base, err = latestBaseline(*dir)
		if err != nil {
			return err
		}
	}
	if base == "-" && *newPath == "-" {
		return fmt.Errorf("benchdiff: only one of -old and -new can read stdin")
	}
	oldRec, err := readRecord(base, stdin)
	if err != nil {
		return err
	}
	newRec, err := readRecord(*newPath, stdin)
	if err != nil {
		return err
	}

	lines, missing, comparable, reason := compare(oldRec, newRec, *threshold)
	allocLine, allocRegressed, allocChecked := checkAllocs(oldRec, newRec)
	agreeLines, agreeRegressions, agreeChecked := checkAgreement(oldRec, newRec)
	if !comparable {
		// Throughput cannot be compared across environments, but the
		// allocation count and the seeded agreement sweep are
		// deterministic — gate them regardless.
		fmt.Fprintf(stdout, "benchdiff: FPS SKIP — %s\n", reason)
		fmt.Fprintf(stdout, "  %s\n", allocLine)
		for _, l := range agreeLines {
			fmt.Fprintf(stdout, "  %s\n", l)
		}
		if allocRegressed {
			return fmt.Errorf("benchdiff: steady-state MVM allocations regressed above the committed baseline")
		}
		if agreeRegressions > 0 {
			return fmt.Errorf("benchdiff: %d models' reference agreement regressed below the committed baseline", agreeRegressions)
		}
		return nil
	}
	if oldRec.Caveat != "" {
		fmt.Fprintf(stdout, "note: baseline caveat: %s\n", oldRec.Caveat)
	}
	regressions := 0
	fmt.Fprintf(stdout, "baseline %s vs fresh run (threshold -%.0f%%)\n", base, *threshold*100)
	for _, l := range lines {
		verdict := "ok"
		if l.regressed {
			verdict = "REGRESSED"
			regressions++
		}
		ratio := 0.0
		if l.oldFPS > 0 {
			ratio = l.newFPS / l.oldFPS
		}
		fmt.Fprintf(stdout, "  %-24s %10.1f -> %10.1f fps  (%.2fx)  %s\n", l.name, l.oldFPS, l.newFPS, ratio, verdict)
	}
	fmt.Fprintf(stdout, "  %s\n", allocLine)
	if allocRegressed {
		regressions++
	}
	for _, l := range agreeLines {
		fmt.Fprintf(stdout, "  %s\n", l)
	}
	regressions += agreeRegressions
	for _, name := range missing {
		fmt.Fprintf(stdout, "  %-24s MISSING from the fresh run\n", name)
	}
	if regressions > 0 || len(missing) > 0 {
		return fmt.Errorf("benchdiff: %d matched records regressed (FPS budget -%.0f%%, alloc and agreement budget 0), %d baseline records missing from the fresh run",
			regressions, *threshold*100, len(missing))
	}
	checkedNote := ""
	if allocChecked {
		checkedNote += " + alloc gate"
	}
	if agreeChecked {
		checkedNote += " + agreement gate"
	}
	fmt.Fprintf(stdout, "benchdiff: PASS — %d matched records within budget%s\n", len(lines), checkedNote)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h prints usage and exits 0, like flag.ExitOnError
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
