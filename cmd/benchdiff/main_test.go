package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mkRecord builds a bench record fixture.
func mkRecord(batch, workers, cpus int, pipelineFPS float64, kernels, models map[string]float64) record {
	var r record
	r.Batch, r.Workers, r.NumCPU = batch, workers, cpus
	r.Measured.FPS = pipelineFPS
	for name, fps := range kernels {
		r.Kernels = append(r.Kernels, struct {
			Kernel string  `json:"kernel"`
			FPS    float64 `json:"fps"`
		}{name, fps})
	}
	for name, fps := range models {
		r.Infer = append(r.Infer, struct {
			Model              string   `json:"model"`
			FPS                float64  `json:"fps"`
			ReferenceAgreement *float64 `json:"reference_agreement"`
		}{name, fps, nil})
	}
	return r
}

// withAgreement attaches a reference_agreement measurement to one of a
// fixture's infer records. The infer slice is copied so fixtures derived
// from a shared base stay independent.
func withAgreement(r record, model string, agreement float64) record {
	infer := append(r.Infer[:0:0], r.Infer...)
	r.Infer = infer
	for i := range r.Infer {
		if r.Infer[i].Model == model {
			r.Infer[i].ReferenceAgreement = &agreement
			return r
		}
	}
	panic("withAgreement: model not in fixture")
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldRec := mkRecord(16, 2, 1, 300, map[string]float64{"edge": 100, "denoise": 80}, map[string]float64{"tiny-mlp": 200})
	// edge lost 50% (> 30% budget), denoise improved, pipeline within
	// budget, tiny-mlp exactly at the floor (0.70) must NOT trip.
	newRec := mkRecord(16, 2, 1, 250, map[string]float64{"edge": 50, "denoise": 120}, map[string]float64{"tiny-mlp": 140})
	lines, missing, comparable, _ := compare(oldRec, newRec, 0.30)
	if !comparable {
		t.Fatal("same-shape records reported incomparable")
	}
	if len(missing) != 0 {
		t.Fatalf("nothing disappeared, but missing = %v", missing)
	}
	got := map[string]bool{}
	for _, l := range lines {
		got[l.name] = l.regressed
	}
	if len(lines) != 4 {
		t.Fatalf("matched %d records, want 4: %+v", len(lines), lines)
	}
	if !got["kernel:edge"] {
		t.Error("50% kernel regression not flagged")
	}
	if got["kernel:denoise"] || got["pipeline"] || got["infer:tiny-mlp"] {
		t.Errorf("false positives: %+v", got)
	}
}

func TestCompareSkipsAcrossEnvironments(t *testing.T) {
	oldRec := mkRecord(16, 2, 1, 300, nil, nil)
	// More CPUs on the fresh host: numbers are not comparable, the
	// single-CPU caveat of the baseline must not gate the multi-core run.
	newRec := mkRecord(16, 2, 8, 100, nil, nil)
	if _, _, comparable, reason := compare(oldRec, newRec, 0.30); comparable || reason == "" {
		t.Fatal("cross-environment records compared")
	}
	// Different bench shape: no matched records either.
	newRec = mkRecord(32, 4, 1, 100, nil, nil)
	if _, _, comparable, _ := compare(oldRec, newRec, 0.30); comparable {
		t.Fatal("different bench shapes compared")
	}
	// New kernels with no baseline counterpart are simply unmatched —
	// they gate from the next committed baseline on.
	newRec = mkRecord(16, 2, 1, 300, map[string]float64{"brand-new": 5}, nil)
	lines, missing, comparable, _ := compare(oldRec, newRec, 0.30)
	if !comparable || len(lines) != 1 || len(missing) != 0 {
		t.Fatalf("unmatched fresh kernel changed the comparison: %+v missing %v", lines, missing)
	}
}

// TestCompareFlagsDisappearedBaselines: a baseline series absent from
// the fresh run must be reported, so a regression cannot hide behind a
// record that stopped being emitted.
func TestCompareFlagsDisappearedBaselines(t *testing.T) {
	oldRec := mkRecord(16, 2, 1, 300, map[string]float64{"edge": 100}, map[string]float64{"tiny-mlp": 200})
	newRec := mkRecord(16, 2, 1, 300, nil, map[string]float64{"tiny-mlp": 190})
	_, missing, comparable, _ := compare(oldRec, newRec, 0.30)
	if !comparable {
		t.Fatal("same-shape records reported incomparable")
	}
	if len(missing) != 1 || missing[0] != "kernel:edge" {
		t.Fatalf("missing = %v, want [kernel:edge]", missing)
	}
}

// withAllocs attaches an allocs_per_op measurement to a fixture.
func withAllocs(r record, allocs float64) record {
	r.AllocsPerOp = &allocs
	return r
}

func TestCheckAllocs(t *testing.T) {
	base := mkRecord(16, 2, 1, 300, nil, nil)
	// No baseline record: unchecked, never a regression.
	if _, regressed, checked := checkAllocs(base, withAllocs(base, 3)); regressed || checked {
		t.Errorf("pre-gate baseline gated: regressed=%v checked=%v", regressed, checked)
	}
	// Equal or lower stays green; any increase above baseline trips.
	if _, regressed, _ := checkAllocs(withAllocs(base, 0), withAllocs(base, 0)); regressed {
		t.Error("0 -> 0 flagged")
	}
	if _, regressed, _ := checkAllocs(withAllocs(base, 2), withAllocs(base, 1)); regressed {
		t.Error("improvement flagged")
	}
	if _, regressed, _ := checkAllocs(withAllocs(base, 0), withAllocs(base, 0.5)); !regressed {
		t.Error("0 -> 0.5 not flagged")
	}
	// A fresh run that stopped measuring allocations fails the gate.
	if _, regressed, checked := checkAllocs(withAllocs(base, 0), base); !regressed || !checked {
		t.Error("vanished allocs_per_op not flagged")
	}
}

// TestRunAllocGateAcrossEnvironments: the FPS comparison is skipped on a
// CPU-count mismatch, but the allocation gate still applies.
func TestRunAllocGateAcrossEnvironments(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, filepath.Join(dir, "BENCH_PR5.json"), withAllocs(mkRecord(16, 2, 1, 300, nil, nil), 0))
	fresh := filepath.Join(dir, "fresh.json")
	writeFixture(t, fresh, withAllocs(mkRecord(16, 2, 8, 100, nil, nil), 2))
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err == nil {
		t.Fatalf("cross-environment alloc regression passed:\n%s", stdout.String())
	}
	// Same mismatch with clean allocations still passes.
	writeFixture(t, fresh, withAllocs(mkRecord(16, 2, 8, 100, nil, nil), 0))
	stdout.Reset()
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("clean cross-environment run failed: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "FPS SKIP") {
		t.Errorf("cross-environment FPS not skipped:\n%s", stdout.String())
	}
}

// TestRunAllocGateSameEnvironment: an allocation regression fails even
// when every FPS record is within budget.
func TestRunAllocGateSameEnvironment(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, filepath.Join(dir, "BENCH_PR5.json"), withAllocs(mkRecord(16, 2, 1, 300, nil, nil), 0))
	fresh := filepath.Join(dir, "fresh.json")
	writeFixture(t, fresh, withAllocs(mkRecord(16, 2, 1, 310, nil, nil), 4))
	var stdout, stderr bytes.Buffer
	err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr)
	if err == nil {
		t.Fatalf("alloc regression with healthy FPS passed:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "allocs/op") || !strings.Contains(stdout.String(), "REGRESSED") {
		t.Errorf("alloc regression not named:\n%s", stdout.String())
	}
}

func TestCheckAgreement(t *testing.T) {
	base := mkRecord(16, 2, 1, 300, nil, map[string]float64{"tiny-mlp": 200})
	// No baseline agreement records: unchecked, never a regression.
	if _, regressions, checked := checkAgreement(base, withAgreement(base, "tiny-mlp", 1.0)); regressions != 0 || checked {
		t.Errorf("pre-gate baseline gated: regressions=%d checked=%v", regressions, checked)
	}
	// Different sweep sizes are not comparable.
	bigger := mkRecord(32, 2, 1, 300, nil, map[string]float64{"tiny-mlp": 200})
	if _, regressions, checked := checkAgreement(withAgreement(base, "tiny-mlp", 1.0), withAgreement(bigger, "tiny-mlp", 0.5)); regressions != 0 || checked {
		t.Errorf("mismatched sweep sizes gated: regressions=%d checked=%v", regressions, checked)
	}
	// Equal or better stays green; any drop below baseline trips.
	if _, regressions, checked := checkAgreement(withAgreement(base, "tiny-mlp", 0.75), withAgreement(base, "tiny-mlp", 0.75)); regressions != 0 || !checked {
		t.Errorf("equal agreement flagged: regressions=%d checked=%v", regressions, checked)
	}
	if _, regressions, _ := checkAgreement(withAgreement(base, "tiny-mlp", 0.75), withAgreement(base, "tiny-mlp", 1.0)); regressions != 0 {
		t.Error("improvement flagged")
	}
	if _, regressions, _ := checkAgreement(withAgreement(base, "tiny-mlp", 1.0), withAgreement(base, "tiny-mlp", 0.9375)); regressions != 1 {
		t.Error("agreement drop not flagged")
	}
	// A fresh run that stopped measuring agreement fails the gate.
	if _, regressions, checked := checkAgreement(withAgreement(base, "tiny-mlp", 1.0), base); regressions != 1 || !checked {
		t.Error("vanished reference_agreement not flagged")
	}
	// So does a model that disappeared entirely.
	gone := mkRecord(16, 2, 1, 300, nil, nil)
	if _, regressions, _ := checkAgreement(withAgreement(base, "tiny-mlp", 1.0), gone); regressions != 1 {
		t.Error("vanished model not flagged by the agreement gate")
	}
}

// TestRunAgreementGateAcrossEnvironments: the FPS comparison is skipped
// on a CPU-count mismatch, but the agreement gate still applies — the
// seeded sweep is deterministic and environment-independent.
func TestRunAgreementGateAcrossEnvironments(t *testing.T) {
	dir := t.TempDir()
	base := withAgreement(mkRecord(16, 2, 1, 300, nil, map[string]float64{"tiny-mlp": 200}), "tiny-mlp", 1.0)
	writeFixture(t, filepath.Join(dir, "BENCH_PR6.json"), base)
	fresh := filepath.Join(dir, "fresh.json")
	writeFixture(t, fresh, withAgreement(mkRecord(16, 2, 8, 100, nil, map[string]float64{"tiny-mlp": 90}), "tiny-mlp", 0.19))
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err == nil {
		t.Fatalf("cross-environment agreement regression passed:\n%s", stdout.String())
	}
	// Same mismatch with healthy agreement still passes.
	writeFixture(t, fresh, withAgreement(mkRecord(16, 2, 8, 100, nil, map[string]float64{"tiny-mlp": 90}), "tiny-mlp", 1.0))
	stdout.Reset()
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("clean cross-environment run failed: %v\n%s", err, stdout.String())
	}
}

// TestRunAgreementGateSameEnvironment: an agreement regression fails
// even when every FPS record is within budget.
func TestRunAgreementGateSameEnvironment(t *testing.T) {
	dir := t.TempDir()
	base := withAgreement(mkRecord(16, 2, 1, 300, nil, map[string]float64{"tiny-mlp": 200}), "tiny-mlp", 1.0)
	writeFixture(t, filepath.Join(dir, "BENCH_PR6.json"), base)
	fresh := filepath.Join(dir, "fresh.json")
	writeFixture(t, fresh, withAgreement(mkRecord(16, 2, 1, 310, nil, map[string]float64{"tiny-mlp": 210}), "tiny-mlp", 0.75))
	var stdout, stderr bytes.Buffer
	err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr)
	if err == nil {
		t.Fatalf("agreement regression with healthy FPS passed:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "agreement:tiny-mlp") || !strings.Contains(stdout.String(), "REGRESSED") {
		t.Errorf("agreement regression not named:\n%s", stdout.String())
	}
}

// writeJSON drops a fixture file.
func writeFixture(t *testing.T, path string, rec record) {
	t.Helper()
	body, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLatestBaselineNaturalOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR3.json", "BENCH_PR9.json", "BENCH_PR10.json"} {
		writeFixture(t, filepath.Join(dir, name), mkRecord(1, 1, 1, 1, nil, nil))
	}
	// Lexicographically PR10 < PR9; naturally PR10 is the newest.
	got, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_PR10.json" {
		t.Fatalf("picked %s, want BENCH_PR10.json (natural order)", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, filepath.Join(dir, "BENCH_PR3.json"),
		mkRecord(16, 2, 1, 100, map[string]float64{"edge": 50}, nil))
	// The newest baseline must win the auto-pick.
	writeFixture(t, filepath.Join(dir, "BENCH_PR4.json"),
		mkRecord(16, 2, 1, 300, map[string]float64{"edge": 100}, nil))
	fresh := filepath.Join(dir, "fresh.json")

	// Healthy run passes and reports the matched records.
	writeFixture(t, fresh, mkRecord(16, 2, 1, 290, map[string]float64{"edge": 95}, nil))
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("healthy run failed: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "BENCH_PR4.json") {
		t.Errorf("did not auto-pick the newest baseline:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Errorf("healthy run did not report PASS:\n%s", stdout.String())
	}

	// Regressed run fails with the offending record named.
	writeFixture(t, fresh, mkRecord(16, 2, 1, 100, map[string]float64{"edge": 95}, nil))
	stdout.Reset()
	err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr)
	if err == nil {
		t.Fatalf("66%% pipeline regression passed:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED") {
		t.Errorf("regression not named:\n%s", stdout.String())
	}

	// Stdin path ("-new -").
	body, _ := json.Marshal(mkRecord(16, 2, 1, 290, map[string]float64{"edge": 95}, nil))
	stdout.Reset()
	if err := run([]string{"-dir", dir, "-new", "-"}, bytes.NewReader(body), &stdout, &stderr); err != nil {
		t.Fatalf("stdin run failed: %v", err)
	}

	// A baseline series that vanished from the fresh run fails the gate.
	writeFixture(t, fresh, mkRecord(16, 2, 1, 290, nil, nil))
	stdout.Reset()
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err == nil {
		t.Fatalf("disappeared kernel record passed:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "MISSING") {
		t.Errorf("missing record not named:\n%s", stdout.String())
	}

	// Missing baseline directory errors out.
	if err := run([]string{"-dir", t.TempDir(), "-new", fresh}, nil, &stdout, &stderr); err == nil {
		t.Error("missing baseline did not fail")
	}
	// Bad threshold errors out.
	if err := run([]string{"-dir", dir, "-new", fresh, "-threshold", "2"}, nil, &stdout, &stderr); err == nil {
		t.Error("threshold 2 accepted")
	}
}

// TestRunToleratesNewEnergyFields: a fresh run whose records gained the
// energy_j_per_request / modeled_kfps_per_w observability fields must
// diff cleanly against a pre-observability baseline that lacks them —
// records growing fields is the expected direction of schema drift.
func TestRunToleratesNewEnergyFields(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, filepath.Join(dir, "BENCH_PR6.json"),
		withAllocs(mkRecord(16, 2, 1, 300, map[string]float64{"edge": 100}, map[string]float64{"tiny-mlp": 200}), 0))

	// The fresh record carries fields the baseline never had, at every
	// level benchdiff reads: top-level, per-kernel, and per-infer.
	fresh := filepath.Join(dir, "fresh.json")
	body := []byte(`{
		"batch": 16, "workers": 2, "num_cpu": 1,
		"allocs_per_op": 0,
		"measured": {"fps": 295},
		"modeled_fps": 1000,
		"energy_j_per_request": 2.6e-07,
		"modeled_kfps_per_w": 3777.9,
		"kernels": [
			{"kernel": "edge", "fps": 98, "energy_j_per_request": 4.6e-07, "modeled_kfps_per_w": 2148.1}
		],
		"infer": [
			{"model": "tiny-mlp", "fps": 195, "reference_agreement": 1.0,
			 "energy_j_per_request": 2.8e-07, "modeled_kfps_per_w": 3531.1}
		]
	}`)
	if err := os.WriteFile(fresh, body, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dir", dir, "-new", fresh}, nil, &stdout, &stderr); err != nil {
		t.Fatalf("record with new energy fields failed the gate: %v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Errorf("healthy grown-schema run did not report PASS:\n%s", stdout.String())
	}
}

func TestGoldenFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, nil, &stdout, &stderr); err != flag.ErrHelp {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	for _, name := range []string{"-old", "-new", "-dir", "-threshold"} {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("usage output lost flag %s", name)
		}
	}
}
