// Command lightator-bench regenerates the paper's tables and figures
// (DESIGN.md §3 maps each experiment to its source) and measures the
// batched concurrent pipeline.
//
// Usage:
//
//	lightator-bench -exp all -profile quick
//	lightator-bench -exp fig8
//	lightator-bench -exp table1 -profile full
//	lightator-bench -batch 64 -workers 4    # concurrent pipeline throughput
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"lightator"
	"lightator/internal/experiments"
)

// runPipelineBench streams `batch` synthetic 256x256 scenes through the
// concurrent pipeline (capture + compressive acquisition + a small MVM
// head) at the given worker count, printing measured aggregate FPS with
// per-stage latency histograms, plus the modeled batch report from the
// architecture simulator for the same frame count.
func runPipelineBench(batch, workers int, seed int64) error {
	cfg := lightator.DefaultConfig()
	cfg.Seed = seed
	acc, err := lightator.New(cfg)
	if err != nil {
		return err
	}
	// A 10-row MVM head over the 128x128 CA plane: the smallest
	// classifier-shaped load that exercises all three stages.
	caOut := (cfg.SensorRows / cfg.CAPool) * (cfg.SensorCols / cfg.CAPool)
	rng := rand.New(rand.NewSource(seed))
	weights := make([][]float64, 10)
	for r := range weights {
		weights[r] = make([]float64, caOut)
		for c := range weights[r] {
			weights[r][c] = rng.Float64()*2 - 1
		}
	}
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Weights: weights})
	if err != nil {
		return err
	}
	scenes := make([]*lightator.Image, batch)
	for i := range scenes {
		s := lightator.NewImage(cfg.SensorRows, cfg.SensorCols, 3)
		for j := range s.Pix {
			s.Pix[j] = rng.Float64()
		}
		scenes[i] = s
	}
	results, stats, err := p.Run(scenes)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	fmt.Println("== measured (concurrent pipeline) ==")
	fmt.Println(stats.Render())

	// Modeled counterpart: the same batch through the architecture
	// simulator (vgg9-ca is the paper's CA-fronted streaming workload).
	// Simulate is deterministic, so one run stands in for every frame.
	rep, err := acc.Simulate("vgg9-ca")
	if err != nil {
		return err
	}
	reports := make([]*lightator.PerformanceReport, batch)
	for i := range reports {
		reports[i] = rep
	}
	agg, err := lightator.AggregateReports(reports)
	if err != nil {
		return err
	}
	fmt.Println("== modeled (architecture simulator, vgg9-ca) ==")
	fmt.Println(agg.Render())
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, table1, ablations, all")
	profile := flag.String("profile", "quick", "training budget for accuracy columns: smoke, quick, full")
	seed := flag.Int64("seed", 7, "experiment seed")
	workers := flag.Int("workers", 8, "worker goroutines (training, and the -batch pipeline)")
	batch := flag.Int("batch", 0, "when > 0, run the concurrent pipeline over this many frames and report aggregate FPS instead of the paper experiments")
	flag.Parse()

	if *batch > 0 {
		if err := runPipelineBench(*batch, *workers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: pipeline: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var prof experiments.Profile
	switch *profile {
	case "smoke":
		prof = experiments.Smoke
	case "quick":
		prof = experiments.Quick
	case "full":
		prof = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "lightator-bench: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	opt := experiments.Options{Profile: prof, Seed: *seed, Workers: *workers}

	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig8") {
		run("fig8", func() (string, error) {
			r, err := experiments.Fig8()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("fig9") {
		run("fig9", func() (string, error) {
			r, err := experiments.Fig9()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("fig10") {
		run("fig10", func() (string, error) {
			r, err := experiments.Fig10()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("table1") {
		run("table1", func() (string, error) {
			fmt.Printf("(training accuracy columns at %q profile; this is the slow part)\n", *profile)
			r, err := experiments.Table1(opt)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("ablations") {
		run("ablations", experiments.RenderAllCheapAblations)
		run("ablation-fidelity", func() (string, error) {
			r, err := experiments.AblationFidelity(opt)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !want("fig8") && !want("fig9") && !want("fig10") && !want("table1") && !want("ablations") {
		fmt.Fprintf(os.Stderr, "lightator-bench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
