// Command lightator-bench regenerates the paper's tables and figures
// (internal/experiments maps each experiment to its source; docs/DESIGN.md
// has the system inventory) and measures the batched concurrent pipeline.
//
// Usage:
//
//	lightator-bench -exp all -profile quick
//	lightator-bench -exp fig8
//	lightator-bench -exp table1 -profile full
//	lightator-bench -batch 64 -workers 4    # concurrent pipeline throughput
//	lightator-bench -batch 64 -json         # machine-readable perf record
//	lightator-bench -batch 16 -kernels      # + per-kernel compressed-domain sweep
//	lightator-bench -stream -json           # streaming session vs per-frame baseline (delta reuse)
//	lightator-bench -paper                  # continuously-verified paper claims (exit 1 on drift)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"lightator"
	"lightator/internal/energy"
	"lightator/internal/experiments"
	"lightator/internal/infer"
	"lightator/internal/oc"
	"lightator/internal/pipeline"
)

// benchReport is the -json output: one machine-readable record per
// pipeline bench run, so the repo's perf trajectory (BENCH_*.json) can be
// recorded and diffed across PRs.
type benchReport struct {
	Batch      int   `json:"batch"`
	Workers    int   `json:"workers"`
	Seed       int64 `json:"seed"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	NumCPU     int   `json:"num_cpu"`
	// Caveat is set on single-CPU hosts, where parallel speedup cannot
	// be observed no matter the worker count.
	Caveat string `json:"caveat,omitempty"`
	// AllocsPerOp is the measured steady-state heap allocations of one
	// oc.ApplySeededInto call in PhysicalNoisy fidelity (the worst-case
	// hot path: quantization scratch + per-row noise streams). The
	// benchdiff gate fails CI when this regresses above the committed
	// baseline — the allocation-free MVM contract (docs/PERF.md).
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Measured is the concurrent pipeline run (FPS, per-stage p50/p99).
	Measured pipeline.StatsReport `json:"measured"`
	// ModeledFPS comes from the architecture simulator's vgg9-ca
	// streaming workload; EnergyJPerRequest and ModeledKFPSPerW come
	// from the energy bridge over the benched pipeline's own op counts
	// (capture + CA + MVM head), so they describe the run this record
	// measures. See docs/OBSERVABILITY.md.
	ModeledFPS        float64 `json:"modeled_fps"`
	EnergyJPerRequest float64 `json:"energy_j_per_request"`
	ModeledKFPSPerW   float64 `json:"modeled_kfps_per_w"`
	// Kernels holds the per-kernel compressed-domain sweep (-kernels):
	// one record per registered kernel, so BENCH_*.json tracks the
	// /v1/process hot path across PRs.
	Kernels []kernelBenchRecord `json:"kernels,omitempty"`
	// Infer holds the per-model compressed-domain inference sweep
	// (-infer): one record per registered model, so BENCH_*.json tracks
	// the /v1/infer hot path and its optical fidelity across PRs.
	Infer []inferBenchRecord `json:"infer,omitempty"`
	// Stream holds the streaming-session run (-stream): a mostly-static
	// scene sequence through one /v1/session-style session with temporal
	// delta reuse, against the per-frame calls the session's byte-identity
	// contract quotes. New optional fields are safe: benchdiff ignores
	// unknown baseline fields.
	Stream *streamBenchRecord `json:"stream,omitempty"`
	// ABFT compares the hot MVM apply with checksum verification on
	// (the default everywhere in this report) against a NoABFT core, so
	// BENCH_*.json records the fault-detection overhead the kernel/infer
	// FPS above already pay (docs/FAULTS.md#overhead). New optional
	// fields are safe: benchdiff ignores unknown baseline fields.
	ABFT *abftBenchRecord `json:"abft,omitempty"`
}

// abftBenchRecord is the measured cost of ABFT checksum verification on
// one seeded MVM apply (PhysicalNoisy, the worst case: the checksum row
// burns an extra readout plus a full noise stream).
type abftBenchRecord struct {
	NSPerOpOn  float64 `json:"ns_per_op_abft_on"`
	NSPerOpOff float64 `json:"ns_per_op_abft_off"`
	// OverheadFrac is (on-off)/off — the ISSUE budget caps it at 0.10.
	OverheadFrac float64 `json:"overhead_frac"`
}

// streamBenchRecord compares a streaming session (persistent seed
// chain + compressed-domain temporal delta reuse) against the
// per-frame baseline producing byte-identical output.
type streamBenchRecord struct {
	Kernel string `json:"kernel"`
	Frames int    `json:"frames"`
	// FPS is the session's streamed throughput; PerFrameFPS is the same
	// frames as independent per-frame calls with seed DeriveSeed(seed, i).
	FPS         float64 `json:"fps"`
	PerFrameFPS float64 `json:"per_frame_fps"`
	Speedup     float64 `json:"speedup"`
	// BlocksReusedFrac is the fraction of kernel windows the delta
	// engine skipped — the temporal redundancy the session harvested.
	BlocksTotal      int64   `json:"blocks_total"`
	BlocksReused     int64   `json:"blocks_reused"`
	BlocksReusedFrac float64 `json:"blocks_reused_frac"`
}

// kernelBenchRecord is one compressed-domain kernel's throughput record:
// the full capture+CA+kernel pipeline run (Pipeline.Kernel holds the
// kernel stage's own latency quantiles).
type kernelBenchRecord struct {
	Kernel      string  `json:"kernel"`
	Description string  `json:"description"`
	FPS         float64 `json:"fps"`
	// EnergyJPerRequest and ModeledKFPSPerW price this pipeline's static
	// per-frame op counts through the energy bridge (internal/energy
	// RequestEnergy) — the same gauges the server exports per series.
	EnergyJPerRequest float64              `json:"energy_j_per_request"`
	ModeledKFPSPerW   float64              `json:"modeled_kfps_per_w"`
	Pipeline          pipeline.StatsReport `json:"pipeline"`
	// SolverPassesPerSample is the realized average optical pass count per
	// compressed sample over this sweep, reported only for iterative
	// solvers (omitted for single-pass kernels). For fixed-count Landweber
	// this is the constant 2·iters; for reconstruct-cg it is where the
	// adaptive stopping rule becomes visible in bench JSON. New optional
	// fields are safe: benchdiff ignores unknown baseline fields.
	SolverPassesPerSample float64 `json:"solver_passes_per_sample,omitempty"`
	// SolverSamples is the sample count behind that average.
	SolverSamples uint64 `json:"solver_samples,omitempty"`
}

// inferBenchRecord is one inference model's throughput/accuracy record:
// the full capture+CA+infer pipeline run plus the optical-vs-digital-
// reference top-1 agreement — the label-free accuracy proxy that tracks
// how much the analog path perturbs classifications.
type inferBenchRecord struct {
	Model       string  `json:"model"`
	Description string  `json:"description"`
	FPS         float64 `json:"fps"`
	Frames      int     `json:"frames"`
	// ReferenceAgreement is the fraction of frames whose optical top-1
	// class matches the digital quantized reference's.
	ReferenceAgreement float64 `json:"reference_agreement"`
	// EnergyJPerRequest and ModeledKFPSPerW price this pipeline's static
	// per-frame op counts through the energy bridge.
	EnergyJPerRequest float64              `json:"energy_j_per_request"`
	ModeledKFPSPerW   float64              `json:"modeled_kfps_per_w"`
	Pipeline          pipeline.StatsReport `json:"pipeline"`
}

// modeledEnergy prices a pipeline's static per-frame op counts through
// the energy bridge, returning (joules/frame, KFPS/W).
func modeledEnergy(p *lightator.Pipeline, params energy.Params, wBits int) (float64, float64) {
	j := params.RequestEnergy(p.FrameOps().Total(), wBits).Total()
	return j, energy.ModeledKFPSPerW(j)
}

// runInferSweep streams a structured scene batch (infer.DiskScenes, the
// same generator ActQuant calibration and the serving-time agreement
// report draw from) through one capture+CA+infer pipeline per registered
// model, collecting a throughput record and the reference-agreement
// accuracy each.
func runInferSweep(acc *lightator.Accelerator, batch, workers int, seed int64) ([]inferBenchRecord, error) {
	cfg := acc.Config()
	params := energy.Default()
	scenes := infer.DiskScenes(batch, cfg.SensorRows, cfg.SensorCols, seed)
	var records []inferBenchRecord
	for _, name := range acc.Models() {
		desc, err := acc.ModelDescription(name)
		if err != nil {
			return nil, err
		}
		p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Infer: name})
		if err != nil {
			return nil, err
		}
		results, stats, err := p.Run(scenes)
		if err != nil {
			return nil, err
		}
		optical := make([][]float64, len(results))
		reference := make([][]float64, len(results))
		for i, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
			ref, err := acc.InferReference(r.Compressed, name)
			if err != nil {
				return nil, err
			}
			optical[i] = r.Logits
			reference[i] = ref
		}
		rep := stats.Report()
		j, kfpsPerW := modeledEnergy(p, params, cfg.Precision.WBits)
		records = append(records, inferBenchRecord{
			Model:              name,
			Description:        desc,
			FPS:                rep.FPS,
			Frames:             len(results),
			ReferenceAgreement: infer.Agreement(optical, reference),
			EnergyJPerRequest:  j,
			ModeledKFPSPerW:    kfpsPerW,
			Pipeline:           rep,
		})
	}
	return records, nil
}

// runKernelSweep streams the scene batch through one capture+CA+kernel
// pipeline per registered kernel, collecting a throughput record each.
func runKernelSweep(acc *lightator.Accelerator, scenes []*lightator.Image, workers int) ([]kernelBenchRecord, error) {
	var records []kernelBenchRecord
	params := energy.Default()
	wBits := acc.Config().Precision.WBits
	for _, name := range acc.Kernels() {
		desc, err := acc.KernelDescription(name)
		if err != nil {
			return nil, err
		}
		p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Kernel: name})
		if err != nil {
			return nil, err
		}
		// Snapshot the solver's lifetime pass totals around the run so the
		// record reflects only this sweep's samples.
		passes0, samples0, iterative, err := acc.KernelSolverPasses(name)
		if err != nil {
			return nil, err
		}
		results, stats, err := p.Run(scenes)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		rep := stats.Report()
		j, kfpsPerW := modeledEnergy(p, params, wBits)
		rec := kernelBenchRecord{
			Kernel:            name,
			Description:       desc,
			FPS:               rep.FPS,
			EnergyJPerRequest: j,
			ModeledKFPSPerW:   kfpsPerW,
			Pipeline:          rep,
		}
		if iterative {
			passes1, samples1, _, err := acc.KernelSolverPasses(name)
			if err != nil {
				return nil, err
			}
			if n := samples1 - samples0; n > 0 {
				rec.SolverPassesPerSample = float64(passes1-passes0) / float64(n)
				rec.SolverSamples = n
			}
		}
		records = append(records, rec)
	}
	return records, nil
}

// runStreamBench streams a mostly-static scene sequence (fixed
// background, a bright square that jumps every few frames — the
// near-sensor video workload sessions target) through one streaming
// session, and through the equivalent per-frame calls, returning the
// comparison record. Output bytes are identical by the session
// contract; only the work differs.
func runStreamBench(acc *lightator.Accelerator, frames, workers int, seed int64) (*streamBenchRecord, error) {
	const kernel = "edge"
	cfg := acc.Config()
	rng := rand.New(rand.NewSource(seed))
	base := lightator.NewImage(cfg.SensorRows, cfg.SensorCols, 3)
	for i := range base.Pix {
		base.Pix[i] = rng.Float64()
	}
	side := cfg.SensorRows / 8
	scenes := make([]*lightator.Image, frames)
	for f := range scenes {
		s := base.Clone()
		pos := ((f / 4) * side) % (cfg.SensorRows - side)
		for y := pos; y < pos+side; y++ {
			for x := pos; x < pos+side; x++ {
				for c := 0; c < 3; c++ {
					s.Pix[(y*cfg.SensorCols+x)*3+c] = 1
				}
			}
		}
		scenes[f] = s
	}

	// Per-frame baseline: independent calls with seed DeriveSeed(seed, i)
	// — exactly what the streamed bytes are defined to match.
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Kernel: kernel})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i, s := range scenes {
		results, _, err := p.RunSeeded([]pipeline.SeededScene{{Seed: lightator.DeriveSeed(seed, i), Scene: s}})
		if err != nil {
			return nil, err
		}
		if results[0].Err != nil {
			return nil, results[0].Err
		}
	}
	perFrame := time.Since(t0)

	sess, err := acc.NewSession(lightator.SessionOptions{Kind: "process", Kernel: kernel, Seed: &seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	in := make(chan *lightator.Image)
	go func() {
		defer close(in)
		for _, s := range scenes {
			in <- s
		}
	}()
	got := 0
	t1 := time.Now()
	err = sess.Stream(context.Background(), in, func(fr lightator.SessionFrameResult) error {
		if fr.Err != nil {
			return fr.Err
		}
		got++
		return nil
	})
	streamed := time.Since(t1)
	if err != nil {
		return nil, err
	}
	if got != frames {
		return nil, fmt.Errorf("stream bench: %d results for %d frames", got, frames)
	}
	st := sess.Stats()
	rec := &streamBenchRecord{
		Kernel:           kernel,
		Frames:           frames,
		FPS:              float64(frames) / streamed.Seconds(),
		PerFrameFPS:      float64(frames) / perFrame.Seconds(),
		BlocksTotal:      st.BlocksTotal,
		BlocksReused:     st.BlocksReused,
		BlocksReusedFrac: st.ReusedFrac,
	}
	if rec.PerFrameFPS > 0 {
		rec.Speedup = rec.FPS / rec.PerFrameFPS
	}
	return rec, nil
}

// measureMVMAllocs reports the steady-state heap allocations of one
// seeded MVM into a caller-owned destination — the number the benchdiff
// allocation gate pins at zero. PhysicalNoisy is the worst case: it
// exercises the quantization scratch and the pooled per-row noise
// streams.
func measureMVMAllocs(seed int64) (float64, error) {
	core, err := oc.NewCore(4, 4, oc.PhysicalNoisy)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, 32)
	for r := range w {
		w[r] = make([]float64, 64)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	pm, err := core.Program(w)
	if err != nil {
		return 0, err
	}
	x := make([]float64, pm.Cols())
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, pm.Rows())
	if err := pm.ApplySeededInto(y, x, seed); err != nil { // warm the pools
		return 0, err
	}
	i := 0
	return testing.AllocsPerRun(200, func() {
		i++
		if err := pm.ApplySeededInto(y, x, oc.DeriveSeed(seed, i)); err != nil {
			panic(err)
		}
	}), nil
}

// measureABFTOverhead times one seeded MVM apply with checksum
// verification on versus a NoABFT core over the same 32x64 matrix
// (stride 1: every apply checked — the worst case), taking the best of
// three reps each to shed scheduler noise.
func measureABFTOverhead(seed int64) (*abftBenchRecord, error) {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, 32)
	for r := range w {
		w[r] = make([]float64, 64)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Float64()
	}
	time1 := func(noABFT bool) (float64, error) {
		core, err := oc.NewCore(4, 4, oc.PhysicalNoisy)
		if err != nil {
			return 0, err
		}
		core.NoABFT = noABFT
		pm, err := core.Program(w)
		if err != nil {
			return 0, err
		}
		y := make([]float64, pm.Rows())
		if err := pm.ApplySeededInto(y, x, seed); err != nil { // warm pools
			return 0, err
		}
		const iters = 2000
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if err := pm.ApplySeededInto(y, x, oc.DeriveSeed(seed, i)); err != nil {
					return 0, err
				}
			}
			if ns := float64(time.Since(t0).Nanoseconds()) / iters; ns < best {
				best = ns
			}
		}
		return best, nil
	}
	on, err := time1(false)
	if err != nil {
		return nil, err
	}
	off, err := time1(true)
	if err != nil {
		return nil, err
	}
	return &abftBenchRecord{NSPerOpOn: on, NSPerOpOff: off, OverheadFrac: (on - off) / off}, nil
}

// runChaosSmoke is the -chaos mode: a short fault-plan run through the
// capture+CA+kernel pipeline (the CI chaos smoke step). It verifies the
// fault-tolerance machinery end to end on real serving paths — every
// frame completes, ABFT detects the persistent faults within the run,
// and the recovery ladder resolves each one (recalibration or retirement
// to the digital fallback; unrecovered checks fail the smoke) — and
// prints the per-component health table.
func runChaosSmoke(workers int, seed int64) error {
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 64, 64
	cfg.Seed = seed
	cfg.FaultPlan = &lightator.FaultPlan{Name: "bench-chaos", Faults: []lightator.Fault{
		// Absorbable drift on the CA bank: recalibration tier.
		{Kind: "drift_coeff", Target: "ca", Row: 0, Col: 1, Value: 0.03},
		// Hard-stuck kernel coefficient: retire + digital fallback tier.
		{Kind: "stuck_coeff", Target: "kernel:edge", Row: 0, Col: 0, Value: 0.95},
		// Windowed readout spike on every bank: bounded-retry tier.
		{Kind: "bit_flip", Target: "*", Row: 0, Value: 0.4,
			Window: lightator.FaultWindow{Period: 8, Duty: 1, Salt: 9}},
	}}
	acc, err := lightator.New(cfg)
	if err != nil {
		return err
	}
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Kernel: "edge"})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	scenes := make([]*lightator.Image, 16)
	for i := range scenes {
		s := lightator.NewImage(cfg.SensorRows, cfg.SensorCols, 3)
		for j := range s.Pix {
			s.Pix[j] = rng.Float64()
		}
		scenes[i] = s
	}
	results, stats, err := p.Run(scenes)
	if err != nil {
		return err
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("frame %d failed: %w", i, r.Err)
		}
	}
	fmt.Printf("== chaos smoke (%d frames, plan %s) ==\n", len(scenes), cfg.FaultPlan.Name)
	fmt.Printf("%-16s %8s %10s %8s %8s %8s %11s\n",
		"component", "checks", "detections", "retried", "recals", "retired", "unrecovered")
	var detections, unrecovered int64
	for _, h := range acc.Health() {
		fmt.Printf("%-16s %8d %10d %8d %8d %8d %11d\n",
			h.Label, h.Checks, h.Detections, h.RetrySuccesses, h.Recalibrations, h.RetiredRows, h.Unrecovered)
		detections += h.Detections
		unrecovered += h.Unrecovered
	}
	fmt.Printf("throughput under chaos: %.1f frames/sec, degraded=%v\n", stats.Report().FPS, acc.Degraded())
	if detections == 0 {
		return fmt.Errorf("no ABFT detections — the plan never fired")
	}
	// Unrecovered checks are a legitimate terminal tier (the response is
	// flagged degraded, never silently corrupted), but they should be the
	// rare triple-coincidence tail, not the norm.
	if unrecovered*10 > detections {
		return fmt.Errorf("%d of %d detections left unrecovered — ladder not converging", unrecovered, detections)
	}
	for _, want := range []struct {
		label string
		check func(h lightator.ComponentHealth) bool
		desc  string
	}{
		{"ca", func(h lightator.ComponentHealth) bool { return h.Recalibrations > 0 && h.RetiredRows == 0 },
			"absorbable drift must recalibrate, not retire"},
		{"kernel:edge", func(h lightator.ComponentHealth) bool { return h.RetiredRows > 0 },
			"hard-stuck coefficient must retire its row"},
	} {
		ok := false
		for _, h := range acc.Health() {
			if h.Label == want.label && want.check(h) {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("%s: %s", want.label, want.desc)
		}
	}
	return nil
}

// runPipelineBench streams `batch` synthetic 256x256 scenes through the
// concurrent pipeline (capture + compressive acquisition + a small MVM
// head) at the given worker count, printing measured aggregate FPS with
// per-stage latency histograms, plus the modeled batch report from the
// architecture simulator for the same frame count.
func runPipelineBench(batch, workers int, seed int64, asJSON, kernelSweep, inferSweep, streamBench bool) error {
	cfg := lightator.DefaultConfig()
	cfg.Seed = seed
	acc, err := lightator.New(cfg)
	if err != nil {
		return err
	}
	// A 10-row MVM head over the 128x128 CA plane: the smallest
	// classifier-shaped load that exercises all three stages.
	caOut := (cfg.SensorRows / cfg.CAPool) * (cfg.SensorCols / cfg.CAPool)
	rng := rand.New(rand.NewSource(seed))
	weights := make([][]float64, 10)
	for r := range weights {
		weights[r] = make([]float64, caOut)
		for c := range weights[r] {
			weights[r][c] = rng.Float64()*2 - 1
		}
	}
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Weights: weights})
	if err != nil {
		return err
	}
	scenes := make([]*lightator.Image, batch)
	for i := range scenes {
		s := lightator.NewImage(cfg.SensorRows, cfg.SensorCols, 3)
		for j := range s.Pix {
			s.Pix[j] = rng.Float64()
		}
		scenes[i] = s
	}
	results, stats, err := p.Run(scenes)
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}

	// Modeled counterpart: the same batch through the architecture
	// simulator (vgg9-ca is the paper's CA-fronted streaming workload).
	// Simulate is deterministic, so one run stands in for every frame.
	rep, err := acc.Simulate("vgg9-ca")
	if err != nil {
		return err
	}
	reports := make([]*lightator.PerformanceReport, batch)
	for i := range reports {
		reports[i] = rep
	}
	agg, err := lightator.AggregateReports(reports)
	if err != nil {
		return err
	}

	var kernelRecords []kernelBenchRecord
	if kernelSweep {
		kernelRecords, err = runKernelSweep(acc, scenes, workers)
		if err != nil {
			return err
		}
	}
	var inferRecords []inferBenchRecord
	if inferSweep {
		inferRecords, err = runInferSweep(acc, batch, workers, seed)
		if err != nil {
			return err
		}
	}
	var streamRecord *streamBenchRecord
	if streamBench {
		streamRecord, err = runStreamBench(acc, batch, workers, seed)
		if err != nil {
			return err
		}
	}

	if asJSON {
		allocs, err := measureMVMAllocs(seed)
		if err != nil {
			return err
		}
		abft, err := measureABFTOverhead(seed)
		if err != nil {
			return err
		}
		j, kfpsPerW := modeledEnergy(p, energy.Default(), cfg.Precision.WBits)
		out := benchReport{
			Batch:             batch,
			Workers:           workers,
			Seed:              seed,
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			NumCPU:            runtime.NumCPU(),
			AllocsPerOp:       &allocs,
			Measured:          stats.Report(),
			ModeledFPS:        rep.FPS,
			EnergyJPerRequest: j,
			ModeledKFPSPerW:   kfpsPerW,
			Kernels:           kernelRecords,
			Infer:             inferRecords,
			Stream:            streamRecord,
			ABFT:              abft,
		}
		if out.NumCPU == 1 {
			out.Caveat = "single-CPU host: worker parallelism cannot speed up this run; measured FPS understates multi-core throughput"
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Println("== measured (concurrent pipeline) ==")
	fmt.Println(stats.Render())
	fmt.Println("== modeled (architecture simulator, vgg9-ca) ==")
	fmt.Println(agg.Render())
	if kernelRecords != nil {
		fmt.Println("== compressed-domain kernel sweep ==")
		for _, r := range kernelRecords {
			solver := ""
			if r.SolverSamples > 0 {
				solver = fmt.Sprintf("  %.1f passes/sample", r.SolverPassesPerSample)
			}
			fmt.Printf("%-18s %8.1f frames/sec  kernel-stage p50<=%v p99<=%v%s\n",
				r.Kernel, r.FPS,
				time.Duration(r.Pipeline.Kernel.P50NS).Round(time.Microsecond),
				time.Duration(r.Pipeline.Kernel.P99NS).Round(time.Microsecond), solver)
		}
	}
	if inferRecords != nil {
		fmt.Println("== compressed-domain inference sweep ==")
		for _, r := range inferRecords {
			fmt.Printf("%-18s %8.1f frames/sec  ref-agreement %5.1f%%  infer-stage p50<=%v p99<=%v\n",
				r.Model, r.FPS, 100*r.ReferenceAgreement,
				time.Duration(r.Pipeline.Infer.P50NS).Round(time.Microsecond),
				time.Duration(r.Pipeline.Infer.P99NS).Round(time.Microsecond))
		}
	}
	if streamRecord != nil {
		fmt.Println("== streaming session (temporal delta reuse) ==")
		fmt.Printf("%-18s session %8.1f frames/sec  per-frame %8.1f frames/sec  speedup %.2fx  windows reused %.1f%%\n",
			streamRecord.Kernel, streamRecord.FPS, streamRecord.PerFrameFPS,
			streamRecord.Speedup, 100*streamRecord.BlocksReusedFrac)
	}
	return nil
}

// main delegates to realMain so profile-flushing defers run even on
// failure exits — os.Exit directly from the body would leave a truncated
// cpu.pprof behind.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, table1, ablations, all")
	profile := flag.String("profile", "quick", "training budget for accuracy columns: smoke, quick, full")
	seed := flag.Int64("seed", 7, "experiment seed")
	workers := flag.Int("workers", 8, "worker goroutines (training, and the -batch pipeline)")
	batch := flag.Int("batch", 0, "when > 0, run the concurrent pipeline over this many frames and report aggregate FPS instead of the paper experiments")
	asJSON := flag.Bool("json", false, "with -batch: emit a machine-readable report (FPS, per-stage p50/p99, CPU counts) for the BENCH_*.json perf trajectory")
	kernelSweep := flag.Bool("kernels", false, "with -batch: additionally sweep every registered compressed-domain kernel and report per-kernel throughput")
	inferSweep := flag.Bool("infer", false, "with -batch: additionally sweep every registered inference model and report per-model throughput and optical-vs-reference agreement")
	streamBench := flag.Bool("stream", false, "run a streaming session with temporal delta reuse over a mostly-static scene sequence and report session vs per-frame FPS (implies -batch 48 when unset)")
	paper := flag.Bool("paper", false, "regenerate the continuously-verified paper-claims table (training-free; markdown to stdout, exit 1 on drift)")
	chaos := flag.Bool("chaos", false, "run a short fault-plan chaos smoke through the serving pipeline and verify detection + recovery (exit 1 on any miss; docs/FAULTS.md)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file (go tool pprof; docs/PERF.md)")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile of the run to this file (go tool pprof; docs/PERF.md)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lightator-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lightator-bench: memprofile: %v\n", err)
			}
		}()
	}

	if *paper {
		res, err := experiments.PaperClaims()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: paper claims: %v\n", err)
			return 1
		}
		fmt.Print(res.Render())
		if len(res.Failing()) > 0 {
			return 1
		}
		return 0
	}

	if *chaos {
		if err := runChaosSmoke(*workers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: chaos: %v\n", err)
			return 1
		}
		return 0
	}

	if *streamBench && *batch == 0 {
		*batch = 48
	}
	if *batch > 0 {
		if err := runPipelineBench(*batch, *workers, *seed, *asJSON, *kernelSweep, *inferSweep, *streamBench); err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: pipeline: %v\n", err)
			return 1
		}
		return 0
	}

	var prof experiments.Profile
	switch *profile {
	case "smoke":
		prof = experiments.Smoke
	case "quick":
		prof = experiments.Quick
	case "full":
		prof = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "lightator-bench: unknown profile %q\n", *profile)
		return 1
	}
	opt := experiments.Options{Profile: prof, Seed: *seed, Workers: *workers}

	failed := false
	run := func(name string, f func() (string, error)) {
		if failed {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(out)
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig8") {
		run("fig8", func() (string, error) {
			r, err := experiments.Fig8()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("fig9") {
		run("fig9", func() (string, error) {
			r, err := experiments.Fig9()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("fig10") {
		run("fig10", func() (string, error) {
			r, err := experiments.Fig10()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("table1") {
		run("table1", func() (string, error) {
			fmt.Printf("(training accuracy columns at %q profile; this is the slow part)\n", *profile)
			r, err := experiments.Table1(opt)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("ablations") {
		run("ablations", experiments.RenderAllCheapAblations)
		run("ablation-fidelity", func() (string, error) {
			r, err := experiments.AblationFidelity(opt)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !want("fig8") && !want("fig9") && !want("fig10") && !want("table1") && !want("ablations") {
		fmt.Fprintf(os.Stderr, "lightator-bench: unknown experiment %q\n", *exp)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}
