// Command lightator-bench regenerates the paper's tables and figures
// (DESIGN.md §3 maps each experiment to its source).
//
// Usage:
//
//	lightator-bench -exp all -profile quick
//	lightator-bench -exp fig8
//	lightator-bench -exp table1 -profile full
package main

import (
	"flag"
	"fmt"
	"os"

	"lightator/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8, fig9, fig10, table1, ablations, all")
	profile := flag.String("profile", "quick", "training budget for accuracy columns: smoke, quick, full")
	seed := flag.Int64("seed", 7, "experiment seed")
	workers := flag.Int("workers", 8, "training worker goroutines")
	flag.Parse()

	var prof experiments.Profile
	switch *profile {
	case "smoke":
		prof = experiments.Smoke
	case "quick":
		prof = experiments.Quick
	case "full":
		prof = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "lightator-bench: unknown profile %q\n", *profile)
		os.Exit(1)
	}
	opt := experiments.Options{Profile: prof, Seed: *seed, Workers: *workers}

	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig8") {
		run("fig8", func() (string, error) {
			r, err := experiments.Fig8()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("fig9") {
		run("fig9", func() (string, error) {
			r, err := experiments.Fig9()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("fig10") {
		run("fig10", func() (string, error) {
			r, err := experiments.Fig10()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("table1") {
		run("table1", func() (string, error) {
			fmt.Printf("(training accuracy columns at %q profile; this is the slow part)\n", *profile)
			r, err := experiments.Table1(opt)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if want("ablations") {
		run("ablations", experiments.RenderAllCheapAblations)
		run("ablation-fidelity", func() (string, error) {
			r, err := experiments.AblationFidelity(opt)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		})
	}
	if !want("fig8") && !want("fig9") && !want("fig10") && !want("table1") && !want("ablations") {
		fmt.Fprintf(os.Stderr, "lightator-bench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
