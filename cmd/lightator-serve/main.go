// Command lightator-serve exposes a Lightator accelerator over HTTP/JSON:
// /v1/capture, /v1/compress, /v1/process (compressed-domain kernels;
// GET /v1/kernels lists the registry), /v1/matvec and /v1/simulate,
// backed by a dynamic micro-batcher over the concurrent frame pipeline,
// plus /v1/session streaming video sessions with temporal delta reuse,
// with /metrics and /healthz for operations. See docs/SERVER.md and
// docs/API.md.
//
// Usage:
//
//	lightator-serve -addr :8080
//	lightator-serve -fidelity physical-noisy -batch 16 -batch-delay 5ms
//	lightator-serve -rows 64 -cols 64 -capool 4 -queue 256
//	lightator-serve -max-sessions 32 -session-idle 30s -session-window 4
//	lightator-serve -fault-plan plan.json -reject-degraded -request-timeout 2s
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, new
// work is rejected with 503, and in-flight micro-batches drain before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightator"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fidelity := flag.String("fidelity", "physical", "analog fidelity: ideal, physical, physical-noisy")
	wbits := flag.Int("wbits", 4, "weight precision bits")
	abits := flag.Int("abits", 4, "activation precision bits")
	rows := flag.Int("rows", 0, "sensor rows (0 = paper default 256)")
	cols := flag.Int("cols", 0, "sensor cols (0 = paper default 256)")
	capool := flag.Int("capool", 2, "compressive acquisition pooling factor (0 disables /v1/compress)")
	seed := flag.Int64("seed", 0, "base noise seed (0 = config default)")
	workers := flag.Int("workers", 0, "pipeline workers per batch (0 = NumCPU)")
	batch := flag.Int("batch", 8, "micro-batch flush size")
	batchDelay := flag.Duration("batch-delay", 2*time.Millisecond, "micro-batch flush deadline")
	queue := flag.Int("queue", 64, "admission queue depth per batched endpoint (full = 429)")
	maxBatches := flag.Int("max-batches", 2, "concurrent in-flight pipeline batches per endpoint")
	cache := flag.Int("cache", 256, "response cache entries (negative disables)")
	traceEntries := flag.Int("trace-entries", 256, "GET /debug/traces ring capacity (negative disables retention)")
	debug := flag.Bool("debug", false, "mount the debug mux: /debug/pprof/ and /debug/runtime")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	maxSessions := flag.Int("max-sessions", 0, "concurrently open streaming sessions (0 = default 64)")
	sessionIdle := flag.Duration("session-idle", 0, "idle expiry for streaming sessions (0 = default 60s, negative disables)")
	sessionWindow := flag.Int("session-window", 0, "default in-flight frame window per session stream (0 = default 8)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline, 504 on expiry (0 disables)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 0, "HTTP header read deadline (0 = default 10s, negative disables)")
	idleTimeout := flag.Duration("idle-timeout", 0, "HTTP keep-alive idle deadline (0 = default 120s, negative disables)")
	rejectDegraded := flag.Bool("reject-degraded", false, "answer 503 degraded_unavailable instead of degraded-flagged 200s")
	shedCacheMiss := flag.Float64("shed-cache-miss", 0, "queue occupancy shedding uncached compute (0 = default 0.75, negative disables)")
	shedNonSession := flag.Float64("shed-non-session", 0, "queue occupancy shedding all non-session compute (0 = default 0.90, negative disables)")
	shedAll := flag.Float64("shed-all", 0, "queue occupancy shedding everything incl. sessions (0 = default 0.98, negative disables)")
	faultPlanPath := flag.String("fault-plan", "", "JSON fault-injection plan activating chaos mode (see docs/FAULTS.md)")
	flag.Parse()

	cfg := lightator.DefaultConfig()
	cfg.Precision.WBits = *wbits
	cfg.Precision.ABits = *abits
	cfg.CAPool = *capool
	if *rows > 0 {
		cfg.SensorRows = *rows
	}
	if *cols > 0 {
		cfg.SensorCols = *cols
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	switch *fidelity {
	case "ideal":
		cfg.Fidelity = lightator.Ideal
	case "physical":
		cfg.Fidelity = lightator.Physical
	case "physical-noisy":
		cfg.Fidelity = lightator.PhysicalNoisy
	default:
		fmt.Fprintf(os.Stderr, "lightator-serve: unknown fidelity %q\n", *fidelity)
		os.Exit(1)
	}
	if *faultPlanPath != "" {
		data, err := os.ReadFile(*faultPlanPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-serve: fault plan: %v\n", err)
			os.Exit(1)
		}
		plan, err := lightator.ParseFaultPlan(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightator-serve: fault plan %s: %v\n", *faultPlanPath, err)
			os.Exit(1)
		}
		cfg.FaultPlan = plan
	}

	acc, err := lightator.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightator-serve: %v\n", err)
		os.Exit(1)
	}
	srv, err := acc.NewServer(lightator.ServeOptions{
		Workers:      *workers,
		BatchSize:    *batch,
		BatchDelay:   *batchDelay,
		Queue:        *queue,
		MaxBatches:   *maxBatches,
		CacheEntries: *cache,
		TraceEntries: *traceEntries,
		Debug:        *debug,

		MaxSessions:        *maxSessions,
		SessionIdleTimeout: *sessionIdle,
		SessionWindow:      *sessionWindow,

		RequestTimeout:    *requestTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
		RejectDegraded:    *rejectDegraded,
		ShedCacheMiss:     *shedCacheMiss,
		ShedNonSession:    *shedNonSession,
		ShedAll:           *shedAll,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightator-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(*addr) }()
	chaos := ""
	if cfg.FaultPlan != nil {
		chaos = fmt.Sprintf(", CHAOS MODE (%d faults, cache off)", len(cfg.FaultPlan.Faults))
	}
	fmt.Printf("lightator-serve: %s sensor %dx%d %s, micro-batch %d@%v, %d compressed-domain kernels%s, listening on %s\n",
		cfg.Fidelity, cfg.SensorRows, cfg.SensorCols,
		cfg.Precision.Name(), *batch, *batchDelay, len(acc.Kernels()), chaos, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "lightator-serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("lightator-serve: shutting down, draining in-flight work...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "lightator-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("lightator-serve: drained cleanly")
	}
}
