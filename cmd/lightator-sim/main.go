// Command lightator-sim runs a DNN model through the Lightator
// architecture simulator and prints the per-layer power breakdown and
// headline performance numbers.
//
// Usage:
//
//	lightator-sim -model vgg9-ca -w 3 -a 4
//	lightator-sim -model lenet -w 4 -a 4 -mx-first 0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lightator"
	"lightator/internal/report"
)

// run executes the command against args (excluding the program name),
// writing output to stdout and usage/errors to stderr. Split from main
// so the CLI surface is testable (flag set, golden flags, smoke run).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lightator-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "lenet", "model to simulate: "+strings.Join(lightator.Models(), ", "))
	wBits := fs.Int("w", 4, "weight bits (MR tuning levels)")
	aBits := fs.Int("a", 4, "activation bits (VCSEL drive levels)")
	mxFirst := fs.Int("mx-first", 0, "Lightator-MX: keep the first weight layer at this precision (0 = uniform)")
	csv := fs.Bool("csv", false, "emit the layer table as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	acc, err := lightator.New(lightator.Config{
		Precision: lightator.Precision{WBits: *wBits, ABits: *aBits, MXFirstWBits: *mxFirst},
		Fidelity:  lightator.Physical,
	})
	if err != nil {
		return err
	}
	rep, err := acc.Simulate(*model)
	if err != nil {
		return err
	}

	tb := report.Table{
		Title:   fmt.Sprintf("%s on Lightator %s", rep.Model, rep.Precision.Name()),
		Headers: []string{"Layer", "Kind", "W", "Cycles", "Remaps", "Time", "ADCs", "DACs", "DMVA", "TUN", "BPD", "Misc", "Total"},
	}
	for _, l := range rep.Layers {
		tb.AddRow(l.Name, l.Kind.String(), fmt.Sprint(l.WBits),
			fmt.Sprint(l.Schedule.ComputeCycles), fmt.Sprint(l.Schedule.RemapEvents),
			report.FormatSI(l.Time, 2)+"s",
			report.FormatSI(l.Power.ADCs, 2)+"W",
			report.FormatSI(l.Power.DACs, 2)+"W",
			report.FormatSI(l.Power.DMVA, 2)+"W",
			report.FormatSI(l.Power.TUN, 2)+"W",
			report.FormatSI(l.Power.BPD, 2)+"W",
			report.FormatSI(l.Power.Misc, 2)+"W",
			report.FormatSI(l.Power.Total(), 2)+"W",
		)
	}
	if *csv {
		fmt.Fprint(stdout, tb.CSV())
	} else {
		fmt.Fprintln(stdout, tb.Render())
	}
	fmt.Fprintf(stdout, "frame latency : %ss\n", report.FormatSI(rep.FrameLatency, 3))
	fmt.Fprintf(stdout, "throughput    : %s FPS\n", report.FormatSI(rep.FPS, 3))
	fmt.Fprintf(stdout, "max power     : %s W\n", report.FormatSI(rep.MaxPower, 3))
	fmt.Fprintf(stdout, "avg power     : %s W\n", report.FormatSI(rep.AvgPower, 3))
	fmt.Fprintf(stdout, "efficiency    : %.4g KFPS/W\n", rep.KFPSPerW)
	fmt.Fprintf(stdout, "workload      : %d MACs, %d weights\n", rep.TotalMACs, rep.TotalWeights)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h prints usage and exits 0, like flag.ExitOnError
		}
		fmt.Fprintln(os.Stderr, "lightator-sim:", err)
		os.Exit(1)
	}
}
