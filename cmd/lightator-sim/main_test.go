package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// TestGoldenFlags pins the CLI surface: every documented flag must stay
// present under its exact name (scripts and CI depend on them).
func TestGoldenFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-h"}, &stdout, &stderr)
	if err != flag.ErrHelp {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	usage := stderr.String()
	for _, name := range []string{"-model", "-w", "-a", "-mx-first", "-csv"} {
		if !strings.Contains(usage, name) {
			t.Errorf("usage output lost flag %s:\n%s", name, usage)
		}
	}
}

// TestSmokeRun drives the simulator end to end for a small model and
// checks the headline numbers are rendered.
func TestSmokeRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-model", "lenet"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"lenet on Lightator [4:4]", "throughput", "efficiency", "workload"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// CSV mode emits the same table machine-readably.
	stdout.Reset()
	if err := run([]string{"-model", "lenet", "-csv"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Layer,Kind,W,") {
		t.Errorf("csv output missing header:\n%s", stdout.String())
	}
}

// TestBadInputs pins the error paths: unknown model and invalid
// precision fail instead of printing garbage.
func TestBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-model", "nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown model did not fail")
	}
	if err := run([]string{"-w", "99"}, &stdout, &stderr); err == nil {
		t.Error("invalid precision did not fail")
	}
}
