// Command lightator-train trains a model on one of the synthetic tasks,
// runs quantization-aware fine-tuning at a [W:A] configuration, and
// reports digital-quantized and photonic (crosstalk-aware) accuracy.
//
// Usage:
//
//	lightator-train -task mnist -w 4 -a 4
//	lightator-train -task cifar10 -w 3 -a 4 -epochs 6 -qat 3
package main

import (
	"flag"
	"fmt"
	"os"

	"lightator/internal/dataset"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/train"
)

func main() {
	task := flag.String("task", "mnist", "task: mnist, cifar10, cifar100")
	wBits := flag.Int("w", 4, "weight bits for QAT")
	aBits := flag.Int("a", 4, "activation bits")
	mxFirst := flag.Int("mx-first", 0, "Lightator-MX first-layer weight bits (0 = uniform)")
	epochs := flag.Int("epochs", 5, "float training epochs")
	qat := flag.Int("qat", 3, "QAT fine-tuning epochs")
	trainN := flag.Int("train", 2000, "training samples")
	testN := flag.Int("test", 500, "test samples")
	width := flag.Int("width", 8, "VGG9-slim base width (CIFAR tasks)")
	photonicN := flag.Int("photonic", 100, "photonic evaluation samples (0 = skip)")
	seed := flag.Int64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "training workers (0 = NumCPU)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "lightator-train:", err)
		os.Exit(1)
	}

	var (
		full *dataset.Synth
		net  *nn.Sequential
		err  error
	)
	switch *task {
	case "mnist":
		full = dataset.NewDigits(*trainN+*testN, *seed)
		net = models.BuildLeNet(10, *aBits)
	case "cifar10":
		full = dataset.NewObjects10(*trainN+*testN, *seed)
		net, err = models.BuildVGG9Slim(3, 32, 32, 10, *width, *aBits)
	case "cifar100":
		full = dataset.NewObjects100(*trainN+*testN, *seed)
		net, err = models.BuildVGG9Slim(3, 32, 32, 100, *width, *aBits)
	default:
		fail(fmt.Errorf("unknown task %q", *task))
	}
	if err != nil {
		fail(err)
	}
	trainSet, testSet, err := full.Split(*trainN)
	if err != nil {
		fail(err)
	}

	net.InitHe(*seed + 13)
	cfg := train.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.QATEpochs = *qat
	cfg.WBits = *wBits
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Verbose = true
	fmt.Printf("training %s on %s: %d train / %d test, [%d:%d]",
		net.Layers[0].Name(), full.TaskName, trainSet.Len(), testSet.Len(), *wBits, *aBits)
	if *mxFirst != 0 {
		fmt.Printf(" (MX first layer [%d:%d])", *mxFirst, *aBits)
	}
	fmt.Println()

	if _, err := train.Train(net, trainSet, cfg); err != nil {
		fail(err)
	}
	if *mxFirst != 0 {
		if err := nn.SetLayerWeightBits(net, 0, *mxFirst); err != nil {
			fail(err)
		}
	}
	acc, err := train.Evaluate(net, testSet, 64)
	if err != nil {
		fail(err)
	}
	fmt.Printf("digital quantized accuracy: %.2f%%\n", acc*100)

	if *photonicN > 0 {
		pe, err := nn.NewPhotonicExec(net, *aBits, oc.Physical)
		if err != nil {
			fail(err)
		}
		pacc, err := train.EvaluatePhotonic(pe, testSet, 16, *photonicN)
		if err != nil {
			fail(err)
		}
		fmt.Printf("photonic (crosstalk) accuracy on %d samples: %.2f%%\n", *photonicN, pacc*100)
		fmt.Printf("network occupies %d optical-core arms; full-residency tuning power %.3g W\n",
			pe.ArmCount(), pe.HeaterPower())
	}
}
