// Command lightator-train trains a model on one of the synthetic tasks,
// runs quantization-aware fine-tuning at a [W:A] configuration, and
// reports digital-quantized and photonic (crosstalk-aware) accuracy.
//
// Usage:
//
//	lightator-train -task mnist -w 4 -a 4
//	lightator-train -task cifar10 -w 3 -a 4 -epochs 6 -qat 3
//	lightator-train -task mnist -analog         # crosstalk-in-the-loop QAT
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lightator/internal/dataset"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/train"
)

// run executes the command against args (excluding the program name),
// writing output to stdout and usage/errors to stderr. Split from main
// so the CLI surface is testable (flag set, golden flags, smoke run).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lightator-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	task := fs.String("task", "mnist", "task: mnist, cifar10, cifar100")
	wBits := fs.Int("w", 4, "weight bits for QAT")
	aBits := fs.Int("a", 4, "activation bits")
	mxFirst := fs.Int("mx-first", 0, "Lightator-MX first-layer weight bits (0 = uniform)")
	epochs := fs.Int("epochs", 5, "float training epochs")
	qat := fs.Int("qat", 3, "QAT fine-tuning epochs")
	trainN := fs.Int("train", 2000, "training samples")
	testN := fs.Int("test", 500, "test samples")
	width := fs.Int("width", 8, "VGG9-slim base width (CIFAR tasks)")
	photonicN := fs.Int("photonic", 100, "photonic evaluation samples (0 = skip)")
	analog := fs.Bool("analog", false, "crosstalk-in-the-loop QAT: fine-tune against the Physical optical forward instead of the plain quantization grid")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "training workers (0 = NumCPU; never affects the trained weights)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		full *dataset.Synth
		net  *nn.Sequential
		err  error
	)
	switch *task {
	case "mnist":
		full = dataset.NewDigits(*trainN+*testN, *seed)
		net = models.BuildLeNet(10, *aBits)
	case "cifar10":
		full = dataset.NewObjects10(*trainN+*testN, *seed)
		net, err = models.BuildVGG9Slim(3, 32, 32, 10, *width, *aBits)
	case "cifar100":
		full = dataset.NewObjects100(*trainN+*testN, *seed)
		net, err = models.BuildVGG9Slim(3, 32, 32, 100, *width, *aBits)
	default:
		return fmt.Errorf("unknown task %q", *task)
	}
	if err != nil {
		return err
	}
	trainSet, testSet, err := full.Split(*trainN)
	if err != nil {
		return err
	}

	net.InitHe(*seed + 13)
	cfg := train.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.QATEpochs = *qat
	cfg.WBits = *wBits
	cfg.Workers = *workers
	cfg.Seed = *seed
	cfg.Verbose = true
	if *analog {
		core, err := oc.NewCore(*wBits, *aBits, oc.Physical)
		if err != nil {
			return err
		}
		cfg.AnalogCore = core
	}
	fmt.Fprintf(stdout, "training %s on %s: %d train / %d test, [%d:%d]",
		net.Layers[0].Name(), full.TaskName, trainSet.Len(), testSet.Len(), *wBits, *aBits)
	if *mxFirst != 0 {
		fmt.Fprintf(stdout, " (MX first layer [%d:%d])", *mxFirst, *aBits)
	}
	if *analog {
		fmt.Fprint(stdout, " (analog QAT: Physical crosstalk in the loop)")
	}
	fmt.Fprintln(stdout)

	if _, err := train.Train(net, trainSet, cfg); err != nil {
		return err
	}
	if *mxFirst != 0 {
		if err := nn.SetLayerWeightBits(net, 0, *mxFirst); err != nil {
			return err
		}
	}
	acc, err := train.Evaluate(net, testSet, 64)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "digital quantized accuracy: %.2f%%\n", acc*100)

	if *photonicN > 0 {
		pe, err := nn.NewPhotonicExec(net, *aBits, oc.Physical)
		if err != nil {
			return err
		}
		pacc, err := train.EvaluatePhotonic(pe, testSet, 16, *photonicN)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "photonic (crosstalk) accuracy on %d samples: %.2f%%\n", *photonicN, pacc*100)
		fmt.Fprintf(stdout, "network occupies %d optical-core arms; full-residency tuning power %.3g W\n",
			pe.ArmCount(), pe.HeaterPower())
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			return // -h prints usage and exits 0, like flag.ExitOnError
		}
		fmt.Fprintln(os.Stderr, "lightator-train:", err)
		os.Exit(1)
	}
}
