package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// TestGoldenFlags pins the CLI surface: every documented flag must stay
// present under its exact name (scripts and CI depend on them).
func TestGoldenFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-h"}, &stdout, &stderr)
	if err != flag.ErrHelp {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	usage := stderr.String()
	for _, name := range []string{
		"-task", "-w", "-a", "-mx-first", "-epochs", "-qat",
		"-train", "-test", "-width", "-photonic", "-seed", "-workers",
	} {
		if !strings.Contains(usage, name) {
			t.Errorf("usage output lost flag %s:\n%s", name, usage)
		}
	}
}

// TestSmokeRun drives a miniature end-to-end training run (float + QAT +
// photonic eval) and checks the report lines appear. Sizes are tiny so
// the race-enabled CI job stays fast.
func TestSmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-task", "mnist", "-epochs", "1", "-qat", "1",
		"-train", "24", "-test", "8", "-photonic", "4", "-workers", "2",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"training conv1 on synth-mnist",
		"digital quantized accuracy",
		"photonic (crosstalk) accuracy",
		"optical-core arms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBadInputs pins the error paths.
func TestBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-task", "nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown task did not fail")
	}
	if err := run([]string{"-task", "mnist", "-train", "0"}, &stdout, &stderr); err == nil {
		t.Error("empty training split did not fail")
	}
}
