// Command linkcheck verifies the relative links in the repository's
// markdown files: every [text](path) whose target is not an external URL
// or a pure fragment must resolve to an existing file or directory,
// relative to the file that contains it. CI runs it (via `make
// linkcheck`, part of `make check`) so docs cannot rot silently as the
// repo is refactored.
//
// Usage:
//
//	linkcheck [root]    # default root: .
//
// Exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) /
// ![alt](target). Reference-style links and autolinks are out of scope —
// the repo's docs use inline links only.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// skippable reports whether a link target is outside the checker's
// remit: external URLs, mail links, and in-page fragments.
func skippable(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// checkFile returns one message per broken relative link in the markdown
// file at path.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// In-repo anchors (FILE.md#section) check the file part only.
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
				if target == "" {
					continue
				}
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q (%s)", path, i+1, m[1], resolved))
			}
		}
	}
	return broken, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		msgs, err := checkFile(path)
		if err != nil {
			return err
		}
		broken = append(broken, msgs...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		os.Exit(1)
	}
	if len(broken) > 0 {
		for _, msg := range broken {
			fmt.Fprintln(os.Stderr, msg)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken relative link(s)\n", len(broken))
		os.Exit(1)
	}
}
