// Command metricscheck verifies the metric-series contract in
// docs/OBSERVABILITY.md: every `lightator_*` series named in the doc
// must exist in a live /metrics scrape. It stands up an in-process
// server over a small accelerator, exercises every compute endpoint
// once so counters and latency summaries materialise, scrapes
// /metrics, and diffs the doc's series names against the output — the
// same rot-prevention pattern cmd/linkcheck applies to relative links.
// CI runs it via `make metricscheck` (part of `make check`).
//
// Usage:
//
//	metricscheck [doc]    # default doc: docs/OBSERVABILITY.md
//
// Exits non-zero listing every documented series missing from the
// scrape.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"lightator"
)

// seriesRe matches metric series names in the doc and in the scrape.
var seriesRe = regexp.MustCompile(`lightator_[a-z0-9_]+`)

// docSeries extracts the unique series names the doc references.
func docSeries(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, m := range seriesRe.FindAllString(string(data), -1) {
		seen[m] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// scrapeSeries collects the series names present in a /metrics scrape.
func scrapeSeries(text string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if name := seriesRe.FindString(line); name != "" && strings.HasPrefix(line, name) {
			out[name] = true
		}
	}
	return out
}

// post fires one JSON request and drains the response.
func post(url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return nil
}

// exercise sends one request down every compute endpoint so every
// counter family (including the latency summaries, which only render
// once observed) exists in the scrape.
func exercise(acc *lightator.Accelerator, base string) error {
	rng := rand.New(rand.NewSource(11))
	scene := lightator.NewImage(32, 32, 3)
	for i := range scene.Pix {
		scene.Pix[i] = rng.Float64()
	}
	wire := lightator.EncodeImage(scene)
	if err := post(base+"/v1/capture", lightator.NewCaptureRequest(wire, nil)); err != nil {
		return err
	}
	if err := post(base+"/v1/compress", lightator.NewCompressRequest(wire, nil)); err != nil {
		return err
	}
	kernels := acc.Kernels()
	if len(kernels) > 0 {
		if err := post(base+"/v1/process", lightator.NewProcessRequest(wire, kernels[0], nil)); err != nil {
			return err
		}
	}
	models := acc.Models()
	if len(models) > 0 {
		if err := post(base+"/v1/infer", lightator.InferRequest{Scene: &wire, Model: models[0]}); err != nil {
			return err
		}
	}
	if err := post(base+"/v1/matvec", lightator.MatVecRequest{
		Weights:     [][]float64{{0.5, -0.25}, {0.125, 0.75}},
		Activations: []float64{1, 0.5},
	}); err != nil {
		return err
	}
	return post(base+"/v1/simulate", lightator.SimulateRequest{Model: "lenet"})
}

func run() error {
	doc := "docs/OBSERVABILITY.md"
	if len(os.Args) > 1 {
		doc = os.Args[1]
	}
	wanted, err := docSeries(doc)
	if err != nil {
		return err
	}
	if len(wanted) == 0 {
		return fmt.Errorf("%s names no lightator_* series — contract check is vacuous", doc)
	}

	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 32, 32
	acc, err := lightator.New(cfg)
	if err != nil {
		return err
	}
	srv, err := acc.NewServer(lightator.ServeOptions{Workers: 1, Debug: true})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	if err := exercise(acc, ts.URL); err != nil {
		return err
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	scrape, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	have := scrapeSeries(string(scrape))

	var missing []string
	for _, name := range wanted {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "metricscheck: %s documents %s, absent from /metrics\n", doc, name)
		}
		return fmt.Errorf("%d documented series missing from the scrape (%d checked)", len(missing), len(wanted))
	}
	fmt.Printf("metricscheck: %d series documented in %s, all present in /metrics\n", len(wanted), doc)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}
