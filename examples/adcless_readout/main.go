// adcless_readout regenerates paper Fig. 4(d): the pixel voltage V_PD
// discharging under light while the CRC's 15 comparators switch on one
// after another — the ADC-less readout that directly gates the VCSEL
// driver's transistors.
package main

import (
	"fmt"
	"strings"

	"lightator/internal/analog"
)

func main() {
	pd := analog.DefaultPhotodiode()
	crc := analog.DefaultCRC()

	// A full-scale exposure over 30 ns sampled at the comparator clock,
	// as in Fig. 4(d).
	samples := crc.Waveforms(pd, 1.0, 30, 2.5, 10)

	fmt.Println("Fig. 4(d) reproduction: V_PD discharge and comparator outputs")
	fmt.Println("time(ns)  clk  V_PD(V)  VS1..VS15")
	for i := 0; i < len(samples); i += 10 {
		s := samples[i]
		var bits strings.Builder
		for _, v := range s.VS {
			if v == 1 {
				bits.WriteByte('1')
			} else {
				bits.WriteByte('0')
			}
		}
		fmt.Printf("%7.2f   %.0f   %6.3f   %s\n", s.TimeNs, s.Clk, s.VPD, bits.String())
	}

	// The resulting 4-bit codes for a sweep of scene brightness, and the
	// VCSEL optical power each code drives.
	fmt.Println("\nbrightness -> CRC code -> VCSEL optical power")
	ch := analog.NewChannel(1550e-9)
	for i := 0; i <= 10; i++ {
		in := float64(i) / 10
		vpd := pd.Voltage(in)
		code := crc.Code(vpd)
		p := ch.ModulateFromPixel(vpd)
		fmt.Printf("  %.1f -> %2d -> %.3f mW\n", in, code, p*1e3)
	}
}
