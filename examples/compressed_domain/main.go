// Compressed-domain processing: the paper's "versatile image processing"
// claim, end to end. A scene is captured by the ADC-less sensor and
// compressed by the Compressive Acquisitor; every registered kernel then
// runs directly on the compressed measurement plane — reconstruction,
// edge detection, downsampling, denoising, sharpening — each expressed
// as a matrix operator on the optical MVM path. No kernel ever sees a
// reconstructed full-resolution frame.
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"lightator"
)

// scene renders a bright disk on a dark background with a soft gradient:
// enough structure for edges, smoothing and reconstruction to be visible
// in the printed statistics.
func scene(size int) *lightator.Image {
	s := lightator.NewImage(size, size, 3)
	c := float64(size) / 2
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := 0.1 + 0.1*float64(x)/float64(size)
			if math.Hypot(float64(x)-c, float64(y)-c) < float64(size)/4 {
				v = 0.85
			}
			s.Set(y, x, 0, v)
			s.Set(y, x, 1, v*0.9)
			s.Set(y, x, 2, v*0.7)
		}
	}
	return s
}

// planeStats summarises an output plane (min/max matter: edge responses
// are signed).
func planeStats(im *lightator.Image) (min, max, mean float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range im.Pix {
		min = math.Min(min, v)
		max = math.Max(max, v)
		mean += v
	}
	mean /= float64(len(im.Pix))
	return min, max, mean
}

func main() {
	const sensorSize = 64
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = sensorSize, sensorSize
	cfg.CAPool = 4 // 4x4 pooling: a 16x16 measurement plane per frame
	acc, err := lightator.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sc := scene(sensorSize)

	small, err := acc.AcquireCompressed(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scene %dx%d -> compressed plane %dx%d (CR %dx per axis)\n\n",
		sensorSize, sensorSize, small.H, small.W, cfg.CAPool)

	// Single-scene path: each kernel runs on the compressed measurements.
	fmt.Println("kernel              output     min      max     mean")
	for _, name := range acc.Kernels() {
		out, err := acc.ProcessCompressed(sc, name)
		if err != nil {
			log.Fatal(err)
		}
		min, max, mean := planeStats(out)
		fmt.Printf("%-18s %4dx%-4d %7.3f  %7.3f  %7.3f\n", name, out.H, out.W, min, max, mean)
	}

	// Batched path: a burst of frames through the concurrent pipeline
	// with the kernel as a post-stage (deterministic for any worker
	// count).
	scenes := make([]*lightator.Image, 16)
	for i := range scenes {
		scenes[i] = sc
	}
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: runtime.NumCPU(), Kernel: "edge"})
	if err != nil {
		log.Fatal(err)
	}
	results, stats, err := p.Run(scenes)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	fmt.Printf("\nbatched edge detection over %d frames:\n%s\n", len(scenes), stats.Render())

	// Least-squares sanity: reconstruction expands the plane back to full
	// resolution; re-compressing it recovers the measurements.
	recon, err := acc.ProcessCompressed(sc, "reconstruct")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstruct: %dx%d plane -> %dx%d estimate of the full-resolution grayscale frame\n",
		small.H, small.W, recon.H, recon.W)
}
