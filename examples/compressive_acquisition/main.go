// compressive_acquisition demonstrates Eq. 1 of the paper: RGB-to-
// grayscale conversion fused with average pooling into a single optical
// pass, executed on the MR banks — and verifies the photonic result
// against exact arithmetic.
package main

import (
	"fmt"
	"log"
	"math"

	"lightator"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

func main() {
	// Eq. 1's fused weights for 2x2 pooling over full-RGB pixels:
	// 12 terms of 0.25 * {0.299, 0.587, 0.114}.
	w, err := oc.CAWeightsRGB(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Eq. 1 coefficients (2x2 RGB window):")
	for i := 0; i < len(w); i += 3 {
		fmt.Printf("  P%d: R %.5f  G %.5f  B %.5f\n", i/3+1, w[i], w[i+1], w[i+2])
	}

	// Bayer-adapted weights: one colour per site, G split over its two
	// sites.
	wb, err := oc.CAWeightsBayer(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBayer RGGB quad coefficients: R %.4f  G %.4f  G %.4f  B %.4f\n", wb[0], wb[1], wb[2], wb[3])

	// Compress a colourful test scene at two pooling factors and compare
	// the photonic pass against exact float arithmetic.
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 64, 64
	for _, pool := range []int{2, 4} {
		cfg.CAPool = pool
		acc, err := lightator.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		scene := lightator.NewImage(64, 64, 3)
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				scene.Set(y, x, 0, 0.5+0.5*math.Sin(float64(x)/9))
				scene.Set(y, x, 1, float64(y)/63)
				scene.Set(y, x, 2, 0.3)
			}
		}
		got, err := acc.AcquireCompressed(scene)
		if err != nil {
			log.Fatal(err)
		}

		// Exact reference: capture then compute the weighted sums in
		// float.
		arr, _ := sensor.NewArray(64, 64)
		frame, _ := arr.Capture(scene)
		core, _ := oc.NewCore(4, 4, oc.Ideal)
		ca, _ := oc.NewAcquisitor(core, pool)
		ref, err := ca.Reference(frame)
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for y := 0; y < got.H; y++ {
			for x := 0; x < got.W; x++ {
				if d := math.Abs(got.At(y, x, 0) - ref.At(y, x, 0)); d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("\n%dx%d pooling: %dx%d -> %dx%d, worst photonic-vs-exact error %.4f (4-bit LSB = %.4f)\n",
			pool, pool, 64, 64, got.H, got.W, worst, 1.0/15)
	}
}
