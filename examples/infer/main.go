// Compressed-domain CNN inference: the paper's headline DNN workload,
// end to end. Scenes are captured by the ADC-less sensor, compressed by
// the Compressive Acquisitor, and classified by networks whose conv and
// dense layers execute on the optical MVM path directly over the
// measurement plane — the electronic block only runs activations,
// pooling and quantizers. The tour covers the built-in model registry,
// the single-scene and batched facade paths, the pre-compressed-plane
// path, and the digital reference that isolates the analog error.
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"lightator"
)

// scene renders a bright disk jittered by i on a dim background: per-
// frame structure that survives compressive averaging, so different
// frames land on different logits.
func scene(size, i int) *lightator.Image {
	s := lightator.NewImage(size, size, 3)
	cy := float64(size)/2 + float64(i%5-2)*float64(size)/8
	cx := float64(size)/2 + float64((i*3)%5-2)*float64(size)/8
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := 0.1
			if math.Hypot(float64(x)-cx, float64(y)-cy) < float64(size)/5 {
				v = 0.9
			}
			s.Set(y, x, 0, v)
			s.Set(y, x, 1, v)
			s.Set(y, x, 2, v)
		}
	}
	return s
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func main() {
	const sensorSize = 64
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = sensorSize, sensorSize
	cfg.CAPool = 4 // 4x4 pooling: a 16x16 measurement plane per frame
	acc, err := lightator.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The model registry: built-in demonstration models are compiled onto
	// the MR banks at construction; RegisterModel adds trained networks.
	fmt.Println("registered inference models:")
	for _, name := range acc.Models() {
		desc, err := acc.ModelDescription(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %s\n", name, desc)
	}

	// Single-scene path: capture + CA + optical inference in one call.
	sc := scene(sensorSize, 0)
	logits, err := acc.Infer(sc, "tiny-cnn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiny-cnn on one scene: class %d, logits %.3f\n", argmax(logits), logits)

	// Pre-compressed path: callers already holding CA measurements skip
	// capture and compression.
	plane, err := acc.AcquireCompressed(sc)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := acc.InferPlane(plane, "tiny-cnn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-compressed plane:  class %d (plane %dx%d)\n", argmax(direct), plane.H, plane.W)

	// The digital reference isolates the analog path: same quantized
	// network, exact arithmetic, no crosstalk or noise.
	ref, err := acc.InferReference(plane, "tiny-cnn")
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range ref {
		worst = math.Max(worst, math.Abs(direct[i]-ref[i]))
	}
	fmt.Printf("optical vs digital reference: top-1 agrees=%v, worst logit gap %.4f\n",
		argmax(direct) == argmax(ref), worst)

	// Batched path: a burst of frames through the concurrent pipeline
	// with inference as a post-stage. Per-frame seeding makes the batch
	// bit-identical for any worker count, even in PhysicalNoisy fidelity.
	scenes := make([]*lightator.Image, 16)
	for i := range scenes {
		scenes[i] = scene(sensorSize, i)
	}
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: runtime.NumCPU(), Infer: "tiny-cnn"})
	if err != nil {
		log.Fatal(err)
	}
	results, stats, err := p.Run(scenes)
	if err != nil {
		log.Fatal(err)
	}
	classes := make([]int, len(results))
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		classes[i] = argmax(r.Logits)
	}
	fmt.Printf("\nbatched inference over %d frames -> classes %v\n%s\n", len(scenes), classes, stats.Render())

	// The same workload serves over HTTP: acc.NewServer exposes it at
	// POST /v1/infer with per-model micro-batching (see examples/serving
	// and docs/INFER.md for the curl shapes).
}
