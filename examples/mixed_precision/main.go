// mixed_precision sweeps Lightator's [W:A] configurations, including the
// paper's Lightator-MX mixed-precision schemes, and prints the power /
// throughput trade-off space of Table 1's Lightator rows.
package main

import (
	"fmt"
	"log"

	"lightator"
	"lightator/internal/report"
)

func main() {
	configs := []lightator.Precision{
		{WBits: 4, ABits: 4},
		{WBits: 3, ABits: 4},
		{WBits: 2, ABits: 4},
		{WBits: 3, ABits: 4, MXFirstWBits: 4},
		{WBits: 2, ABits: 4, MXFirstWBits: 4},
	}
	for _, model := range []string{"lenet", "vgg9-ca"} {
		tb := report.Table{
			Title:   fmt.Sprintf("\nLightator precision sweep on %s", model),
			Headers: []string{"Config", "MaxPower(W)", "AvgPower(W)", "Latency", "FPS", "KFPS/W"},
		}
		for _, prec := range configs {
			acc, err := lightator.New(lightator.Config{Precision: prec, Fidelity: lightator.Physical})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := acc.Simulate(model)
			if err != nil {
				log.Fatal(err)
			}
			tb.AddRow(prec.Name(),
				fmt.Sprintf("%.3g", rep.MaxPower),
				fmt.Sprintf("%.3g", rep.AvgPower),
				report.FormatSI(rep.FrameLatency, 3)+"s",
				report.FormatSI(rep.FPS, 3),
				fmt.Sprintf("%.4g", rep.KFPSPerW),
			)
		}
		fmt.Println(tb.Render())
	}
	fmt.Println("The MX rows trade a little max power for first-layer precision,")
	fmt.Println("recovering most of the [4:4] accuracy at close to [3:4]/[2:4] power")
	fmt.Println("(paper Table 1, observation 4).")
}
