// mr_spectrum regenerates the behaviour of paper Fig. 1: the through- and
// drop-port spectra of a weight-bank microring, and how tuning the
// resonance imprints a weight onto the transmitted signal.
package main

import (
	"fmt"
	"strings"

	"lightator"
)

func main() {
	lam0 := lightator.CBandCenter
	ring := lightator.WeightBankRing(lam0)

	fmt.Printf("weight-bank MR: radius 3 um, Q = %.0f, FWHM = %.3f nm, FSR = %.2f nm\n\n",
		ring.QFactor(lam0), ring.FWHM(lam0)*1e9, ring.FSR(lam0)*1e9)

	// Sweep +-1.5 nm around the resonance for three tuning states.
	for _, tune := range []float64{0, 0.2e-9, 0.6e-9} {
		ring.Tune(tune)
		fmt.Printf("tuning shift %+.1f nm (weight %.3f):\n", tune*1e9,
			ring.ThroughTransmission(lam0)-ring.DropTransmission(lam0))
		pts := ring.Spectrum(lam0-1.5e-9, lam0+1.5e-9, 61)
		for i := 0; i < len(pts); i += 4 {
			p := pts[i]
			bar := strings.Repeat("#", int(p.Through*40))
			fmt.Printf("  %+.2f nm  T=%.3f D=%.3f |%s\n",
				(p.Wavelength-lam0)*1e9, p.Through, p.Drop, bar)
		}
		fmt.Println()
	}

	// The weight ladder: solve for each 4-bit level's detuning.
	fmt.Println("4-bit weight ladder (level -> detuning -> achieved differential weight):")
	ring.Tune(0)
	min, max := ring.WeightRange(lam0)
	for level := 0; level < 16; level += 3 {
		w := min + (max-min)*float64(level)/15
		shift, err := ring.SolveWeight(lam0, w)
		if err != nil {
			fmt.Println("  solve:", err)
			continue
		}
		got := ring.ThroughTransmission(lam0) - ring.DropTransmission(lam0)
		fmt.Printf("  level %2d: detune %+.3f nm -> d = %+.4f\n", level, shift*1e9, got)
	}
}
