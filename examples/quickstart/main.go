// Quickstart: capture a synthetic scene with the ADC-less sensor, run the
// Compressive Acquisitor, execute a raw photonic matrix-vector multiply,
// and simulate LeNet end to end — the whole public API in one sitting.
package main

import (
	"fmt"
	"log"
	"math"

	"lightator"
)

func main() {
	acc, err := lightator.New(lightator.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic 256x256 RGB scene: a bright disk on a dark gradient.
	scene := lightator.NewImage(256, 256, 3)
	for y := 0; y < 256; y++ {
		for x := 0; x < 256; x++ {
			base := 0.15 * float64(x) / 255
			d := math.Hypot(float64(x-128), float64(y-128))
			v := base
			if d < 60 {
				v = 0.9
			}
			scene.Set(y, x, 0, v)
			scene.Set(y, x, 1, v*0.8)
			scene.Set(y, x, 2, v*0.6)
		}
	}

	// 1. ADC-less acquisition: 15 comparators per pixel, 4-bit codes.
	frame, err := acc.Capture(scene)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %dx%d frame; centre code %d, corner code %d\n",
		frame.Rows, frame.Cols, frame.CodeAt(128, 128), frame.CodeAt(0, 0))

	// 2. Compressive acquisition: fused RGB->gray + 2x2 average pooling
	//    in a single optical pass (Eq. 1 of the paper).
	small, err := acc.AcquireCompressed(scene)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed to %dx%d grayscale; centre %.2f, corner %.2f\n",
		small.H, small.W, small.At(64, 64, 0), small.At(0, 0, 0))

	// 3. A raw photonic MVM on the MR banks: weights on ring detunings,
	//    activations on VCSEL intensity, balanced detection for sign.
	weights := [][]float64{
		{0.5, -0.25, 1.0, -1.0, 0.125, 0.75, -0.5, 0.25, -0.125},
		{-1.0, 1.0, -0.75, 0.5, -0.25, 0.125, 0.875, -0.375, 0.625},
	}
	acts := []float64{1, 0.5, 0.25, 0.75, 1, 0.125, 0.625, 0.875, 0.375}
	y, err := acc.MatVec(weights, acts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("photonic MVM result: [%.3f %.3f]\n", y[0], y[1])

	// 4. Architecture simulation: LeNet mapped onto the 96-bank core.
	rep, err := acc.Simulate("lenet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LeNet %s: %.3g W max, %.3g us/frame, %.4g KFPS/W\n",
		rep.Precision.Name(), rep.MaxPower, rep.FrameLatency*1e6, rep.KFPSPerW)
}
