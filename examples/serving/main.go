// Example serving: stand up the HTTP serving layer in-process, hit it
// with concurrent clients (so requests coalesce into micro-batches), and
// verify a response is byte-identical to the direct facade call — the
// serving determinism contract, end to end over a real TCP socket.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"lightator"
)

func main() {
	// A small noisy accelerator: determinism must hold even with analog
	// noise enabled, thanks to per-request seeding.
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 64, 64
	cfg.Fidelity = lightator.PhysicalNoisy
	acc, err := lightator.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := acc.NewServer(lightator.ServeOptions{
		Workers:    2,
		BatchSize:  4,
		BatchDelay: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Println("serving on", base)

	// Eight concurrent clients, distinct scenes: the micro-batcher
	// coalesces them into shared pipeline batches.
	const clients = 8
	scenes := make([]*lightator.Image, clients)
	for i := range scenes {
		rng := rand.New(rand.NewSource(int64(40 + i)))
		s := lightator.NewImage(cfg.SensorRows, cfg.SensorCols, 3)
		for j := range s.Pix {
			s.Pix[j] = rng.Float64()
		}
		scenes[i] = s
	}

	var wg sync.WaitGroup
	for i := range scenes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(lightator.NewCompressRequest(lightator.EncodeImage(scenes[i]), nil))
			resp, err := http.Post(base+"/v1/compress", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("client %d: HTTP %d", i, resp.StatusCode)
			}
			var cr lightator.CompressResponse
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				log.Fatal(err)
			}
			got, err := lightator.DecodeImage(cr.Image)
			if err != nil {
				log.Fatal(err)
			}

			// The contract: identical to the direct single-scene batch.
			want, err := acc.AcquireCompressedBatch([]*lightator.Image{scenes[i]}, 1)
			if err != nil {
				log.Fatal(err)
			}
			for j := range want[0].Pix {
				if got.Pix[j] != want[0].Pix[j] {
					log.Fatalf("client %d: pixel %d differs over HTTP", i, j)
				}
			}
			fmt.Printf("client %d: %dx%d compressed plane, byte-identical to direct call\n",
				i, got.H, got.W)
		}(i)
	}
	wg.Wait()

	// Peek at the serving metrics, then shut down gracefully.
	m := srv.Metrics()
	fmt.Printf("batcher: %d size-flushes, %d deadline-flushes, %d frames, max batch %d\n",
		m.Batcher.SizeFlushes, m.Batcher.DeadlineFlushes, m.Batcher.BatchedFrames, m.Batcher.MaxBatch)
	fmt.Printf("compress pipeline: %d frames at %.1f FPS aggregate\n",
		m.Compress.Frames, m.Compress.FPS)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
