// Streaming: serve a continuous frame stream through the batched
// concurrent pipeline — a bounded worker pool running ADC-less capture,
// compressive acquisition and a small photonic MVM head per frame, with
// backpressure and deterministic per-frame noise seeding. This is the
// shape of a near-sensor deployment: a camera produces frames, the
// accelerator keeps up at an aggregate FPS no single goroutine could.
//
// Part two opens a persistent streaming session (the facade form of
// POST /v1/session) on a mostly-static scene and shows temporal delta
// reuse: only kernel windows whose CA measurements changed recompute,
// bit-identically, and the reuse fraction shows up in the session
// stats. See docs/SERVER.md#sessions.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"runtime"

	"lightator"
)

// syntheticScene renders frame t of a moving bright disk — each frame is
// distinct, so per-frame results differ meaningfully.
func syntheticScene(t, size int) *lightator.Image {
	scene := lightator.NewImage(size, size, 3)
	cx := float64(size)/2 + float64(size)/4*math.Sin(float64(t)/5)
	cy := float64(size)/2 + float64(size)/4*math.Cos(float64(t)/5)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := 0.1
			if math.Hypot(float64(x)-cx, float64(y)-cy) < float64(size)/6 {
				v = 0.9
			}
			scene.Set(y, x, 0, v)
			scene.Set(y, x, 1, v*0.8)
			scene.Set(y, x, 2, v*0.6)
		}
	}
	return scene
}

func main() {
	const (
		sensorSize = 64
		frames     = 48
	)
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = sensorSize, sensorSize
	cfg.Fidelity = lightator.PhysicalNoisy // noisy, yet reproducible: seeded per frame
	acc, err := lightator.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A 4-row MVM head over the compressed plane: four quadrant
	// detectors tracking where the disk is.
	side := sensorSize / cfg.CAPool
	weights := make([][]float64, 4)
	for q := range weights {
		weights[q] = make([]float64, side*side)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if (y < side/2) == (q < 2) && (x < side/2) == (q%2 == 0) {
					weights[q][y*side+x] = 1.0 / float64(side*side/4)
				}
			}
		}
	}

	workers := runtime.NumCPU()
	p, err := acc.NewPipeline(lightator.PipelineOptions{Workers: workers, Weights: weights})
	if err != nil {
		log.Fatal(err)
	}

	// Producer: a camera emitting frames into a channel. The pipeline's
	// bounded queues mean a slow consumer would throttle this loop
	// instead of buffering unboundedly.
	in := make(chan *lightator.Image)
	go func() {
		for t := 0; t < frames; t++ {
			in <- syntheticScene(t, sensorSize)
		}
		close(in)
	}()

	// Consumer: results arrive as frames finish (Index gives stream
	// order). Find the hottest quadrant per frame.
	quadrant := make([]int, frames)
	for res := range p.Stream(in) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		best := 0
		for q, v := range res.Output {
			if v > res.Output[best] {
				best = q
			}
		}
		quadrant[res.Index] = best
	}

	fmt.Printf("streamed %d frames through %d workers\n", frames, workers)
	fmt.Printf("disk quadrant track: %v\n", quadrant)
	stats := p.Stats()
	fmt.Println(stats.Render())

	// Part two: a streaming session with temporal delta reuse. Surveillance
	// shape — the scene is static except for a small square that moves
	// every few frames, so most kernel windows carry over unchanged.
	// Delta reuse needs a deterministic fidelity (it is forced off in
	// PhysicalNoisy, where per-frame noise makes stale outputs visible).
	cfg.Fidelity = lightator.Physical
	detAcc, err := lightator.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	seed := int64(42)
	sess, err := detAcc.NewSession(lightator.SessionOptions{
		Kind:    "process",
		Kernel:  "edge",
		Seed:    &seed,
		Workers: workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	in2 := make(chan *lightator.Image)
	go func() {
		defer close(in2)
		for t := 0; t < frames; t++ {
			scene := syntheticScene(t/8, sensorSize) // disk jumps every 8 frames
			in2 <- scene
		}
	}()
	err = sess.Stream(context.Background(), in2, func(r lightator.SessionFrameResult) error {
		if r.Err != nil {
			return r.Err
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sess.Stats()
	fmt.Printf("session: %d frames, %d/%d kernel windows reused (%.0f%%) — frame i is byte-identical to a per-frame call seeded DeriveSeed(seed, i)\n",
		st.Frames, st.BlocksReused, st.BlocksTotal, 100*st.ReusedFrac)
}
