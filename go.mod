module lightator

go 1.24
