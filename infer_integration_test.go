package lightator_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lightator"
	"lightator/internal/nn"
	"lightator/internal/train"
)

// planeDataset adapts a set of compressed measurement planes to
// train.Dataset: the training distribution served inference actually
// sees (capture + CA output), not raw scenes.
type planeDataset struct {
	planes []*lightator.Image
	labels []int
}

func (d *planeDataset) Len() int { return len(d.labels) }

func (d *planeDataset) Sample(i int, dst []float64) int {
	copy(dst, d.planes[i].Pix)
	return d.labels[i]
}

func (d *planeDataset) InputShape() []int {
	return []int{1, d.planes[0].H, d.planes[0].W}
}

// brightHalfScene renders a two-class scene: class 0 lights the top
// half, class 1 the bottom half, with per-pixel jitter.
func brightHalfScene(rng *rand.Rand, rows, cols, class int) *lightator.Image {
	s := lightator.NewImage(rows, cols, 3)
	for y := 0; y < rows; y++ {
		base := 0.15
		if (class == 0 && y < rows/2) || (class == 1 && y >= rows/2) {
			base = 0.8
		}
		for x := 0; x < cols; x++ {
			for c := 0; c < 3; c++ {
				v := base + rng.NormFloat64()*0.05
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				s.Pix[(y*cols+x)*3+c] = v
			}
		}
	}
	return s
}

// trainTinyInferModel trains the 2-class head on CA planes produced by a
// deterministic accelerator and returns the trained network plus a held-
// out accuracy.
func trainTinyInferModel(t *testing.T, rows, cols, pool int) (*nn.Sequential, float64) {
	t.Helper()
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols, cfg.CAPool = rows, cols, pool
	cfg.Fidelity = lightator.Ideal
	acc, err := lightator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	rng := rand.New(rand.NewSource(41))
	scenes := make([]*lightator.Image, n)
	labels := make([]int, n)
	for i := range scenes {
		labels[i] = i % 2
		scenes[i] = brightHalfScene(rng, rows, cols, labels[i])
	}
	planes, err := acc.AcquireCompressedBatch(scenes, 2)
	if err != nil {
		t.Fatal(err)
	}
	trainDS := &planeDataset{planes: planes[:48], labels: labels[:48]}
	testDS := &planeDataset{planes: planes[48:], labels: labels[48:]}

	h, w := rows/pool, cols/pool
	net := nn.NewSequential(
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", h*w, 8),
		nn.NewReLU("relu1"),
		nn.NewActQuant("aq1", 4),
		nn.NewDense("fc2", 8, 2),
	)
	net.InitHe(7)
	tcfg := train.DefaultConfig()
	tcfg.Epochs, tcfg.QATEpochs = 3, 1
	tcfg.BatchSize = 8
	tcfg.Workers = 2
	if _, err := train.Train(net, trainDS, tcfg); err != nil {
		t.Fatal(err)
	}
	accuracy, err := train.Evaluate(net, testDS, 16)
	if err != nil {
		t.Fatal(err)
	}
	return net, accuracy
}

// TestTrainedModelServedByteIdentical is the models/train integration
// test: a network trained with package train on CA planes is registered
// on the facade and served at /v1/infer; concurrent clients in every
// fidelity must receive bytes identical to the direct facade Infer call,
// and the trained model must actually have learned the task.
func TestTrainedModelServedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("training integration test skipped in -short mode")
	}
	const rows, cols, pool = 16, 16, 4
	net, accuracy := trainTinyInferModel(t, rows, cols, pool)
	if accuracy < 0.75 {
		t.Fatalf("trained tiny model only reaches %.0f%% held-out accuracy; training is broken", 100*accuracy)
	}

	for _, fid := range []lightator.Fidelity{lightator.Ideal, lightator.Physical, lightator.PhysicalNoisy} {
		t.Run(fid.String(), func(t *testing.T) {
			cfg := lightator.DefaultConfig()
			cfg.SensorRows, cfg.SensorCols, cfg.CAPool = rows, cols, pool
			cfg.Fidelity = fid
			acc, err := lightator.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// CloneShared: each fidelity's compile snapshots the same
			// trained weights without sharing scratch state.
			if err := acc.RegisterModel("trained-tiny", "trained 2-class bright-half head", net.CloneShared()); err != nil {
				t.Fatal(err)
			}
			srv, err := acc.NewServer(lightator.ServeOptions{
				Workers: 2, BatchSize: 3, BatchDelay: 3 * time.Millisecond, CacheEntries: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			const clients = 8
			rng := rand.New(rand.NewSource(1117))
			scenes := make([]*lightator.Image, clients)
			want := make([][]byte, clients)
			hits := 0
			for i := range scenes {
				class := i % 2
				scenes[i] = brightHalfScene(rng, rows, cols, class)
				logits, err := acc.Infer(scenes[i], "trained-tiny")
				if err != nil {
					t.Fatal(err)
				}
				top := 0
				if logits[1] > logits[0] {
					top = 1
				}
				if top == class {
					hits++
				}
				body, err := json.Marshal(lightator.InferResponse{Model: "trained-tiny", Logits: logits, Class: top})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = append(body, '\n')
			}
			// The trained model should classify the easy synthetic task
			// well even through the analog path.
			if hits < 6 {
				t.Errorf("optical inference only got %d/%d scenes right in %v", hits, clients, fid)
			}

			got := make([][]byte, clients)
			var wg sync.WaitGroup
			for i := range scenes {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					wire := lightator.EncodeImage(scenes[i])
					body, err := json.Marshal(lightator.InferRequest{
						Model: "trained-tiny",
						Scene: &wire,
					})
					if err != nil {
						t.Error(err)
						return
					}
					resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					defer resp.Body.Close()
					var buf bytes.Buffer
					if _, err := buf.ReadFrom(resp.Body); err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("client %d: status %d (%s)", i, resp.StatusCode, buf.String())
						return
					}
					got[i] = buf.Bytes()
				}(i)
			}
			wg.Wait()
			for i := range scenes {
				if got[i] == nil {
					t.Fatalf("client %d: no response", i)
				}
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("fidelity %v client %d: served /v1/infer differs from direct Infer", fid, i)
				}
			}
		})
	}
}
