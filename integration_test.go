package lightator_test

import (
	"math"
	"testing"

	"lightator"
	"lightator/internal/dataset"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/train"
)

// TestEndToEndPipeline wires the whole stack together: synthetic scene ->
// ADC-less capture -> compressive acquisition -> photonic inference with
// a (briefly) trained LeNet — the node-i flow of paper Fig. 2.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training integration test skipped in -short mode")
	}
	// Train a small LeNet on 28x28 digits.
	data := dataset.NewDigits(900, 21)
	trainSet, testSet, err := data.Split(750)
	if err != nil {
		t.Fatal(err)
	}
	net := models.BuildLeNet(10, 4)
	net.InitHe(3)
	cfg := train.DefaultConfig()
	cfg.Epochs = 2
	cfg.QATEpochs = 1
	cfg.Workers = 8
	if _, err := train.Train(net, trainSet, cfg); err != nil {
		t.Fatal(err)
	}
	digital, err := train.Evaluate(net, testSet, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Compile for the optical core and evaluate through the full analog
	// model including BPD noise.
	pe, err := nn.NewPhotonicExec(net, 4, oc.PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	photonic, err := train.EvaluatePhotonic(pe, testSet, 16, 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("digital %.1f%%, photonic(noisy) %.1f%%", digital*100, photonic*100)
	if photonic < digital-0.25 {
		t.Errorf("photonic accuracy %.2f collapsed vs digital %.2f", photonic, digital)
	}

	// The acquisition front end feeds the same numeric range the network
	// was trained on.
	acc, err := lightator.New(lightator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scene := lightator.NewImage(256, 256, 3)
	for y := 0; y < 256; y++ {
		for x := 0; x < 256; x++ {
			v := float64((x+y)%256) / 255
			for c := 0; c < 3; c++ {
				scene.Set(y, x, c, v)
			}
		}
	}
	small, err := acc.AcquireCompressed(scene)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < small.H; y += 16 {
		for x := 0; x < small.W; x += 16 {
			if v := small.At(y, x, 0); v < 0 || v > 1 {
				t.Fatalf("compressed value %g outside [0,1]", v)
			}
		}
	}
}

// TestSimulationCrossChecks ties the simulator's totals to independently
// computable quantities.
func TestSimulationCrossChecks(t *testing.T) {
	acc, err := lightator.New(lightator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"lenet", "vgg9", "alexnet"} {
		rep, err := acc.Simulate(m)
		if err != nil {
			t.Fatal(err)
		}
		layers, err := models.ByName(m)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalMACs != models.TotalMACs(layers) {
			t.Errorf("%s: simulator MACs %d != descriptor MACs %d", m, rep.TotalMACs, models.TotalMACs(layers))
		}
		if rep.TotalWeights != models.TotalWeights(layers) {
			t.Errorf("%s: simulator weights %d != descriptor weights %d", m, rep.TotalWeights, models.TotalWeights(layers))
		}
		// KFPS/W identity.
		want := rep.FPS / rep.MaxPower / 1000
		if math.Abs(rep.KFPSPerW-want) > 1e-9 {
			t.Errorf("%s: KFPS/W inconsistent", m)
		}
	}
}

// TestPrecisionMonotonicity: across every model, lower weight precision
// must never increase max power (the paper's central power knob).
func TestPrecisionMonotonicity(t *testing.T) {
	for _, m := range lightator.Models() {
		prev := math.Inf(1)
		for _, w := range []int{4, 3, 2} {
			acc, err := lightator.New(lightator.Config{
				Precision: lightator.Precision{WBits: w, ABits: 4},
				Fidelity:  lightator.Ideal,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := acc.Simulate(m)
			if err != nil {
				t.Fatal(err)
			}
			if rep.MaxPower > prev+1e-12 {
				t.Errorf("%s: max power increased when dropping to %d bits", m, w)
			}
			prev = rep.MaxPower
		}
	}
}
