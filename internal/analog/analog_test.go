package analog

import (
	"math"
	"testing"
	"testing/quick"

	"lightator/internal/photonics"
)

func TestPhotodiodeVoltageMonotone(t *testing.T) {
	pd := DefaultPhotodiode()
	prev := pd.Voltage(0)
	if prev > pd.ResetVoltage {
		t.Fatalf("dark voltage %g above reset %g", prev, pd.ResetVoltage)
	}
	for i := 1; i <= 10; i++ {
		v := pd.Voltage(float64(i) / 10)
		if v > prev {
			t.Fatalf("V_PD increased with intensity at step %d", i)
		}
		prev = v
	}
	if pd.Voltage(5) != 0 {
		t.Error("saturated pixel should clamp at 0 V")
	}
}

func TestPhotodiodeVoltageAtExposure(t *testing.T) {
	pd := DefaultPhotodiode()
	// At t=0 no discharge has happened.
	if v := pd.VoltageAt(0.8, 0); v != pd.ResetVoltage {
		t.Errorf("t=0 voltage %g, want reset %g", v, pd.ResetVoltage)
	}
	// At t=1 the result matches the end-of-exposure model.
	if v, want := pd.VoltageAt(0.8, 1), pd.Voltage(0.8); math.Abs(v-want) > 1e-12 {
		t.Errorf("t=1 voltage %g, want %g", v, want)
	}
	// Discharge is monotone in time.
	prev := pd.VoltageAt(0.5, 0)
	for i := 1; i <= 10; i++ {
		v := pd.VoltageAt(0.5, float64(i)/10)
		if v > prev {
			t.Fatalf("V_PD increased over time at step %d", i)
		}
		prev = v
	}
}

func TestPhotodiodeInverse(t *testing.T) {
	pd := DefaultPhotodiode()
	for _, in := range []float64{0, 0.2, 0.5, 0.9} {
		v := pd.Voltage(in)
		got := pd.IntensityForVoltage(v)
		if math.Abs(got-in) > 1e-9 {
			t.Errorf("intensity %g -> V %g -> intensity %g", in, v, got)
		}
	}
}

func TestCRCReferencesAscending(t *testing.T) {
	c := DefaultCRC()
	if len(c.VRefs) != NumComparators {
		t.Fatalf("%d references", len(c.VRefs))
	}
	for i := 1; i < len(c.VRefs); i++ {
		if c.VRefs[i] <= c.VRefs[i-1] {
			t.Fatalf("references not ascending at %d", i)
		}
	}
	if c.VRefs[0] <= 0 || c.VRefs[NumComparators-1] >= 1 {
		t.Error("references should be strictly inside the pixel range")
	}
}

func TestCRCThermometerProperty(t *testing.T) {
	c := DefaultCRC()
	f := func(v float64) bool {
		vpd := math.Mod(math.Abs(v), 1.2) // include slight over-range
		th := c.Thermometer(vpd)
		// Thermometer validity: once false, all lower-reference outputs
		// must be false too (references ascend; output k is vpd<ref_k).
		for k := 1; k < NumComparators; k++ {
			if th[k-1] && !th[k] {
				return false
			}
		}
		// Code equals popcount.
		n := 0
		for _, b := range th {
			if b {
				n++
			}
		}
		return n == c.Code(vpd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCRCCodeBrightness(t *testing.T) {
	c := DefaultCRC()
	pd := DefaultPhotodiode()
	// Dark pixel: V_PD high -> code 0. Bright: V_PD ~0 -> code 15.
	if code := c.Code(pd.Voltage(0)); code != 0 {
		t.Errorf("dark pixel code %d, want 0", code)
	}
	if code := c.Code(pd.Voltage(1)); code != NumComparators {
		t.Errorf("bright pixel code %d, want %d", code, NumComparators)
	}
	// Monotone with intensity.
	prev := -1
	for i := 0; i <= 20; i++ {
		code := c.Code(pd.Voltage(float64(i) / 20))
		if code < prev {
			t.Fatalf("code decreased with brightness at step %d", i)
		}
		prev = code
	}
}

func TestCRCRoundTripQuantisation(t *testing.T) {
	c := DefaultCRC()
	pd := DefaultPhotodiode()
	for i := 0; i <= 100; i++ {
		in := float64(i) / 100
		rec := c.CodeToIntensity(c.Code(pd.Voltage(in)))
		if math.Abs(rec-in) > 1.0/float64(NumComparators)+1e-9 {
			t.Errorf("intensity %g reconstructed %g: error beyond one LSB", in, rec)
		}
	}
}

func TestWaveformsFig4d(t *testing.T) {
	c := DefaultCRC()
	pd := DefaultPhotodiode()
	samples := c.Waveforms(pd, 1.0, 30, 2.5, 10)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// V_PD decays monotonically.
	for i := 1; i < len(samples); i++ {
		if samples[i].VPD > samples[i-1].VPD+1e-12 {
			t.Fatalf("V_PD rose at sample %d", i)
		}
	}
	// Comparators fire in order: the highest-reference comparator (index
	// 14) fires first as V_PD falls from reset.
	fireTime := func(k int) float64 {
		for _, s := range samples {
			if s.VS[k] == 1 {
				return s.TimeNs
			}
		}
		return math.Inf(1)
	}
	for k := 1; k < NumComparators; k++ {
		if fireTime(k) > fireTime(k-1) {
			t.Fatalf("comparator %d fired after %d: order inverted", k, k-1)
		}
	}
	// By the end of a full-scale exposure all comparators are on.
	last := samples[len(samples)-1]
	for k, v := range last.VS {
		if v != 1 {
			t.Errorf("comparator %d still low after full exposure", k)
		}
	}
	// Clock toggles.
	sawHigh, sawLow := false, false
	for _, s := range samples {
		if s.Clk == 1 {
			sawHigh = true
		} else {
			sawLow = true
		}
	}
	if !sawHigh || !sawLow {
		t.Error("clock did not toggle")
	}
}

func TestDriverLevels(t *testing.T) {
	v := photonics.DefaultVCSEL(photonics.CBandCenter)
	d := NewDriverFor(v)
	// Code 0 drives exactly the threshold (bias only): zero light.
	i0, err := d.CurrentForCode(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i0-v.ThresholdCurrent) > 1e-15 {
		t.Errorf("code 0 current %g, want threshold %g", i0, v.ThresholdCurrent)
	}
	if p := v.OpticalPower(i0); p != 0 {
		t.Errorf("code 0 optical power %g, want 0", p)
	}
	// Code 15 reaches max current.
	i15, err := d.CurrentForCode(15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i15-v.MaxCurrent) > 1e-12 {
		t.Errorf("code 15 current %g, want max %g", i15, v.MaxCurrent)
	}
	// Thermometer and binary paths produce identical currents.
	var th [NumComparators]bool
	for n := 0; n <= NumComparators; n++ {
		for k := range th {
			th[k] = k < n
		}
		ic, err := d.CurrentForCode(n)
		if err != nil {
			t.Fatal(err)
		}
		it := d.CurrentForThermometer(th)
		if math.Abs(ic-it) > 1e-15 {
			t.Errorf("code %d: binary %g vs thermometer %g", n, ic, it)
		}
	}
}

func TestDriverRejectsBadCode(t *testing.T) {
	d := NewDriverFor(photonics.DefaultVCSEL(photonics.CBandCenter))
	if _, err := d.CurrentForCode(-1); err == nil {
		t.Error("negative code accepted")
	}
	if _, err := d.CurrentForCode(16); err == nil {
		t.Error("code 16 accepted")
	}
}

func TestSelectorModes(t *testing.T) {
	v := photonics.DefaultVCSEL(photonics.CBandCenter)
	d := NewDriverFor(v)
	var th [NumComparators]bool
	for k := 0; k < 7; k++ {
		th[k] = true
	}
	s := &Selector{Mode: SourcePixel}
	ip, err := s.DriveCurrent(d, th, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := d.CurrentForThermometer(th)
	if ip != want {
		t.Errorf("pixel mode current %g, want %g", ip, want)
	}
	s.Mode = SourceFeedback
	ifb, err := s.DriveCurrent(d, th, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantFb, _ := d.CurrentForCode(3)
	if ifb != wantFb {
		t.Errorf("feedback mode current %g, want %g", ifb, wantFb)
	}
	if SourcePixel.String() != "pixel" || SourceFeedback.String() != "feedback" {
		t.Error("Source.String broken")
	}
}

func TestChannelEndToEndMonotone(t *testing.T) {
	ch := NewChannel(photonics.CBandCenter)
	pd := DefaultPhotodiode()
	// Brighter scene -> lower V_PD -> more comparators -> more light out.
	prev := -1.0
	for i := 0; i <= 15; i++ {
		p := ch.ModulateFromPixel(pd.Voltage(float64(i) / 15))
		if p < prev {
			t.Fatalf("optical power decreased with brightness at step %d", i)
		}
		prev = p
	}
	// Feedback path: 16 strictly increasing levels.
	prev = -1.0
	for code := 0; code <= 15; code++ {
		p, err := ch.ModulateFromCode(code)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev && code > 0 {
			t.Fatalf("feedback level %d not increasing", code)
		}
		prev = p
	}
	// Both paths agree level-for-level.
	for code := 0; code <= 15; code++ {
		pf, _ := ch.ModulateFromCode(code)
		// Construct a V_PD that yields exactly `code` comparators on: the
		// asserted comparators are those whose reference exceeds V_PD, so
		// sitting just below VRefs[15-code] asserts the top `code` of them.
		var vpd float64
		if code == 0 {
			vpd = 1.0
		} else {
			vpd = ch.CRC.VRefs[NumComparators-code] - 1e-9
		}
		pp := ch.ModulateFromPixel(vpd)
		if math.Abs(pf-pp) > 1e-15 {
			t.Errorf("code %d: feedback power %g vs pixel power %g", code, pf, pp)
		}
	}
}

func TestDriverElectricalPower(t *testing.T) {
	d := NewDriverFor(photonics.DefaultVCSEL(photonics.CBandCenter))
	if d.ElectricalPower(-1) != 0 {
		t.Error("negative current power not clipped")
	}
	if d.ElectricalPower(1e-3) <= 0 {
		t.Error("no power at 1 mA")
	}
}

func TestNewCRCValidation(t *testing.T) {
	if _, err := NewCRC(1, 1); err == nil {
		t.Error("empty span accepted")
	}
	if _, err := NewCRC(2, 1); err == nil {
		t.Error("inverted span accepted")
	}
}
