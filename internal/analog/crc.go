package analog

import "fmt"

// NumComparators is the number of voltage comparators in one CRC unit
// (paper Fig. 4(a)): 15 comparators produce a 16-level (4-bit) thermometer
// reading of the pixel voltage, replacing a per-column ADC.
const NumComparators = 15

// CRC is the Comparator-based pixel Reading Circuit. It compares V_PD
// against 15 reference voltages spanning the pixel output range; the
// thermometer-coded comparator outputs V_S directly gate the VCSEL
// driver's transistors — no binary encoding, no DAC, no sense amplifier.
//
// Note the inversion: a BRIGHT pixel has a LOW V_PD (more discharge), and
// the CRC counts references ABOVE V_PD, so bright pixels switch on more
// driver transistors and produce more optical power, as Fig. 4(d) shows.
type CRC struct {
	// VRefs are the comparator reference voltages, ascending.
	VRefs []float64
}

// NewCRC builds a CRC whose references uniformly span (vmin, vmax) — the
// pixel output range — exclusive of the endpoints: the k-th comparator
// (k = 1..15) sits at vmin + k*(vmax-vmin)/16.
func NewCRC(vmin, vmax float64) (*CRC, error) {
	if vmax <= vmin {
		return nil, fmt.Errorf("analog: reference span [%g, %g] is empty", vmin, vmax)
	}
	refs := make([]float64, NumComparators)
	step := (vmax - vmin) / float64(NumComparators+1)
	for k := 0; k < NumComparators; k++ {
		refs[k] = vmin + float64(k+1)*step
	}
	return &CRC{VRefs: refs}, nil
}

// DefaultCRC returns a CRC spanning the default photodiode's 0-1 V output.
func DefaultCRC() *CRC {
	c, err := NewCRC(0, DefaultPhotodiode().ResetVoltage)
	if err != nil {
		panic(err) // unreachable: constant span is valid
	}
	return c
}

// Thermometer returns the 15 comparator outputs V_S for pixel voltage
// vpd. Output k is true when vpd < VRefs[k], i.e. when the pixel has
// discharged below that reference (bright). The outputs form a thermometer
// code: once true, all higher-reference comparators are true too.
func (c *CRC) Thermometer(vpd float64) [NumComparators]bool {
	var out [NumComparators]bool
	for k, ref := range c.VRefs {
		out[k] = vpd < ref
	}
	return out
}

// Code returns the 4-bit digital reading (0..15): the number of asserted
// comparators. 0 = dark pixel (no discharge), 15 = saturated bright pixel.
// The linear thermometer count is deliberate: it compiles to branchless
// compare-and-add, which beats a binary search's data-dependent branches
// on the 65536-pixel full-frame readout.
func (c *CRC) Code(vpd float64) int {
	n := 0
	for _, ref := range c.VRefs {
		if vpd < ref {
			n++
		}
	}
	return n
}

// CodeToIntensity maps a 4-bit CRC code back to the normalised light
// intensity at the centre of its quantisation bin, for reconstruction and
// round-trip tests.
func (c *CRC) CodeToIntensity(code int) float64 {
	if code < 0 {
		code = 0
	}
	if code > NumComparators {
		code = NumComparators
	}
	return float64(code) / float64(NumComparators)
}

// WaveformSample is one time step of the Fig. 4(d) trace set.
type WaveformSample struct {
	// TimeNs is the simulation time in nanoseconds.
	TimeNs float64
	// Clk is the sampling clock level (0/1).
	Clk float64
	// VPD is the pixel output voltage.
	VPD float64
	// VS are the 15 comparator outputs as 0/1 levels.
	VS [NumComparators]float64
}

// Waveforms reproduces the Fig. 4(d) experiment: the pixel discharges
// under the given light intensity over durationNs nanoseconds while the
// comparators are strobed by a clock with period clkNs. As V_PD falls,
// comparator outputs switch on one after another.
func (c *CRC) Waveforms(pd Photodiode, intensity, durationNs, clkNs float64, samplesPerClk int) []WaveformSample {
	if samplesPerClk < 2 {
		samplesPerClk = 2
	}
	if clkNs <= 0 {
		clkNs = 2.5
	}
	n := int(durationNs/clkNs) * samplesPerClk
	out := make([]WaveformSample, 0, n)
	for i := 0; i < n; i++ {
		tNs := float64(i) * clkNs / float64(samplesPerClk)
		phase := i % samplesPerClk
		clk := 0.0
		if phase < samplesPerClk/2 {
			clk = 1.0
		}
		vpd := pd.VoltageAt(intensity, tNs/durationNs)
		s := WaveformSample{TimeNs: tNs, Clk: clk, VPD: vpd}
		th := c.Thermometer(vpd)
		for k, b := range th {
			if b {
				s.VS[k] = 1
			}
		}
		out = append(out, s)
	}
	return out
}
