// Package analog models the mixed-signal interface circuits of Lightator's
// DMVA (Directly-Modulated VCSEL Array, paper Fig. 4): the photodiode pixel
// front end, the Comparator-based pixel Reading Circuit (CRC) that replaces
// per-column ADCs with 15 reference comparators, the selector that steers
// either pixel outputs or previous-layer activations into the laser driver,
// and the 16-transistor VCSEL driver that converts a 4-bit code into a
// discrete drive current.
//
// In the paper these blocks are designed and verified in Cadence Spectre on
// the 45 nm NCSU PDK; here they are behavioural models exposing the same
// transfer functions (voltage -> thermometer code -> drive current) plus
// the waveform generator used to regenerate Fig. 4(d).
package analog
