package analog

import (
	"fmt"

	"lightator/internal/photonics"
)

// NumDriveTransistors is the number of parallel driving transistors in one
// VCSEL driver leg (paper Fig. 4(c)): 15 signal transistors (gated by the
// thermometer code or by binary-weighted groups) plus one bias transistor
// that holds the VCSEL at threshold.
const NumDriveTransistors = 16

// Driver converts a digital activation into a VCSEL drive current by
// switching parallel transistors. More asserted inputs -> more transistors
// conducting -> larger drive current -> brighter VCSEL. This is the
// "directly modulated" part of the DMVA: activations never touch an MR or
// a DAC.
type Driver struct {
	// UnitCurrent is the current contributed by one signal transistor,
	// amperes.
	UnitCurrent float64
	// BiasCurrent is the always-on bias leg holding the VCSEL at its
	// threshold so modulation is linear in the code.
	BiasCurrent float64
	// SupplyVoltage for electrical power accounting, volts.
	SupplyVoltage float64
}

// NewDriverFor sizes a driver to a VCSEL: the bias leg holds threshold and
// 15 unit legs span the modulation swing up to the VCSEL's max current.
func NewDriverFor(v *photonics.VCSEL) *Driver {
	swing := v.MaxCurrent - v.ThresholdCurrent
	return &Driver{
		UnitCurrent:   swing / float64(NumComparators),
		BiasCurrent:   v.ThresholdCurrent,
		SupplyVoltage: 1.8,
	}
}

// CurrentForThermometer returns the drive current for a 15-bit thermometer
// input from the CRC.
func (d *Driver) CurrentForThermometer(vs [NumComparators]bool) float64 {
	n := 0
	for _, b := range vs {
		if b {
			n++
		}
	}
	return d.BiasCurrent + float64(n)*d.UnitCurrent
}

// CurrentForCode returns the drive current for a 4-bit binary activation
// code (0..15) from the previous layer. The selector routes each binary
// bit VB_k to a group of 2^k transistors, so the conducting count equals
// the code value — the same levels the thermometer path produces.
func (d *Driver) CurrentForCode(code int) (float64, error) {
	if code < 0 || code > NumComparators {
		return 0, fmt.Errorf("analog: activation code %d outside [0,%d]", code, NumComparators)
	}
	return d.BiasCurrent + float64(code)*d.UnitCurrent, nil
}

// ElectricalPower returns the driver's wall power at drive current i.
func (d *Driver) ElectricalPower(i float64) float64 {
	if i < 0 {
		i = 0
	}
	return i * d.SupplyVoltage
}

// Source identifies where the selector steers activations from.
type Source int

const (
	// SourcePixel feeds the CRC thermometer outputs to the driver (first
	// network layer, direct from the sensor).
	SourcePixel Source = iota
	// SourceFeedback feeds the previous layer's 4-bit outputs back into
	// the driver (all subsequent layers), reusing the DMVA instead of a
	// dedicated activation bank.
	SourceFeedback
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourcePixel:
		return "pixel"
	case SourceFeedback:
		return "feedback"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Selector is the SL-controlled mux of Fig. 4(b): it chooses between the
// CRC thermometer outputs (V_S) and the previous-layer binary code (V_B)
// as the driver's gate inputs.
type Selector struct {
	Mode Source
}

// DriveCurrent resolves the selected source into a drive current.
func (s *Selector) DriveCurrent(d *Driver, vs [NumComparators]bool, code int) (float64, error) {
	switch s.Mode {
	case SourcePixel:
		return d.CurrentForThermometer(vs), nil
	case SourceFeedback:
		return d.CurrentForCode(code)
	default:
		return 0, fmt.Errorf("analog: unknown selector mode %d", s.Mode)
	}
}

// Channel bundles the full DMVA slice for one WDM channel: CRC -> selector
// -> driver -> VCSEL. It is the per-wavelength unit replicated across the
// DMVA.
type Channel struct {
	CRC      *CRC
	Selector *Selector
	Driver   *Driver
	VCSEL    *photonics.VCSEL
}

// NewChannel builds a DMVA channel at the given wavelength with default
// device models.
func NewChannel(wavelength float64) *Channel {
	v := photonics.DefaultVCSEL(wavelength)
	return &Channel{
		CRC:      DefaultCRC(),
		Selector: &Selector{Mode: SourcePixel},
		Driver:   NewDriverFor(v),
		VCSEL:    v,
	}
}

// ModulateFromPixel converts a pixel voltage into emitted optical power
// (first-layer path).
func (ch *Channel) ModulateFromPixel(vpd float64) float64 {
	ch.Selector.Mode = SourcePixel
	i := ch.Driver.CurrentForThermometer(ch.CRC.Thermometer(vpd))
	return ch.VCSEL.OpticalPower(i)
}

// ModulateFromCode converts a previous-layer 4-bit activation into emitted
// optical power (feedback path).
func (ch *Channel) ModulateFromCode(code int) (float64, error) {
	ch.Selector.Mode = SourceFeedback
	i, err := ch.Driver.CurrentForCode(code)
	if err != nil {
		return 0, err
	}
	return ch.VCSEL.OpticalPower(i), nil
}
