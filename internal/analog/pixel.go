package analog

// Photodiode models a 4T global-shutter pixel front end. During exposure
// the photodiode's photocurrent discharges the floating diffusion from the
// reset voltage; the remaining voltage V_PD is what the CRC reads. The
// paper: "Every pixel's Photo-Diode generates a photo-current with respect
// to the external light intensity which in turn leads to a voltage drop
// (V_PD)."
type Photodiode struct {
	// ResetVoltage is the pre-exposure floating-diffusion voltage, volts.
	ResetVoltage float64
	// FullWellIntensity is the normalised light intensity (1.0 = full
	// scale) that discharges the pixel exactly to zero within the nominal
	// exposure. Intensities above it saturate.
	FullWellIntensity float64
	// DarkDischarge is the fraction of the reset voltage lost to dark
	// current over the nominal exposure (models leakage).
	DarkDischarge float64
}

// DefaultPhotodiode returns a pixel model with a 1.0 V reset level and
// full-well at unit intensity.
func DefaultPhotodiode() Photodiode {
	return Photodiode{ResetVoltage: 1.0, FullWellIntensity: 1.0, DarkDischarge: 0.002}
}

// Voltage returns V_PD after a nominal exposure at normalised light
// intensity (0 = dark, 1 = full scale). Brighter light discharges the node
// further, so V_PD falls with intensity.
func (p Photodiode) Voltage(intensity float64) float64 {
	if intensity < 0 {
		intensity = 0
	}
	drop := p.ResetVoltage * (intensity/p.FullWellIntensity + p.DarkDischarge)
	v := p.ResetVoltage - drop
	if v < 0 {
		v = 0
	}
	return v
}

// VoltageAt returns V_PD during the exposure, t in [0,1] as a fraction of
// the nominal exposure time. Used by the Fig. 4(d) waveform generator.
func (p Photodiode) VoltageAt(intensity, t float64) float64 {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	if intensity < 0 {
		intensity = 0
	}
	drop := p.ResetVoltage * (intensity/p.FullWellIntensity + p.DarkDischarge) * t
	v := p.ResetVoltage - drop
	if v < 0 {
		v = 0
	}
	return v
}

// IntensityForVoltage inverts Voltage: the normalised intensity that would
// leave the pixel at v volts. Used by tests.
func (p Photodiode) IntensityForVoltage(v float64) float64 {
	if v > p.ResetVoltage {
		v = p.ResetVoltage
	}
	if v < 0 {
		v = 0
	}
	return ((p.ResetVoltage-v)/p.ResetVoltage - p.DarkDischarge) * p.FullWellIntensity
}
