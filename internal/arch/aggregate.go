package arch

import "fmt"

// BatchReport aggregates per-frame simulation reports across a batch —
// the modeled counterpart of the measured pipeline stats. Frames in a
// batch may run different models or precisions (the "versatile" workload
// mix of the paper's title), so aggregation is over heterogeneous
// reports.
type BatchReport struct {
	// Frames is the number of reports aggregated.
	Frames int
	// TotalLatency is the serial sum of frame latencies, seconds — the
	// steady-state time one core needs for the whole batch.
	TotalLatency float64
	// MeanLatency is TotalLatency / Frames.
	MeanLatency float64
	// BatchFPS is Frames / TotalLatency: aggregate single-core
	// throughput over the batch mix.
	BatchFPS float64
	// MinFPS and MaxFPS bound the per-frame rates in the batch.
	MinFPS, MaxFPS float64
	// MaxPower is the highest instantaneous power any frame reaches.
	MaxPower float64
	// AvgPower is the time-weighted mean power across the batch.
	AvgPower float64
	// KFPSPerW is BatchFPS / MaxPower / 1000, matching the paper's
	// efficiency metric at batch granularity.
	KFPSPerW float64
	// TotalMACs and TotalWeights summarise the batch workload.
	TotalMACs, TotalWeights int64
}

// Aggregate folds a batch of per-frame reports into a BatchReport.
func Aggregate(reports []*Report) (*BatchReport, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("arch: empty report batch")
	}
	b := &BatchReport{Frames: len(reports)}
	for i, r := range reports {
		if r == nil {
			return nil, fmt.Errorf("arch: nil report at batch index %d", i)
		}
		b.TotalLatency += r.FrameLatency
		if i == 0 || r.FPS < b.MinFPS {
			b.MinFPS = r.FPS
		}
		if r.FPS > b.MaxFPS {
			b.MaxFPS = r.FPS
		}
		if r.MaxPower > b.MaxPower {
			b.MaxPower = r.MaxPower
		}
		b.AvgPower += r.AvgPower * r.FrameLatency
		b.TotalMACs += r.TotalMACs
		b.TotalWeights += r.TotalWeights
	}
	if b.TotalLatency > 0 {
		b.AvgPower /= b.TotalLatency
		b.BatchFPS = float64(b.Frames) / b.TotalLatency
	}
	b.MeanLatency = b.TotalLatency / float64(b.Frames)
	if b.MaxPower > 0 {
		b.KFPSPerW = b.BatchFPS / b.MaxPower / 1000
	}
	return b, nil
}

// Render returns a one-line human-readable summary.
func (b *BatchReport) Render() string {
	return fmt.Sprintf(
		"batch: %d frames, %.3f ms mean latency, %.1f FPS (per-frame %.1f..%.1f), %.3f W max, %.3f W avg, %.2f KFPS/W",
		b.Frames, b.MeanLatency*1e3, b.BatchFPS, b.MinFPS, b.MaxFPS, b.MaxPower, b.AvgPower, b.KFPSPerW)
}
