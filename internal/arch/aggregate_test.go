package arch

import (
	"math"
	"strings"
	"testing"
)

func TestAggregateHomogeneousBatch(t *testing.T) {
	rep := simulate(t, "lenet", Uniform(4, 4))
	reports := []*Report{rep, rep, rep, rep}
	b, err := Aggregate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if b.Frames != 4 {
		t.Fatalf("frames %d", b.Frames)
	}
	// A homogeneous batch collapses to the per-frame numbers.
	if math.Abs(b.BatchFPS-rep.FPS) > 1e-9*rep.FPS {
		t.Errorf("batch FPS %g, want %g", b.BatchFPS, rep.FPS)
	}
	if b.MinFPS != rep.FPS || b.MaxFPS != rep.FPS {
		t.Errorf("FPS bounds %g..%g, want both %g", b.MinFPS, b.MaxFPS, rep.FPS)
	}
	if math.Abs(b.MeanLatency-rep.FrameLatency) > 1e-15 {
		t.Errorf("mean latency %g, want %g", b.MeanLatency, rep.FrameLatency)
	}
	if math.Abs(b.AvgPower-rep.AvgPower) > 1e-9*rep.AvgPower {
		t.Errorf("avg power %g, want %g", b.AvgPower, rep.AvgPower)
	}
	if b.TotalMACs != 4*rep.TotalMACs {
		t.Errorf("total MACs %d, want %d", b.TotalMACs, 4*rep.TotalMACs)
	}
	if !strings.Contains(b.Render(), "4 frames") {
		t.Errorf("render: %q", b.Render())
	}
}

func TestAggregateMixedBatch(t *testing.T) {
	small := simulate(t, "lenet", Uniform(4, 4))
	big := simulate(t, "vgg9", Uniform(4, 4))
	b, err := Aggregate([]*Report{small, big})
	if err != nil {
		t.Fatal(err)
	}
	if b.MinFPS != big.FPS || b.MaxFPS != small.FPS {
		t.Errorf("FPS bounds %g..%g, want %g..%g", b.MinFPS, b.MaxFPS, big.FPS, small.FPS)
	}
	// Mixed-batch throughput sits between the two models' rates and is
	// dominated by the slow model (harmonic, not arithmetic, mean).
	if b.BatchFPS <= big.FPS || b.BatchFPS >= small.FPS {
		t.Errorf("batch FPS %g outside (%g, %g)", b.BatchFPS, big.FPS, small.FPS)
	}
	arithmetic := (small.FPS + big.FPS) / 2
	if b.BatchFPS >= arithmetic {
		t.Errorf("batch FPS %g not below arithmetic mean %g", b.BatchFPS, arithmetic)
	}
	if b.MaxPower < small.MaxPower || b.MaxPower < big.MaxPower {
		t.Errorf("max power %g below a member's", b.MaxPower)
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := Aggregate([]*Report{nil}); err == nil {
		t.Error("nil report accepted")
	}
}
