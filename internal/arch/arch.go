// Package arch is Lightator's architecture-level simulator — the "custom
// in-house simulator" of the paper's evaluation framework (Fig. 7). It
// schedules a DNN's layers onto the optical core (via package mapping),
// integrates the component power model (package energy) per layer, and
// reports execution time, per-layer power breakdowns, frame rate and
// KFPS/W — the quantities behind Figs. 8-10 and Table 1.
package arch

import (
	"fmt"

	"lightator/internal/energy"
	"lightator/internal/mapping"
)

// PrecisionSchedule assigns a weight bit-width to every weight-bearing
// layer. Uniform schedules use one width; the paper's Lightator-MX keeps
// the first layer at 4 bits and drops the rest.
type PrecisionSchedule struct {
	// Default weight bits for all layers.
	Default int
	// FirstLayer overrides the first weight layer's bits when non-zero.
	FirstLayer int
	// ABits is the activation precision (4 in every paper configuration).
	ABits int
}

// Uniform returns a [w:a] schedule.
func Uniform(wBits, aBits int) PrecisionSchedule {
	return PrecisionSchedule{Default: wBits, ABits: aBits}
}

// MX returns a mixed-precision schedule: first weight layer at firstBits,
// the rest at restBits (paper's Lightator-MX).
func MX(firstBits, restBits, aBits int) PrecisionSchedule {
	return PrecisionSchedule{Default: restBits, FirstLayer: firstBits, ABits: aBits}
}

// Name renders the paper's [W:A] notation.
func (ps PrecisionSchedule) Name() string {
	if ps.FirstLayer != 0 && ps.FirstLayer != ps.Default {
		return fmt.Sprintf("[%d:%d][%d:%d]", ps.FirstLayer, ps.ABits, ps.Default, ps.ABits)
	}
	return fmt.Sprintf("[%d:%d]", ps.Default, ps.ABits)
}

// WBitsFor returns the weight bits of the i-th weight-bearing layer.
func (ps PrecisionSchedule) WBitsFor(weightLayerIdx int) int {
	if weightLayerIdx == 0 && ps.FirstLayer != 0 {
		return ps.FirstLayer
	}
	return ps.Default
}

// LayerStats is the simulation result for one layer.
type LayerStats struct {
	Name     string
	Kind     mapping.LayerKind
	WBits    int
	Schedule mapping.Schedule
	// ComputeTime is cycles / clock.
	ComputeTime float64
	// RemapTime is re-programming events x remap latency.
	RemapTime float64
	// Time is the layer's total wall time per frame.
	Time float64
	// Power is the component breakdown while this layer runs.
	Power energy.Breakdown
}

// Report is a whole-model simulation result.
type Report struct {
	Model     string
	Precision PrecisionSchedule
	Layers    []LayerStats
	// FrameLatency is the end-to-end time of one inference, seconds.
	FrameLatency float64
	// FPS is 1/FrameLatency.
	FPS float64
	// MaxPower is the highest per-layer total — the "Max Power" column of
	// Table 1.
	MaxPower float64
	// AvgPower is the time-weighted mean power over a frame.
	AvgPower float64
	// KFPSPerW is FPS / MaxPower / 1000, the paper's efficiency metric.
	KFPSPerW float64
	// TotalMACs and TotalWeights summarise the workload.
	TotalMACs    int64
	TotalWeights int64
}

// Simulate runs the model described by layers through the architecture
// model under the given precision schedule and energy parameters.
func Simulate(model string, layers []mapping.LayerDims, ps PrecisionSchedule, p energy.Params) (*Report, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("arch: empty model")
	}
	if ps.Default < 1 || ps.ABits < 1 {
		return nil, fmt.Errorf("arch: invalid precision %+v", ps)
	}
	rep := &Report{Model: model, Precision: ps}
	weightLayerIdx := 0
	firstComputeSeen := false
	for _, d := range layers {
		s, err := mapping.ScheduleLayer(d)
		if err != nil {
			return nil, err
		}
		wBits := ps.ABits // irrelevant for pool/CA; keep a sane value
		if d.Kind == mapping.Conv || d.Kind == mapping.FC {
			wBits = ps.WBitsFor(weightLayerIdx)
			weightLayerIdx++
		}
		computeTime := float64(s.ComputeCycles) / p.ClockHz
		remapTime := float64(s.RemapEvents) * p.RemapLatency
		layerTime := computeTime + remapTime
		// Activation-memory bandwidth can bound thin layers (pooling,
		// small convs): the optical core would outrun the SRAM.
		if mt := p.MemoryTime(s); mt > layerTime {
			layerTime = mt
		}
		first := !firstComputeSeen
		firstComputeSeen = true
		pw, err := p.LayerPower(s, wBits, first, layerTime)
		if err != nil {
			return nil, err
		}
		ls := LayerStats{
			Name:        d.Name,
			Kind:        d.Kind,
			WBits:       wBits,
			Schedule:    s,
			ComputeTime: computeTime,
			RemapTime:   remapTime,
			Time:        layerTime,
			Power:       pw,
		}
		rep.Layers = append(rep.Layers, ls)
		rep.FrameLatency += layerTime
		rep.TotalMACs += d.MACs()
		rep.TotalWeights += d.Weights()
		total := pw.Total()
		if total > rep.MaxPower {
			rep.MaxPower = total
		}
		rep.AvgPower += total * layerTime
	}
	rep.AvgPower /= rep.FrameLatency
	rep.FPS = 1 / rep.FrameLatency
	if rep.MaxPower > 0 {
		rep.KFPSPerW = rep.FPS / rep.MaxPower / 1000
	}
	return rep, nil
}

// LayerByName returns the stats of the named layer.
func (r *Report) LayerByName(name string) (LayerStats, error) {
	for _, l := range r.Layers {
		if l.Name == name {
			return l, nil
		}
	}
	return LayerStats{}, fmt.Errorf("arch: no layer %q in report", name)
}

// TotalBreakdown returns the time-weighted average component breakdown
// over the frame.
func (r *Report) TotalBreakdown() energy.Breakdown {
	var b energy.Breakdown
	for _, l := range r.Layers {
		b = b.Add(l.Power.Scale(l.Time / r.FrameLatency))
	}
	return b
}
