package arch

import (
	"math"
	"testing"

	"lightator/internal/energy"
	"lightator/internal/mapping"
	"lightator/internal/models"
)

func simulate(t *testing.T, model string, ps PrecisionSchedule) *Report {
	t.Helper()
	layers, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(model, layers, ps, energy.Default())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestPrecisionScheduleNames(t *testing.T) {
	if Uniform(4, 4).Name() != "[4:4]" {
		t.Errorf("uniform name %q", Uniform(4, 4).Name())
	}
	if MX(4, 3, 4).Name() != "[4:4][3:4]" {
		t.Errorf("MX name %q", MX(4, 3, 4).Name())
	}
	mx := MX(4, 2, 4)
	if mx.WBitsFor(0) != 4 || mx.WBitsFor(1) != 2 || mx.WBitsFor(5) != 2 {
		t.Error("MX bit assignment wrong")
	}
}

// The paper's power ladder (Table 1): 5.28 / 2.71 / 1.46 W for [4:4] /
// [3:4] / [2:4]. The calibrated model must land within ~15% and keep the
// strict ordering.
func TestLightatorPowerLadder(t *testing.T) {
	p44 := simulate(t, "vgg9-ca", Uniform(4, 4)).MaxPower
	p34 := simulate(t, "vgg9-ca", Uniform(3, 4)).MaxPower
	p24 := simulate(t, "vgg9-ca", Uniform(2, 4)).MaxPower
	if !(p44 > p34 && p34 > p24) {
		t.Fatalf("power ladder broken: %g %g %g", p44, p34, p24)
	}
	check := func(got, want, tol float64, name string) {
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s max power %.3g W, paper %.3g W (tol %.0f%%)", name, got, want, tol*100)
		}
	}
	check(p44, 5.28, 0.20, "[4:4]")
	check(p34, 2.71, 0.20, "[3:4]")
	check(p24, 1.46, 0.20, "[2:4]")
}

// Mixed precision sits between its endpoints (Table 1: MX [4:4][3:4]
// draws 3.64 W, between 2.71 and 5.28).
func TestLightatorMXBetweenEndpoints(t *testing.T) {
	p44 := simulate(t, "vgg9-ca", Uniform(4, 4)).MaxPower
	p34 := simulate(t, "vgg9-ca", Uniform(3, 4)).MaxPower
	pmx := simulate(t, "vgg9-ca", MX(4, 3, 4)).MaxPower
	if pmx < p34 || pmx > p44 {
		t.Errorf("MX power %g outside [%g, %g]", pmx, p34, p44)
	}
}

// Reducing weight bits buys ~2x power per bit (paper: "on average 2.4x
// more power efficiency" across the LeNet sweep).
func TestBitReductionPowerEfficiency(t *testing.T) {
	r44 := simulate(t, "lenet", Uniform(4, 4))
	r24 := simulate(t, "lenet", Uniform(2, 4))
	gain := r44.AvgPower / r24.AvgPower
	if gain < 1.8 || gain > 4.5 {
		t.Errorf("power efficiency from [4:4] to [2:4] = %.2fx, paper reports ~2.4x", gain)
	}
}

// KFPS/W ordering follows the paper: [2:4] > [3:4] > [4:4], with the
// magnitudes in the paper's regime (tens to hundreds).
func TestKFPSPerWOrdering(t *testing.T) {
	r44 := simulate(t, "lenet", Uniform(4, 4))
	r34 := simulate(t, "lenet", Uniform(3, 4))
	r24 := simulate(t, "lenet", Uniform(2, 4))
	if !(r24.KFPSPerW > r34.KFPSPerW && r34.KFPSPerW > r44.KFPSPerW) {
		t.Fatalf("KFPS/W ordering broken: %g %g %g", r24.KFPSPerW, r34.KFPSPerW, r44.KFPSPerW)
	}
	if r34.KFPSPerW < 40 || r34.KFPSPerW > 400 {
		t.Errorf("[3:4] KFPS/W = %g, paper regime is ~118", r34.KFPSPerW)
	}
}

// Fig. 9: enabling the CA reduces the first conv layer's power
// substantially (paper: 42.2%).
func TestCAFirstLayerPowerReduction(t *testing.T) {
	withCA := simulate(t, "vgg9-ca", Uniform(3, 4))
	without := simulate(t, "vgg9", Uniform(3, 4))
	l1CA, err := withCA.LayerByName("L1.conv1")
	if err != nil {
		t.Fatal(err)
	}
	l1Plain, err := without.LayerByName("L1.conv1")
	if err != nil {
		t.Fatal(err)
	}
	reduction := 1 - l1CA.Power.Total()/l1Plain.Power.Total()
	if reduction < 0.25 || reduction > 0.80 {
		t.Errorf("CA first-layer power reduction %.1f%%, paper reports 42.2%%", reduction*100)
	}
}

// Pool layers must be far cheaper than neighbouring conv layers (Fig. 8's
// note: pooling in CA banks with pre-set coefficients).
func TestPoolLayersCheap(t *testing.T) {
	rep := simulate(t, "lenet", Uniform(4, 4))
	conv, err := rep.LayerByName("L3.conv2")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := rep.LayerByName("L4.pool2")
	if err != nil {
		t.Fatal(err)
	}
	if pool.Power.Total() > conv.Power.Total()/5 {
		t.Errorf("pool power %g not clearly below conv power %g", pool.Power.Total(), conv.Power.Total())
	}
	if pool.Power.DACs != 0 {
		t.Error("pool layer has DAC power")
	}
}

// Execution-time sanity for Fig. 10 models.
func TestExecutionTimes(t *testing.T) {
	alex := simulate(t, "alexnet", Uniform(4, 4))
	vgg := simulate(t, "vgg16", Uniform(4, 4))
	if alex.FrameLatency < 0.5e-3 || alex.FrameLatency > 20e-3 {
		t.Errorf("AlexNet latency %g s outside the ms regime", alex.FrameLatency)
	}
	if vgg.FrameLatency <= alex.FrameLatency {
		t.Error("VGG16 should take longer than AlexNet")
	}
	// Large models are remap-bound: tuning dominates compute.
	var remap, compute float64
	for _, l := range alex.Layers {
		remap += l.RemapTime
		compute += l.ComputeTime
	}
	if remap < compute {
		t.Errorf("AlexNet should be remap-bound: remap %g < compute %g", remap, compute)
	}
}

func TestReportInvariants(t *testing.T) {
	rep := simulate(t, "vgg9-ca", Uniform(3, 4))
	if rep.FPS <= 0 || rep.FrameLatency <= 0 {
		t.Fatal("non-positive timing")
	}
	if math.Abs(rep.FPS*rep.FrameLatency-1) > 1e-9 {
		t.Error("FPS and latency inconsistent")
	}
	if rep.AvgPower > rep.MaxPower {
		t.Error("average power exceeds max power")
	}
	var sum float64
	for _, l := range rep.Layers {
		sum += l.Time
		if l.Power.Total() < 0 {
			t.Error("negative layer power")
		}
	}
	if math.Abs(sum-rep.FrameLatency) > 1e-12 {
		t.Error("layer times do not sum to frame latency")
	}
	tb := rep.TotalBreakdown()
	if math.Abs(tb.Total()-rep.AvgPower) > 1e-9 {
		t.Errorf("total breakdown %g != avg power %g", tb.Total(), rep.AvgPower)
	}
	if _, err := rep.LayerByName("nope"); err == nil {
		t.Error("missing layer lookup succeeded")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate("x", nil, Uniform(4, 4), energy.Default()); err == nil {
		t.Error("empty model accepted")
	}
	layers := []mapping.LayerDims{{Kind: mapping.FC, Name: "f", InC: 10, OutC: 10}}
	if _, err := Simulate("x", layers, Uniform(0, 4), energy.Default()); err == nil {
		t.Error("0-bit weights accepted")
	}
}
