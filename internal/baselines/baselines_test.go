package baselines

import (
	"math"
	"testing"

	"lightator/internal/models"
)

// lenetMACs is the MNIST workload Table 1's throughput figures are
// normalised to.
func lenetMACs(t *testing.T) int64 {
	t.Helper()
	return models.TotalMACs(models.LeNet())
}

// Table 1's reported values for each optical design.
func TestOpticalDesignsMatchTable1(t *testing.T) {
	macs := lenetMACs(t)
	cases := []struct {
		design    OpticalDesign
		wantPower float64 // W; 0 = not published
		wantKFPSW float64
		powerTol  float64
		kfpswTol  float64
	}{
		{LightBulb(), 68.3, 57.75, 0.10, 0.15},
		{HolyLight(), 66.9, 3.3, 0.10, 0.15},
		{HQNNA(), 0, 34.6, 0, 0.20},
		{Robin(), 106, 46.5, 0.10, 0.15},
		{CrossLight(), 84, 52.59, 0.10, 0.15},
	}
	for _, c := range cases {
		if c.wantPower > 0 {
			got := c.design.MaxPower()
			if math.Abs(got-c.wantPower)/c.wantPower > c.powerTol {
				t.Errorf("%s power %.3g W, paper %.3g W", c.design.Label(), got, c.wantPower)
			}
			if !c.design.PowerPublished {
				t.Errorf("%s should report power as published", c.design.Name)
			}
		} else if c.design.PowerPublished {
			t.Errorf("%s power should be unpublished", c.design.Name)
		}
		got := c.design.KFPSPerW(macs)
		if math.Abs(got-c.wantKFPSW)/c.wantKFPSW > c.kfpswTol {
			t.Errorf("%s KFPS/W %.4g, paper %.4g", c.design.Label(), got, c.wantKFPSW)
		}
	}
}

func TestCrossLightRange(t *testing.T) {
	small := CrossLight()
	large := CrossLightLarge()
	if large.MaxPower() <= small.MaxPower() {
		t.Fatal("large CrossLight not larger")
	}
	// Paper range: 84-390 W and 10.78-52.59 KFPS/W.
	if math.Abs(large.MaxPower()-390)/390 > 0.10 {
		t.Errorf("CrossLight large power %g, want ~390", large.MaxPower())
	}
	macs := lenetMACs(t)
	if math.Abs(large.KFPSPerW(macs)-10.78)/10.78 > 0.20 {
		t.Errorf("CrossLight large KFPS/W %g, want ~10.78", large.KFPSPerW(macs))
	}
}

func TestGPUBaseline(t *testing.T) {
	g := RTX3060Ti()
	if g.BoardPower != 200 {
		t.Errorf("GPU power %g, want 200 (Table 1 baseline)", g.BoardPower)
	}
}

// Power-reduction ratios quoted in the paper's observations (2): ~73x vs
// GPU, ~24.68x vs HolyLight, ~30.9x vs CrossLight, relative to Lightator
// [3:4] at 2.71 W. Using the calibrated models and the paper's own 2.71 W:
func TestPowerReductionRatios(t *testing.T) {
	const lightatorPower = 2.71
	if r := RTX3060Ti().BoardPower / lightatorPower; r < 60 || r > 90 {
		t.Errorf("GPU reduction %gx, paper ~73x", r)
	}
	if r := HolyLight().MaxPower() / lightatorPower; r < 20 || r > 30 {
		t.Errorf("HolyLight reduction %gx, paper ~24.68x", r)
	}
	if r := CrossLight().MaxPower() / lightatorPower; r < 25 || r > 37 {
		t.Errorf("CrossLight reduction %gx, paper ~30.9x", r)
	}
}

func TestElectronicExecTimes(t *testing.T) {
	alexMACs := models.TotalMACs(models.AlexNet())
	for _, d := range AllElectronic() {
		et, err := d.ExecTime(alexMACs)
		if err != nil {
			t.Fatal(err)
		}
		// All Fig. 10 designs run AlexNet in the 1-1000 ms band.
		if et < 1e-3 || et > 1 {
			t.Errorf("%s AlexNet exec time %g s outside Fig. 10 band", d.Name, et)
		}
	}
	e := Eyeriss()
	if _, err := e.ExecTime(0); err != nil {
		t.Fatal(err)
	}
	bad := ElectronicDesign{Name: "dead"}
	if _, err := bad.ExecTime(100); err == nil {
		t.Error("zero-throughput design accepted")
	}
}

// Fig. 10 ordering on AlexNet: ENVISION < Eyeriss < AppCip < YodaNN
// (Lightator beats all; its time comes from the architecture simulator).
func TestElectronicOrdering(t *testing.T) {
	alexMACs := models.TotalMACs(models.AlexNet())
	tEnv, _ := ENVISION().ExecTime(alexMACs)
	tEye, _ := Eyeriss().ExecTime(alexMACs)
	tApp, _ := AppCip().ExecTime(alexMACs)
	tYoda, _ := YodaNN().ExecTime(alexMACs)
	if !(tEnv < tEye && tEye < tApp && tApp < tYoda) {
		t.Errorf("ordering broken: ENVISION %g Eyeriss %g AppCip %g YodaNN %g", tEnv, tEye, tApp, tYoda)
	}
}

func TestAllOpticalCount(t *testing.T) {
	if len(AllOptical()) != 5 {
		t.Errorf("optical designs %d, want 5", len(AllOptical()))
	}
	if len(AllElectronic()) != 4 {
		t.Errorf("electronic designs %d, want 4", len(AllElectronic()))
	}
}
