package baselines

import "fmt"

// ElectronicDesign models a digital edge accelerator for the Fig. 10
// execution-time comparison. Each design is reduced to an effective
// sustained MAC throughput: published peak throughput times a utilisation
// factor calibrated so the AlexNet speedup ratios of Fig. 10 hold against
// the architecture simulator's Lightator latency (10.7x Eyeriss, 20.4x
// YodaNN, 18.1x AppCip, 8.8x ENVISION).
type ElectronicDesign struct {
	Name string
	// PEs is the processing-element count (published).
	PEs int
	// ClockHz is the nominal clock (published).
	ClockHz float64
	// Utilization is the sustained fraction of peak — the calibrated knob.
	Utilization float64
	// Note documents where the constants come from.
	Note string
}

// EffectiveMACsPerSec returns the sustained throughput.
func (d ElectronicDesign) EffectiveMACsPerSec() float64 {
	return float64(d.PEs) * d.ClockHz * d.Utilization
}

// ExecTime returns seconds to run a model of the given MAC count.
func (d ElectronicDesign) ExecTime(modelMACs int64) (float64, error) {
	eff := d.EffectiveMACsPerSec()
	if eff <= 0 {
		return 0, fmt.Errorf("baselines: %s has no throughput", d.Name)
	}
	return float64(modelMACs) / eff, nil
}

// Eyeriss models the JSSC'17 row-stationary accelerator: 168 PEs at
// 200 MHz (published); near-full sustained utilisation on AlexNet conv
// layers.
func Eyeriss() ElectronicDesign {
	return ElectronicDesign{
		Name: "Eyeriss", PEs: 168, ClockHz: 200e6, Utilization: 0.95,
		Note: "168 PEs @ 200 MHz (JSSC'17), utilisation calibrated to Fig. 10",
	}
}

// YodaNN models the TCAD'18 binary-weight CNN ASIC. Its Fig. 10 entry
// runs VGG13 in place of VGG16 (per the paper's figure note).
func YodaNN() ElectronicDesign {
	return ElectronicDesign{
		Name: "YodaNN", PEs: 1024, ClockHz: 480e6, Utilization: 0.031,
		Note: "binary-weight SoP array @ 480 MHz, utilisation calibrated to Fig. 10",
	}
}

// AppCip models the JETCAS'23 convolution-in-pixel sensor: massively
// parallel analog in-pixel MACs at a slow per-frame cadence.
func AppCip() ElectronicDesign {
	return ElectronicDesign{
		Name: "AppCip", PEs: 65536, ClockHz: 2e6, Utilization: 0.129,
		Note: "per-pixel analog MAC array, utilisation calibrated to Fig. 10",
	}
}

// ENVISION models the ISSCC'17 DVAFS subword-parallel processor.
func ENVISION() ElectronicDesign {
	return ElectronicDesign{
		Name: "ENVISION", PEs: 256, ClockHz: 200e6, Utilization: 0.68,
		Note: "256 subword MACs @ 200 MHz (ISSCC'17), utilisation calibrated to Fig. 10",
	}
}

// AllElectronic returns the Fig. 10 designs in plot order.
func AllElectronic() []ElectronicDesign {
	return []ElectronicDesign{Eyeriss(), ENVISION(), AppCip(), YodaNN()}
}
