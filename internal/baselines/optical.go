// Package baselines provides analytic models of the accelerators Lightator
// is compared against: the MR-based optical designs of Table 1 (LightBulb,
// HolyLight, HQNNA, Robin, CrossLight), the GPU baseline, and the
// electronic edge accelerators of Fig. 10 (Eyeriss, YodaNN, AppCip,
// ENVISION).
//
// The paper states it re-created these designs "from the ground up
// resembling the original design" inside its own evaluation framework.
// Here each optical design is a structural power model — component counts
// times unit powers — whose constants are taken from the source papers
// where published and calibrated to the totals Table 1 reports otherwise.
// Throughput constants are calibrated to each design's reported KFPS/W on
// the MNIST/LeNet workload. EXPERIMENTS.md records reported vs modeled
// values side by side.
package baselines

import "fmt"

// OpticalDesign is a structural power/throughput model of an MR-based
// photonic accelerator.
type OpticalDesign struct {
	// Name and Config render the Table 1 row label, e.g. "LightBulb [1:1]".
	Name   string
	Config string
	// ProcessNode in nm; 0 renders as "-".
	ProcessNode int
	// WBits/ABits are the design's weight/activation precisions, used to
	// reproduce its accuracy through the shared QAT pipeline.
	WBits, ABits int

	// Component counts and unit powers (watts).
	NumADC, NumDAC int
	NumTunedMR     int
	ADCUnitPower   float64
	DACUnitPower   float64
	MRTuningPower  float64
	LaserPower     float64
	DigitalPower   float64
	PowerPublished bool // false renders max power as "-"
	// PeakMACsPerSec calibrates throughput to the design's reported
	// KFPS/W.
	PeakMACsPerSec float64
}

// MaxPower assembles the structural power model.
func (d OpticalDesign) MaxPower() float64 {
	return float64(d.NumADC)*d.ADCUnitPower +
		float64(d.NumDAC)*d.DACUnitPower +
		float64(d.NumTunedMR)*d.MRTuningPower +
		d.LaserPower + d.DigitalPower
}

// FPS returns frames per second on a model with the given MAC count.
func (d OpticalDesign) FPS(modelMACs int64) float64 {
	if modelMACs <= 0 {
		return 0
	}
	return d.PeakMACsPerSec / float64(modelMACs)
}

// KFPSPerW returns the Table 1 efficiency metric on the given workload.
func (d OpticalDesign) KFPSPerW(modelMACs int64) float64 {
	p := d.MaxPower()
	if p <= 0 {
		return 0
	}
	return d.FPS(modelMACs) / p / 1000
}

// Label renders "Name [W:A]".
func (d OpticalDesign) Label() string {
	return fmt.Sprintf("%s %s", d.Name, d.Config)
}

// LightBulb models the DATE'20 binarized photonic CNN accelerator
// (paper [27]): photonic XNOR + popcount with a large ADC army — the
// paper's critique is exactly its ADC power. 32 nm node.
func LightBulb() OpticalDesign {
	return OpticalDesign{
		Name: "LightBulb", Config: "[1:1]", ProcessNode: 32,
		WBits: 1, ABits: 1,
		NumADC: 2048, ADCUnitPower: 30e-3, // fast flash ADCs dominate
		NumTunedMR: 16384, MRTuningPower: 120e-6,
		LaserPower: 2.0, DigitalPower: 2.9,
		PowerPublished: true,
		PeakMACsPerSec: 1.65e12, // calibrated: 57.75 KFPS/W at 68.3 W on LeNet
	}
}

// HolyLight models the DATE'19 nanophotonic accelerator (paper [12]):
// MR-based adders/shifters instead of ADCs, so MR count (and its tuning
// power) explodes. 32 nm node.
func HolyLight() OpticalDesign {
	return OpticalDesign{
		Name: "HolyLight", Config: "[4:4]", ProcessNode: 32,
		WBits: 4, ABits: 4,
		NumADC: 64, ADCUnitPower: 25e-3,
		NumTunedMR: 130000, MRTuningPower: 450e-6,
		LaserPower: 3.0, DigitalPower: 3.8,
		PowerPublished: true,
		PeakMACsPerSec: 9.2e10, // calibrated: 3.3 KFPS/W at 66.9 W
	}
}

// HQNNA models the GLSVLSI'22 heterogeneous-quantization accelerator
// (paper [17]). Its max power is not reported in Table 1; the internal
// structural estimate is used only to convert throughput to KFPS/W.
func HQNNA() OpticalDesign {
	return OpticalDesign{
		Name: "HQNNA", Config: "", ProcessNode: 45,
		WBits: 4, ABits: 8,
		NumADC: 512, ADCUnitPower: 20e-3,
		NumDAC: 2048, DACUnitPower: 9e-3,
		NumTunedMR: 40000, MRTuningPower: 150e-6,
		LaserPower: 3.0, DigitalPower: 2.0,
		PowerPublished: false,
		PeakMACsPerSec: 5.76e11, // calibrated: 34.6 KFPS/W at ~40 W estimate
	}
}

// Robin models the ACM TECS'21 robust optical BNN accelerator (paper
// [19]): binary weights, 4-bit activations, heavy DAC usage for MR tuning
// (the paper's critique). 45 nm node.
func Robin() OpticalDesign {
	return OpticalDesign{
		Name: "Robin", Config: "[1:4]", ProcessNode: 45,
		WBits: 1, ABits: 4,
		NumDAC: 12000, DACUnitPower: 7e-3,
		NumTunedMR: 60000, MRTuningPower: 200e-6,
		LaserPower: 4.0, DigitalPower: 6.0,
		PowerPublished: true,
		PeakMACsPerSec: 2.06e12, // calibrated: 46.5 KFPS/W at 106 W
	}
}

// CrossLight models the DAC'21 cross-layer photonic accelerator (paper
// [16]) at its low-power endpoint; CrossLightLarge is the high-power
// endpoint. Both tune MRs for activations AND weights — the overhead
// Lightator's DMVA eliminates.
func CrossLight() OpticalDesign {
	return OpticalDesign{
		Name: "CrossLight", Config: "[4:4]", ProcessNode: 0,
		WBits: 4, ABits: 4,
		NumDAC: 8000, DACUnitPower: 5e-3,
		NumTunedMR: 35000, MRTuningPower: 1e-3,
		LaserPower: 4.0, DigitalPower: 5.0,
		PowerPublished: true,
		PeakMACsPerSec: 1.84e12, // calibrated: 52.59 KFPS/W at 84 W
	}
}

// CrossLightLarge is the 390 W endpoint of CrossLight's reported range.
func CrossLightLarge() OpticalDesign {
	d := CrossLight()
	d.NumDAC = 30000
	d.NumTunedMR = 185000
	d.LaserPower = 20
	d.DigitalPower = 35
	// Throughput grows sublinearly with the array: 10.78 KFPS/W at 390 W.
	d.PeakMACsPerSec = 1.75e12
	return d
}

// GPU models the NVIDIA GeForce RTX 3060 Ti baseline of Table 1: 200 W
// board power, float32 (the "[32:32]" row), throughput not reported as
// KFPS/W in the table.
type GPU struct {
	Name       string
	BoardPower float64
	PeakFLOPs  float64
}

// RTX3060Ti returns the baseline GPU.
func RTX3060Ti() GPU {
	return GPU{Name: "RTX 3060Ti", BoardPower: 200, PeakFLOPs: 16.2e12}
}

// AllOptical returns the Table 1 optical designs in paper order.
func AllOptical() []OpticalDesign {
	return []OpticalDesign{LightBulb(), HolyLight(), HQNNA(), Robin(), CrossLight()}
}
