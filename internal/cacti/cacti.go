// Package cacti is a simplified CACTI-style SRAM model (the paper uses
// CACTI 5.1 for the kernel/weight memories, Fig. 7). It reproduces the
// first-order scaling laws of CACTI — access energy and latency growing
// with the square root of capacity, leakage and area growing linearly —
// anchored to published 45 nm SRAM numbers.
package cacti

import (
	"fmt"
	"math"
)

// SRAM models one on-chip SRAM buffer.
type SRAM struct {
	// CapacityBytes of the array.
	CapacityBytes int
	// WordBits per access.
	WordBits int
	// TechNm is the process node in nanometers.
	TechNm float64
}

// Reference anchor: a 32 KB, 32-bit, 45 nm SRAM.
const (
	refCapacity = 32 * 1024
	refWordBits = 32
	refTechNm   = 45.0
	// refReadEnergy is ~12 pJ per 32-bit read at 45 nm (CACTI 5.1 scale).
	refReadEnergy = 12e-12
	// refWriteEnergy is slightly above read.
	refWriteEnergy = 14e-12
	// refLeakage is ~6 mW for 32 KB at 45 nm.
	refLeakage = 6e-3
	// refLatency is ~0.7 ns.
	refLatency = 0.7e-9
	// refAreaMM2 is ~0.17 mm^2 for 32 KB at 45 nm.
	refAreaMM2 = 0.17
)

// New constructs an SRAM model.
func New(capacityBytes, wordBits int, techNm float64) (*SRAM, error) {
	if capacityBytes < 64 {
		return nil, fmt.Errorf("cacti: capacity %d B too small", capacityBytes)
	}
	if wordBits < 1 || wordBits > 1024 {
		return nil, fmt.Errorf("cacti: word width %d bits", wordBits)
	}
	if techNm < 7 || techNm > 180 {
		return nil, fmt.Errorf("cacti: technology %g nm outside model range", techNm)
	}
	return &SRAM{CapacityBytes: capacityBytes, WordBits: wordBits, TechNm: techNm}, nil
}

// techScale returns the dynamic-energy scale factor vs 45 nm: energy
// scales roughly with feature size squared (capacitance x voltage).
func (s *SRAM) techScale() float64 {
	return (s.TechNm / refTechNm) * (s.TechNm / refTechNm)
}

// capScale returns the sqrt capacity scaling of bitline/wordline energy
// and latency.
func (s *SRAM) capScale() float64 {
	return math.Sqrt(float64(s.CapacityBytes) / refCapacity)
}

// wordScale returns the linear word-width scaling.
func (s *SRAM) wordScale() float64 {
	return float64(s.WordBits) / refWordBits
}

// ReadEnergy returns joules per read access.
func (s *SRAM) ReadEnergy() float64 {
	return refReadEnergy * s.capScale() * s.wordScale() * s.techScale()
}

// WriteEnergy returns joules per write access.
func (s *SRAM) WriteEnergy() float64 {
	return refWriteEnergy * s.capScale() * s.wordScale() * s.techScale()
}

// LeakagePower returns watts of standby leakage.
func (s *SRAM) LeakagePower() float64 {
	return refLeakage * float64(s.CapacityBytes) / refCapacity * (s.TechNm / refTechNm)
}

// AccessLatency returns seconds per access.
func (s *SRAM) AccessLatency() float64 {
	return refLatency * s.capScale() * (s.TechNm / refTechNm)
}

// AreaMM2 returns the array area in mm^2.
func (s *SRAM) AreaMM2() float64 {
	return refAreaMM2 * float64(s.CapacityBytes) / refCapacity * s.techScale()
}

// TrafficPower returns the average power of a stream of accessesPerSecond
// reads (plus leakage).
func (s *SRAM) TrafficPower(accessesPerSecond float64) float64 {
	return s.ReadEnergy()*accessesPerSecond + s.LeakagePower()
}
