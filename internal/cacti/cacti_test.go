package cacti

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	if _, err := New(16, 32, 45); err == nil {
		t.Error("tiny capacity accepted")
	}
	if _, err := New(32768, 0, 45); err == nil {
		t.Error("zero word accepted")
	}
	if _, err := New(32768, 32, 3); err == nil {
		t.Error("3nm outside model accepted")
	}
}

func TestReferenceAnchor(t *testing.T) {
	s, err := New(32*1024, 32, 45)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.ReadEnergy()-12e-12) > 1e-15 {
		t.Errorf("anchor read energy %g", s.ReadEnergy())
	}
	if math.Abs(s.LeakagePower()-6e-3) > 1e-9 {
		t.Errorf("anchor leakage %g", s.LeakagePower())
	}
	if s.WriteEnergy() <= s.ReadEnergy() {
		t.Error("write should cost more than read")
	}
}

func TestScalingLaws(t *testing.T) {
	small, _ := New(32*1024, 32, 45)
	big, _ := New(128*1024, 32, 45)
	// 4x capacity -> 2x access energy (sqrt), 4x leakage, 4x area.
	if r := big.ReadEnergy() / small.ReadEnergy(); math.Abs(r-2) > 0.01 {
		t.Errorf("capacity energy scaling %g, want 2", r)
	}
	if r := big.LeakagePower() / small.LeakagePower(); math.Abs(r-4) > 0.01 {
		t.Errorf("leakage scaling %g, want 4", r)
	}
	if r := big.AreaMM2() / small.AreaMM2(); math.Abs(r-4) > 0.01 {
		t.Errorf("area scaling %g, want 4", r)
	}
	// Narrower word costs less.
	narrow, _ := New(32*1024, 8, 45)
	if narrow.ReadEnergy() >= small.ReadEnergy() {
		t.Error("narrow word should cost less energy")
	}
	// Smaller node costs less.
	scaled, _ := New(32*1024, 32, 22)
	if scaled.ReadEnergy() >= small.ReadEnergy() {
		t.Error("22nm should cost less than 45nm")
	}
}

func TestTrafficPower(t *testing.T) {
	s, _ := New(32*1024, 32, 45)
	idle := s.TrafficPower(0)
	if math.Abs(idle-s.LeakagePower()) > 1e-15 {
		t.Error("idle traffic power should equal leakage")
	}
	busy := s.TrafficPower(1e9)
	if busy <= idle {
		t.Error("traffic should add power")
	}
}

// Property: all metrics stay positive and monotone in capacity.
func TestMonotoneProperty(t *testing.T) {
	f := func(raw uint16) bool {
		capA := 1024 * (int(raw%64) + 1)
		capB := capA * 2
		a, err := New(capA, 32, 45)
		if err != nil {
			return false
		}
		b, err := New(capB, 32, 45)
		if err != nil {
			return false
		}
		return a.ReadEnergy() > 0 && b.ReadEnergy() > a.ReadEnergy() &&
			b.AccessLatency() > a.AccessLatency() && b.AreaMM2() > a.AreaMM2()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
