package dataset

import (
	"fmt"
	"math"

	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// CACompress runs every RGB sample of src through the full acquisition
// front end — Bayer mosaic, photodiode exposure, CRC 4-bit readout, and
// the Compressive Acquisitor's fused grayscale + N x N average pooling —
// producing the dataset the DNN actually sees when Lightator's CA stage is
// enabled (paper §5: "We leverage CA banks for a light compression of
// input images as the proof-of-concept before feeding them into the
// model"). The returned dataset has shape [1, H/N, W/N].
func CACompress(src *Synth, poolN int) (*Synth, error) {
	if len(src.shape) != 3 || src.shape[0] != 3 {
		return nil, fmt.Errorf("dataset: CA compression needs RGB input, have shape %v", src.shape)
	}
	h, w := src.shape[1], src.shape[2]
	if h%poolN != 0 || w%poolN != 0 {
		return nil, fmt.Errorf("dataset: %dx%d not divisible by pool %d", h, w, poolN)
	}
	arr, err := sensor.NewArray(h, w)
	if err != nil {
		return nil, err
	}
	core, err := oc.NewCore(4, 4, oc.Ideal)
	if err != nil {
		return nil, err
	}
	ca, err := oc.NewAcquisitor(core, poolN)
	if err != nil {
		return nil, err
	}
	oh, ow := h/poolN, w/poolN
	out := &Synth{
		TaskName: src.TaskName + "+ca",
		Classes:  src.Classes,
		shape:    []int{1, oh, ow},
		images:   make([]uint8, src.Len()*oh*ow),
		labels:   append([]int(nil), src.labels...),
	}
	sample := make([]float64, 3*h*w)
	scene := sensor.NewImage(h, w, 3)
	for i := 0; i < src.Len(); i++ {
		src.Sample(i, sample)
		// CHW -> HWC scene.
		for ch := 0; ch < 3; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					scene.Set(y, x, ch, sample[(ch*h+y)*w+x])
				}
			}
		}
		frame, err := arr.Capture(scene)
		if err != nil {
			return nil, err
		}
		comp, err := ca.Compress(frame)
		if err != nil {
			return nil, err
		}
		dst := out.images[i*oh*ow : (i+1)*oh*ow]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				dst[y*ow+x] = uint8(math.Round(comp.At(y, x, 0) * 255))
			}
		}
	}
	return out, nil
}
