// Package dataset provides deterministic synthetic image-classification
// tasks standing in for MNIST, CIFAR-10 and CIFAR-100, which cannot be
// downloaded in this offline reproduction (see DESIGN.md §1). The three
// generators produce tasks of graded difficulty so the paper's relative
// accuracy ladder — MNIST easy, CIFAR-10 mid, CIFAR-100 hard — and the
// precision-degradation shape across [W:A] configurations are exercised
// end-to-end through the same train → quantize → photonic-inference path.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Synth is an in-memory synthetic dataset. Pixels are stored as uint8 and
// scaled to [0,1] on access.
type Synth struct {
	TaskName string
	Classes  int
	shape    []int
	images   []uint8
	labels   []int
}

// Len implements train.Dataset.
func (s *Synth) Len() int { return len(s.labels) }

// InputShape implements train.Dataset.
func (s *Synth) InputShape() []int { return append([]int(nil), s.shape...) }

// Sample implements train.Dataset.
func (s *Synth) Sample(i int, dst []float64) int {
	size := len(dst)
	src := s.images[i*size : (i+1)*size]
	for j, v := range src {
		dst[j] = float64(v) / 255
	}
	return s.labels[i]
}

// Label returns sample i's class without materialising pixels.
func (s *Synth) Label(i int) int { return s.labels[i] }

// sampleSize returns the per-sample element count.
func (s *Synth) sampleSize() int {
	n := 1
	for _, d := range s.shape {
		n *= d
	}
	return n
}

// Split cuts the dataset into the first n samples and the rest, sharing
// the underlying storage.
func (s *Synth) Split(n int) (*Synth, *Synth, error) {
	if n <= 0 || n >= s.Len() {
		return nil, nil, fmt.Errorf("dataset: split %d of %d", n, s.Len())
	}
	size := s.sampleSize()
	a := &Synth{TaskName: s.TaskName, Classes: s.Classes, shape: s.shape, images: s.images[:n*size], labels: s.labels[:n]}
	b := &Synth{TaskName: s.TaskName, Classes: s.Classes, shape: s.shape, images: s.images[n*size:], labels: s.labels[n:]}
	return a, b, nil
}

// canvas is a float64 drawing surface used during generation.
type canvas struct {
	h, w, c int
	pix     []float64
}

func newCanvas(h, w, c int) *canvas {
	return &canvas{h: h, w: w, c: c, pix: make([]float64, h*w*c)}
}

func (cv *canvas) add(y, x, ch int, v float64) {
	if y < 0 || y >= cv.h || x < 0 || x >= cv.w || ch < 0 || ch >= cv.c {
		return
	}
	cv.pix[(y*cv.w+x)*cv.c+ch] += v
}

func (cv *canvas) toBytes(dst []uint8) {
	for i, v := range cv.pix {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		dst[i] = uint8(math.Round(v * 255))
	}
}

// fillRect paints an axis-aligned rectangle across all channels with the
// given per-channel intensities.
func (cv *canvas) fillRect(y0, x0, y1, x1 int, col []float64) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			for ch := 0; ch < cv.c; ch++ {
				if y >= 0 && y < cv.h && x >= 0 && x < cv.w {
					cv.pix[(y*cv.w+x)*cv.c+ch] = col[ch%len(col)]
				}
			}
		}
	}
}

// NewDigits generates an MNIST-like task: 28x28 grayscale seven-segment
// digits with random placement, scale, stroke width, brightness and pixel
// noise. A LeNet reaches high-90s accuracy, mirroring MNIST's difficulty.
func NewDigits(n int, seed int64) *Synth {
	const h, w = 28, 28
	s := &Synth{TaskName: "synth-mnist", Classes: 10, shape: []int{1, h, w}}
	s.images = make([]uint8, n*h*w)
	s.labels = make([]int, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		digit := rng.Intn(10)
		s.labels[i] = digit
		cv := newCanvas(h, w, 1)
		renderDigit(cv, digit, rng)
		// Pixel noise.
		for j := range cv.pix {
			cv.pix[j] += rng.NormFloat64() * 0.08
		}
		cv.toBytes(s.images[i*h*w : (i+1)*h*w])
	}
	return s
}

// segment activation table for digits 0-9: segments A (top), B (top
// right), C (bottom right), D (bottom), E (bottom left), F (top left),
// G (middle).
var sevenSeg = [10][7]bool{
	{true, true, true, true, true, true, false},     // 0
	{false, true, true, false, false, false, false}, // 1
	{true, true, false, true, true, false, true},    // 2
	{true, true, true, true, false, false, true},    // 3
	{false, true, true, false, false, true, true},   // 4
	{true, false, true, true, false, true, true},    // 5
	{true, false, true, true, true, true, true},     // 6
	{true, true, true, false, false, false, false},  // 7
	{true, true, true, true, true, true, true},      // 8
	{true, true, true, true, false, true, true},     // 9
}

// renderDigit draws a jittered seven-segment digit.
func renderDigit(cv *canvas, digit int, rng *rand.Rand) {
	// Bounding box: height 14-20, width ~60% of height.
	bh := 14 + rng.Intn(7)
	bw := int(float64(bh) * (0.55 + rng.Float64()*0.15))
	top := 2 + rng.Intn(cv.h-bh-4)
	left := 2 + rng.Intn(cv.w-bw-4)
	t := 2 + rng.Intn(2) // stroke thickness
	bright := 0.7 + rng.Float64()*0.3
	col := []float64{bright}
	segs := sevenSeg[digit]
	mid := top + bh/2
	// A: top bar.
	if segs[0] {
		cv.fillRect(top, left, top+t, left+bw, col)
	}
	// B: top-right column.
	if segs[1] {
		cv.fillRect(top, left+bw-t, mid, left+bw, col)
	}
	// C: bottom-right column.
	if segs[2] {
		cv.fillRect(mid, left+bw-t, top+bh, left+bw, col)
	}
	// D: bottom bar.
	if segs[3] {
		cv.fillRect(top+bh-t, left, top+bh, left+bw, col)
	}
	// E: bottom-left column.
	if segs[4] {
		cv.fillRect(mid, left, top+bh, left+t, col)
	}
	// F: top-left column.
	if segs[5] {
		cv.fillRect(top, left, mid, left+t, col)
	}
	// G: middle bar.
	if segs[6] {
		cv.fillRect(mid-t/2, left, mid-t/2+t, left+bw, col)
	}
}

// hueColor returns an RGB triple for one of nHues evenly spaced hues.
func hueColor(hue, nHues int) [3]float64 {
	angle := 2 * math.Pi * float64(hue) / float64(nHues)
	r := 0.5 + 0.5*math.Cos(angle)
	g := 0.5 + 0.5*math.Cos(angle-2*math.Pi/3)
	b := 0.5 + 0.5*math.Cos(angle+2*math.Pi/3)
	return [3]float64{r, g, b}
}

// shapeCount is the number of distinct procedural shapes available.
const shapeCount = 10

// drawShape renders shape s (0..9) with the given colour into a 32x32 RGB
// canvas, jittered by rng.
func drawShape(cv *canvas, s int, col [3]float64, rng *rand.Rand) {
	cx := 13.0 + rng.Float64()*6
	cy := 13.0 + rng.Float64()*6
	r := 8.0 + rng.Float64()*4
	set := func(y, x int, scale float64) {
		for ch := 0; ch < 3; ch++ {
			cv.add(y, x, ch, col[ch]*scale)
		}
	}
	for y := 0; y < cv.h; y++ {
		for x := 0; x < cv.w; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			d := math.Hypot(dx, dy)
			switch s {
			case 0: // disk
				if d < r {
					set(y, x, 1)
				}
			case 1: // ring
				if d < r && d > r*0.55 {
					set(y, x, 1)
				}
			case 2: // square
				if math.Abs(dx) < r*0.8 && math.Abs(dy) < r*0.8 {
					set(y, x, 1)
				}
			case 3: // frame
				adx, ady := math.Abs(dx), math.Abs(dy)
				if adx < r*0.9 && ady < r*0.9 && (adx > r*0.5 || ady > r*0.5) {
					set(y, x, 1)
				}
			case 4: // plus
				if (math.Abs(dx) < r*0.3 && math.Abs(dy) < r) || (math.Abs(dy) < r*0.3 && math.Abs(dx) < r) {
					set(y, x, 1)
				}
			case 5: // diagonal cross
				if (math.Abs(dx-dy) < r*0.4 || math.Abs(dx+dy) < r*0.4) && d < r*1.2 {
					set(y, x, 1)
				}
			case 6: // horizontal stripes
				if d < r*1.2 && (y/3)%2 == 0 {
					set(y, x, 1)
				}
			case 7: // vertical stripes
				if d < r*1.2 && (x/3)%2 == 0 {
					set(y, x, 1)
				}
			case 8: // checker
				if d < r*1.2 && ((x/4)+(y/4))%2 == 0 {
					set(y, x, 1)
				}
			case 9: // triangle (upward)
				if dy > -r && dy < r*0.8 && math.Abs(dx) < (dy+r)*0.6 {
					set(y, x, 1)
				}
			}
		}
	}
}

// newObjects generates a CIFAR-like RGB task with classes = shapes x hues.
func newObjects(name string, n, nShapes, nHues int, noise float64, seed int64) *Synth {
	const h, w = 32, 32
	classes := nShapes * nHues
	s := &Synth{TaskName: name, Classes: classes, shape: []int{3, h, w}}
	s.images = make([]uint8, n*3*h*w)
	s.labels = make([]int, n)
	rng := rand.New(rand.NewSource(seed))
	chw := make([]float64, 3*h*w)
	for i := 0; i < n; i++ {
		class := rng.Intn(classes)
		s.labels[i] = class
		shape := class % nShapes
		hue := class / nShapes
		cv := newCanvas(h, w, 3)
		// Random dim background gradient.
		gx := rng.Float64() * 0.25
		gy := rng.Float64() * 0.25
		base := rng.Float64() * 0.2
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				for ch := 0; ch < 3; ch++ {
					cv.add(y, x, ch, base+gx*float64(x)/float64(w)+gy*float64(y)/float64(h))
				}
			}
		}
		col := hueColor(hue, nHues)
		drawShape(cv, shape, col, rng)
		for j := range cv.pix {
			cv.pix[j] += rng.NormFloat64() * noise
		}
		// Convert HWC canvas to CHW sample layout.
		for ch := 0; ch < 3; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					chw[(ch*h+y)*w+x] = cv.pix[(y*w+x)*3+ch]
				}
			}
		}
		dst := s.images[i*3*h*w : (i+1)*3*h*w]
		for j, v := range chw {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			dst[j] = uint8(math.Round(v * 255))
		}
	}
	return s
}

// NewObjects10 generates a CIFAR-10-like task: 10 classes = 5 shapes x 2
// hue families, moderate noise.
func NewObjects10(n int, seed int64) *Synth {
	return newObjects("synth-cifar10", n, 5, 2, 0.10, seed)
}

// NewObjects100 generates a CIFAR-100-like task: 100 classes = 10 shapes
// x 10 hues. The 10x larger label space with few samples per class makes
// this substantially harder than the 10-class task, mirroring CIFAR-100's
// difficulty jump.
func NewObjects100(n int, seed int64) *Synth {
	return newObjects("synth-cifar100", n, shapeCount, 10, 0.08, seed)
}
