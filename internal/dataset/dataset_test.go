package dataset

import (
	"math"
	"testing"
)

func TestDigitsDeterministic(t *testing.T) {
	a := NewDigits(50, 7)
	b := NewDigits(50, 7)
	for i := range a.images {
		if a.images[i] != b.images[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := NewDigits(50, 8)
	same := true
	for i := range a.images {
		if a.images[i] != c.images[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestDigitsShapeAndRange(t *testing.T) {
	ds := NewDigits(20, 1)
	if ds.Len() != 20 {
		t.Fatalf("len %d", ds.Len())
	}
	shape := ds.InputShape()
	if len(shape) != 3 || shape[0] != 1 || shape[1] != 28 || shape[2] != 28 {
		t.Fatalf("shape %v", shape)
	}
	buf := make([]float64, 28*28)
	for i := 0; i < ds.Len(); i++ {
		label := ds.Sample(i, buf)
		if label < 0 || label > 9 {
			t.Fatalf("label %d", label)
		}
		if label != ds.Label(i) {
			t.Fatal("Label() disagrees with Sample()")
		}
		for _, v := range buf {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %g outside [0,1]", v)
			}
		}
	}
}

func TestDigitsClassBalanceAndSignal(t *testing.T) {
	ds := NewDigits(500, 3)
	counts := make([]int, 10)
	buf := make([]float64, 28*28)
	for i := 0; i < ds.Len(); i++ {
		counts[ds.Sample(i, buf)]++
		// Every digit must have some lit pixels (signal present).
		sum := 0.0
		for _, v := range buf {
			sum += v
		}
		if sum < 5 {
			t.Fatalf("sample %d nearly empty (sum %g)", i, sum)
		}
	}
	for d, c := range counts {
		if c < 20 {
			t.Errorf("digit %d badly under-represented: %d/500", d, c)
		}
	}
}

func TestDigitsClassesAreDistinguishable(t *testing.T) {
	// Mean images of distinct digits must differ substantially — a
	// degenerate generator would break every accuracy experiment.
	ds := NewDigits(400, 5)
	means := make([][]float64, 10)
	counts := make([]int, 10)
	buf := make([]float64, 28*28)
	for i := 0; i < ds.Len(); i++ {
		l := ds.Sample(i, buf)
		if means[l] == nil {
			means[l] = make([]float64, len(buf))
		}
		for j, v := range buf {
			means[l][j] += v
		}
		counts[l]++
	}
	for d := range means {
		for j := range means[d] {
			means[d][j] /= float64(counts[d])
		}
	}
	// Digits 1 and 8 are maximally different in segment count.
	dist := 0.0
	for j := range means[1] {
		dist += math.Abs(means[1][j] - means[8][j])
	}
	if dist < 10 {
		t.Errorf("mean images of 1 and 8 too close: L1 distance %g", dist)
	}
}

func TestObjects10(t *testing.T) {
	ds := NewObjects10(100, 2)
	if ds.Classes != 10 {
		t.Fatalf("classes %d", ds.Classes)
	}
	shape := ds.InputShape()
	if shape[0] != 3 || shape[1] != 32 || shape[2] != 32 {
		t.Fatalf("shape %v", shape)
	}
	buf := make([]float64, 3*32*32)
	seen := map[int]bool{}
	for i := 0; i < ds.Len(); i++ {
		l := ds.Sample(i, buf)
		if l < 0 || l >= 10 {
			t.Fatalf("label %d", l)
		}
		seen[l] = true
	}
	if len(seen) < 8 {
		t.Errorf("only %d distinct classes in 100 samples", len(seen))
	}
}

func TestObjects100(t *testing.T) {
	ds := NewObjects100(300, 4)
	if ds.Classes != 100 {
		t.Fatalf("classes %d", ds.Classes)
	}
	buf := make([]float64, 3*32*32)
	seen := map[int]bool{}
	for i := 0; i < ds.Len(); i++ {
		seen[ds.Sample(i, buf)] = true
	}
	if len(seen) < 70 {
		t.Errorf("only %d distinct classes in 300 samples", len(seen))
	}
}

func TestSplit(t *testing.T) {
	ds := NewDigits(100, 1)
	tr, te, err := ds.Split(80)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 80 || te.Len() != 20 {
		t.Fatalf("split %d/%d", tr.Len(), te.Len())
	}
	// Sample 80 of the original equals sample 0 of the test split.
	a := make([]float64, 28*28)
	b := make([]float64, 28*28)
	la := ds.Sample(80, a)
	lb := te.Sample(0, b)
	if la != lb {
		t.Fatal("split labels misaligned")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("split pixels misaligned")
		}
	}
	if _, _, err := ds.Split(0); err == nil {
		t.Error("split 0 accepted")
	}
	if _, _, err := ds.Split(100); err == nil {
		t.Error("split == len accepted")
	}
}

func TestCACompress(t *testing.T) {
	src := NewObjects10(10, 9)
	out, err := CACompress(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	shape := out.InputShape()
	if shape[0] != 1 || shape[1] != 16 || shape[2] != 16 {
		t.Fatalf("compressed shape %v", shape)
	}
	if out.Len() != 10 || out.Classes != 10 {
		t.Fatal("metadata lost")
	}
	// Labels preserved.
	buf := make([]float64, 16*16)
	for i := 0; i < 10; i++ {
		if out.Sample(i, buf) != src.Label(i) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	// Compressed content correlates with source brightness: a sample's
	// mean gray should be within quantization error of its source's
	// Bayer-weighted mean.
	srcBuf := make([]float64, 3*32*32)
	src.Sample(0, srcBuf)
	var meanComp float64
	out.Sample(0, buf)
	for _, v := range buf {
		meanComp += v
	}
	meanComp /= float64(len(buf))
	if meanComp <= 0 {
		t.Error("compressed output is all zeros")
	}
	// Grayscale dataset cannot be CA-compressed.
	if _, err := CACompress(NewDigits(5, 1), 2); err == nil {
		t.Error("grayscale input accepted")
	}
	if _, err := CACompress(src, 5); err == nil {
		t.Error("indivisible pool accepted")
	}
}
