// Package energy implements Lightator's component-level power model: the
// per-layer breakdown into weight-tuning DACs, MR tuning (TUN), the DMVA
// (CRC + VCSELs + drivers), output ADCs, balanced photodetectors, and
// Misc (controller + weight/activation memories via the CACTI model).
// These are the six components of the paper's Figs. 8 and 9.
//
// Unit powers are calibrated (DESIGN.md §5): the paper's analog circuit
// constants are not published, so each unit value is chosen from device
// literature and anchored so the assembled model reproduces the paper's
// headline numbers — the 5.28 / 2.71 / 1.46 W ladder across [4:4]/[3:4]/
// [2:4] and the >85% DAC share.
package energy

import (
	"fmt"

	"lightator/internal/cacti"
	"lightator/internal/mapping"
)

// Params carries every unit power/energy constant of the model.
type Params struct {
	// DACUnitPower is the hold power of one weight-tuning DAC per LSB
	// current branch, watts. A b-bit current-steering DAC holding an MR
	// tuning level burns DACUnitPower * 2^b; power-gating the top bit
	// slices (the paper's trick) halves it per bit removed.
	DACUnitPower float64
	// TuningPowerPerMR is the mean MR heater hold power, watts. Derived
	// from the photonic model: ~1 nm max detuning at 7.5 nm/mW isolated
	// heaters, averaged over the weight-level distribution.
	TuningPowerPerMR float64
	// ADCEnergyPerConv is the energy of one 4-bit output conversion,
	// joules (ultra-low-power SAR at 45 nm).
	ADCEnergyPerConv float64
	// BPDPowerPerArm is the bias + TIA power of one balanced
	// photodetector, watts.
	BPDPowerPerArm float64
	// VCSELAvgPower is the average electrical power of one active DMVA
	// channel (VCSEL + driver at mean modulation), watts.
	VCSELAvgPower float64
	// NumVCSELChannels is the DMVA size: 9 wavelengths per bank-row bus
	// times 12 bank rows.
	NumVCSELChannels int
	// CRCComparatorEnergy is the energy of one pixel comparator
	// evaluation, joules (15 per pixel read).
	CRCComparatorEnergy float64
	// ControllerPower is the constant control/timing overhead, watts.
	ControllerPower float64
	// WeightMemory and ActMemory model the two SRAM buffers of Fig. 3.
	WeightMemory *cacti.SRAM
	ActMemory    *cacti.SRAM
	// ClockHz is the optical core's modulation (operational cycle) rate.
	ClockHz float64
	// RemapLatency is the effective per-tile re-programming latency:
	// DAC write plus MR settle, pipelined across banks. The default
	// assumes fast carrier-injection (PIN) tuning as in Robin; thermal
	// tuning (4 us) is available for the ablation benches.
	RemapLatency float64
	// MemBanks is the number of parallel activation-memory banks; it sets
	// the activation bandwidth floor on layer time.
	MemBanks int
	// ActBits is the stored activation precision (4 everywhere in the
	// paper); activations pack ActBits-wide into memory words.
	ActBits int
}

// Default returns the calibrated parameter set.
func Default() Params {
	wmem, err := cacti.New(64*1024, 16, 45)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	amem, err := cacti.New(32*1024, 16, 45)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return Params{
		DACUnitPower:        55e-6,
		TuningPowerPerMR:    47e-6,
		ADCEnergyPerConv:    50e-15,
		BPDPowerPerArm:      20e-6,
		VCSELAvgPower:       250e-6,
		NumVCSELChannels:    mapping.MRsPerArm * mapping.BankRows,
		CRCComparatorEnergy: 30e-15,
		ControllerPower:     20e-3,
		WeightMemory:        wmem,
		ActMemory:           amem,
		ClockHz:             5e9,
		RemapLatency:        300e-9,
		MemBanks:            8,
		ActBits:             4,
	}
}

// weightAccesses returns memory accesses to stream a layer's weights once,
// with wBits-wide values packed into memory words.
func (p Params) weightAccesses(weights int64, wBits int) float64 {
	perWord := p.WeightMemory.WordBits / wBits
	if perWord < 1 {
		perWord = 1
	}
	return float64((weights + int64(perWord) - 1) / int64(perWord))
}

// actAccesses returns memory accesses for a layer's activation traffic
// (one write by the producer, one read by the consumer), packed.
func (p Params) actAccesses(activations int64) float64 {
	perWord := p.ActMemory.WordBits / p.ActBits
	if perWord < 1 {
		perWord = 1
	}
	return float64(2 * (activations + int64(perWord) - 1) / int64(perWord))
}

// MemoryTime returns the activation-memory-bandwidth floor on a layer's
// wall time: banked SRAM can only absorb MemBanks accesses per access
// latency. Weight streaming overlaps the remap pipeline and does not
// bound compute.
func (p Params) MemoryTime(s mapping.Schedule) float64 {
	banks := p.MemBanks
	if banks < 1 {
		banks = 1
	}
	return p.actAccesses(s.Dims.Activations()) * p.ActMemory.AccessLatency() / float64(banks)
}

// DACPower returns the hold power of n active weight DACs at b-bit
// precision: n * unit * 2^b. This is the dominant term of Fig. 9's pie
// ("DACs contribute to more than 85% of the total power consumption, as
// DAC usage is required to convert all of the weight values to analog
// inputs for tuning purposes").
func (p Params) DACPower(activeMRs int64, wBits int) float64 {
	return float64(activeMRs) * p.DACUnitPower * float64(int64(1)<<uint(wBits))
}

// TuningPower returns the MR heater hold power for n active MRs.
func (p Params) TuningPower(activeMRs int64) float64 {
	return float64(activeMRs) * p.TuningPowerPerMR
}

// Breakdown is one layer's power split — the stacked components of
// Figs. 8 and 9.
type Breakdown struct {
	ADCs float64
	DACs float64
	DMVA float64
	TUN  float64
	BPD  float64
	Misc float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.ADCs + b.DACs + b.DMVA + b.TUN + b.BPD + b.Misc
}

// Share returns each component's fraction of the total, keyed by the
// paper's legend names.
func (b Breakdown) Share() map[string]float64 {
	t := b.Total()
	if t == 0 {
		return map[string]float64{}
	}
	return map[string]float64{
		"ADCs": b.ADCs / t,
		"DACs": b.DACs / t,
		"DMVA": b.DMVA / t,
		"TUN":  b.TUN / t,
		"BPD":  b.BPD / t,
		"Misc": b.Misc / t,
	}
}

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		ADCs: b.ADCs + o.ADCs,
		DACs: b.DACs + o.DACs,
		DMVA: b.DMVA + o.DMVA,
		TUN:  b.TUN + o.TUN,
		BPD:  b.BPD + o.BPD,
		Misc: b.Misc + o.Misc,
	}
}

// Scale returns the breakdown scaled by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		ADCs: b.ADCs * f, DACs: b.DACs * f, DMVA: b.DMVA * f,
		TUN: b.TUN * f, BPD: b.BPD * f, Misc: b.Misc * f,
	}
}

// LayerPower computes the power breakdown of one scheduled layer running
// at the given weight precision. firstLayer enables the CRC (sensor
// readout) contribution; layerTime is the wall time of one inference pass
// through this layer (for amortising per-frame energies into power).
func (p Params) LayerPower(s mapping.Schedule, wBits int, firstLayer bool, layerTime float64) (Breakdown, error) {
	if layerTime <= 0 {
		return Breakdown{}, fmt.Errorf("energy: non-positive layer time %g", layerTime)
	}
	var b Breakdown
	d := s.Dims

	// Arms engaged per cycle: active MRs spread over arms.
	activeArms := (s.ActiveMRs + mapping.MRsPerArm - 1) / mapping.MRsPerArm

	switch d.Kind {
	case mapping.Conv, mapping.FC:
		// Weight-path DACs hold tuning levels for every resident MR.
		b.DACs = p.DACPower(s.ActiveMRs, wBits)
		b.TUN = p.TuningPower(s.ActiveMRs)
	case mapping.Pool, mapping.CACompress:
		// Pre-set coefficients: MRs are tuned once at configuration time;
		// no DAC activity during inference (the paper's pooling layers are
		// nearly free in Fig. 8). Holding power remains.
		b.TUN = p.TuningPower(s.ActiveMRs)
	}

	// Output ADCs: one 4-bit conversion per stride result per cycle.
	conversions := float64(s.ComputeCycles) * float64(minI64(int64(s.StridesPerCore), s.StrideKernels))
	b.ADCs = conversions * p.ADCEnergyPerConv / layerTime

	// BPDs: biased on every engaged arm.
	b.BPD = float64(activeArms) * p.BPDPowerPerArm

	// DMVA: active VCSEL channels; the first layer also pays the CRC
	// comparator energy for reading the pixel array.
	b.DMVA = float64(p.NumVCSELChannels) * p.VCSELAvgPower
	if firstLayer {
		pixels := float64(d.InH*d.InW) * float64(d.InC)
		comparisons := pixels * 15
		b.DMVA += comparisons * p.CRCComparatorEnergy / layerTime
	}

	// Misc: controller plus memory traffic. Weights stream once per
	// frame (packed wBits-wide); activations are written once and read
	// once (packed 4-bit).
	b.Misc = p.ControllerPower +
		p.WeightMemory.ReadEnergy()*p.weightAccesses(d.Weights(), wBits)/layerTime +
		p.ActMemory.ReadEnergy()*p.actAccesses(d.Activations())/layerTime
	return b, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
