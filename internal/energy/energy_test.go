package energy

import (
	"math"
	"testing"

	"lightator/internal/mapping"
)

func TestDACPowerBitScaling(t *testing.T) {
	p := Default()
	// Power-gating a bit slice halves DAC power: P(b) = unit * 2^b.
	p4 := p.DACPower(5184, 4)
	p3 := p.DACPower(5184, 3)
	p2 := p.DACPower(5184, 2)
	if math.Abs(p4/p3-2) > 1e-12 || math.Abs(p3/p2-2) > 1e-12 {
		t.Errorf("DAC power not halving per bit: %g %g %g", p4, p3, p2)
	}
	// Full-core 3-bit DAC power should land near the paper's 2.3 W
	// (the dominant slice of the 2.71 W max-power layer).
	if p3 < 1.8 || p3 > 2.8 {
		t.Errorf("full-core 3-bit DAC power %g W, want ~2.3 W", p3)
	}
}

func TestTuningPowerScale(t *testing.T) {
	p := Default()
	full := p.TuningPower(5184)
	// Paper's TUN slice is ~9% of 2.71 W ~ 0.24 W.
	if full < 0.15 || full > 0.4 {
		t.Errorf("full-core tuning power %g W, want ~0.24 W", full)
	}
}

func TestBreakdownAlgebra(t *testing.T) {
	a := Breakdown{ADCs: 1, DACs: 2, DMVA: 3, TUN: 4, BPD: 5, Misc: 6}
	if a.Total() != 21 {
		t.Errorf("total %g", a.Total())
	}
	b := a.Add(a)
	if b.Total() != 42 {
		t.Errorf("add total %g", b.Total())
	}
	c := a.Scale(0.5)
	if c.Total() != 10.5 {
		t.Errorf("scale total %g", c.Total())
	}
	sh := a.Share()
	sum := 0.0
	for _, v := range sh {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %g", sum)
	}
	if (Breakdown{}).Share() == nil {
		t.Error("zero breakdown share should be an empty map, not nil")
	}
}

func TestLayerPowerConvDominatedByDACs(t *testing.T) {
	p := Default()
	d := mapping.LayerDims{Kind: mapping.Conv, Name: "c", InC: 256, OutC: 256, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8}
	s, err := mapping.ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	layerTime := float64(s.ComputeCycles)/p.ClockHz + float64(s.RemapEvents)*p.RemapLatency
	b, err := p.LayerPower(s, 3, false, layerTime)
	if err != nil {
		t.Fatal(err)
	}
	sh := b.Share()
	// The paper's Fig. 9 pie for L8 at [3:4]: DACs ~85%, TUN ~9%,
	// Misc ~4%, DMVA ~1%, ADC and BPD below 1%.
	if sh["DACs"] < 0.80 || sh["DACs"] > 0.92 {
		t.Errorf("DAC share %.1f%%, want ~85%%", sh["DACs"]*100)
	}
	if sh["TUN"] < 0.05 || sh["TUN"] > 0.13 {
		t.Errorf("TUN share %.1f%%, want ~9%%", sh["TUN"]*100)
	}
	if sh["DMVA"] > 0.03 {
		t.Errorf("DMVA share %.1f%%, want ~1%%", sh["DMVA"]*100)
	}
	if sh["ADCs"] > 0.01 || sh["BPD"] > 0.01 {
		t.Errorf("ADC/BPD shares %.2f%%/%.2f%%, want <1%%", sh["ADCs"]*100, sh["BPD"]*100)
	}
}

func TestLayerPowerPoolHasNoDAC(t *testing.T) {
	p := Default()
	d := mapping.LayerDims{Kind: mapping.Pool, Name: "p", InC: 64, OutC: 64, K: 2, Stride: 2, InH: 16, InW: 16}
	s, err := mapping.ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.LayerPower(s, 4, false, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if b.DACs != 0 {
		t.Errorf("pool layer DAC power %g, want 0 (pre-set coefficients)", b.DACs)
	}
	if b.TUN <= 0 {
		t.Error("pool layer should still hold MR tuning power")
	}
}

func TestLayerPowerFirstLayerCRC(t *testing.T) {
	p := Default()
	d := mapping.LayerDims{Kind: mapping.CACompress, Name: "ca", InC: 1, OutC: 1, K: 2, Stride: 2, InH: 256, InW: 256}
	s, err := mapping.ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	withCRC, err := p.LayerPower(s, 4, true, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	without, err := p.LayerPower(s, 4, false, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if withCRC.DMVA <= without.DMVA {
		t.Error("first layer must pay CRC comparator energy in DMVA")
	}
}

func TestLayerPowerRejectsBadTime(t *testing.T) {
	p := Default()
	d := mapping.LayerDims{Kind: mapping.FC, Name: "f", InC: 100, OutC: 10}
	s, _ := mapping.ScheduleLayer(d)
	if _, err := p.LayerPower(s, 4, false, 0); err == nil {
		t.Error("zero layer time accepted")
	}
}

func TestMemoryTimePositive(t *testing.T) {
	p := Default()
	d := mapping.LayerDims{Kind: mapping.Pool, Name: "p", InC: 256, OutC: 256, K: 2, Stride: 2, InH: 4, InW: 4}
	s, _ := mapping.ScheduleLayer(d)
	mt := p.MemoryTime(s)
	if mt <= 0 {
		t.Fatal("memory time not positive")
	}
	// Thin pooling layers must be memory-bound, not optics-bound.
	compute := float64(s.ComputeCycles) / p.ClockHz
	if mt <= compute {
		t.Errorf("pool memory time %g not above compute %g", mt, compute)
	}
}
