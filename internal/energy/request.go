// Per-request energy accounting: the bridge from trace op counts to the
// paper's component model. Where LayerPower amortises a scheduled
// layer's energy into watts over a layer time, RequestEnergy prices the
// modeled op counts of one served request directly in joules — the
// serving layer's energy_j_per_request / modeled_kfps_per_w gauges and
// the per-request trace records come from here.
package energy

import (
	"lightator/internal/mapping"
	"lightator/internal/trace"
)

// RequestTime returns the modeled optical wall time of a request's op
// counts: one modulation cycle per MVM row readout. Capture-only
// requests (comparator fires, no rows) take zero modeled optical time —
// their energy is purely per-fire comparator energy.
func (p Params) RequestTime(c trace.OpCounts) float64 {
	return float64(c.MVMRows) / p.ClockHz
}

// RequestEnergy prices op counts through the component model, in
// joules per component (the same six buckets as Figs. 8 and 9, so a
// Breakdown's Share() applies unchanged):
//
//   - DACs: every runtime-driven coefficient hold (DACSettles) burns
//     one cycle of b-bit DAC hold power. Pre-set banks (CA) count no
//     settles, mirroring LayerPower's Pool/CACompress case.
//   - TUN: every coefficient-cycle hold (MRCoeffHolds, including
//     pre-set banks) burns one cycle of MR heater power.
//   - BPD: coefficient holds spread over MRsPerArm-wide arms; each
//     engaged arm-cycle burns one cycle of photodetector bias power.
//   - ADCs: one conversion energy per digitized row readout.
//   - DMVA: VCSEL channel power over the modeled compute time, plus
//     CRC comparator energy per capture fire.
//   - Misc: controller power over the compute time, plus activation
//     SRAM traffic (each conversion result written once, read once,
//     packed ActBits-wide).
func (p Params) RequestEnergy(c trace.OpCounts, wBits int) Breakdown {
	t := p.RequestTime(c)
	cycle := 1 / p.ClockHz
	armCycles := (c.MRCoeffHolds + int64(mapping.MRsPerArm) - 1) / int64(mapping.MRsPerArm)
	var b Breakdown
	b.DACs = p.DACPower(c.DACSettles, wBits) * cycle
	b.TUN = p.TuningPower(c.MRCoeffHolds) * cycle
	b.BPD = float64(armCycles) * p.BPDPowerPerArm * cycle
	b.ADCs = float64(c.ADCConversions) * p.ADCEnergyPerConv
	b.DMVA = float64(p.NumVCSELChannels)*p.VCSELAvgPower*t +
		float64(c.ComparatorFires)*p.CRCComparatorEnergy
	b.Misc = p.ControllerPower * t
	if c.ADCConversions > 0 {
		// actAccesses rounds up to packed memory words, so it charges a
		// word even for zero values — only price traffic when a request
		// actually digitized something.
		b.Misc += p.ActMemory.ReadEnergy() * p.actAccesses(c.ADCConversions)
	}
	return b
}

// RequestPower returns the average modeled power of a request, watts;
// zero when the request has no modeled optical time.
func (p Params) RequestPower(c trace.OpCounts, wBits int) float64 {
	t := p.RequestTime(c)
	if t <= 0 {
		return 0
	}
	return p.RequestEnergy(c, wBits).Total() / t
}

// ModeledKFPSPerW converts joules-per-request into the paper's
// KFPS/W efficiency figure: a stream of identical requests sustains
// 1/J requests per second per watt, i.e. 1/(1000*J) KFPS/W. Returns 0
// for non-positive energy.
func ModeledKFPSPerW(joulesPerRequest float64) float64 {
	if joulesPerRequest <= 0 {
		return 0
	}
	return 1 / (1000 * joulesPerRequest)
}
