package energy

import (
	"math"
	"testing"

	"lightator/internal/mapping"
	"lightator/internal/trace"
)

func TestRequestEnergyComponents(t *testing.T) {
	p := Default()
	c := trace.OpCounts{
		MVMRows:         1000,
		DACSettles:      9000,
		ADCConversions:  1000,
		ComparatorFires: 500,
		MRCoeffHolds:    18000,
	}
	wBits := 4
	b := p.RequestEnergy(c, wBits)
	cycle := 1 / p.ClockHz
	tm := p.RequestTime(c)

	if want := tm; math.Abs(want-float64(c.MVMRows)/p.ClockHz) > 1e-18 {
		t.Fatalf("RequestTime = %g, want %g", tm, want)
	}
	if want := p.DACPower(c.DACSettles, wBits) * cycle; math.Abs(b.DACs-want)/want > 1e-12 {
		t.Fatalf("DACs = %g, want %g", b.DACs, want)
	}
	if want := p.TuningPower(c.MRCoeffHolds) * cycle; math.Abs(b.TUN-want)/want > 1e-12 {
		t.Fatalf("TUN = %g, want %g", b.TUN, want)
	}
	armCycles := (c.MRCoeffHolds + int64(mapping.MRsPerArm) - 1) / int64(mapping.MRsPerArm)
	if want := float64(armCycles) * p.BPDPowerPerArm * cycle; math.Abs(b.BPD-want)/want > 1e-12 {
		t.Fatalf("BPD = %g, want %g", b.BPD, want)
	}
	if want := float64(c.ADCConversions) * p.ADCEnergyPerConv; math.Abs(b.ADCs-want)/want > 1e-12 {
		t.Fatalf("ADCs = %g, want %g", b.ADCs, want)
	}
	wantDMVA := float64(p.NumVCSELChannels)*p.VCSELAvgPower*tm + float64(c.ComparatorFires)*p.CRCComparatorEnergy
	if math.Abs(b.DMVA-wantDMVA)/wantDMVA > 1e-12 {
		t.Fatalf("DMVA = %g, want %g", b.DMVA, wantDMVA)
	}
	if b.Misc <= p.ControllerPower*tm {
		t.Fatalf("Misc = %g should include activation memory traffic beyond controller %g", b.Misc, p.ControllerPower*tm)
	}
	if b.Total() <= 0 {
		t.Fatal("total energy must be positive")
	}
}

func TestRequestEnergyDACShareDominatesRuntimeMatrices(t *testing.T) {
	// A dense MVM-style request (every coefficient DAC-driven) must show
	// the paper's DAC dominance at [4:4].
	p := Default()
	rows, cols := int64(256), int64(1024)
	c := trace.OpCounts{
		MVMRows:        rows,
		DACSettles:     rows * cols,
		ADCConversions: rows,
		MRCoeffHolds:   rows * cols,
	}
	b := p.RequestEnergy(c, 4)
	if share := b.Share()["DACs"]; share < 0.85 {
		t.Fatalf("DAC share = %.3f, want > 0.85 for runtime-driven matrices", share)
	}
}

func TestRequestEnergyPresetBankCountsNoDACs(t *testing.T) {
	// CA-style request: coefficients pre-set, no DAC settles.
	p := Default()
	c := trace.OpCounts{MVMRows: 4096, ADCConversions: 4096, MRCoeffHolds: 4096 * 4}
	b := p.RequestEnergy(c, 4)
	if b.DACs != 0 {
		t.Fatalf("pre-set bank request priced DAC energy %g, want 0", b.DACs)
	}
	if b.TUN <= 0 {
		t.Fatal("pre-set bank still holds tuning power")
	}
}

func TestRequestEnergyCaptureOnly(t *testing.T) {
	p := Default()
	c := trace.OpCounts{ComparatorFires: 256 * 256 * 15}
	b := p.RequestEnergy(c, 4)
	want := float64(c.ComparatorFires) * p.CRCComparatorEnergy
	if math.Abs(b.Total()-want)/want > 1e-12 {
		t.Fatalf("capture-only energy = %g, want pure comparator energy %g", b.Total(), want)
	}
	if p.RequestPower(c, 4) != 0 {
		t.Fatal("capture-only request has no modeled optical time; power must be 0")
	}
}

func TestRequestEnergyScalesLinearly(t *testing.T) {
	p := Default()
	// Activation traffic rounds to packed memory words, so exact
	// linearity holds up to one word of rounding — a 1% tolerance at
	// these counts.
	c := trace.OpCounts{MVMRows: 100, DACSettles: 900, ADCConversions: 100, MRCoeffHolds: 900}
	one := p.RequestEnergy(c, 3).Total()
	three := p.RequestEnergy(c.Scale(3), 3).Total()
	if math.Abs(three-3*one)/(3*one) > 1e-2 {
		t.Fatalf("energy not linear in ops: 3x counts gave %g, want %g", three, 3*one)
	}
}

func TestRequestPowerConsistentWithEnergy(t *testing.T) {
	p := Default()
	c := trace.OpCounts{MVMRows: 5000, DACSettles: 45000, ADCConversions: 5000, MRCoeffHolds: 45000}
	e := p.RequestEnergy(c, 4).Total()
	tm := p.RequestTime(c)
	if got, want := p.RequestPower(c, 4), e/tm; math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("RequestPower = %g, want E/t = %g", got, want)
	}
}

func TestModeledKFPSPerW(t *testing.T) {
	if got := ModeledKFPSPerW(1e-3); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("1 mJ/request should be 1 KFPS/W, got %g", got)
	}
	if ModeledKFPSPerW(0) != 0 || ModeledKFPSPerW(-1) != 0 {
		t.Fatal("non-positive energy must map to 0")
	}
	// Round-trip with the power view: KFPS/W = FPS/(1000 P) = 1/(1000 J).
	j := 2.5e-4
	if got, want := ModeledKFPSPerW(j), 1/(1000*j); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("ModeledKFPSPerW(%g) = %g, want %g", j, got, want)
	}
}
