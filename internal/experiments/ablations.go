package experiments

import (
	"fmt"
	"strings"

	"lightator/internal/arch"
	"lightator/internal/energy"
	"lightator/internal/mapping"
	"lightator/internal/models"
	"lightator/internal/oc"
	"lightator/internal/report"
	"lightator/internal/train"

	"lightator/internal/nn"
)

// AblationCA quantifies the Compressive Acquisitor's effect (DESIGN.md
// A1): first-layer power, end-to-end latency and FPS with and without CA.
type AblationCAResult struct {
	L1PowerWith, L1PowerWithout float64
	LatencyWith, LatencyWithout float64
	L1Reduction                 float64
	SpeedUp                     float64
}

// AblationCA runs the CA on/off comparison at [3:4].
func AblationCA() (*AblationCAResult, error) {
	p := energy.Default()
	withCA, err := arch.Simulate("vgg9-ca", models.VGG9WithCA(10), arch.Uniform(3, 4), p)
	if err != nil {
		return nil, err
	}
	without, err := arch.Simulate("vgg9", models.VGG9(10), arch.Uniform(3, 4), p)
	if err != nil {
		return nil, err
	}
	l1w, err := withCA.LayerByName("L1.conv1")
	if err != nil {
		return nil, err
	}
	l1, err := without.LayerByName("L1.conv1")
	if err != nil {
		return nil, err
	}
	return &AblationCAResult{
		L1PowerWith:    l1w.Power.Total(),
		L1PowerWithout: l1.Power.Total(),
		LatencyWith:    withCA.FrameLatency,
		LatencyWithout: without.FrameLatency,
		L1Reduction:    1 - l1w.Power.Total()/l1.Power.Total(),
		SpeedUp:        without.FrameLatency / withCA.FrameLatency,
	}, nil
}

// Render prints the CA ablation.
func (r *AblationCAResult) Render() string {
	return fmt.Sprintf(
		"Ablation A1 — Compressive Acquisitor on/off (VGG9 [3:4])\n"+
			"  L1 power: %sW with CA vs %sW without (%.1f%% reduction; paper 42.2%%)\n"+
			"  frame latency: %ss with CA vs %ss without (%.2fx speedup)\n",
		report.FormatSI(r.L1PowerWith, 3), report.FormatSI(r.L1PowerWithout, 3), r.L1Reduction*100,
		report.FormatSI(r.LatencyWith, 3), report.FormatSI(r.LatencyWithout, 3), r.SpeedUp)
}

// AblationKernelRow is one kernel size's mapping efficiency (A2).
type AblationKernelRow struct {
	K               int
	StridesPerBank  int
	IdleMRs         int
	MRUtilisation   float64
	SummationStages int
}

// AblationKernelMapping tabulates Fig. 6's mapping efficiency for every
// kernel size a bank supports.
func AblationKernelMapping() ([]AblationKernelRow, error) {
	var rows []AblationKernelRow
	for k := 1; k <= 7; k++ {
		m, err := mapping.MapKernel(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationKernelRow{
			K:               k,
			StridesPerBank:  m.StridesPerBank,
			IdleMRs:         m.IdleMRsPerStride,
			MRUtilisation:   m.MRUtilisation(),
			SummationStages: m.SummationStages,
		})
	}
	return rows, nil
}

// RenderKernelAblation prints A2.
func RenderKernelAblation(rows []AblationKernelRow) string {
	tb := report.Table{
		Title:   "Ablation A2 — kernel-size mapping efficiency (Fig. 6)",
		Headers: []string{"Kernel", "Strides/bank", "Idle MRs/stride", "MR utilisation", "Summation stages"},
	}
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%dx%d", r.K, r.K), fmt.Sprint(r.StridesPerBank),
			fmt.Sprint(r.IdleMRs), fmt.Sprintf("%.1f%%", r.MRUtilisation*100), fmt.Sprint(r.SummationStages))
	}
	return tb.Render()
}

// AblationFidelityResult compares accuracy across analog fidelities (A3):
// quantization only, + crosstalk, + detector noise.
type AblationFidelityResult struct {
	Digital, Ideal, Physical, PhysicalNoisy float64
}

// AblationFidelity measures synth-MNIST accuracy at [4:4] across the
// analog fidelity ladder.
func AblationFidelity(opt Options) (*AblationFidelityResult, error) {
	e := Engine(opt)
	digital, err := e.Accuracy(TaskMNIST, PrecisionConfig{WBits: 4, ABits: 4})
	if err != nil {
		return nil, err
	}
	// Reuse the trained [4:4] network by re-running the photonic
	// evaluation at each fidelity.
	res := &AblationFidelityResult{Digital: digital}
	for _, f := range []oc.Fidelity{oc.Ideal, oc.Physical, oc.PhysicalNoisy} {
		acc, err := e.photonicAccuracy(TaskMNIST, PrecisionConfig{WBits: 4, ABits: 4}, f)
		if err != nil {
			return nil, err
		}
		switch f {
		case oc.Ideal:
			res.Ideal = acc
		case oc.Physical:
			res.Physical = acc
		case oc.PhysicalNoisy:
			res.PhysicalNoisy = acc
		}
	}
	return res, nil
}

// photonicAccuracy re-evaluates a memoised configuration at an arbitrary
// fidelity (used by the A3 ablation).
func (e *engine) photonicAccuracy(task Task, cfg PrecisionConfig, fid oc.Fidelity) (float64, error) {
	// Ensure the digital model is trained and memoised first.
	if _, err := e.Accuracy(task, cfg); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := fmt.Sprintf("%d/%s/fid=%s", task, cfg.Name(), fid)
	if acc, ok := e.accs[key]; ok {
		return acc, nil
	}
	net, err := e.rebuildTrained(task, cfg)
	if err != nil {
		return 0, err
	}
	_, te, err := e.datasets(task)
	if err != nil {
		return 0, err
	}
	pe, err := nn.NewPhotonicExec(net, cfg.ABits, fid)
	if err != nil {
		return 0, err
	}
	acc, err := train.EvaluatePhotonic(pe, te, 16, e.opt.budget(task).photonicEvalN)
	if err != nil {
		return 0, err
	}
	e.accs[key] = acc
	return acc, nil
}

// Render prints A3.
func (r *AblationFidelityResult) Render() string {
	return fmt.Sprintf(
		"Ablation A3 — analog fidelity vs synth-MNIST accuracy at [4:4]\n"+
			"  digital quantized: %.1f%%\n"+
			"  photonic ideal:    %.1f%% (quantization only)\n"+
			"  + WDM crosstalk:   %.1f%%\n"+
			"  + BPD noise:       %.1f%%\n",
		r.Digital*100, r.Ideal*100, r.Physical*100, r.PhysicalNoisy*100)
}

// AblationActivationModulation (A4) compares Lightator's direct VCSEL
// modulation against a CrossLight-style design that burns MRs (and their
// tuning DACs) on activations too.
type AblationActivationModulationResult struct {
	LightatorTuningW float64
	MRStyleTuningW   float64
	Factor           float64
}

// AblationActivationModulation computes the tuning+DAC power of the two
// activation-handling strategies at full core occupancy, [4:4].
func AblationActivationModulation() *AblationActivationModulationResult {
	p := energy.Default()
	weightMRs := int64(mapping.TotalMRs)
	// Lightator: weights on MRs, activations on VCSEL drive.
	lightator := p.DACPower(weightMRs, 4) + p.TuningPower(weightMRs) +
		float64(p.NumVCSELChannels)*p.VCSELAvgPower
	// CrossLight-style: a second MR bank (and DACs) for activations.
	mrStyle := p.DACPower(2*weightMRs, 4) + p.TuningPower(2*weightMRs)
	return &AblationActivationModulationResult{
		LightatorTuningW: lightator,
		MRStyleTuningW:   mrStyle,
		Factor:           mrStyle / lightator,
	}
}

// Render prints A4.
func (r *AblationActivationModulationResult) Render() string {
	return fmt.Sprintf(
		"Ablation A4 — activation handling at full occupancy, [4:4]\n"+
			"  direct VCSEL modulation (Lightator): %sW\n"+
			"  activation MRs + DACs (CrossLight-style): %sW\n"+
			"  overhead factor: %.2fx\n",
		report.FormatSI(r.LightatorTuningW, 3), report.FormatSI(r.MRStyleTuningW, 3), r.Factor)
}

// AblationRemapResult (A5) contrasts fast PIN tuning with thermal tuning.
type AblationRemapResult struct {
	Model             string
	PINLatency        float64
	ThermalLatency    float64
	Slowdown          float64
	PINRemapShare     float64
	ThermalRemapShare float64
}

// AblationRemapLatency sweeps the MR re-programming latency for a model.
func AblationRemapLatency(model string) (*AblationRemapResult, error) {
	layers, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	pin := energy.Default()
	thermal := energy.Default()
	thermal.RemapLatency = 4e-6 // thermal settle
	repPIN, err := arch.Simulate(model, layers, arch.Uniform(4, 4), pin)
	if err != nil {
		return nil, err
	}
	repTh, err := arch.Simulate(model, layers, arch.Uniform(4, 4), thermal)
	if err != nil {
		return nil, err
	}
	share := func(rep *arch.Report) float64 {
		var remap float64
		for _, l := range rep.Layers {
			remap += l.RemapTime
		}
		return remap / rep.FrameLatency
	}
	return &AblationRemapResult{
		Model:             model,
		PINLatency:        repPIN.FrameLatency,
		ThermalLatency:    repTh.FrameLatency,
		Slowdown:          repTh.FrameLatency / repPIN.FrameLatency,
		PINRemapShare:     share(repPIN),
		ThermalRemapShare: share(repTh),
	}, nil
}

// Render prints A5.
func (r *AblationRemapResult) Render() string {
	return fmt.Sprintf(
		"Ablation A5 — MR re-programming latency (%s, [4:4])\n"+
			"  PIN tuning (300 ns): latency %ss, remap share %.0f%%\n"+
			"  thermal tuning (4 us): latency %ss, remap share %.0f%% (%.1fx slower)\n",
		r.Model,
		report.FormatSI(r.PINLatency, 3), r.PINRemapShare*100,
		report.FormatSI(r.ThermalLatency, 3), r.ThermalRemapShare*100, r.Slowdown)
}

// RenderAll runs every cheap (non-training) ablation and concatenates the
// reports.
func RenderAllCheapAblations() (string, error) {
	var b strings.Builder
	ca, err := AblationCA()
	if err != nil {
		return "", err
	}
	b.WriteString(ca.Render())
	b.WriteByte('\n')
	rows, err := AblationKernelMapping()
	if err != nil {
		return "", err
	}
	b.WriteString(RenderKernelAblation(rows))
	b.WriteByte('\n')
	b.WriteString(AblationActivationModulation().Render())
	b.WriteByte('\n')
	remap, err := AblationRemapLatency("alexnet")
	if err != nil {
		return "", err
	}
	b.WriteString(remap.Render())
	return b.String(), nil
}
