// Package experiments regenerates every table and figure of the paper's
// evaluation section (the per-experiment index lives in DESIGN.md §3):
//
//	Fig. 8  — LeNet layer-wise power breakdown at [4:4], [3:4], [2:4]
//	Fig. 9  — VGG9 layer-wise power breakdown at [3:4] + the CA effect
//	Table 1 — comparison with optical accelerators (power, KFPS/W,
//	          accuracy on the three synthetic tasks)
//	Fig. 10 — execution time vs electronic accelerators
//
// plus the ablation studies listed in DESIGN.md. Results are memoised per
// process so benchmarks can iterate cheaply.
package experiments

import (
	"fmt"
	"sync"

	"lightator/internal/dataset"
	"lightator/internal/models"
	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/train"
)

// Profile scales the accuracy experiments' training budget.
type Profile int

const (
	// Smoke is the minimal profile for unit tests: tiny datasets, a
	// couple of epochs. Accuracy numbers are rough but the orderings
	// still hold.
	Smoke Profile = iota
	// Quick is the default benchmark profile: minutes of training,
	// accuracies within a few points of the Full profile.
	Quick
	// Full is the report profile used for EXPERIMENTS.md.
	Full
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case Smoke:
		return "smoke"
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Options configures the experiment suite.
type Options struct {
	Profile Profile
	Seed    int64
	// Workers caps the training parallelism for reproducibility.
	Workers int
}

// DefaultOptions returns the Quick profile.
func DefaultOptions() Options {
	return Options{Profile: Quick, Seed: 7, Workers: 8}
}

// Task identifies one of the three synthetic stand-in datasets.
type Task int

const (
	TaskMNIST Task = iota
	TaskCIFAR10
	TaskCIFAR100
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case TaskMNIST:
		return "synth-MNIST"
	case TaskCIFAR10:
		return "synth-CIFAR10"
	case TaskCIFAR100:
		return "synth-CIFAR100"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// taskBudget is the per-profile training budget.
type taskBudget struct {
	trainN, testN  int
	floatEp, qatEp int
	batch          int
	lr             float64
	width          int // VGG9Slim width (ignored for LeNet)
	photonicEvalN  int
}

func (o Options) budget(task Task) taskBudget {
	switch o.Profile {
	case Smoke:
		switch task {
		case TaskMNIST:
			return taskBudget{trainN: 600, testN: 150, floatEp: 3, qatEp: 1, batch: 32, lr: 0.08, photonicEvalN: 40}
		case TaskCIFAR10:
			return taskBudget{trainN: 500, testN: 120, floatEp: 3, qatEp: 1, batch: 32, lr: 0.05, width: 4, photonicEvalN: 24}
		default:
			return taskBudget{trainN: 800, testN: 200, floatEp: 3, qatEp: 1, batch: 32, lr: 0.05, width: 6, photonicEvalN: 24}
		}
	case Full:
		switch task {
		case TaskMNIST:
			return taskBudget{trainN: 4000, testN: 1000, floatEp: 6, qatEp: 6, batch: 32, lr: 0.08, photonicEvalN: 300}
		case TaskCIFAR10:
			return taskBudget{trainN: 2500, testN: 600, floatEp: 6, qatEp: 4, batch: 32, lr: 0.05, width: 8, photonicEvalN: 120}
		default:
			return taskBudget{trainN: 4000, testN: 800, floatEp: 8, qatEp: 4, batch: 32, lr: 0.05, width: 10, photonicEvalN: 120}
		}
	default: // Quick
		switch task {
		case TaskMNIST:
			return taskBudget{trainN: 1600, testN: 400, floatEp: 5, qatEp: 2, batch: 32, lr: 0.08, photonicEvalN: 100}
		case TaskCIFAR10:
			return taskBudget{trainN: 1200, testN: 300, floatEp: 6, qatEp: 2, batch: 32, lr: 0.05, width: 6, photonicEvalN: 40}
		default:
			return taskBudget{trainN: 2500, testN: 500, floatEp: 7, qatEp: 2, batch: 32, lr: 0.05, width: 8, photonicEvalN: 40}
		}
	}
}

// PrecisionConfig names one accuracy configuration: a weight bit-width, an
// activation bit-width, and an optional first-layer override (MX).
type PrecisionConfig struct {
	WBits, ABits int
	// MXFirstWBits overrides the first weight layer when non-zero.
	MXFirstWBits int
	// Float skips quantization entirely (the GPU [32:32] baseline row).
	Float bool
	// Photonic evaluates through the optical core (Physical fidelity)
	// instead of the digital quantized path.
	Photonic bool
}

// Name renders the [W:A] label.
func (c PrecisionConfig) Name() string {
	if c.Float {
		return "[32:32]"
	}
	if c.MXFirstWBits != 0 {
		return fmt.Sprintf("[%d:%d][%d:%d]", c.MXFirstWBits, c.ABits, c.WBits, c.ABits)
	}
	return fmt.Sprintf("[%d:%d]", c.WBits, c.ABits)
}

// engine trains and evaluates lazily, memoising by (task, config).
type engine struct {
	opt Options

	mu   sync.Mutex
	data map[Task][2]*dataset.Synth // train/test splits
	base map[Task][]float64         // flattened float weights of the base net
	accs map[string]float64
	nets map[string]*nn.Sequential // trained nets for re-evaluation
}

var (
	globalMu      sync.Mutex
	globalEngines = map[Options]*engine{}
)

// Engine returns the process-wide memoised engine for the options.
func Engine(opt Options) *engine {
	globalMu.Lock()
	defer globalMu.Unlock()
	if e, ok := globalEngines[opt]; ok {
		return e
	}
	e := &engine{
		opt:  opt,
		data: map[Task][2]*dataset.Synth{},
		base: map[Task][]float64{},
		accs: map[string]float64{},
		nets: map[string]*nn.Sequential{},
	}
	globalEngines[opt] = e
	return e
}

// datasets returns (train, test) for a task, generating them on demand.
func (e *engine) datasets(task Task) (*dataset.Synth, *dataset.Synth, error) {
	if pair, ok := e.data[task]; ok {
		return pair[0], pair[1], nil
	}
	b := e.opt.budget(task)
	n := b.trainN + b.testN
	var full *dataset.Synth
	switch task {
	case TaskMNIST:
		full = dataset.NewDigits(n, e.opt.Seed)
	case TaskCIFAR10:
		// RGB, as in the paper's Table 1 (the CA-compressed pipeline is
		// the Fig. 9 power experiment; its grayscale conversion would
		// discard the hue cues these tasks are built on).
		full = dataset.NewObjects10(n, e.opt.Seed+1)
	case TaskCIFAR100:
		full = dataset.NewObjects100(n, e.opt.Seed+2)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown task %d", task)
	}
	tr, te, err := full.Split(b.trainN)
	if err != nil {
		return nil, nil, err
	}
	e.data[task] = [2]*dataset.Synth{tr, te}
	return tr, te, nil
}

// buildNet constructs the task's network at the given activation bits.
func (e *engine) buildNet(task Task, aBits int) (*nn.Sequential, error) {
	b := e.opt.budget(task)
	switch task {
	case TaskMNIST:
		return models.BuildLeNet(10, aBits), nil
	case TaskCIFAR10:
		return models.BuildVGG9Slim(3, 32, 32, 10, b.width, aBits)
	case TaskCIFAR100:
		return models.BuildVGG9Slim(3, 32, 32, 100, b.width, aBits)
	default:
		return nil, fmt.Errorf("experiments: unknown task %d", task)
	}
}

// flattenParams snapshots all parameter values.
func flattenParams(net *nn.Sequential) []float64 {
	var out []float64
	for _, p := range net.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// restoreParams writes a snapshot back into a structurally identical net.
func restoreParams(net *nn.Sequential, snap []float64) error {
	i := 0
	for _, p := range net.Params() {
		if i+len(p.Data) > len(snap) {
			return fmt.Errorf("experiments: snapshot too short")
		}
		copy(p.Data, snap[i:i+len(p.Data)])
		i += len(p.Data)
	}
	if i != len(snap) {
		return fmt.Errorf("experiments: snapshot size mismatch: %d vs %d", i, len(snap))
	}
	return nil
}

// baseWeights trains (once) the float base model for a task and returns a
// snapshot of its weights.
func (e *engine) baseWeights(task Task) ([]float64, error) {
	if snap, ok := e.base[task]; ok {
		return snap, nil
	}
	tr, _, err := e.datasets(task)
	if err != nil {
		return nil, err
	}
	b := e.opt.budget(task)
	net, err := e.buildNet(task, 4)
	if err != nil {
		return nil, err
	}
	net.InitHe(e.opt.Seed + int64(task)*101)
	cfg := train.DefaultConfig()
	cfg.Epochs = b.floatEp
	cfg.QATEpochs = 0
	cfg.BatchSize = b.batch
	cfg.LR = b.lr
	cfg.Workers = e.opt.Workers
	cfg.Seed = e.opt.Seed + int64(task)
	if _, err := train.Train(net, tr, cfg); err != nil {
		return nil, err
	}
	snap := flattenParams(net)
	e.base[task] = snap
	return snap, nil
}

// Accuracy trains (fine-tunes) and evaluates one (task, config) pair,
// returning classification accuracy in [0,1]. Results are memoised.
func (e *engine) Accuracy(task Task, cfg PrecisionConfig) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := fmt.Sprintf("%d/%s/ph=%v", task, cfg.Name(), cfg.Photonic)
	if acc, ok := e.accs[key]; ok {
		return acc, nil
	}
	tr, te, err := e.datasets(task)
	if err != nil {
		return 0, err
	}
	b := e.opt.budget(task)
	snap, err := e.baseWeights(task)
	if err != nil {
		return 0, err
	}

	aBits := cfg.ABits
	if cfg.Float {
		aBits = 8 // effectively unquantized for these value ranges
	}
	net, err := e.buildNet(task, aBits)
	if err != nil {
		return 0, err
	}
	net.InitHe(e.opt.Seed) // overwritten by the snapshot below
	if err := restoreParams(net, snap); err != nil {
		return 0, err
	}

	if !cfg.Float {
		// Quantization-aware fine-tuning at the target precision.
		nn.EnableQAT(net, cfg.WBits)
		if cfg.MXFirstWBits != 0 {
			if err := nn.SetLayerWeightBits(net, 0, cfg.MXFirstWBits); err != nil {
				return 0, err
			}
		}
		tcfg := train.DefaultConfig()
		tcfg.Epochs = 0
		tcfg.QATEpochs = b.qatEp
		tcfg.WBits = 0 // quantizers already attached (incl. MX override)
		tcfg.BatchSize = b.batch
		tcfg.LR = b.lr / 4
		tcfg.Workers = e.opt.Workers
		tcfg.Seed = e.opt.Seed + 31
		if cfg.WBits == 1 || cfg.ABits == 1 {
			// Binary nets (LightBulb, Robin) need a longer, hotter
			// fine-tune to recover from the drastic precision drop.
			tcfg.QATEpochs = b.qatEp * 3
			tcfg.LR = b.lr / 2
		}
		if _, err := train.Train(net, tr, tcfg); err != nil {
			return 0, err
		}
	} else {
		// Calibrate activation scales without quantized weights.
		tcfg := train.DefaultConfig()
		tcfg.Epochs = 1
		tcfg.QATEpochs = 0
		tcfg.BatchSize = b.batch
		tcfg.LR = b.lr / 10
		tcfg.Workers = e.opt.Workers
		tcfg.Seed = e.opt.Seed + 37
		if _, err := train.Train(net, tr, tcfg); err != nil {
			return 0, err
		}
	}

	var acc float64
	if cfg.Photonic {
		pe, err := nn.NewPhotonicExec(net, cfg.ABits, oc.Physical)
		if err != nil {
			return 0, err
		}
		acc, err = train.EvaluatePhotonic(pe, te, 16, b.photonicEvalN)
		if err != nil {
			return 0, err
		}
	} else {
		acc, err = train.Evaluate(net, te, 64)
		if err != nil {
			return 0, err
		}
	}
	e.accs[key] = acc
	e.nets[fmt.Sprintf("%d/%s", task, cfg.Name())] = net
	return acc, nil
}

// rebuildTrained returns the memoised trained network for a (task,
// config) pair. Accuracy must have been called for the pair first.
func (e *engine) rebuildTrained(task Task, cfg PrecisionConfig) (*nn.Sequential, error) {
	net, ok := e.nets[fmt.Sprintf("%d/%s", task, cfg.Name())]
	if !ok {
		return nil, fmt.Errorf("experiments: no trained net for %s %s", task, cfg.Name())
	}
	return net, nil
}
