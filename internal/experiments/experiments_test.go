package experiments

import (
	"strings"
	"testing"
)

// smokeOpt is the cheapest profile for unit tests; the engine memoises
// across tests in this package.
func smokeOpt() Options {
	return Options{Profile: Smoke, Seed: 7, Workers: 8}
}

func TestFig8Structure(t *testing.T) {
	res, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("%d configs, want 3", len(res.Reports))
	}
	for i, rep := range res.Reports {
		if len(rep.Layers) != 7 {
			t.Errorf("config %d has %d layers, want 7", i, len(rep.Layers))
		}
	}
	// Power ladder ordering.
	if !(res.Reports[0].MaxPower > res.Reports[1].MaxPower && res.Reports[1].MaxPower > res.Reports[2].MaxPower) {
		t.Error("Fig. 8 power ladder broken")
	}
	// Paper: ~2.4x average power efficiency from bit reduction.
	if res.AvgPowerEfficiency < 1.8 || res.AvgPowerEfficiency > 4.5 {
		t.Errorf("avg power efficiency %.2fx, paper ~2.4x", res.AvgPowerEfficiency)
	}
	out := res.Render()
	for _, want := range []string{"L1.conv1", "L7.fc3", "[2:4]", "DACs"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig9Structure(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Layers) != 13 { // CA stage + L1..L12
		t.Errorf("%d layers, want 13", len(res.Report.Layers))
	}
	// Paper: 42.2% first-layer reduction from CA.
	if res.L1Reduction < 0.25 || res.L1Reduction > 0.80 {
		t.Errorf("L1 reduction %.1f%%, paper 42.2%%", res.L1Reduction*100)
	}
	// Paper pie: DACs ~85%.
	if res.L8Share["DACs"] < 0.78 || res.L8Share["DACs"] > 0.92 {
		t.Errorf("L8 DAC share %.1f%%, paper ~85%%", res.L8Share["DACs"]*100)
	}
	// Paper: DACs >85% across all weight layers; allow a looser floor for
	// the calibrated model's thinner layers.
	if res.DACShareMin < 0.5 {
		t.Errorf("min DAC share %.1f%% too low", res.DACShareMin*100)
	}
	if !strings.Contains(res.Render(), "L8 power pie") {
		t.Error("render missing pie")
	}
}

func TestFig10Structure(t *testing.T) {
	res, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 5 {
		t.Fatalf("%d entries, want 5 (4 electronic + Lightator)", len(res.Entries))
	}
	var lightator Fig10Entry
	for _, e := range res.Entries {
		if e.Design == "Lightator" {
			lightator = e
		}
	}
	if lightator.Design == "" {
		t.Fatal("no Lightator entry")
	}
	// Lightator wins on both models against every electronic design.
	for _, e := range res.Entries {
		if e.Design == "Lightator" {
			continue
		}
		if e.AlexNet <= lightator.AlexNet {
			t.Errorf("%s AlexNet %g not slower than Lightator %g", e.Design, e.AlexNet, lightator.AlexNet)
		}
		if e.VGG16 <= lightator.VGG16 {
			t.Errorf("%s VGG16 %g not slower than Lightator %g", e.Design, e.VGG16, lightator.VGG16)
		}
	}
	// Speedup factors within 2x of the paper's (10.7, 20.4, 18.1, 8.8).
	paper := map[string]float64{"Eyeriss": 10.7, "YodaNN": 20.4, "AppCip": 18.1, "ENVISION": 8.8}
	for name, want := range paper {
		got := res.AlexNetSpeedup[name]
		if got < want/2 || got > want*2 {
			t.Errorf("%s speedup %.1fx, paper %.1fx (want within 2x)", name, got, want)
		}
	}
	if !strings.Contains(res.Render(), "Lightator") {
		t.Error("render missing Lightator")
	}
}

func TestAblationCA(t *testing.T) {
	res, err := AblationCA()
	if err != nil {
		t.Fatal(err)
	}
	if res.L1Reduction <= 0 {
		t.Error("CA should reduce first-layer power")
	}
	if res.SpeedUp <= 1 {
		t.Error("CA should speed up the frame")
	}
	if !strings.Contains(res.Render(), "A1") {
		t.Error("render missing label")
	}
}

func TestAblationKernelMapping(t *testing.T) {
	rows, err := AblationKernelMapping()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	// 3x3 is the sweet spot: full utilisation.
	if rows[2].MRUtilisation != 1 {
		t.Errorf("3x3 utilisation %g", rows[2].MRUtilisation)
	}
	if rows[6].IdleMRs != 5 {
		t.Errorf("7x7 idle MRs %d, want 5", rows[6].IdleMRs)
	}
	if !strings.Contains(RenderKernelAblation(rows), "7x7") {
		t.Error("render missing 7x7")
	}
}

func TestAblationActivationModulation(t *testing.T) {
	res := AblationActivationModulation()
	if res.Factor <= 1.5 {
		t.Errorf("MR-based activations should cost well over Lightator's: %.2fx", res.Factor)
	}
	if !strings.Contains(res.Render(), "A4") {
		t.Error("render missing label")
	}
}

func TestAblationRemapLatency(t *testing.T) {
	res, err := AblationRemapLatency("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown <= 2 {
		t.Errorf("thermal tuning should slow AlexNet substantially: %.1fx", res.Slowdown)
	}
	if res.ThermalRemapShare <= res.PINRemapShare {
		t.Error("thermal remap share should exceed PIN share")
	}
	if _, err := AblationRemapLatency("unknown-model"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestAccuracyLadderSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	e := Engine(smokeOpt())
	acc44, err := e.Accuracy(TaskMNIST, PrecisionConfig{WBits: 4, ABits: 4})
	if err != nil {
		t.Fatal(err)
	}
	acc11, err := e.Accuracy(TaskMNIST, PrecisionConfig{WBits: 1, ABits: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc44 < 0.5 {
		t.Errorf("[4:4] smoke accuracy %.2f too low to be meaningful", acc44)
	}
	if acc11 > acc44+0.05 {
		t.Errorf("binary [1:1] (%.2f) should not beat [4:4] (%.2f)", acc11, acc44)
	}
	// Memoisation: the same query must be instant and identical.
	again, err := e.Accuracy(TaskMNIST, PrecisionConfig{WBits: 4, ABits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if again != acc44 {
		t.Error("memoised accuracy changed")
	}
}

func TestPhotonicAccuracySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	e := Engine(smokeOpt())
	cfg := PrecisionConfig{WBits: 4, ABits: 4}
	digital, err := e.Accuracy(TaskMNIST, cfg)
	if err != nil {
		t.Fatal(err)
	}
	photonic, err := e.Accuracy(TaskMNIST, PrecisionConfig{WBits: 4, ABits: 4, Photonic: true})
	if err != nil {
		t.Fatal(err)
	}
	if photonic < digital-0.25 {
		t.Errorf("photonic %.2f far below digital %.2f", photonic, digital)
	}
}
