package experiments

import (
	"fmt"
	"strings"

	"lightator/internal/arch"
	"lightator/internal/baselines"
	"lightator/internal/energy"
	"lightator/internal/models"
	"lightator/internal/report"
)

// Fig8Result is the layer-wise LeNet power breakdown at three precisions
// (paper Fig. 8).
type Fig8Result struct {
	Configs []string
	Reports []*arch.Report
	// AvgPowerEfficiency is AvgPower([4:4]) / AvgPower([2:4]) — the
	// paper quotes ~2.4x average gain from weight bit-width reduction.
	AvgPowerEfficiency float64
}

// Fig8 regenerates the Fig. 8 experiment.
func Fig8() (*Fig8Result, error) {
	layers := models.LeNet()
	p := energy.Default()
	res := &Fig8Result{}
	var first, last *arch.Report
	for _, ps := range []arch.PrecisionSchedule{arch.Uniform(4, 4), arch.Uniform(3, 4), arch.Uniform(2, 4)} {
		rep, err := arch.Simulate("lenet", layers, ps, p)
		if err != nil {
			return nil, err
		}
		res.Configs = append(res.Configs, ps.Name())
		res.Reports = append(res.Reports, rep)
		if first == nil {
			first = rep
		}
		last = rep
	}
	res.AvgPowerEfficiency = first.AvgPower / last.AvgPower
	return res, nil
}

// Render prints the stacked per-layer breakdown as a table per config.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — LeNet layer-wise power breakdown (W)\n")
	for i, rep := range r.Reports {
		tb := report.Table{
			Title:   fmt.Sprintf("\nConfiguration %s (max %.3g W)", r.Configs[i], rep.MaxPower),
			Headers: []string{"Layer", "Kind", "ADCs", "DACs", "DMVA", "TUN", "BPD", "Misc", "Total"},
		}
		for _, l := range rep.Layers {
			tb.AddRow(l.Name, l.Kind.String(),
				report.FormatSI(l.Power.ADCs, 2)+"W",
				report.FormatSI(l.Power.DACs, 2)+"W",
				report.FormatSI(l.Power.DMVA, 2)+"W",
				report.FormatSI(l.Power.TUN, 2)+"W",
				report.FormatSI(l.Power.BPD, 2)+"W",
				report.FormatSI(l.Power.Misc, 2)+"W",
				report.FormatSI(l.Power.Total(), 2)+"W",
			)
		}
		b.WriteString(tb.Render())
	}
	fmt.Fprintf(&b, "\nAverage power efficiency [4:4] -> [2:4]: %.2fx (paper: ~2.4x)\n", r.AvgPowerEfficiency)
	return b.String()
}

// Fig9Result is the VGG9 [3:4] breakdown plus the CA ablation and the L8
// pie shares (paper Fig. 9).
type Fig9Result struct {
	Report *arch.Report
	// L1Reduction is the fractional first-layer power saving from the CA
	// (paper: 42.2%).
	L1Reduction float64
	// L8Share is the Fig. 9 pie: component fractions of layer L8.
	L8Share map[string]float64
	// DACShareMin is the minimum DAC share across weight layers (paper:
	// "consistently across all layers, DACs contribute more than 85%").
	DACShareMin float64
}

// Fig9 regenerates the Fig. 9 experiment.
func Fig9() (*Fig9Result, error) {
	p := energy.Default()
	withCA, err := arch.Simulate("vgg9-ca", models.VGG9WithCA(10), arch.Uniform(3, 4), p)
	if err != nil {
		return nil, err
	}
	plain, err := arch.Simulate("vgg9", models.VGG9(10), arch.Uniform(3, 4), p)
	if err != nil {
		return nil, err
	}
	l1CA, err := withCA.LayerByName("L1.conv1")
	if err != nil {
		return nil, err
	}
	l1, err := plain.LayerByName("L1.conv1")
	if err != nil {
		return nil, err
	}
	l8, err := withCA.LayerByName("L8.conv6")
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Report:      withCA,
		L1Reduction: 1 - l1CA.Power.Total()/l1.Power.Total(),
		L8Share:     l8.Power.Share(),
		DACShareMin: 1,
	}
	for _, l := range withCA.Layers {
		if l.Power.DACs > 0 {
			if sh := l.Power.Share()["DACs"]; sh < res.DACShareMin {
				res.DACShareMin = sh
			}
		}
	}
	return res, nil
}

// Render prints the Fig. 9 tables and pie.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — VGG9 [3:4] layer-wise power breakdown (W), CA enabled\n\n")
	tb := report.Table{Headers: []string{"Layer", "Kind", "ADCs", "DACs", "DMVA", "TUN", "BPD", "Misc", "Total"}}
	for _, l := range r.Report.Layers {
		tb.AddRow(l.Name, l.Kind.String(),
			report.FormatSI(l.Power.ADCs, 2)+"W",
			report.FormatSI(l.Power.DACs, 2)+"W",
			report.FormatSI(l.Power.DMVA, 2)+"W",
			report.FormatSI(l.Power.TUN, 2)+"W",
			report.FormatSI(l.Power.BPD, 2)+"W",
			report.FormatSI(l.Power.Misc, 2)+"W",
			report.FormatSI(l.Power.Total(), 2)+"W",
		)
	}
	b.WriteString(tb.Render())
	fmt.Fprintf(&b, "\nCA first-layer power reduction: %.1f%% (paper: 42.2%%)\n", r.L1Reduction*100)
	fmt.Fprintf(&b, "L8 power pie: DACs %.0f%%, TUN %.0f%%, Misc %.0f%%, DMVA %.1f%%, ADCs %.2f%%, BPD %.2f%% (paper: 85/9/4/1/<1/<1)\n",
		r.L8Share["DACs"]*100, r.L8Share["TUN"]*100, r.L8Share["Misc"]*100,
		r.L8Share["DMVA"]*100, r.L8Share["ADCs"]*100, r.L8Share["BPD"]*100)
	fmt.Fprintf(&b, "Minimum DAC share across weight layers: %.1f%% (paper: >85%%)\n", r.DACShareMin*100)
	return b.String()
}

// Fig10Entry is one bar pair of Fig. 10.
type Fig10Entry struct {
	Design  string
	AlexNet float64 // seconds
	VGG16   float64 // seconds (YodaNN substitutes VGG13, as in the paper)
}

// Fig10Result is the execution-time comparison (paper Fig. 10).
type Fig10Result struct {
	Entries []Fig10Entry
	// Speedups over each electronic design on AlexNet (paper: 10.7x
	// Eyeriss, 20.4x YodaNN, 18.1x AppCip, 8.8x ENVISION).
	AlexNetSpeedup map[string]float64
}

// Fig10 regenerates the execution-time comparison.
func Fig10() (*Fig10Result, error) {
	p := energy.Default()
	alex, err := arch.Simulate("alexnet", models.AlexNet(), arch.Uniform(4, 4), p)
	if err != nil {
		return nil, err
	}
	vgg, err := arch.Simulate("vgg16", models.VGG16(), arch.Uniform(4, 4), p)
	if err != nil {
		return nil, err
	}
	alexMACs := models.TotalMACs(models.AlexNet())
	vggMACs := models.TotalMACs(models.VGG16())
	vgg13MACs := models.TotalMACs(models.VGG13())

	res := &Fig10Result{AlexNetSpeedup: map[string]float64{}}
	for _, d := range baselines.AllElectronic() {
		at, err := d.ExecTime(alexMACs)
		if err != nil {
			return nil, err
		}
		vm := vggMACs
		if d.Name == "YodaNN" {
			vm = vgg13MACs // paper's figure note: VGG13 substitution
		}
		vt, err := d.ExecTime(vm)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, Fig10Entry{Design: d.Name, AlexNet: at, VGG16: vt})
		res.AlexNetSpeedup[d.Name] = at / alex.FrameLatency
	}
	res.Entries = append(res.Entries, Fig10Entry{Design: "Lightator", AlexNet: alex.FrameLatency, VGG16: vgg.FrameLatency})
	return res, nil
}

// Render draws the log-scale execution-time chart.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — log-scaled execution time (ms)\n\n")
	alex := report.BarChart{Title: "AlexNet", Unit: "ms", Log: true}
	vgg := report.BarChart{Title: "VGG16 (YodaNN: VGG13)", Unit: "ms", Log: true}
	for _, e := range r.Entries {
		alex.Add(e.Design, e.AlexNet*1e3)
		vgg.Add(e.Design, e.VGG16*1e3)
	}
	b.WriteString(alex.Render())
	b.WriteByte('\n')
	b.WriteString(vgg.Render())
	b.WriteString("\nAlexNet speedups over electronic designs (paper: Eyeriss 10.7x, YodaNN 20.4x, AppCip 18.1x, ENVISION 8.8x):\n")
	for _, name := range []string{"Eyeriss", "YodaNN", "AppCip", "ENVISION"} {
		fmt.Fprintf(&b, "  %-9s %.1fx\n", name, r.AlexNetSpeedup[name])
	}
	return b.String()
}
