package experiments

import (
	"fmt"
	"math"
	"strings"

	"lightator/internal/arch"
	"lightator/internal/energy"
	"lightator/internal/models"
)

// Claim is one quantitative claim from the paper, re-measured from the
// architecture simulator on every run. Claims are training-free (no
// accuracy rows) so the whole set regenerates in milliseconds — cheap
// enough for CI to verify on every push.
type Claim struct {
	// Name identifies the claim, e.g. "table1/max-power/[3:4]".
	Name string `json:"name"`
	// Unit labels Measured and Paper (W, KFPS/W, fraction, x).
	Unit string `json:"unit"`
	// Measured is this build's simulated value.
	Measured float64 `json:"measured"`
	// Paper is the value the paper reports.
	Paper float64 `json:"paper"`
	// RelTol is the accepted |Measured-Paper|/|Paper| drift for two-sided
	// claims. The bounds encode the calibrated model's current distance
	// from the paper, with headroom: a regression that moves a component
	// model further from the paper fails CI, faithful refactors pass.
	RelTol float64 `json:"rel_tol"`
	// MinOnly marks one-sided claims ("measured must be at least the
	// paper's floor", e.g. the >85% DAC share); RelTol is ignored.
	MinOnly bool `json:"min_only,omitempty"`
}

// Drift is the signed relative deviation from the paper value.
func (c Claim) Drift() float64 {
	if c.Paper == 0 {
		return 0
	}
	return (c.Measured - c.Paper) / math.Abs(c.Paper)
}

// OK reports whether the measured value honours the claim.
func (c Claim) OK() bool {
	if c.MinOnly {
		return c.Measured >= c.Paper
	}
	return math.Abs(c.Drift()) <= c.RelTol
}

// ClaimsResult is the continuously-verified paper-claims set.
type ClaimsResult struct {
	Claims []Claim `json:"claims"`
}

// Failing returns the claims whose measured values drifted out of
// tolerance.
func (r *ClaimsResult) Failing() []Claim {
	var out []Claim
	for _, c := range r.Claims {
		if !c.OK() {
			out = append(out, c)
		}
	}
	return out
}

// Get returns a claim by name.
func (r *ClaimsResult) Get(name string) (Claim, bool) {
	for _, c := range r.Claims {
		if c.Name == name {
			return c, true
		}
	}
	return Claim{}, false
}

// PaperClaims re-measures the paper's headline quantitative claims from
// the architecture simulator: the Table 1 power ladder and efficiency
// column for every Lightator precision schedule (VGG9+CA max power,
// LeNet KFPS/W — the paper's own workload pairing), the Fig. 8 average
// power-efficiency gain, and the Fig. 9 CA first-layer reduction and
// DAC-dominance pie. Everything here is analytical — no training — so
// the set is deterministic and fast.
func PaperClaims() (*ClaimsResult, error) {
	p := energy.Default()
	res := &ClaimsResult{}

	// Table 1 ladder. Two-sided tolerances per schedule: the calibrated
	// component model lands within ~8% of the paper's power column at
	// uniform precision; the throughput column (which divides through the
	// simulator's more conservative frame latency) sits further out. The
	// MX schedules share the uniform rows' max power because the
	// max-power layer is not the remapped first layer, so their power
	// claims are pinned on KFPS/W, where the first layer does move the
	// needle.
	powerTol := map[string]float64{
		"[4:4]": 0.12, "[3:4]": 0.08, "[2:4]": 0.05,
	}
	kfpsTol := map[string]float64{
		"[4:4]": 0.40, "[3:4]": 0.40, "[2:4]": 0.40,
		"[4:4][3:4]": 0.20, "[4:4][2:4]": 0.25,
	}
	for _, c := range lightatorConfigs {
		name := c.ps.Name()
		vgg, err := arch.Simulate("vgg9-ca", models.VGG9WithCA(10), c.ps, p)
		if err != nil {
			return nil, err
		}
		lenet, err := arch.Simulate("lenet", models.LeNet(), c.ps, p)
		if err != nil {
			return nil, err
		}
		if tol, ok := powerTol[name]; ok {
			res.Claims = append(res.Claims, Claim{
				Name: "table1/max-power/" + name, Unit: "W",
				Measured: vgg.MaxPower, Paper: c.paper.PaperPowerW, RelTol: tol,
			})
		}
		if tol, ok := kfpsTol[name]; ok {
			res.Claims = append(res.Claims, Claim{
				Name: "table1/kfps-per-w/" + name, Unit: "KFPS/W",
				Measured: lenet.KFPSPerW, Paper: c.paper.PaperKFPSPerW, RelTol: tol,
			})
		}
	}

	// Fig. 8: average power efficiency of the [4:4] -> [2:4] bit
	// reduction (paper: ~2.4x).
	f8, err := Fig8()
	if err != nil {
		return nil, err
	}
	res.Claims = append(res.Claims, Claim{
		Name: "fig8/avg-power-efficiency", Unit: "x",
		Measured: f8.AvgPowerEfficiency, Paper: 2.4, RelTol: 0.5,
	})

	// Fig. 9: CA first-layer reduction (paper: 42.2%) and the L8 pie's
	// DAC dominance (paper: DACs >85% — one-sided floor).
	f9, err := Fig9()
	if err != nil {
		return nil, err
	}
	res.Claims = append(res.Claims,
		Claim{
			Name: "fig9/ca-l1-reduction", Unit: "fraction",
			Measured: f9.L1Reduction, Paper: 0.422, RelTol: 0.5,
		},
		Claim{
			Name: "fig9/l8-dac-share", Unit: "fraction",
			Measured: f9.L8Share["DACs"], Paper: 0.85, MinOnly: true,
		},
	)
	return res, nil
}

// Render prints the claims as a markdown table (the CI artifact format).
func (r *ClaimsResult) Render() string {
	var b strings.Builder
	b.WriteString("# Paper claims — continuously verified\n\n")
	b.WriteString("Measured values regenerate from the architecture simulator on every run\n")
	b.WriteString("(training-free); tolerances encode the calibrated model's accepted distance\n")
	b.WriteString("from the paper. A failing row means a change moved the component model\n")
	b.WriteString("further from the paper's reported numbers.\n\n")
	b.WriteString("| claim | measured | paper | drift | tolerance | status |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, c := range r.Claims {
		tol := fmt.Sprintf("±%.0f%%", c.RelTol*100)
		if c.MinOnly {
			tol = fmt.Sprintf("≥%.4g", c.Paper)
		}
		status := "ok"
		if !c.OK() {
			status = "**DRIFT**"
		}
		fmt.Fprintf(&b, "| %s | %.4g %s | %.4g %s | %+.1f%% | %s | %s |\n",
			c.Name, c.Measured, c.Unit, c.Paper, c.Unit, c.Drift()*100, tol, status)
	}
	if failing := r.Failing(); len(failing) > 0 {
		fmt.Fprintf(&b, "\n%d claim(s) out of tolerance.\n", len(failing))
	} else {
		fmt.Fprintf(&b, "\nAll %d claims within tolerance.\n", len(r.Claims))
	}
	return b.String()
}
