package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestPaperClaimsAllPass is the drift gate: every continuously-verified
// claim must hold on every build, so a calibration regression fails CI
// here (and in the bench job's `lightator-bench -paper` artifact).
func TestPaperClaimsAllPass(t *testing.T) {
	res, err := PaperClaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Claims) < 10 {
		t.Fatalf("only %d claims, want the full Table1+Fig8+Fig9 set", len(res.Claims))
	}
	for _, c := range res.Failing() {
		t.Errorf("claim %s drifted: measured %.4g %s vs paper %.4g %s (%+.1f%%, tol ±%.0f%%)",
			c.Name, c.Measured, c.Unit, c.Paper, c.Unit, c.Drift()*100, c.RelTol*100)
	}
}

// TestPaperClaimsPowerLadder pins the paper's 5.28 / 2.71 / 1.46 W
// VGG9+CA max-power ladder at [4:4]/[3:4]/[2:4] explicitly.
func TestPaperClaimsPowerLadder(t *testing.T) {
	res, err := PaperClaims()
	if err != nil {
		t.Fatal(err)
	}
	ladder := []struct {
		name  string
		paper float64
	}{
		{"table1/max-power/[4:4]", 5.28},
		{"table1/max-power/[3:4]", 2.71},
		{"table1/max-power/[2:4]", 1.46},
	}
	prev := math.Inf(1)
	for _, step := range ladder {
		c, ok := res.Get(step.name)
		if !ok {
			t.Fatalf("missing claim %s", step.name)
		}
		if c.Paper != step.paper {
			t.Errorf("%s pins paper value %.4g, want %.4g", step.name, c.Paper, step.paper)
		}
		if !c.OK() {
			t.Errorf("%s out of tolerance: measured %.4g W vs paper %.4g W", step.name, c.Measured, c.Paper)
		}
		if c.Measured >= prev {
			t.Errorf("%s breaks the descending power ladder: %.4g >= %.4g", step.name, c.Measured, prev)
		}
		prev = c.Measured
	}
}

// TestPaperClaimsDACShare pins the paper's ">85% DAC share" claim as a
// one-sided floor on the Fig. 9 L8 pie.
func TestPaperClaimsDACShare(t *testing.T) {
	res, err := PaperClaims()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.Get("fig9/l8-dac-share")
	if !ok {
		t.Fatal("missing fig9/l8-dac-share")
	}
	if !c.MinOnly {
		t.Error("DAC share must be a one-sided floor claim")
	}
	if c.Measured < 0.85 {
		t.Errorf("L8 DAC share %.3f below the paper's 0.85 floor", c.Measured)
	}
}

// TestPaperClaimsEfficiencyLadder checks KFPS/W rises as weight bits
// shrink, matching the paper's efficiency column ordering.
func TestPaperClaimsEfficiencyLadder(t *testing.T) {
	res, err := PaperClaims()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"table1/kfps-per-w/[4:4]",
		"table1/kfps-per-w/[3:4]",
		"table1/kfps-per-w/[2:4]",
	}
	prev := 0.0
	for _, name := range names {
		c, ok := res.Get(name)
		if !ok {
			t.Fatalf("missing claim %s", name)
		}
		if c.Measured <= prev {
			t.Errorf("%s breaks the ascending efficiency ladder: %.4g <= %.4g", name, c.Measured, prev)
		}
		prev = c.Measured
	}
}

func TestPaperClaimsRender(t *testing.T) {
	res, err := PaperClaims()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{
		"| claim |", "table1/max-power/[3:4]", "fig8/avg-power-efficiency",
		"fig9/ca-l1-reduction", "within tolerance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if strings.Contains(out, "DRIFT") {
		t.Error("render reports drift on a passing set")
	}
}

func TestClaimDriftAndOK(t *testing.T) {
	c := Claim{Measured: 1.1, Paper: 1.0, RelTol: 0.15}
	if math.Abs(c.Drift()-0.1) > 1e-12 || !c.OK() {
		t.Errorf("drift %.3f ok=%v, want 0.1 true", c.Drift(), c.OK())
	}
	c.RelTol = 0.05
	if c.OK() {
		t.Error("claim beyond tolerance must fail")
	}
	floor := Claim{Measured: 0.84, Paper: 0.85, MinOnly: true}
	if floor.OK() {
		t.Error("one-sided floor claim below the floor must fail")
	}
	floor.Measured = 0.87
	if !floor.OK() {
		t.Error("one-sided floor claim above the floor must pass")
	}
}
