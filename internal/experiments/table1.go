package experiments

import (
	"fmt"
	"strings"

	"lightator/internal/arch"
	"lightator/internal/baselines"
	"lightator/internal/energy"
	"lightator/internal/models"
	"lightator/internal/report"
)

// Table1Row is one line of the Table 1 reproduction. Accuracy fields are
// fractions in [0,1]; negative values render as "-" (not evaluated, where
// the paper also reports none).
type Table1Row struct {
	Label       string
	ProcessNode string
	MaxPowerW   float64 // <= 0 renders "-"
	KFPSPerW    float64 // <= 0 renders "-"
	AccMNIST    float64
	AccCIFAR10  float64
	AccCIFAR100 float64
	// Paper columns for side-by-side comparison (negative = "-").
	PaperPowerW, PaperKFPSPerW                       float64
	PaperAccMNIST, PaperAccCIFAR10, PaperAccCIFAR100 float64
}

// Table1Result is the full comparison table.
type Table1Result struct {
	Rows []Table1Row
	// PowerReductionGPU / HolyLight / CrossLight are the paper's
	// observation (2) ratios, measured against Lightator [3:4].
	PowerReductionGPU, PowerReductionHolyLight, PowerReductionCrossLight float64
}

// lightatorConfigs are Table 1's Lightator rows.
var lightatorConfigs = []struct {
	ps    arch.PrecisionSchedule
	cfg   PrecisionConfig
	paper Table1Row
}{
	{arch.Uniform(4, 4), PrecisionConfig{WBits: 4, ABits: 4, Photonic: true},
		Table1Row{PaperPowerW: 5.28, PaperKFPSPerW: 61.61, PaperAccMNIST: 98.12, PaperAccCIFAR10: 88.87, PaperAccCIFAR100: 64.22}},
	{arch.Uniform(3, 4), PrecisionConfig{WBits: 3, ABits: 4, Photonic: true},
		Table1Row{PaperPowerW: 2.71, PaperKFPSPerW: 117.65, PaperAccMNIST: 98.05, PaperAccCIFAR10: 86.3, PaperAccCIFAR100: 61.04}},
	{arch.Uniform(2, 4), PrecisionConfig{WBits: 2, ABits: 4, Photonic: true},
		Table1Row{PaperPowerW: 1.46, PaperKFPSPerW: 188.24, PaperAccMNIST: 93.95, PaperAccCIFAR10: 70.55, PaperAccCIFAR100: 41.4}},
	{arch.MX(4, 3, 4), PrecisionConfig{WBits: 3, ABits: 4, MXFirstWBits: 4, Photonic: true},
		Table1Row{PaperPowerW: 3.64, PaperKFPSPerW: 84.4, PaperAccMNIST: 97.85, PaperAccCIFAR10: 85.65, PaperAccCIFAR100: 63.37}},
	{arch.MX(4, 2, 4), PrecisionConfig{WBits: 2, ABits: 4, MXFirstWBits: 4, Photonic: true},
		Table1Row{PaperPowerW: 1.97, PaperKFPSPerW: 126.6, PaperAccMNIST: 94.8, PaperAccCIFAR10: 78.87, PaperAccCIFAR100: 51.29}},
}

// opticalBaselineRows are Table 1's competitor rows: which accuracies the
// paper reports decides which we evaluate.
var opticalBaselineRows = []struct {
	design                   baselines.OpticalDesign
	cfg                      PrecisionConfig
	paper                    Table1Row
	evalM, evalC10, evalC100 bool
}{
	{baselines.LightBulb(), PrecisionConfig{WBits: 1, ABits: 1},
		Table1Row{PaperPowerW: 68.3, PaperKFPSPerW: 57.75, PaperAccMNIST: 96.7, PaperAccCIFAR10: -1, PaperAccCIFAR100: -1},
		true, false, false},
	{baselines.HolyLight(), PrecisionConfig{WBits: 4, ABits: 4},
		Table1Row{PaperPowerW: 66.9, PaperKFPSPerW: 3.3, PaperAccMNIST: 98.9, PaperAccCIFAR10: 88.5, PaperAccCIFAR100: -1},
		true, true, false},
	{baselines.HQNNA(), PrecisionConfig{WBits: 4, ABits: 8},
		Table1Row{PaperPowerW: -1, PaperKFPSPerW: 34.6, PaperAccMNIST: -1, PaperAccCIFAR10: 89.68, PaperAccCIFAR100: 61.95},
		false, true, true},
	{baselines.Robin(), PrecisionConfig{WBits: 1, ABits: 4},
		Table1Row{PaperPowerW: 106, PaperKFPSPerW: 46.5, PaperAccMNIST: -1, PaperAccCIFAR10: 62.5, PaperAccCIFAR100: 45.6},
		false, true, true},
	{baselines.CrossLight(), PrecisionConfig{WBits: 4, ABits: 4},
		Table1Row{PaperPowerW: 84, PaperKFPSPerW: 52.59, PaperAccMNIST: 92.6, PaperAccCIFAR10: 78.85, PaperAccCIFAR100: -1},
		true, true, false},
}

// Table1 regenerates the optical-accelerator comparison. Accuracies come
// from the shared train+QAT pipeline (engine memoises them); power and
// throughput come from the architecture simulator for Lightator rows and
// the calibrated structural models for competitors.
func Table1(opt Options) (*Table1Result, error) {
	e := Engine(opt)
	res := &Table1Result{}
	lenetMACs := models.TotalMACs(models.LeNet())
	p := energy.Default()

	// GPU float baseline row.
	gpu := baselines.RTX3060Ti()
	gpuRow := Table1Row{
		Label: "baseline [32:32]", ProcessNode: "8",
		MaxPowerW:   gpu.BoardPower,
		KFPSPerW:    -1,
		PaperPowerW: 200, PaperKFPSPerW: -1,
		PaperAccMNIST: 98.53, PaperAccCIFAR10: 90.46, PaperAccCIFAR100: 67.8,
	}
	var err error
	float := PrecisionConfig{Float: true}
	if gpuRow.AccMNIST, err = e.Accuracy(TaskMNIST, float); err != nil {
		return nil, err
	}
	if gpuRow.AccCIFAR10, err = e.Accuracy(TaskCIFAR10, float); err != nil {
		return nil, err
	}
	if gpuRow.AccCIFAR100, err = e.Accuracy(TaskCIFAR100, float); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, gpuRow)

	// Competitor optical designs.
	for _, c := range opticalBaselineRows {
		row := c.paper
		row.Label = strings.TrimSpace(c.design.Label())
		if c.design.ProcessNode > 0 {
			row.ProcessNode = fmt.Sprintf("%d", c.design.ProcessNode)
		} else {
			row.ProcessNode = "-"
		}
		if c.design.PowerPublished {
			row.MaxPowerW = c.design.MaxPower()
		} else {
			row.MaxPowerW = -1
		}
		row.KFPSPerW = c.design.KFPSPerW(lenetMACs)
		row.AccMNIST, row.AccCIFAR10, row.AccCIFAR100 = -1, -1, -1
		if c.evalM {
			if row.AccMNIST, err = e.Accuracy(TaskMNIST, c.cfg); err != nil {
				return nil, err
			}
		}
		if c.evalC10 {
			if row.AccCIFAR10, err = e.Accuracy(TaskCIFAR10, c.cfg); err != nil {
				return nil, err
			}
		}
		if c.evalC100 {
			if row.AccCIFAR100, err = e.Accuracy(TaskCIFAR100, c.cfg); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}

	// Lightator rows: simulate power/throughput on the paper's workloads
	// (LeNet for throughput normalisation, VGG9+CA for max power).
	var lightator34Power float64
	for _, c := range lightatorConfigs {
		vggRep, err := arch.Simulate("vgg9-ca", models.VGG9WithCA(10), c.ps, p)
		if err != nil {
			return nil, err
		}
		lenetRep, err := arch.Simulate("lenet", models.LeNet(), c.ps, p)
		if err != nil {
			return nil, err
		}
		row := c.paper
		row.Label = "Lightator " + c.ps.Name()
		row.ProcessNode = "45"
		row.MaxPowerW = vggRep.MaxPower
		row.KFPSPerW = lenetRep.KFPSPerW
		if c.ps.Name() == "[3:4]" {
			lightator34Power = vggRep.MaxPower
		}
		if row.AccMNIST, err = e.Accuracy(TaskMNIST, c.cfg); err != nil {
			return nil, err
		}
		if row.AccCIFAR10, err = e.Accuracy(TaskCIFAR10, c.cfg); err != nil {
			return nil, err
		}
		if row.AccCIFAR100, err = e.Accuracy(TaskCIFAR100, c.cfg); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	if lightator34Power > 0 {
		res.PowerReductionGPU = gpu.BoardPower / lightator34Power
		res.PowerReductionHolyLight = baselines.HolyLight().MaxPower() / lightator34Power
		res.PowerReductionCrossLight = baselines.CrossLight().MaxPower() / lightator34Power
	}
	return res, nil
}

func fmtPower(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

func fmtAcc(measured, paper float64) string {
	switch {
	case measured < 0 && paper < 0:
		return "-"
	case measured < 0:
		return fmt.Sprintf("- (%.4g)", paper)
	case paper < 0:
		return fmt.Sprintf("%.1f (-)", measured*100)
	default:
		return fmt.Sprintf("%.1f (%.4g)", measured*100, paper)
	}
}

// Render prints the table with "measured (paper)" cells.
func (r *Table1Result) Render() string {
	tb := report.Table{
		Title: "Table 1 — comparison with optical designs.\n" +
			"Cells are measured (paper). Accuracies are on the synthetic stand-in tasks\n" +
			"(see DESIGN.md §1), so absolute values differ from the paper by construction;\n" +
			"the precision ladder and cross-design ordering are the reproduced shape.",
		Headers: []string{"Design & [W:A]", "Node(nm)", "MaxPower(W)", "KFPS/W", "Acc MNIST", "Acc CIFAR10", "Acc CIFAR100"},
	}
	for _, row := range r.Rows {
		power := fmtPower(row.MaxPowerW)
		if row.PaperPowerW > 0 {
			power += fmt.Sprintf(" (%.4g)", row.PaperPowerW)
		} else if row.MaxPowerW > 0 {
			power += " (-)"
		}
		kfps := fmtPower(row.KFPSPerW)
		if row.PaperKFPSPerW > 0 {
			kfps += fmt.Sprintf(" (%.4g)", row.PaperKFPSPerW)
		} else if row.KFPSPerW > 0 {
			kfps += " (-)"
		}
		tb.AddRow(row.Label, row.ProcessNode, power, kfps,
			fmtAcc(row.AccMNIST, row.PaperAccMNIST),
			fmtAcc(row.AccCIFAR10, row.PaperAccCIFAR10),
			fmtAcc(row.AccCIFAR100, row.PaperAccCIFAR100),
		)
	}
	out := tb.Render()
	out += fmt.Sprintf("\nPower reduction of Lightator [3:4]: %.1fx vs GPU (paper ~73x), %.1fx vs HolyLight (paper 24.68x), %.1fx vs CrossLight (paper 30.9x)\n",
		r.PowerReductionGPU, r.PowerReductionHolyLight, r.PowerReductionCrossLight)
	return out
}
