// Package fault models deterministic hardware fault injection for the
// optical core (docs/FAULTS.md). A Plan is a declarative list of faults —
// stuck or drifting MR coefficients, laser power droop over a row range,
// transient measurement bit-flips, comparator stuck-ats in the ADC-less
// readout — each with an optional activation window. Plans are pure data:
// the consuming layers (internal/oc for coefficient/readout faults,
// internal/pipeline for comparator faults) compile them into injection
// hooks behind a zero-cost no-op default.
//
// Determinism contract: whether a fault is active during a given apply is
// a pure function of the apply's derived seed and the fault's window (a
// SplitMix64 hash, not wall time or call order), so chaos runs are
// reproducible byte-for-byte at any worker count — the same property every
// other seeded path in this repo holds.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Kind names one fault mechanism.
type Kind string

const (
	// StuckCoeff forces one programmed MR coefficient (Target, Row, Col)
	// to Value — the ring no longer responds to tuning (e.g. a heater
	// driver stuck at a rail). Persistent by default.
	StuckCoeff Kind = "stuck_coeff"
	// DriftCoeff offsets one programmed MR coefficient by Value — thermal
	// drift pulling the ring off its programmed level.
	DriftCoeff Kind = "drift_coeff"
	// LaserDroop scales the readout of rows [Row, RowEnd] by (1-Value) —
	// power droop on one laser distribution branch feeding a bank group.
	// Value is the fractional power loss in (0, 1).
	LaserDroop Kind = "laser_droop"
	// BitFlip adds a transient spike of magnitude Value (sign derived from
	// the activation hash) to row Row's measurement — a corrupted readout
	// sample. Meaningful only with a Window; a persistent bit-flip is a
	// stuck measurement.
	BitFlip Kind = "bit_flip"
	// ComparatorStuck pins CRC comparator Col of the sensor readout to a
	// rail: Value > 0 sticks it on (+1 on codes it should not join),
	// Value <= 0 sticks it off (-1 on codes it should join). Applied on
	// the capture path (Target "sensor"), before the optical core — ABFT
	// cannot see it (the corruption is in the input, not the MVM), which
	// is exactly why it is part of the taxonomy. Row/RowEnd, when set,
	// bound the affected sensor rows.
	ComparatorStuck Kind = "comparator_stuck"
)

// TargetSensor is the Target naming the sensor readout (comparator
// faults); optical-core faults target a programmed matrix label such as
// "ca", "kernel:edge", "model:lenet/0", "mvm", or "*" for every labelled
// matrix.
const TargetSensor = "sensor"

// Window gates a fault in time. The fault is active during an apply iff
// hash(applySeed, Salt) mod Period < Duty; the zero Window (Period 0) is
// always active — a persistent fault. Because the predicate hashes the
// apply's derived seed, activation is identical at any worker count.
type Window struct {
	// Period is the modulus of the activation hash; 0 means persistent.
	Period uint32 `json:"period,omitempty"`
	// Duty is how many residues out of Period are active.
	Duty uint32 `json:"duty,omitempty"`
	// Salt decorrelates windows of faults sharing a period.
	Salt uint32 `json:"salt,omitempty"`
}

// Persistent reports whether the window is always active.
func (w Window) Persistent() bool { return w.Period == 0 }

// Active reports whether the window is open for an apply with the given
// derived seed.
func (w Window) Active(seed int64) bool {
	if w.Period == 0 {
		return true
	}
	return uint32(hash64(uint64(seed)^(uint64(w.Salt)+0x9e3779b97f4a7c15))%uint64(w.Period)) < w.Duty
}

// hash64 is the SplitMix64 finalizer — the same mixer oc.DeriveSeed uses,
// so window activation inherits its avalanche quality.
func hash64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Spike returns the signed magnitude of a BitFlip fault for a given apply
// seed: |Value| with a hash-derived sign, so repeated transients do not
// all push the same way.
func Spike(value float64, seed int64, salt uint32) float64 {
	if value < 0 {
		value = -value
	}
	if hash64(uint64(seed)+uint64(salt)*0x2545f4914f6cdd1d)&1 == 1 {
		return -value
	}
	return value
}

// Fault is one injected hardware defect.
type Fault struct {
	Kind   Kind   `json:"kind"`
	Target string `json:"target"`
	// Row is the affected programmed row (or first sensor row for
	// comparator faults over a range).
	Row int `json:"row,omitempty"`
	// RowEnd is the inclusive last row for range kinds (LaserDroop,
	// ComparatorStuck); 0 means Row only.
	RowEnd int `json:"row_end,omitempty"`
	// Col is the affected column (coefficient kinds) or comparator index
	// (ComparatorStuck).
	Col int `json:"col,omitempty"`
	// Value is kind-specific: the forced coefficient (StuckCoeff), the
	// coefficient offset (DriftCoeff), the fractional power loss
	// (LaserDroop), the spike magnitude (BitFlip), or the stuck rail sign
	// (ComparatorStuck).
	Value  float64 `json:"value"`
	Window Window  `json:"window,omitempty"`
}

// LastRow returns the inclusive end of the fault's row range.
func (f Fault) LastRow() int {
	if f.RowEnd > f.Row {
		return f.RowEnd
	}
	return f.Row
}

// Matches reports whether the fault targets a matrix with the given
// label. The sensor target never matches a matrix; "*" matches every
// labelled matrix.
func (f Fault) Matches(label string) bool {
	if label == "" || f.Target == TargetSensor {
		return false
	}
	return f.Target == "*" || f.Target == label
}

// validate checks one fault's fields.
func (f Fault) validate(i int) error {
	switch f.Kind {
	case StuckCoeff:
		if f.Value < -1 || f.Value > 1 {
			return fmt.Errorf("fault %d: stuck_coeff value %g outside [-1,1]", i, f.Value)
		}
	case DriftCoeff:
		if f.Value < -2 || f.Value > 2 {
			return fmt.Errorf("fault %d: drift_coeff value %g outside [-2,2]", i, f.Value)
		}
	case LaserDroop:
		if f.Value <= 0 || f.Value >= 1 {
			return fmt.Errorf("fault %d: laser_droop value %g outside (0,1)", i, f.Value)
		}
	case BitFlip:
		if f.Value == 0 {
			return fmt.Errorf("fault %d: bit_flip needs a non-zero magnitude", i)
		}
	case ComparatorStuck:
		if f.Target != TargetSensor {
			return fmt.Errorf("fault %d: comparator_stuck targets %q, want %q", i, f.Target, TargetSensor)
		}
	default:
		return fmt.Errorf("fault %d: unknown kind %q", i, f.Kind)
	}
	if f.Target == "" {
		return fmt.Errorf("fault %d: empty target", i)
	}
	if f.Row < 0 || f.Col < 0 || f.RowEnd < 0 {
		return fmt.Errorf("fault %d: negative row/col", i)
	}
	if f.RowEnd != 0 && f.RowEnd < f.Row {
		return fmt.Errorf("fault %d: row_end %d before row %d", i, f.RowEnd, f.Row)
	}
	if f.Window.Period != 0 && f.Window.Duty > f.Window.Period {
		return fmt.Errorf("fault %d: duty %d exceeds period %d", i, f.Window.Duty, f.Window.Period)
	}
	return nil
}

// Plan is a named, committed set of faults — the unit chaos suites and
// the -chaos bench flag consume.
type Plan struct {
	Name   string  `json:"name"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault in the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if err := f.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ForLabel returns the plan's faults matching a matrix label (nil when
// none match — the common, zero-cost case).
func (p *Plan) ForLabel(label string) []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.Matches(label) {
			out = append(out, f)
		}
	}
	return out
}

// Sensor returns the plan's comparator faults (Target "sensor").
func (p *Plan) Sensor() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == ComparatorStuck && f.Target == TargetSensor {
			out = append(out, f)
		}
	}
	return out
}

// ParsePlan decodes and validates a JSON plan. Unknown fields are
// rejected so committed chaos plans cannot silently rot.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := strictUnmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return &p, nil
}

// Encode renders the plan as indented JSON (the committed-plan format).
func (p *Plan) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
