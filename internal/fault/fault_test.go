package fault

import (
	"encoding/json"
	"testing"
)

func validPlan() *Plan {
	return &Plan{
		Name: "unit",
		Faults: []Fault{
			{Kind: StuckCoeff, Target: "ca", Row: 0, Col: 2, Value: 0.75},
			{Kind: DriftCoeff, Target: "kernel:edge", Row: 1, Col: 0, Value: 0.05,
				Window: Window{Period: 8, Duty: 2, Salt: 3}},
			{Kind: LaserDroop, Target: "*", Row: 0, RowEnd: 3, Value: 0.1},
			{Kind: BitFlip, Target: "mvm", Row: 2, Value: 0.5,
				Window: Window{Period: 16, Duty: 1}},
			{Kind: ComparatorStuck, Target: TargetSensor, Col: 7, Value: 1,
				Window: Window{Period: 4, Duty: 4}},
		},
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := validPlan()
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	a, _ := json.Marshal(p)
	b, _ := json.Marshal(q)
	if string(a) != string(b) {
		t.Fatalf("round trip drift:\n%s\n%s", a, b)
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","faults":[],"bogus":1}`,
		"unknown kind":  `{"faults":[{"kind":"melt","target":"ca","value":1}]}`,
		"empty target":  `{"faults":[{"kind":"drift_coeff","target":"","value":0.1}]}`,
		"stuck range":   `{"faults":[{"kind":"stuck_coeff","target":"ca","value":1.5}]}`,
		"droop range":   `{"faults":[{"kind":"laser_droop","target":"ca","value":1}]}`,
		"zero flip":     `{"faults":[{"kind":"bit_flip","target":"ca","value":0}]}`,
		"cmp target":    `{"faults":[{"kind":"comparator_stuck","target":"ca","value":1}]}`,
		"neg row":       `{"faults":[{"kind":"drift_coeff","target":"ca","row":-1,"value":0.1}]}`,
		"bad range":     `{"faults":[{"kind":"laser_droop","target":"ca","row":4,"row_end":2,"value":0.1}]}`,
		"duty overflow": `{"faults":[{"kind":"drift_coeff","target":"ca","value":0.1,"window":{"period":4,"duty":5}}]}`,
	}
	for name, body := range cases {
		if _, err := ParsePlan([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestWindowDeterminismAndDuty(t *testing.T) {
	w := Window{Period: 8, Duty: 2, Salt: 5}
	active := 0
	for seed := int64(0); seed < 8000; seed++ {
		a := w.Active(seed)
		if a != w.Active(seed) {
			t.Fatalf("non-deterministic at seed %d", seed)
		}
		if a {
			active++
		}
	}
	// Duty 2/8 => ~25% open; the hash should land well within 3x bounds.
	if active < 1000 || active > 4000 {
		t.Fatalf("duty 2/8 opened %d/8000 windows", active)
	}
	if !(Window{}).Active(42) || !(Window{}).Persistent() {
		t.Fatal("zero window must be persistent")
	}
	if (Window{Period: 8, Duty: 0}).Active(42) {
		t.Fatal("zero duty must never open")
	}
}

func TestMatchesAndSelectors(t *testing.T) {
	p := validPlan()
	if got := len(p.ForLabel("ca")); got != 2 { // ca + "*"
		t.Fatalf("ForLabel(ca) = %d faults, want 2", got)
	}
	if got := len(p.ForLabel("unrelated")); got != 1 { // "*" only
		t.Fatalf("ForLabel(unrelated) = %d faults, want 1", got)
	}
	if p.ForLabel("") != nil {
		t.Fatal("empty label must match nothing")
	}
	if got := len(p.Sensor()); got != 1 {
		t.Fatalf("Sensor() = %d faults, want 1", got)
	}
	var nilPlan *Plan
	if nilPlan.ForLabel("ca") != nil || nilPlan.Sensor() != nil || nilPlan.Validate() != nil {
		t.Fatal("nil plan must be a quiet no-op")
	}
}

func TestSpikeSignBalance(t *testing.T) {
	pos := 0
	for seed := int64(0); seed < 1000; seed++ {
		v := Spike(0.5, seed, 9)
		if v != 0.5 && v != -0.5 {
			t.Fatalf("spike magnitude drifted: %g", v)
		}
		if v > 0 {
			pos++
		}
	}
	if pos < 300 || pos > 700 {
		t.Fatalf("spike sign imbalance: %d/1000 positive", pos)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Component("ca")
	if h != r.Component("ca") {
		t.Fatal("Component must be stable per label")
	}
	h.Checks.Add(3)
	h.Detections.Add(1)
	if r.Degraded() {
		t.Fatal("detections alone are not degradation")
	}
	h.RetiredRows.Add(1)
	r.Component("mvm").Unrecovered.Add(2)
	if !r.Degraded() {
		t.Fatal("retired rows must degrade")
	}
	failing := r.Failing()
	if len(failing) != 2 || failing[0] != "ca" || failing[1] != "mvm" {
		t.Fatalf("Failing() = %v", failing)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Label != "ca" || snap[0].Checks != 3 || !snap[0].Degraded {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// FuzzFaultPlan fuzzes the plan codec: any accepted input must re-encode
// and re-parse to an equivalent plan (round-trip stability), and Validate
// must hold on the reparse — the same contract the wire codecs keep.
func FuzzFaultPlan(f *testing.F) {
	seed, err := validPlan().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"name":"","faults":[]}`))
	f.Add([]byte(`{"faults":[{"kind":"laser_droop","target":"*","row_end":2,"value":0.5}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan failed to encode: %v", err)
		}
		q, err := ParsePlan(enc)
		if err != nil {
			t.Fatalf("re-parse of encoded plan failed: %v\n%s", err, enc)
		}
		enc2, err := q.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("round trip not stable:\n%s\n%s", enc, enc2)
		}
	})
}
