package fault

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Health is the live fault-tolerance state of one component (a labelled
// programmed matrix, or the sensor readout). Counters are cumulative
// since process start; all methods are safe for concurrent use.
type Health struct {
	label string
	// Checks counts ABFT checksum verifications run.
	Checks atomic.Int64
	// Detections counts checks that failed — a fault (or, in noisy
	// fidelity, an out-of-tolerance excursion) was observed.
	Detections atomic.Int64
	// RetrySuccesses counts detections cleared by the bounded-retry tier
	// (transient faults).
	RetrySuccesses atomic.Int64
	// Recalibrations counts rows whose drift was absorbed by
	// recalibration (the defect-calibration tier).
	Recalibrations atomic.Int64
	// RetiredRows counts rows retired to the digital fallback path.
	RetiredRows atomic.Int64
	// Unrecovered counts checks that still failed after the full ladder
	// ran (the response is flagged degraded).
	Unrecovered atomic.Int64
}

// Label names the component.
func (h *Health) Label() string { return h.label }

// Degraded reports whether the component is serving degraded output:
// any row retired to the digital fallback, or any unrecovered detection.
func (h *Health) Degraded() bool {
	return h.RetiredRows.Load() > 0 || h.Unrecovered.Load() > 0
}

// HealthSnapshot is a point-in-time copy of a component's counters.
type HealthSnapshot struct {
	Label          string `json:"label"`
	Checks         int64  `json:"abft_checks"`
	Detections     int64  `json:"detections"`
	RetrySuccesses int64  `json:"retry_successes"`
	Recalibrations int64  `json:"recalibrations"`
	RetiredRows    int64  `json:"retired_rows"`
	Unrecovered    int64  `json:"unrecovered"`
	Degraded       bool   `json:"degraded"`
}

// Registry tracks per-component health for one accelerator core. The
// zero value is unusable; use NewRegistry.
type Registry struct {
	mu      sync.Mutex
	byLabel map[string]*Health
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byLabel: make(map[string]*Health)}
}

// Component returns (creating if needed) the health record for a label.
func (r *Registry) Component(label string) *Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.byLabel[label]
	if !ok {
		h = &Health{label: label}
		r.byLabel[label] = h
	}
	return h
}

// Snapshot copies every component's counters, sorted by label.
func (r *Registry) Snapshot() []HealthSnapshot {
	r.mu.Lock()
	hs := make([]*Health, 0, len(r.byLabel))
	for _, h := range r.byLabel {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	out := make([]HealthSnapshot, 0, len(hs))
	for _, h := range hs {
		out = append(out, HealthSnapshot{
			Label:          h.label,
			Checks:         h.Checks.Load(),
			Detections:     h.Detections.Load(),
			RetrySuccesses: h.RetrySuccesses.Load(),
			Recalibrations: h.Recalibrations.Load(),
			RetiredRows:    h.RetiredRows.Load(),
			Unrecovered:    h.Unrecovered.Load(),
			Degraded:       h.Degraded(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Degraded reports whether any component is degraded.
func (r *Registry) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.byLabel {
		if h.Degraded() {
			return true
		}
	}
	return false
}

// Failing lists the labels of degraded components, sorted.
func (r *Registry) Failing() []string {
	r.mu.Lock()
	var out []string
	for l, h := range r.byLabel {
		if h.Degraded() {
			out = append(out, l)
		}
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
