package infer

import (
	"fmt"
	"sort"
	"sync"

	"lightator/internal/nn"
	"lightator/internal/oc"
)

// Engine is the model registry of one accelerator: compiled networks
// keyed by name, all resident on the same optical core and all expecting
// the same CA measurement-plane geometry. Construction registers the
// built-in demonstration models; user-trained networks are added with
// Register (via the facade's RegisterModel). Reads are lock-free after
// the write completes — the mutex only orders Register against lookups.
type Engine struct {
	core  *oc.Core
	poolN int
	inH   int
	inW   int

	mu     sync.RWMutex
	models map[string]*Model
}

// DefaultClasses is the logit width of the built-in demonstration models.
const DefaultClasses = 10

// NewEngine builds the registry over the core for a CA pooling factor of
// poolN and a compressed plane of inH x inW. seed determines the built-in
// models' deterministic He-initialised weights and calibration, so two
// accelerators with the same Config serve bit-identical inference.
// Built-ins that do not fit the plane geometry are skipped, never an
// error — an accelerator must construct for any valid sensor/CAPool
// combination. Built-ins:
//
//	tiny-mlp  flatten -> dense(16) -> ReLU -> dense(10): any plane size
//	tiny-cnn  conv3x3(6) -> ReLU -> avgpool2 -> dense(10): even plane dims
func NewEngine(core *oc.Core, poolN, inH, inW int, seed int64) (*Engine, error) {
	if core == nil {
		return nil, fmt.Errorf("infer: engine needs an optical core")
	}
	if inH < 1 || inW < 1 {
		return nil, fmt.Errorf("infer: engine needs a non-empty plane, have %dx%d", inH, inW)
	}
	e := &Engine{core: core, poolN: poolN, inH: inH, inW: inW, models: make(map[string]*Model)}

	mlp, err := buildDefault(core, "tiny-mlp",
		"2-layer MLP head over the compressed plane (dense 16 -> ReLU -> dense 10)",
		TinyMLP(inH, inW, DefaultClasses, core.ABits), poolN, inH, inW, oc.DeriveSeed(seed, 1))
	if err != nil {
		return nil, err
	}
	if err := e.Register(mlp); err != nil {
		return nil, err
	}
	if inH%2 == 0 && inW%2 == 0 {
		cnn, err := buildDefault(core, "tiny-cnn",
			"1-conv CNN over the compressed plane (conv3x3 x6 -> ReLU -> avgpool2 -> dense 10)",
			TinyCNN(inH, inW, DefaultClasses, core.ABits), poolN, inH, inW, oc.DeriveSeed(seed, 2))
		if err != nil {
			return nil, err
		}
		if err := e.Register(cnn); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// buildDefault initialises, calibrates, quantization-prepares and
// compiles one built-in network. Calibration planes come from the
// fidelity-true CA path over structured scenes, so ActQuant scales match
// what serving actually sees.
func buildDefault(core *oc.Core, name, desc string, net *nn.Sequential, poolN, inH, inW int, seed int64) (*Model, error) {
	net.InitHe(seed)
	if err := Calibrate(net, core, poolN, inH, inW, 4, oc.DeriveSeed(seed, 1)); err != nil {
		return nil, fmt.Errorf("infer: %s: %w", name, err)
	}
	return Compile(core, name, desc, net, inH, inW)
}

// TinyMLP builds the (uninitialised, uncalibrated) built-in MLP head for
// h x w single-channel planes.
func TinyMLP(h, w, classes, aBits int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", h*w, 16),
		nn.NewReLU("relu1"),
		nn.NewActQuant("aq1", aBits),
		nn.NewDense("fc2", 16, classes),
	)
}

// TinyCNN builds the (uninitialised, uncalibrated) built-in 1-conv CNN
// for h x w single-channel planes; h and w must be even (one 2x2 pool).
func TinyCNN(h, w, classes, aBits int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2D("conv1", 1, 6, 3, 1, 1),
		nn.NewReLU("relu1"),
		nn.NewActQuant("aq1", aBits),
		nn.NewAvgPool2D("pool1", 2),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", 6*(h/2)*(w/2), classes),
	)
}

// Register adds a model under its name; names are unique.
func (e *Engine) Register(m *Model) error {
	if m.inH != e.inH || m.inW != e.inW {
		return fmt.Errorf("infer: model %q compiled for %dx%d planes, engine serves %dx%d", m.name, m.inH, m.inW, e.inH, e.inW)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.models[m.name]; ok {
		return fmt.Errorf("infer: model %q already registered", m.name)
	}
	e.models[m.name] = m
	return nil
}

// Model resolves a registered model by name.
func (e *Engine) Model(name string) (*Model, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m, ok := e.models[name]
	if !ok {
		return nil, fmt.Errorf("infer: unknown model %q (known: %v)", name, e.namesLocked())
	}
	return m, nil
}

// Names lists the registered models, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.namesLocked()
}

func (e *Engine) namesLocked() []string {
	names := make([]string, 0, len(e.models))
	for name := range e.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PoolN reports the CA pooling factor the engine was built for.
func (e *Engine) PoolN() int { return e.poolN }

// InputDims reports the compressed-plane geometry every registered model
// expects.
func (e *Engine) InputDims() (h, w int) { return e.inH, e.inW }
