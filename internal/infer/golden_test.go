package infer

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// -update regenerates the golden files. The committed files pin the
// calibrated optical path (rank-1 per-row defect restore) and the
// fidelity-true CA calibration planes of the built-in models; a passing
// run proves the full compile+apply stack is bit-reproducible, including
// across worker counts.
var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

var goldenFidelities = []struct {
	name string
	fid  oc.Fidelity
}{
	{"ideal", oc.Ideal},
	{"physical", oc.Physical},
	{"physical_noisy", oc.PhysicalNoisy},
}

// goldenPlane builds a deterministic 8x8 compressed plane in [0, 1].
func goldenPlane() *sensor.Image {
	rng := rand.New(rand.NewSource(60221023))
	img := sensor.NewImage(8, 8, 1)
	for i := range img.Pix {
		img.Pix[i] = rng.Float64()
	}
	return img
}

// checkGolden compares got against the golden file, or rewrites it under
// -update. JSON float64 round-trips are exact, so comparison is bit-level.
func checkGolden(t *testing.T, path string, got any) {
	t.Helper()
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatalf("marshal golden: %v", err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (regenerate with -update): %v", path, err)
	}
	var wantJSON, gotJSON any
	if err := json.Unmarshal(want, &wantJSON); err != nil {
		t.Fatalf("parse golden %s: %v", path, err)
	}
	if err := json.Unmarshal(raw, &gotJSON); err != nil {
		t.Fatalf("parse fresh output: %v", err)
	}
	wantNorm, _ := json.Marshal(wantJSON)
	gotNorm, _ := json.Marshal(gotJSON)
	if string(wantNorm) != string(gotNorm) {
		t.Fatalf("output diverged from golden %s", path)
	}
}

// inferGolden pins one model's optical logits and digital reference.
type inferGolden struct {
	Logits    []float64 `json:"logits"`
	Reference []float64 `json:"reference"`
}

// TestGoldenInfer pins the built-in models' Apply logits and Reference
// outputs bit-for-bit in every fidelity, for two worker counts.
func TestGoldenInfer(t *testing.T) {
	plane := goldenPlane()
	for _, tc := range goldenFidelities {
		t.Run(tc.name, func(t *testing.T) {
			core, err := oc.NewCore(4, 4, tc.fid)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(core, 4, 8, 8, 7)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]inferGolden{}
			for _, name := range e.Names() {
				m, err := e.Model(name)
				if err != nil {
					t.Fatal(err)
				}
				logits, err := m.Apply(plane, 0x5eed, 1)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				logits2, err := m.Apply(plane, 0x5eed, 3)
				if err != nil {
					t.Fatalf("%s (3 workers): %v", name, err)
				}
				for i := range logits {
					if logits[i] != logits2[i] {
						t.Fatalf("%s: worker count changed logit %d", name, i)
					}
				}
				ref, err := m.Reference(plane)
				if err != nil {
					t.Fatalf("%s reference: %v", name, err)
				}
				got[name] = inferGolden{Logits: logits, Reference: ref}
			}
			checkGolden(t, filepath.Join("testdata", "golden_infer_"+tc.name+".json"), got)
		})
	}
}
