// Package infer is Lightator's compressed-domain CNN inference engine:
// the layer that executes trained networks (package nn / models) through
// the optical core's MVM path directly over compressively-acquired
// measurement planes — the paper's headline DNN workload, served with the
// same determinism contract as the kernels package.
//
// A Model is a compiled network: every Conv2D and Dense layer becomes a
// matrix programmed once onto the MR banks with the full-scale weight
// normalisation the kernels package established (the matrix is scaled so
// its largest magnitude sits at ±1 and the factor is restored digitally,
// keeping small weights out of the quantization floor), while activation
// functions, pooling, flattening and activation quantizers stay in the
// electronic domain — exactly how the paper partitions the workload
// between the optical core and the electronic block.
//
// Execution model, per layer L of seed s:
//
//   - Conv2D: the input plane is unrolled into k² x InC patches (im2col)
//     streamed one at a time through the programmed matrix via
//     oc.ProgrammedMatrix.ApplySeededInto under DeriveSeed(s, L) — patch
//     j draws its noise from the j-th child stream (the exact seeds a
//     materialized ApplyBatchSeeded walk would assign), so the result is
//     bit-identical for any worker count while the full n·oh·ow patch
//     table is never built (docs/PERF.md).
//
//   - Dense: each batch row is one activation vector through the same
//     seeded streaming path.
//
//   - Everything else runs the layer's own digital Forward in inference
//     mode.
//
// Determinism contract: Apply(plane, seed, workers) is bit-identical for
// any worker count and any interleaving, in every fidelity — the same
// contract as kernels.Kernel.Apply, and the property the serving layer's
// /v1/infer byte-identity rests on. Reference computes the digital
// reference: the same quantized network (bank weight grid, ABits
// activation grid) in exact arithmetic with no analog effects, so the
// optical-vs-reference gap isolates crosstalk and noise — the same split
// kernels.Kernel.Reference draws.
//
// Relationship to nn.PhotonicExec: that executor is the training-eval
// path (per-layer cores for Lightator-MX, shared-noise Apply, accuracy
// experiments); this package is the serving path — seeded determinism,
// full-scale weight normalisation, a quantized digital reference, and a
// registry. The im2col/scale machinery intentionally mirrors it; a fix
// to the layer mapping likely applies to both.
//
// See docs/INFER.md for the layer mapping, the accuracy-vs-compression
// behaviour and the serving integration.
package infer

import (
	"fmt"
	"sync"

	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/sensor"
	"lightator/internal/trace"
)

// stageKind partitions a compiled network between the optical core and
// the electronic block.
type stageKind int

const (
	stageDigital stageKind = iota // electronic: activations, pooling, quantizers
	stageConv                     // optical MVM over im2col patches
	stageDense                    // optical MVM over batch rows
)

// stage is one compiled layer.
type stage struct {
	kind  stageKind
	layer nn.Layer // digital stages only

	// Optical-stage fields: the programmed matrix, the full-scale weight
	// factor sw restored digitally, the calibrated input activation scale
	// sx that normalises inputs into the DMVA's [0,1] drive range, the
	// electronic bias add, and the conv geometry (stageConv only).
	pm   *oc.ProgrammedMatrix
	sw   float64
	sx   float64
	bias []float64
	conv *nn.Conv2D

	// refW is the bank-grid-quantized normalised weight matrix — exactly
	// the levels the MRs are tuned to (core.SnapWeight), as exact
	// floats. Reference runs the quantized MVM digitally with it.
	refW [][]float64
	// core supplies the activation grid Reference mirrors
	// (QuantizeActivation).
	core *oc.Core
}

// Model is a compiled network resident on one optical core. It is
// immutable after Compile and safe for concurrent Apply calls; the
// programmed MR banks are shared, scratch state is per call.
type Model struct {
	name    string
	desc    string
	inH     int
	inW     int
	classes int
	stages  []stage

	// Per-Apply analog op counts, computed once by a shape-only walk on
	// first use (Ops); the sync.Once keeps the Model's concurrent-use
	// guarantee.
	opsOnce sync.Once
	ops     trace.OpCounts
	opsErr  error
}

// Compile programs a trained network onto the core for single-channel
// inH x inW input planes (the CA measurement plane). Every Conv2D and
// Dense layer must have non-zero weights; every ActQuant must be
// calibrated (Scale > 0) so activations can be normalised into the
// optical drive range. The network must end in a [N, classes] logits
// tensor and contain at least one conv/dense layer (otherwise nothing
// would execute optically). The network's weights are captured at
// compile time — training the network afterwards desynchronises the
// programmed matrices from Reference, so compile after training.
func Compile(core *oc.Core, name, desc string, net *nn.Sequential, inH, inW int) (*Model, error) {
	if core == nil {
		return nil, fmt.Errorf("infer: %s: compile needs an optical core", name)
	}
	if name == "" {
		return nil, fmt.Errorf("infer: model name must be non-empty")
	}
	if inH < 1 || inW < 1 {
		return nil, fmt.Errorf("infer: %s: invalid input plane %dx%d", name, inH, inW)
	}
	m := &Model{name: name, desc: desc, inH: inH, inW: inW}
	sx := 1.0 // the compressed plane arrives in the sensor's [0,1] range
	optical := 0
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *nn.Conv2D:
			st, err := buildMVMStage(core, layer.Name(), layer.W.Data, layer.B.Data, sx)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", name, err)
			}
			st.kind = stageConv
			st.conv = layer
			// Every optical stage is a health component: fault plans target
			// it as "model:<model>/<layer>" and its ABFT/recovery counters
			// surface under that label.
			st.pm.SetLabel("model:" + name + "/" + layer.Name())
			m.stages = append(m.stages, st)
			optical++
		case *nn.Dense:
			st, err := buildMVMStage(core, layer.Name(), layer.W.Data, layer.B.Data, sx)
			if err != nil {
				return nil, fmt.Errorf("infer: %s: %w", name, err)
			}
			st.kind = stageDense
			st.pm.SetLabel("model:" + name + "/" + layer.Name())
			m.stages = append(m.stages, st)
			optical++
		case *nn.ActQuant:
			if layer.Scale <= 0 {
				return nil, fmt.Errorf("infer: %s: activation quantizer %s is not calibrated (Scale <= 0); run a calibration forward pass first", name, layer.Name())
			}
			sx = layer.Scale
			m.stages = append(m.stages, stage{kind: stageDigital, layer: l})
		default:
			m.stages = append(m.stages, stage{kind: stageDigital, layer: l})
		}
	}
	if optical == 0 {
		return nil, fmt.Errorf("infer: %s: network has no conv/dense layers to execute optically", name)
	}
	// Dry digital run pins the output contract (logits) and catches
	// geometry mismatches at compile time instead of first request.
	probe, err := net.Forward(nn.NewTensor(1, 1, inH, inW), false)
	if err != nil {
		return nil, fmt.Errorf("infer: %s: network rejects a 1x%dx%d plane: %w", name, inH, inW, err)
	}
	if len(probe.Shape) != 2 || probe.Shape[0] != 1 {
		return nil, fmt.Errorf("infer: %s: network output shape %v, want [1, classes] logits", name, probe.Shape)
	}
	m.classes = probe.Shape[1]
	return m, nil
}

// buildMVMStage applies the full-scale normalisation split: the matrix is
// programmed at w/sw (largest magnitude at ±1, the grid oc.Program
// quantizes best) and sw is restored digitally together with the input
// activation scale sx. wData layout: [rows][cols] flattened, rows =
// len(bias).
func buildMVMStage(core *oc.Core, layerName string, wData, bias []float64, sx float64) (stage, error) {
	sw := 0.0
	for _, v := range wData {
		if v < -sw || v > sw {
			if v < 0 {
				sw = -v
			} else {
				sw = v
			}
		}
	}
	if sw == 0 {
		return stage{}, fmt.Errorf("%s: all-zero weights cannot be programmed", layerName)
	}
	rows := len(bias)
	if rows == 0 || len(wData)%rows != 0 {
		return stage{}, fmt.Errorf("%s: weight count %d not divisible by %d output rows", layerName, len(wData), rows)
	}
	cols := len(wData) / rows
	w := make([][]float64, rows)
	refW := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		w[r] = make([]float64, cols)
		refW[r] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			v := wData[r*cols+c] / sw
			w[r][c] = v
			refW[r][c] = core.SnapWeight(v)
		}
	}
	pm, err := core.Program(w)
	if err != nil {
		return stage{}, fmt.Errorf("%s: %w", layerName, err)
	}
	return stage{
		pm: pm, sw: sw, sx: sx, bias: append([]float64(nil), bias...),
		refW: refW, core: core,
	}, nil
}

// Name is the registry key (and the /v1/infer "model" field).
func (m *Model) Name() string { return m.name }

// Description is a one-line human-readable summary.
func (m *Model) Description() string { return m.desc }

// InputDims returns the expected compressed-plane dimensions.
func (m *Model) InputDims() (h, w int) { return m.inH, m.inW }

// Classes returns the logit width.
func (m *Model) Classes() int { return m.classes }

// Degraded reports whether any optical stage is serving degraded output
// (rows retired to the digital fallback, or unrecovered ABFT
// detections).
func (m *Model) Degraded() bool {
	for i := range m.stages {
		if pm := m.stages[i].pm; pm != nil && pm.Degraded() {
			return true
		}
	}
	return false
}

// checkPlane rejects inputs the compiled geometry would misread.
func (m *Model) checkPlane(plane *sensor.Image) error {
	if plane == nil || plane.C != 1 {
		c := 0
		if plane != nil {
			c = plane.C
		}
		return fmt.Errorf("infer: %s: input must be a single-channel compressed plane, have %d channels", m.name, c)
	}
	if plane.H != m.inH || plane.W != m.inW {
		return fmt.Errorf("infer: %s: input plane %dx%d, model compiled for %dx%d", m.name, plane.H, plane.W, m.inH, m.inW)
	}
	return nil
}

// Apply runs the compiled network over a compressed measurement plane
// through the optical core and returns the logits. Layer i draws its
// noise from oc.DeriveSeed(seed, i) and shards its MVM batch across up to
// `workers` goroutines; the result is bit-identical for any worker count
// and any interleaving (package determinism contract).
func (m *Model) Apply(plane *sensor.Image, seed int64, workers int) ([]float64, error) {
	return m.walk(plane, false, seed, workers)
}

// walk is the single stage loop behind Apply (ref false, optical) and
// Reference (ref true, exact quantized digital) — one owner, so the two
// paths can never desynchronise on stage order or dispatch.
func (m *Model) walk(plane *sensor.Image, ref bool, seed int64, workers int) ([]float64, error) {
	if err := m.checkPlane(plane); err != nil {
		return nil, err
	}
	x := nn.NewTensor(1, 1, m.inH, m.inW)
	copy(x.Data, plane.Pix)
	var err error
	for i := range m.stages {
		st := &m.stages[i]
		layerSeed := oc.DeriveSeed(seed, i)
		switch st.kind {
		case stageDigital:
			// The walk owns every intermediate tensor, so elementwise
			// layers may transform in place instead of cloning a full
			// activation map per layer per frame.
			if ip, ok := st.layer.(nn.InplaceLayer); ok {
				err = ip.ForwardInplace(x)
			} else {
				x, err = st.layer.Forward(x, false)
			}
			if err != nil {
				err = fmt.Errorf("infer: %s: %s: %w", m.name, st.layer.Name(), err)
			}
		case stageConv:
			x, err = st.applyConv(x, ref, layerSeed, workers)
		case stageDense:
			x, err = st.applyDense(x, ref, layerSeed, workers)
		}
		if err != nil {
			return nil, err
		}
	}
	return append([]float64(nil), x.Data...), nil
}

// applyConv streams im2col patches through the programmed matrix (paper
// Fig. 5 mapping: each 9-tap kernel slice occupies one arm, partial sums
// combine in the summation tree). Patch j of the window-row-major walk
// draws its noise from DeriveSeed(layerSeed, j) — the exact seeds the
// former materialize-then-ApplyBatchSeeded walk assigned — but the patch
// table is never built: each shard unrolls one patch at a time into a
// pooled strip buffer and runs it through a pooled Applier, so per-patch
// work allocates nothing — one layer pass allocates only the output
// tensor and per-shard bookkeeping. ref selects the exact digital
// quantized path instead of the optical one.
func (st *stage) applyConv(x *nn.Tensor, ref bool, layerSeed int64, workers int) (*nn.Tensor, error) {
	c := st.conv
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("infer: conv %s wants NCHW input, got rank %d", c.Name(), len(x.Shape))
	}
	n, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		return nil, fmt.Errorf("infer: conv %s input channels %d, want %d", c.Name(), inC, c.InC)
	}
	oh, ow := c.OutHW(h, w)
	if oh < 1 || ow < 1 {
		return nil, fmt.Errorf("infer: conv %s: empty output for input %dx%d", c.Name(), h, w)
	}
	patchLen := c.InC * c.K * c.K
	out := nn.NewTensor(n, c.OutC, oh, ow)
	restore := st.sw * st.sx
	// x/1 == x bit-for-bit, so the first-layer common case (the plane
	// arrives in the sensor's [0,1] range, sx == 1) skips the division.
	divSx := st.sx != 1
	err := oc.ShardRange(n*oh*ow, workers, func(lo, hi int) error {
		var ap *oc.Applier
		if !ref {
			ap = st.pm.NewApplier()
			defer ap.Release()
		}
		patch := oc.GetScratch(patchLen)
		y := oc.GetScratch(st.pm.Rows())
		defer oc.PutScratch(patch)
		defer oc.PutScratch(y)
		for j := lo; j < hi; j++ {
			b, oy, ox := j/(oh*ow), (j/ow)%oh, j%ow
			i := 0
			for ic := 0; ic < c.InC; ic++ {
				chanBase := (b*inC + ic) * h
				for ky := 0; ky < c.K; ky++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= h {
						for kx := 0; kx < c.K; kx++ {
							(*patch)[i] = 0
							i++
						}
						continue
					}
					rowBase := (chanBase + iy) * w
					for kx := 0; kx < c.K; kx++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= w {
							(*patch)[i] = 0
						} else if v := x.Data[rowBase+ix]; divSx {
							(*patch)[i] = v / st.sx
						} else {
							(*patch)[i] = v
						}
						i++
					}
				}
			}
			if err := st.mvmInto(ap, *y, *patch, ref, oc.DeriveSeed(layerSeed, j)); err != nil {
				return err
			}
			outBase := (b*c.OutC*oh+oy)*ow + ox
			for k, v := range (*y)[:c.OutC] {
				out.Data[outBase+k*oh*ow] = v*restore + st.bias[k]
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("infer: conv %s: %w", c.Name(), err)
	}
	return out, nil
}

// applyDense streams each batch row through the programmed matrix; row b
// draws its noise from DeriveSeed(layerSeed, b). Each shard normalises
// one row at a time into a pooled buffer — same shape as applyConv's
// strip walk. ref selects the exact digital quantized path instead of
// the optical one.
func (st *stage) applyDense(x *nn.Tensor, ref bool, layerSeed int64, workers int) (*nn.Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("infer: dense stage wants [N,D] input (flatten first), got rank %d", len(x.Shape))
	}
	n, d := x.Shape[0], x.Shape[1]
	if d != st.pm.Cols() {
		return nil, fmt.Errorf("infer: dense stage input width %d, want %d", d, st.pm.Cols())
	}
	rows := st.pm.Rows()
	out := nn.NewTensor(n, rows)
	restore := st.sw * st.sx
	divSx := st.sx != 1 // x/1 == x bit-for-bit, skip the division
	err := oc.ShardRange(n, workers, func(lo, hi int) error {
		var ap *oc.Applier
		if !ref {
			ap = st.pm.NewApplier()
			defer ap.Release()
		}
		vec := oc.GetScratch(d)
		y := oc.GetScratch(rows)
		defer oc.PutScratch(vec)
		defer oc.PutScratch(y)
		for b := lo; b < hi; b++ {
			src := x.Data[b*d : (b+1)*d]
			if divSx {
				for i, v := range src {
					(*vec)[i] = v / st.sx
				}
			} else {
				copy(*vec, src)
			}
			if err := st.mvmInto(ap, *y, *vec, ref, oc.DeriveSeed(layerSeed, b)); err != nil {
				return err
			}
			dst := out.Data[b*rows : (b+1)*rows]
			for o, v := range *y {
				dst[o] = v*restore + st.bias[o]
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("infer: dense stage: %w", err)
	}
	return out, nil
}

// Reference computes the digital reference of the compiled model: the
// same stage walk as Apply with the same weight and activation grids,
// but exact arithmetic and no analog effects (no crosstalk, no noise).
// The optical-vs-reference gap therefore isolates the analog model; in
// Ideal fidelity the two agree to float round-off. Safe for concurrent
// use, like Apply.
func (m *Model) Reference(plane *sensor.Image) ([]float64, error) {
	return m.walk(plane, true, 0, 1)
}

// mvmInto executes one normalised activation vector either through the
// optical core (seeded, via the shard's reusable Applier) or through the
// exact digital quantized reference (grid weights times grid
// activations, plain arithmetic; ap may be nil), writing the result into
// dst (len == pm.Rows() == len(refW)).
func (st *stage) mvmInto(ap *oc.Applier, dst, vec []float64, ref bool, seed int64) error {
	if !ref {
		return ap.ApplySeededCalibratedInto(dst, vec, seed)
	}
	// Preallocated to the vector length up front — the former batch walk
	// grew its quantization buffer with append from zero capacity.
	xq := oc.GetScratch(len(vec))
	defer oc.PutScratch(xq)
	for i, v := range vec {
		(*xq)[i] = st.core.QuantizeActivation(v)
	}
	q := *xq
	for r, row := range st.refW {
		sum := 0.0
		for c, w := range row {
			sum += w * q[c]
		}
		dst[r] = sum
	}
	return nil
}

// Ops returns the modeled analog op counts of one Apply — the
// observability layer's per-request accounting (see internal/trace).
// Counts come from a one-time shape walk: digital stages run their
// Forward over zero tensors purely to propagate shapes, while each
// optical stage contributes its patch/row geometry analytically — conv
// layers stream oh*ow im2col patches and dense layers one batch row
// through the programmed (rows x cols) matrix, every coefficient
// runtime-DAC-driven. The result is cached; concurrent calls are safe.
func (m *Model) Ops() (trace.OpCounts, error) {
	m.opsOnce.Do(func() { m.ops, m.opsErr = m.countOps() })
	return m.ops, m.opsErr
}

func (m *Model) countOps() (trace.OpCounts, error) {
	x := nn.NewTensor(1, 1, m.inH, m.inW)
	var ops trace.OpCounts
	var err error
	for i := range m.stages {
		st := &m.stages[i]
		switch st.kind {
		case stageDigital:
			// Shape propagation only; InplaceLayers keep the shape, so the
			// plain Forward suffices (and never mutates compiled state).
			x, err = st.layer.Forward(x, false)
			if err != nil {
				return trace.OpCounts{}, fmt.Errorf("infer: %s: ops walk: %s: %w", m.name, st.layer.Name(), err)
			}
		case stageConv:
			c := st.conv
			if len(x.Shape) != 4 {
				return trace.OpCounts{}, fmt.Errorf("infer: %s: ops walk: conv %s wants NCHW input, got rank %d", m.name, c.Name(), len(x.Shape))
			}
			oh, ow := c.OutHW(x.Shape[2], x.Shape[3])
			patches := int64(x.Shape[0]) * int64(oh) * int64(ow)
			rows, cols := int64(st.pm.Rows()), int64(st.pm.Cols())
			ops.MVMRows += patches * rows
			ops.DACSettles += patches * rows * cols
			ops.ADCConversions += patches * rows
			ops.MRCoeffHolds += patches * rows * cols
			ops.ABFTChecks += st.pm.ABFTChecksPer(patches)
			x = nn.NewTensor(x.Shape[0], c.OutC, oh, ow)
		case stageDense:
			if len(x.Shape) != 2 {
				return trace.OpCounts{}, fmt.Errorf("infer: %s: ops walk: dense stage wants [N,D] input, got rank %d", m.name, len(x.Shape))
			}
			batch := int64(x.Shape[0])
			rows, cols := int64(st.pm.Rows()), int64(st.pm.Cols())
			ops.MVMRows += batch * rows
			ops.DACSettles += batch * rows * cols
			ops.ADCConversions += batch * rows
			ops.MRCoeffHolds += batch * rows * cols
			ops.ABFTChecks += st.pm.ABFTChecksPer(batch)
			x = nn.NewTensor(x.Shape[0], st.pm.Rows())
		}
	}
	return ops, nil
}

// Argmax returns the top-1 class of a logit vector (-1 for empty input).
func Argmax(logits []float64) int {
	best := -1
	for i, v := range logits {
		if best < 0 || v > logits[best] {
			best = i
		}
	}
	return best
}
