package infer

import (
	"math"
	"math/rand"
	"testing"

	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// testPlane builds a deterministic single-channel plane with samples in
// [0,1].
func testPlane(seed int64, h, w int) *sensor.Image {
	rng := rand.New(rand.NewSource(seed))
	p := sensor.NewImage(h, w, 1)
	for i := range p.Pix {
		p.Pix[i] = rng.Float64()
	}
	return p
}

func newTestEngine(t *testing.T, fid oc.Fidelity, poolN, h, w int) (*oc.Core, *Engine) {
	t.Helper()
	core, err := oc.NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(core, poolN, h, w, 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	return core, eng
}

// rangeErr returns max |a-b| normalised by the reference logit range
// (max - min), so the pinned tolerances read as a fraction of the
// decision-relevant spread rather than of near-cancelling magnitudes.
func rangeErr(t *testing.T, got, want []float64) float64 {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("logit width %d vs %d", len(got), len(want))
	}
	lo, hi := want[0], want[0]
	for _, v := range want {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		t.Fatal("degenerate reference logits")
	}
	max := 0.0
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > max {
			max = d
		}
	}
	return max / (hi - lo)
}

// TestOpticalMatchesReferenceAcrossCAPool pins the optical-vs-digital-
// reference tolerance of both built-in models across the paper's
// compression ratios: the plane a CAPool in {4, 8, 16} produces from a
// 64x64 sensor. Two fidelities, two pins:
//
//   - Ideal: the optical path computes exactly the quantized arithmetic
//     the reference models, so logits agree to float round-off. This is
//     the strong pin on the whole full-scale-normalisation + im2col +
//     seeded-batch execution path — any scaling or indexing regression
//     breaks it outright.
//
//   - Physical: the gap is pure WDM crosstalk, amplified by quantization-
//     cell flips in the hidden ActQuant layers (a sub-LSB perturbation
//     near a grid boundary becomes a full LSB downstream), so the pin is
//     loose but meaningful: without the full-scale weight normalisation
//     the same metric explodes well past 1.
func TestOpticalMatchesReferenceAcrossCAPool(t *testing.T) {
	const sensorSide = 64
	tol := map[oc.Fidelity]float64{
		oc.Ideal:    1e-9,
		oc.Physical: 0.35,
	}
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.Physical} {
		for _, pool := range []int{4, 8, 16} {
			side := sensorSide / pool
			_, eng := newTestEngine(t, fid, pool, side, side)
			for _, name := range eng.Names() {
				m, err := eng.Model(name)
				if err != nil {
					t.Fatal(err)
				}
				for frame := 0; frame < 3; frame++ {
					plane := testPlane(int64(100*pool+frame), side, side)
					got, err := m.Apply(plane, 42, 1)
					if err != nil {
						t.Fatalf("CAPool %d %s: %v", pool, name, err)
					}
					want, err := m.Reference(plane)
					if err != nil {
						t.Fatal(err)
					}
					if e := rangeErr(t, got, want); e > tol[fid] {
						t.Errorf("%v CAPool %d (%dx%d plane) %s frame %d: optical-vs-reference error %.4g > %.4g",
							fid, pool, side, side, name, frame, e, tol[fid])
					}
				}
			}
		}
	}
}

// TestApplyWorkerInvariance is the determinism contract: in PhysicalNoisy
// fidelity — where every MVM readout draws analog noise — Apply is
// bit-identical for any worker count, and reproducible across calls.
func TestApplyWorkerInvariance(t *testing.T) {
	_, eng := newTestEngine(t, oc.PhysicalNoisy, 4, 8, 8)
	plane := testPlane(7, 8, 8)
	for _, name := range eng.Names() {
		m, err := eng.Model(name)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := m.Apply(plane, 99, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, err := m.Apply(plane, 99, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				if got[i] != serial[i] {
					t.Fatalf("%s: logit %d differs at %d workers: %g vs %g", name, i, workers, got[i], serial[i])
				}
			}
		}
		// A different seed must change the noisy logits.
		other, err := m.Apply(plane, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range serial {
			if other[i] != serial[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seed change did not affect noisy logits", name)
		}
	}
}

// TestApplyConcurrentUse exercises concurrent Apply calls on one shared
// model (the pipeline worker pattern) under the race detector, checking
// every goroutine sees the seeded result.
func TestApplyConcurrentUse(t *testing.T) {
	_, eng := newTestEngine(t, oc.PhysicalNoisy, 4, 8, 8)
	m, err := eng.Model("tiny-cnn")
	if err != nil {
		t.Fatal(err)
	}
	plane := testPlane(11, 8, 8)
	want, err := m.Apply(plane, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			got, err := m.Apply(plane, 5, 2)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				if got[i] != want[i] {
					errs <- errMismatch
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent Apply result differs from serial" }

// TestEngineRegistry covers registry behaviour: sorted names, duplicate
// rejection, unknown lookup, geometry guard.
func TestEngineRegistry(t *testing.T) {
	core, eng := newTestEngine(t, oc.Physical, 2, 8, 8)
	names := eng.Names()
	if len(names) < 2 {
		t.Fatalf("expected built-in models, have %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if _, err := eng.Model("nope"); err == nil {
		t.Error("unknown model lookup succeeded")
	}
	m, err := eng.Model("tiny-mlp")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(m); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if h, w := eng.InputDims(); h != 8 || w != 8 {
		t.Errorf("engine dims %dx%d, want 8x8", h, w)
	}
	if eng.PoolN() != 2 {
		t.Errorf("engine pool %d, want 2", eng.PoolN())
	}
	// A model compiled for other dimensions must be rejected.
	net := TinyMLP(4, 4, 3, 4)
	net.InitHe(1)
	if err := Calibrate(net, core, 2, 4, 4, 2, 2); err != nil {
		t.Fatal(err)
	}
	wrong, err := Compile(core, "wrong-dims", "", net, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(wrong); err == nil {
		t.Error("registering a 4x4 model on an 8x8 engine succeeded")
	}
}

// TestEngineTinyPlanes pins the graceful-degradation contract: an
// engine must construct for any non-empty plane (an accelerator must
// build for every valid sensor/CAPool combination), skipping built-ins
// that don't fit rather than erroring.
func TestEngineTinyPlanes(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	// 1x1 plane (e.g. 4x4 sensor at CAPool 4): tiny-cnn can't pool, but
	// tiny-mlp must still register and run.
	eng, err := NewEngine(core, 4, 1, 1, 3)
	if err != nil {
		t.Fatalf("engine over a 1x1 plane: %v", err)
	}
	if _, err := eng.Model("tiny-cnn"); err == nil {
		t.Error("tiny-cnn registered on an odd plane")
	}
	m, err := eng.Model("tiny-mlp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(testPlane(1, 1, 1), 0, 1); err != nil {
		t.Errorf("tiny-mlp on a 1x1 plane: %v", err)
	}
}

// TestCompileErrors pins the compile-time guards: uncalibrated
// quantizers, all-zero weights, non-logit outputs, no optical layers.
func TestCompileErrors(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	// Uncalibrated ActQuant.
	raw := TinyMLP(4, 4, 3, 4)
	raw.InitHe(1)
	if _, err := Compile(core, "uncal", "", raw, 4, 4); err == nil {
		t.Error("compile accepted an uncalibrated ActQuant")
	}
	// All-zero weights (never initialised).
	zero := nn.NewSequential(nn.NewFlatten("f"), nn.NewDense("fc", 16, 3))
	if _, err := Compile(core, "zero", "", zero, 4, 4); err == nil {
		t.Error("compile accepted all-zero weights")
	}
	// Output is not [1, classes] logits (network ends in NCHW).
	convOnly := nn.NewSequential(nn.NewConv2D("c", 1, 2, 3, 1, 1))
	convOnly.InitHe(1)
	if _, err := Compile(core, "nchw", "", convOnly, 4, 4); err == nil {
		t.Error("compile accepted a rank-4 output")
	}
	// No optical layers at all.
	digital := nn.NewSequential(nn.NewFlatten("f"))
	if _, err := Compile(core, "digital", "", digital, 4, 4); err == nil {
		t.Error("compile accepted a network with no conv/dense layers")
	}
	// Geometry mismatch is caught at compile, not first request.
	bad := TinyMLP(8, 8, 3, 4)
	bad.InitHe(1)
	if err := Calibrate(bad, core, 2, 8, 8, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(core, "geom", "", bad, 4, 4); err == nil {
		t.Error("compile accepted a dense width mismatched to the input plane")
	}
}

// TestApplyInputGuards covers the runtime plane checks.
func TestApplyInputGuards(t *testing.T) {
	_, eng := newTestEngine(t, oc.Physical, 2, 8, 8)
	m, err := eng.Model("tiny-mlp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(nil, 0, 1); err == nil {
		t.Error("nil plane accepted")
	}
	if _, err := m.Apply(sensor.NewImage(8, 8, 3), 0, 1); err == nil {
		t.Error("3-channel plane accepted")
	}
	if _, err := m.Apply(sensor.NewImage(4, 4, 1), 0, 1); err == nil {
		t.Error("wrong-size plane accepted")
	}
	if h, w := m.InputDims(); h != 8 || w != 8 {
		t.Errorf("model dims %dx%d, want 8x8", h, w)
	}
	if m.Classes() != DefaultClasses {
		t.Errorf("classes %d, want %d", m.Classes(), DefaultClasses)
	}
	if Argmax(nil) != -1 {
		t.Error("Argmax(nil) != -1")
	}
	if Argmax([]float64{0.1, 3, -2}) != 1 {
		t.Error("Argmax picked the wrong class")
	}
}
