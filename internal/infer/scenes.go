package infer

import (
	"fmt"
	"math/rand"

	"lightator/internal/nn"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// DiskScenes builds n structured RGB test scenes: a bright disk jittered
// across a dim background. Uniform-random scenes average out to a
// near-constant CA plane (every frame lands on the same logits, making
// top-1 agreement degenerate); a moving structure keeps the per-frame
// planes — and classifications — distinct. The bench's agreement sweep,
// the serving-time agreement report and ActQuant calibration all draw
// from this generator so they measure the same input statistics.
func DiskScenes(n, rows, cols int, seed int64) []*sensor.Image {
	rng := rand.New(rand.NewSource(seed))
	scenes := make([]*sensor.Image, n)
	for i := range scenes {
		s := sensor.NewImage(rows, cols, 3)
		for j := range s.Pix {
			s.Pix[j] = 0.1
		}
		cy := float64(rng.Intn(rows))
		cx := float64(rng.Intn(cols))
		r := float64(rows) * (0.1 + 0.2*rng.Float64())
		for y := 0; y < rows; y++ {
			for x := 0; x < cols; x++ {
				dy, dx := float64(y)-cy, float64(x)-cx
				if dy*dy+dx*dx < r*r {
					for c := 0; c < 3; c++ {
						s.Pix[(y*cols+x)*3+c] = 0.9
					}
				}
			}
		}
		scenes[i] = s
	}
	return scenes
}

// CalibrationPlanes produces batch fidelity-true compressed planes of
// h x w: DiskScenes captured by the ADC-less sensor and compressed by
// the CA on core — exactly the measurement statistics the serving path
// feeds a model, unlike synthetic uniform noise (which concentrates
// around the window mean and under-ranges every activation scale).
func CalibrationPlanes(core *oc.Core, poolN, h, w, batch int, seed int64) ([]*sensor.Image, error) {
	arr, err := sensor.NewArray(h*poolN, w*poolN)
	if err != nil {
		return nil, fmt.Errorf("infer: calibration sensor: %w", err)
	}
	ca, err := oc.NewAcquisitor(core, poolN)
	if err != nil {
		return nil, fmt.Errorf("infer: calibration CA: %w", err)
	}
	scenes := DiskScenes(batch, h*poolN, w*poolN, seed)
	planes := make([]*sensor.Image, batch)
	for i, s := range scenes {
		frame, err := arr.Capture(s)
		if err != nil {
			return nil, fmt.Errorf("infer: calibration capture: %w", err)
		}
		plane, err := ca.CompressSeeded(frame, oc.DeriveSeed(seed, i+1))
		if err != nil {
			return nil, fmt.Errorf("infer: calibration compress: %w", err)
		}
		planes[i] = plane
	}
	return planes, nil
}

// Agreement reports the fraction of index-aligned logit pairs whose
// top-1 class matches — the label-free fidelity contract the bench, the
// model zoo listing and the benchdiff gate all report. Ties resolve to
// the first maximum on both sides (Argmax), so a pair of identical
// degenerate logit vectors counts as agreeing. An empty or mismatched
// sweep has no evidence of agreement and reports 0.
func Agreement(optical, reference [][]float64) float64 {
	if len(optical) == 0 || len(optical) != len(reference) {
		return 0
	}
	agree := 0
	for i := range optical {
		if Argmax(optical[i]) == Argmax(reference[i]) {
			agree++
		}
	}
	return float64(agree) / float64(len(optical))
}

// Calibrate runs batch fidelity-true compressed planes (see
// CalibrationPlanes) through the network in training mode to set the
// ActQuant running-max scales, then freezes them. Networks trained with
// package train are already calibrated; this is for hand-built or
// He-initialised networks that have never seen data.
func Calibrate(net *nn.Sequential, core *oc.Core, poolN, h, w, batch int, seed int64) error {
	if batch < 1 {
		batch = 1
	}
	if core == nil {
		return fmt.Errorf("infer: calibration needs an optical core")
	}
	planes, err := CalibrationPlanes(core, poolN, h, w, batch, seed)
	if err != nil {
		return err
	}
	x := nn.NewTensor(batch, 1, h, w)
	size := h * w
	for i, p := range planes {
		copy(x.Data[i*size:(i+1)*size], p.Pix)
	}
	if _, err := net.Forward(x, true); err != nil {
		return fmt.Errorf("calibration forward: %w", err)
	}
	nn.FreezeActQuant(net, true)
	return nil
}
