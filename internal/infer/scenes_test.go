package infer

import (
	"testing"

	"lightator/internal/oc"
)

// TestAgreement pins the metric's contract: empty or mismatched sweeps
// carry no evidence and report 0; ties resolve to the first maximum on
// both sides, so identical degenerate logit vectors agree.
func TestAgreement(t *testing.T) {
	cases := []struct {
		name      string
		optical   [][]float64
		reference [][]float64
		want      float64
	}{
		{"empty", nil, nil, 0},
		{"empty slices", [][]float64{}, [][]float64{}, 0},
		{"mismatched lengths", [][]float64{{1, 0}}, nil, 0},
		{"exact match", [][]float64{{0.1, 0.9}, {3, 1}}, [][]float64{{0.2, 0.8}, {5, 2}}, 1},
		{"disagree", [][]float64{{0.1, 0.9}}, [][]float64{{0.8, 0.2}}, 0},
		{"half", [][]float64{{1, 0}, {1, 0}}, [][]float64{{2, 0}, {0, 2}}, 0.5},
		{"tied logits agree", [][]float64{{0, 0, 0}}, [][]float64{{0, 0, 0}}, 1},
		{"tie resolves first", [][]float64{{1, 1}}, [][]float64{{0, 2}}, 0},
	}
	for _, tc := range cases {
		if got := Agreement(tc.optical, tc.reference); got != tc.want {
			t.Errorf("%s: Agreement = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDiskScenesDeterministic: the structured scene generator is a pure
// function of its seed, and every pixel is either dim background (0.1)
// or bright disk (0.9) with both present.
func TestDiskScenesDeterministic(t *testing.T) {
	a := DiskScenes(4, 16, 16, 42)
	b := DiskScenes(4, 16, 16, 42)
	if len(a) != 4 {
		t.Fatalf("got %d scenes, want 4", len(a))
	}
	sawDisk, sawBackground := false, false
	for i := range a {
		if a[i].H != 16 || a[i].W != 16 || a[i].C != 3 {
			t.Fatalf("scene %d shape %dx%dx%d", i, a[i].H, a[i].W, a[i].C)
		}
		for j, v := range a[i].Pix {
			if v != b[i].Pix[j] {
				t.Fatalf("scene %d pixel %d not deterministic: %v vs %v", i, j, v, b[i].Pix[j])
			}
			switch v {
			case 0.1:
				sawBackground = true
			case 0.9:
				sawDisk = true
			default:
				t.Fatalf("scene %d pixel %d = %v, want 0.1 or 0.9", i, j, v)
			}
		}
	}
	if !sawDisk || !sawBackground {
		t.Fatal("scenes missing disk or background pixels")
	}
	c := DiskScenes(4, 16, 16, 43)
	same := true
	for i := range a {
		for j := range a[i].Pix {
			if a[i].Pix[j] != c[i].Pix[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical scenes")
	}
}

// TestCalibrationPlanes: fidelity-true calibration planes have the
// compressed shape, are deterministic, and differ frame to frame (the
// jittered disk keeps per-frame statistics distinct).
func TestCalibrationPlanes(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CalibrationPlanes(core, 2, 8, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CalibrationPlanes(core, 2, 8, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("got %d planes, want 3", len(a))
	}
	for i := range a {
		if a[i].H != 8 || a[i].W != 8 || a[i].C != 1 {
			t.Fatalf("plane %d shape %dx%dx%d, want 8x8x1", i, a[i].H, a[i].W, a[i].C)
		}
		for j, v := range a[i].Pix {
			if v != b[i].Pix[j] {
				t.Fatalf("plane %d pixel %d not deterministic", i, j)
			}
		}
	}
	identical := true
	for j := range a[0].Pix {
		if a[0].Pix[j] != a[1].Pix[j] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("consecutive calibration planes are identical — scenes not jittering")
	}
}
