//go:build !race

// Steady-state allocation pins for the iterative solver loops, in the
// spirit of internal/oc/alloc_test.go: once the scratch arena and the
// Applier pools are warm, solving one compressed sample allocates
// nothing, in Ideal and PhysicalNoisy fidelity. (The direct kernels'
// per-window path is LinOp.Apply over Applier.ApplySeededInto, whose
// zero-alloc contract is pinned in internal/oc.) The race detector
// instruments allocations, so these run only in the plain test pass.
package kernels

import (
	"testing"

	"lightator/internal/oc"
)

func solverAllocCore(t *testing.T, fid oc.Fidelity) *oc.Core {
	t.Helper()
	core, err := oc.NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// TestCGSolveAllocFree pins the reconstruct-cg steady state: a warmed-up
// CGNR solve performs zero heap allocations per sample.
func TestCGSolveAllocFree(t *testing.T) {
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.PhysicalNoisy} {
		o, err := NewReconstructCG(solverAllocCore(t, fid), 4, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		apply, release := cgOpticalPass(o)
		defer release()
		sc := o.getScratch()
		defer sc.release()
		if _, err := o.solve(0.7, sc, 1, apply, nil); err != nil { // warm the pools
			t.Fatal(err)
		}
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			i++
			if _, err := o.solve(0.7, sc, oc.DeriveSeed(1, i), apply, nil); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: CGNR solve allocates %.2f/sample, want 0", fid, allocs)
		}
	}
}

// TestIterateAllocFree pins the same contract for the Landweber loop.
func TestIterateAllocFree(t *testing.T) {
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.PhysicalNoisy} {
		o, err := NewReconstructIter(solverAllocCore(t, fid), 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := o.(*IterOp)
		fwd, adj := k.fwd.NewApplier(), k.adj.NewApplier()
		defer fwd.Release()
		defer adj.Release()
		apply := func(pm *oc.ProgrammedMatrix, dst, in []float64, seed int64) error {
			if pm == k.fwd {
				return fwd.ApplySeededInto(dst, in, seed)
			}
			return adj.ApplySeededInto(dst, in, seed)
		}
		sc := k.getScratch()
		defer sc.release()
		if err := k.iterate(0.7, sc, 1, apply); err != nil { // warm the pools
			t.Fatal(err)
		}
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			i++
			if err := k.iterate(0.7, sc, oc.DeriveSeed(1, i), apply); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: Landweber iterate allocates %.2f/sample, want 0", fid, allocs)
		}
	}
}
