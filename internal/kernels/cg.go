// Accelerated iterative reconstruction: conjugate gradient on the normal
// equations (CGNR), using only optical forward/adjoint passes.
//
// Landweber (reconstruct-iter) is gradient descent on ‖Φx − y‖² with a
// fixed step and a fixed iteration count: 2·iters optical passes per
// sample no matter how fast the residual dies. CGNR chooses the step α
// from the measured quantities themselves (α = ‖Φᵀr‖²/‖Φp‖²) and keeps
// conjugate search directions, so the rank-1 per-window CA system
// converges in ONE exact iteration — and a convergence-based stopping
// rule replaces the fixed count: the loop exits as soon as the
// measurement residual |r| falls under tol·|y|, or strictly stops making
// progress (which also makes the committed residual trace monotone by
// construction: a non-improving iterate is never committed).
//
// Physical constraints are preserved the same way IterOp's are — every
// streamed activation stays in [0, 1]:
//
//   - The search direction p may go negative and exceed 1 once
//     quantization perturbs the residual, so the forward pass Φp is
//     sign-split: p⁺/pmax and p⁻/pmax stream as two non-negative drives
//     (the negative pass is skipped entirely when p is non-negative —
//     the common case for the all-positive CA row) and the readouts are
//     recombined digitally as q = (q⁺ − q⁻)·wmax·pmax.
//   - The adjoint pass Φᵀr streams |r| clamped to 1, with the sign and
//     any excess magnitude restored digitally on the readout.
//
// Pass p of sample j draws its noise from DeriveSeed(DeriveSeed(seed, j),
// pass), so the output is bit-identical for any worker count even though
// different samples run different pass counts.
package kernels

import (
	"fmt"
	"math"
	"sync/atomic"

	"lightator/internal/oc"
	"lightator/internal/sensor"
	"lightator/internal/trace"
)

// SolverStats is implemented by iterative kernels that meter their
// optical work: PassTotals reports how many optical passes all Apply
// calls so far have executed and over how many compressed samples, so
// adaptive stopping is observable (passes/samples is the realized
// average pass count — lightator-bench reports it per kernel).
// Reference never counts: it runs no optical passes.
type SolverStats interface {
	PassTotals() (passes, samples uint64)
}

// solverCounters is the shared SolverStats implementation: lock-free
// accumulation from concurrent Apply shards.
type solverCounters struct {
	passes  atomic.Uint64
	samples atomic.Uint64
}

func (c *solverCounters) add(passes, samples uint64) {
	c.passes.Add(passes)
	c.samples.Add(samples)
}

// PassTotals implements SolverStats.
func (c *solverCounters) PassTotals() (passes, samples uint64) {
	return c.passes.Load(), c.samples.Load()
}

// DefaultCGMaxIters caps the CGNR loop. The rank-1 CA system converges
// in one exact iteration; the cap only bounds the quantized path, which
// the no-progress rule almost always stops first.
const DefaultCGMaxIters = 6

// DefaultCGTol is the default relative stopping tolerance: the loop
// exits once |r| <= tol·|y|.
const DefaultCGTol = 0.01

// CGOp is the CGNR reconstruction kernel: per compressed sample it runs
// conjugate-gradient iterations on the normal equations using optical
// forward (Φ, a 1 x n² row) and adjoint (Φᵀ, an n² x 1 column) passes,
// stopping on residual convergence instead of a fixed iteration count.
type CGOp struct {
	name     string
	desc     string
	n        int     // pooling factor == output block side
	maxIters int     // iteration cap; the stopping rule usually exits earlier
	tol      float64 // relative residual tolerance: stop at |r| <= tol·|y|
	w        []float64
	gram     float64
	wmax     float64
	fwd      *oc.ProgrammedMatrix // 1 x n²: the CA row w
	adj      *oc.ProgrammedMatrix // n² x 1: the CA column wᵀ
	stats    solverCounters
}

// NewReconstructCG builds the CGNR reconstruction kernel. maxIters <= 0
// takes DefaultCGMaxIters; tol <= 0 takes DefaultCGTol. The programmed
// matrices carry w/wmax (full-scale normalisation, like IterOp) with the
// factor restored digitally.
func NewReconstructCG(core *oc.Core, poolN, maxIters int, tol float64) (*CGOp, error) {
	if maxIters <= 0 {
		maxIters = DefaultCGMaxIters
	}
	if tol <= 0 {
		tol = DefaultCGTol
	}
	w, gram, wmax, err := caGeometry(poolN)
	if err != nil {
		return nil, err
	}
	norm := make([]float64, len(w))
	adjRows := make([][]float64, len(w))
	for i, v := range w {
		norm[i] = v / wmax
		adjRows[i] = []float64{v / wmax}
	}
	fwd, err := core.Program([][]float64{norm})
	if err != nil {
		return nil, err
	}
	adj, err := core.Program(adjRows)
	if err != nil {
		return nil, err
	}
	// Separate health components per pass, mirroring reconstruct-iter.
	fwd.SetLabel("kernel:reconstruct-cg/fwd")
	adj.SetLabel("kernel:reconstruct-cg/adj")
	return &CGOp{
		name: "reconstruct-cg",
		desc: fmt.Sprintf("conjugate-gradient (CGNR) least-squares reconstruction: adaptive optical forward/adjoint passes per %dx%d block, residual stopping at %g relative (cap %d iterations)", poolN, poolN, tol, maxIters),
		n:    poolN, maxIters: maxIters, tol: tol,
		w: w, gram: gram, wmax: wmax,
		fwd: fwd, adj: adj,
	}, nil
}

// PassTotals implements SolverStats: realized optical pass counts across
// all Apply calls, which is how the adaptive stopping rule is observed
// (the static Ops accounting is a worst-case bound).
func (o *CGOp) PassTotals() (passes, samples uint64) {
	return o.stats.PassTotals()
}

// Name implements Kernel.
func (o *CGOp) Name() string { return o.name }

// Description implements Kernel.
func (o *CGOp) Description() string { return o.desc }

// Degraded reports whether either programmed bank is serving degraded
// output (retired rows or unrecovered ABFT detections).
func (o *CGOp) Degraded() bool { return o.fwd.Degraded() || o.adj.Degraded() }

// OutDims implements Kernel.
func (o *CGOp) OutDims(h, w int) (int, int, error) {
	if h < 1 || w < 1 {
		return 0, 0, fmt.Errorf("kernels: %s: empty plane %dx%d", o.name, h, w)
	}
	return h * o.n, w * o.n, nil
}

// Ops implements Kernel. Op counts are static (derived from programmed
// geometry at trace time, never measured), so the adaptive loop is
// accounted at its worst case: one initial adjoint pass plus maxIters
// iterations of two sign-split forward passes and one adjoint pass per
// sample. Realized pass counts — usually far lower — are observable via
// PassTotals.
func (o *CGOp) Ops(h, w int) (trace.OpCounts, error) {
	if _, _, err := o.OutDims(h, w); err != nil {
		return trace.OpCounts{}, err
	}
	samples := int64(h) * int64(w)
	n2 := int64(o.n) * int64(o.n)
	adjPasses := samples * int64(1+o.maxIters)
	fwdPasses := samples * int64(2*o.maxIters)
	return trace.OpCounts{
		MVMRows:        adjPasses*n2 + fwdPasses,
		DACSettles:     (adjPasses + fwdPasses) * n2,
		ADCConversions: adjPasses*n2 + fwdPasses,
		MRCoeffHolds:   (adjPasses + fwdPasses) * n2,
		ABFTChecks:     o.fwd.ABFTChecksPer(fwdPasses) + o.adj.ABFTChecksPer(adjPasses),
	}, nil
}

// cgScratch is one shard's worth of pooled CGNR state: the n² iterate x,
// search direction p, adjoint readout s, forward drive buffer, and the
// 1-element forward readout and adjoint input. All from the shared oc
// scratch arena — the steady-state loop allocates nothing.
type cgScratch struct {
	x, p, s, drv  *[]float64
	fwdOut, adjIn *[]float64
}

func (o *CGOp) getScratch() cgScratch {
	n2 := o.n * o.n
	return cgScratch{
		x:      oc.GetScratch(n2),
		p:      oc.GetScratch(n2),
		s:      oc.GetScratch(n2),
		drv:    oc.GetScratch(n2),
		fwdOut: oc.GetScratch(1),
		adjIn:  oc.GetScratch(1),
	}
}

func (s cgScratch) release() {
	oc.PutScratch(s.x)
	oc.PutScratch(s.p)
	oc.PutScratch(s.s)
	oc.PutScratch(s.drv)
	oc.PutScratch(s.fwdOut)
	oc.PutScratch(s.adjIn)
}

// solve runs the CGNR loop for one compressed sample y, filling the n²
// iterate sc.x, and returns the number of optical passes executed. Pass
// p of the sample uses seed DeriveSeed(seed, p). resTrace, when non-nil,
// receives |r| after the initial residual and after every committed
// iteration — committed residuals decrease strictly monotonically
// because a non-improving iterate is never committed.
func (o *CGOp) solve(y float64, sc cgScratch, seed int64, apply passFn, resTrace *[]float64) (int, error) {
	x, p, s, drv := *sc.x, *sc.p, *sc.s, *sc.drv
	for i := range x {
		x[i] = 0
	}
	pass := 0

	// adjoint computes dst = Φᵀ·r: |r| streams clamped to [0,1], the sign
	// and any excess restored digitally (factor r/drive), and the
	// programmed w/wmax normalisation undone by wmax.
	adjoint := func(r float64, dst []float64) error {
		amp := math.Abs(r)
		if amp == 0 {
			for i := range dst {
				dst[i] = 0
			}
			return nil
		}
		drive := amp
		if drive > 1 {
			drive = 1
		}
		(*sc.adjIn)[0] = drive
		if err := apply(o.adj, dst, *sc.adjIn, oc.DeriveSeed(seed, pass)); err != nil {
			return err
		}
		pass++
		factor := o.wmax * r / drive
		for i := range dst {
			dst[i] *= factor
		}
		return nil
	}

	// forward computes q = Φ·p via sign-split non-negative drives: p⁺/pmax
	// and p⁻/pmax each stream in [0,1]; the negative pass is skipped when
	// p has no negative entries (the exact-arithmetic CA case).
	forward := func() (float64, error) {
		pmax := 0.0
		hasNeg := false
		for _, v := range p {
			if v < 0 {
				hasNeg = true
				if -v > pmax {
					pmax = -v
				}
			} else if v > pmax {
				pmax = v
			}
		}
		if pmax == 0 {
			return 0, nil
		}
		q := 0.0
		hasPos := false
		for i, v := range p {
			if v > 0 {
				drv[i] = v / pmax
				hasPos = true
			} else {
				drv[i] = 0
			}
		}
		if hasPos {
			if err := apply(o.fwd, *sc.fwdOut, drv, oc.DeriveSeed(seed, pass)); err != nil {
				return 0, err
			}
			pass++
			q += (*sc.fwdOut)[0] * o.wmax * pmax
		}
		if hasNeg {
			for i, v := range p {
				if v < 0 {
					drv[i] = -v / pmax
				} else {
					drv[i] = 0
				}
			}
			if err := apply(o.fwd, *sc.fwdOut, drv, oc.DeriveSeed(seed, pass)); err != nil {
				return 0, err
			}
			pass++
			q -= (*sc.fwdOut)[0] * o.wmax * pmax
		}
		return q, nil
	}

	r := y
	absY := math.Abs(y)
	if resTrace != nil {
		*resTrace = append(*resTrace, math.Abs(r))
	}
	if err := adjoint(r, s); err != nil {
		return pass, err
	}
	gamma := 0.0
	for i, v := range s {
		p[i] = v
		gamma += v * v
	}
	for t := 0; t < o.maxIters && gamma > 0; t++ {
		q, err := forward()
		if err != nil {
			return pass, err
		}
		if q == 0 {
			// The direction quantized to nothing measurable; a step would
			// divide by zero.
			break
		}
		alpha := gamma / (q * q)
		rNew := r - alpha*q
		// Strict no-progress stop: commit only improving iterates (this is
		// what keeps the committed residual trace monotone, and it also
		// rejects NaN steps).
		if !(math.Abs(rNew) < math.Abs(r)) {
			break
		}
		for i := range x {
			x[i] += alpha * p[i]
		}
		r = rNew
		if resTrace != nil {
			*resTrace = append(*resTrace, math.Abs(r))
		}
		if math.Abs(r) <= o.tol*absY {
			break
		}
		if err := adjoint(r, s); err != nil {
			return pass, err
		}
		gammaNew := 0.0
		for _, v := range s {
			gammaNew += v * v
		}
		if gammaNew == 0 {
			break
		}
		beta := gammaNew / gamma
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	return pass, nil
}

// run shards the plane's samples across workers, each sample seeded with
// DeriveSeed(seed, j) — the same per-window scheme as LinOp and IterOp.
// countPasses is true only on the optical path: Reference runs no
// optical passes and must not perturb the SolverStats totals.
func (o *CGOp) run(plane *sensor.Image, seed int64, workers int, countPasses bool, newApply func() (passFn, func())) (*sensor.Image, error) {
	if err := checkPlane(o.name, plane); err != nil {
		return nil, err
	}
	if _, _, err := o.OutDims(plane.H, plane.W); err != nil {
		return nil, err
	}
	out := sensor.NewImage(plane.H*o.n, plane.W*o.n, 1)
	err := oc.ShardRange(plane.H*plane.W, workers, func(lo, hi int) error {
		apply, release := newApply()
		defer release()
		sc := o.getScratch()
		defer sc.release()
		shardPasses := uint64(0)
		for j := lo; j < hi; j++ {
			passes, err := o.solve(plane.Pix[j], sc, oc.DeriveSeed(seed, j), apply, nil)
			if err != nil {
				return fmt.Errorf("kernels: %s: sample %d: %w", o.name, j, err)
			}
			shardPasses += uint64(passes)
			x := *sc.x
			wy, wx := j/plane.W, j%plane.W
			for by := 0; by < o.n; by++ {
				for bx := 0; bx < o.n; bx++ {
					out.Pix[(wy*o.n+by)*out.W+wx*o.n+bx] = x[by*o.n+bx]
				}
			}
		}
		if countPasses {
			o.stats.add(shardPasses, uint64(hi-lo))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Apply implements Kernel: every pass runs through the optical core.
func (o *CGOp) Apply(plane *sensor.Image, seed int64, workers int) (*sensor.Image, error) {
	return o.run(plane, seed, workers, true, func() (passFn, func()) {
		fwd, adj := o.fwd.NewApplier(), o.adj.NewApplier()
		apply := func(pm *oc.ProgrammedMatrix, dst, in []float64, seed int64) error {
			if pm == o.fwd {
				return fwd.ApplySeededInto(dst, in, seed)
			}
			return adj.ApplySeededInto(dst, in, seed)
		}
		return apply, func() {
			fwd.Release()
			adj.Release()
		}
	})
}

// exactPass is the exact-arithmetic pass executor Reference (and the
// white-box convergence tests) use: the real-valued CA row at the
// programmed matrices' w/wmax normalisation.
func (o *CGOp) exactPass(pm *oc.ProgrammedMatrix, dst, in []float64, _ int64) error {
	if pm == o.fwd {
		sum := 0.0
		for i, v := range o.w {
			sum += v / o.wmax * in[i]
		}
		dst[0] = sum
		return nil
	}
	for i, v := range o.w {
		dst[i] = v / o.wmax * in[0]
	}
	return nil
}

// Reference implements Kernel: the same CGNR loop in exact float
// arithmetic against the real-valued CA weights. The rank-1 CA system
// converges in one exact iteration to the least-squares solution
// w·y/‖w‖².
func (o *CGOp) Reference(plane *sensor.Image) (*sensor.Image, error) {
	return o.run(plane, 0, 1, false, func() (passFn, func()) {
		return o.exactPass, func() {}
	})
}
