// Direct (factorized) least-squares reconstruction: the exact solve of
// the per-window Gram system, generalized beyond the rank-1
// block-diagonal CA case.
//
// A sensing configuration compresses each block of d = block² pixels x
// into m = k² measurements y = Φx (Φ is m x d, m <= d, rows linearly
// independent). The minimum-norm least-squares inverse is
//
//	x̂ = Φᵀ (Φ Φᵀ)⁻¹ y
//
// and because Φ is fixed per configuration, the m x m Gram system
// G = ΦΦᵀ can be factorized ONCE at kernel construction: Gaussian
// elimination with partial pivoting solves G·Mᵀ = Φ for the combined
// operator M = Φᵀ G⁻¹ (d x m), which is then programmed onto the MR
// banks as an ordinary windowed LinOp. Every window and every frame
// reuses that one factorization — reconstruction costs exactly one
// optical pass per measurement window, the same shape as every other
// 300+ FPS kernel, instead of the Landweber solver's 2·iters alternating
// passes.
//
// The default CA is the rank-1 special case: one weight row w per
// disjoint N x N block, G = ‖w‖² (1 x 1), M = wᵀ/‖w‖². NewGramSolver
// accepts any full-row-rank Φ, so overlapping/multi-row sensing
// configurations — windows of k² measurements whose sensing rows share
// pixels — solve exactly too, which the closed-form `reconstruct`
// kernel's per-sample scalar division cannot express.
package kernels

import (
	"fmt"
	"math"

	"lightator/internal/oc"
)

// solveLinear solves the dense linear system g·X = b by Gaussian
// elimination with partial pivoting, for n x n g and a batch of
// right-hand-side columns given as b (n rows x nrhs columns). Both
// inputs are copied, not mutated. A (numerically) singular system is an
// error — for a Gram matrix that means linearly dependent sensing rows.
func solveLinear(g, b [][]float64) ([][]float64, error) {
	n := len(g)
	if n == 0 {
		return nil, fmt.Errorf("kernels: empty linear system")
	}
	nrhs := len(b[0])
	// Augmented working copy: [g | b], one row at a time.
	aug := make([][]float64, n)
	for i := range aug {
		if len(g[i]) != n {
			return nil, fmt.Errorf("kernels: system matrix row %d has %d columns, want %d", i, len(g[i]), n)
		}
		if len(b[i]) != nrhs {
			return nil, fmt.Errorf("kernels: right-hand side row %d has %d columns, want %d", i, len(b[i]), nrhs)
		}
		aug[i] = make([]float64, n+nrhs)
		copy(aug[i][:n], g[i])
		copy(aug[i][n:], b[i])
	}
	// Forward elimination with partial pivoting (the batched
	// Gaussian-elimination idiom: pivot, swap, eliminate below).
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) == 0 {
			return nil, fmt.Errorf("kernels: singular Gram system (column %d has no pivot): sensing rows are linearly dependent", col)
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		p := aug[col][col]
		for r := col + 1; r < n; r++ {
			f := aug[r][col] / p
			if f == 0 {
				continue
			}
			aug[r][col] = 0
			for c := col + 1; c < n+nrhs; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	// Back substitution over every right-hand-side column.
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, nrhs)
	}
	for row := n - 1; row >= 0; row-- {
		for c := 0; c < nrhs; c++ {
			sum := aug[row][n+c]
			for k := row + 1; k < n; k++ {
				sum -= aug[row][k] * x[k][c]
			}
			x[row][c] = sum / aug[row][row]
		}
	}
	return x, nil
}

// gramInverseOperator factorizes the Gram system of a sensing matrix phi
// (m rows x d columns, full row rank) and returns the combined
// minimum-norm least-squares operator M = Φᵀ(ΦΦᵀ)⁻¹ as d rows of m
// columns — the matrix a direct-reconstruction kernel programs once.
func gramInverseOperator(phi [][]float64) ([][]float64, error) {
	m := len(phi)
	if m == 0 || len(phi[0]) == 0 {
		return nil, fmt.Errorf("kernels: empty sensing matrix")
	}
	d := len(phi[0])
	if m > d {
		return nil, fmt.Errorf("kernels: sensing matrix has more rows (%d) than pixels (%d); the Gram system cannot be full rank", m, d)
	}
	for r, row := range phi {
		if len(row) != d {
			return nil, fmt.Errorf("kernels: sensing matrix row %d has %d columns, want %d", r, len(row), d)
		}
	}
	gram := make([][]float64, m)
	for i := range gram {
		gram[i] = make([]float64, m)
		for j := range gram[i] {
			sum := 0.0
			for c := 0; c < d; c++ {
				sum += phi[i][c] * phi[j][c]
			}
			gram[i][j] = sum
		}
	}
	// G is symmetric, so M = ΦᵀG⁻¹ satisfies G·Mᵀ = Φ: one factorization
	// solve with d right-hand-side columns yields Mᵀ (m x d) directly.
	mt, err := solveLinear(gram, phi)
	if err != nil {
		return nil, err
	}
	op := make([][]float64, d)
	for r := range op {
		op[r] = make([]float64, m)
		for c := 0; c < m; c++ {
			op[r][c] = mt[c][r]
		}
	}
	return op, nil
}

// NewGramSolver builds an exact direct least-squares reconstruction
// kernel for an arbitrary per-window sensing matrix phi (m = k² rows of
// d = block² columns, full row rank): the Gram system ΦΦᵀ is factorized
// once here, and the combined operator Φᵀ(ΦΦᵀ)⁻¹ is programmed as a
// windowed LinOp that expands every k x k window of measurements into
// its block x block pixel block with a single optical pass. stride and
// pad follow LinOp semantics (stride == k, pad == 0 is the disjoint
// window tiling of a block-structured sensing configuration).
func NewGramSolver(core *oc.Core, name, desc string, phi [][]float64, k, stride, pad int) (*LinOp, error) {
	if k < 1 {
		return nil, fmt.Errorf("kernels: %s: window side %d < 1", name, k)
	}
	if len(phi) != k*k {
		return nil, fmt.Errorf("kernels: %s: sensing matrix has %d rows, want k²=%d measurements per window", name, len(phi), k*k)
	}
	d := 0
	if len(phi) > 0 {
		d = len(phi[0])
	}
	block := int(math.Round(math.Sqrt(float64(d))))
	if d == 0 || block*block != d {
		return nil, fmt.Errorf("kernels: %s: sensing matrix has %d columns, want a square pixel block", name, d)
	}
	op, err := gramInverseOperator(phi)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", name, err)
	}
	return NewLinOp(core, name, desc, op, k, stride, pad, block, 1)
}

// NewReconstructDirect builds the direct least-squares reconstruction
// kernel for the built-in CA: the rank-1 sensing row w per disjoint
// N x N block, factorized through the same Gram machinery as any
// multi-row configuration. One optical pass per compressed sample —
// exact where `reconstruct-iter` spends 2·iters alternating passes
// converging to the same fixed point.
func NewReconstructDirect(core *oc.Core, poolN int) (Kernel, error) {
	w, _, _, err := caGeometry(poolN)
	if err != nil {
		return nil, err
	}
	return NewGramSolver(core, "reconstruct-direct",
		fmt.Sprintf("direct least-squares reconstruction: the CA Gram system factorized once, each compressed sample expanded to its %dx%d block in one optical pass", poolN, poolN),
		[][]float64{w}, 1, 1, 0)
}
