package kernels

import (
	"fmt"
	"sort"

	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// Engine is a registry of compressed-domain kernels programmed onto one
// optical core for one CA pooling factor. Construction programs every
// built-in operator's MR banks once; after that the engine is immutable
// and safe for concurrent use (Register is construction-time only).
type Engine struct {
	core    *oc.Core
	poolN   int
	kernels map[string]Kernel
}

// NewEngine builds the registry over the core for a CA pooling factor of
// poolN (even, >= 2 — the compressed plane's provenance). Built-ins:
//
//	reconstruct         closed-form least-squares expansion to the full plane
//	reconstruct-direct  exact least-squares via the factorized CA Gram system
//	reconstruct-iter    Landweber iterative reconstruction (optical fwd/adjoint)
//	reconstruct-cg      CGNR iterative reconstruction with convergence stopping
//	edge                3x3 Laplacian edge detector (signed output)
//	downsample2x        2x2 average pooling, stride 2 (compounds the CA ratio)
//	denoise             3x3 Gaussian blur
//	sharpen             3x3 unsharp mask, built through the generic BlockConv path
func NewEngine(core *oc.Core, poolN int) (*Engine, error) {
	if core == nil {
		return nil, fmt.Errorf("kernels: engine needs an optical core")
	}
	e := &Engine{core: core, poolN: poolN, kernels: make(map[string]Kernel)}

	rec, err := NewReconstruct(core, poolN)
	if err != nil {
		return nil, err
	}
	direct, err := NewReconstructDirect(core, poolN)
	if err != nil {
		return nil, err
	}
	it, err := NewReconstructIter(core, poolN, 0)
	if err != nil {
		return nil, err
	}
	cg, err := NewReconstructCG(core, poolN, 0, 0)
	if err != nil {
		return nil, err
	}
	edge, err := NewBlockConv(core, "edge",
		"3x3 Laplacian edge detector on the compressed plane (signed output)",
		[][]float64{{0, -1, 0}, {-1, 4, -1}, {0, -1, 0}}, 1, 1)
	if err != nil {
		return nil, err
	}
	down, err := NewBlockConv(core, "downsample2x",
		"2x2 average pooling, stride 2: compounds the CA compression ratio",
		[][]float64{{0.25, 0.25}, {0.25, 0.25}}, 2, 0)
	if err != nil {
		return nil, err
	}
	den, err := NewBlockConv(core, "denoise",
		"3x3 Gaussian blur on the compressed plane",
		[][]float64{{1. / 16, 2. / 16, 1. / 16}, {2. / 16, 4. / 16, 2. / 16}, {1. / 16, 2. / 16, 1. / 16}}, 1, 1)
	if err != nil {
		return nil, err
	}
	sharp, err := NewBlockConv(core, "sharpen",
		"3x3 unsharp mask on the compressed plane",
		[][]float64{{0, -1, 0}, {-1, 5, -1}, {0, -1, 0}}, 1, 1)
	if err != nil {
		return nil, err
	}
	for _, k := range []Kernel{rec, direct, it, cg, edge, down, den, sharp} {
		if err := e.Register(k); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// NewBlockConv programs a single-channel block convolution: a square
// spatial kernel k applied over the compressed plane with the given
// stride and zero padding. Entries may lie outside [-1,1]; the LinOp
// constructor normalises the programmed matrix and restores the factor
// digitally.
func NewBlockConv(core *oc.Core, name, desc string, kern [][]float64, stride, pad int) (Kernel, error) {
	side := len(kern)
	if side == 0 {
		return nil, fmt.Errorf("kernels: %s: empty convolution kernel", name)
	}
	flat := make([]float64, 0, side*side)
	for r, row := range kern {
		if len(row) != side {
			return nil, fmt.Errorf("kernels: %s: convolution kernel row %d has %d entries, want %d (square)", name, r, len(row), side)
		}
		flat = append(flat, row...)
	}
	return NewLinOp(core, name, desc, [][]float64{flat}, side, stride, pad, 1, 1)
}

// Register adds a kernel under its name; names are unique.
func (e *Engine) Register(k Kernel) error {
	name := k.Name()
	if name == "" {
		return fmt.Errorf("kernels: cannot register a kernel with an empty name")
	}
	if _, ok := e.kernels[name]; ok {
		return fmt.Errorf("kernels: kernel %q already registered", name)
	}
	e.kernels[name] = k
	return nil
}

// Kernel resolves a registered kernel by name.
func (e *Engine) Kernel(name string) (Kernel, error) {
	k, ok := e.kernels[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q (known: %v)", name, e.Names())
	}
	return k, nil
}

// Names lists the registered kernels, sorted.
func (e *Engine) Names() []string {
	names := make([]string, 0, len(e.kernels))
	for name := range e.kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PoolN reports the CA pooling factor the engine was built for.
func (e *Engine) PoolN() int { return e.poolN }

// Process is the one-call convenience: resolve the kernel and apply it.
func (e *Engine) Process(name string, plane *sensor.Image, seed int64, workers int) (*sensor.Image, error) {
	k, err := e.Kernel(name)
	if err != nil {
		return nil, err
	}
	return k.Apply(plane, seed, workers)
}
