package kernels_test

import (
	"fmt"
	"testing"

	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// reconSolvers is the cross-solver equivalence set: four kernels that
// must all compute the same least-squares reconstruction x̂ = wy/‖w‖².
var reconSolvers = []string{"reconstruct", "reconstruct-direct", "reconstruct-iter", "reconstruct-cg"}

// recompressCA applies the CA sensing matrix Φ to a reconstructed plane:
// one weight row w per disjoint pool x pool block. Used to check the
// defining least-squares property Φ x̂ = y.
func recompressCA(t *testing.T, x *sensor.Image, pool int) *sensor.Image {
	t.Helper()
	w, err := oc.CAWeightsBayer(pool)
	if err != nil {
		t.Fatal(err)
	}
	out := sensor.NewImage(x.H/pool, x.W/pool, 1)
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			sum, i := 0.0, 0
			for dy := 0; dy < pool; dy++ {
				for dx := 0; dx < pool; dx++ {
					sum += w[i] * x.Pix[(oy*pool+dy)*x.W+ox*pool+dx]
					i++
				}
			}
			out.Pix[oy*out.W+ox] = sum
		}
	}
	return out
}

// TestCrossSolverEquivalence is the tentpole property suite: all four
// reconstruction solvers — closed-form, factorized direct, Landweber,
// and CGNR — compute the same least-squares solution. On randomized
// planes with real CA provenance, across CAPool ∈ {4, 8, 16}, all three
// fidelities and multiple worker counts:
//
//  1. the exact references agree pairwise to float precision,
//  2. the reference satisfies Φ x̂ = y to float precision,
//  3. every solver's optical output matches the shared exact solution
//     within the per-fidelity tolerance (which also bounds pairwise
//     optical cross-solver disagreement by twice the tolerance),
//  4. every optical output satisfies the re-compression property
//     Φ x̂ = y within the per-fidelity tolerance.
func TestCrossSolverEquivalence(t *testing.T) {
	// Bounds sit 1.5–2x above the measured worst-case optical-vs-exact
	// error at 8/8 bits (quantization only in Ideal; analog transfer and
	// seeded noise stack on top in the physical fidelities — the noisy
	// worst case is reconstruct-iter, whose 24 noisy passes accumulate to
	// ~0.13).
	fidTol := []struct {
		fid oc.Fidelity
		tol float64
	}{
		{oc.Ideal, 0.02},
		{oc.Physical, 0.06},
		{oc.PhysicalNoisy, 0.2},
	}
	for _, ft := range fidTol {
		core := newCore(t, 8, 8, ft.fid)
		for _, pool := range []int{4, 8, 16} {
			t.Run(fmt.Sprintf("%v/pool%d", ft.fid, pool), func(t *testing.T) {
				eng, err := kernels.NewEngine(core, pool)
				if err != nil {
					t.Fatal(err)
				}
				plane := caPlane(t, core, 48, 48, pool, int64(9000+pool))

				// (1) + (2): the exact references all solve the same system.
				refs := make(map[string]*sensor.Image, len(reconSolvers))
				for _, name := range reconSolvers {
					k, err := eng.Kernel(name)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := k.Reference(plane)
					if err != nil {
						t.Fatalf("%s reference: %v", name, err)
					}
					refs[name] = ref
				}
				base := refs[reconSolvers[0]]
				for _, name := range reconSolvers[1:] {
					if d := maxAbsDiff(t, refs[name], base); d > 1e-9 {
						t.Errorf("references diverge: %s vs %s max |diff| = %g > 1e-9",
							name, reconSolvers[0], d)
					}
				}
				if d := maxAbsDiff(t, recompressCA(t, base, pool), plane); d > 1e-9 {
					t.Errorf("reference violates Φx̂ = y: max |diff| = %g > 1e-9", d)
				}

				// (3) + (4): the optical paths agree with the shared exact
				// solution and keep the least-squares property, at every
				// worker count.
				for _, workers := range []int{1, 4} {
					for _, name := range reconSolvers {
						k, err := eng.Kernel(name)
						if err != nil {
							t.Fatal(err)
						}
						got, err := k.Apply(plane, 0x5eed, workers)
						if err != nil {
							t.Fatalf("%s workers=%d: %v", name, workers, err)
						}
						if d := maxAbsDiff(t, got, refs[name]); d > ft.tol {
							t.Errorf("%s workers=%d: optical vs exact max |diff| = %g > %g",
								name, workers, d, ft.tol)
						}
						if d := maxAbsDiff(t, recompressCA(t, got, pool), plane); d > ft.tol {
							t.Errorf("%s workers=%d: Φx̂ vs y max |diff| = %g > %g",
								name, workers, d, ft.tol)
						}
					}
				}
			})
		}
	}
}
