// Package kernels is Lightator's compressed-domain image-processing
// subsystem: the layer that makes the paper's "versatile image
// processing" claim concrete. Every kernel is a matrix operator composed
// with the Compressive Acquisitor's sensing matrix — it consumes the CA
// measurement plane directly, never a reconstructed frame — and executes
// through the optical core's MVM path (oc.ProgrammedMatrix), so kernels
// inherit the analog fidelity model, the per-window seeded determinism of
// CompressSeeded, and the batch sharding of MatVecBatch.
//
// Two operator shapes cover the built-in kernels:
//
//   - Windowed linear operators (LinOp): a small matrix programmed once
//     onto the MR banks and streamed over sliding windows of the
//     compressed plane — edge detection, denoising, 2x downsampling,
//     arbitrary block convolution, and closed-form least-squares
//     reconstruction (the adjoint of the CA matrix over its Gram factor).
//
//   - Iterative operators (IterOp): Landweber reconstruction, which
//     alternates optical applications of the CA forward matrix and its
//     adjoint, accumulating digitally between passes.
//
// Determinism contract: Apply(plane, seed, workers) is bit-identical for
// any worker count and any interleaving — window j of the output draws
// its noise from oc.DeriveSeed(seed, j), never from shared state. See
// docs/KERNELS.md for the math and the serving integration.
package kernels

import (
	"fmt"

	"lightator/internal/oc"
	"lightator/internal/sensor"
	"lightator/internal/trace"
)

// Kernel is one compressed-domain operator. Implementations must be safe
// for concurrent use after construction (the programmed MR banks are
// immutable) and must honour the package determinism contract.
type Kernel interface {
	// Name is the registry key (and the /v1/process "kernel" field).
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// OutDims returns the output plane dimensions for an h x w compressed
	// plane, or an error when the plane is too small for the operator.
	OutDims(h, w int) (int, int, error)
	// Apply runs the operator through the optical core. The input is a
	// single-channel compressed plane with values in [0, 1]; the output
	// plane holds raw operator results, which may lie outside [0, 1]
	// (e.g. signed edge responses). Window j draws its noise from
	// oc.DeriveSeed(seed, j), so the result is bit-identical for any
	// worker count.
	Apply(plane *sensor.Image, seed int64, workers int) (*sensor.Image, error)
	// Reference computes the same operator in exact float arithmetic (no
	// quantization, no analog effects) for verification.
	Reference(plane *sensor.Image) (*sensor.Image, error)
	// Ops returns the modeled analog op counts of one Apply over an
	// h x w compressed plane — the observability layer's per-request
	// accounting (see internal/trace). Derived from the programmed
	// geometry, never measured, so it is cheap and exact.
	Ops(h, w int) (trace.OpCounts, error)
}

// LinOp is a windowed linear operator: a (block² x k²) matrix applied to
// every k x k window of the compressed plane with the given stride and
// zero padding. Each window produces block x block output samples laid
// out as a block, so block == 1 is an ordinary convolution and block == N
// expands every input sample into an N x N patch (reconstruction).
type LinOp struct {
	name   string
	desc   string
	k      int // window side
	stride int
	pad    int // zero padding on each input edge
	block  int // output block side per window

	// op is the exact real-valued operator (block² rows x k² columns,
	// window-row-major); Reference uses it directly.
	op [][]float64
	// post is the caller's exact digital post-scale (Reference applies
	// exactly this); scale additionally folds in the [-1,1] normalisation
	// factor the MR banks required and is applied to optical readouts.
	post  float64
	scale float64
	pm    *oc.ProgrammedMatrix
}

// NewLinOp programs a windowed linear operator onto the core. op must
// have block² rows of k² columns. The programmed matrix is always
// normalised so its largest magnitude sits at full scale (±1) and the
// factor is restored digitally — the standard split between the analog
// MVM and the digital readout chain, which both admits entries outside
// [-1,1] and keeps small-entry operators (e.g. the CA adjoint, whose
// weights shrink as 1/N²) from drowning in weight quantization.
// postScale is an additional exact digital factor (1 for plain
// convolutions).
func NewLinOp(core *oc.Core, name, desc string, op [][]float64, k, stride, pad, block int, postScale float64) (*LinOp, error) {
	if k < 1 || stride < 1 || pad < 0 || block < 1 {
		return nil, fmt.Errorf("kernels: %s: invalid geometry k=%d stride=%d pad=%d block=%d", name, k, stride, pad, block)
	}
	if len(op) != block*block {
		return nil, fmt.Errorf("kernels: %s: operator has %d rows, want block²=%d", name, len(op), block*block)
	}
	maxAbs := 0.0
	for r, row := range op {
		if len(row) != k*k {
			return nil, fmt.Errorf("kernels: %s: operator row %d has %d columns, want k²=%d", name, r, len(row), k*k)
		}
		for _, v := range row {
			if v < -maxAbs || v > maxAbs {
				if v < 0 {
					maxAbs = -v
				} else {
					maxAbs = v
				}
			}
		}
	}
	if maxAbs == 0 {
		return nil, fmt.Errorf("kernels: %s: all-zero operator", name)
	}
	programmed := make([][]float64, len(op))
	for r, row := range op {
		programmed[r] = make([]float64, len(row))
		for c, v := range row {
			programmed[r][c] = v / maxAbs
		}
	}
	scale := postScale * maxAbs
	pm, err := core.Program(programmed)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", name, err)
	}
	// Each kernel's programmed bank is a health component: fault plans
	// target it as "kernel:<name>" and its ABFT/recovery counters surface
	// under that label.
	pm.SetLabel("kernel:" + name)
	return &LinOp{
		name: name, desc: desc,
		k: k, stride: stride, pad: pad, block: block,
		op: op, post: postScale, scale: scale, pm: pm,
	}, nil
}

// Name implements Kernel.
func (o *LinOp) Name() string { return o.name }

// Description implements Kernel.
func (o *LinOp) Description() string { return o.desc }

// Degraded reports whether the kernel's programmed bank is serving
// degraded output (rows retired to the digital fallback, or unrecovered
// ABFT detections).
func (o *LinOp) Degraded() bool { return o.pm.Degraded() }

// winDims returns the window-grid dimensions for an h x w plane.
func (o *LinOp) winDims(h, w int) (int, int, error) {
	wh := (h+2*o.pad-o.k)/o.stride + 1
	ww := (w+2*o.pad-o.k)/o.stride + 1
	if wh < 1 || ww < 1 {
		return 0, 0, fmt.Errorf("kernels: %s: plane %dx%d too small for %dx%d windows (pad %d)", o.name, h, w, o.k, o.k, o.pad)
	}
	return wh, ww, nil
}

// OutDims implements Kernel.
func (o *LinOp) OutDims(h, w int) (int, int, error) {
	wh, ww, err := o.winDims(h, w)
	if err != nil {
		return 0, 0, err
	}
	return wh * o.block, ww * o.block, nil
}

// Ops implements Kernel: every window streams through the programmed
// (block² x k²) matrix once — block² row readouts and digitizations,
// each row holding k² runtime-DAC-driven coefficients.
func (o *LinOp) Ops(h, w int) (trace.OpCounts, error) {
	wh, ww, err := o.winDims(h, w)
	if err != nil {
		return trace.OpCounts{}, err
	}
	windows := int64(wh) * int64(ww)
	rows := int64(o.pm.Rows())
	cols := int64(o.pm.Cols())
	return trace.OpCounts{
		MVMRows:        windows * rows,
		DACSettles:     windows * rows * cols,
		ADCConversions: windows * rows,
		MRCoeffHolds:   windows * rows * cols,
		ABFTChecks:     o.pm.ABFTChecksPer(windows),
	}, nil
}

// checkPlane rejects inputs the window walk would misread.
func checkPlane(name string, plane *sensor.Image) error {
	if plane == nil || plane.C != 1 {
		c := 0
		if plane != nil {
			c = plane.C
		}
		return fmt.Errorf("kernels: %s: input must be a single-channel compressed plane, have %d channels", name, c)
	}
	return nil
}

// window extracts the k x k window whose top-left input coordinate is
// (y0, x0) (possibly negative under padding), zero-filling out-of-plane
// taps, into dst.
func (o *LinOp) window(plane *sensor.Image, y0, x0 int, dst []float64) {
	i := 0
	for dy := 0; dy < o.k; dy++ {
		for dx := 0; dx < o.k; dx++ {
			y, x := y0+dy, x0+dx
			if y < 0 || y >= plane.H || x < 0 || x >= plane.W {
				dst[i] = 0
			} else {
				dst[i] = plane.Pix[y*plane.W+x]
			}
			i++
		}
	}
}

// place writes one window's block of outputs (scaled by s) into out.
func (o *LinOp) place(out *sensor.Image, wy, wx int, y []float64, s float64) {
	for by := 0; by < o.block; by++ {
		for bx := 0; bx < o.block; bx++ {
			out.Pix[(wy*o.block+by)*out.W+wx*o.block+bx] = y[by*o.block+bx] * s
		}
	}
}

// Apply implements Kernel: the window walk streams each window through
// the programmed matrix via oc.ApplySeededInto with the window's own
// child seed — windows shard across workers with per-window noise
// streams, exactly as the former materialize-then-ApplyBatchSeeded walk
// did (window j still draws from oc.DeriveSeed(seed, j)), but without
// building the full window table: each shard checks one pooled window,
// destination buffer and Applier out for its whole range, so per-window
// work allocates nothing — one Apply call allocates only the output
// plane and per-shard bookkeeping.
func (o *LinOp) Apply(plane *sensor.Image, seed int64, workers int) (*sensor.Image, error) {
	if err := checkPlane(o.name, plane); err != nil {
		return nil, err
	}
	wh, ww, err := o.winDims(plane.H, plane.W)
	if err != nil {
		return nil, err
	}
	out := sensor.NewImage(wh*o.block, ww*o.block, 1)
	err = oc.ShardRange(wh*ww, workers, func(lo, hi int) error {
		ap := o.pm.NewApplier()
		defer ap.Release()
		win := oc.GetScratch(o.k * o.k)
		y := oc.GetScratch(o.pm.Rows())
		defer oc.PutScratch(win)
		defer oc.PutScratch(y)
		for j := lo; j < hi; j++ {
			wy, wx := j/ww, j%ww
			o.window(plane, wy*o.stride-o.pad, wx*o.stride-o.pad, *win)
			if err := ap.ApplySeededInto(*y, *win, oc.DeriveSeed(seed, j)); err != nil {
				return fmt.Errorf("kernels: %s: window %d: %w", o.name, j, err)
			}
			o.place(out, wy, wx, *y, o.scale)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WindowedOp is the optional capability of kernels whose output
// decomposes into independent windows with a local receptive field —
// the hook the streaming session layer (internal/session) uses for
// block-level temporal reuse: when consecutive compressed planes differ
// only inside some blocks, only the windows whose receptive fields
// touch those blocks need recomputing; every other window's output is
// carried forward bit-exactly (window outputs depend only on their own
// input rectangle, and deterministic fidelities are seed-independent).
type WindowedOp interface {
	Kernel
	// Windows returns the window-grid dimensions for an h x w input
	// plane; window (wy, wx) is index j = wy*ww + wx.
	Windows(h, w int) (wh, ww int, err error)
	// WindowInput returns the half-open input rectangle
	// [y0, y1) x [x0, x1) window (wy, wx) reads. Padding may push the
	// rectangle outside the plane; out-of-plane taps are zero and carry
	// no content, so callers may clip freely.
	WindowInput(wy, wx int) (y0, x0, y1, x1 int)
	// ApplyWindows recomputes only the windows with sel[j] true into
	// out (which must have the OutDims shape for plane), leaving every
	// other output sample untouched. The noise derivation matches
	// Apply exactly — window j draws from oc.DeriveSeed(seed, j) — so
	// recomputed windows are bit-identical to a full Apply for any
	// worker count.
	ApplyWindows(out, plane *sensor.Image, seed int64, workers int, sel []bool) error
}

// Windows implements WindowedOp.
func (o *LinOp) Windows(h, w int) (int, int, error) { return o.winDims(h, w) }

// WindowInput implements WindowedOp.
func (o *LinOp) WindowInput(wy, wx int) (y0, x0, y1, x1 int) {
	y0 = wy*o.stride - o.pad
	x0 = wx*o.stride - o.pad
	return y0, x0, y0 + o.k, x0 + o.k
}

// ApplyWindows implements WindowedOp: the same sharded window walk as
// Apply, skipping unselected windows.
func (o *LinOp) ApplyWindows(out, plane *sensor.Image, seed int64, workers int, sel []bool) error {
	if err := checkPlane(o.name, plane); err != nil {
		return err
	}
	wh, ww, err := o.winDims(plane.H, plane.W)
	if err != nil {
		return err
	}
	if len(sel) != wh*ww {
		return fmt.Errorf("kernels: %s: selection covers %d windows, plane has %d", o.name, len(sel), wh*ww)
	}
	if out == nil || out.C != 1 || out.H != wh*o.block || out.W != ww*o.block {
		return fmt.Errorf("kernels: %s: output plane must be %dx%dx1", o.name, wh*o.block, ww*o.block)
	}
	return oc.ShardRange(wh*ww, workers, func(lo, hi int) error {
		ap := o.pm.NewApplier()
		defer ap.Release()
		win := oc.GetScratch(o.k * o.k)
		y := oc.GetScratch(o.pm.Rows())
		defer oc.PutScratch(win)
		defer oc.PutScratch(y)
		for j := lo; j < hi; j++ {
			if !sel[j] {
				continue
			}
			wy, wx := j/ww, j%ww
			o.window(plane, wy*o.stride-o.pad, wx*o.stride-o.pad, *win)
			if err := ap.ApplySeededInto(*y, *win, oc.DeriveSeed(seed, j)); err != nil {
				return fmt.Errorf("kernels: %s: window %d: %w", o.name, j, err)
			}
			o.place(out, wy, wx, *y, o.scale)
		}
		return nil
	})
}

// Reference implements Kernel with the exact real-valued operator.
func (o *LinOp) Reference(plane *sensor.Image) (*sensor.Image, error) {
	if err := checkPlane(o.name, plane); err != nil {
		return nil, err
	}
	wh, ww, err := o.winDims(plane.H, plane.W)
	if err != nil {
		return nil, err
	}
	out := sensor.NewImage(wh*o.block, ww*o.block, 1)
	win := make([]float64, o.k*o.k)
	y := make([]float64, o.block*o.block)
	for wy := 0; wy < wh; wy++ {
		for wx := 0; wx < ww; wx++ {
			o.window(plane, wy*o.stride-o.pad, wx*o.stride-o.pad, win)
			for r, row := range o.op {
				sum := 0.0
				for c, v := range row {
					sum += v * win[c]
				}
				y[r] = sum
			}
			o.place(out, wy, wx, y, o.post)
		}
	}
	return out, nil
}
