package kernels_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// builtinTol is the single source of truth for the built-in kernel set
// and each kernel's optical-vs-reference tolerance. It is checked in
// BOTH directions: TestEngineRegistry fails when the engine registers a
// kernel with no entry here (a new kernel cannot silently ship without a
// tolerance, i.e. untested), and when an entry names a kernel the engine
// no longer registers. Bounds sit ~2x above the measured 8-bit
// quantization error (flat across CR thanks to the full-scale weight
// normalisation); a scale or seeding regression trips them immediately.
var builtinTol = map[string]float64{
	"reconstruct":        0.01,
	"reconstruct-direct": 0.01,
	"reconstruct-iter":   0.015,
	"reconstruct-cg":     0.015,
	"edge":               0.12,
	"sharpen":            0.1,
	"denoise":            0.01,
	"downsample2x":       0.005,
}

// builtinNames returns the expected registry contents, derived from the
// tolerance table so the two can never drift apart.
func builtinNames() []string {
	names := make([]string, 0, len(builtinTol))
	for name := range builtinTol {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// newCore builds a core or fails the test.
func newCore(t *testing.T, wBits, aBits int, fid oc.Fidelity) *oc.Core {
	t.Helper()
	core, err := oc.NewCore(wBits, aBits, fid)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// caPlane produces a compressed plane end-to-end: a deterministic RGB
// scene captured by the ADC-less sensor and compressed by the CA at the
// given pooling factor — the exact provenance the kernels consume in the
// pipeline.
func caPlane(t *testing.T, core *oc.Core, rows, cols, pool int, seed int64) *sensor.Image {
	t.Helper()
	arr, err := sensor.NewArray(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	scene := sensor.NewImage(rows, cols, 3)
	for i := range scene.Pix {
		scene.Pix[i] = rng.Float64()
	}
	frame, err := arr.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	acq, err := oc.NewAcquisitor(core, pool)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := acq.CompressSeeded(frame, seed)
	if err != nil {
		t.Fatal(err)
	}
	return plane
}

// synthPlane builds a direct synthetic compressed plane in [0,1].
func synthPlane(h, w int, seed int64) *sensor.Image {
	rng := rand.New(rand.NewSource(seed))
	p := sensor.NewImage(h, w, 1)
	for i := range p.Pix {
		p.Pix[i] = rng.Float64()
	}
	return p
}

// maxAbsDiff returns the largest per-sample difference, failing on any
// dimension mismatch.
func maxAbsDiff(t *testing.T, a, b *sensor.Image) float64 {
	t.Helper()
	if a.H != b.H || a.W != b.W || a.C != b.C {
		t.Fatalf("dims differ: %dx%dx%d vs %dx%dx%d", a.H, a.W, a.C, b.H, b.W, b.C)
	}
	max := 0.0
	for i := range a.Pix {
		if d := math.Abs(a.Pix[i] - b.Pix[i]); d > max {
			max = d
		}
	}
	return max
}

// TestKernelsMatchReference is the satellite acceptance test: every
// registered kernel's compressed-domain (optical) output matches its
// exact dense-arithmetic reference within tolerance, at compression
// ratios CAPool ∈ {4, 8, 16}, on planes produced by the real CA path.
// The core runs 8-bit Ideal so the tolerance isolates quantization from
// analog effects; the full-scale weight normalisation keeps the error
// CR-independent (without it the CA adjoint's 1/N² entries would drown
// in weight quantization at CR 16).
func TestKernelsMatchReference(t *testing.T) {
	core := newCore(t, 8, 8, oc.Ideal)
	for _, pool := range []int{4, 8, 16} {
		eng, err := kernels.NewEngine(core, pool)
		if err != nil {
			t.Fatal(err)
		}
		plane := caPlane(t, core, 64, 64, pool, int64(1000+pool))
		for _, name := range eng.Names() {
			bound, ok := builtinTol[name]
			if !ok {
				t.Fatalf("kernel %q has no tolerance entry in builtinTol; every registered kernel must be covered", name)
			}
			k, err := eng.Kernel(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.Apply(plane, 42, 1)
			if err != nil {
				t.Fatalf("pool %d %s: %v", pool, name, err)
			}
			want, err := k.Reference(plane)
			if err != nil {
				t.Fatalf("pool %d %s reference: %v", pool, name, err)
			}
			wantH, wantW, err := k.OutDims(plane.H, plane.W)
			if err != nil {
				t.Fatalf("pool %d %s: %v", pool, name, err)
			}
			if got.H != wantH || got.W != wantW {
				t.Fatalf("pool %d %s: output %dx%d, OutDims says %dx%d", pool, name, got.H, got.W, wantH, wantW)
			}
			if d := maxAbsDiff(t, got, want); d > bound {
				t.Errorf("pool %d (CR %d): kernel %s diverges from dense reference: max |diff| = %g > %g",
					pool, pool, name, d, bound)
			}
		}
	}
}

// TestReconstructLeastSquares pins the defining least-squares property:
// re-compressing the reconstruction recovers the measurements, Φ x̂ = y
// (exactly for the reference, within quantization for the optical path).
func TestReconstructLeastSquares(t *testing.T) {
	const pool = 4
	core := newCore(t, 8, 8, oc.Ideal)
	rec, err := kernels.NewReconstruct(core, pool)
	if err != nil {
		t.Fatal(err)
	}
	w, err := oc.CAWeightsBayer(pool)
	if err != nil {
		t.Fatal(err)
	}
	plane := synthPlane(8, 8, 5)
	recompress := func(x *sensor.Image) *sensor.Image {
		out := sensor.NewImage(x.H/pool, x.W/pool, 1)
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				sum, i := 0.0, 0
				for dy := 0; dy < pool; dy++ {
					for dx := 0; dx < pool; dx++ {
						sum += w[i] * x.Pix[(oy*pool+dy)*x.W+ox*pool+dx]
						i++
					}
				}
				out.Pix[oy*out.W+ox] = sum
			}
		}
		return out
	}
	ref, err := rec.Reference(plane)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, recompress(ref), plane); d > 1e-12 {
		t.Errorf("reference reconstruction is not a least-squares inverse: Φx̂ vs y max |diff| = %g", d)
	}
	opt, err := rec.Apply(plane, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, recompress(opt), plane); d > 0.02 {
		t.Errorf("optical reconstruction re-compression error %g > 0.02", d)
	}
}

// TestIterConvergesToClosedForm: the Landweber reference converges to the
// closed-form least-squares reference (contraction 0.1 per iteration, 12
// iterations → ~1e-12 of the fixed point).
func TestIterConvergesToClosedForm(t *testing.T) {
	const pool = 4
	core := newCore(t, 8, 8, oc.Ideal)
	rec, err := kernels.NewReconstruct(core, pool)
	if err != nil {
		t.Fatal(err)
	}
	it, err := kernels.NewReconstructIter(core, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	plane := synthPlane(6, 6, 7)
	a, err := rec.Reference(plane)
	if err != nil {
		t.Fatal(err)
	}
	b, err := it.Reference(plane)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, a, b); d > 1e-9 {
		t.Errorf("Landweber reference does not converge to closed form: max |diff| = %g", d)
	}
}

// TestSeededDeterminism is the package determinism contract under the
// race detector: in PhysicalNoisy fidelity, Apply(plane, seed, workers)
// is bit-identical across worker counts and repeated calls, and a
// different seed produces different noise.
func TestSeededDeterminism(t *testing.T) {
	core := newCore(t, 4, 4, oc.PhysicalNoisy)
	eng, err := kernels.NewEngine(core, 4)
	if err != nil {
		t.Fatal(err)
	}
	plane := synthPlane(8, 8, 3)
	for _, name := range eng.Names() {
		k, err := eng.Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := k.Apply(plane, 77, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		parallel, err := k.Apply(plane, 77, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := maxAbsDiff(t, serial, parallel); d != 0 {
			t.Errorf("%s: 4-worker output differs from serial by %g; must be bit-identical", name, d)
		}
		again, err := k.Apply(plane, 77, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := maxAbsDiff(t, serial, again); d != 0 {
			t.Errorf("%s: repeated call differs by %g; must be bit-identical", name, d)
		}
		other, err := k.Apply(plane, 78, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := maxAbsDiff(t, serial, other); d == 0 {
			t.Errorf("%s: seed change left the noisy output unchanged", name)
		}
	}
}

// TestEngineRegistry pins registry semantics: sorted names, unknown
// lookups, and duplicate registration.
func TestEngineRegistry(t *testing.T) {
	core := newCore(t, 4, 4, oc.Ideal)
	eng, err := kernels.NewEngine(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	names := eng.Names()
	want := builtinNames()
	if len(names) != len(want) {
		t.Fatalf("registered kernels %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered kernels %v, want %v", names, want)
		}
	}
	if _, err := eng.Kernel("nope"); err == nil {
		t.Error("unknown kernel lookup succeeded")
	}
	k, err := eng.Kernel("edge")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(k); err == nil {
		t.Error("duplicate registration succeeded")
	}
	custom, err := kernels.NewBlockConv(core, "boxblur", "3x3 box blur",
		[][]float64{{1. / 9, 1. / 9, 1. / 9}, {1. / 9, 1. / 9, 1. / 9}, {1. / 9, 1. / 9, 1. / 9}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(custom); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Process("boxblur", synthPlane(4, 4, 1), 0, 1); err != nil {
		t.Errorf("custom kernel via Process: %v", err)
	}
}

// TestValidation pins the constructor and input error paths.
func TestValidation(t *testing.T) {
	core := newCore(t, 4, 4, oc.Ideal)
	if _, err := kernels.NewBlockConv(core, "ragged", "", [][]float64{{1, 2}, {3}}, 1, 0); err == nil {
		t.Error("ragged convolution kernel accepted")
	}
	if _, err := kernels.NewBlockConv(core, "empty", "", nil, 1, 0); err == nil {
		t.Error("empty convolution kernel accepted")
	}
	if _, err := kernels.NewBlockConv(core, "zero", "", [][]float64{{0}}, 1, 0); err == nil {
		t.Error("all-zero operator accepted")
	}
	if _, err := kernels.NewReconstruct(core, 3); err == nil {
		t.Error("odd pooling factor accepted")
	}
	edge, err := kernels.NewBlockConv(core, "edge", "", [][]float64{{0, -1, 0}, {-1, 4, -1}, {0, -1, 0}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 plane, 3x3 window, no padding: too small.
	if _, err := edge.Apply(synthPlane(2, 2, 1), 0, 1); err == nil {
		t.Error("undersized plane accepted")
	}
	rgb := sensor.NewImage(4, 4, 3)
	if _, err := edge.Apply(rgb, 0, 1); err == nil {
		t.Error("3-channel input accepted")
	}
	// Custom kernels with entries beyond [-1,1] must normalise + rescale.
	big, err := kernels.NewBlockConv(core, "big", "", [][]float64{{-3, 3}, {3, -3}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	plane := synthPlane(4, 4, 2)
	got, err := big.Apply(plane, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := big.Reference(plane)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, got, want); d > 1.2 {
		t.Errorf("out-of-range kernel rescaling off: max |diff| = %g", d)
	}
}
