// Compressed-domain reconstruction: inverting the Compressive
// Acquisitor's sensing matrix per measurement.
//
// The CA compresses each N x N Bayer window with one weight row w
// (oc.CAWeightsBayer), so the sensing matrix Φ is block-diagonal with w
// on every block and the least-squares minimum-norm inverse factors per
// window:
//
//	x̂ = Φᵀ (Φ Φᵀ)⁻¹ y  =  w y / ‖w‖²       (per window, since ΦΦᵀ = ‖w‖² I)
//
// Two kernels compute it. "reconstruct" programs the closed form —
// the adjoint column w over the Gram factor — as a (N² x 1) LinOp.
// "reconstruct-iter" runs Landweber iterations
//
//	x_{t+1} = x_t + τ Φᵀ (y − Φ x_t)
//
// alternating optical applications of the forward row (Φ) and the
// adjoint column (Φᵀ), converging geometrically to the same least-squares
// solution with contraction factor (1 − τ‖w‖²). Both stream activations
// in [0, 1]: the iterate is rescaled by ‖w‖²/max(w) before the forward
// pass (and the readout rescaled back) so the physical [0,1] activation
// range is never exceeded, and the residual stays non-negative because
// the iterate approaches the solution from below.
package kernels

import (
	"fmt"

	"lightator/internal/oc"
	"lightator/internal/sensor"
	"lightator/internal/trace"
)

// caGeometry derives the per-window CA quantities every reconstruction
// kernel needs: the weight row, its Gram factor ‖w‖² and its largest
// entry.
func caGeometry(poolN int) (w []float64, gram, wmax float64, err error) {
	w, err = oc.CAWeightsBayer(poolN)
	if err != nil {
		return nil, 0, 0, err
	}
	for _, v := range w {
		gram += v * v
		if v > wmax {
			wmax = v
		}
	}
	return w, gram, wmax, nil
}

// NewReconstruct builds the closed-form least-squares reconstruction
// kernel for an accelerator whose CA pools N x N windows: each compressed
// sample expands into its N x N block x̂ = w y / ‖w‖², programmed as an
// (N² x 1) operator with the Gram division applied digitally.
func NewReconstruct(core *oc.Core, poolN int) (Kernel, error) {
	w, gram, _, err := caGeometry(poolN)
	if err != nil {
		return nil, err
	}
	op := make([][]float64, len(w))
	for i, v := range w {
		op[i] = []float64{v}
	}
	return NewLinOp(core, "reconstruct",
		fmt.Sprintf("least-squares reconstruction: each compressed sample expands to its %dx%d block via the CA adjoint over the Gram factor", poolN, poolN),
		op, 1, 1, 0, poolN, 1/gram)
}

// IterOp is the Landweber reconstruction kernel: per compressed sample it
// alternates optical forward (Φ, a 1 x N² row) and adjoint (Φᵀ, an
// N² x 1 column) passes, accumulating the iterate digitally.
type IterOp struct {
	name  string
	desc  string
	n     int     // pooling factor == output block side
	iters int     // Landweber iteration count
	tau   float64 // step size; τ‖w‖² < 1 for monotone convergence
	w     []float64
	gram  float64
	wmax  float64
	fwd   *oc.ProgrammedMatrix // 1 x n²: the CA row w
	adj   *oc.ProgrammedMatrix // n² x 1: the CA column wᵀ
	stats solverCounters
}

// DefaultLandweberIters is the default iteration count: with the default
// step the residual contracts by 10x per iteration, so 12 iterations
// reach float64-visible convergence.
const DefaultLandweberIters = 12

// NewReconstructIter builds the Landweber reconstruction kernel. iters
// <= 0 takes DefaultLandweberIters. The step size is fixed at 0.9/‖w‖²,
// which keeps every residual non-negative (required: residuals are
// streamed as light intensities) and contracts the error by 10x per
// iteration.
func NewReconstructIter(core *oc.Core, poolN, iters int) (Kernel, error) {
	if iters <= 0 {
		iters = DefaultLandweberIters
	}
	w, gram, wmax, err := caGeometry(poolN)
	if err != nil {
		return nil, err
	}
	// Both matrices are programmed at full scale (w/wmax) and the factor
	// restored digitally, like LinOp: the CA weights shrink as 1/N², and
	// programming them raw would waste the MR dynamic range.
	norm := make([]float64, len(w))
	adjRows := make([][]float64, len(w))
	for i, v := range w {
		norm[i] = v / wmax
		adjRows[i] = []float64{v / wmax}
	}
	fwd, err := core.Program([][]float64{norm})
	if err != nil {
		return nil, err
	}
	adj, err := core.Program(adjRows)
	if err != nil {
		return nil, err
	}
	// The two banks are separate health components so a fault plan (and
	// the recovery ladder) can address each pass independently.
	fwd.SetLabel("kernel:reconstruct-iter/fwd")
	adj.SetLabel("kernel:reconstruct-iter/adj")
	return &IterOp{
		name: "reconstruct-iter",
		desc: fmt.Sprintf("Landweber least-squares reconstruction: %d alternating optical forward/adjoint passes per %dx%d block", iters, poolN, poolN),
		n:    poolN, iters: iters, tau: 0.9 / gram,
		w: w, gram: gram, wmax: wmax,
		fwd: fwd, adj: adj,
	}, nil
}

// Name implements Kernel.
func (o *IterOp) Name() string { return o.name }

// Description implements Kernel.
func (o *IterOp) Description() string { return o.desc }

// Degraded reports whether either programmed bank is serving degraded
// output (retired rows or unrecovered ABFT detections).
func (o *IterOp) Degraded() bool { return o.fwd.Degraded() || o.adj.Degraded() }

// OutDims implements Kernel.
func (o *IterOp) OutDims(h, w int) (int, int, error) {
	if h < 1 || w < 1 {
		return 0, 0, fmt.Errorf("kernels: %s: empty plane %dx%d", o.name, h, w)
	}
	return h * o.n, w * o.n, nil
}

// Ops implements Kernel: every compressed sample runs iters Landweber
// iterations, each one forward pass (1 row of n² coefficients) and one
// adjoint pass (n² rows of 1 coefficient) — 1+n² row readouts and 2n²
// runtime-DAC coefficient holds per iteration.
func (o *IterOp) Ops(h, w int) (trace.OpCounts, error) {
	if _, _, err := o.OutDims(h, w); err != nil {
		return trace.OpCounts{}, err
	}
	samples := int64(h) * int64(w)
	n2 := int64(o.n) * int64(o.n)
	passes := samples * int64(o.iters)
	return trace.OpCounts{
		MVMRows:        passes * (1 + n2),
		DACSettles:     passes * 2 * n2,
		ADCConversions: passes * (1 + n2),
		MRCoeffHolds:   passes * 2 * n2,
		ABFTChecks:     o.fwd.ABFTChecksPer(passes) + o.adj.ABFTChecksPer(passes),
	}, nil
}

// iterScratch is one shard's worth of pooled Landweber state: the n²
// iterate x, the rescaled drive xs, the 1-element forward readout and
// residual, and the n² adjoint readout. All buffers come from the shared
// oc scratch arena, so the steady-state loop allocates nothing.
type iterScratch struct {
	x, xs, fwd, res, adj *[]float64
}

func (o *IterOp) getScratch() iterScratch {
	n2 := o.n * o.n
	return iterScratch{
		x:   oc.GetScratch(n2),
		xs:  oc.GetScratch(n2),
		fwd: oc.GetScratch(1),
		res: oc.GetScratch(1),
		adj: oc.GetScratch(n2),
	}
}

func (s iterScratch) release() {
	oc.PutScratch(s.x)
	oc.PutScratch(s.xs)
	oc.PutScratch(s.fwd)
	oc.PutScratch(s.res)
	oc.PutScratch(s.adj)
}

// iterate runs the Landweber loop for one compressed sample y, filling
// the n² iterate sc.x. apply executes one programmed-matrix pass into a
// caller-owned destination (optical or exact, per caller); pass p of the
// sample uses seed DeriveSeed(seed, p), so forward and adjoint passes of
// every iteration own disjoint streams.
func (o *IterOp) iterate(y float64, sc iterScratch, seed int64, apply func(pm *oc.ProgrammedMatrix, dst, in []float64, seed int64) error) error {
	x, xs := *sc.x, *sc.xs
	for i := range x {
		x[i] = 0
	}
	// The iterate approaches x̂ = w y/‖w‖² from below, so entries are
	// bounded by wmax/‖w‖², which can exceed the [0,1] activation range;
	// stream x · ‖w‖²/wmax (≤ y ≤ 1) and undo the factor on the readout.
	// The programmed matrices carry w/wmax (full-scale normalisation), so
	// a forward readout F measures (up/wmax)·wᵀx and an adjoint readout
	// A_i measures (w_i/wmax)·r.
	up := o.gram / o.wmax
	for t := 0; t < o.iters; t++ {
		for i, v := range x {
			xs[i] = v * up
		}
		if err := apply(o.fwd, *sc.fwd, xs, oc.DeriveSeed(seed, 2*t)); err != nil {
			return err
		}
		r := y - (*sc.fwd)[0]*o.wmax/up
		// Exact arithmetic keeps r >= 0; quantization can push it a hair
		// below zero, and negative intensities cannot be emitted.
		if r < 0 {
			r = 0
		}
		(*sc.res)[0] = r
		if err := apply(o.adj, *sc.adj, *sc.res, oc.DeriveSeed(seed, 2*t+1)); err != nil {
			return err
		}
		for i := range x {
			x[i] += o.tau * (*sc.adj)[i] * o.wmax
		}
	}
	return nil
}

// passFn executes one programmed-matrix pass into dst.
type passFn func(pm *oc.ProgrammedMatrix, dst, in []float64, seed int64) error

// run shards the plane's samples across workers, each sample seeded with
// DeriveSeed(seed, j) — the same per-window scheme as LinOp.Apply. Each
// shard draws its Landweber state from the shared scratch arena once and
// builds its per-goroutine pass executor through newApply (optical
// shards check pooled Appliers out for the shard and release them via
// the returned cleanup; the exact reference is stateless).
func (o *IterOp) run(plane *sensor.Image, seed int64, workers int, newApply func() (passFn, func())) (*sensor.Image, error) {
	if err := checkPlane(o.name, plane); err != nil {
		return nil, err
	}
	if _, _, err := o.OutDims(plane.H, plane.W); err != nil {
		return nil, err
	}
	out := sensor.NewImage(plane.H*o.n, plane.W*o.n, 1)
	err := oc.ShardRange(plane.H*plane.W, workers, func(lo, hi int) error {
		apply, release := newApply()
		defer release()
		sc := o.getScratch()
		defer sc.release()
		for j := lo; j < hi; j++ {
			if err := o.iterate(plane.Pix[j], sc, oc.DeriveSeed(seed, j), apply); err != nil {
				return fmt.Errorf("kernels: %s: sample %d: %w", o.name, j, err)
			}
			x := *sc.x
			wy, wx := j/plane.W, j%plane.W
			for by := 0; by < o.n; by++ {
				for bx := 0; bx < o.n; bx++ {
					out.Pix[(wy*o.n+by)*out.W+wx*o.n+bx] = x[by*o.n+bx]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PassTotals implements SolverStats: the fixed-count Landweber loop
// always runs 2·iters optical passes per sample.
func (o *IterOp) PassTotals() (passes, samples uint64) {
	return o.stats.PassTotals()
}

// Apply implements Kernel: every pass runs through the optical core.
func (o *IterOp) Apply(plane *sensor.Image, seed int64, workers int) (*sensor.Image, error) {
	out, err := o.run(plane, seed, workers, func() (passFn, func()) {
		fwd, adj := o.fwd.NewApplier(), o.adj.NewApplier()
		apply := func(pm *oc.ProgrammedMatrix, dst, in []float64, seed int64) error {
			if pm == o.fwd {
				return fwd.ApplySeededInto(dst, in, seed)
			}
			return adj.ApplySeededInto(dst, in, seed)
		}
		return apply, func() {
			fwd.Release()
			adj.Release()
		}
	})
	if err == nil {
		samples := uint64(plane.H) * uint64(plane.W)
		o.stats.add(samples*uint64(2*o.iters), samples)
	}
	return out, err
}

// Reference implements Kernel: the same Landweber loop in exact float
// arithmetic against the real-valued CA weights. The closure reproduces
// the programmed matrices' full-scale normalisation (w/wmax) exactly, so
// iterate's digital rescaling applies unchanged.
func (o *IterOp) Reference(plane *sensor.Image) (*sensor.Image, error) {
	exact := func(pm *oc.ProgrammedMatrix, dst, in []float64, _ int64) error {
		if pm == o.fwd {
			sum := 0.0
			for i, v := range o.w {
				sum += v / o.wmax * in[i]
			}
			dst[0] = sum
			return nil
		}
		for i, v := range o.w {
			dst[i] = v / o.wmax * in[0]
		}
		return nil
	}
	return o.run(plane, 0, 1, func() (passFn, func()) {
		return exact, func() {}
	})
}
