// White-box tests of the solver machinery: the Gaussian-elimination
// factorization behind reconstruct-direct and the CGNR loop behind
// reconstruct-cg (residual monotonicity, stopping-rule behavior at loose
// vs tight tolerances, multi-row Gram solves).
package kernels

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lightator/internal/oc"
	"lightator/internal/sensor"
)

func solverTestCore(t *testing.T, wBits, aBits int, fid oc.Fidelity) *oc.Core {
	t.Helper()
	core, err := oc.NewCore(wBits, aBits, fid)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// TestSolveLinear pins the Gaussian-elimination direct solver on systems
// with known solutions, including one whose natural order has a zero
// leading pivot (partial pivoting required) and a singular one.
func TestSolveLinear(t *testing.T) {
	// 2x2, needs the row swap: a[0][0] == 0.
	x, err := solveLinear(
		[][]float64{{0, 2}, {3, 1}},
		[][]float64{{4}, {5}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// 3x = 5 - 1*x1, 2*x1 = 4 -> x1 = 2, x0 = 1.
	if math.Abs(x[0][0]-1) > 1e-12 || math.Abs(x[1][0]-2) > 1e-12 {
		t.Errorf("pivoted 2x2 solve = %v, want [[1] [2]]", x)
	}
	// 3x3 with two right-hand sides, checked by residual g·x - b = 0.
	g := [][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	b := [][]float64{{1, 0}, {0, 1}, {2, -1}}
	x, err = solveLinear(g, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		for c := range b[0] {
			sum := 0.0
			for k := range g[i] {
				sum += g[i][k] * x[k][c]
			}
			if math.Abs(sum-b[i][c]) > 1e-12 {
				t.Errorf("3x3 residual at (%d,%d): %g", i, c, sum-b[i][c])
			}
		}
	}
	// Singular: second row is a multiple of the first.
	if _, err := solveLinear([][]float64{{1, 2}, {2, 4}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("singular system solved without error")
	} else if !strings.Contains(err.Error(), "linearly dependent") {
		t.Errorf("singular system error %q does not name the cause", err)
	}
}

// TestGramSolverMultiRow pins the tentpole generalization: a sensing
// configuration with k² > 1 measurements per window — rows that share
// pixels, beyond the rank-1 block-diagonal CA — still solves exactly.
func TestGramSolverMultiRow(t *testing.T) {
	core := solverTestCore(t, 8, 8, oc.Ideal)

	// Square invertible case: 4 measurements of a 2x2 pixel block. Least
	// squares is the exact inverse, so reconstruction recovers any block.
	phi := [][]float64{
		{0.5, 0.25, 0.15, 0.10}, // overlapping rows: every row reads every pixel
		{0.10, 0.5, 0.25, 0.15},
		{0.15, 0.10, 0.5, 0.25},
		{0.25, 0.15, 0.10, 0.5},
	}
	k, err := NewGramSolver(core, "multirow", "4-row overlapping sensing", phi, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	truth := sensor.NewImage(6, 6, 1)
	for i := range truth.Pix {
		truth.Pix[i] = rng.Float64()
	}
	// Compress: each 2x2 pixel block becomes a 2x2 window of measurements.
	meas := sensor.NewImage(6, 6, 1)
	for wy := 0; wy < 3; wy++ {
		for wx := 0; wx < 3; wx++ {
			var x [4]float64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					x[dy*2+dx] = truth.Pix[(wy*2+dy)*6+wx*2+dx]
				}
			}
			for r := 0; r < 4; r++ {
				sum := 0.0
				for c := 0; c < 4; c++ {
					sum += phi[r][c] * x[c]
				}
				meas.Pix[(wy*2+r/2)*6+wx*2+r%2] = sum
			}
		}
	}
	got, err := k.Reference(meas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Pix {
		if d := math.Abs(got.Pix[i] - truth.Pix[i]); d > 1e-9 {
			t.Fatalf("multi-row exact solve diverges at %d: |diff| = %g", i, d)
		}
	}

	// Underdetermined case (m < d): 4 measurements of a 3x3 block. The
	// min-norm solution must still satisfy Φx̂ = y exactly.
	under := make([][]float64, 4)
	urng := rand.New(rand.NewSource(23))
	for r := range under {
		under[r] = make([]float64, 9)
		for c := range under[r] {
			under[r][c] = urng.Float64()
		}
	}
	ku, err := NewGramSolver(core, "underdet", "4 measurements per 3x3 block", under, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	my := sensor.NewImage(2, 2, 1)
	for i := range my.Pix {
		my.Pix[i] = urng.Float64()
	}
	xh, err := ku.Reference(my)
	if err != nil {
		t.Fatal(err)
	}
	// One window (the single 2x2 measurement window) -> one 3x3 block.
	for r := 0; r < 4; r++ {
		y := my.Pix[(r/2)*2+r%2]
		sum := 0.0
		for c := 0; c < 9; c++ {
			sum += under[r][c] * xh.Pix[(c/3)*3+c%3]
		}
		if d := math.Abs(sum - y); d > 1e-9 {
			t.Errorf("min-norm solution violates Φx̂ = y at row %d: |diff| = %g", r, d)
		}
	}

	// Rank-deficient sensing rows must be rejected at construction.
	dep := [][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{1, 1, 0, 0}, // row0 + row1
		{0, 0, 1, 0},
	}
	if _, err := NewGramSolver(core, "dependent", "", dep, 2, 2, 0); err == nil {
		t.Error("linearly dependent sensing rows accepted")
	}
	// More measurements than pixels can never have a full-rank Gram.
	over := [][]float64{{1}, {2}, {3}, {4}}
	if _, err := NewGramSolver(core, "over", "", over, 2, 2, 0); err == nil {
		t.Error("overdetermined (m > d) sensing matrix accepted")
	}
}

// cgOpticalPass builds the same optical pass executor CGOp.Apply uses,
// for driving solve directly in tests.
func cgOpticalPass(o *CGOp) (passFn, func()) {
	fwd, adj := o.fwd.NewApplier(), o.adj.NewApplier()
	apply := func(pm *oc.ProgrammedMatrix, dst, in []float64, seed int64) error {
		if pm == o.fwd {
			return fwd.ApplySeededInto(dst, in, seed)
		}
		return adj.ApplySeededInto(dst, in, seed)
	}
	return apply, func() {
		fwd.Release()
		adj.Release()
	}
}

// TestCGResidualMonotone: the committed residual trace decreases
// strictly monotonically — by construction (a non-improving iterate is
// never committed), but this pins that the construction survives
// refactors — in exact arithmetic and on the noisy optical path.
func TestCGResidualMonotone(t *testing.T) {
	// A tight tolerance and a generous cap force the loop to run until the
	// no-progress rule fires, which is where monotonicity would break.
	core := solverTestCore(t, 4, 4, oc.PhysicalNoisy)
	o, err := NewReconstructCG(core, 4, 32, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	apply, release := cgOpticalPass(o)
	defer release()
	sc := o.getScratch()
	defer sc.release()
	for i, y := range []float64{1, 0.7, 0.31, 0.05} {
		var trace []float64
		if _, err := o.solve(y, sc, oc.DeriveSeed(99, i), apply, &trace); err != nil {
			t.Fatal(err)
		}
		if len(trace) < 2 {
			t.Fatalf("y=%g: no committed iterations (trace %v)", y, trace)
		}
		for j := 1; j < len(trace); j++ {
			if !(trace[j] < trace[j-1]) {
				t.Errorf("y=%g: residual trace not strictly decreasing at step %d: %v", y, j, trace)
			}
		}
	}
	// Exact arithmetic: the rank-1 system converges in exactly one
	// iteration, to zero residual.
	var trace []float64
	if _, err := o.solve(0.8, sc, 0, o.exactPass, &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[1] > 1e-12 {
		t.Errorf("exact CGNR should converge in one iteration to zero residual, trace %v", trace)
	}
}

// TestCGStoppingRule: a loose tolerance stops in fewer optical passes
// than a tight one, the loose stop actually satisfies its tolerance, and
// the iteration cap bounds the pass count when the tolerance is
// unreachable.
func TestCGStoppingRule(t *testing.T) {
	core := solverTestCore(t, 4, 4, oc.PhysicalNoisy)
	runOne := func(maxIters int, tol float64, y float64, seed int64) (passes int, trace []float64) {
		t.Helper()
		o, err := NewReconstructCG(core, 4, maxIters, tol)
		if err != nil {
			t.Fatal(err)
		}
		apply, release := cgOpticalPass(o)
		defer release()
		sc := o.getScratch()
		defer sc.release()
		passes, err = o.solve(y, sc, seed, apply, &trace)
		if err != nil {
			t.Fatal(err)
		}
		return passes, trace
	}
	const y = 0.9
	loosePasses, looseTrace := runOne(32, 0.5, y, 7)
	tightPasses, tightTrace := runOne(32, 1e-12, y, 7)
	if loosePasses >= tightPasses {
		t.Errorf("loose tolerance used %d passes, tight used %d; loose must stop earlier", loosePasses, tightPasses)
	}
	if last := looseTrace[len(looseTrace)-1]; last > 0.5*y {
		t.Errorf("loose stop at |r| = %g does not satisfy tol·|y| = %g", last, 0.5*y)
	}
	if lastT, lastL := tightTrace[len(tightTrace)-1], looseTrace[len(looseTrace)-1]; lastT > lastL {
		t.Errorf("tight tolerance finished at residual %g, worse than loose %g", lastT, lastL)
	}
	// Cap: 1 initial adjoint + per iteration at most 2 forward + 1 adjoint.
	capped, _ := runOne(2, 1e-12, y, 7)
	if max := 1 + 2*3; capped > max {
		t.Errorf("maxIters=2 ran %d passes, cap is %d", capped, max)
	}
	// Degenerate sample: y = 0 is solved exactly by x = 0, zero passes.
	if passes, _ := runOne(4, 1e-3, 0, 7); passes != 0 {
		t.Errorf("y=0 used %d optical passes, want 0", passes)
	}
}

// TestCGHalvesLandweberPasses pins the acceptance criterion:
// reconstruct-cg reaches reconstruct-iter's accuracy within at most half
// of its optical passes (Landweber: 2·12 = 24 per sample, so CG must
// average <= 12 — in practice it sits near 3).
func TestCGHalvesLandweberPasses(t *testing.T) {
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.Physical, oc.PhysicalNoisy} {
		core := solverTestCore(t, 8, 8, fid)
		cg, err := NewReconstructCG(core, 4, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewReconstructIter(core, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		plane := sensor.NewImage(12, 12, 1)
		for i := range plane.Pix {
			plane.Pix[i] = rng.Float64()
		}
		exact, err := cg.Reference(plane)
		if err != nil {
			t.Fatal(err)
		}
		maxErr := func(img *sensor.Image) float64 {
			max := 0.0
			for i := range img.Pix {
				if d := math.Abs(img.Pix[i] - exact.Pix[i]); d > max {
					max = d
				}
			}
			return max
		}
		cgOut, err := cg.Apply(plane, 0x5eed, 2)
		if err != nil {
			t.Fatal(err)
		}
		itOut, err := it.Apply(plane, 0x5eed, 2)
		if err != nil {
			t.Fatal(err)
		}
		// "Reaches reconstruct-iter's accuracy": CG's error vs the exact
		// least-squares solution is no worse than Landweber's (small slack
		// for noise realizations drawn from different pass streams).
		if ce, ie := maxErr(cgOut), maxErr(itOut); ce > ie*1.25+1e-9 {
			t.Errorf("%v: CG error %g exceeds Landweber error %g + 25%%", fid, ce, ie)
		}
		passes, samples := cg.PassTotals()
		if samples != uint64(len(plane.Pix)) {
			t.Fatalf("%v: PassTotals samples = %d, want %d", fid, samples, len(plane.Pix))
		}
		itPasses, itSamples := it.(*IterOp).PassTotals()
		if itSamples != samples || itPasses != samples*uint64(2*DefaultLandweberIters) {
			t.Fatalf("%v: Landweber PassTotals = %d/%d, want %d/%d",
				fid, itPasses, itSamples, samples*uint64(2*DefaultLandweberIters), samples)
		}
		if avg, half := float64(passes)/float64(samples), float64(DefaultLandweberIters); avg > half {
			t.Errorf("%v: CG averaged %.2f optical passes per sample, acceptance bound is %.0f (half of Landweber's %d)",
				fid, avg, half, 2*DefaultLandweberIters)
		}
	}
}
