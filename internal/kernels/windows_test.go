package kernels

import (
	"math/rand"
	"testing"

	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// windowsTestPlane builds a deterministic single-channel plane.
func windowsTestPlane(seed int64, h, w int) *sensor.Image {
	rng := rand.New(rand.NewSource(seed))
	p := sensor.NewImage(h, w, 1)
	for i := range p.Pix {
		p.Pix[i] = rng.Float64()
	}
	return p
}

// windowsTestOps builds WindowedOps across distinct LinOp geometries:
// a padded stride-1 conv and a stride-2, block-2 downsampling operator.
func windowsTestOps(t *testing.T, fid oc.Fidelity) []*LinOp {
	t.Helper()
	core, err := oc.NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := NewBlockConv(core, "edge", "test conv",
		[][]float64{{0, -1, 0}, {-1, 4, -1}, {0, -1, 0}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 2x2-block operator over 4x4 stride-2 windows (identity on the
	// window's top-left 2x2), exercising block > 1 placement.
	op := make([][]float64, 4)
	for r := range op {
		row := make([]float64, 16)
		row[(r/2)*4+r%2] = 1
		op[r] = row
	}
	down, err := NewLinOp(core, "down", "test downsample", op, 4, 2, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []*LinOp{conv.(*LinOp), down}
}

// TestApplyWindowsCoversApply: recomputing every window one at a time
// into a zeroed output must reconstruct the full Apply result
// bit-exactly — each window writes exactly its own output block, with
// the same per-window seed derivation Apply uses. Noisy fidelity rides
// along so the seed path is exercised, not just the deterministic one.
func TestApplyWindowsCoversApply(t *testing.T) {
	for _, fid := range []oc.Fidelity{oc.Physical, oc.PhysicalNoisy} {
		t.Run(fid.String(), func(t *testing.T) {
			for _, op := range windowsTestOps(t, fid) {
				plane := windowsTestPlane(3, 12, 12)
				const seed = 991
				want, err := op.Apply(plane, seed, 1)
				if err != nil {
					t.Fatal(err)
				}
				wh, ww, err := op.Windows(plane.H, plane.W)
				if err != nil {
					t.Fatal(err)
				}
				got := sensor.NewImage(want.H, want.W, 1)
				sel := make([]bool, wh*ww)
				for j := range sel {
					sel[j] = true
					if err := op.ApplyWindows(got, plane, seed, 2, sel); err != nil {
						t.Fatal(err)
					}
					sel[j] = false
				}
				for i := range want.Pix {
					if got.Pix[i] != want.Pix[i] {
						t.Fatalf("%s: sample %d differs after window-by-window recompute: %g vs %g",
							op.Name(), i, got.Pix[i], want.Pix[i])
					}
				}
			}
		})
	}
}

// TestApplyWindowsLocality: a window's output depends only on its
// WindowInput rectangle — perturbing any sample outside that rectangle
// and recomputing the window must reproduce the same block. This is
// the property the session layer's delta reuse is sound on.
func TestApplyWindowsLocality(t *testing.T) {
	for _, op := range windowsTestOps(t, oc.Physical) {
		plane := windowsTestPlane(5, 12, 12)
		wh, ww, err := op.Windows(plane.H, plane.W)
		if err != nil {
			t.Fatal(err)
		}
		// A middle window, so the rectangle has outside on every side.
		wy, wx := wh/2, ww/2
		j := wy*ww + wx
		y0, x0, y1, x1 := op.WindowInput(wy, wx)
		sel := make([]bool, wh*ww)
		sel[j] = true

		base, err := op.Apply(plane, 7, 1)
		if err != nil {
			t.Fatal(err)
		}
		perturbed := plane.Clone()
		touched := false
		for y := 0; y < plane.H; y++ {
			for x := 0; x < plane.W; x++ {
				if y >= y0 && y < y1 && x >= x0 && x < x1 {
					continue
				}
				perturbed.Pix[y*plane.W+x] += 1 + float64(y+x)
				touched = true
			}
		}
		if !touched {
			t.Fatalf("%s: window input covers the whole plane; pick a bigger plane", op.Name())
		}
		got := base.Clone()
		if err := op.ApplyWindows(got, perturbed, 7, 1, sel); err != nil {
			t.Fatal(err)
		}
		for i := range base.Pix {
			if got.Pix[i] != base.Pix[i] {
				t.Fatalf("%s: sample %d changed although only out-of-window input moved", op.Name(), i)
			}
		}
	}
}

// TestApplyWindowsValidation: shape mismatches are rejected.
func TestApplyWindowsValidation(t *testing.T) {
	op := windowsTestOps(t, oc.Physical)[0]
	plane := windowsTestPlane(1, 12, 12)
	oh, ow, err := op.OutDims(plane.H, plane.W)
	if err != nil {
		t.Fatal(err)
	}
	wh, ww, err := op.Windows(plane.H, plane.W)
	if err != nil {
		t.Fatal(err)
	}
	out := sensor.NewImage(oh, ow, 1)
	if err := op.ApplyWindows(out, plane, 1, 1, make([]bool, wh*ww-1)); err == nil {
		t.Fatal("short selection accepted")
	}
	bad := sensor.NewImage(oh+1, ow, 1)
	if err := op.ApplyWindows(bad, plane, 1, 1, make([]bool, wh*ww)); err == nil {
		t.Fatal("mis-shaped output accepted")
	}
}
