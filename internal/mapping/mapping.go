// Package mapping implements Lightator's hardware mapping methodology
// (paper §4, Fig. 6): how convolution kernels of different sizes and
// fully-connected fan-ins are partitioned across the optical core's arms,
// banks and summation stages, and how many operational cycles and weight
// re-mapping events a DNN layer costs.
package mapping

import "fmt"

// Optical-core geometry (paper §4): "MRs are organized into groups of 9
// inside each arm ... each set of 6 arms is treated as a bank. In total,
// 96 banks are arranged in an array with 8 columns and 12 rows ... the MVM
// banks collectively house 5184 MRs. This implies that, at maximum, 5184
// MAC operations can be executed in each operational cycle."
const (
	MRsPerArm   = 9
	ArmsPerBank = 6
	BankCols    = 8
	BankRows    = 12
	NumBanks    = BankCols * BankRows // 96
	MRsPerBank  = MRsPerArm * ArmsPerBank
	TotalArms   = NumBanks * ArmsPerBank
	TotalMRs    = NumBanks * MRsPerBank // 5184
)

// KernelMapping describes how one K x K kernel stride occupies a bank.
type KernelMapping struct {
	// KernelSize is K for a K x K kernel.
	KernelSize int
	// Taps is K*K, the number of weights per stride.
	Taps int
	// ArmsPerStride is how many 9-MR arms one stride occupies.
	ArmsPerStride int
	// StridesPerBank is how many independent strides fit in one bank's 6
	// arms (Fig. 6: 6 for 3x3, 2 for 5x5, 1 for 7x7).
	StridesPerBank int
	// IdleMRsPerStride counts unused (gray in Fig. 6) MRs per stride.
	IdleMRsPerStride int
	// IdleArmsPerBank counts whole arms left unused per bank.
	IdleArmsPerBank int
	// SummationStages is how many stages of the bank's summation tree are
	// active: 0 when the BPD alone finishes the MAC (3x3), 1 when partial
	// sums from up to 3 arms combine (5x5), 2 when all 6 arms combine
	// (7x7).
	SummationStages int
}

// MapKernel partitions a K x K convolution kernel onto a bank. Kernels up
// to 7x7 fit inside one bank (the paper's largest case); larger kernels
// are segmented like fully-connected layers — use MapFC for those.
func MapKernel(k int) (KernelMapping, error) {
	if k < 1 {
		return KernelMapping{}, fmt.Errorf("mapping: kernel size %d < 1", k)
	}
	taps := k * k
	armsPerStride := (taps + MRsPerArm - 1) / MRsPerArm
	if armsPerStride > ArmsPerBank {
		return KernelMapping{}, fmt.Errorf("mapping: %dx%d kernel (%d taps) exceeds one bank; segment it with MapFC", k, k, taps)
	}
	m := KernelMapping{
		KernelSize:       k,
		Taps:             taps,
		ArmsPerStride:    armsPerStride,
		StridesPerBank:   ArmsPerBank / armsPerStride,
		IdleMRsPerStride: armsPerStride*MRsPerArm - taps,
	}
	m.IdleArmsPerBank = ArmsPerBank - m.StridesPerBank*armsPerStride
	switch {
	case armsPerStride == 1:
		m.SummationStages = 0
	case armsPerStride <= 3:
		m.SummationStages = 1
	default:
		m.SummationStages = 2
	}
	return m, nil
}

// MRUtilisation is the fraction of the MRs in occupied arms that carry a
// weight: taps / (armsPerStride * 9).
func (m KernelMapping) MRUtilisation() float64 {
	return float64(m.Taps) / float64(m.ArmsPerStride*MRsPerArm)
}

// BankUtilisation is the fraction of a bank's 54 MRs carrying weights:
// strides * taps / 54.
func (m KernelMapping) BankUtilisation() float64 {
	return float64(m.StridesPerBank*m.Taps) / float64(MRsPerBank)
}

// StridesPerCycle is how many kernel strides the whole 96-bank core
// executes in one operational cycle.
func (m KernelMapping) StridesPerCycle() int {
	return m.StridesPerBank * NumBanks
}

// FCMapping describes segmenting one fully-connected neuron's fan-in into
// 9-MAC chunks (paper §4: "we segment the entire MAC operations into sets
// of 9 MACs, map their corresponding weights to arms, and subsequently
// aggregate the partial results using the summation part").
type FCMapping struct {
	// FanIn is the neuron's input count.
	FanIn int
	// Segments is ceil(FanIn / 9): the number of arms one neuron needs.
	Segments int
	// TailTaps is the occupancy of the final segment (1..9).
	TailTaps int
}

// MapFC segments a fully-connected fan-in.
func MapFC(fanIn int) (FCMapping, error) {
	if fanIn < 1 {
		return FCMapping{}, fmt.Errorf("mapping: fan-in %d < 1", fanIn)
	}
	segs := (fanIn + MRsPerArm - 1) / MRsPerArm
	tail := fanIn - (segs-1)*MRsPerArm
	return FCMapping{FanIn: fanIn, Segments: segs, TailTaps: tail}, nil
}

// MRUtilisation is the fraction of occupied-arm MRs carrying weights.
func (m FCMapping) MRUtilisation() float64 {
	return float64(m.FanIn) / float64(m.Segments*MRsPerArm)
}
