package mapping

import (
	"testing"
	"testing/quick"
)

// Paper §4 geometry facts.
func TestCoreGeometry(t *testing.T) {
	if NumBanks != 96 {
		t.Errorf("banks = %d, want 96", NumBanks)
	}
	if MRsPerBank != 54 {
		t.Errorf("MRs per bank = %d, want 54 (9x6)", MRsPerBank)
	}
	if TotalMRs != 5184 {
		t.Errorf("total MRs = %d, want 5184", TotalMRs)
	}
	if BankCols != 8 || BankRows != 12 {
		t.Errorf("bank grid %dx%d, want 8x12", BankCols, BankRows)
	}
}

// Fig. 6(a): 3x3 kernel -> 6 strides per bank, BPD-only summation, no
// idle MRs.
func TestMap3x3(t *testing.T) {
	m, err := MapKernel(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.StridesPerBank != 6 {
		t.Errorf("strides per bank = %d, want 6", m.StridesPerBank)
	}
	if m.ArmsPerStride != 1 {
		t.Errorf("arms per stride = %d, want 1", m.ArmsPerStride)
	}
	if m.IdleMRsPerStride != 0 {
		t.Errorf("idle MRs = %d, want 0", m.IdleMRsPerStride)
	}
	if m.SummationStages != 0 {
		t.Errorf("summation stages = %d, want 0 (BPD only)", m.SummationStages)
	}
	if m.MRUtilisation() != 1 {
		t.Errorf("utilisation = %g, want 1", m.MRUtilisation())
	}
	if m.StridesPerCycle() != 576 {
		t.Errorf("strides per cycle = %d, want 576", m.StridesPerCycle())
	}
}

// Fig. 6(b): 5x5 kernel -> 3 arms per stride, 2 strides per bank, 2 idle
// MRs per stride, first summation stage active.
func TestMap5x5(t *testing.T) {
	m, err := MapKernel(5)
	if err != nil {
		t.Fatal(err)
	}
	if m.ArmsPerStride != 3 {
		t.Errorf("arms per stride = %d, want 3", m.ArmsPerStride)
	}
	if m.StridesPerBank != 2 {
		t.Errorf("strides per bank = %d, want 2", m.StridesPerBank)
	}
	if m.IdleMRsPerStride != 2 {
		t.Errorf("idle MRs per stride = %d, want 2 (27-25)", m.IdleMRsPerStride)
	}
	if m.SummationStages != 1 {
		t.Errorf("summation stages = %d, want 1", m.SummationStages)
	}
}

// Fig. 6(c): 7x7 kernel -> whole bank per stride, 5 idle MRs, two
// summation stages.
func TestMap7x7(t *testing.T) {
	m, err := MapKernel(7)
	if err != nil {
		t.Fatal(err)
	}
	if m.ArmsPerStride != 6 {
		t.Errorf("arms per stride = %d, want 6", m.ArmsPerStride)
	}
	if m.StridesPerBank != 1 {
		t.Errorf("strides per bank = %d, want 1", m.StridesPerBank)
	}
	if m.IdleMRsPerStride != 5 {
		t.Errorf("idle MRs per stride = %d, want 5 (54-49)", m.IdleMRsPerStride)
	}
	if m.SummationStages != 2 {
		t.Errorf("summation stages = %d, want 2", m.SummationStages)
	}
}

func TestMapKernelBounds(t *testing.T) {
	if _, err := MapKernel(0); err == nil {
		t.Error("kernel 0 accepted")
	}
	if _, err := MapKernel(8); err == nil {
		t.Error("8x8 kernel (64 taps > 54) should not fit a bank")
	}
	// 1x1 pointwise fits trivially.
	m, err := MapKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.StridesPerBank != 6 || m.IdleMRsPerStride != 8 {
		t.Errorf("1x1: %+v", m)
	}
}

// Property: mapped strides never oversubscribe a bank and idle counts are
// consistent.
func TestMapKernelProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%7) + 1
		m, err := MapKernel(k)
		if err != nil {
			return false
		}
		used := m.StridesPerBank * m.ArmsPerStride
		if used > ArmsPerBank {
			return false
		}
		if m.IdleArmsPerBank != ArmsPerBank-used {
			return false
		}
		if m.IdleMRsPerStride != m.ArmsPerStride*MRsPerArm-m.Taps {
			return false
		}
		return m.MRUtilisation() > 0 && m.MRUtilisation() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapFC(t *testing.T) {
	m, err := MapFC(120)
	if err != nil {
		t.Fatal(err)
	}
	if m.Segments != 14 {
		t.Errorf("segments = %d, want 14 (ceil(120/9))", m.Segments)
	}
	if m.TailTaps != 3 {
		t.Errorf("tail taps = %d, want 3", m.TailTaps)
	}
	if _, err := MapFC(0); err == nil {
		t.Error("fan-in 0 accepted")
	}
	exact, _ := MapFC(18)
	if exact.Segments != 2 || exact.TailTaps != 9 {
		t.Errorf("fan-in 18: %+v", exact)
	}
}

func TestMapFCProperty(t *testing.T) {
	f := func(raw uint16) bool {
		fanIn := int(raw%4096) + 1
		m, err := MapFC(fanIn)
		if err != nil {
			return false
		}
		// Segments cover the fan-in exactly.
		covered := (m.Segments-1)*MRsPerArm + m.TailTaps
		return covered == fanIn && m.TailTaps >= 1 && m.TailTaps <= MRsPerArm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerDimsConv(t *testing.T) {
	d := LayerDims{Kind: Conv, Name: "c1", InC: 3, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 32, InW: 32}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.OutH() != 32 || d.OutW() != 32 {
		t.Errorf("out %dx%d, want 32x32 (same padding)", d.OutH(), d.OutW())
	}
	if got, want := d.MACs(), int64(32*32*64*3*9); got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
	if got, want := d.Weights(), int64(64*3*9); got != want {
		t.Errorf("weights = %d, want %d", got, want)
	}
	if got, want := d.Activations(), int64(32*32*64); got != want {
		t.Errorf("activations = %d, want %d", got, want)
	}
}

func TestLayerDimsFC(t *testing.T) {
	d := LayerDims{Kind: FC, Name: "fc", InC: 4096, OutC: 10}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.MACs() != 40960 || d.Weights() != 40960 {
		t.Errorf("MACs %d weights %d", d.MACs(), d.Weights())
	}
	if d.OutH() != 1 || d.OutW() != 1 {
		t.Error("FC spatial dims not 1x1")
	}
}

func TestLayerDimsPoolStride(t *testing.T) {
	d := LayerDims{Kind: Pool, Name: "p1", InC: 16, OutC: 16, K: 2, Stride: 2, InH: 28, InW: 28}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.OutH() != 14 || d.OutW() != 14 {
		t.Errorf("pool out %dx%d, want 14x14", d.OutH(), d.OutW())
	}
	if d.Weights() != 0 {
		t.Error("pool layer should store no weights (pre-set coefficients)")
	}
	bad := d
	bad.OutC = 32
	if err := bad.Validate(); err == nil {
		t.Error("pool changing channel count accepted")
	}
}

func TestScheduleConvSmall(t *testing.T) {
	// 16 filters x 1 input channel of 3x3: 16 stride kernels, all resident
	// at once (576 slots) -> 1 tile, OH*OW cycles.
	d := LayerDims{Kind: Conv, Name: "c1", InC: 1, OutC: 16, K: 3, Stride: 1, InH: 28, InW: 28}
	s, err := ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tiles != 1 {
		t.Errorf("tiles = %d, want 1", s.Tiles)
	}
	if s.ComputeCycles != int64(26*26) {
		t.Errorf("cycles = %d, want %d", s.ComputeCycles, 26*26)
	}
	if s.RemapEvents != 1 {
		t.Errorf("remaps = %d, want 1", s.RemapEvents)
	}
	if s.ActiveMRs != 16*9 {
		t.Errorf("active MRs = %d, want 144", s.ActiveMRs)
	}
}

func TestScheduleConvTiled(t *testing.T) {
	// 512x512 3x3 layer: 262144 stride kernels over 576 slots -> 456 tiles.
	d := LayerDims{Kind: Conv, Name: "c", InC: 512, OutC: 512, K: 3, Stride: 1, Pad: 1, InH: 4, InW: 4}
	s, err := ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	wantTiles := int64((512*512 + 575) / 576)
	if s.Tiles != wantTiles {
		t.Errorf("tiles = %d, want %d", s.Tiles, wantTiles)
	}
	if s.ComputeCycles != wantTiles*16 {
		t.Errorf("cycles = %d, want %d", s.ComputeCycles, wantTiles*16)
	}
}

func TestScheduleLargeKernelSpansBanks(t *testing.T) {
	// AlexNet conv1: 11x11 = 121 taps -> 14 arms, spanning banks.
	d := LayerDims{Kind: Conv, Name: "a1", InC: 3, OutC: 96, K: 11, Stride: 4, InH: 227, InW: 227}
	s, err := ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.ArmsPerStride != 14 {
		t.Errorf("arms per stride = %d, want 14", s.ArmsPerStride)
	}
	if s.StridesPerCore != 576/14 {
		t.Errorf("strides per core = %d, want %d", s.StridesPerCore, 576/14)
	}
	if s.SummationStages != 2 {
		t.Error("bank-spanning kernel should use both summation stages")
	}
}

func TestSchedulePoolNoRemap(t *testing.T) {
	d := LayerDims{Kind: Pool, Name: "p", InC: 64, OutC: 64, K: 2, Stride: 2, InH: 16, InW: 16}
	s, err := ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.RemapEvents != 0 {
		t.Errorf("pool remap events = %d, want 0 (pre-set coefficients)", s.RemapEvents)
	}
	if s.ComputeCycles != 64 {
		t.Errorf("cycles = %d, want 64 (8x8 outputs, 64 channels parallel)", s.ComputeCycles)
	}
}

func TestScheduleCACompress(t *testing.T) {
	d := LayerDims{Kind: CACompress, Name: "ca", InC: 1, OutC: 1, K: 2, Stride: 2, InH: 256, InW: 256}
	s, err := ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.RemapEvents != 0 {
		t.Error("CA should not remap")
	}
	if s.ComputeCycles != 128*128 {
		t.Errorf("cycles = %d, want %d", s.ComputeCycles, 128*128)
	}
}

func TestScheduleFC(t *testing.T) {
	// 400 -> 120 FC: 45 segments per neuron... ceil(400/9)=45; 120*45 =
	// 5400 arms over 576 -> 10 tiles.
	d := LayerDims{Kind: FC, Name: "fc1", InC: 400, OutC: 120}
	s, err := ScheduleLayer(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.StrideKernels != 120*45 {
		t.Errorf("stride kernels = %d, want %d", s.StrideKernels, 120*45)
	}
	wantTiles := int64((120*45 + 575) / 576)
	if s.Tiles != wantTiles {
		t.Errorf("tiles = %d, want %d", s.Tiles, wantTiles)
	}
	if s.ComputeCycles != wantTiles {
		t.Errorf("cycles = %d, want %d (one cycle per tile)", s.ComputeCycles, wantTiles)
	}
	if s.SummationStages != 1 {
		t.Error("multi-segment FC needs the summation stage")
	}
}

// Property: a schedule never claims more active MRs than exist, and cycles
// and tiles are always positive.
func TestScheduleProperty(t *testing.T) {
	f := func(inC, outC, kRaw, hw uint8) bool {
		d := LayerDims{
			Kind:   Conv,
			Name:   "x",
			InC:    int(inC%64) + 1,
			OutC:   int(outC%64) + 1,
			K:      int(kRaw%7) + 1,
			Stride: 1,
			InH:    int(hw%32) + 8,
			InW:    int(hw%32) + 8,
		}
		if d.K > d.InH {
			return true // skip invalid geometry
		}
		s, err := ScheduleLayer(d)
		if err != nil {
			return false
		}
		if s.ActiveMRs > TotalMRs || s.ActiveMRs < 1 {
			return false
		}
		if s.Tiles < 1 || s.ComputeCycles < 1 {
			return false
		}
		if s.CoreUtilisation() <= 0 || s.CoreUtilisation() > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerKindString(t *testing.T) {
	for kind, want := range map[LayerKind]string{Conv: "conv", FC: "fc", Pool: "pool", CACompress: "ca"} {
		if kind.String() != want {
			t.Errorf("%d -> %q, want %q", int(kind), kind.String(), want)
		}
	}
}
