package mapping

import "fmt"

// LayerKind classifies a DNN layer for scheduling and energy purposes.
type LayerKind int

const (
	// Conv is a standard convolution layer mapped onto MVM banks.
	Conv LayerKind = iota
	// FC is a fully-connected layer mapped as 9-MAC segments.
	FC
	// Pool is an average-pooling layer mapped onto CA banks with pre-set
	// weight coefficients (no DAC traffic, no re-mapping).
	Pool
	// CACompress is the Compressive Acquisitor's fused RGB-to-grayscale +
	// average-pooling pass over the raw input frame (Eq. 1), also with
	// pre-set coefficients.
	CACompress
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case FC:
		return "fc"
	case Pool:
		return "pool"
	case CACompress:
		return "ca"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerDims carries the geometry of one DNN layer. For FC layers InC is
// the fan-in, OutC the neuron count, and the spatial fields are ignored.
type LayerDims struct {
	Kind   LayerKind
	Name   string
	InC    int
	OutC   int
	K      int // kernel size (conv/pool/ca)
	Stride int
	Pad    int
	InH    int
	InW    int
}

// OutH returns the output height.
func (d LayerDims) OutH() int {
	if d.Kind == FC {
		return 1
	}
	s := d.Stride
	if s == 0 {
		s = 1
	}
	return (d.InH+2*d.Pad-d.K)/s + 1
}

// OutW returns the output width.
func (d LayerDims) OutW() int {
	if d.Kind == FC {
		return 1
	}
	s := d.Stride
	if s == 0 {
		s = 1
	}
	return (d.InW+2*d.Pad-d.K)/s + 1
}

// MACs returns the multiply-accumulate count of one inference pass.
func (d LayerDims) MACs() int64 {
	switch d.Kind {
	case FC:
		return int64(d.InC) * int64(d.OutC)
	default:
		return int64(d.OutH()) * int64(d.OutW()) * int64(d.OutC) * int64(d.InC) * int64(d.K) * int64(d.K)
	}
}

// Weights returns the number of stored weight parameters. Pool and CA
// layers use pre-set coefficients and store nothing.
func (d LayerDims) Weights() int64 {
	switch d.Kind {
	case Conv:
		return int64(d.OutC) * int64(d.InC) * int64(d.K) * int64(d.K)
	case FC:
		return int64(d.InC) * int64(d.OutC)
	default:
		return 0
	}
}

// Activations returns the number of output activations produced.
func (d LayerDims) Activations() int64 {
	return int64(d.OutH()) * int64(d.OutW()) * int64(d.OutC)
}

// Validate checks the geometry is self-consistent.
func (d LayerDims) Validate() error {
	if d.InC < 1 || d.OutC < 1 {
		return fmt.Errorf("mapping: layer %q: channels in=%d out=%d", d.Name, d.InC, d.OutC)
	}
	if d.Kind == FC {
		return nil
	}
	if d.K < 1 {
		return fmt.Errorf("mapping: layer %q: kernel %d", d.Name, d.K)
	}
	if d.InH < d.K-2*d.Pad || d.InW < d.K-2*d.Pad {
		return fmt.Errorf("mapping: layer %q: input %dx%d smaller than kernel %d", d.Name, d.InH, d.InW, d.K)
	}
	if d.OutH() < 1 || d.OutW() < 1 {
		return fmt.Errorf("mapping: layer %q: empty output", d.Name)
	}
	if (d.Kind == Pool || d.Kind == CACompress) && d.InC != d.OutC && d.Kind == Pool {
		return fmt.Errorf("mapping: layer %q: pooling cannot change channel count", d.Name)
	}
	return nil
}

// Schedule is the result of placing one layer onto the optical core: how
// its weights tile into the 5184 MRs and what one inference pass costs in
// operational cycles and re-mapping events.
type Schedule struct {
	Dims LayerDims
	// Taps is the number of weights in one stride vector (K*K for conv,
	// up to 9 per FC segment).
	Taps int
	// ArmsPerStride is how many arms one stride occupies.
	ArmsPerStride int
	// StridesPerCore is how many independent strides the 96 banks hold at
	// once — the tile width.
	StridesPerCore int
	// StrideKernels is how many distinct stride weight-vectors the layer
	// needs in total (OutC*InC for conv; OutC*segments for FC).
	StrideKernels int64
	// Tiles is ceil(StrideKernels / StridesPerCore): the number of times
	// the core must be re-programmed to stream all weights through.
	Tiles int64
	// ComputeCycles is the number of operational cycles of the optical
	// core for one inference pass of this layer.
	ComputeCycles int64
	// RemapEvents counts MR re-programming events (0 for pre-set pool/CA
	// banks).
	RemapEvents int64
	// ActiveMRs is the average number of weight-carrying MRs per tile,
	// which sets the tuning (TUN) power.
	ActiveMRs int64
	// SummationStages active for this mapping (see KernelMapping).
	SummationStages int
}

// ScheduleLayer places a layer onto the optical core geometry.
func ScheduleLayer(d LayerDims) (Schedule, error) {
	if err := d.Validate(); err != nil {
		return Schedule{}, err
	}
	s := Schedule{Dims: d}
	switch d.Kind {
	case Conv, Pool, CACompress:
		taps := d.K * d.K
		if d.Kind == CACompress {
			// The CA fuses the colour conversion into the pooling taps:
			// one tap per pixel site of the N x N window (Bayer raw).
			taps = d.K * d.K
		}
		s.Taps = taps
		s.ArmsPerStride = (taps + MRsPerArm - 1) / MRsPerArm
		if s.ArmsPerStride <= ArmsPerBank {
			km, err := MapKernel(d.K)
			if err != nil {
				return Schedule{}, err
			}
			s.StridesPerCore = km.StridesPerCycle()
			s.SummationStages = km.SummationStages
		} else {
			// Kernels beyond 7x7 (e.g. AlexNet's 11x11) span banks; the
			// partial sums aggregate across the summation sections of
			// adjacent banks plus the electronic accumulator.
			s.StridesPerCore = TotalArms / s.ArmsPerStride
			s.SummationStages = 2
		}
		if d.Kind == Conv {
			s.StrideKernels = int64(d.OutC) * int64(d.InC)
		} else {
			// Pre-set pooling/CA coefficients are shared across channels;
			// each channel still occupies its own stride slot per cycle.
			s.StrideKernels = int64(d.InC)
		}
		tiles := (s.StrideKernels + int64(s.StridesPerCore) - 1) / int64(s.StridesPerCore)
		s.Tiles = tiles
		s.ComputeCycles = tiles * int64(d.OutH()) * int64(d.OutW())
		if d.Kind == Conv {
			s.RemapEvents = tiles
		}
	case FC:
		fm, err := MapFC(d.InC)
		if err != nil {
			return Schedule{}, err
		}
		s.Taps = MRsPerArm
		s.ArmsPerStride = 1
		s.StridesPerCore = TotalArms
		s.StrideKernels = int64(d.OutC) * int64(fm.Segments)
		tiles := (s.StrideKernels + int64(TotalArms) - 1) / int64(TotalArms)
		s.Tiles = tiles
		s.ComputeCycles = tiles
		s.RemapEvents = tiles
		if fm.Segments > 1 {
			s.SummationStages = 1
		}
	default:
		return Schedule{}, fmt.Errorf("mapping: unknown layer kind %d", d.Kind)
	}
	if s.Tiles > 0 {
		perTile := (s.StrideKernels*int64(s.Taps) + s.Tiles - 1) / s.Tiles
		if perTile > TotalMRs {
			perTile = TotalMRs
		}
		s.ActiveMRs = perTile
	}
	return s, nil
}

// CoreUtilisation is the average fraction of the 5184 MRs carrying weights
// while this layer runs.
func (s Schedule) CoreUtilisation() float64 {
	return float64(s.ActiveMRs) / float64(TotalMRs)
}
