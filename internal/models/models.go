// Package models is the model zoo: layer-dimension descriptors of the DNNs
// the paper evaluates (LeNet, VGG9, VGG13, VGG16, AlexNet) for the
// architecture simulator, plus trainable reduced-width variants built on
// package nn for the accuracy experiments.
package models

import (
	"fmt"

	"lightator/internal/mapping"
	"lightator/internal/nn"
)

// LeNet returns the 7 mapped layers of LeNet-5 on 28x28x1 input, matching
// the paper's Fig. 8 layer indices L1..L7: two conv layers, two pooling
// layers (CA banks) and three fully-connected layers.
func LeNet() []mapping.LayerDims {
	return []mapping.LayerDims{
		{Kind: mapping.Conv, Name: "L1.conv1", InC: 1, OutC: 6, K: 5, Stride: 1, Pad: 2, InH: 28, InW: 28},
		{Kind: mapping.Pool, Name: "L2.pool1", InC: 6, OutC: 6, K: 2, Stride: 2, InH: 28, InW: 28},
		{Kind: mapping.Conv, Name: "L3.conv2", InC: 6, OutC: 16, K: 5, Stride: 1, InH: 14, InW: 14},
		{Kind: mapping.Pool, Name: "L4.pool2", InC: 16, OutC: 16, K: 2, Stride: 2, InH: 10, InW: 10},
		{Kind: mapping.FC, Name: "L5.fc1", InC: 400, OutC: 120},
		{Kind: mapping.FC, Name: "L6.fc2", InC: 120, OutC: 84},
		{Kind: mapping.FC, Name: "L7.fc3", InC: 84, OutC: 10},
	}
}

// VGG9 returns the 12 mapped layers of VGG9 on 32x32x3 input, matching
// Fig. 9's L1..L12: six conv layers, three pooling layers and three
// fully-connected layers. L8 (the pie-chart layer in Fig. 9) is the
// deepest 256-channel convolution.
func VGG9(classes int) []mapping.LayerDims {
	return []mapping.LayerDims{
		{Kind: mapping.Conv, Name: "L1.conv1", InC: 3, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 32, InW: 32},
		{Kind: mapping.Conv, Name: "L2.conv2", InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 32, InW: 32},
		{Kind: mapping.Pool, Name: "L3.pool1", InC: 64, OutC: 64, K: 2, Stride: 2, InH: 32, InW: 32},
		{Kind: mapping.Conv, Name: "L4.conv3", InC: 64, OutC: 128, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16},
		{Kind: mapping.Conv, Name: "L5.conv4", InC: 128, OutC: 128, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16},
		{Kind: mapping.Pool, Name: "L6.pool2", InC: 128, OutC: 128, K: 2, Stride: 2, InH: 16, InW: 16},
		{Kind: mapping.Conv, Name: "L7.conv5", InC: 128, OutC: 256, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8},
		{Kind: mapping.Conv, Name: "L8.conv6", InC: 256, OutC: 256, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8},
		{Kind: mapping.Pool, Name: "L9.pool3", InC: 256, OutC: 256, K: 2, Stride: 2, InH: 8, InW: 8},
		{Kind: mapping.FC, Name: "L10.fc1", InC: 256 * 4 * 4, OutC: 512},
		{Kind: mapping.FC, Name: "L11.fc2", InC: 512, OutC: 512},
		{Kind: mapping.FC, Name: "L12.fc3", InC: 512, OutC: classes},
	}
}

// VGG9WithCA prepends the Compressive Acquisitor stage (2x2 fused
// grayscale + pooling over the 32x32 RGB input) and adapts the first conv
// layer to the compressed 16x16x1 input — the configuration Fig. 9
// evaluates ("a 42.2% reduction in power consumption of the first layer").
func VGG9WithCA(classes int) []mapping.LayerDims {
	layers := []mapping.LayerDims{
		{Kind: mapping.CACompress, Name: "L0.ca", InC: 1, OutC: 1, K: 2, Stride: 2, InH: 32, InW: 32},
		{Kind: mapping.Conv, Name: "L1.conv1", InC: 1, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16},
		{Kind: mapping.Conv, Name: "L2.conv2", InC: 64, OutC: 64, K: 3, Stride: 1, Pad: 1, InH: 16, InW: 16},
		{Kind: mapping.Pool, Name: "L3.pool1", InC: 64, OutC: 64, K: 2, Stride: 2, InH: 16, InW: 16},
		{Kind: mapping.Conv, Name: "L4.conv3", InC: 64, OutC: 128, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8},
		{Kind: mapping.Conv, Name: "L5.conv4", InC: 128, OutC: 128, K: 3, Stride: 1, Pad: 1, InH: 8, InW: 8},
		{Kind: mapping.Pool, Name: "L6.pool2", InC: 128, OutC: 128, K: 2, Stride: 2, InH: 8, InW: 8},
		{Kind: mapping.Conv, Name: "L7.conv5", InC: 128, OutC: 256, K: 3, Stride: 1, Pad: 1, InH: 4, InW: 4},
		{Kind: mapping.Conv, Name: "L8.conv6", InC: 256, OutC: 256, K: 3, Stride: 1, Pad: 1, InH: 4, InW: 4},
		{Kind: mapping.Pool, Name: "L9.pool3", InC: 256, OutC: 256, K: 2, Stride: 2, InH: 4, InW: 4},
		{Kind: mapping.FC, Name: "L10.fc1", InC: 256 * 2 * 2, OutC: 512},
		{Kind: mapping.FC, Name: "L11.fc2", InC: 512, OutC: 512},
		{Kind: mapping.FC, Name: "L12.fc3", InC: 512, OutC: classes},
	}
	return layers
}

// AlexNet returns the 8 weight layers of AlexNet on 227x227x3 input.
func AlexNet() []mapping.LayerDims {
	return []mapping.LayerDims{
		{Kind: mapping.Conv, Name: "conv1", InC: 3, OutC: 96, K: 11, Stride: 4, InH: 227, InW: 227},
		{Kind: mapping.Pool, Name: "pool1", InC: 96, OutC: 96, K: 3, Stride: 2, InH: 55, InW: 55},
		{Kind: mapping.Conv, Name: "conv2", InC: 96, OutC: 256, K: 5, Stride: 1, Pad: 2, InH: 27, InW: 27},
		{Kind: mapping.Pool, Name: "pool2", InC: 256, OutC: 256, K: 3, Stride: 2, InH: 27, InW: 27},
		{Kind: mapping.Conv, Name: "conv3", InC: 256, OutC: 384, K: 3, Stride: 1, Pad: 1, InH: 13, InW: 13},
		{Kind: mapping.Conv, Name: "conv4", InC: 384, OutC: 384, K: 3, Stride: 1, Pad: 1, InH: 13, InW: 13},
		{Kind: mapping.Conv, Name: "conv5", InC: 384, OutC: 256, K: 3, Stride: 1, Pad: 1, InH: 13, InW: 13},
		{Kind: mapping.FC, Name: "fc6", InC: 256 * 6 * 6, OutC: 4096},
		{Kind: mapping.FC, Name: "fc7", InC: 4096, OutC: 4096},
		{Kind: mapping.FC, Name: "fc8", InC: 4096, OutC: 1000},
	}
}

// vggBlock appends n same-padding 3x3 conv layers then a 2x2 pool.
func vggBlock(layers []mapping.LayerDims, prefix string, n, inC, outC, hw int) ([]mapping.LayerDims, int, int) {
	c := inC
	for i := 0; i < n; i++ {
		layers = append(layers, mapping.LayerDims{
			Kind: mapping.Conv, Name: fmt.Sprintf("%s.conv%d", prefix, i+1),
			InC: c, OutC: outC, K: 3, Stride: 1, Pad: 1, InH: hw, InW: hw,
		})
		c = outC
	}
	layers = append(layers, mapping.LayerDims{
		Kind: mapping.Pool, Name: prefix + ".pool",
		InC: outC, OutC: outC, K: 2, Stride: 2, InH: hw, InW: hw,
	})
	return layers, outC, hw / 2
}

// VGG16 returns VGG16 on 224x224x3 input (13 conv + 5 pool + 3 FC).
func VGG16() []mapping.LayerDims {
	var layers []mapping.LayerDims
	c, hw := 3, 224
	layers, c, hw = vggBlock(layers, "b1", 2, c, 64, hw)
	layers, c, hw = vggBlock(layers, "b2", 2, c, 128, hw)
	layers, c, hw = vggBlock(layers, "b3", 3, c, 256, hw)
	layers, c, hw = vggBlock(layers, "b4", 3, c, 512, hw)
	layers, c, hw = vggBlock(layers, "b5", 3, c, 512, hw)
	layers = append(layers,
		mapping.LayerDims{Kind: mapping.FC, Name: "fc6", InC: c * hw * hw, OutC: 4096},
		mapping.LayerDims{Kind: mapping.FC, Name: "fc7", InC: 4096, OutC: 4096},
		mapping.LayerDims{Kind: mapping.FC, Name: "fc8", InC: 4096, OutC: 1000},
	)
	return layers
}

// VGG13 returns VGG13 on 224x224x3 input (10 conv + 5 pool + 3 FC); the
// paper substitutes it for YodaNN's VGG16 result in Fig. 10.
func VGG13() []mapping.LayerDims {
	var layers []mapping.LayerDims
	c, hw := 3, 224
	layers, c, hw = vggBlock(layers, "b1", 2, c, 64, hw)
	layers, c, hw = vggBlock(layers, "b2", 2, c, 128, hw)
	layers, c, hw = vggBlock(layers, "b3", 2, c, 256, hw)
	layers, c, hw = vggBlock(layers, "b4", 2, c, 512, hw)
	layers, c, hw = vggBlock(layers, "b5", 2, c, 512, hw)
	layers = append(layers,
		mapping.LayerDims{Kind: mapping.FC, Name: "fc6", InC: c * hw * hw, OutC: 4096},
		mapping.LayerDims{Kind: mapping.FC, Name: "fc7", InC: 4096, OutC: 4096},
		mapping.LayerDims{Kind: mapping.FC, Name: "fc8", InC: 4096, OutC: 1000},
	)
	return layers
}

// ByName resolves a descriptor model by its lowercase name.
func ByName(name string) ([]mapping.LayerDims, error) {
	switch name {
	case "lenet":
		return LeNet(), nil
	case "vgg9":
		return VGG9(10), nil
	case "vgg9-ca":
		return VGG9WithCA(10), nil
	case "vgg9-cifar100":
		return VGG9(100), nil
	case "vgg13":
		return VGG13(), nil
	case "vgg16":
		return VGG16(), nil
	case "alexnet":
		return AlexNet(), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
}

// TotalMACs sums the MAC count of a descriptor model.
func TotalMACs(layers []mapping.LayerDims) int64 {
	var total int64
	for _, l := range layers {
		total += l.MACs()
	}
	return total
}

// TotalWeights sums the stored parameters of a descriptor model.
func TotalWeights(layers []mapping.LayerDims) int64 {
	var total int64
	for _, l := range layers {
		total += l.Weights()
	}
	return total
}

// BuildLeNet constructs the trainable LeNet-5 for 28x28x1 inputs with
// activation quantizers ready for QAT at the given activation bits.
func BuildLeNet(classes, aBits int) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2D("conv1", 1, 6, 5, 1, 2),
		nn.NewReLU("relu1"),
		nn.NewActQuant("aq1", aBits),
		nn.NewAvgPool2D("pool1", 2),
		nn.NewConv2D("conv2", 6, 16, 5, 1, 0),
		nn.NewReLU("relu2"),
		nn.NewActQuant("aq2", aBits),
		nn.NewAvgPool2D("pool2", 2),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", 400, 120),
		nn.NewReLU("relu3"),
		nn.NewActQuant("aq3", aBits),
		nn.NewDense("fc2", 120, 84),
		nn.NewReLU("relu4"),
		nn.NewActQuant("aq4", aBits),
		nn.NewDense("fc3", 84, classes),
	)
}

// BuildVGG9Slim constructs a width-reduced trainable VGG9 for inH x inW
// inputs with inC channels. width is the first block's channel count
// (the paper-scale model uses 64); deeper blocks double it. Used for the
// synthetic CIFAR tasks where paper-scale training is out of scope.
func BuildVGG9Slim(inC, inH, inW, classes, width, aBits int) (*nn.Sequential, error) {
	if inH%8 != 0 || inW%8 != 0 {
		return nil, fmt.Errorf("models: input %dx%d must be divisible by 8 (three pools)", inH, inW)
	}
	w1, w2, w3 := width, width*2, width*4
	fcIn := w3 * (inH / 8) * (inW / 8)
	fcW := w3 * 2
	return nn.NewSequential(
		nn.NewConv2D("conv1", inC, w1, 3, 1, 1),
		nn.NewReLU("relu1"),
		nn.NewActQuant("aq1", aBits),
		nn.NewConv2D("conv2", w1, w1, 3, 1, 1),
		nn.NewReLU("relu2"),
		nn.NewActQuant("aq2", aBits),
		nn.NewAvgPool2D("pool1", 2),
		nn.NewConv2D("conv3", w1, w2, 3, 1, 1),
		nn.NewReLU("relu3"),
		nn.NewActQuant("aq3", aBits),
		nn.NewConv2D("conv4", w2, w2, 3, 1, 1),
		nn.NewReLU("relu4"),
		nn.NewActQuant("aq4", aBits),
		nn.NewAvgPool2D("pool2", 2),
		nn.NewConv2D("conv5", w2, w3, 3, 1, 1),
		nn.NewReLU("relu5"),
		nn.NewActQuant("aq5", aBits),
		nn.NewConv2D("conv6", w3, w3, 3, 1, 1),
		nn.NewReLU("relu6"),
		nn.NewActQuant("aq6", aBits),
		nn.NewAvgPool2D("pool3", 2),
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", fcIn, fcW),
		nn.NewReLU("relu7"),
		nn.NewActQuant("aq7", aBits),
		nn.NewDense("fc2", fcW, fcW),
		nn.NewReLU("relu8"),
		nn.NewActQuant("aq8", aBits),
		nn.NewDense("fc3", fcW, classes),
	), nil
}
