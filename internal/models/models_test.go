package models

import (
	"strings"
	"testing"

	"lightator/internal/mapping"
	"lightator/internal/nn"
)

func validateAll(t *testing.T, layers []mapping.LayerDims) {
	t.Helper()
	for _, l := range layers {
		if err := l.Validate(); err != nil {
			t.Errorf("layer %s: %v", l.Name, err)
		}
		if _, err := mapping.ScheduleLayer(l); err != nil {
			t.Errorf("layer %s does not schedule: %v", l.Name, err)
		}
	}
}

func TestLeNetDescriptor(t *testing.T) {
	layers := LeNet()
	if len(layers) != 7 {
		t.Fatalf("LeNet has %d layers, want 7 (paper Fig. 8 L1..L7)", len(layers))
	}
	validateAll(t, layers)
	// Spatial chain: conv1 keeps 28 (pad 2), pool to 14, conv2 to 10,
	// pool to 5, fc1 consumes 16*5*5=400.
	if layers[0].OutH() != 28 {
		t.Errorf("conv1 out %d", layers[0].OutH())
	}
	if layers[3].OutH() != 5 {
		t.Errorf("pool2 out %d", layers[3].OutH())
	}
	if layers[4].InC != 400 {
		t.Errorf("fc1 fan-in %d", layers[4].InC)
	}
	// Classic LeNet parameter count ballpark (~61k).
	w := TotalWeights(layers)
	if w < 55000 || w > 70000 {
		t.Errorf("LeNet weights %d, want ~61k", w)
	}
}

func TestVGG9Descriptor(t *testing.T) {
	layers := VGG9(10)
	if len(layers) != 12 {
		t.Fatalf("VGG9 has %d layers, want 12 (paper Fig. 9 L1..L12)", len(layers))
	}
	validateAll(t, layers)
	// L8 is the deepest conv (the Fig. 9 pie-chart layer).
	if !strings.Contains(layers[7].Name, "L8") || layers[7].Kind != mapping.Conv || layers[7].OutC != 256 {
		t.Errorf("L8 = %+v, want 256-channel conv", layers[7])
	}
	// CIFAR100 variant widens only the classifier.
	l100 := VGG9(100)
	if l100[len(l100)-1].OutC != 100 {
		t.Error("VGG9(100) classifier width")
	}
}

func TestVGG9WithCADescriptor(t *testing.T) {
	layers := VGG9WithCA(10)
	if layers[0].Kind != mapping.CACompress {
		t.Fatal("first stage must be the CA")
	}
	validateAll(t, layers)
	// CA compresses 32x32 to 16x16, so L1 sees 16x16x1 input: its MAC
	// count must be far below the plain VGG9 L1.
	plain := VGG9(10)
	caMACs := layers[1].MACs()
	plainMACs := plain[0].MACs()
	if caMACs*4 > plainMACs {
		t.Errorf("CA first-layer MACs %d not clearly below plain %d", caMACs, plainMACs)
	}
}

func TestAlexNetDescriptor(t *testing.T) {
	layers := AlexNet()
	validateAll(t, layers)
	macs := TotalMACs(layers)
	// AlexNet forward pass is ~0.7-1.2 GMAC depending on variant.
	if macs < 600e6 || macs > 1500e6 {
		t.Errorf("AlexNet MACs %d outside expected range", macs)
	}
	w := TotalWeights(layers)
	if w < 50e6 || w > 70e6 {
		t.Errorf("AlexNet weights %d, want ~61M", w)
	}
}

func TestVGG16Descriptor(t *testing.T) {
	layers := VGG16()
	validateAll(t, layers)
	macs := TotalMACs(layers)
	// VGG16 is ~15.5 GMAC.
	if macs < 14e9 || macs > 17e9 {
		t.Errorf("VGG16 MACs %d, want ~15.5G", macs)
	}
	w := TotalWeights(layers)
	if w < 130e6 || w > 145e6 {
		t.Errorf("VGG16 weights %d, want ~138M", w)
	}
	// 13 conv + 5 pool + 3 fc.
	conv, pool, fc := 0, 0, 0
	for _, l := range layers {
		switch l.Kind {
		case mapping.Conv:
			conv++
		case mapping.Pool:
			pool++
		case mapping.FC:
			fc++
		}
	}
	if conv != 13 || pool != 5 || fc != 3 {
		t.Errorf("VGG16 structure %d conv %d pool %d fc", conv, pool, fc)
	}
}

func TestVGG13Descriptor(t *testing.T) {
	layers := VGG13()
	validateAll(t, layers)
	conv := 0
	for _, l := range layers {
		if l.Kind == mapping.Conv {
			conv++
		}
	}
	if conv != 10 {
		t.Errorf("VGG13 has %d conv layers, want 10", conv)
	}
	if TotalMACs(layers) >= TotalMACs(VGG16()) {
		t.Error("VGG13 should cost fewer MACs than VGG16")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"lenet", "vgg9", "vgg9-ca", "vgg9-cifar100", "vgg13", "vgg16", "alexnet"} {
		layers, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(layers) == 0 {
			t.Errorf("%s: empty", name)
		}
	}
	if _, err := ByName("resnet"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestBuildLeNetShapes(t *testing.T) {
	net := BuildLeNet(10, 4)
	net.InitHe(1)
	x := nn.NewTensor(2, 1, 28, 28)
	y, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("output %v", y.Shape)
	}
}

func TestBuildVGG9SlimShapes(t *testing.T) {
	net, err := BuildVGG9Slim(1, 16, 16, 10, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	net.InitHe(1)
	x := nn.NewTensor(1, 1, 16, 16)
	y, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(1) != 10 {
		t.Fatalf("output %v", y.Shape)
	}
	if _, err := BuildVGG9Slim(3, 30, 30, 10, 8, 4); err == nil {
		t.Error("indivisible input accepted")
	}
}
