package nn

import (
	"fmt"
	"math"
)

// ReLU is the rectified linear activation (one of the three activation
// functions Lightator's electronic block supports: Sign, ReLU, tanh).
type ReLU struct {
	LayerName string
	mask      []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// CloneShared implements Layer.
func (r *ReLU) CloneShared() Layer { return &ReLU{LayerName: r.LayerName} }

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor, train bool) (*Tensor, error) {
	y := x.Clone()
	if train {
		r.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v <= 0 {
			y.Data[i] = 0
		} else if train {
			r.mask[i] = true
		}
	}
	return y, nil
}

// ForwardInplace implements InplaceLayer: the inference-mode rectification
// applied directly to x.
func (r *ReLU) ForwardInplace(x *Tensor) error {
	for i, v := range x.Data {
		if v <= 0 {
			x.Data[i] = 0
		}
	}
	return nil
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *Tensor) (*Tensor, error) {
	if r.mask == nil {
		return nil, fmt.Errorf("relu %s: backward before training forward", r.LayerName)
	}
	dx := dy.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	LayerName string
	y         *Tensor
}

// NewTanh constructs a tanh layer.
func NewTanh(name string) *Tanh { return &Tanh{LayerName: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.LayerName }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// CloneShared implements Layer.
func (t *Tanh) CloneShared() Layer { return &Tanh{LayerName: t.LayerName} }

// Forward implements Layer.
func (t *Tanh) Forward(x *Tensor, train bool) (*Tensor, error) {
	y := x.Clone()
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	if train {
		t.y = y
	}
	return y, nil
}

// Backward implements Layer.
func (t *Tanh) Backward(dy *Tensor) (*Tensor, error) {
	if t.y == nil {
		return nil, fmt.Errorf("tanh %s: backward before training forward", t.LayerName)
	}
	dx := dy.Clone()
	for i := range dx.Data {
		dx.Data[i] *= 1 - t.y.Data[i]*t.y.Data[i]
	}
	return dx, nil
}

// Sign is the binary sign activation with a straight-through estimator
// (hard-tanh window) for training, used by binary networks such as the
// LightBulb and Robin baselines.
type Sign struct {
	LayerName string
	x         *Tensor
}

// NewSign constructs a sign-activation layer.
func NewSign(name string) *Sign { return &Sign{LayerName: name} }

// Name implements Layer.
func (s *Sign) Name() string { return s.LayerName }

// Params implements Layer.
func (s *Sign) Params() []*Param { return nil }

// CloneShared implements Layer.
func (s *Sign) CloneShared() Layer { return &Sign{LayerName: s.LayerName} }

// Forward implements Layer.
func (s *Sign) Forward(x *Tensor, train bool) (*Tensor, error) {
	y := x.Clone()
	for i, v := range x.Data {
		if v >= 0 {
			y.Data[i] = 1
		} else {
			y.Data[i] = -1
		}
	}
	if train {
		s.x = x
	}
	return y, nil
}

// Backward implements Layer: straight-through estimator, gradients pass
// where |x| <= 1.
func (s *Sign) Backward(dy *Tensor) (*Tensor, error) {
	if s.x == nil {
		return nil, fmt.Errorf("sign %s: backward before training forward", s.LayerName)
	}
	dx := dy.Clone()
	for i := range dx.Data {
		if math.Abs(s.x.Data[i]) > 1 {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// Flatten reshapes NCHW to [N, C*H*W].
type Flatten struct {
	LayerName string
	inShape   []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// CloneShared implements Layer.
func (f *Flatten) CloneShared() Layer { return &Flatten{LayerName: f.LayerName} }

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor, train bool) (*Tensor, error) {
	if len(x.Shape) < 2 {
		return nil, fmt.Errorf("flatten %s: input rank %d", f.LayerName, len(x.Shape))
	}
	if train {
		f.inShape = append([]int(nil), x.Shape...)
	}
	d := 1
	for _, s := range x.Shape[1:] {
		d *= s
	}
	return x.Reshape(x.Shape[0], d)
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *Tensor) (*Tensor, error) {
	if f.inShape == nil {
		return nil, fmt.Errorf("flatten %s: backward before training forward", f.LayerName)
	}
	return dy.Reshape(f.inShape...)
}
