package nn

import "lightator/internal/oc"

// EnableAnalogQAT walks a network and routes every Conv2D and Dense
// forward pass through the analog optical model of core: effective
// weights become exactly the noiseless per-coefficient transfer the
// served optical path realises (full-scale normalisation, MR level grid,
// Lorentzian-tail crosstalk of the 9-ring arm segments, and the rank-1
// defect calibration the serving path restores digitally). The backward
// pass keeps the straight-through estimator — gradients flow to the
// float weights as if the analog map were the identity — which is the
// standard recipe for training through a non-differentiable hardware
// forward (cf. the multilayer nonlinear ONN image-sensing frontends that
// train through their optics).
//
// A WeightQuant with the core's weight precision is attached alongside,
// so NewPhotonicExec and the serving compiler read the same bit width
// the analog forward used. Mixed-precision overrides can still be
// applied afterwards with SetLayerWeightBits plus a per-layer Analog
// core of matching precision.
//
// With a Physical-fidelity core the analog forward is deterministic
// (crosstalk only, no shot noise), so training remains bit-reproducible.
func EnableAnalogQAT(net *Sequential, core *oc.Core) {
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			layer.WQuant = &WeightQuant{Bits: core.WBits}
			layer.Analog = core
		case *Dense:
			layer.WQuant = &WeightQuant{Bits: core.WBits}
			layer.Analog = core
		}
	}
}

// DisableAnalogQAT detaches the analog forward from every layer, leaving
// any WeightQuant in place (the network falls back to plain grid QAT).
func DisableAnalogQAT(net *Sequential) {
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			layer.Analog = nil
		case *Dense:
			layer.Analog = nil
		}
	}
}

// ActQuants returns the network's activation quantizers in layer order.
// The trainer uses the shared order to reduce observed batch maxima
// across worker clones index-by-index.
func ActQuants(net *Sequential) []*ActQuant {
	var qs []*ActQuant
	for _, l := range net.Layers {
		if aq, ok := l.(*ActQuant); ok {
			qs = append(qs, aq)
		}
	}
	return qs
}

// SetActQuantExternal switches every activation quantizer between
// self-calibration (each training forward applies the momentum rule
// locally) and external calibration (forwards only record the observed
// maximum; the caller reduces and applies UpdateScale). Deterministic
// data-parallel training requires external mode: per-clone momentum
// updates would depend on how the batch was partitioned.
func SetActQuantExternal(net *Sequential, on bool) {
	for _, l := range net.Layers {
		if aq, ok := l.(*ActQuant); ok {
			aq.External = on
			aq.BatchMax = 0
		}
	}
}
