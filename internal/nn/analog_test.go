package nn

import (
	"math/rand"
	"testing"

	"lightator/internal/oc"
)

// TestEnableDisableAnalogQAT: enabling attaches both the weight
// quantizer (at the core's precision) and the analog forward to every
// Conv2D and Dense; disabling detaches only the analog forward.
func TestEnableDisableAnalogQAT(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	net := NewSequential(
		NewConv2D("c1", 1, 2, 3, 1, 1),
		NewReLU("r1"),
		NewFlatten("f"),
		NewDense("d1", 2*4*4, 3),
	)
	EnableAnalogQAT(net, core)
	conv := net.Layers[0].(*Conv2D)
	dense := net.Layers[3].(*Dense)
	if conv.Analog != core || dense.Analog != core {
		t.Fatal("analog core not attached to every Conv2D/Dense")
	}
	if conv.WQuant == nil || conv.WQuant.Bits != core.WBits {
		t.Fatalf("conv weight quantizer not set to core precision: %+v", conv.WQuant)
	}
	if dense.WQuant == nil || dense.WQuant.Bits != core.WBits {
		t.Fatalf("dense weight quantizer not set to core precision: %+v", dense.WQuant)
	}
	DisableAnalogQAT(net)
	if conv.Analog != nil || dense.Analog != nil {
		t.Fatal("DisableAnalogQAT left an analog core attached")
	}
	if conv.WQuant == nil || dense.WQuant == nil {
		t.Fatal("DisableAnalogQAT should keep the plain weight quantizers")
	}
}

// TestAnalogEffectiveWeights: with an analog core attached, the layer's
// effective weights are exactly the core's fidelity-true transfer — and
// in Physical fidelity they differ from the plain quantization grid
// (that difference is the crosstalk the QAT loop trains against).
func TestAnalogEffectiveWeights(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDense("d", 12, 4)
	rng := rand.New(rand.NewSource(7))
	for i := range d.W.Data {
		d.W.Data[i] = rng.Float64()*2 - 1
	}
	d.WQuant = &WeightQuant{Bits: core.WBits}
	d.Analog = core

	got := d.effectiveWeights()
	want := make([]float64, len(d.W.Data))
	if err := core.AnalogWeightsInto(want, d.W.Data, d.Out, d.In); err != nil {
		t.Fatal(err)
	}
	plain := make([]float64, len(d.W.Data))
	d.WQuant.Apply(d.W.Data, plain)
	differs := false
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("effective weight %d: got %v, want analog %v", i, got[i], want[i])
		}
		if got[i] != plain[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("Physical analog weights identical to the plain grid — crosstalk not in the loop")
	}
}

// TestAnalogSTEBackward: the backward pass is a straight-through
// estimator — the weight gradient is the plain dense gradient (dy ⊗ x),
// untouched by the analog map, so float weights keep training.
func TestAnalogSTEBackward(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDense("d", 5, 3)
	rng := rand.New(rand.NewSource(9))
	for i := range d.W.Data {
		d.W.Data[i] = rng.Float64()*2 - 1
	}
	d.WQuant = &WeightQuant{Bits: core.WBits}
	d.Analog = core

	x := NewTensor(1, 5)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	if _, err := d.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	dy := NewTensor(1, 3)
	for i := range dy.Data {
		dy.Data[i] = 1
	}
	dx, err := d.Backward(dy)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < d.Out; o++ {
		for i := 0; i < d.In; i++ {
			if d.W.Grad[o*d.In+i] != x.Data[i] {
				t.Fatalf("STE weight grad [%d,%d] = %v, want x[%d] = %v",
					o, i, d.W.Grad[o*d.In+i], i, x.Data[i])
			}
		}
	}
	// dx flows through the effective (analog) weights.
	wts := d.effectiveWeights()
	for i := 0; i < d.In; i++ {
		want := 0.0
		for o := 0; o < d.Out; o++ {
			want += wts[o*d.In+i]
		}
		if dx.Data[i] != want {
			t.Fatalf("dx[%d] = %v, want sum of analog weights %v", i, dx.Data[i], want)
		}
	}
}

// TestCloneSharedCopiesAnalog: worker clones must see the same analog
// core (and quantizer) as the master, or data-parallel QAT would train a
// different forward per worker.
func TestCloneSharedCopiesAnalog(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	net := NewSequential(
		NewConv2D("c1", 1, 2, 3, 1, 1),
		NewFlatten("f"),
		NewDense("d1", 2*4*4, 3),
	)
	EnableAnalogQAT(net, core)
	clone := net.CloneShared()
	if c := clone.Layers[0].(*Conv2D); c.Analog != core || c.WQuant == nil {
		t.Fatal("conv clone lost its analog core or quantizer")
	}
	if d := clone.Layers[2].(*Dense); d.Analog != core || d.WQuant == nil {
		t.Fatal("dense clone lost its analog core or quantizer")
	}
}

// TestActQuantExternalMode: external calibration records the observed
// batch maximum without touching Scale; TakeBatchMax drains the tracker;
// UpdateScale applies the momentum rule once, exactly like the
// self-calibrating path would have with the same reduced maximum.
func TestActQuantExternalMode(t *testing.T) {
	aq := NewActQuant("q", 4)
	aq.External = true

	x := NewTensor(1, 4)
	copy(x.Data, []float64{0.5, 2.0, 1.0, 0.25})
	if _, err := aq.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if aq.Scale != 0 {
		t.Fatalf("external forward moved Scale to %v", aq.Scale)
	}
	if aq.BatchMax != 2.0 {
		t.Fatalf("BatchMax = %v, want 2.0", aq.BatchMax)
	}
	// A smaller batch must not shrink the tracked maximum.
	y := NewTensor(1, 2)
	copy(y.Data, []float64{0.1, 0.2})
	if _, err := aq.Forward(y, true); err != nil {
		t.Fatal(err)
	}
	if aq.BatchMax != 2.0 {
		t.Fatalf("BatchMax shrank to %v", aq.BatchMax)
	}
	if m := aq.TakeBatchMax(); m != 2.0 {
		t.Fatalf("TakeBatchMax = %v, want 2.0", m)
	}
	if aq.BatchMax != 0 {
		t.Fatalf("TakeBatchMax did not reset the tracker: %v", aq.BatchMax)
	}

	aq.UpdateScale(2.0)
	if aq.Scale != 2.0 {
		t.Fatalf("first UpdateScale: Scale = %v, want 2.0 (instant on zero scale)", aq.Scale)
	}
	aq.UpdateScale(1.0)
	if want := 0.9*2.0 + 0.1*1.0; aq.Scale != want {
		t.Fatalf("momentum UpdateScale: Scale = %v, want %v", aq.Scale, want)
	}
	aq.Frozen = true
	aq.UpdateScale(10)
	if want := 0.9*2.0 + 0.1*1.0; aq.Scale != want {
		t.Fatalf("frozen UpdateScale moved Scale to %v", aq.Scale)
	}

	// CloneShared must not carry a pending batch maximum into a worker.
	aq.Frozen = false
	aq.BatchMax = 5
	clone := aq.CloneShared().(*ActQuant)
	if clone.BatchMax != 0 {
		t.Fatalf("clone inherited BatchMax %v", clone.BatchMax)
	}
	if !clone.External || clone.Scale != aq.Scale {
		t.Fatal("clone lost External mode or Scale")
	}
}

// TestActQuantsOrder: ActQuants returns the quantizers in layer order —
// the index-aligned reduction across clones depends on it.
func TestActQuantsOrder(t *testing.T) {
	a1, a2 := NewActQuant("a1", 4), NewActQuant("a2", 4)
	net := NewSequential(NewFlatten("f"), a1, NewDense("d", 4, 4), a2)
	qs := ActQuants(net)
	if len(qs) != 2 || qs[0] != a1 || qs[1] != a2 {
		t.Fatalf("ActQuants order wrong: %v", qs)
	}
	SetActQuantExternal(net, true)
	if !a1.External || !a2.External {
		t.Fatal("SetActQuantExternal(true) missed a quantizer")
	}
	a1.BatchMax = 3
	SetActQuantExternal(net, false)
	if a1.External || a1.BatchMax != 0 {
		t.Fatal("SetActQuantExternal(false) should clear mode and tracker")
	}
}
