package nn

import (
	"fmt"

	"lightator/internal/oc"
)

// Conv2D is a standard 2D convolution over NCHW tensors with optional
// weight fake-quantization for QAT. Weight layout: [OutC][InC][K][K].
type Conv2D struct {
	LayerName      string
	InC, OutC      int
	K, Stride, Pad int
	W, B           *Param

	// WQuant, when non-nil, fake-quantizes weights every forward pass
	// (straight-through estimator: gradients flow to the float weights).
	WQuant *WeightQuant
	// Analog, when non-nil, replaces the fake-quantization grid with the
	// fidelity-true effective weights of the optical core (crosstalk +
	// calibration) — see EnableAnalogQAT.
	Analog *oc.Core

	x  *Tensor   // cached input
	wq []float64 // cached effective (possibly quantized) weights
}

// NewConv2D constructs a convolution layer.
func NewConv2D(name string, inC, outC, k, stride, pad int) *Conv2D {
	return &Conv2D{
		LayerName: name,
		InC:       inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W: NewParam(name+".w", outC*inC*k*k),
		B: NewParam(name+".b", outC),
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.LayerName }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// CloneShared implements Layer.
func (c *Conv2D) CloneShared() Layer {
	return &Conv2D{
		LayerName: c.LayerName,
		InC:       c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		W: c.W.cloneShared(), B: c.B.cloneShared(),
		WQuant: c.WQuant, Analog: c.Analog,
	}
}

// OutHW returns the output spatial size for an input of h x w.
func (c *Conv2D) OutHW(h, w int) (int, int) {
	return (h+2*c.Pad-c.K)/c.Stride + 1, (w+2*c.Pad-c.K)/c.Stride + 1
}

// effectiveWeights returns the weights used for compute: fake-quantized
// when QAT is enabled, raw otherwise.
func (c *Conv2D) effectiveWeights() []float64 {
	if c.WQuant == nil && c.Analog == nil {
		return c.W.Data
	}
	if cap(c.wq) < len(c.W.Data) {
		c.wq = make([]float64, len(c.W.Data))
	}
	c.wq = c.wq[:len(c.W.Data)]
	if c.Analog != nil {
		// Shapes are consistent by construction, so this cannot fail.
		if err := c.Analog.AnalogWeightsInto(c.wq, c.W.Data, c.OutC, c.InC*c.K*c.K); err != nil {
			panic(fmt.Sprintf("conv %s: analog weights: %v", c.LayerName, err))
		}
		return c.wq
	}
	c.WQuant.Apply(c.W.Data, c.wq)
	return c.wq
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("conv %s: input rank %d, want 4", c.LayerName, len(x.Shape))
	}
	if x.Shape[1] != c.InC {
		return nil, fmt.Errorf("conv %s: input channels %d, want %d", c.LayerName, x.Shape[1], c.InC)
	}
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := c.OutHW(h, w)
	if oh < 1 || ow < 1 {
		return nil, fmt.Errorf("conv %s: empty output for input %dx%d", c.LayerName, h, w)
	}
	if train {
		c.x = x
	} else {
		c.x = nil
	}
	wts := c.effectiveWeights()
	y := NewTensor(n, c.OutC, oh, ow)
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.B.Data[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bias
					for ic := 0; ic < c.InC; ic++ {
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride + ky - c.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride + kx - c.Pad
								if ix < 0 || ix >= w {
									continue
								}
								sum += wts[wBase+ky*c.K+kx] * x.At4(b, ic, iy, ix)
							}
						}
					}
					y.Set4(b, oc, oy, ox, sum)
				}
			}
		}
	}
	return y, nil
}

// Backward implements Layer. Gradients w.r.t. quantized weights pass
// straight through to the float weights (STE).
func (c *Conv2D) Backward(dy *Tensor) (*Tensor, error) {
	if c.x == nil {
		return nil, fmt.Errorf("conv %s: backward before training forward", c.LayerName)
	}
	x := c.x
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh, ow := dy.Shape[2], dy.Shape[3]
	wts := c.effectiveWeights()
	dx := x.ZerosLike()
	for b := 0; b < n; b++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.At4(b, oc, oy, ox)
					if g == 0 {
						continue
					}
					c.B.Grad[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						for ky := 0; ky < c.K; ky++ {
							iy := oy*c.Stride + ky - c.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ox*c.Stride + kx - c.Pad
								if ix < 0 || ix >= w {
									continue
								}
								xi := x.At4(b, ic, iy, ix)
								c.W.Grad[wBase+ky*c.K+kx] += g * xi
								dx.Set4(b, ic, iy, ix, dx.At4(b, ic, iy, ix)+g*wts[wBase+ky*c.K+kx])
							}
						}
					}
				}
			}
		}
	}
	return dx, nil
}
