package nn

import (
	"fmt"

	"lightator/internal/oc"
)

// Dense is a fully-connected layer over [N, D] tensors with optional
// weight fake-quantization. Weight layout: [Out][In].
type Dense struct {
	LayerName string
	In, Out   int
	W, B      *Param
	WQuant    *WeightQuant
	// Analog, when non-nil, replaces the fake-quantization grid with the
	// fidelity-true effective weights of the optical core (crosstalk +
	// calibration) — see EnableAnalogQAT.
	Analog *oc.Core

	x  *Tensor
	wq []float64
}

// NewDense constructs a fully-connected layer.
func NewDense(name string, in, out int) *Dense {
	return &Dense{
		LayerName: name,
		In:        in, Out: out,
		W: NewParam(name+".w", out*in),
		B: NewParam(name+".b", out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// CloneShared implements Layer.
func (d *Dense) CloneShared() Layer {
	return &Dense{
		LayerName: d.LayerName,
		In:        d.In, Out: d.Out,
		W: d.W.cloneShared(), B: d.B.cloneShared(),
		WQuant: d.WQuant, Analog: d.Analog,
	}
}

func (d *Dense) effectiveWeights() []float64 {
	if d.WQuant == nil && d.Analog == nil {
		return d.W.Data
	}
	if cap(d.wq) < len(d.W.Data) {
		d.wq = make([]float64, len(d.W.Data))
	}
	d.wq = d.wq[:len(d.W.Data)]
	if d.Analog != nil {
		// Shapes are consistent by construction, so this cannot fail.
		if err := d.Analog.AnalogWeightsInto(d.wq, d.W.Data, d.Out, d.In); err != nil {
			panic(fmt.Sprintf("dense %s: analog weights: %v", d.LayerName, err))
		}
		return d.wq
	}
	d.WQuant.Apply(d.W.Data, d.wq)
	return d.wq
}

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor, train bool) (*Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("dense %s: input rank %d, want 2 (flatten first)", d.LayerName, len(x.Shape))
	}
	if x.Shape[1] != d.In {
		return nil, fmt.Errorf("dense %s: input width %d, want %d", d.LayerName, x.Shape[1], d.In)
	}
	if train {
		d.x = x
	} else {
		d.x = nil
	}
	wts := d.effectiveWeights()
	n := x.Shape[0]
	y := NewTensor(n, d.Out)
	for b := 0; b < n; b++ {
		xRow := x.Data[b*d.In : (b+1)*d.In]
		yRow := y.Data[b*d.Out : (b+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			sum := d.B.Data[o]
			wRow := wts[o*d.In : (o+1)*d.In]
			for i, xi := range xRow {
				sum += wRow[i] * xi
			}
			yRow[o] = sum
		}
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(dy *Tensor) (*Tensor, error) {
	if d.x == nil {
		return nil, fmt.Errorf("dense %s: backward before training forward", d.LayerName)
	}
	x := d.x
	n := x.Shape[0]
	wts := d.effectiveWeights()
	dx := x.ZerosLike()
	for b := 0; b < n; b++ {
		xRow := x.Data[b*d.In : (b+1)*d.In]
		dxRow := dx.Data[b*d.In : (b+1)*d.In]
		gRow := dy.Data[b*d.Out : (b+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			g := gRow[o]
			if g == 0 {
				continue
			}
			d.B.Grad[o] += g
			wRow := wts[o*d.In : (o+1)*d.In]
			gwRow := d.W.Grad[o*d.In : (o+1)*d.In]
			for i, xi := range xRow {
				gwRow[i] += g * xi
				dxRow[i] += g * wRow[i]
			}
		}
	}
	return dx, nil
}
