package nn

import (
	"math/rand"
	"testing"
)

// TestForwardInplaceMatchesForward pins the InplaceLayer contract: the
// in-place inference transform must be bit-identical to Forward(x,
// false), for both implementing layers, including the uncalibrated
// ActQuant pass-through.
func TestForwardInplaceMatchesForward(t *testing.T) {
	calibrated := NewActQuant("aq", 4)
	calibrated.Scale = 0.8
	calibrated.Frozen = true
	layers := []InplaceLayer{
		NewReLU("relu"),
		calibrated,
		NewActQuant("aq-uncalibrated", 4), // Scale == 0: pass-through
	}
	rng := rand.New(rand.NewSource(11))
	for _, l := range layers {
		x := NewTensor(2, 3, 4, 4)
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2.4 - 1 // exercises clip, negatives, > scale
		}
		want, err := l.Forward(x, false)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if err := l.ForwardInplace(x); err != nil {
			t.Fatalf("%s inplace: %v", l.Name(), err)
		}
		for i := range x.Data {
			if x.Data[i] != want.Data[i] {
				t.Fatalf("%s: element %d: inplace %g != forward %g", l.Name(), i, x.Data[i], want.Data[i])
			}
		}
	}
}
