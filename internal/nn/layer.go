package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one stage of a feed-forward network. Forward caches whatever
// Backward needs; Backward accumulates parameter gradients and returns the
// gradient w.r.t. its input. CloneShared returns a copy that shares weight
// storage but owns private gradient buffers and forward caches, enabling
// data-parallel training.
type Layer interface {
	Name() string
	Forward(x *Tensor, train bool) (*Tensor, error)
	Backward(dy *Tensor) (*Tensor, error)
	Params() []*Param
	CloneShared() Layer
}

// InplaceLayer is implemented by elementwise layers whose inference-mode
// Forward can mutate its input instead of cloning it. ForwardInplace must
// be bit-identical to Forward(x, false) and leave no training caches.
// Serving paths that own their tensors (internal/infer) use it to keep
// big activation maps from being copied once per layer per frame
// (docs/PERF.md); training always goes through Forward, which preserves
// clone semantics for autodiff.
type InplaceLayer interface {
	Layer
	ForwardInplace(x *Tensor) error
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs the network. train enables training-time behaviour
// (activation-scale calibration, caches for backward).
func (s *Sequential) Forward(x *Tensor, train bool) (*Tensor, error) {
	var err error
	for _, l := range s.Layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("nn: %s forward: %w", l.Name(), err)
		}
	}
	return x, nil
}

// Backward propagates the loss gradient through all layers.
func (s *Sequential) Backward(dy *Tensor) error {
	var err error
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy, err = s.Layers[i].Backward(dy)
		if err != nil {
			return fmt.Errorf("nn: %s backward: %w", s.Layers[i].Name(), err)
		}
	}
	return nil
}

// Params returns all trainable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// CloneShared clones the network for a training worker: weights shared,
// gradients and caches private.
func (s *Sequential) CloneShared() *Sequential {
	out := &Sequential{Layers: make([]Layer, len(s.Layers))}
	for i, l := range s.Layers {
		out.Layers[i] = l.CloneShared()
	}
	return out
}

// ParamCount returns the total number of trainable scalars.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.Data)
	}
	return n
}

// InitHe fills weight parameters with He-normal initialisation using the
// given seed. Bias parameters (names ending in ".b") are zeroed.
func (s *Sequential) InitHe(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, l := range s.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			fanIn := layer.InC * layer.K * layer.K
			std := math.Sqrt(2.0 / float64(fanIn))
			for i := range layer.W.Data {
				layer.W.Data[i] = rng.NormFloat64() * std
			}
			for i := range layer.B.Data {
				layer.B.Data[i] = 0
			}
		case *Dense:
			std := math.Sqrt(2.0 / float64(layer.In))
			for i := range layer.W.Data {
				layer.W.Data[i] = rng.NormFloat64() * std
			}
			for i := range layer.B.Data {
				layer.B.Data[i] = 0
			}
		}
	}
}
