package nn

import (
	"fmt"
	"math"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over a
// batch of logits [N, Classes] and integer labels, and the gradient of the
// loss w.r.t. the logits.
func SoftmaxCrossEntropy(logits *Tensor, labels []int) (float64, *Tensor, error) {
	if len(logits.Shape) != 2 {
		return 0, nil, fmt.Errorf("nn: loss wants [N,C] logits, got rank %d", len(logits.Shape))
	}
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		return 0, nil, fmt.Errorf("nn: %d labels for batch of %d", len(labels), n)
	}
	grad := logits.ZerosLike()
	loss := 0.0
	for b := 0; b < n; b++ {
		if labels[b] < 0 || labels[b] >= c {
			return 0, nil, fmt.Errorf("nn: label %d outside [0,%d)", labels[b], c)
		}
		row := logits.Data[b*c : (b+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logSum := math.Log(sum) + maxV
		loss += logSum - row[labels[b]]
		gRow := grad.Data[b*c : (b+1)*c]
		for i, v := range row {
			p := math.Exp(v-maxV) / sum
			gRow[i] = p / float64(n)
		}
		gRow[labels[b]] -= 1 / float64(n)
	}
	return loss / float64(n), grad, nil
}

// Argmax returns the predicted class per batch row.
func Argmax(logits *Tensor) []int {
	n, c := logits.Shape[0], logits.Shape[1]
	out := make([]int, n)
	for b := 0; b < n; b++ {
		best := 0
		row := logits.Data[b*c : (b+1)*c]
		for i, v := range row {
			if v > row[best] {
				best = i
			}
		}
		out[b] = best
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *Tensor, labels []int) float64 {
	pred := Argmax(logits)
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}
