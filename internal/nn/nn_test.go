package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4, 5)
	if x.Size() != 120 {
		t.Fatalf("size %d", x.Size())
	}
	x.Set4(1, 2, 3, 4, 7)
	if x.At4(1, 2, 3, 4) != 7 {
		t.Fatal("At4/Set4 round trip failed")
	}
	y := x.Clone()
	y.Set4(1, 2, 3, 4, 9)
	if x.At4(1, 2, 3, 4) != 7 {
		t.Fatal("clone aliased")
	}
	r, err := x.Reshape(6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dim(0) != 6 || r.Dim(1) != 20 {
		t.Fatal("reshape dims wrong")
	}
	if _, err := x.Reshape(7, 7); err == nil {
		t.Fatal("bad reshape accepted")
	}
	x.Fill(-3)
	if x.MaxAbs() != 3 {
		t.Fatalf("maxabs %g", x.MaxAbs())
	}
	if !x.ShapeEquals(y) {
		t.Fatal("equal shapes reported unequal")
	}
}

// numericGrad estimates dLoss/dv for a scalar view into the network.
func numericGrad(f func() float64, v *float64) float64 {
	const eps = 1e-5
	old := *v
	*v = old + eps
	up := f()
	*v = old - eps
	down := f()
	*v = old
	return (up - down) / (2 * eps)
}

// TestConvGradCheck verifies Conv2D backward against numeric gradients.
func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D("c", 2, 3, 3, 1, 1)
	for i := range conv.W.Data {
		conv.W.Data[i] = rng.NormFloat64() * 0.5
	}
	for i := range conv.B.Data {
		conv.B.Data[i] = rng.NormFloat64() * 0.1
	}
	x := NewTensor(2, 2, 5, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int{1, 2}
	loss := func() float64 {
		y, err := conv.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		flat, _ := y.Reshape(2, y.Size()/2)
		l, _, err := SoftmaxCrossEntropy(&Tensor{Shape: []int{2, flat.Shape[1]}, Data: flat.Data}, labels)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Analytic gradients.
	y, err := conv.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := y.Reshape(2, y.Size()/2)
	_, g, err := SoftmaxCrossEntropy(flat, labels)
	if err != nil {
		t.Fatal(err)
	}
	gr, _ := g.Reshape(y.Shape...)
	conv.W.ZeroGrad()
	conv.B.ZeroGrad()
	dx, err := conv.Backward(gr)
	if err != nil {
		t.Fatal(err)
	}
	// Check a sample of weight gradients.
	for _, idx := range []int{0, 7, 19, 33, len(conv.W.Data) - 1} {
		num := numericGrad(loss, &conv.W.Data[idx])
		if math.Abs(num-conv.W.Grad[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("W[%d]: analytic %g numeric %g", idx, conv.W.Grad[idx], num)
		}
	}
	for idx := range conv.B.Data {
		num := numericGrad(loss, &conv.B.Data[idx])
		if math.Abs(num-conv.B.Grad[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("B[%d]: analytic %g numeric %g", idx, conv.B.Grad[idx], num)
		}
	}
	// Input gradients.
	for _, idx := range []int{0, 13, 49, len(x.Data) - 1} {
		num := numericGrad(loss, &x.Data[idx])
		if math.Abs(num-dx.Data[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("x[%d]: analytic %g numeric %g", idx, dx.Data[idx], num)
		}
	}
}

// TestDenseGradCheck verifies Dense backward against numeric gradients.
func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense("d", 6, 4)
	for i := range d.W.Data {
		d.W.Data[i] = rng.NormFloat64() * 0.5
	}
	x := NewTensor(3, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int{0, 3, 1}
	loss := func() float64 {
		y, _ := d.Forward(x, true)
		l, _, _ := SoftmaxCrossEntropy(y, labels)
		return l
	}
	y, _ := d.Forward(x, true)
	_, g, _ := SoftmaxCrossEntropy(y, labels)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dx, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 5, 11, 23} {
		num := numericGrad(loss, &d.W.Data[idx])
		if math.Abs(num-d.W.Grad[idx]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("W[%d]: analytic %g numeric %g", idx, d.W.Grad[idx], num)
		}
	}
	for _, idx := range []int{0, 5, 17} {
		num := numericGrad(loss, &x.Data[idx])
		if math.Abs(num-dx.Data[idx]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("x[%d]: analytic %g numeric %g", idx, dx.Data[idx], num)
		}
	}
}

func TestActivationsForwardBackward(t *testing.T) {
	x := NewTensor(1, 4)
	copy(x.Data, []float64{-2, -0.5, 0.5, 2})

	r := NewReLU("r")
	y, _ := r.Forward(x, true)
	wantR := []float64{0, 0, 0.5, 2}
	for i := range wantR {
		if y.Data[i] != wantR[i] {
			t.Errorf("relu[%d] = %g", i, y.Data[i])
		}
	}
	g := NewTensor(1, 4)
	g.Fill(1)
	dg, _ := r.Backward(g)
	wantG := []float64{0, 0, 1, 1}
	for i := range wantG {
		if dg.Data[i] != wantG[i] {
			t.Errorf("relu grad[%d] = %g", i, dg.Data[i])
		}
	}

	s := NewSign("s")
	ys, _ := s.Forward(x, true)
	wantS := []float64{-1, -1, 1, 1}
	for i := range wantS {
		if ys.Data[i] != wantS[i] {
			t.Errorf("sign[%d] = %g", i, ys.Data[i])
		}
	}
	dgs, _ := s.Backward(g)
	wantSG := []float64{0, 1, 1, 0} // STE window |x|<=1
	for i := range wantSG {
		if dgs.Data[i] != wantSG[i] {
			t.Errorf("sign grad[%d] = %g", i, dgs.Data[i])
		}
	}

	th := NewTanh("t")
	yt, _ := th.Forward(x, true)
	for i, v := range x.Data {
		if math.Abs(yt.Data[i]-math.Tanh(v)) > 1e-15 {
			t.Errorf("tanh[%d]", i)
		}
	}
	dt, _ := th.Backward(g)
	for i, v := range x.Data {
		want := 1 - math.Tanh(v)*math.Tanh(v)
		if math.Abs(dt.Data[i]-want) > 1e-12 {
			t.Errorf("tanh grad[%d] = %g, want %g", i, dt.Data[i], want)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := NewTensor(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	p := NewMaxPool2D("p", 2)
	y, err := p.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 7, 13, 15}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("maxpool[%d] = %g, want %g", i, y.Data[i], want[i])
		}
	}
	g := NewTensor(1, 1, 2, 2)
	g.Fill(1)
	dx, _ := p.Backward(g)
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 4 {
		t.Errorf("maxpool grad mass %g, want 4", sum)
	}
	if dx.Data[5] != 1 || dx.Data[7] != 1 || dx.Data[13] != 1 || dx.Data[15] != 1 {
		t.Error("maxpool grad not routed to argmax positions")
	}
	if _, err := p.Forward(NewTensor(1, 1, 5, 5), false); err == nil {
		t.Error("indivisible input accepted")
	}
}

func TestAvgPoolForwardBackward(t *testing.T) {
	x := NewTensor(1, 1, 2, 2)
	copy(x.Data, []float64{1, 2, 3, 4})
	p := NewAvgPool2D("p", 2)
	y, err := p.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[0] != 2.5 {
		t.Errorf("avgpool = %g, want 2.5", y.Data[0])
	}
	g := NewTensor(1, 1, 1, 1)
	g.Fill(1)
	dx, _ := p.Backward(g)
	for i := range dx.Data {
		if dx.Data[i] != 0.25 {
			t.Errorf("avgpool grad[%d] = %g, want 0.25", i, dx.Data[i])
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := NewTensor(2, 3)
	copy(logits.Data, []float64{10, 0, 0, 0, 0, 10})
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("confident correct predictions: loss %g", loss)
	}
	// Gradient rows sum to ~0.
	for b := 0; b < 2; b++ {
		sum := 0.0
		for c := 0; c < 3; c++ {
			sum += grad.At2(b, c)
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("grad row %d sums to %g", b, sum)
		}
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0}); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int{0, 9}); err == nil {
		t.Error("out-of-range label accepted")
	}
	if Accuracy(logits, []int{0, 2}) != 1 {
		t.Error("accuracy should be 1")
	}
	if Accuracy(logits, []int{1, 1}) != 0 {
		t.Error("accuracy should be 0")
	}
}

func TestQuantizeSymmetricGrid(t *testing.T) {
	// 4-bit: 16 levels over [-1,1].
	vals := map[float64]bool{}
	for i := 0; i <= 1000; i++ {
		v := -1 + 2*float64(i)/1000
		q := QuantizeSymmetric(v, 1, 4)
		vals[q] = true
	}
	if len(vals) != 16 {
		t.Errorf("distinct 4-bit levels %d, want 16", len(vals))
	}
	if QuantizeSymmetric(1, 1, 4) != 1 || QuantizeSymmetric(-1, 1, 4) != -1 {
		t.Error("endpoints not preserved")
	}
	if QuantizeSymmetric(5, 1, 4) != 1 {
		t.Error("over-range not clipped")
	}
	if QuantizeSymmetric(0.3, 0, 4) != 0 {
		t.Error("zero scale should map to 0")
	}
}

func TestQuantizeUnsignedGrid(t *testing.T) {
	vals := map[float64]bool{}
	for i := 0; i <= 1000; i++ {
		q := QuantizeUnsigned(float64(i)/1000, 1, 4)
		vals[q] = true
	}
	if len(vals) != 16 {
		t.Errorf("distinct levels %d, want 16", len(vals))
	}
	if QuantizeUnsigned(-0.5, 1, 4) != 0 {
		t.Error("negative not clipped to 0")
	}
	if QuantizeUnsigned(2, 1, 4) != 1 {
		t.Error("over-range not clipped")
	}
}

// Property: quantization error is bounded by half a step.
func TestQuantErrorBoundProperty(t *testing.T) {
	f := func(raw float64, bitsRaw uint8) bool {
		bits := int(bitsRaw%7) + 2
		v := math.Mod(raw, 1)
		step := 2.0 / float64((int(1)<<uint(bits))-1)
		q := QuantizeSymmetric(v, 1, bits)
		return math.Abs(q-v) <= step/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightQuantApply(t *testing.T) {
	q := &WeightQuant{Bits: 4}
	w := []float64{0.5, -0.25, 2.0, -2.0}
	out := make([]float64, 4)
	scale := q.Apply(w, out)
	if scale != 2 {
		t.Errorf("scale %g, want 2 (max abs)", scale)
	}
	if out[2] != 2 || out[3] != -2 {
		t.Error("extremes not preserved")
	}
	// Zero tensor stays zero with zero scale.
	zeros := make([]float64, 3)
	outZ := make([]float64, 3)
	if s := q.Apply(zeros, outZ); s != 0 {
		t.Errorf("zero-tensor scale %g", s)
	}
}

func TestActQuantCalibration(t *testing.T) {
	aq := NewActQuant("aq", 4)
	x := NewTensor(1, 4)
	copy(x.Data, []float64{0, 1, 2, 4})
	if _, err := aq.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if aq.Scale != 4 {
		t.Errorf("first-batch scale %g, want 4", aq.Scale)
	}
	// Momentum update toward a smaller batch max.
	x2 := NewTensor(1, 4)
	copy(x2.Data, []float64{0, 0.5, 1, 2})
	if _, err := aq.Forward(x2, true); err != nil {
		t.Fatal(err)
	}
	want := 0.9*4 + 0.1*2
	if math.Abs(aq.Scale-want) > 1e-12 {
		t.Errorf("momentum scale %g, want %g", aq.Scale, want)
	}
	// Frozen: no update.
	aq.Frozen = true
	s := aq.Scale
	if _, err := aq.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if aq.Scale != s {
		t.Error("frozen quantizer updated its scale")
	}
	// Inference quantizes onto the grid.
	y, _ := aq.Forward(x2, false)
	n := 15.0
	for i, v := range y.Data {
		onGrid := math.Round(v/aq.Scale*n) / n * aq.Scale
		if math.Abs(v-onGrid) > 1e-12 {
			t.Errorf("output[%d] %g off grid", i, v)
		}
	}
}

func TestSequentialTrainsXORLike(t *testing.T) {
	// A tiny end-to-end training sanity check: learn to classify points
	// by quadrant parity (XOR of signs) — requires the hidden layer.
	net := NewSequential(
		NewDense("d1", 2, 16),
		NewReLU("r1"),
		NewDense("d2", 16, 2),
	)
	net.InitHe(7)
	rng := rand.New(rand.NewSource(9))
	sample := func() ([]float64, int) {
		x1 := rng.Float64()*2 - 1
		x2 := rng.Float64()*2 - 1
		label := 0
		if (x1 > 0) != (x2 > 0) {
			label = 1
		}
		return []float64{x1, x2}, label
	}
	lr := 0.1
	for step := 0; step < 600; step++ {
		xb := NewTensor(16, 2)
		labels := make([]int, 16)
		for i := 0; i < 16; i++ {
			v, l := sample()
			xb.Data[i*2], xb.Data[i*2+1] = v[0], v[1]
			labels[i] = l
		}
		net.ZeroGrad()
		y, err := net.Forward(xb, true)
		if err != nil {
			t.Fatal(err)
		}
		_, g, err := SoftmaxCrossEntropy(y, labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Backward(g); err != nil {
			t.Fatal(err)
		}
		for _, p := range net.Params() {
			for i := range p.Data {
				p.Data[i] -= lr * p.Grad[i]
			}
		}
	}
	// Evaluate.
	xb := NewTensor(256, 2)
	labels := make([]int, 256)
	for i := 0; i < 256; i++ {
		v, l := sample()
		xb.Data[i*2], xb.Data[i*2+1] = v[0], v[1]
		labels[i] = l
	}
	y, _ := net.Forward(xb, false)
	if acc := Accuracy(y, labels); acc < 0.9 {
		t.Errorf("XOR accuracy %g, want >= 0.9", acc)
	}
}

func TestCloneSharedSharesWeightsNotGrads(t *testing.T) {
	net := NewSequential(NewDense("d", 4, 2))
	net.InitHe(1)
	clone := net.CloneShared()
	p0 := net.Params()[0]
	p1 := clone.Params()[0]
	if &p0.Data[0] != &p1.Data[0] {
		t.Error("clone does not share weight storage")
	}
	p1.Grad[0] = 5
	if p0.Grad[0] == 5 {
		t.Error("clone shares gradient storage")
	}
}

func TestEnableQATAndMixedPrecision(t *testing.T) {
	net := NewSequential(
		NewConv2D("c1", 1, 2, 3, 1, 0),
		NewReLU("r"),
		NewFlatten("f"),
		NewDense("d", 2*2*2, 10),
	)
	EnableQAT(net, 3)
	conv := net.Layers[0].(*Conv2D)
	dense := net.Layers[3].(*Dense)
	if conv.WQuant == nil || conv.WQuant.Bits != 3 {
		t.Error("conv not quantized to 3 bits")
	}
	if dense.WQuant == nil || dense.WQuant.Bits != 3 {
		t.Error("dense not quantized to 3 bits")
	}
	// MX: first layer back to 4 bits.
	if err := SetLayerWeightBits(net, 0, 4); err != nil {
		t.Fatal(err)
	}
	if conv.WQuant.Bits != 4 {
		t.Error("MX override failed")
	}
	if err := SetLayerWeightBits(net, 5, 4); err == nil {
		t.Error("out-of-range layer index accepted")
	}
}

func TestParamCount(t *testing.T) {
	net := NewSequential(NewDense("d", 10, 5))
	if net.ParamCount() != 55 {
		t.Errorf("param count %d, want 55", net.ParamCount())
	}
}
