package nn

import (
	"fmt"

	"lightator/internal/oc"
)

// PhotonicExec executes a trained, quantization-aware network on the
// optical core: every Conv2D and Dense layer becomes a programmed MR
// matrix (weights on ring detunings), activations are normalised into the
// DMVA's [0,1] drive range using the calibrated ActQuant scales, and MVMs
// run through the oc package's analog path (quantization + crosstalk +
// optional BPD noise, depending on the core fidelity). Activation
// functions, pooling and biases stay in the electronic domain, exactly as
// the paper partitions them.
//
// This is the training-eval executor (Table 1 accuracy, Lightator-MX
// per-layer cores, shared-noise Apply). The served inference path lives
// in internal/infer, which mirrors this layer mapping with seeded
// determinism and full-scale weight normalisation — a fix to the conv
// patch walk or scale handling likely applies to both.
type PhotonicExec struct {
	ABits    int
	Fidelity oc.Fidelity

	stages []pStage
	cores  map[int]*oc.Core // per weight-bit-width cores (Lightator-MX)
}

type pStageKind int

const (
	pDigital pStageKind = iota
	pConv
	pDense
)

type pStage struct {
	kind  pStageKind
	layer Layer // for pDigital

	// MVM stage fields.
	pm      *oc.ProgrammedMatrix
	sw, sx  float64 // weight scale, input activation scale
	bias    []float64
	conv    *Conv2D // geometry for pConv
	inScale *ActQuant
}

// NewPhotonicExec compiles a network for photonic execution. aBits is the
// DMVA activation precision (the paper uses 4 everywhere); fidelity
// selects the analog model. Weight precision comes from each layer's
// attached WeightQuant (EnableQAT / SetLayerWeightBits), so Lightator-MX
// mixed-precision networks compile naturally.
func NewPhotonicExec(net *Sequential, aBits int, fidelity oc.Fidelity) (*PhotonicExec, error) {
	pe := &PhotonicExec{ABits: aBits, Fidelity: fidelity, cores: map[int]*oc.Core{}}
	sx := 1.0 // network input is the sensor's [0,1] intensity range
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			st, err := pe.buildMVMStage(layer.W.Data, layer.B.Data, layer.WQuant, sx)
			if err != nil {
				return nil, fmt.Errorf("nn: photonic %s: %w", layer.Name(), err)
			}
			st.kind = pConv
			st.conv = layer
			pe.stages = append(pe.stages, st)
		case *Dense:
			st, err := pe.buildMVMStage(layer.W.Data, layer.B.Data, layer.WQuant, sx)
			if err != nil {
				return nil, fmt.Errorf("nn: photonic %s: %w", layer.Name(), err)
			}
			st.kind = pDense
			st.pmDenseDims(layer)
			pe.stages = append(pe.stages, st)
		case *ActQuant:
			if layer.Scale <= 0 {
				return nil, fmt.Errorf("nn: photonic %s: activation scale not calibrated", layer.Name())
			}
			sx = layer.Scale
			pe.stages = append(pe.stages, pStage{kind: pDigital, layer: layer})
		default:
			pe.stages = append(pe.stages, pStage{kind: pDigital, layer: l})
		}
	}
	return pe, nil
}

// pmDenseDims is a marker hook kept for symmetry; dense geometry lives in
// the programmed matrix itself.
func (st *pStage) pmDenseDims(*Dense) {}

func (pe *PhotonicExec) coreFor(wBits int) (*oc.Core, error) {
	if c, ok := pe.cores[wBits]; ok {
		return c, nil
	}
	c, err := oc.NewCore(wBits, pe.ABits, pe.Fidelity)
	if err != nil {
		return nil, err
	}
	pe.cores[wBits] = c
	return c, nil
}

// buildMVMStage normalises weights to [-1,1] and programs them onto MRs.
// wData layout: [rows][cols] flattened.
func (pe *PhotonicExec) buildMVMStage(wData, bias []float64, wq *WeightQuant, sx float64) (pStage, error) {
	if wq == nil {
		// Photonic execution requires a weight grid; default to 4 bits.
		wq = &WeightQuant{Bits: 4}
	}
	core, err := pe.coreFor(wq.Bits)
	if err != nil {
		return pStage{}, err
	}
	sw := wq.Scale(wData)
	rows := len(bias)
	cols := len(wData) / rows
	m := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		m[r] = make([]float64, cols)
		for i := 0; i < cols; i++ {
			v := 0.0
			if sw > 0 {
				v = wData[r*cols+i] / sw
			}
			m[r][i] = v
		}
	}
	pm, err := core.Program(m)
	if err != nil {
		return pStage{}, err
	}
	b := append([]float64(nil), bias...)
	return pStage{pm: pm, sw: sw, sx: sx, bias: b}, nil
}

// Forward runs a batch through the photonic pipeline.
func (pe *PhotonicExec) Forward(x *Tensor) (*Tensor, error) {
	var err error
	for i := range pe.stages {
		st := &pe.stages[i]
		switch st.kind {
		case pDigital:
			x, err = st.layer.Forward(x, false)
		case pDense:
			x, err = st.applyDense(x)
		case pConv:
			x, err = st.applyConv(x)
		}
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// applyDense runs y = scale*(Wq/sw)(x/sx) * (sw*sx) + b photonically.
func (st *pStage) applyDense(x *Tensor) (*Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("nn: photonic dense wants [N,D] input, got rank %d", len(x.Shape))
	}
	n, d := x.Shape[0], x.Shape[1]
	if d != st.pm.Cols() {
		return nil, fmt.Errorf("nn: photonic dense input width %d, want %d", d, st.pm.Cols())
	}
	out := NewTensor(n, st.pm.Rows())
	vec := make([]float64, d)
	for b := 0; b < n; b++ {
		for i := 0; i < d; i++ {
			vec[i] = x.At2(b, i) / st.sx
		}
		y, err := st.pm.ApplyCalibrated(vec)
		if err != nil {
			return nil, err
		}
		for o, v := range y {
			out.Set2(b, o, v*st.sw*st.sx+st.bias[o])
		}
	}
	return out, nil
}

// applyConv runs the convolution as per-position photonic MVMs over
// flattened patches (the paper's Fig. 5 mapping: each 9-tap kernel slice
// occupies one arm; multi-channel kernels span multiple arms whose partial
// sums combine in the summation stage).
func (st *pStage) applyConv(x *Tensor) (*Tensor, error) {
	c := st.conv
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("nn: photonic conv wants NCHW input, got rank %d", len(x.Shape))
	}
	n, inC, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if inC != c.InC {
		return nil, fmt.Errorf("nn: photonic conv input channels %d, want %d", inC, c.InC)
	}
	oh, ow := c.OutHW(h, w)
	out := NewTensor(n, c.OutC, oh, ow)
	patch := make([]float64, c.InC*c.K*c.K)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				i := 0
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						for kx := 0; kx < c.K; kx++ {
							iy := oy*c.Stride + ky - c.Pad
							ix := ox*c.Stride + kx - c.Pad
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								patch[i] = 0
							} else {
								patch[i] = x.At4(b, ic, iy, ix) / st.sx
							}
							i++
						}
					}
				}
				y, err := st.pm.ApplyCalibrated(patch)
				if err != nil {
					return nil, err
				}
				for oc := 0; oc < c.OutC; oc++ {
					out.Set4(b, oc, oy, ox, y[oc]*st.sw*st.sx+st.bias[oc])
				}
			}
		}
	}
	return out, nil
}

// ArmCount returns the total arms occupied by all programmed matrices —
// a sanity metric the tests compare against mapping schedules.
func (pe *PhotonicExec) ArmCount() int {
	n := 0
	for i := range pe.stages {
		if pe.stages[i].pm != nil {
			n += pe.stages[i].pm.ArmCount()
		}
	}
	return n
}

// HeaterPower sums the MR tuning power of every programmed matrix, as if
// the whole network were resident at once.
func (pe *PhotonicExec) HeaterPower() float64 {
	p := 0.0
	for i := range pe.stages {
		if pe.stages[i].pm != nil {
			p += pe.stages[i].pm.HeaterPower()
		}
	}
	return p
}
