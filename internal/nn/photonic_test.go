package nn

import (
	"math"
	"math/rand"
	"testing"

	"lightator/internal/oc"
)

// buildTinyQATNet returns a small conv+fc network with QAT enabled and
// calibrated activation scales, ready for photonic compilation.
func buildTinyQATNet(t *testing.T, wBits int) *Sequential {
	t.Helper()
	net := NewSequential(
		NewConv2D("c1", 1, 4, 3, 1, 1),
		NewReLU("r1"),
		NewActQuant("q1", 4),
		NewAvgPool2D("p1", 2),
		NewFlatten("f"),
		NewDense("d1", 4*4*4, 10),
	)
	net.InitHe(3)
	EnableQAT(net, wBits)
	// Calibrate activation scales with a few training-mode passes.
	rng := rand.New(rand.NewSource(4))
	for pass := 0; pass < 4; pass++ {
		x := NewTensor(2, 1, 8, 8)
		for i := range x.Data {
			x.Data[i] = rng.Float64()
		}
		if _, err := net.Forward(x, true); err != nil {
			t.Fatal(err)
		}
	}
	FreezeActQuant(net, true)
	return net
}

func TestPhotonicExecMatchesDigitalQuantized(t *testing.T) {
	net := buildTinyQATNet(t, 4)
	pe, err := NewPhotonicExec(net, 4, oc.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x := NewTensor(3, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	yd, err := net.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	yp, err := pe.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !yd.ShapeEquals(yp) {
		t.Fatalf("shape mismatch %v vs %v", yd.Shape, yp.Shape)
	}
	// Ideal photonic execution re-quantizes activations on the optical
	// grid; small residual differences come from inputs that the digital
	// path does not quantize (the raw image). Outputs must agree closely
	// relative to the logit scale.
	scale := math.Max(yd.MaxAbs(), 1e-9)
	for i := range yd.Data {
		if math.Abs(yd.Data[i]-yp.Data[i]) > 0.08*scale {
			t.Errorf("logit %d: digital %g photonic %g", i, yd.Data[i], yp.Data[i])
		}
	}
}

func TestPhotonicExecPhysicalClose(t *testing.T) {
	net := buildTinyQATNet(t, 4)
	pi, err := NewPhotonicExec(net, 4, oc.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewPhotonicExec(net, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	x := NewTensor(2, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	yi, err := pi.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	yp, err := pp.Forward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	scale := math.Max(yi.MaxAbs(), 1e-9)
	for i := range yi.Data {
		if math.Abs(yi.Data[i]-yp.Data[i]) > 0.25*scale {
			t.Errorf("logit %d: ideal %g physical %g — crosstalk too destructive", i, yi.Data[i], yp.Data[i])
		}
	}
}

func TestPhotonicExecMixedPrecision(t *testing.T) {
	net := buildTinyQATNet(t, 3)
	if err := SetLayerWeightBits(net, 0, 4); err != nil {
		t.Fatal(err)
	}
	pe, err := NewPhotonicExec(net, 4, oc.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.cores) != 2 {
		t.Errorf("MX network should build 2 cores (4-bit and 3-bit), got %d", len(pe.cores))
	}
	x := NewTensor(1, 1, 8, 8)
	if _, err := pe.Forward(x); err != nil {
		t.Fatal(err)
	}
}

func TestPhotonicExecRequiresCalibration(t *testing.T) {
	net := NewSequential(
		NewConv2D("c1", 1, 2, 3, 1, 1),
		NewReLU("r1"),
		NewActQuant("q1", 4), // never calibrated
		NewFlatten("f"),
		NewDense("d1", 2*8*8, 4),
	)
	net.InitHe(1)
	EnableQAT(net, 4)
	if _, err := NewPhotonicExec(net, 4, oc.Ideal); err == nil {
		t.Fatal("uncalibrated network accepted")
	}
}

func TestPhotonicExecMetrics(t *testing.T) {
	net := buildTinyQATNet(t, 4)
	pe, err := NewPhotonicExec(net, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	// c1: 4 rows x ceil(9/9)=1 arm = 4 arms; d1: 10 rows x ceil(64/9)=8
	// arms = 80 arms.
	if pe.ArmCount() != 4+80 {
		t.Errorf("arm count %d, want 84", pe.ArmCount())
	}
	if pe.HeaterPower() <= 0 {
		t.Error("heater power not positive")
	}
}
