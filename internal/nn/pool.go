package nn

import "fmt"

// MaxPool2D is a max-pooling layer with window K and stride K.
type MaxPool2D struct {
	LayerName string
	K         int
	argmax    []int
	inShape   []int
}

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(name string, k int) *MaxPool2D {
	return &MaxPool2D{LayerName: name, K: k}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.LayerName }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// CloneShared implements Layer.
func (m *MaxPool2D) CloneShared() Layer { return &MaxPool2D{LayerName: m.LayerName, K: m.K} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("maxpool %s: input rank %d, want 4", m.LayerName, len(x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%m.K != 0 || w%m.K != 0 {
		return nil, fmt.Errorf("maxpool %s: input %dx%d not divisible by %d", m.LayerName, h, w, m.K)
	}
	oh, ow := h/m.K, w/m.K
	y := NewTensor(n, c, oh, ow)
	if train {
		m.argmax = make([]int, n*c*oh*ow)
		m.inShape = append([]int(nil), x.Shape...)
	}
	idx := 0
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := x.At4(b, ch, oy*m.K, ox*m.K)
					bestAt := ((b*c+ch)*h+oy*m.K)*w + ox*m.K
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							v := x.At4(b, ch, oy*m.K+ky, ox*m.K+kx)
							if v > best {
								best = v
								bestAt = ((b*c+ch)*h+oy*m.K+ky)*w + ox*m.K + kx
							}
						}
					}
					y.Set4(b, ch, oy, ox, best)
					if train {
						m.argmax[idx] = bestAt
					}
					idx++
				}
			}
		}
	}
	return y, nil
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dy *Tensor) (*Tensor, error) {
	if m.argmax == nil {
		return nil, fmt.Errorf("maxpool %s: backward before training forward", m.LayerName)
	}
	dx := NewTensor(m.inShape...)
	for i, g := range dy.Data {
		dx.Data[m.argmax[i]] += g
	}
	return dx, nil
}

// AvgPool2D is an average-pooling layer with window K and stride K — the
// operation the Compressive Acquisitor implements optically with pre-set
// MR coefficients (w = 1/K^2 per tap).
type AvgPool2D struct {
	LayerName string
	K         int
	inShape   []int
}

// NewAvgPool2D constructs an average-pooling layer.
func NewAvgPool2D(name string, k int) *AvgPool2D {
	return &AvgPool2D{LayerName: name, K: k}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.LayerName }

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// CloneShared implements Layer.
func (a *AvgPool2D) CloneShared() Layer { return &AvgPool2D{LayerName: a.LayerName, K: a.K} }

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *Tensor, train bool) (*Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("avgpool %s: input rank %d, want 4", a.LayerName, len(x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%a.K != 0 || w%a.K != 0 {
		return nil, fmt.Errorf("avgpool %s: input %dx%d not divisible by %d", a.LayerName, h, w, a.K)
	}
	oh, ow := h/a.K, w/a.K
	if train {
		a.inShape = append([]int(nil), x.Shape...)
	}
	inv := 1 / float64(a.K*a.K)
	y := NewTensor(n, c, oh, ow)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := 0.0
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							sum += x.At4(b, ch, oy*a.K+ky, ox*a.K+kx)
						}
					}
					y.Set4(b, ch, oy, ox, sum*inv)
				}
			}
		}
	}
	return y, nil
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(dy *Tensor) (*Tensor, error) {
	if a.inShape == nil {
		return nil, fmt.Errorf("avgpool %s: backward before training forward", a.LayerName)
	}
	dx := NewTensor(a.inShape...)
	n, c := a.inShape[0], a.inShape[1]
	oh, ow := dy.Shape[2], dy.Shape[3]
	inv := 1 / float64(a.K*a.K)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dy.At4(b, ch, oy, ox) * inv
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							dx.Set4(b, ch, oy*a.K+ky, ox*a.K+kx, g)
						}
					}
				}
			}
		}
	}
	return dx, nil
}
