package nn

import (
	"fmt"
	"math"
)

// Quantization utilities implementing the paper's [W:A] precision
// configurations: signed symmetric weight quantization to W bits (the
// levels a tuned MR realises) and unsigned activation quantization to A
// bits (the discrete VCSEL drive levels). Training uses fake quantization
// with straight-through estimators — the standard QAT recipe the paper
// applies for "an additional six epochs of training employing
// quantization-aware techniques".

// QuantizeSymmetric quantizes v onto the signed b-bit grid over
// [-scale, +scale] with 2^b uniformly spaced levels (matching the MR
// level grid of photonics.BankModel).
func QuantizeSymmetric(v, scale float64, bits int) float64 {
	if scale <= 0 {
		return 0
	}
	n := float64(int(1)<<uint(bits)) - 1
	x := v / scale // [-1, 1]
	if x < -1 {
		x = -1
	}
	if x > 1 {
		x = 1
	}
	level := math.Round((x + 1) / 2 * n)
	return (-1 + 2*level/n) * scale
}

// QuantizeUnsigned quantizes v onto the unsigned b-bit grid over
// [0, scale] with 2^b levels.
func QuantizeUnsigned(v, scale float64, bits int) float64 {
	if scale <= 0 {
		return 0
	}
	n := float64(int(1)<<uint(bits)) - 1
	x := v / scale
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	return math.Round(x*n) / n * scale
}

// WeightQuant fake-quantizes a weight tensor with a per-tensor max-abs
// scale. It is attached to Conv2D/Dense layers for QAT and reused by the
// photonic executor to reproduce exactly the grid the MRs realise.
type WeightQuant struct {
	Bits int
}

// Apply writes the quantized weights into out and returns the scale used.
func (q *WeightQuant) Apply(w []float64, out []float64) float64 {
	scale := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0
	}
	for i, v := range w {
		out[i] = QuantizeSymmetric(v, scale, q.Bits)
	}
	return scale
}

// Scale returns the per-tensor max-abs scale without quantizing.
func (q *WeightQuant) Scale(w []float64) float64 {
	scale := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	return scale
}

// ActQuant is an activation fake-quantization layer: it tracks the
// running maximum of its input during training (calibration) and snaps
// activations onto the unsigned Bits-level grid over [0, Scale]. In the
// hardware this grid is the VCSEL drive-level grid; Scale is the analog
// full-scale the DMVA is calibrated to.
type ActQuant struct {
	LayerName string
	Bits      int
	// Scale is the learned/calibrated full-scale. Exported so the
	// photonic executor can normalise activations into [0,1].
	Scale float64
	// Momentum of the running-max update (0.9 = slow, 0 = instant).
	Momentum float64
	// Frozen stops calibration (inference / final QAT epochs).
	Frozen bool
	// External disables the per-forward momentum update: training
	// forwards only record the observed maximum in BatchMax, and the
	// owner reduces maxima across replicas and applies UpdateScale once
	// per batch. This keeps calibration independent of how a batch is
	// partitioned across workers (max is exact; momentum is not).
	External bool
	// BatchMax is the largest activation observed since the last
	// TakeBatchMax while External calibration is on.
	BatchMax float64

	mask []bool
}

// NewActQuant constructs an activation quantizer with 0.9 momentum.
func NewActQuant(name string, bits int) *ActQuant {
	return &ActQuant{LayerName: name, Bits: bits, Momentum: 0.9}
}

// Name implements Layer.
func (a *ActQuant) Name() string { return a.LayerName }

// Params implements Layer.
func (a *ActQuant) Params() []*Param { return nil }

// CloneShared implements Layer. Clones share calibration state by value at
// clone time; the trainer re-syncs scales after each epoch.
func (a *ActQuant) CloneShared() Layer {
	cp := *a
	cp.mask = nil
	cp.BatchMax = 0
	return &cp
}

// Forward implements Layer.
func (a *ActQuant) Forward(x *Tensor, train bool) (*Tensor, error) {
	if train && !a.Frozen {
		batchMax := 0.0
		for _, v := range x.Data {
			if v > batchMax {
				batchMax = v
			}
		}
		switch {
		case a.External:
			if batchMax > a.BatchMax {
				a.BatchMax = batchMax
			}
		case a.Scale == 0:
			a.Scale = batchMax
		default:
			a.Scale = a.Momentum*a.Scale + (1-a.Momentum)*batchMax
		}
	}
	scale := a.Scale
	if scale <= 0 {
		// Not calibrated yet: pass through.
		if train {
			a.mask = make([]bool, len(x.Data))
			for i := range a.mask {
				a.mask[i] = true
			}
		}
		return x.Clone(), nil
	}
	y := x.Clone()
	if train {
		a.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		y.Data[i] = QuantizeUnsigned(v, scale, a.Bits)
		if train {
			// STE: gradient passes where the input is inside the
			// representable range.
			a.mask[i] = v >= 0 && v <= scale
		}
	}
	return y, nil
}

// ForwardInplace implements InplaceLayer: the inference-mode quantization
// applied directly to x (uncalibrated quantizers pass through, exactly
// like Forward).
func (a *ActQuant) ForwardInplace(x *Tensor) error {
	scale := a.Scale
	if scale <= 0 {
		return nil
	}
	for i, v := range x.Data {
		x.Data[i] = QuantizeUnsigned(v, scale, a.Bits)
	}
	return nil
}

// UpdateScale applies the running-max momentum rule with an externally
// reduced batch maximum. No-op while Frozen.
func (a *ActQuant) UpdateScale(batchMax float64) {
	if a.Frozen {
		return
	}
	if a.Scale == 0 {
		a.Scale = batchMax
	} else {
		a.Scale = a.Momentum*a.Scale + (1-a.Momentum)*batchMax
	}
}

// TakeBatchMax returns the largest activation observed since the last
// call and resets the tracker.
func (a *ActQuant) TakeBatchMax() float64 {
	m := a.BatchMax
	a.BatchMax = 0
	return m
}

// Backward implements Layer.
func (a *ActQuant) Backward(dy *Tensor) (*Tensor, error) {
	if a.mask == nil {
		return nil, fmt.Errorf("actquant %s: backward before training forward", a.LayerName)
	}
	dx := dy.Clone()
	for i := range dx.Data {
		if !a.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// EnableQAT walks a network and attaches weight quantizers with the given
// bit width to every Conv2D and Dense layer. Layer-specific overrides (for
// the mixed-precision Lightator-MX configurations) can be applied with
// SetLayerWeightBits afterwards.
func EnableQAT(net *Sequential, wBits int) {
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			layer.WQuant = &WeightQuant{Bits: wBits}
		case *Dense:
			layer.WQuant = &WeightQuant{Bits: wBits}
		}
	}
}

// SetLayerWeightBits overrides the weight precision of the i-th
// weight-bearing layer (conv or dense, counting from 0). Returns an error
// if there is no such layer. This implements the paper's Lightator-MX
// scheme, e.g. L1 at [4:4] with the rest at [3:4].
func SetLayerWeightBits(net *Sequential, index, wBits int) error {
	n := 0
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *Conv2D:
			if n == index {
				layer.WQuant = &WeightQuant{Bits: wBits}
				return nil
			}
			n++
		case *Dense:
			if n == index {
				layer.WQuant = &WeightQuant{Bits: wBits}
				return nil
			}
			n++
		}
	}
	return fmt.Errorf("nn: no weight layer with index %d (have %d)", index, n)
}

// FreezeActQuant freezes (or unfreezes) every activation quantizer's
// calibration.
func FreezeActQuant(net *Sequential, frozen bool) {
	for _, l := range net.Layers {
		if aq, ok := l.(*ActQuant); ok {
			aq.Frozen = frozen
		}
	}
}

// SyncActQuantScales copies calibrated activation scales from src into dst
// (used to merge worker clones after an epoch).
func SyncActQuantScales(dst, src *Sequential) error {
	if len(dst.Layers) != len(src.Layers) {
		return fmt.Errorf("nn: layer count mismatch %d vs %d", len(dst.Layers), len(src.Layers))
	}
	for i := range dst.Layers {
		da, okD := dst.Layers[i].(*ActQuant)
		sa, okS := src.Layers[i].(*ActQuant)
		if okD != okS {
			return fmt.Errorf("nn: layer %d type mismatch", i)
		}
		if okD {
			da.Scale = sa.Scale
		}
	}
	return nil
}
