package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestConvStridePadGradCheck covers the strided/padded convolution path
// with numeric gradients (AlexNet-style geometry).
func TestConvStridePadGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv := NewConv2D("c", 1, 2, 3, 2, 1)
	for i := range conv.W.Data {
		conv.W.Data[i] = rng.NormFloat64() * 0.5
	}
	x := NewTensor(1, 1, 7, 7)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int{1}
	loss := func() float64 {
		y, err := conv.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		flat, _ := y.Reshape(1, y.Size())
		l, _, err := SoftmaxCrossEntropy(flat, labels)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	y, err := conv.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[2] != 4 || y.Shape[3] != 4 {
		t.Fatalf("strided output %v, want 4x4", y.Shape)
	}
	flat, _ := y.Reshape(1, y.Size())
	_, g, _ := SoftmaxCrossEntropy(flat, labels)
	gr, _ := g.Reshape(y.Shape...)
	conv.W.ZeroGrad()
	conv.B.ZeroGrad()
	if _, err := conv.Backward(gr); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 4, 9, 17} {
		num := numericGrad(loss, &conv.W.Data[idx])
		if math.Abs(num-conv.W.Grad[idx]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("W[%d]: analytic %g numeric %g", idx, conv.W.Grad[idx], num)
		}
	}
}

// TestQATWeightsLandOnGrid: with a WeightQuant attached, the effective
// weights used in Forward sit exactly on the 2^b-level grid that the MR
// bank model realises.
func TestQATWeightsLandOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense("d", 8, 4)
	for i := range d.W.Data {
		d.W.Data[i] = rng.NormFloat64()
	}
	d.WQuant = &WeightQuant{Bits: 3}
	x := NewTensor(1, 8)
	for i := range x.Data {
		x.Data[i] = 1
	}
	if _, err := d.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	scale := d.WQuant.Scale(d.W.Data)
	levels := map[float64]bool{}
	for _, v := range d.wq {
		levels[v/scale] = true
		// Each normalised value must be one of the 8 grid points.
		n := 7.0
		grid := math.Round((v/scale+1)/2*n)/n*2 - 1
		if math.Abs(v/scale-grid) > 1e-12 {
			t.Errorf("weight %g off the 3-bit grid", v/scale)
		}
	}
	if len(levels) > 8 {
		t.Errorf("%d distinct 3-bit levels", len(levels))
	}
}

// TestTanhSignNetworksTrain exercises the alternative activations the
// electronic block supports (Sign for binary baselines, Tanh).
func TestTanhSignNetworksTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, act := range []string{"tanh", "sign"} {
		var mid Layer
		if act == "tanh" {
			mid = NewTanh("t")
		} else {
			mid = NewSign("s")
		}
		net := NewSequential(NewDense("d1", 2, 12), mid, NewDense("d2", 12, 2))
		net.InitHe(9)
		lossBefore, lossAfter := 0.0, 0.0
		for step := 0; step < 200; step++ {
			x := NewTensor(8, 2)
			labels := make([]int, 8)
			for i := 0; i < 8; i++ {
				a, b := rng.Float64()*2-1, rng.Float64()*2-1
				x.Data[i*2], x.Data[i*2+1] = a, b
				if a*b > 0 {
					labels[i] = 1
				}
			}
			net.ZeroGrad()
			y, err := net.Forward(x, true)
			if err != nil {
				t.Fatal(err)
			}
			l, g, err := SoftmaxCrossEntropy(y, labels)
			if err != nil {
				t.Fatal(err)
			}
			if step == 0 {
				lossBefore = l
			}
			lossAfter = l
			if err := net.Backward(g); err != nil {
				t.Fatal(err)
			}
			for _, p := range net.Params() {
				for i := range p.Data {
					p.Data[i] -= 0.05 * p.Grad[i]
				}
			}
		}
		if lossAfter >= lossBefore {
			t.Errorf("%s network did not improve: %.3f -> %.3f", act, lossBefore, lossAfter)
		}
	}
}

// TestBackwardBeforeForwardErrors: every stateful layer must reject a
// backward pass without a cached training forward.
func TestBackwardBeforeForwardErrors(t *testing.T) {
	g := NewTensor(1, 4)
	layers := []Layer{
		NewConv2D("c", 1, 1, 3, 1, 0),
		NewDense("d", 4, 2),
		NewReLU("r"),
		NewTanh("t"),
		NewSign("s"),
		NewMaxPool2D("m", 2),
		NewAvgPool2D("a", 2),
		NewFlatten("f"),
		NewActQuant("q", 4),
	}
	for _, l := range layers {
		if _, err := l.Backward(g); err == nil {
			t.Errorf("%s accepted backward before forward", l.Name())
		}
	}
}

// TestInferenceForwardKeepsNoState: forward with train=false must not
// allocate caches, so inference is safe to share.
func TestInferenceForwardKeepsNoState(t *testing.T) {
	c := NewConv2D("c", 1, 1, 3, 1, 1)
	x := NewTensor(1, 1, 4, 4)
	if _, err := c.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	if c.x != nil {
		t.Error("inference forward cached its input")
	}
}
