// Package nn is a small, dependency-free neural-network stack: dense
// tensors, convolution / pooling / fully-connected layers with full
// backpropagation, quantization-aware training utilities, and a photonic
// execution path that runs trained networks through the optical core of
// package oc. It stands in for the paper's PyTorch application level
// (Fig. 7): training, quantization, and the extraction of weights that the
// architecture simulator maps onto MRs.
package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor. Convolutional data uses
// NCHW layout; fully-connected data uses [N, D].
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zeroed tensor with the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Size returns the element count.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// ZerosLike returns a zeroed tensor of the same shape.
func (t *Tensor) ZerosLike() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
}

// Reshape returns a view with a new shape of equal size. The data is
// shared with the receiver.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("nn: reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, n)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// At4 indexes an NCHW tensor.
func (t *Tensor) At4(n, c, h, w int) float64 {
	return t.Data[((n*t.Shape[1]+c)*t.Shape[2]+h)*t.Shape[3]+w]
}

// Set4 writes an NCHW element.
func (t *Tensor) Set4(n, c, h, w int, v float64) {
	t.Data[((n*t.Shape[1]+c)*t.Shape[2]+h)*t.Shape[3]+w] = v
}

// At2 indexes an [N, D] tensor.
func (t *Tensor) At2(n, d int) float64 { return t.Data[n*t.Shape[1]+d] }

// Set2 writes an [N, D] element.
func (t *Tensor) Set2(n, d int, v float64) { t.Data[n*t.Shape[1]+d] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// MaxAbs returns the maximum absolute element, 0 for an empty tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ShapeEquals reports whether two tensors have identical shapes.
func (t *Tensor) ShapeEquals(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Param is a trainable parameter: shared weight storage plus a gradient
// accumulator. Worker clones used by data-parallel training share Data
// but own their Grad buffers.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// NewParam allocates a parameter of n elements.
func NewParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// cloneShared returns a param sharing Data with a fresh Grad buffer.
func (p *Param) cloneShared() *Param {
	return &Param{Name: p.Name, Data: p.Data, Grad: make([]float64, len(p.Grad))}
}
