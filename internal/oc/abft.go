package oc

import (
	"math"

	"lightator/internal/fault"
	"lightator/internal/photonics"
)

// Algorithm-based fault tolerance (ABFT) for the optical MVM, plus the
// deterministic fault injector and the tiered recovery ladder. See
// docs/FAULTS.md for the math and the taxonomy.
//
// Program derives one extra checksum row per matrix — the snap-to-grid
// mean of the data rows, programmed through the same bank transfer as any
// row — together with the exact residual δ_j = s_j − R·c̃_j between the
// column sums s_j of the effective data coefficients and R times the
// effective checksum coefficients c̃_j. Every checked seeded apply then
// verifies Σ-consistency:
//
//	| Σ_r y_r − ( R·y_chk + δ·xq + A(xq) ) | ≤ tol
//
// where y_chk is the checksum row's readout (its noise stream is
// DeriveSeed(seed, R) — an index no data row uses, so enabling ABFT
// changes no served bytes) and A(xq) is the expected adjustment of rows
// the ladder has recalibrated. Because δ is computed from the known
// effective coefficients, the residual is FP-tight in Ideal/Physical
// fidelity and noise-bounded in PhysicalNoisy; any coefficient stuck or
// drifted beyond the tolerance trips the check within one verified apply.
//
// On detection the ladder runs: bounded retry under a fresh derived seed
// (clears transients) → per-row localization against the digital
// reference → row probe via the injector's persistent faults (the
// simulation stand-in for a hardware test-vector probe) → absorb small
// drift by recalibration (the PR 6 defect-calibration idea, extended to
// per-row gain and sparse coefficient deltas) or retire the row to the
// digital fallback path. All ladder writes go through a copy-on-write
// overlay behind an atomic pointer, so the hot path pays one atomic load.

const (
	// abftStrideTarget sizes the sampled-verification stride: a matrix is
	// checked roughly once per this many programmed row-reads, so the
	// checksum overhead stays a few percent even for rank-1 matrices (the
	// CA, windowed kernel operators) where one check doubles the apply.
	// Persistent faults are still caught within one frame — every frame
	// funnels hundreds to thousands of applies through each matrix.
	abftStrideTarget = 32
	// abftNoiseK is the detection threshold in per-check noise sigmas.
	// At 8σ the false-trip probability per check is ~1e-15; a trip that
	// does occur is absorbed by the retry tier.
	abftNoiseK = 8.0
	// abftMaxRetries bounds the transient-recovery tier.
	abftMaxRetries = 2
	// abftRetrySalt offsets the derived retry seeds away from any
	// data-row or frame index in live use.
	abftRetrySalt = 0x5eed0_0000
	// recalMaxCoeffDelta is the largest per-coefficient deviation the
	// recalibration tier absorbs; beyond it the ring is considered stuck,
	// not drifted, and the row is retired.
	recalMaxCoeffDelta = 0.15
	// recalMaxDroop is the largest fractional laser droop recalibration
	// absorbs as a per-row gain.
	recalMaxDroop = 0.15
)

// abftState is the per-matrix checksum state derived at Program time.
type abftState struct {
	// chk holds the checksum row's effective coefficients (len cols),
	// segmented by the same armBounds as every data row.
	chk []float64
	// delta is the per-column residual δ; nil when exactly zero (R == 1:
	// the checksum row re-quantizes to the data row itself, so the check
	// degenerates to exact duplicate-row redundancy).
	delta []float64
	// tol is the Σ-consistency detection threshold.
	tol float64
	// rowTol is the per-row localization threshold.
	rowTol float64
	// stride samples verification: an apply is checked iff its seed
	// hashes into 1/stride. Always ≥ 1.
	stride uint64
	// chkSeedIndex is the DeriveSeed index of the checksum row's noise
	// stream (== rows, one past the data rows).
	chkSeedIndex int
}

// compiledFault is one plan fault bound to a row of this matrix.
type compiledFault struct {
	f fault.Fault
	// delta pre-resolves coefficient faults to an additive offset on the
	// row output per unit activation: stuck_coeff → Value − c_rj,
	// drift_coeff → Value. Unused for droop/bit-flip.
	delta float64
}

// injector is a plan compiled against one labelled matrix.
type injector struct {
	byRow [][]compiledFault
}

// overlay is the copy-on-write ladder state: retired rows and
// recalibrated per-row adjustments. Readers load it atomically; writers
// rebuild and swap under pm.mu.
type overlay struct {
	retired      []bool
	retiredCount int
	adj          []rowAdj
}

// rowAdj is one recalibrated row: a gain (laser droop absorbed into the
// known transfer) and sparse per-column coefficient deltas (drift
// absorbed the way the PR 6 rowDefect calibration absorbs systematic
// loss).
type rowAdj struct {
	row    int
	gain   float64
	cols   []int
	deltas []float64
}

// initABFT derives the checksum row and tolerances for a freshly
// programmed matrix.
func (pm *ProgrammedMatrix) initABFT() error {
	c := pm.core
	rows, cols := pm.rows, pm.cols
	// Checksum weights: the grid-snap of the mean data row. Working from
	// the programmed levels (not the caller's floats) keeps the checksum
	// consistent with what the hardware actually holds.
	mean := make([]float64, cols)
	for r := 0; r < rows; r++ {
		base := r * cols
		for j := 0; j < cols; j++ {
			mean[j] += c.bank.LevelToWeight(pm.levels[base+j])
		}
	}
	inv := 1 / float64(rows)
	segLevels := make([]int, 0, len(mean))
	for j := range mean {
		mean[j] *= inv
	}
	chk := make([]float64, cols)
	for s := 0; s+1 < len(pm.armBounds); s++ {
		lo, hi := pm.armBounds[s], pm.armBounds[s+1]
		segLevels = segLevels[:0]
		for _, v := range mean[lo:hi] {
			segLevels = append(segLevels, c.bank.WeightToLevel(v))
		}
		var (
			cf  []float64
			err error
		)
		if c.Fidelity == Ideal {
			cf, err = c.bank.IdealCoefficients(segLevels)
		} else {
			cf, err = c.bank.Coefficients(segLevels)
		}
		if err != nil {
			return err
		}
		copy(chk[lo:hi], cf)
	}
	// δ_j = s_j − R·c̃_j from the known effective coefficients — exact,
	// so quantization of the checksum row costs no detection margin.
	delta := make([]float64, cols)
	allZero := true
	for j := 0; j < cols; j++ {
		s := 0.0
		for r := 0; r < rows; r++ {
			s += pm.coeffs[r*cols+j]
		}
		delta[j] = s - float64(rows)*chk[j]
		if delta[j] != 0 {
			allZero = false
		}
	}
	if allZero {
		delta = nil
	}
	arms := float64(len(pm.armBounds) - 1)
	fr := float64(rows)
	tol := 1e-11*fr*float64(cols) + 1e-12
	rowTol := 1e-11*float64(cols) + 1e-12
	if c.Fidelity == PhysicalNoisy {
		// Var(residual) = R²·Var(y_chk) + Σ_r Var(y_r) = (R²+R)·A·σ².
		tol += abftNoiseK * c.noiseSigma * math.Sqrt((fr*fr+fr)*arms)
		rowTol += abftNoiseK * c.noiseSigma * math.Sqrt(arms)
	}
	stride := uint64(1)
	if rows < abftStrideTarget {
		stride = uint64((abftStrideTarget + rows - 1) / rows)
	}
	pm.abft = &abftState{
		chk: chk, delta: delta, tol: tol, rowTol: rowTol,
		stride: stride, chkSeedIndex: rows,
	}
	return nil
}

// SetLabel names the matrix as a health component (e.g. "ca",
// "kernel:edge", "model:lenet/0", "mvm"), registering it in the core's
// health registry and compiling the core's active fault plan against it.
// Call once, before the matrix serves traffic; unlabelled matrices are
// never fault-injected and report health nowhere.
func (pm *ProgrammedMatrix) SetLabel(label string) {
	pm.label = label
	pm.health = pm.core.Health().Component(label)
	pm.compileFaults(pm.core.faultPlan)
}

// Label returns the matrix's component label ("" when unlabelled).
func (pm *ProgrammedMatrix) Label() string { return pm.label }

// compileFaults binds the matching plan faults to this matrix's rows.
func (pm *ProgrammedMatrix) compileFaults(plan *fault.Plan) {
	faults := plan.ForLabel(pm.label)
	if len(faults) == 0 {
		pm.inj = nil
		return
	}
	byRow := make([][]compiledFault, pm.rows)
	any := false
	for _, f := range faults {
		switch f.Kind {
		case fault.StuckCoeff, fault.DriftCoeff:
			if f.Row >= pm.rows || f.Col >= pm.cols {
				continue // plan row/col outside this matrix's shape
			}
			cf := compiledFault{f: f, delta: f.Value}
			if f.Kind == fault.StuckCoeff {
				cf.delta = f.Value - pm.coeffs[f.Row*pm.cols+f.Col]
			}
			byRow[f.Row] = append(byRow[f.Row], cf)
			any = true
		case fault.LaserDroop, fault.BitFlip:
			last := f.LastRow()
			if last >= pm.rows {
				last = pm.rows - 1
			}
			for r := f.Row; r <= last && r < pm.rows; r++ {
				byRow[r] = append(byRow[r], compiledFault{f: f})
				any = true
			}
		}
	}
	if !any {
		pm.inj = nil
		return
	}
	pm.inj = &injector{byRow: byRow}
}

// perturb applies the active faults to rows [lo, hi) of a computed
// output — the output-side formulation of coefficient, droop and
// readout faults (Δc on coefficient (r,j) shifts y_r by exactly
// Δc·xq_j). Retired rows are perturbed too; the overlay fix overwrites
// them right after, modelling the retired hardware row being ignored.
func (inj *injector) perturb(pm *ProgrammedMatrix, y, xq []float64, lo, hi int, seed int64) {
	for r := lo; r < hi; r++ {
		// Additive faults first, droop gains last: droop scales the whole
		// optical readout, so a drifted coefficient on a drooping branch
		// droops too — the same composition the recalibration model
		// (rowAdj: gain over digital+deltas) assumes.
		gain := 1.0
		for _, cf := range inj.byRow[r] {
			if !cf.f.Window.Active(seed) {
				continue
			}
			switch cf.f.Kind {
			case fault.StuckCoeff, fault.DriftCoeff:
				y[r] += cf.delta * xq[cf.f.Col]
			case fault.LaserDroop:
				gain *= 1 - cf.f.Value
			case fault.BitFlip:
				y[r] += fault.Spike(cf.f.Value, seed, cf.f.Window.Salt)
			}
		}
		if gain != 1 {
			y[r] *= gain
		}
	}
}

// digitalRow is the digital reference readout of one row: the exact
// noiseless dot product of the known effective coefficients — what a
// retired row is served from.
func (pm *ProgrammedMatrix) digitalRow(r int, xq []float64) float64 {
	base := r * pm.cols
	sum := 0.0
	for j, cf := range pm.coeffs[base : base+pm.cols] {
		sum += cf * xq[j]
	}
	return sum
}

// fix overwrites retired rows in [lo, hi) with their digital reference
// values.
func (ov *overlay) fix(pm *ProgrammedMatrix, y, xq []float64, lo, hi int) {
	if ov.retiredCount == 0 {
		return
	}
	for r := lo; r < hi; r++ {
		if ov.retired[r] {
			y[r] = pm.digitalRow(r, xq)
		}
	}
}

// adjust returns A(xq): the expected output shift of every recalibrated
// row, derived from the absorbed gains and coefficient deltas.
func (ov *overlay) adjust(pm *ProgrammedMatrix, xq []float64) float64 {
	a := 0.0
	for i := range ov.adj {
		ra := &ov.adj[i]
		rowShift := 0.0
		for k, col := range ra.cols {
			rowShift += ra.deltas[k] * xq[col]
		}
		if ra.gain != 1 {
			rowShift = (pm.digitalRow(ra.row, xq)+rowShift)*ra.gain - pm.digitalRow(ra.row, xq)
		}
		a += rowShift
	}
	return a
}

// expectedRow is the ladder's model of row r's noiseless output under
// the current overlay (digital value, recal gain and deltas applied).
func (pm *ProgrammedMatrix) expectedRow(ov *overlay, r int, xq []float64) float64 {
	v := pm.digitalRow(r, xq)
	if ov == nil {
		return v
	}
	if ov.retired[r] {
		return v
	}
	for i := range ov.adj {
		ra := &ov.adj[i]
		if ra.row != r {
			continue
		}
		for k, col := range ra.cols {
			v += ra.deltas[k] * xq[col]
		}
		v *= ra.gain
	}
	return v
}

// checkOnce runs one Σ-consistency verification of y (pre-defect values)
// against the checksum row under the given apply seed. ns must be the
// caller's pooled noise source in PhysicalNoisy fidelity.
func (pm *ProgrammedMatrix) checkOnce(xq, y []float64, seed int64, ns *photonics.NoiseSource) bool {
	ab := pm.abft
	sum := 0.0
	for _, v := range y[:pm.rows] {
		sum += v
	}
	// Checksum row readout: same segmented walk and per-arm noise as any
	// data row, on a stream (index rows) no data row uses.
	chk := 0.0
	if ns != nil {
		ns.Reseed(DeriveSeed(seed, ab.chkSeedIndex))
	}
	for s := 0; s+1 < len(pm.armBounds); s++ {
		lo, hi := pm.armBounds[s], pm.armBounds[s+1]
		partial := 0.0
		for j, cf := range ab.chk[lo:hi] {
			partial += cf * xq[lo+j]
		}
		if ns != nil {
			partial += ns.Gaussian(0, pm.core.noiseSigma)
		}
		chk += partial
	}
	exp := float64(pm.rows) * chk
	if ab.delta != nil {
		d := 0.0
		for j, v := range ab.delta {
			d += v * xq[j]
		}
		exp += d
	}
	if ov := pm.ov.Load(); ov != nil {
		exp += ov.adjust(pm, xq)
	}
	return math.Abs(sum-exp) <= ab.tol
}

// abftVerify is the verification + recovery entry point, called by every
// seeded apply after the output rows (post-injection, pre-defect) are in
// y. The no-fault path costs one stride hash and, on checked applies,
// one extra row readout. On a failed check the ladder may recompute y in
// place under fresh derived seeds and mutate the recovery overlay.
func (pm *ProgrammedMatrix) abftVerify(xq, y []float64, seed int64, ns *photonics.NoiseSource) {
	ab := pm.abft
	if ab == nil {
		return
	}
	if ab.stride > 1 && splitmix(uint64(seed))%ab.stride != 0 {
		return
	}
	noisy := pm.core.Fidelity == PhysicalNoisy
	if noisy && ns == nil {
		ns = getNoise()
		defer putNoise(ns)
	}
	pm.statAdd(statChecks, 1)
	if pm.checkOnce(xq, y, seed, ns) {
		return
	}
	pm.statAdd(statDetections, 1)
	// Tier 1 — bounded retry: re-run the whole apply under a fresh
	// derived seed. Transient windows (and noisy-fidelity false trips)
	// hash closed under the new seed and the check passes.
	for attempt := 1; attempt <= abftMaxRetries; attempt++ {
		rs := DeriveSeed(seed, abftRetrySalt+attempt)
		pm.applySeededRangeNS(xq, y, 0, pm.rows, rs, ns)
		if pm.checkOnce(xq, y, rs, ns) {
			pm.statAdd(statRetrySuccesses, 1)
			return
		}
	}
	// Tiers 2/3 — localize and repair under the writer lock, then serve
	// from the repaired state.
	pm.recoverPersistent(xq, y, seed, ns)
	fs := DeriveSeed(seed, abftRetrySalt+abftMaxRetries+1)
	pm.applySeededRangeNS(xq, y, 0, pm.rows, fs, ns)
	if !pm.checkOnce(xq, y, fs, ns) {
		pm.statAdd(statUnrecovered, 1)
	}
}

// recoverPersistent localizes out-of-tolerance rows against the digital
// reference and, per row, probes the persistent fault signature: small
// drift/droop is absorbed by recalibration; anything larger (or a
// persistently corrupted readout) retires the row to the digital
// fallback. y holds the latest failed readout.
func (pm *ProgrammedMatrix) recoverPersistent(xq, y []float64, seed int64, ns *photonics.NoiseSource) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	old := pm.ov.Load()
	var next *overlay
	ensure := func() *overlay {
		if next == nil {
			next = &overlay{retired: make([]bool, pm.rows)}
			if old != nil {
				copy(next.retired, old.retired)
				next.retiredCount = old.retiredCount
				next.adj = append([]rowAdj(nil), old.adj...)
			}
		}
		return next
	}
	for r := 0; r < pm.rows; r++ {
		if old != nil && old.retired[r] {
			continue
		}
		if math.Abs(y[r]-pm.expectedRow(old, r, xq)) <= pm.abft.rowTol {
			continue
		}
		gain, cols, deltas, probe := pm.probeRow(r)
		if !probe {
			// The row probe shows no persistent deviation: a transient
			// that outlived the retries. Nothing to repair — the final
			// recheck decides whether the result leaves unrecovered.
			continue
		}
		within := gain >= 1-recalMaxDroop
		for _, d := range deltas {
			if math.Abs(d) > recalMaxCoeffDelta {
				within = false
			}
		}
		ov := ensure()
		// Replace any previous adjustment for this row.
		for i := 0; i < len(ov.adj); i++ {
			if ov.adj[i].row == r {
				ov.adj = append(ov.adj[:i], ov.adj[i+1:]...)
				i--
			}
		}
		if within && (gain != 1 || len(cols) > 0) {
			ov.adj = append(ov.adj, rowAdj{row: r, gain: gain, cols: cols, deltas: deltas})
			pm.statAdd(statRecalibrations, 1)
		} else {
			ov.retired[r] = true
			ov.retiredCount++
			pm.statAdd(statRetiredRows, 1)
		}
	}
	if next != nil {
		pm.ov.Store(next)
	}
}

// probeRow is the hardware row probe: it measures row r's persistent
// fault signature — the gain and sparse coefficient deltas a test-vector
// sweep would observe. In simulation that is exactly the injector's
// persistent faults for the row. found is false when the persistent
// transfer matches the programmed one (recalibratable == false implies a
// persistently corrupted readout, e.g. a zero-window bit-flip, which is
// never absorbable).
func (pm *ProgrammedMatrix) probeRow(r int) (gain float64, cols []int, deltas []float64, found bool) {
	gain = 1
	if pm.inj == nil {
		return 1, nil, nil, false
	}
	for _, cf := range pm.inj.byRow[r] {
		if !cf.f.Window.Persistent() {
			continue
		}
		switch cf.f.Kind {
		case fault.StuckCoeff, fault.DriftCoeff:
			cols = append(cols, cf.f.Col)
			deltas = append(deltas, cf.delta)
			found = true
		case fault.LaserDroop:
			gain *= 1 - cf.f.Value
			found = true
		case fault.BitFlip:
			// A persistent readout spike has no coefficient-space
			// explanation; force retirement by reporting an absorbable
			// signature outside every tolerance.
			cols = append(cols, 0)
			deltas = append(deltas, math.Inf(1))
			found = true
		}
	}
	return gain, cols, deltas, found
}

// Degraded reports whether the matrix serves degraded output: at least
// one row retired to the digital fallback, or an unrecovered detection
// on its health component.
func (pm *ProgrammedMatrix) Degraded() bool {
	if ov := pm.ov.Load(); ov != nil && ov.retiredCount > 0 {
		return true
	}
	return pm.health != nil && pm.health.Degraded()
}

// ABFTChecksPer models how many checksum verifications n applies of
// this matrix trigger: n divided by the sampling stride. Zero when ABFT
// is disabled (Core.NoABFT). Used by the observability layer's static
// op-count profiles (trace.OpCounts.ABFTChecks), never on the hot path.
func (pm *ProgrammedMatrix) ABFTChecksPer(applies int64) int64 {
	if pm.abft == nil || pm.abft.stride <= 0 {
		return 0
	}
	return applies / int64(pm.abft.stride)
}

// RetiredRows returns how many rows are retired to the digital fallback.
func (pm *ProgrammedMatrix) RetiredRows() int {
	if ov := pm.ov.Load(); ov != nil {
		return ov.retiredCount
	}
	return 0
}

// statAdd bumps one ladder counter on the matrix's health component (a
// no-op for unlabelled matrices).
type statSel int

const (
	statChecks statSel = iota
	statDetections
	statRetrySuccesses
	statRecalibrations
	statRetiredRows
	statUnrecovered
)

func (pm *ProgrammedMatrix) statAdd(sel statSel, n int64) {
	h := pm.health
	if h == nil {
		return
	}
	switch sel {
	case statChecks:
		h.Checks.Add(n)
	case statDetections:
		h.Detections.Add(n)
	case statRetrySuccesses:
		h.RetrySuccesses.Add(n)
	case statRecalibrations:
		h.Recalibrations.Add(n)
	case statRetiredRows:
		h.RetiredRows.Add(n)
	case statUnrecovered:
		h.Unrecovered.Add(n)
	}
}

// splitmix is the SplitMix64 finalizer used for the stride sampling
// hash (the same mixer DeriveSeed uses).
func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
