//go:build !race

// Steady-state allocation pin for the ABFT-enabled hot path (the race
// detector instruments allocations; see alloc_test.go).
package oc

import "testing"

// TestABFTZeroAllocHotPath keeps the PR 5 contract with checksum
// verification enabled: the steady-state seeded apply allocates nothing.
func TestABFTZeroAllocHotPath(t *testing.T) {
	for _, fid := range []Fidelity{Physical, PhysicalNoisy} {
		_, pm := abftTestMatrix(t, fid, nil, "m")
		x := abftTestInput(pm.Cols())
		dst := make([]float64, pm.Rows())
		// Warm the pools.
		if err := pm.ApplySeededInto(dst, x, 1); err != nil {
			t.Fatal(err)
		}
		seed := int64(0)
		allocs := testing.AllocsPerRun(200, func() {
			seed++
			if err := pm.ApplySeededInto(dst, x, seed); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v: ApplySeededInto allocates %.1f/op with ABFT on", fid, allocs)
		}
	}
}
