package oc

import (
	"math"
	"testing"

	"lightator/internal/fault"
	"lightator/internal/sensor"
)

// abftTestMatrix programs a deterministic full-rank test matrix (rows >=
// abftStrideTarget so every apply is checked) on a fresh core.
func abftTestMatrix(t *testing.T, fid Fidelity, plan *fault.Plan, label string) (*Core, *ProgrammedMatrix) {
	t.Helper()
	c, err := NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(plan)
	rows, cols := 32, 18
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for j := range w[r] {
			w[r][j] = math.Sin(float64(r*cols+j+1)) * 0.9
		}
	}
	pm, err := c.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	if label != "" {
		pm.SetLabel(label)
	}
	return c, pm
}

func abftTestInput(cols int) []float64 {
	x := make([]float64, cols)
	for j := range x {
		x[j] = 0.25 + 0.5*float64(j%3)/3
	}
	return x
}

// TestABFTNoFaultByteIdentity pins the load-bearing contract: enabling
// ABFT changes no output bytes on the no-fault path, in every fidelity —
// the checksum row reads a noise stream (index R) no data row uses.
func TestABFTNoFaultByteIdentity(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, Physical, PhysicalNoisy} {
		_, on := abftTestMatrix(t, fid, nil, "")
		coff, err := NewCore(4, 4, fid)
		if err != nil {
			t.Fatal(err)
		}
		coff.NoABFT = true
		rows, cols := on.Rows(), on.Cols()
		w := make([][]float64, rows)
		for r := range w {
			w[r] = make([]float64, cols)
			for j := range w[r] {
				w[r][j] = math.Sin(float64(r*cols+j+1)) * 0.9
			}
		}
		off, err := coff.Program(w)
		if err != nil {
			t.Fatal(err)
		}
		if off.abft != nil {
			t.Fatal("NoABFT core still derived a checksum row")
		}
		x := abftTestInput(cols)
		for seed := int64(1); seed <= 16; seed++ {
			a, err := on.ApplySeeded(x, seed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := off.ApplySeeded(x, seed)
			if err != nil {
				t.Fatal(err)
			}
			for r := range a {
				if a[r] != b[r] {
					t.Fatalf("%v seed %d row %d: ABFT changed bytes: %g != %g", fid, seed, r, a[r], b[r])
				}
			}
		}
	}
}

// TestABFTStuckCoeffRetires drives a hard-stuck coefficient (far beyond
// the recalibration budget) and expects: detection on the first checked
// apply, retirement of exactly the faulty row, the digital fallback
// serving that row, and a degraded matrix.
func TestABFTStuckCoeffRetires(t *testing.T) {
	plan := &fault.Plan{Name: "stuck", Faults: []fault.Fault{
		{Kind: fault.StuckCoeff, Target: "m", Row: 5, Col: 2, Value: 0.95},
	}}
	c, pm := abftTestMatrix(t, Ideal, plan, "m")
	x := abftTestInput(pm.Cols())
	y, err := pm.ApplySeeded(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Health().Component("m")
	if h.Detections.Load() == 0 {
		t.Fatal("stuck coefficient not detected")
	}
	if h.RetiredRows.Load() != 1 || pm.RetiredRows() != 1 {
		t.Fatalf("retired rows = %d (pm %d), want 1", h.RetiredRows.Load(), pm.RetiredRows())
	}
	if !pm.Degraded() {
		t.Fatal("matrix with a retired row must report degraded")
	}
	// The retired row is served from the digital reference; in Ideal
	// fidelity that is bit-exact W_eff·xq.
	xq := make([]float64, pm.Cols())
	if err := pm.quantizeInto(xq, x); err != nil {
		t.Fatal(err)
	}
	if want := pm.digitalRow(5, xq); y[5] != want {
		t.Fatalf("retired row served %g, want digital %g", y[5], want)
	}
	if h.Unrecovered.Load() != 0 {
		t.Fatalf("ladder left %d unrecovered", h.Unrecovered.Load())
	}
	// Steady state: later applies pass their checks against the repaired
	// state without new detections.
	before := h.Detections.Load()
	if _, err := pm.ApplySeeded(x, 8); err != nil {
		t.Fatal(err)
	}
	if h.Detections.Load() != before {
		t.Fatal("repaired matrix re-detected the same fault")
	}
}

// TestABFTDriftRecalibrates drives a small persistent drift — within the
// recalibration budget — and expects the defect-calibration tier to
// absorb it: no retirement, no degradation, checks passing against the
// recalibrated transfer.
func TestABFTDriftRecalibrates(t *testing.T) {
	plan := &fault.Plan{Name: "drift", Faults: []fault.Fault{
		{Kind: fault.DriftCoeff, Target: "m", Row: 3, Col: 1, Value: 0.05},
	}}
	c, pm := abftTestMatrix(t, Ideal, plan, "m")
	x := abftTestInput(pm.Cols())
	y, err := pm.ApplySeeded(x, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Health().Component("m")
	if h.Detections.Load() == 0 {
		t.Fatal("drift not detected")
	}
	if h.Recalibrations.Load() != 1 {
		t.Fatalf("recalibrations = %d, want 1", h.Recalibrations.Load())
	}
	if h.RetiredRows.Load() != 0 || pm.Degraded() {
		t.Fatal("absorbable drift must not retire or degrade")
	}
	// The recalibrated row serves the drifted (known) transfer.
	xq := make([]float64, pm.Cols())
	if err := pm.quantizeInto(xq, x); err != nil {
		t.Fatal(err)
	}
	want := pm.digitalRow(3, xq) + 0.05*xq[1]
	if math.Abs(y[3]-want) > 1e-12 {
		t.Fatalf("recalibrated row = %g, want %g", y[3], want)
	}
	if h.Unrecovered.Load() != 0 {
		t.Fatalf("ladder left %d unrecovered", h.Unrecovered.Load())
	}
}

// TestABFTLaserDroop checks both droop outcomes: a small branch droop is
// absorbed as a per-row gain, a deep droop retires the affected rows.
func TestABFTLaserDroop(t *testing.T) {
	small := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LaserDroop, Target: "m", Row: 2, RowEnd: 4, Value: 0.05},
	}}
	c, pm := abftTestMatrix(t, Ideal, small, "m")
	x := abftTestInput(pm.Cols())
	if _, err := pm.ApplySeeded(x, 3); err != nil {
		t.Fatal(err)
	}
	h := c.Health().Component("m")
	if h.Recalibrations.Load() != 3 || h.RetiredRows.Load() != 0 {
		t.Fatalf("small droop: recal %d retired %d, want 3/0", h.Recalibrations.Load(), h.RetiredRows.Load())
	}
	deep := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LaserDroop, Target: "m", Row: 2, RowEnd: 4, Value: 0.5},
	}}
	c2, pm2 := abftTestMatrix(t, Ideal, deep, "m")
	if _, err := pm2.ApplySeeded(x, 3); err != nil {
		t.Fatal(err)
	}
	h2 := c2.Health().Component("m")
	if h2.RetiredRows.Load() != 3 || !pm2.Degraded() {
		t.Fatalf("deep droop: retired %d degraded %v, want 3/true", h2.RetiredRows.Load(), pm2.Degraded())
	}
}

// TestABFTTransientBitFlipRetries windows a readout spike and expects
// every detection to clear in the bounded-retry tier — no retirement, no
// degradation.
func TestABFTTransientBitFlipRetries(t *testing.T) {
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.BitFlip, Target: "m", Row: 9, Value: 0.5,
			Window: fault.Window{Period: 16, Duty: 1, Salt: 2}},
	}}
	c, pm := abftTestMatrix(t, Ideal, plan, "m")
	x := abftTestInput(pm.Cols())
	for seed := int64(0); seed < 64; seed++ {
		if _, err := pm.ApplySeeded(x, seed); err != nil {
			t.Fatal(err)
		}
	}
	h := c.Health().Component("m")
	if h.Detections.Load() == 0 {
		t.Fatal("transient spike never landed in 64 applies")
	}
	if h.RetrySuccesses.Load() != h.Detections.Load() {
		t.Fatalf("retries cleared %d of %d detections", h.RetrySuccesses.Load(), h.Detections.Load())
	}
	if h.RetiredRows.Load() != 0 || pm.Degraded() {
		t.Fatal("transient fault must not retire or degrade")
	}
}

// TestABFTNoisyFidelityNoFalseTrips runs many checked applies in
// PhysicalNoisy fidelity with no plan: at 8σ the check must never trip.
func TestABFTNoisyFidelityNoFalseTrips(t *testing.T) {
	c, pm := abftTestMatrix(t, PhysicalNoisy, nil, "m")
	x := abftTestInput(pm.Cols())
	for seed := int64(0); seed < 256; seed++ {
		if _, err := pm.ApplySeeded(x, seed); err != nil {
			t.Fatal(err)
		}
	}
	h := c.Health().Component("m")
	if h.Checks.Load() == 0 {
		t.Fatal("no checks ran")
	}
	if h.Detections.Load() != 0 {
		t.Fatalf("%d false trips in %d checks", h.Detections.Load(), h.Checks.Load())
	}
}

// TestABFTNoisyDetectsStuck verifies detection still works through the
// noise floor: a hard-stuck coefficient in PhysicalNoisy fidelity is
// detected and retired, and later applies hold byte-for-byte
// reproducibility per seed. The matrix is short (4 rows) so the fault
// magnitude clears the noise-scaled tolerance — docs/FAULTS.md derives
// the R-dependent detectability floor this respects.
func TestABFTNoisyDetectsStuck(t *testing.T) {
	// Row 1, col 0 programs ≈ +0.89 (0.9·cos 19); sticking it at −0.95 at
	// full activation shifts the row by ≈ 1.8 — well past the ≈0.49
	// noise-scaled tolerance of a 4-row matrix.
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.StuckCoeff, Target: "m", Row: 1, Col: 0, Value: -0.95},
	}}
	c, err := NewCore(4, 4, PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaultPlan(plan)
	w := make([][]float64, 4)
	for r := range w {
		w[r] = make([]float64, 18)
		for j := range w[r] {
			w[r][j] = 0.9 * math.Cos(float64(r*18+j+1))
		}
	}
	pm, err := c.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	pm.SetLabel("m")
	x := abftTestInput(pm.Cols())
	x[0] = 1.0
	h := c.Health().Component("m")
	// Short matrices sample verification (stride > 1): drive applies
	// until a check lands.
	for seed := int64(0); seed < 256 && h.Checks.Load() == 0; seed++ {
		if _, err := pm.ApplySeeded(x, seed); err != nil {
			t.Fatal(err)
		}
	}
	if h.Checks.Load() == 0 {
		t.Fatal("no check sampled in 256 applies")
	}
	if h.Detections.Load() == 0 || h.RetiredRows.Load() != 1 {
		t.Fatalf("noisy stuck: detections %d retired %d", h.Detections.Load(), h.RetiredRows.Load())
	}
	// Steady state is seeded-reproducible.
	a, err := pm.ApplySeeded(x, 33)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pm.ApplySeeded(x, 33)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("row %d not reproducible after repair: %g vs %g", r, a[r], b[r])
		}
	}
}

// TestABFTWorkerInvariantInjection pins the determinism contract of the
// injector itself: whether and how a fault perturbs an apply is a pure
// function of the apply's derived seed, so a faulted batch is
// byte-identical at any worker count. ABFT is disabled here to isolate
// injection — the recovery ladder's repairs depend on which apply
// observes the fault first (request order, like real hardware), which
// is exactly why the chaos e2e suite asserts properties, not bytes,
// through transitions.
func TestABFTWorkerInvariantInjection(t *testing.T) {
	mk := func() *ProgrammedMatrix {
		plan := &fault.Plan{Faults: []fault.Fault{
			{Kind: fault.StuckCoeff, Target: "m", Row: 5, Col: 2, Value: 0.95},
			{Kind: fault.BitFlip, Target: "m", Row: 9, Value: 0.5,
				Window: fault.Window{Period: 4, Duty: 1, Salt: 2}},
		}}
		c, err := NewCore(4, 4, PhysicalNoisy)
		if err != nil {
			t.Fatal(err)
		}
		c.NoABFT = true
		c.SetFaultPlan(plan)
		w := make([][]float64, 32)
		for r := range w {
			w[r] = make([]float64, 18)
			for j := range w[r] {
				w[r][j] = math.Sin(float64(r*18+j+1)) * 0.9
			}
		}
		pm, err := c.Program(w)
		if err != nil {
			t.Fatal(err)
		}
		pm.SetLabel("m")
		return pm
	}
	xs := make([][]float64, 24)
	for i := range xs {
		xs[i] = abftTestInput(18)
		xs[i][i%18] = 0.9
	}
	pm1 := mk()
	ys1, err := pm1.ApplyBatchSeeded(xs, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	pm4 := mk()
	ys4, err := pm4.ApplyBatchSeeded(xs, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys1 {
		for r := range ys1[i] {
			if ys1[i][r] != ys4[i][r] {
				t.Fatalf("vector %d row %d differs across worker counts", i, r)
			}
		}
	}
}

// TestABFTCADetectsWithinOneFrame programs a CA under a stuck-coefficient
// plan and expects detection and repair inside a single CompressSeeded
// frame, with the result deterministic per seed afterwards.
func TestABFTCADetectsWithinOneFrame(t *testing.T) {
	c, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.StuckCoeff, Target: "ca", Row: 0, Col: 0, Value: -0.9},
	}}
	c.SetFaultPlan(plan)
	a, err := NewAcquisitor(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := &sensor.Frame{Rows: 64, Cols: 64, Codes: make([]uint8, 64*64)}
	for i := range f.Codes {
		f.Codes[i] = uint8((i*7 + 3) % 16)
	}
	if _, err := a.CompressSeeded(f, 5); err != nil {
		t.Fatal(err)
	}
	h := c.Health().Component("ca")
	if h.Detections.Load() == 0 {
		t.Fatal("CA fault not detected within one frame")
	}
	if h.RetiredRows.Load() != 1 || !a.Degraded() {
		t.Fatalf("CA fault not retired: retired %d degraded %v", h.RetiredRows.Load(), a.Degraded())
	}
	// Post-repair frames are reproducible.
	im1, err := a.CompressSeeded(f, 6)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := a.CompressSeeded(f, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im1.Pix {
		if im1.Pix[i] != im2.Pix[i] {
			t.Fatalf("repaired CA output not reproducible at %d", i)
		}
	}
}
