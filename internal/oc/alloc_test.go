//go:build !race

// Steady-state allocation pins for the MVM hot path. The race detector
// instruments allocations, so these run only in the plain test pass; the
// committed benchmarks (-benchmem) and the benchdiff allocs_per_op gate
// record the same contract.
package oc

import "testing"

// TestApplySeededIntoAllocFree pins the headline contract of the flat
// layout + scratch arena: a warmed-up ApplySeededInto performs zero heap
// allocations per call, in Ideal and in PhysicalNoisy fidelity (pooled,
// re-seeded noise sources).
func TestApplySeededIntoAllocFree(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, PhysicalNoisy} {
		pm := poolTestMatrix(t, 16, 23, fid)
		x := poolTestVector(23, 7)
		y := make([]float64, pm.Rows())
		if err := pm.ApplySeededInto(y, x, 1); err != nil { // warm the pools
			t.Fatal(err)
		}
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			i++
			if err := pm.ApplySeededInto(y, x, DeriveSeed(1, i)); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: ApplySeededInto allocates %.2f/op, want 0", fid, allocs)
		}

		ap := pm.NewApplier()
		allocs = testing.AllocsPerRun(100, func() {
			i++
			if err := ap.ApplySeededInto(y, x, DeriveSeed(1, i)); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: Applier.ApplySeededInto allocates %.2f/op, want 0", fid, allocs)
		}
	}
}

// TestApplyBatchSeededIntoSerialAllocFree pins the batch Into variant on
// the inline (workers <= 1) path, where no goroutine bookkeeping exists
// to allocate.
func TestApplyBatchSeededIntoSerialAllocFree(t *testing.T) {
	pm := poolTestMatrix(t, 8, 23, PhysicalNoisy)
	xs := [][]float64{poolTestVector(23, 1), poolTestVector(23, 2)}
	dst := [][]float64{make([]float64, 8), make([]float64, 8)}
	if err := pm.ApplyBatchSeededInto(dst, xs, 1, 3); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := pm.ApplyBatchSeededInto(dst, xs, 1, 3); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial ApplyBatchSeededInto allocates %.2f/op, want 0", allocs)
	}
}
