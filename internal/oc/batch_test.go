package oc

import (
	"math/rand"
	"runtime"
	"testing"

	"lightator/internal/sensor"
)

// testMatrix builds a deterministic rows x cols weight matrix in [-1, 1].
func testMatrix(rows, cols int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = 2*rng.Float64() - 1
		}
	}
	return w
}

func testVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(7, 0) == DeriveSeed(8, 0) {
		t.Error("base seeds 7 and 8 derive the same child seed")
	}
}

func TestApplySeededReproducible(t *testing.T) {
	core, err := NewCore(4, 4, PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := core.Program(testMatrix(8, 20, 1))
	if err != nil {
		t.Fatal(err)
	}
	x := testVector(20, 2)
	a, err := pm.ApplySeeded(x, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave an unrelated noisy Apply: it must not perturb the
	// seeded stream.
	if _, err := pm.Apply(x); err != nil {
		t.Fatal(err)
	}
	b, err := pm.ApplySeeded(x, 99)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("row %d differs across identical seeded calls: %g vs %g", r, a[r], b[r])
		}
	}
	c, err := pm.ApplySeeded(x, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := range a {
		if a[r] != c[r] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noisy outputs")
	}
}

func TestApplyParallelMatchesSerial(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, Physical, PhysicalNoisy} {
		core, err := NewCore(4, 4, fid)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := core.Program(testMatrix(17, 25, 3))
		if err != nil {
			t.Fatal(err)
		}
		x := testVector(25, 4)
		want, err := pm.ApplySeeded(x, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 4, 8, 32, runtime.NumCPU()} {
			got, err := pm.ApplyParallel(x, workers, 5)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", fid, workers, err)
			}
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("%v workers=%d row %d: %g != serial %g", fid, workers, r, got[r], want[r])
				}
			}
		}
	}
}

func TestMatVecBatchMatchesPerFrame(t *testing.T) {
	core, err := NewCore(4, 4, PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	w := testMatrix(6, 12, 6)
	xs := make([][]float64, 5)
	for i := range xs {
		xs[i] = testVector(12, int64(10+i))
	}
	ys, err := core.MatVecBatch(w, xs, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := core.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want, err := pm.ApplySeeded(x, DeriveSeed(77, i))
		if err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if ys[i][r] != want[r] {
				t.Fatalf("frame %d row %d: batch %g != per-frame %g", i, r, ys[i][r], want[r])
			}
		}
	}
}

func TestMatVecBatchErrors(t *testing.T) {
	core, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	w := testMatrix(2, 4, 1)
	if _, err := core.MatVecBatch(w, nil, 2, 0); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := core.MatVecBatch(w, [][]float64{{1, 2, 3}}, 2, 0); err == nil {
		t.Error("length-mismatched activation accepted")
	}
}

func TestCompressSeededMatchesCompressNoiseless(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, Physical} {
		core, err := NewCore(4, 4, fid)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := NewAcquisitor(core, 2)
		if err != nil {
			t.Fatal(err)
		}
		f := &sensor.Frame{Rows: 8, Cols: 8, Codes: make([]uint8, 64)}
		for i := range f.Codes {
			f.Codes[i] = uint8(i % 16)
		}
		a, err := ca.Compress(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ca.CompressSeeded(f, 123)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("%v: pixel %d differs: %g vs %g", fid, i, a.Pix[i], b.Pix[i])
			}
		}
	}
}

func TestCompressSeededReproducibleNoisy(t *testing.T) {
	core, err := NewCore(4, 4, PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := NewAcquisitor(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := &sensor.Frame{Rows: 8, Cols: 8, Codes: make([]uint8, 64)}
	for i := range f.Codes {
		f.Codes[i] = uint8((i * 5) % 16)
	}
	a, err := ca.CompressSeeded(f, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ca.CompressSeeded(f, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs across identical seeded calls", i)
		}
	}
}
