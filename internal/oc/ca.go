package oc

import (
	"fmt"

	"lightator/internal/analog"
	"lightator/internal/photonics"
	"lightator/internal/sensor"
)

// Compressive Acquisitor (paper §3.2). CA banks hold pre-set weight
// coefficients that fuse RGB-to-grayscale conversion with configurable
// average pooling, so a frame is compressed in a single optical pass
// before the first DNN layer ever runs (Eq. 1):
//
//	P_AvgGray = sum_over_window( (1/N^2) * luma(channel) * P_site )
//
// Two variants are provided. CAWeightsRGB is Eq. 1 verbatim: every pixel
// carries full RGB, giving 3*N*N taps per window. CAWeightsBayer adapts
// the same fusion to the sensor's RGGB mosaic, where each site carries one
// colour, giving N*N taps; the luma coefficient of each site is divided by
// that colour's site count so each channel contributes its proper average.

// Luma coefficients of Eq. 1 (ITU-R BT.601).
const (
	LumaR = 0.299
	LumaG = 0.587
	LumaB = 0.114
)

// CAWeightsRGB returns the fused grayscale + N x N average-pooling weight
// vector of Eq. 1 for full-RGB pixels, laid out window-row-major with
// channels fastest: [P1R P1G P1B P2R ... P(N*N)B]. Length 3*N*N.
func CAWeightsRGB(n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("oc: pooling size %d < 1", n)
	}
	inv := 1 / float64(n*n)
	w := make([]float64, 0, 3*n*n)
	for i := 0; i < n*n; i++ {
		w = append(w, inv*LumaR, inv*LumaG, inv*LumaB)
	}
	return w, nil
}

// CAWeightsBayer returns the fused weight vector for an N x N window of
// RGGB Bayer raw samples (window aligned to even coordinates), laid out
// window-row-major. Each site's weight is luma(channel)/count(channel in
// window), so the weighted sum equals the grayscale of the per-channel
// window averages. N must be even so every window sees a whole number of
// Bayer quads.
func CAWeightsBayer(n int) ([]float64, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("oc: Bayer pooling size %d must be even and >= 2", n)
	}
	quads := (n / 2) * (n / 2)
	counts := map[sensor.BayerChannel]float64{
		sensor.BayerR: float64(quads),
		sensor.BayerG: float64(2 * quads),
		sensor.BayerB: float64(quads),
	}
	lumas := map[sensor.BayerChannel]float64{
		sensor.BayerR: LumaR,
		sensor.BayerG: LumaG,
		sensor.BayerB: LumaB,
	}
	w := make([]float64, 0, n*n)
	for dy := 0; dy < n; dy++ {
		for dx := 0; dx < n; dx++ {
			ch := sensor.BayerChannelAt(dy, dx)
			w = append(w, lumas[ch]/counts[ch])
		}
	}
	return w, nil
}

// Acquisitor is a configured CA: a pooling factor and the optical core
// that executes its weighted sums.
type Acquisitor struct {
	// PoolN is the pooling window/stride (2 halves each dimension).
	PoolN int
	core  *Core
	pm    *ProgrammedMatrix
}

// NewAcquisitor builds a CA for N x N compression on the given core. The
// CA weights are programmed once (pre-set coefficients, no DAC traffic at
// run time — exactly why the paper's pooling layers are nearly free in
// Fig. 8).
func NewAcquisitor(core *Core, poolN int) (*Acquisitor, error) {
	w, err := CAWeightsBayer(poolN)
	if err != nil {
		return nil, err
	}
	pm, err := core.Program([][]float64{w})
	if err != nil {
		return nil, err
	}
	// The CA is a first-class health component: fault plans target it as
	// "ca" and its ABFT/recovery counters surface under that label.
	pm.SetLabel("ca")
	return &Acquisitor{PoolN: poolN, core: core, pm: pm}, nil
}

// Degraded reports whether the CA's programmed bank is serving degraded
// output (rows retired to the digital fallback, or unrecovered ABFT
// detections).
func (a *Acquisitor) Degraded() bool { return a.pm.Degraded() }

// ABFTChecksPer models how many checksum verifications n pooled-window
// applies trigger (see ProgrammedMatrix.ABFTChecksPer).
func (a *Acquisitor) ABFTChecksPer(applies int64) int64 { return a.pm.ABFTChecksPer(applies) }

// Compress runs the fused grayscale + average pooling over a raw Bayer
// frame readout, producing a single-channel activation plane of size
// (H/N) x (W/N) with values in [0, 1].
//
// In PhysicalNoisy fidelity Compress draws from the core's shared noise
// source (see ProgrammedMatrix.Apply); concurrent frame streams should
// use CompressSeeded instead.
func (a *Acquisitor) Compress(f *sensor.Frame) (*sensor.Image, error) {
	return a.compress(f, func(dst, window []float64, _ int) error {
		return a.pm.applyInto(dst, window)
	})
}

// CompressSeeded is Compress with deterministic noise: window j of the
// output plane draws from a stream seeded with DeriveSeed(seed, j), so
// the compressed frame is bit-identical for a given (frame, seed) no
// matter how many frames are being compressed concurrently.
//
// This is the per-frame hot path (every pipeline frame funnels through
// it), so the walk is specialised: one scratch window per frame, CRC
// intensities read through a precomputed code table (the exact
// float64(code)/NumComparators division Frame.Intensity performs), and —
// when the activation grid coincides with the CRC grid, i.e.
// 2^ABits - 1 == NumComparators — the quantization pass is skipped
// outright: code/15 round-trips the 4-bit grid exactly
// (Round(code/15·15)/15 == code/15 bit-for-bit), so quantization is the
// identity. The golden tests pin all of this against the generic path.
func (a *Acquisitor) CompressSeeded(f *sensor.Frame, seed int64) (*sensor.Image, error) {
	n := a.PoolN
	if f.Rows%n != 0 || f.Cols%n != 0 {
		return nil, fmt.Errorf("oc: frame %dx%d not divisible by pool %d", f.Rows, f.Cols, n)
	}
	outH, outW := f.Rows/n, f.Cols/n
	out := sensor.NewImage(outH, outW, 1)
	window := GetScratch(n * n)
	xq := GetScratch(n * n)
	y := GetScratch(1)
	defer PutScratch(window)
	defer PutScratch(xq)
	defer PutScratch(y)
	// Intensity table: lut[c] is exactly Frame.Intensity's division for
	// code c. Codes above the CRC range (impossible from ReadFrame, but
	// reachable from hand-built frames) fall back to the live division.
	var lut [analog.NumComparators + 1]float64
	for c := range lut {
		lut[c] = float64(c) / float64(analog.NumComparators)
	}
	skipQuant := (1<<uint(a.core.ABits))-1 == analog.NumComparators
	var ns *photonics.NoiseSource
	if a.core.Fidelity == PhysicalNoisy {
		ns = getNoise()
		defer putNoise(ns)
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			i := 0
			overRange := false
			for dy := 0; dy < n; dy++ {
				row := f.Codes[(oy*n+dy)*f.Cols+ox*n:]
				for dx := 0; dx < n; dx++ {
					c := row[dx]
					if int(c) < len(lut) {
						(*window)[i] = lut[c]
					} else {
						// Out-of-range codes land off the CRC grid, so the
						// identity-quantization shortcut does not hold for
						// this window.
						(*window)[i] = float64(c) / float64(analog.NumComparators)
						overRange = true
					}
					i++
				}
			}
			q := *window
			if !skipQuant || overRange {
				if err := a.pm.quantizeInto(*xq, *window); err != nil {
					return nil, err
				}
				q = *xq
			}
			wseed := DeriveSeed(seed, oy*outW+ox)
			a.pm.applySeededRangeNS(q, *y, 0, 1, wseed, ns)
			a.pm.abftVerify(q, (*y)[:1], wseed, ns)
			out.Set(oy, ox, 0, (*y)[0])
		}
	}
	return out, nil
}

// compress walks the pooling windows, delegating each weighted sum to
// apply (which receives a one-element destination and the window index
// for seeding).
func (a *Acquisitor) compress(f *sensor.Frame, apply func(dst, window []float64, j int) error) (*sensor.Image, error) {
	n := a.PoolN
	if f.Rows%n != 0 || f.Cols%n != 0 {
		return nil, fmt.Errorf("oc: frame %dx%d not divisible by pool %d", f.Rows, f.Cols, n)
	}
	outH, outW := f.Rows/n, f.Cols/n
	out := sensor.NewImage(outH, outW, 1)
	window := GetScratch(n * n)
	y := GetScratch(1)
	defer PutScratch(window)
	defer PutScratch(y)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			i := 0
			for dy := 0; dy < n; dy++ {
				for dx := 0; dx < n; dx++ {
					(*window)[i] = f.Intensity(oy*n+dy, ox*n+dx)
					i++
				}
			}
			if err := apply(*y, *window, oy*outW+ox); err != nil {
				return nil, err
			}
			out.Set(oy, ox, 0, (*y)[0])
		}
	}
	return out, nil
}

// Reference computes the same fused compression in exact float arithmetic
// (no quantization, no analog effects) for verification.
func (a *Acquisitor) Reference(f *sensor.Frame) (*sensor.Image, error) {
	n := a.PoolN
	if f.Rows%n != 0 || f.Cols%n != 0 {
		return nil, fmt.Errorf("oc: frame %dx%d not divisible by pool %d", f.Rows, f.Cols, n)
	}
	w, err := CAWeightsBayer(n)
	if err != nil {
		return nil, err
	}
	outH, outW := f.Rows/n, f.Cols/n
	out := sensor.NewImage(outH, outW, 1)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			sum := 0.0
			i := 0
			for dy := 0; dy < n; dy++ {
				for dx := 0; dx < n; dx++ {
					sum += w[i] * f.Intensity(oy*n+dy, ox*n+dx)
					i++
				}
			}
			out.Set(oy, ox, 0, sum)
		}
	}
	return out, nil
}
