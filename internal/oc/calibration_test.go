package oc

import (
	"math"
	"math/rand"
	"testing"
)

func randWeightRows(rows, cols int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	return w
}

func randActivations(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

// TestDefectCalibrationIdealZero: in Ideal fidelity the effective
// coefficients ARE the programmed grid weights, so every per-row defect
// constant is exactly zero and the calibrated apply path is bit-identical
// to the plain one.
func TestDefectCalibrationIdealZero(t *testing.T) {
	core, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := core.Program(randWeightRows(4, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	for r, k := range pm.DefectCalibration() {
		if k != 0 {
			t.Fatalf("ideal fidelity row %d has nonzero defect %g", r, k)
		}
	}
	x := randActivations(20, 5)
	plain := make([]float64, 4)
	calib := make([]float64, 4)
	if err := pm.ApplySeededInto(plain, x, 9); err != nil {
		t.Fatal(err)
	}
	if err := pm.ApplySeededCalibratedInto(calib, x, 9); err != nil {
		t.Fatal(err)
	}
	for r := range plain {
		if plain[r] != calib[r] {
			t.Fatalf("row %d: calibrated %v != plain %v in Ideal fidelity", r, calib[r], plain[r])
		}
	}
}

// TestCalibratedApplyRestoresDefect: in Physical fidelity the calibrated
// output is exactly the plain output plus κ_r·Σxq, with κ from
// DefectCalibration and the sum over the quantized activations.
func TestCalibratedApplyRestoresDefect(t *testing.T) {
	core, err := NewCore(4, 4, Physical)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := core.Program(randWeightRows(6, 30, 7))
	if err != nil {
		t.Fatal(err)
	}
	kappa := pm.DefectCalibration()
	nonzero := false
	for _, k := range kappa {
		if k != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("Physical fidelity produced an all-zero defect calibration")
	}

	x := randActivations(30, 11)
	xq := make([]float64, 30)
	if err := pm.quantizeInto(xq, x); err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, v := range xq {
		s += v
	}

	plain := make([]float64, 6)
	calib := make([]float64, 6)
	if err := pm.ApplySeededInto(plain, x, 13); err != nil {
		t.Fatal(err)
	}
	if err := pm.ApplySeededCalibratedInto(calib, x, 13); err != nil {
		t.Fatal(err)
	}
	for r := range plain {
		want := plain[r] + kappa[r]*s
		if calib[r] != want {
			t.Fatalf("row %d: calibrated output %v, want plain+κ·Σxq = %v", r, calib[r], want)
		}
	}
}

// TestCalibrationReducesWideRowError: the systematic crosstalk loss
// accumulates linearly with programmed row width, so on a wide matrix the
// calibrated output must sit far closer to the exact-grid (Ideal) result
// than the uncalibrated one. This is the bug the calibrated serving path
// fixes — wide dense rows drifting by Σ-many insertion-loss quanta.
func TestCalibrationReducesWideRowError(t *testing.T) {
	const rows, cols = 4, 180
	w := randWeightRows(rows, cols, 17)
	x := randActivations(cols, 19)

	ideal, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	ipm, err := ideal.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ipm.Apply(x)
	if err != nil {
		t.Fatal(err)
	}

	phys, err := NewCore(4, 4, Physical)
	if err != nil {
		t.Fatal(err)
	}
	ppm, err := phys.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ppm.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	calib, err := ppm.ApplyCalibrated(x)
	if err != nil {
		t.Fatal(err)
	}

	errPlain, errCalib := 0.0, 0.0
	for r := range ref {
		errPlain += math.Abs(plain[r] - ref[r])
		errCalib += math.Abs(calib[r] - ref[r])
	}
	if errCalib >= errPlain/2 {
		t.Fatalf("calibration did not help on wide rows: plain error %g, calibrated %g", errPlain, errCalib)
	}
}

// TestAnalogWeightsIntoMatchesCalibratedApply: the QAT forward operator
// (effective weight matrix) must realise the same linear map as
// Program + ApplyCalibrated — a dot product against the analog weights
// equals the calibrated optical output up to summation order.
func TestAnalogWeightsIntoMatchesCalibratedApply(t *testing.T) {
	const rows, cols = 5, 21
	core, err := NewCore(4, 4, Physical)
	if err != nil {
		t.Fatal(err)
	}
	w := randWeightRows(rows, cols, 23)
	w[0][0] = 1.0 // pin the full scale at exactly 1 so Program and AnalogWeightsInto agree
	flat := make([]float64, 0, rows*cols)
	for _, row := range w {
		flat = append(flat, row...)
	}
	pm, err := core.Program(w)
	if err != nil {
		t.Fatal(err)
	}

	aw := make([]float64, rows*cols)
	if err := core.AnalogWeightsInto(aw, flat, rows, cols); err != nil {
		t.Fatal(err)
	}

	// Activations already on the 4-bit drive grid, so quantization is the
	// identity and both paths see the same inputs.
	rng := rand.New(rand.NewSource(29))
	x := make([]float64, cols)
	for i := range x {
		x[i] = float64(rng.Intn(16)) / 15
	}
	want, err := pm.ApplyCalibrated(x)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		got := 0.0
		for i, xi := range x {
			got += aw[r*cols+i] * xi
		}
		if math.Abs(got-want[r]) > 1e-9 {
			t.Fatalf("row %d: analog-weight dot product %v, calibrated apply %v", r, got, want[r])
		}
	}
}

// TestAnalogWeightsIntoIdealIsGrid: in Ideal fidelity the analog weights
// are the plain symmetric level grid, scaled back to the input range.
func TestAnalogWeightsIntoIdealIsGrid(t *testing.T) {
	core, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.4, -0.8, 0.1, -0.05, 0.8, 0.33}
	out := make([]float64, len(w))
	if err := core.AnalogWeightsInto(out, w, 2, 3); err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		want := core.bank.LevelToWeight(core.bank.WeightToLevel(v/0.8)) * 0.8
		if math.Abs(out[i]-want) > 1e-15 {
			t.Fatalf("ideal analog weight %d: got %v, want grid value %v", i, out[i], want)
		}
	}
}

// TestAnalogWeightsIntoEdges: all-zero weights produce all zeros; shape
// mismatches are rejected.
func TestAnalogWeightsIntoEdges(t *testing.T) {
	core, err := NewCore(4, 4, Physical)
	if err != nil {
		t.Fatal(err)
	}
	out := []float64{1, 2, 3, 4}
	if err := core.AnalogWeightsInto(out, make([]float64, 4), 2, 2); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero weights produced nonzero analog weight %d: %v", i, v)
		}
	}
	if err := core.AnalogWeightsInto(out, make([]float64, 4), 3, 2); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if err := core.AnalogWeightsInto(out[:2], make([]float64, 4), 2, 2); err == nil {
		t.Fatal("short destination accepted")
	}
}
