// Package oc implements Lightator's Optical Core (paper §3, Fig. 3): the
// All-in-One Convolver built from MR weight banks — 96 banks of 6 arms of
// 9 MRs — plus the Compressive Acquisitor banks that fuse RGB-to-grayscale
// conversion and average pooling into a single optical pass (Eq. 1).
//
// The core's job is matrix-vector multiplication: weights are quantized
// and mapped onto MR detunings (one arm per 9-tap segment), activations
// arrive as WDM light intensities from the DMVA, each arm's balanced
// photodetector produces one signed partial MAC, and the summation tree
// combines partial sums for kernels larger than one arm.
//
// The MVM hot path is allocation-free in steady state: programmed
// coefficients live in one contiguous row-major array (applyRow is a
// linear scan), quantization scratch comes from a shared sync.Pool
// (GetScratch/PutScratch), per-row noise sources are pooled and re-seeded
// in place, and the *Into variants (ApplySeededInto, ApplyBatchSeededInto)
// write into caller-owned destinations. See docs/PERF.md for the hot-path
// inventory and the determinism-preserving optimization rules.
package oc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"lightator/internal/fault"
	"lightator/internal/mapping"
	"lightator/internal/photonics"
)

// Fidelity selects how faithfully the optical analog path is simulated.
type Fidelity int

const (
	// Ideal computes exact quantized arithmetic: weights and activations
	// are quantized but the MVM itself is error-free. This isolates
	// quantization effects from analog effects.
	Ideal Fidelity = iota
	// Physical adds WDM inter-channel crosstalk derived from the MR
	// Lorentzian tails (photonics.BankModel).
	Physical
	// PhysicalNoisy additionally injects balanced-photodetector shot and
	// thermal noise into every arm readout.
	PhysicalNoisy
)

// String implements fmt.Stringer.
func (f Fidelity) String() string {
	switch f {
	case Ideal:
		return "ideal"
	case Physical:
		return "physical"
	case PhysicalNoisy:
		return "physical+noise"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// Core is a configured optical core: a weight precision, an activation
// precision, and a simulation fidelity. It is safe to create one Core per
// layer precision and reuse it across layers.
type Core struct {
	// WBits is the weight precision mapped onto MR detunings (paper
	// configurations: 4, 3 or 2).
	WBits int
	// ABits is the activation precision of the DMVA drive (paper: 4).
	ABits int
	// Fidelity of the analog simulation.
	Fidelity Fidelity
	// NoABFT disables checksum-row derivation for matrices programmed
	// after it is set (benchmarks isolating the ABFT overhead, and tests
	// pinning the unprotected path). The default — ABFT on — is the
	// serving configuration.
	NoABFT bool

	bank  *photonics.BankModel
	noise *photonics.NoiseSource
	// faultPlan is the active fault-injection plan; matrices compile it
	// at SetLabel time. Nil (the default) injects nothing.
	faultPlan *fault.Plan
	// health is the per-component fault-tolerance registry, created
	// lazily on first use.
	health     *fault.Registry
	healthOnce sync.Once
	// noiseSigma is the output-referred RMS noise of one arm readout in
	// normalised MAC units, derived from the BPD device models.
	noiseSigma float64
	// actGrid[k] is the ABits activation code k's value, k/(2^ABits-1) —
	// the exact division QuantizeActivation's definition performs,
	// precomputed so the hot quantization loop is one multiply, one
	// round and one table load per element.
	actGrid []float64
}

// NewCore builds a core for the given [W:A] precision configuration.
func NewCore(wBits, aBits int, fid Fidelity) (*Core, error) {
	if aBits < 1 || aBits > 8 {
		return nil, fmt.Errorf("oc: activation bits %d outside [1,8]", aBits)
	}
	bm, err := photonics.NewBankModel(mapping.MRsPerArm, wBits)
	if err != nil {
		return nil, err
	}
	c := &Core{
		WBits:    wBits,
		ABits:    aBits,
		Fidelity: fid,
		bank:     bm,
		noise:    photonics.NewNoiseSource(0x11647a70),
	}
	levels := (int(1) << uint(aBits)) - 1
	c.actGrid = make([]float64, levels+1)
	for k := range c.actGrid {
		c.actGrid[k] = float64(k) / float64(levels)
	}
	c.noiseSigma = deriveArmNoiseSigma()
	return c, nil
}

// deriveArmNoiseSigma computes the BPD noise floor of one arm readout,
// referred to normalised MAC units where one channel at full activation
// and weight +1 contributes 1.0. Full scale is therefore 9 channels times
// the per-channel photocurrent.
func deriveArmNoiseSigma() float64 {
	v := photonics.DefaultVCSEL(photonics.CBandCenter)
	bpd := photonics.DefaultBalancedDetector()
	// Per-channel optical power at the detector: VCSEL max output minus
	// ~3 dB of link insertion loss.
	perChannel := v.MaxOpticalPower() * photonics.DB2Linear(-3)
	fullScale := bpd.Plus.Current(perChannel) - bpd.Plus.DarkCurrent
	if fullScale <= 0 {
		return 0
	}
	// Worst-case rails: all channels on one rail.
	sigmaAmps := bpd.NoisySigma(perChannel*float64(mapping.MRsPerArm), 0)
	return sigmaAmps / fullScale
}

// ArmNoiseSigma exposes the derived per-arm noise in normalised MAC units
// (ablation benches report it).
func (c *Core) ArmNoiseSigma() float64 { return c.noiseSigma }

// SetFaultPlan activates a fault-injection plan on this core. Matrices
// compile the plan when they are labelled (SetLabel), so the plan must be
// set before the accelerator programs its matrices — the facade does this
// at construction. A nil plan (the default) injects nothing and costs
// nothing on the hot path.
func (c *Core) SetFaultPlan(p *fault.Plan) { c.faultPlan = p }

// FaultPlan returns the active fault plan (nil when none).
func (c *Core) FaultPlan() *fault.Plan { return c.faultPlan }

// Health returns the core's per-component fault-tolerance registry.
func (c *Core) Health() *fault.Registry {
	c.healthOnce.Do(func() { c.health = fault.NewRegistry() })
	return c.health
}

// SnapWeight maps a normalised weight in [-1,1] onto the signed bank
// level grid — the exact coefficient the tuned MR realises in Ideal
// fidelity (LevelToWeight of WeightToLevel). Digital reference paths
// (internal/infer) use it so the weight grid has a single owner.
func (c *Core) SnapWeight(v float64) float64 {
	return c.bank.LevelToWeight(c.bank.WeightToLevel(v))
}

// QuantizeActivation maps x in [0,1] to its ABits code's value,
// Round(x·n)/n for n = 2^ABits-1. Values are clipped, matching the
// saturating CRC/driver chain; NaN propagates, as the direct expression
// would. The division is served from the precomputed grid table
// (Round(x·n) is integer-valued for finite clipped x, and actGrid holds
// exactly k/n), so the result is bit-identical to the direct
// expression.
func (c *Core) QuantizeActivation(x float64) float64 {
	if x < 0 {
		x = 0
	} else if x > 1 {
		x = 1
	} else if x != x {
		return x
	}
	return c.actGrid[int(math.Round(x*float64(len(c.actGrid)-1)))]
}

// ProgrammedMatrix is a weight matrix mapped onto the optical core: each
// row is split into 9-tap segments, each segment programmed onto one arm.
// Programming is the expensive step (MR tuning); Apply streams activation
// vectors through at modulation rate.
//
// The programmed state is a CSR-style flat layout: one contiguous
// row-major coefficient array plus the shared per-row segment boundary
// index (every row tiles its columns into the same arm-sized spans), so
// applyRow is a single linear scan with one noise draw per boundary —
// cache-friendly and allocation-free. It replaced a slice-of-slices
// segment table that cost two pointer hops per arm.
type ProgrammedMatrix struct {
	core *Core
	rows int
	cols int
	// coeffs holds the effective transfer coefficients for the configured
	// fidelity, rows*cols row-major: row r spans coeffs[r*cols:(r+1)*cols].
	coeffs []float64
	// levels holds the quantized MR levels in the same layout (HeaterPower
	// reads them).
	levels []int
	// armBounds are the column offsets of the segment boundaries shared by
	// every row: 0, 9, 18, ..., cols. Segment s of row r covers columns
	// [armBounds[s], armBounds[s+1]).
	armBounds []int
	// rowDefect is the per-row defect calibration constant κ_r: the mean,
	// over the row's columns, of (ideal grid weight − effective analog
	// coefficient). The analog transfer loses a small, systematically
	// negative amount per coefficient to the Lorentzian tails of the
	// neighbouring rings (insertion loss + parasitic drops), so a row's
	// accumulated error grows linearly with its programmed width while the
	// signal only grows like √width — exactly why wide dense layers are
	// analog-hostile. κ_r is exactly the rank-1 compensation a one-time
	// per-row hardware calibration would measure (program the row, drive
	// all channels at full scale, compare the readout to the expected
	// value); the calibrated apply paths restore it digitally as
	// κ_r·Σ_j x_j — one shared activation sum plus one MAC per row. In
	// Ideal fidelity the effective coefficients are the grid weights and
	// every κ_r is exactly 0.
	rowDefect []float64

	// Fault-tolerance state (abft.go). abft is the checksum-row state
	// derived at Program time (nil when Core.NoABFT); label/health name
	// the matrix as a component; inj is the compiled fault injector (nil
	// — the zero-cost default — unless a plan targets this label); ov is
	// the copy-on-write recovery overlay (retired rows, recalibrated
	// adjustments) behind an atomic pointer, written under mu.
	abft   *abftState
	label  string
	health *fault.Health
	inj    *injector
	ov     atomic.Pointer[overlay]
	mu     sync.Mutex
}

// Program quantizes and maps a weight matrix with entries in [-1, 1].
// Rows are output neurons / filters; columns are inputs.
func (c *Core) Program(w [][]float64) (*ProgrammedMatrix, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("oc: empty weight matrix")
	}
	cols := len(w[0])
	pm := &ProgrammedMatrix{
		core:   c,
		rows:   len(w),
		cols:   cols,
		coeffs: make([]float64, len(w)*cols),
		levels: make([]int, len(w)*cols),
	}
	pm.armBounds = append(pm.armBounds, 0)
	for start := mapping.MRsPerArm; start < cols; start += mapping.MRsPerArm {
		pm.armBounds = append(pm.armBounds, start)
	}
	pm.armBounds = append(pm.armBounds, cols)
	segLevels := make([]int, 0, mapping.MRsPerArm)
	for r, row := range w {
		if len(row) != cols {
			return nil, fmt.Errorf("oc: ragged weight matrix at row %d", r)
		}
		base := r * cols
		for s := 0; s+1 < len(pm.armBounds); s++ {
			lo, hi := pm.armBounds[s], pm.armBounds[s+1]
			segLevels = segLevels[:0]
			for i, v := range row[lo:hi] {
				if v < -1 || v > 1 {
					return nil, fmt.Errorf("oc: weight %g at (%d,%d) outside [-1,1]", v, r, lo+i)
				}
				segLevels = append(segLevels, c.bank.WeightToLevel(v))
			}
			var (
				cf  []float64
				err error
			)
			if c.Fidelity == Ideal {
				cf, err = c.bank.IdealCoefficients(segLevels)
			} else {
				cf, err = c.bank.Coefficients(segLevels)
			}
			if err != nil {
				return nil, err
			}
			copy(pm.coeffs[base+lo:base+hi], cf)
			copy(pm.levels[base+lo:base+hi], segLevels)
		}
	}
	pm.rowDefect = make([]float64, pm.rows)
	for r := 0; r < pm.rows; r++ {
		base := r * cols
		sum := 0.0
		for i := 0; i < cols; i++ {
			sum += c.bank.LevelToWeight(pm.levels[base+i]) - pm.coeffs[base+i]
		}
		pm.rowDefect[r] = sum / float64(cols)
	}
	if !c.NoABFT {
		if err := pm.initABFT(); err != nil {
			return nil, err
		}
	}
	return pm, nil
}

// DefectCalibration returns the per-row defect calibration constants κ_r
// (mean ideal-minus-effective coefficient per row; see the rowDefect
// field). The slice is a copy; all zeros in Ideal fidelity.
func (pm *ProgrammedMatrix) DefectCalibration() []float64 {
	return append([]float64(nil), pm.rowDefect...)
}

// Rows returns the number of output rows.
func (pm *ProgrammedMatrix) Rows() int { return pm.rows }

// Cols returns the input width.
func (pm *ProgrammedMatrix) Cols() int { return pm.cols }

// ArmCount returns the number of arms the matrix occupies — the unit the
// scheduler tiles over.
func (pm *ProgrammedMatrix) ArmCount() int {
	return pm.rows * (len(pm.armBounds) - 1)
}

// quantizeInto writes the ABits-quantized copy of an activation vector
// into dst (len == pm.cols). The quantization grid is the same as
// Core.QuantizeActivation, inlined with the precomputed grid table so
// the hot loop is clip, multiply, round, load — no division. NaN inputs
// propagate (they escape both clips), exactly as Round(NaN·n)/n would —
// a table lookup on int(NaN) would panic instead.
func (pm *ProgrammedMatrix) quantizeInto(dst, x []float64) error {
	if len(x) != pm.cols {
		return fmt.Errorf("oc: input length %d, want %d", len(x), pm.cols)
	}
	grid := pm.core.actGrid
	n := float64(len(grid) - 1)
	for i, v := range x {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		} else if v != v {
			dst[i] = v
			continue
		}
		dst[i] = grid[int(math.Round(v*n))]
	}
	return nil
}

// applyRow computes one output row from quantized activations: a linear
// scan over the row's contiguous coefficient span. ns, when non-nil,
// supplies per-arm BPD noise; each arm draws exactly one sample in segment
// order, so a given noise source yields a reproducible row.
func (pm *ProgrammedMatrix) applyRow(xq []float64, r int, ns *photonics.NoiseSource) float64 {
	base := r * pm.cols
	if len(pm.armBounds) == 2 {
		// Single-arm rows (<= 9 taps — every CA bank and most kernel
		// operators): skip the segment walk entirely.
		partial := 0.0
		for i, cf := range pm.coeffs[base : base+pm.cols] {
			partial += cf * xq[i]
		}
		if ns != nil {
			partial += ns.Gaussian(0, pm.core.noiseSigma)
		}
		return partial
	}
	sum := 0.0
	for s := 0; s+1 < len(pm.armBounds); s++ {
		lo, hi := pm.armBounds[s], pm.armBounds[s+1]
		partial := 0.0
		coeffs := pm.coeffs[base+lo : base+hi]
		seg := xq[lo:hi:hi]
		for i, cf := range coeffs {
			partial += cf * seg[i]
		}
		if ns != nil {
			partial += ns.Gaussian(0, pm.core.noiseSigma)
		}
		sum += partial
	}
	return sum
}

// applyInto computes y = W*x into dst through the shared-noise path (see
// Apply for the caveats).
func (pm *ProgrammedMatrix) applyInto(dst, x []float64) error {
	if len(dst) != pm.rows {
		return fmt.Errorf("oc: destination length %d, want %d rows", len(dst), pm.rows)
	}
	xq := GetScratch(pm.cols)
	defer PutScratch(xq)
	if err := pm.quantizeInto(*xq, x); err != nil {
		return err
	}
	var ns *photonics.NoiseSource
	if pm.core.Fidelity == PhysicalNoisy {
		ns = pm.core.noise
	}
	for r := 0; r < pm.rows; r++ {
		dst[r] = pm.applyRow(*xq, r, ns)
	}
	return nil
}

// Apply computes y = W*x through the optical path. Activations are
// clipped to [0,1] and quantized to the core's ABits. The result is in
// normalised units: exact quantized W*x in Ideal fidelity, perturbed by
// crosstalk and optionally noise otherwise.
//
// In PhysicalNoisy fidelity Apply draws from the core's shared noise
// source, so it is neither safe for concurrent use nor reproducible
// across interleavings; concurrent callers should use ApplySeeded or
// ApplyParallel, which derive an independent stream per output row.
func (pm *ProgrammedMatrix) Apply(x []float64) ([]float64, error) {
	y := make([]float64, pm.rows)
	if err := pm.applyInto(y, x); err != nil {
		return nil, err
	}
	return y, nil
}

// DeriveSeed maps a base seed and an index to a decorrelated child seed
// (SplitMix64 finalizer). The batched paths use it to give every frame —
// and every output row within a frame — its own deterministic noise
// stream, so results do not depend on goroutine scheduling.
func DeriveSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ApplySeededInto computes y = W*x into dst (len == Rows), like
// ApplySeeded but with a caller-owned destination: the steady-state hot
// path allocates nothing — quantization scratch comes from the shared
// pool and, in PhysicalNoisy fidelity, the per-row noise sources are
// pooled and re-seeded in place (bit-identical streams to freshly
// constructed sources). Safe for concurrent use on a shared
// ProgrammedMatrix as long as destinations are disjoint.
func (pm *ProgrammedMatrix) ApplySeededInto(dst, x []float64, seed int64) error {
	if len(dst) != pm.rows {
		return fmt.Errorf("oc: destination length %d, want %d rows", len(dst), pm.rows)
	}
	xq := GetScratch(pm.cols)
	defer PutScratch(xq)
	if err := pm.quantizeInto(*xq, x); err != nil {
		return err
	}
	pm.applySeededRange(*xq, dst, 0, pm.rows, seed)
	pm.abftVerify(*xq, dst, seed, nil)
	return nil
}

// addDefect applies the rank-1 defect compensation to a computed output:
// dst[r] += κ_r·S for S = Σ_j xq_j over the quantized activations — the
// digital restore of the systematic per-row analog loss (see rowDefect).
// In Ideal fidelity every κ_r is exactly 0 and dst is left bit-identical.
func (pm *ProgrammedMatrix) addDefect(dst, xq []float64) {
	s := 0.0
	for _, v := range xq {
		s += v
	}
	for r, k := range pm.rowDefect {
		dst[r] += k * s
	}
}

// ApplySeededCalibratedInto is ApplySeededInto with the per-row defect
// calibration restored digitally: y = W*x + κ·Σxq (see DefectCalibration).
// This is the fidelity-true serving path for wide programmed matrices —
// the systematic crosstalk loss, which accumulates linearly with row
// width, is compensated by one shared activation sum and one extra MAC
// per row. Noise and the zero-mean crosstalk residual remain, so the
// optical-vs-reference gap still isolates genuine analog error. Same
// determinism and concurrency contract as ApplySeededInto.
func (pm *ProgrammedMatrix) ApplySeededCalibratedInto(dst, x []float64, seed int64) error {
	if len(dst) != pm.rows {
		return fmt.Errorf("oc: destination length %d, want %d rows", len(dst), pm.rows)
	}
	xq := GetScratch(pm.cols)
	defer PutScratch(xq)
	if err := pm.quantizeInto(*xq, x); err != nil {
		return err
	}
	pm.applySeededRange(*xq, dst, 0, pm.rows, seed)
	pm.abftVerify(*xq, dst, seed, nil)
	pm.addDefect(dst, *xq)
	return nil
}

// ApplyCalibrated computes y = W*x + κ·Σxq through the shared-noise path
// (Apply's concurrency caveats) with the per-row defect calibration
// restored digitally — the training-eval counterpart of
// ApplySeededCalibratedInto.
func (pm *ProgrammedMatrix) ApplyCalibrated(x []float64) ([]float64, error) {
	y := make([]float64, pm.rows)
	xq := GetScratch(pm.cols)
	defer PutScratch(xq)
	if err := pm.quantizeInto(*xq, x); err != nil {
		return nil, err
	}
	var ns *photonics.NoiseSource
	if pm.core.Fidelity == PhysicalNoisy {
		ns = pm.core.noise
	}
	for r := 0; r < pm.rows; r++ {
		y[r] = pm.applyRow(*xq, r, ns)
	}
	pm.addDefect(y, *xq)
	return y, nil
}

// ApplySeeded computes y = W*x like Apply, but in PhysicalNoisy fidelity
// the noise of output row r is drawn from an independent stream seeded
// with DeriveSeed(seed, r). Two calls with the same inputs and seed are
// bit-identical, regardless of what ran in between — the reproducibility
// contract the batched pipeline is built on. Safe for concurrent use.
// Allocation-sensitive callers should use ApplySeededInto.
func (pm *ProgrammedMatrix) ApplySeeded(x []float64, seed int64) ([]float64, error) {
	y := make([]float64, pm.rows)
	if err := pm.ApplySeededInto(y, x, seed); err != nil {
		return nil, err
	}
	return y, nil
}

// applySeededRange fills y[lo:hi] with seeded rows, drawing the noise
// source (PhysicalNoisy only) from the shared pool for the duration of
// the range.
func (pm *ProgrammedMatrix) applySeededRange(xq, y []float64, lo, hi int, seed int64) {
	if pm.core.Fidelity != PhysicalNoisy {
		pm.applySeededRangeNS(xq, y, lo, hi, seed, nil)
		return
	}
	ns := getNoise()
	pm.applySeededRangeNS(xq, y, lo, hi, seed, ns)
	putNoise(ns)
}

// applySeededRangeNS is applySeededRange against a caller-owned noise
// source (ignored outside PhysicalNoisy fidelity, required inside it).
// Row r's stream is DeriveSeed(seed, r), the source re-seeded in place —
// bit-identical to a freshly constructed per-row source.
func (pm *ProgrammedMatrix) applySeededRangeNS(xq, y []float64, lo, hi int, seed int64, ns *photonics.NoiseSource) {
	if pm.core.Fidelity != PhysicalNoisy {
		for r := lo; r < hi; r++ {
			y[r] = pm.applyRow(xq, r, nil)
		}
	} else {
		for r := lo; r < hi; r++ {
			ns.Reseed(DeriveSeed(seed, r))
			y[r] = pm.applyRow(xq, r, ns)
		}
	}
	// Fault-injection tail (abft.go): both branches are the zero-cost
	// no-op default — inj is nil without an active plan, the overlay
	// pointer is nil until the recovery ladder retires or recalibrates a
	// row.
	if inj := pm.inj; inj != nil {
		inj.perturb(pm, y, xq, lo, hi, seed)
	}
	if ov := pm.ov.Load(); ov != nil {
		ov.fix(pm, y, xq, lo, hi)
	}
}

// Applier is reusable per-goroutine scratch for repeated seeded applies
// against one programmed matrix: the quantization buffer and (in
// PhysicalNoisy fidelity) the per-row noise source are checked out of
// the shared pools once and reused across calls, so tight apply loops —
// the kernel window walk, the infer im2col stream, Landweber passes —
// pay no pool traffic per call. Release returns the scratch when the
// loop is done. Output is bit-identical to
// ProgrammedMatrix.ApplySeededInto. Not safe for concurrent use: create
// one Applier per goroutine; the underlying matrix may be shared
// freely.
type Applier struct {
	pm *ProgrammedMatrix
	xq *[]float64
	ns *photonics.NoiseSource
}

// NewApplier builds an Applier bound to the matrix, drawing its scratch
// from the shared pools.
func (pm *ProgrammedMatrix) NewApplier() *Applier {
	ap := &Applier{pm: pm, xq: GetScratch(pm.cols)}
	if pm.core.Fidelity == PhysicalNoisy {
		ap.ns = getNoise()
	}
	return ap
}

// Release returns the applier's scratch to the shared pools. The
// applier must not be used afterwards. Optional — an unreleased
// applier's scratch is simply garbage-collected — but tight per-shard
// loops should release so the buffers recirculate.
func (ap *Applier) Release() {
	PutScratch(ap.xq)
	ap.xq = nil
	if ap.ns != nil {
		putNoise(ap.ns)
		ap.ns = nil
	}
}

// ApplySeededInto computes y = W*x into dst exactly like
// ProgrammedMatrix.ApplySeededInto, using the applier's own scratch.
func (ap *Applier) ApplySeededInto(dst, x []float64, seed int64) error {
	pm := ap.pm
	if len(dst) != pm.rows {
		return fmt.Errorf("oc: destination length %d, want %d rows", len(dst), pm.rows)
	}
	if err := pm.quantizeInto(*ap.xq, x); err != nil {
		return err
	}
	pm.applySeededRangeNS(*ap.xq, dst, 0, pm.rows, seed, ap.ns)
	pm.abftVerify(*ap.xq, dst, seed, ap.ns)
	return nil
}

// ApplySeededCalibratedInto is ApplySeededInto via the applier's scratch,
// with the per-row defect calibration restored digitally — bit-identical
// to ProgrammedMatrix.ApplySeededCalibratedInto.
func (ap *Applier) ApplySeededCalibratedInto(dst, x []float64, seed int64) error {
	pm := ap.pm
	if len(dst) != pm.rows {
		return fmt.Errorf("oc: destination length %d, want %d rows", len(dst), pm.rows)
	}
	if err := pm.quantizeInto(*ap.xq, x); err != nil {
		return err
	}
	pm.applySeededRangeNS(*ap.xq, dst, 0, pm.rows, seed, ap.ns)
	pm.abftVerify(*ap.xq, dst, seed, ap.ns)
	pm.addDefect(dst, *ap.xq)
	return nil
}

// ApplyParallel computes y = W*x with the output rows sharded across up
// to `workers` goroutines. Because every row's noise stream is seeded
// independently (see ApplySeeded), the result is bit-identical to
// ApplySeeded(x, seed) for any worker count. workers <= 1 runs serially.
func (pm *ProgrammedMatrix) ApplyParallel(x []float64, workers int, seed int64) ([]float64, error) {
	if workers > pm.rows {
		workers = pm.rows
	}
	if workers <= 1 {
		return pm.ApplySeeded(x, seed)
	}
	xq := GetScratch(pm.cols)
	defer PutScratch(xq)
	if err := pm.quantizeInto(*xq, x); err != nil {
		return nil, err
	}
	y := make([]float64, pm.rows)
	var wg sync.WaitGroup
	chunk := (pm.rows + workers - 1) / workers
	for lo := 0; lo < pm.rows; lo += chunk {
		hi := lo + chunk
		if hi > pm.rows {
			hi = pm.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pm.applySeededRange(*xq, y, lo, hi, seed)
		}(lo, hi)
	}
	wg.Wait()
	pm.abftVerify(*xq, y, seed, nil)
	return y, nil
}

// ShardRange runs fn over [0, n) split into up to `workers` contiguous
// chunks on separate goroutines, returning one of the chunk errors (if
// any). fn must only touch disjoint state per index — the pattern every
// seeded batch path (ApplyBatchSeeded, the kernel layer's per-window
// loops) uses, where index i owns its own output slot and noise stream.
// workers <= 1 runs inline.
func ShardRange(n, workers int, fn func(lo, hi int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := fn(lo, hi); err != nil {
				mu.Lock()
				if ferr == nil {
					ferr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return ferr
}

// ApplyBatchSeededInto streams a batch of activation vectors through the
// programmed matrix into caller-owned destinations: dst[i] (len == Rows)
// receives vector i's result, computed exactly as ApplyBatchSeeded would
// — vector i draws its noise via DeriveSeed(seed, i), so the output is
// bit-identical for any worker count. The steady-state path allocates
// nothing beyond goroutine bookkeeping when workers > 1.
func (pm *ProgrammedMatrix) ApplyBatchSeededInto(dst, xs [][]float64, workers int, seed int64) error {
	if len(xs) == 0 {
		return fmt.Errorf("oc: empty activation batch")
	}
	if len(dst) != len(xs) {
		return fmt.Errorf("oc: destination batch length %d, want %d", len(dst), len(xs))
	}
	if workers <= 1 || len(xs) == 1 {
		// Serial fast path: no shard closure, so the steady state stays
		// allocation-free.
		return pm.applyBatchRange(dst, xs, 0, len(xs), seed)
	}
	return ShardRange(len(xs), workers, func(lo, hi int) error {
		return pm.applyBatchRange(dst, xs, lo, hi, seed)
	})
}

// applyBatchRange runs vectors [lo, hi) of a batch into their
// destinations — the per-shard body of ApplyBatchSeededInto.
func (pm *ProgrammedMatrix) applyBatchRange(dst, xs [][]float64, lo, hi int, seed int64) error {
	for i := lo; i < hi; i++ {
		if err := pm.ApplySeededInto(dst[i], xs[i], DeriveSeed(seed, i)); err != nil {
			return fmt.Errorf("oc: batch vector %d: %w", i, err)
		}
	}
	return nil
}

// ApplyBatchSeeded streams a batch of activation vectors through the
// programmed matrix, sharding the vectors across up to `workers`
// goroutines — the batch-level analogue of ApplyParallel's row sharding,
// without reprogramming the matrix on every call. Vector i draws its
// noise via ApplySeeded with DeriveSeed(seed, i), so the result is
// bit-identical for any worker count and any interleaving: the same
// reproducibility contract as MatVecBatch. The compressed-domain kernel
// layer (internal/kernels) runs its pooling/convolution windows through
// this path. Allocation-sensitive callers should use
// ApplyBatchSeededInto.
func (pm *ProgrammedMatrix) ApplyBatchSeeded(xs [][]float64, workers int, seed int64) ([][]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("oc: empty activation batch")
	}
	ys := make([][]float64, len(xs))
	flat := make([]float64, len(xs)*pm.rows)
	for i := range ys {
		ys[i] = flat[i*pm.rows : (i+1)*pm.rows : (i+1)*pm.rows]
	}
	if err := pm.ApplyBatchSeededInto(ys, xs, workers, seed); err != nil {
		return nil, err
	}
	return ys, nil
}

// HeaterPower returns the total MR tuning power to hold this matrix, in
// watts.
func (pm *ProgrammedMatrix) HeaterPower() float64 {
	total := 0.0
	for r := 0; r < pm.rows; r++ {
		base := r * pm.cols
		for s := 0; s+1 < len(pm.armBounds); s++ {
			total += pm.core.bank.HeaterPower(pm.levels[base+pm.armBounds[s] : base+pm.armBounds[s+1]])
		}
	}
	return total
}

// MeanHeaterPowerPerMR exposes the average per-MR tuning power of the
// core's bank model for the energy model.
func (c *Core) MeanHeaterPowerPerMR() float64 {
	return c.bank.MeanHeaterPowerPerRing()
}

// AnalogWeightsInto writes the fidelity-true effective weight matrix for
// a float weight matrix w (row-major, rows x cols, any scale) into out
// (same layout): exactly the noiseless transfer the served optical path
// realises per coefficient, including the full-scale normalisation split
// (w is scaled so its largest magnitude sits at ±1, programmed on the
// bank level grid, and the factor restored), the per-fidelity crosstalk
// of the 9-ring arm segments, and the rank-1 per-row defect calibration
// κ_r the calibrated apply paths restore digitally.
//
// This is the forward operator for crosstalk-in-the-loop QAT: training a
// network against out instead of the plain quantization grid (package
// nn's analog fake-quantization routes Dense/Conv2D through it with a
// straight-through estimator) makes the learned weights absorb the
// residual analog error that survives calibration. In Ideal fidelity out
// is the plain symmetric weight grid. All-zero weights produce all
// zeros.
func (c *Core) AnalogWeightsInto(out, w []float64, rows, cols int) error {
	if rows < 1 || cols < 1 || rows*cols != len(w) {
		return fmt.Errorf("oc: analog weights shape %dx%d does not match %d values", rows, cols, len(w))
	}
	if len(out) != len(w) {
		return fmt.Errorf("oc: analog weights destination length %d, want %d", len(out), len(w))
	}
	sw := 0.0
	for _, v := range w {
		if v > sw {
			sw = v
		} else if -v > sw {
			sw = -v
		}
	}
	if sw == 0 {
		for i := range out {
			out[i] = 0
		}
		return nil
	}
	segLevels := make([]int, 0, mapping.MRsPerArm)
	for r := 0; r < rows; r++ {
		base := r * cols
		for lo := 0; lo < cols; lo += mapping.MRsPerArm {
			hi := lo + mapping.MRsPerArm
			if hi > cols {
				hi = cols
			}
			segLevels = segLevels[:0]
			for _, v := range w[base+lo : base+hi] {
				segLevels = append(segLevels, c.bank.WeightToLevel(v/sw))
			}
			var (
				cf  []float64
				err error
			)
			if c.Fidelity == Ideal {
				cf, err = c.bank.IdealCoefficients(segLevels)
			} else {
				cf, err = c.bank.Coefficients(segLevels)
			}
			if err != nil {
				return err
			}
			copy(out[base+lo:base+hi], cf)
		}
		// Per-row defect calibration, exactly as Program derives it.
		defect := 0.0
		for i := base; i < base+cols; i++ {
			defect += c.bank.LevelToWeight(c.bank.WeightToLevel(w[i]/sw)) - out[i]
		}
		defect /= float64(cols)
		for i := base; i < base+cols; i++ {
			out[i] = (out[i] + defect) * sw
		}
	}
	return nil
}

// MatVec is the one-shot convenience: program w, apply x once.
func (c *Core) MatVec(w [][]float64, x []float64) ([]float64, error) {
	pm, err := c.Program(w)
	if err != nil {
		return nil, err
	}
	return pm.Apply(x)
}

// MatVecBatch programs w once and streams a batch of activation vectors
// through it, sharding the rows of the weight matrix across up to
// `workers` goroutines per vector (the MR banks are programmed once; the
// row shards model independent arms reading out in parallel). Frame i's
// noise is seeded with DeriveSeed(seed, i), so the batch result is
// bit-identical for any worker count and reproducible across runs.
func (c *Core) MatVecBatch(w [][]float64, xs [][]float64, workers int, seed int64) ([][]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("oc: empty activation batch")
	}
	pm, err := c.Program(w)
	if err != nil {
		return nil, err
	}
	// Runtime-driven matrices share the "mvm" health component: fault
	// plans target them as one population, and their ABFT counters
	// aggregate under that label.
	pm.SetLabel("mvm")
	ys := make([][]float64, len(xs))
	for i, x := range xs {
		y, err := pm.ApplyParallel(x, workers, DeriveSeed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("oc: batch frame %d: %w", i, err)
		}
		ys[i] = y
	}
	return ys, nil
}
