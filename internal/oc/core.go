// Package oc implements Lightator's Optical Core (paper §3, Fig. 3): the
// All-in-One Convolver built from MR weight banks — 96 banks of 6 arms of
// 9 MRs — plus the Compressive Acquisitor banks that fuse RGB-to-grayscale
// conversion and average pooling into a single optical pass (Eq. 1).
//
// The core's job is matrix-vector multiplication: weights are quantized
// and mapped onto MR detunings (one arm per 9-tap segment), activations
// arrive as WDM light intensities from the DMVA, each arm's balanced
// photodetector produces one signed partial MAC, and the summation tree
// combines partial sums for kernels larger than one arm.
package oc

import (
	"fmt"
	"math"

	"lightator/internal/mapping"
	"lightator/internal/photonics"
)

// Fidelity selects how faithfully the optical analog path is simulated.
type Fidelity int

const (
	// Ideal computes exact quantized arithmetic: weights and activations
	// are quantized but the MVM itself is error-free. This isolates
	// quantization effects from analog effects.
	Ideal Fidelity = iota
	// Physical adds WDM inter-channel crosstalk derived from the MR
	// Lorentzian tails (photonics.BankModel).
	Physical
	// PhysicalNoisy additionally injects balanced-photodetector shot and
	// thermal noise into every arm readout.
	PhysicalNoisy
)

// String implements fmt.Stringer.
func (f Fidelity) String() string {
	switch f {
	case Ideal:
		return "ideal"
	case Physical:
		return "physical"
	case PhysicalNoisy:
		return "physical+noise"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// Core is a configured optical core: a weight precision, an activation
// precision, and a simulation fidelity. It is safe to create one Core per
// layer precision and reuse it across layers.
type Core struct {
	// WBits is the weight precision mapped onto MR detunings (paper
	// configurations: 4, 3 or 2).
	WBits int
	// ABits is the activation precision of the DMVA drive (paper: 4).
	ABits int
	// Fidelity of the analog simulation.
	Fidelity Fidelity

	bank  *photonics.BankModel
	noise *photonics.NoiseSource
	// noiseSigma is the output-referred RMS noise of one arm readout in
	// normalised MAC units, derived from the BPD device models.
	noiseSigma float64
}

// NewCore builds a core for the given [W:A] precision configuration.
func NewCore(wBits, aBits int, fid Fidelity) (*Core, error) {
	if aBits < 1 || aBits > 8 {
		return nil, fmt.Errorf("oc: activation bits %d outside [1,8]", aBits)
	}
	bm, err := photonics.NewBankModel(mapping.MRsPerArm, wBits)
	if err != nil {
		return nil, err
	}
	c := &Core{
		WBits:    wBits,
		ABits:    aBits,
		Fidelity: fid,
		bank:     bm,
		noise:    photonics.NewNoiseSource(0x11647a70),
	}
	c.noiseSigma = deriveArmNoiseSigma()
	return c, nil
}

// deriveArmNoiseSigma computes the BPD noise floor of one arm readout,
// referred to normalised MAC units where one channel at full activation
// and weight +1 contributes 1.0. Full scale is therefore 9 channels times
// the per-channel photocurrent.
func deriveArmNoiseSigma() float64 {
	v := photonics.DefaultVCSEL(photonics.CBandCenter)
	bpd := photonics.DefaultBalancedDetector()
	// Per-channel optical power at the detector: VCSEL max output minus
	// ~3 dB of link insertion loss.
	perChannel := v.MaxOpticalPower() * photonics.DB2Linear(-3)
	fullScale := bpd.Plus.Current(perChannel) - bpd.Plus.DarkCurrent
	if fullScale <= 0 {
		return 0
	}
	// Worst-case rails: all channels on one rail.
	sigmaAmps := bpd.NoisySigma(perChannel*float64(mapping.MRsPerArm), 0)
	return sigmaAmps / fullScale
}

// ArmNoiseSigma exposes the derived per-arm noise in normalised MAC units
// (ablation benches report it).
func (c *Core) ArmNoiseSigma() float64 { return c.noiseSigma }

// QuantizeActivation maps x in [0,1] to its ABits code's value. Values are
// clipped, matching the saturating CRC/driver chain.
func (c *Core) QuantizeActivation(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	n := float64((uint(1) << uint(c.ABits)) - 1)
	return math.Round(x*n) / n
}

// segment is one arm's worth of a weight row: up to 9 quantized levels
// plus the effective transfer coefficients for the configured fidelity.
type segment struct {
	start  int
	levels []int
	coeffs []float64
}

// ProgrammedMatrix is a weight matrix mapped onto the optical core: each
// row is split into 9-tap segments, each segment programmed onto one arm.
// Programming is the expensive step (MR tuning); Apply streams activation
// vectors through at modulation rate.
type ProgrammedMatrix struct {
	core *Core
	rows int
	cols int
	segs [][]segment
}

// Program quantizes and maps a weight matrix with entries in [-1, 1].
// Rows are output neurons / filters; columns are inputs.
func (c *Core) Program(w [][]float64) (*ProgrammedMatrix, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("oc: empty weight matrix")
	}
	cols := len(w[0])
	pm := &ProgrammedMatrix{core: c, rows: len(w), cols: cols, segs: make([][]segment, len(w))}
	for r, row := range w {
		if len(row) != cols {
			return nil, fmt.Errorf("oc: ragged weight matrix at row %d", r)
		}
		for start := 0; start < cols; start += mapping.MRsPerArm {
			end := start + mapping.MRsPerArm
			if end > cols {
				end = cols
			}
			seg := segment{start: start, levels: make([]int, end-start)}
			for i, v := range row[start:end] {
				if v < -1 || v > 1 {
					return nil, fmt.Errorf("oc: weight %g at (%d,%d) outside [-1,1]", v, r, start+i)
				}
				seg.levels[i] = c.bank.WeightToLevel(v)
			}
			var err error
			if c.Fidelity == Ideal {
				seg.coeffs, err = c.bank.IdealCoefficients(seg.levels)
			} else {
				seg.coeffs, err = c.bank.Coefficients(seg.levels)
			}
			if err != nil {
				return nil, err
			}
			seg.coeffs = seg.coeffs[:len(seg.levels)]
			pm.segs[r] = append(pm.segs[r], seg)
		}
	}
	return pm, nil
}

// Rows returns the number of output rows.
func (pm *ProgrammedMatrix) Rows() int { return pm.rows }

// Cols returns the input width.
func (pm *ProgrammedMatrix) Cols() int { return pm.cols }

// ArmCount returns the number of arms the matrix occupies — the unit the
// scheduler tiles over.
func (pm *ProgrammedMatrix) ArmCount() int {
	n := 0
	for _, row := range pm.segs {
		n += len(row)
	}
	return n
}

// Apply computes y = W*x through the optical path. Activations are
// clipped to [0,1] and quantized to the core's ABits. The result is in
// normalised units: exact quantized W*x in Ideal fidelity, perturbed by
// crosstalk and optionally noise otherwise.
func (pm *ProgrammedMatrix) Apply(x []float64) ([]float64, error) {
	if len(x) != pm.cols {
		return nil, fmt.Errorf("oc: input length %d, want %d", len(x), pm.cols)
	}
	c := pm.core
	xq := make([]float64, len(x))
	for i, v := range x {
		xq[i] = c.QuantizeActivation(v)
	}
	y := make([]float64, pm.rows)
	for r, row := range pm.segs {
		sum := 0.0
		for _, s := range row {
			partial := 0.0
			for i, cf := range s.coeffs {
				partial += cf * xq[s.start+i]
			}
			if c.Fidelity == PhysicalNoisy {
				partial += c.noise.Gaussian(0, c.noiseSigma)
			}
			sum += partial
		}
		y[r] = sum
	}
	return y, nil
}

// HeaterPower returns the total MR tuning power to hold this matrix, in
// watts.
func (pm *ProgrammedMatrix) HeaterPower() float64 {
	total := 0.0
	for _, row := range pm.segs {
		for _, s := range row {
			total += pm.core.bank.HeaterPower(s.levels)
		}
	}
	return total
}

// MeanHeaterPowerPerMR exposes the average per-MR tuning power of the
// core's bank model for the energy model.
func (c *Core) MeanHeaterPowerPerMR() float64 {
	return c.bank.MeanHeaterPowerPerRing()
}

// MatVec is the one-shot convenience: program w, apply x once.
func (c *Core) MatVec(w [][]float64, x []float64) ([]float64, error) {
	pm, err := c.Program(w)
	if err != nil {
		return nil, err
	}
	return pm.Apply(x)
}
