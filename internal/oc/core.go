// Package oc implements Lightator's Optical Core (paper §3, Fig. 3): the
// All-in-One Convolver built from MR weight banks — 96 banks of 6 arms of
// 9 MRs — plus the Compressive Acquisitor banks that fuse RGB-to-grayscale
// conversion and average pooling into a single optical pass (Eq. 1).
//
// The core's job is matrix-vector multiplication: weights are quantized
// and mapped onto MR detunings (one arm per 9-tap segment), activations
// arrive as WDM light intensities from the DMVA, each arm's balanced
// photodetector produces one signed partial MAC, and the summation tree
// combines partial sums for kernels larger than one arm.
package oc

import (
	"fmt"
	"math"
	"sync"

	"lightator/internal/mapping"
	"lightator/internal/photonics"
)

// Fidelity selects how faithfully the optical analog path is simulated.
type Fidelity int

const (
	// Ideal computes exact quantized arithmetic: weights and activations
	// are quantized but the MVM itself is error-free. This isolates
	// quantization effects from analog effects.
	Ideal Fidelity = iota
	// Physical adds WDM inter-channel crosstalk derived from the MR
	// Lorentzian tails (photonics.BankModel).
	Physical
	// PhysicalNoisy additionally injects balanced-photodetector shot and
	// thermal noise into every arm readout.
	PhysicalNoisy
)

// String implements fmt.Stringer.
func (f Fidelity) String() string {
	switch f {
	case Ideal:
		return "ideal"
	case Physical:
		return "physical"
	case PhysicalNoisy:
		return "physical+noise"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// Core is a configured optical core: a weight precision, an activation
// precision, and a simulation fidelity. It is safe to create one Core per
// layer precision and reuse it across layers.
type Core struct {
	// WBits is the weight precision mapped onto MR detunings (paper
	// configurations: 4, 3 or 2).
	WBits int
	// ABits is the activation precision of the DMVA drive (paper: 4).
	ABits int
	// Fidelity of the analog simulation.
	Fidelity Fidelity

	bank  *photonics.BankModel
	noise *photonics.NoiseSource
	// noiseSigma is the output-referred RMS noise of one arm readout in
	// normalised MAC units, derived from the BPD device models.
	noiseSigma float64
}

// NewCore builds a core for the given [W:A] precision configuration.
func NewCore(wBits, aBits int, fid Fidelity) (*Core, error) {
	if aBits < 1 || aBits > 8 {
		return nil, fmt.Errorf("oc: activation bits %d outside [1,8]", aBits)
	}
	bm, err := photonics.NewBankModel(mapping.MRsPerArm, wBits)
	if err != nil {
		return nil, err
	}
	c := &Core{
		WBits:    wBits,
		ABits:    aBits,
		Fidelity: fid,
		bank:     bm,
		noise:    photonics.NewNoiseSource(0x11647a70),
	}
	c.noiseSigma = deriveArmNoiseSigma()
	return c, nil
}

// deriveArmNoiseSigma computes the BPD noise floor of one arm readout,
// referred to normalised MAC units where one channel at full activation
// and weight +1 contributes 1.0. Full scale is therefore 9 channels times
// the per-channel photocurrent.
func deriveArmNoiseSigma() float64 {
	v := photonics.DefaultVCSEL(photonics.CBandCenter)
	bpd := photonics.DefaultBalancedDetector()
	// Per-channel optical power at the detector: VCSEL max output minus
	// ~3 dB of link insertion loss.
	perChannel := v.MaxOpticalPower() * photonics.DB2Linear(-3)
	fullScale := bpd.Plus.Current(perChannel) - bpd.Plus.DarkCurrent
	if fullScale <= 0 {
		return 0
	}
	// Worst-case rails: all channels on one rail.
	sigmaAmps := bpd.NoisySigma(perChannel*float64(mapping.MRsPerArm), 0)
	return sigmaAmps / fullScale
}

// ArmNoiseSigma exposes the derived per-arm noise in normalised MAC units
// (ablation benches report it).
func (c *Core) ArmNoiseSigma() float64 { return c.noiseSigma }

// SnapWeight maps a normalised weight in [-1,1] onto the signed bank
// level grid — the exact coefficient the tuned MR realises in Ideal
// fidelity (LevelToWeight of WeightToLevel). Digital reference paths
// (internal/infer) use it so the weight grid has a single owner.
func (c *Core) SnapWeight(v float64) float64 {
	return c.bank.LevelToWeight(c.bank.WeightToLevel(v))
}

// QuantizeActivation maps x in [0,1] to its ABits code's value. Values are
// clipped, matching the saturating CRC/driver chain.
func (c *Core) QuantizeActivation(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	n := float64((uint(1) << uint(c.ABits)) - 1)
	return math.Round(x*n) / n
}

// segment is one arm's worth of a weight row: up to 9 quantized levels
// plus the effective transfer coefficients for the configured fidelity.
type segment struct {
	start  int
	levels []int
	coeffs []float64
}

// ProgrammedMatrix is a weight matrix mapped onto the optical core: each
// row is split into 9-tap segments, each segment programmed onto one arm.
// Programming is the expensive step (MR tuning); Apply streams activation
// vectors through at modulation rate.
type ProgrammedMatrix struct {
	core *Core
	rows int
	cols int
	segs [][]segment
}

// Program quantizes and maps a weight matrix with entries in [-1, 1].
// Rows are output neurons / filters; columns are inputs.
func (c *Core) Program(w [][]float64) (*ProgrammedMatrix, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("oc: empty weight matrix")
	}
	cols := len(w[0])
	pm := &ProgrammedMatrix{core: c, rows: len(w), cols: cols, segs: make([][]segment, len(w))}
	for r, row := range w {
		if len(row) != cols {
			return nil, fmt.Errorf("oc: ragged weight matrix at row %d", r)
		}
		for start := 0; start < cols; start += mapping.MRsPerArm {
			end := start + mapping.MRsPerArm
			if end > cols {
				end = cols
			}
			seg := segment{start: start, levels: make([]int, end-start)}
			for i, v := range row[start:end] {
				if v < -1 || v > 1 {
					return nil, fmt.Errorf("oc: weight %g at (%d,%d) outside [-1,1]", v, r, start+i)
				}
				seg.levels[i] = c.bank.WeightToLevel(v)
			}
			var err error
			if c.Fidelity == Ideal {
				seg.coeffs, err = c.bank.IdealCoefficients(seg.levels)
			} else {
				seg.coeffs, err = c.bank.Coefficients(seg.levels)
			}
			if err != nil {
				return nil, err
			}
			seg.coeffs = seg.coeffs[:len(seg.levels)]
			pm.segs[r] = append(pm.segs[r], seg)
		}
	}
	return pm, nil
}

// Rows returns the number of output rows.
func (pm *ProgrammedMatrix) Rows() int { return pm.rows }

// Cols returns the input width.
func (pm *ProgrammedMatrix) Cols() int { return pm.cols }

// ArmCount returns the number of arms the matrix occupies — the unit the
// scheduler tiles over.
func (pm *ProgrammedMatrix) ArmCount() int {
	n := 0
	for _, row := range pm.segs {
		n += len(row)
	}
	return n
}

// quantize returns the ABits-quantized copy of an activation vector.
func (pm *ProgrammedMatrix) quantize(x []float64) ([]float64, error) {
	if len(x) != pm.cols {
		return nil, fmt.Errorf("oc: input length %d, want %d", len(x), pm.cols)
	}
	xq := make([]float64, len(x))
	for i, v := range x {
		xq[i] = pm.core.QuantizeActivation(v)
	}
	return xq, nil
}

// applyRow computes one output row from quantized activations. ns, when
// non-nil, supplies per-arm BPD noise; each arm draws exactly one sample
// in segment order, so a given noise source yields a reproducible row.
func (pm *ProgrammedMatrix) applyRow(xq []float64, r int, ns *photonics.NoiseSource) float64 {
	sum := 0.0
	for _, s := range pm.segs[r] {
		partial := 0.0
		for i, cf := range s.coeffs {
			partial += cf * xq[s.start+i]
		}
		if ns != nil {
			partial += ns.Gaussian(0, pm.core.noiseSigma)
		}
		sum += partial
	}
	return sum
}

// Apply computes y = W*x through the optical path. Activations are
// clipped to [0,1] and quantized to the core's ABits. The result is in
// normalised units: exact quantized W*x in Ideal fidelity, perturbed by
// crosstalk and optionally noise otherwise.
//
// In PhysicalNoisy fidelity Apply draws from the core's shared noise
// source, so it is neither safe for concurrent use nor reproducible
// across interleavings; concurrent callers should use ApplySeeded or
// ApplyParallel, which derive an independent stream per output row.
func (pm *ProgrammedMatrix) Apply(x []float64) ([]float64, error) {
	xq, err := pm.quantize(x)
	if err != nil {
		return nil, err
	}
	var ns *photonics.NoiseSource
	if pm.core.Fidelity == PhysicalNoisy {
		ns = pm.core.noise
	}
	y := make([]float64, pm.rows)
	for r := range pm.segs {
		y[r] = pm.applyRow(xq, r, ns)
	}
	return y, nil
}

// DeriveSeed maps a base seed and an index to a decorrelated child seed
// (SplitMix64 finalizer). The batched paths use it to give every frame —
// and every output row within a frame — its own deterministic noise
// stream, so results do not depend on goroutine scheduling.
func DeriveSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ApplySeeded computes y = W*x like Apply, but in PhysicalNoisy fidelity
// the noise of output row r is drawn from an independent stream seeded
// with DeriveSeed(seed, r). Two calls with the same inputs and seed are
// bit-identical, regardless of what ran in between — the reproducibility
// contract the batched pipeline is built on. Safe for concurrent use.
func (pm *ProgrammedMatrix) ApplySeeded(x []float64, seed int64) ([]float64, error) {
	xq, err := pm.quantize(x)
	if err != nil {
		return nil, err
	}
	y := make([]float64, pm.rows)
	pm.applySeededRange(xq, y, 0, pm.rows, seed)
	return y, nil
}

// applySeededRange fills y[lo:hi] with seeded rows.
func (pm *ProgrammedMatrix) applySeededRange(xq, y []float64, lo, hi int, seed int64) {
	noisy := pm.core.Fidelity == PhysicalNoisy
	for r := lo; r < hi; r++ {
		var ns *photonics.NoiseSource
		if noisy {
			ns = photonics.NewNoiseSource(DeriveSeed(seed, r))
		}
		y[r] = pm.applyRow(xq, r, ns)
	}
}

// ApplyParallel computes y = W*x with the output rows sharded across up
// to `workers` goroutines. Because every row's noise stream is seeded
// independently (see ApplySeeded), the result is bit-identical to
// ApplySeeded(x, seed) for any worker count. workers <= 1 runs serially.
func (pm *ProgrammedMatrix) ApplyParallel(x []float64, workers int, seed int64) ([]float64, error) {
	if workers > pm.rows {
		workers = pm.rows
	}
	if workers <= 1 {
		return pm.ApplySeeded(x, seed)
	}
	xq, err := pm.quantize(x)
	if err != nil {
		return nil, err
	}
	y := make([]float64, pm.rows)
	var wg sync.WaitGroup
	chunk := (pm.rows + workers - 1) / workers
	for lo := 0; lo < pm.rows; lo += chunk {
		hi := lo + chunk
		if hi > pm.rows {
			hi = pm.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pm.applySeededRange(xq, y, lo, hi, seed)
		}(lo, hi)
	}
	wg.Wait()
	return y, nil
}

// ShardRange runs fn over [0, n) split into up to `workers` contiguous
// chunks on separate goroutines, returning one of the chunk errors (if
// any). fn must only touch disjoint state per index — the pattern every
// seeded batch path (ApplyBatchSeeded, the kernel layer's per-window
// loops) uses, where index i owns its own output slot and noise stream.
// workers <= 1 runs inline.
func ShardRange(n, workers int, fn func(lo, hi int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := fn(lo, hi); err != nil {
				mu.Lock()
				if ferr == nil {
					ferr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return ferr
}

// ApplyBatchSeeded streams a batch of activation vectors through the
// programmed matrix, sharding the vectors across up to `workers`
// goroutines — the batch-level analogue of ApplyParallel's row sharding,
// without reprogramming the matrix on every call. Vector i draws its
// noise via ApplySeeded with DeriveSeed(seed, i), so the result is
// bit-identical for any worker count and any interleaving: the same
// reproducibility contract as MatVecBatch. The compressed-domain kernel
// layer (internal/kernels) runs its pooling/convolution windows through
// this path.
func (pm *ProgrammedMatrix) ApplyBatchSeeded(xs [][]float64, workers int, seed int64) ([][]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("oc: empty activation batch")
	}
	ys := make([][]float64, len(xs))
	err := ShardRange(len(xs), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			y, err := pm.ApplySeeded(xs[i], DeriveSeed(seed, i))
			if err != nil {
				return fmt.Errorf("oc: batch vector %d: %w", i, err)
			}
			ys[i] = y
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ys, nil
}

// HeaterPower returns the total MR tuning power to hold this matrix, in
// watts.
func (pm *ProgrammedMatrix) HeaterPower() float64 {
	total := 0.0
	for _, row := range pm.segs {
		for _, s := range row {
			total += pm.core.bank.HeaterPower(s.levels)
		}
	}
	return total
}

// MeanHeaterPowerPerMR exposes the average per-MR tuning power of the
// core's bank model for the energy model.
func (c *Core) MeanHeaterPowerPerMR() float64 {
	return c.bank.MeanHeaterPowerPerRing()
}

// MatVec is the one-shot convenience: program w, apply x once.
func (c *Core) MatVec(w [][]float64, x []float64) ([]float64, error) {
	pm, err := c.Program(w)
	if err != nil {
		return nil, err
	}
	return pm.Apply(x)
}

// MatVecBatch programs w once and streams a batch of activation vectors
// through it, sharding the rows of the weight matrix across up to
// `workers` goroutines per vector (the MR banks are programmed once; the
// row shards model independent arms reading out in parallel). Frame i's
// noise is seeded with DeriveSeed(seed, i), so the batch result is
// bit-identical for any worker count and reproducible across runs.
func (c *Core) MatVecBatch(w [][]float64, xs [][]float64, workers int, seed int64) ([][]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("oc: empty activation batch")
	}
	pm, err := c.Program(w)
	if err != nil {
		return nil, err
	}
	ys := make([][]float64, len(xs))
	for i, x := range xs {
		y, err := pm.ApplyParallel(x, workers, DeriveSeed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("oc: batch frame %d: %w", i, err)
		}
		ys[i] = y
	}
	return ys, nil
}
