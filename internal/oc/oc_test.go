package oc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lightator/internal/sensor"
)

func refMatVec(w [][]float64, x []float64) []float64 {
	y := make([]float64, len(w))
	for r, row := range w {
		for i, v := range row {
			y[r] += v * x[i]
		}
	}
	return y
}

func TestCoreValidation(t *testing.T) {
	if _, err := NewCore(0, 4, Ideal); err == nil {
		t.Error("0 weight bits accepted")
	}
	if _, err := NewCore(4, 0, Ideal); err == nil {
		t.Error("0 activation bits accepted")
	}
	c, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Program(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := c.Program([][]float64{{0.5}, {0.1, 0.2}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := c.Program([][]float64{{1.5}}); err == nil {
		t.Error("out-of-range weight accepted")
	}
	if pm, _ := c.Program([][]float64{{0.5, 0.5}}); pm != nil {
		if _, err := pm.Apply([]float64{1}); err == nil {
			t.Error("length-mismatched input accepted")
		}
	}
}

func TestQuantizeActivation(t *testing.T) {
	c, _ := NewCore(4, 4, Ideal)
	if got := c.QuantizeActivation(1); got != 1 {
		t.Errorf("q(1) = %g", got)
	}
	if got := c.QuantizeActivation(0); got != 0 {
		t.Errorf("q(0) = %g", got)
	}
	if got := c.QuantizeActivation(2); got != 1 {
		t.Errorf("q(2) = %g, want clip to 1", got)
	}
	if got := c.QuantizeActivation(-1); got != 0 {
		t.Errorf("q(-1) = %g, want clip to 0", got)
	}
	// Mid value lands on the 15-step grid.
	got := c.QuantizeActivation(0.5)
	if math.Abs(got-round15(0.5)) > 1e-12 {
		t.Errorf("q(0.5) = %g, want on-grid %g", got, round15(0.5))
	}
}

func round15(x float64) float64 { return math.Round(x*15) / 15 }

func TestIdealMatVecExactQuantizedArithmetic(t *testing.T) {
	c, _ := NewCore(4, 4, Ideal)
	w := [][]float64{
		{1, -1, 1.0 / 3, -1.0 / 3},
		{0.2, 0.4, -0.6, 0.8},
	}
	x := []float64{1, 0.5, 0.25, 0.75}
	got, err := c.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: quantize weights to 16 levels over [-1,1], activations to
	// 16 levels over [0,1], then exact arithmetic.
	qw := func(v float64) float64 { return -1 + 2*math.Round((v+1)/2*15)/15 }
	want := make([]float64, 2)
	for r := range w {
		for i := range x {
			want[r] += qw(w[r][i]) * round15(x[i])
		}
	}
	for r := range got {
		if math.Abs(got[r]-want[r]) > 1e-12 {
			t.Errorf("row %d: got %g, want %g", r, got[r], want[r])
		}
	}
}

func TestPhysicalTracksIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := make([][]float64, 8)
	for r := range w {
		w[r] = make([]float64, 27)
		for i := range w[r] {
			w[r][i] = rng.Float64()*2 - 1
		}
	}
	x := make([]float64, 27)
	for i := range x {
		x[i] = rng.Float64()
	}
	ci, _ := NewCore(4, 4, Ideal)
	cp, _ := NewCore(4, 4, Physical)
	yi, err := ci.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	yp, err := cp.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	for r := range yi {
		// 27 taps -> full scale ~27; crosstalk should stay within a few
		// percent of full scale.
		if math.Abs(yi[r]-yp[r]) > 0.08*27 {
			t.Errorf("row %d: ideal %g physical %g", r, yi[r], yp[r])
		}
	}
}

func TestNoisyFidelityPerturbsButTracks(t *testing.T) {
	w := [][]float64{{0.5, -0.5, 0.25, -0.25, 0.75, -0.75, 1, -1, 0.125}}
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	cn, _ := NewCore(4, 4, PhysicalNoisy)
	cp, _ := NewCore(4, 4, Physical)
	pn, err := cn.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := cp.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := pp.Apply(x)
	varied := false
	for k := 0; k < 32; k++ {
		y, err := pn.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(y[0]-base[0]) > 0.5 {
			t.Fatalf("noise sample %d too large: %g vs %g", k, y[0], base[0])
		}
		if y[0] != base[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("PhysicalNoisy produced identical outputs across 32 runs")
	}
	if cn.ArmNoiseSigma() <= 0 {
		t.Error("derived noise sigma not positive")
	}
	// BPD noise must be far below one 4-bit activation step (the paper's
	// design point would not close otherwise).
	if cn.ArmNoiseSigma() > 1.0/15 {
		t.Errorf("noise sigma %g exceeds one LSB %g", cn.ArmNoiseSigma(), 1.0/15)
	}
}

func TestProgrammedMatrixGeometry(t *testing.T) {
	c, _ := NewCore(4, 4, Ideal)
	w := make([][]float64, 3)
	for r := range w {
		w[r] = make([]float64, 25) // 5x5 kernel -> 3 arms per row
	}
	pm, err := c.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Rows() != 3 || pm.Cols() != 25 {
		t.Errorf("geometry %dx%d", pm.Rows(), pm.Cols())
	}
	if pm.ArmCount() != 9 {
		t.Errorf("arm count %d, want 9 (3 rows x 3 arms)", pm.ArmCount())
	}
}

func TestHeaterPowerScalesWithSize(t *testing.T) {
	c, _ := NewCore(4, 4, Physical)
	small, _ := c.Program([][]float64{{0.5, -0.5, 0.25}})
	big, _ := c.Program([][]float64{
		{0.5, -0.5, 0.25, 0.1, 0.2, 0.3, -0.1, -0.2, -0.3},
		{0.5, -0.5, 0.25, 0.1, 0.2, 0.3, -0.1, -0.2, -0.3},
	})
	if small.HeaterPower() <= 0 {
		t.Error("no heater power on programmed matrix")
	}
	if big.HeaterPower() <= small.HeaterPower() {
		t.Error("heater power should grow with programmed MR count")
	}
	if c.MeanHeaterPowerPerMR() <= 0 {
		t.Error("mean heater power per MR not positive")
	}
}

// Property: for random well-formed inputs, the Ideal core's error vs exact
// float arithmetic is bounded by the quantization budget.
func TestIdealQuantizationErrorBound(t *testing.T) {
	c, _ := NewCore(4, 4, Ideal)
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		cols := 9
		w := [][]float64{make([]float64, cols)}
		x := make([]float64, cols)
		for i := 0; i < cols; i++ {
			w[0][i] = rng.Float64()*2 - 1
			x[i] = rng.Float64()
		}
		got, err := c.MatVec(w, x)
		if err != nil {
			return false
		}
		want := refMatVec(w, x)[0]
		// Worst-case per-tap error: half a weight step (1/15) times act
		// <= 1, plus half an activation step (1/30) times |w| <= 1.
		bound := 9 * (1.0/15 + 1.0/30)
		return math.Abs(got[0]-want) <= bound
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCAWeightsRGBEquation1(t *testing.T) {
	w, err := CAWeightsRGB(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 12 {
		t.Fatalf("len %d, want 12 (Eq. 1 has 12 terms for 2x2 RGB)", len(w))
	}
	// Eq. 1 coefficients: 0.25*0.299, 0.25*0.587, 0.25*0.114 repeated.
	for i := 0; i < 12; i += 3 {
		if math.Abs(w[i]-0.25*0.299) > 1e-15 ||
			math.Abs(w[i+1]-0.25*0.587) > 1e-15 ||
			math.Abs(w[i+2]-0.25*0.114) > 1e-15 {
			t.Fatalf("triplet at %d: %v", i, w[i:i+3])
		}
	}
	// Weighted sum of an all-ones window is exactly the luma sum = 1.
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum %g, want 1", sum)
	}
}

func TestCAWeightsBayer(t *testing.T) {
	w, err := CAWeightsBayer(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 4 {
		t.Fatalf("len %d, want 4", len(w))
	}
	// RGGB quad: R, G, G, B with G split across its two sites.
	want := []float64{0.299, 0.587 / 2, 0.587 / 2, 0.114}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-15 {
			t.Errorf("site %d weight %g, want %g", i, w[i], want[i])
		}
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum %g, want 1", sum)
	}
	if _, err := CAWeightsBayer(3); err == nil {
		t.Error("odd Bayer pool size accepted")
	}
	if _, err := CAWeightsRGB(0); err == nil {
		t.Error("pool 0 accepted")
	}
}

func TestAcquisitorCompressUniformScene(t *testing.T) {
	arr, _ := sensor.NewArray(8, 8)
	scene := sensor.NewImage(8, 8, 3)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			scene.Set(y, x, 0, 0.8)
			scene.Set(y, x, 1, 0.6)
			scene.Set(y, x, 2, 0.4)
		}
	}
	frame, err := arr.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := NewCore(4, 4, Ideal)
	ca, err := NewAcquisitor(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ca.Compress(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 4 || out.W != 4 || out.C != 1 {
		t.Fatalf("compressed dims %dx%dx%d, want 4x4x1", out.H, out.W, out.C)
	}
	// Expected gray: 0.299*0.8 + 0.587*0.6 + 0.114*0.4 = 0.6370, but each
	// site is first quantized by the 4-bit CRC, so allow ~2 LSB.
	want := 0.299*0.8 + 0.587*0.6 + 0.114*0.4
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if math.Abs(out.At(y, x, 0)-want) > 2.0/15 {
				t.Errorf("(%d,%d): %g, want about %g", y, x, out.At(y, x, 0), want)
			}
		}
	}
}

func TestAcquisitorMatchesReference(t *testing.T) {
	arr, _ := sensor.NewArray(16, 16)
	scene := sensor.NewImage(16, 16, 3)
	rng := rand.New(rand.NewSource(5))
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			for ch := 0; ch < 3; ch++ {
				scene.Set(y, x, ch, rng.Float64())
			}
		}
	}
	frame, _ := arr.Capture(scene)
	core, _ := NewCore(4, 4, Physical)
	ca, err := NewAcquisitor(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ca.Compress(frame)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ca.Reference(frame)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < got.H; y++ {
		for x := 0; x < got.W; x++ {
			// The photonic pass differs from exact float math by weight
			// quantization (4-bit) + crosstalk: stay within ~2 LSB.
			if math.Abs(got.At(y, x, 0)-ref.At(y, x, 0)) > 2.0/15 {
				t.Errorf("(%d,%d): photonic %g vs reference %g", y, x, got.At(y, x, 0), ref.At(y, x, 0))
			}
		}
	}
}

func TestAcquisitorPool4(t *testing.T) {
	arr, _ := sensor.NewArray(16, 16)
	scene := sensor.NewImage(16, 16, 3)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			for ch := 0; ch < 3; ch++ {
				scene.Set(y, x, ch, 1.0)
			}
		}
	}
	frame, _ := arr.Capture(scene)
	core, _ := NewCore(4, 4, Ideal)
	ca, err := NewAcquisitor(core, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ca.Compress(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 4 || out.W != 4 {
		t.Fatalf("4x pool output %dx%d, want 4x4", out.H, out.W)
	}
	// Full-white scene compresses to full-scale gray.
	if math.Abs(out.At(0, 0, 0)-1) > 2.0/15 {
		t.Errorf("white scene gray %g, want about 1", out.At(0, 0, 0))
	}
}

func TestAcquisitorRejectsIndivisibleFrame(t *testing.T) {
	core, _ := NewCore(4, 4, Ideal)
	ca, _ := NewAcquisitor(core, 4)
	arr, _ := sensor.NewArray(6, 6)
	frame := arr.ReadFrame()
	if _, err := ca.Compress(frame); err == nil {
		t.Error("6x6 frame with pool 4 accepted")
	}
	if _, err := ca.Reference(frame); err == nil {
		t.Error("6x6 frame with pool 4 accepted by Reference")
	}
}

func TestFidelityString(t *testing.T) {
	if Ideal.String() != "ideal" || Physical.String() != "physical" || PhysicalNoisy.String() != "physical+noise" {
		t.Error("Fidelity.String broken")
	}
}
