// Scratch arenas for the MVM hot path. Every seeded apply needs a
// quantized copy of its activation vector and, in PhysicalNoisy fidelity,
// one Gaussian stream per output row; allocating those per call made the
// simulator GC-shaped instead of memory-bandwidth-shaped (docs/PERF.md).
// The pools below let the steady-state *Into paths run allocation-free:
// float64 scratch comes from a shared sync.Pool, and noise sources are
// pooled and re-seeded in place (photonics.NoiseSource.Reseed), which
// yields the exact same sample stream as constructing a fresh source —
// the bit-identical determinism contract is pinned by the golden tests.
package oc

import (
	"sync"

	"lightator/internal/photonics"
)

// scratchPool holds *[]float64 (pointer, so Get/Put never allocate an
// interface box). Buffers grow monotonically and are reused across every
// caller of the package — kernels, infer and the pipeline all draw from
// the same arena.
var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// GetScratch returns a length-n float64 scratch slice from the shared
// pool. Contents are undefined; the caller must fully overwrite what it
// reads. Return the buffer with PutScratch when done. The extra
// indirection (a *[]float64 rather than a []float64) is what keeps the
// pool allocation-free: slice headers stored directly in an interface
// would be boxed on every Put.
func GetScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a scratch buffer to the shared pool. The slice must
// not be used after Put.
func PutScratch(p *[]float64) {
	if p == nil {
		return
	}
	scratchPool.Put(p)
}

// noisePool recycles per-row noise sources. A math/rand generator carries
// ~5 KiB of state; constructing one per output row per frame dominated
// the PhysicalNoisy allocation profile before pooling. Sources come out
// of the pool in an arbitrary state — callers must Reseed before every
// stream (applySeededRangeNS does, per row).
var noisePool = sync.Pool{New: func() any { return photonics.NewNoiseSource(0) }}

// getNoise returns a pooled noise source (arbitrary state; reseed before
// use).
func getNoise() *photonics.NoiseSource {
	return noisePool.Get().(*photonics.NoiseSource)
}

// putNoise returns a noise source to the pool.
func putNoise(ns *photonics.NoiseSource) {
	noisePool.Put(ns)
}
