package oc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"lightator/internal/sensor"
)

// poolTestMatrix programs a deterministic rows x cols matrix on a fresh core.
func poolTestMatrix(t testing.TB, rows, cols int, fid Fidelity) *ProgrammedMatrix {
	t.Helper()
	core, err := NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(rows*1000 + cols)))
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	pm, err := core.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func poolTestVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func TestShardRangeEdgeCases(t *testing.T) {
	// n == 0: fn still runs inline once over the empty range.
	calls := 0
	if err := ShardRange(0, 4, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 0 {
			t.Errorf("empty range sharded as [%d,%d)", lo, hi)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("empty range ran fn %d times, want 1", calls)
	}

	// workers > n: clamped to n, every index covered exactly once.
	var covered [3]int32
	if err := ShardRange(3, 64, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range covered {
		if c != 1 {
			t.Errorf("index %d covered %d times", i, c)
		}
	}

	// workers <= 0 runs inline over the whole range.
	calls = 0
	if err := ShardRange(5, -1, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 5 {
			t.Errorf("inline run sharded as [%d,%d)", lo, hi)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("workers=-1 ran fn %d times, want 1", calls)
	}
}

func TestShardRangeErrorPropagation(t *testing.T) {
	// A mid-shard failure must surface; the other shards still complete.
	boom := errors.New("shard 2 failed")
	var ran int32
	err := ShardRange(8, 4, func(lo, hi int) error {
		atomic.AddInt32(&ran, 1)
		if lo == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("mid-shard error lost: %v", err)
	}
	if ran != 4 {
		t.Fatalf("%d shards ran, want 4 (no early abort contract)", ran)
	}

	// Multiple failures: exactly one (some) error comes back.
	err = ShardRange(8, 4, func(lo, hi int) error {
		return fmt.Errorf("shard at %d", lo)
	})
	if err == nil {
		t.Fatal("every shard failed but no error returned")
	}

	// The inline path propagates too.
	if err := ShardRange(3, 1, func(lo, hi int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("inline error lost: %v", err)
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	p := GetScratch(17)
	if len(*p) != 17 {
		t.Fatalf("GetScratch(17) length %d", len(*p))
	}
	for i := range *p {
		(*p)[i] = float64(i)
	}
	PutScratch(p)
	PutScratch(nil) // must be a no-op
	q := GetScratch(40000)
	if len(*q) != 40000 {
		t.Fatalf("grown scratch length %d", len(*q))
	}
	PutScratch(q)
}

// TestApplySeededIntoMatchesApplySeeded pins the destination-passing
// variant against the allocating one in every fidelity — same values,
// same stream.
func TestApplySeededIntoMatchesApplySeeded(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, Physical, PhysicalNoisy} {
		pm := poolTestMatrix(t, 13, 23, fid)
		x := poolTestVector(23, 99)
		want, err := pm.ApplySeeded(x, 0x5eed)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, pm.Rows())
		if err := pm.ApplySeededInto(dst, x, 0x5eed); err != nil {
			t.Fatal(err)
		}
		ap := pm.NewApplier()
		apDst := make([]float64, pm.Rows())
		if err := ap.ApplySeededInto(apDst, x, 0x5eed); err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if dst[r] != want[r] {
				t.Fatalf("%v: ApplySeededInto row %d: %g != %g", fid, r, dst[r], want[r])
			}
			if apDst[r] != want[r] {
				t.Fatalf("%v: Applier row %d: %g != %g", fid, r, apDst[r], want[r])
			}
		}
	}
}

// TestApplyBatchSeededIntoMatches pins the batch Into variant against
// ApplyBatchSeeded for several worker counts.
func TestApplyBatchSeededIntoMatches(t *testing.T) {
	pm := poolTestMatrix(t, 7, 23, PhysicalNoisy)
	xs := [][]float64{poolTestVector(23, 1), poolTestVector(23, 2), poolTestVector(23, 3), poolTestVector(23, 4), poolTestVector(23, 5)}
	want, err := pm.ApplyBatchSeeded(xs, 1, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		dst := make([][]float64, len(xs))
		for i := range dst {
			dst[i] = make([]float64, pm.Rows())
		}
		if err := pm.ApplyBatchSeededInto(dst, xs, workers, 0xabc); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for r := range want[i] {
				if dst[i][r] != want[i][r] {
					t.Fatalf("workers=%d vector %d row %d: %g != %g", workers, i, r, dst[i][r], want[i][r])
				}
			}
		}
	}
}

func TestApplyIntoErrors(t *testing.T) {
	pm := poolTestMatrix(t, 4, 10, Ideal)
	x := poolTestVector(10, 7)
	if err := pm.ApplySeededInto(make([]float64, 3), x, 1); err == nil {
		t.Error("short destination accepted")
	}
	if err := pm.ApplySeededInto(make([]float64, 4), poolTestVector(9, 7), 1); err == nil {
		t.Error("short input accepted")
	}
	if err := pm.NewApplier().ApplySeededInto(make([]float64, 5), x, 1); err == nil {
		t.Error("applier: long destination accepted")
	}
	if err := pm.ApplyBatchSeededInto(nil, nil, 2, 1); err == nil {
		t.Error("empty batch accepted")
	}
	if err := pm.ApplyBatchSeededInto(make([][]float64, 1), [][]float64{x, x}, 2, 1); err == nil {
		t.Error("mismatched destination batch accepted")
	}
	dst := [][]float64{make([]float64, 4), make([]float64, 2)}
	if err := pm.ApplyBatchSeededInto(dst, [][]float64{x, x}, 2, 1); err == nil {
		t.Error("short destination row accepted")
	}
}

// TestConcurrentSeededCallersSharedMatrix hammers one ProgrammedMatrix
// from many goroutines mixing the pooled paths (ApplySeededInto, Applier,
// batch) and checks every result against the serial answer — the -race
// contract of the shared scratch arena and pooled noise sources.
func TestConcurrentSeededCallersSharedMatrix(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, PhysicalNoisy} {
		pm := poolTestMatrix(t, 9, 23, fid)
		xs := make([][]float64, 8)
		want := make([][]float64, len(xs))
		for i := range xs {
			xs[i] = poolTestVector(23, int64(100+i))
			y, err := pm.ApplySeeded(xs[i], DeriveSeed(0x7777, i))
			if err != nil {
				t.Fatal(err)
			}
			want[i] = y
		}
		var wg sync.WaitGroup
		errc := make(chan error, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ap := pm.NewApplier()
				dst := make([]float64, pm.Rows())
				for iter := 0; iter < 25; iter++ {
					i := (g + iter) % len(xs)
					var err error
					if iter%2 == 0 {
						err = pm.ApplySeededInto(dst, xs[i], DeriveSeed(0x7777, i))
					} else {
						err = ap.ApplySeededInto(dst, xs[i], DeriveSeed(0x7777, i))
					}
					if err != nil {
						errc <- err
						return
					}
					for r := range dst {
						if dst[r] != want[i][r] {
							errc <- fmt.Errorf("%v: goroutine %d vector %d row %d diverged", fid, g, i, r)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	}
}

// TestQuantizeNaNPropagates pins the grid-table quantization's NaN
// handling: NaN inputs must propagate to the output, as the direct
// Round(x·n)/n expression did — never index the grid table (a served
// plane containing NaN bytes must not be able to panic the process).
func TestQuantizeNaNPropagates(t *testing.T) {
	pm := poolTestMatrix(t, 3, 10, Ideal)
	nan := math.NaN()
	if got := pm.core.QuantizeActivation(nan); !math.IsNaN(got) {
		t.Errorf("QuantizeActivation(NaN) = %g, want NaN", got)
	}
	x := poolTestVector(10, 7)
	x[4] = nan
	y := make([]float64, pm.Rows())
	if err := pm.ApplySeededInto(y, x, 1); err != nil {
		t.Fatal(err)
	}
	for _, v := range y {
		if !math.IsNaN(v) {
			t.Errorf("NaN input did not propagate to output row: %g", v)
		}
	}
}

// TestCompressSeededNonCRCGrid drives the quantizing branch of the
// specialised CompressSeeded walk (ABits != the CRC's 4 bits, so the
// identity-quantization shortcut must not fire) and pins it against the
// generic seeded apply composition.
func TestCompressSeededNonCRCGrid(t *testing.T) {
	for _, fid := range []Fidelity{Ideal, PhysicalNoisy} {
		core, err := NewCore(4, 3, fid) // 3-bit activations: 7-level grid != 15 comparators
		if err != nil {
			t.Fatal(err)
		}
		ca, err := NewAcquisitor(core, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(55))
		f := &sensor.Frame{Rows: 8, Cols: 8, Codes: make([]uint8, 64)}
		for i := range f.Codes {
			f.Codes[i] = uint8(rng.Intn(16))
		}
		got, err := ca.CompressSeeded(f, 0xfeed)
		if err != nil {
			t.Fatal(err)
		}
		// Reference composition: the documented per-window contract.
		window := make([]float64, 16)
		for oy := 0; oy < 2; oy++ {
			for ox := 0; ox < 2; ox++ {
				i := 0
				for dy := 0; dy < 4; dy++ {
					for dx := 0; dx < 4; dx++ {
						window[i] = f.Intensity(oy*4+dy, ox*4+dx)
						i++
					}
				}
				j := oy*2 + ox
				y, err := ca.pm.ApplySeeded(window, DeriveSeed(0xfeed, j))
				if err != nil {
					t.Fatal(err)
				}
				if got.Pix[j] != y[0] {
					t.Fatalf("%v: window %d: %g != %g", fid, j, got.Pix[j], y[0])
				}
			}
		}
	}
}
