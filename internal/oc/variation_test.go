package oc

import (
	"math"
	"testing"

	"lightator/internal/photonics"
)

// Failure injection: a weight bank with as-fabricated (untrimmed)
// resonance scatter must show visibly degraded MAC precision, while the
// post-trim residual model stays within a fraction of a weight step —
// this is why resonance locking/trimming is mandatory for MR accelerators
// (CrossLight and Robin devote design effort to exactly this).
func TestFabricationVariationDegradesMAC(t *testing.T) {
	weights := []float64{0.5, -0.25, 1, -1, 0, 0.75, -0.5, 0.125, -0.875}
	acts := []float64{1, 0.5, 0.25, 1, 0.75, 0.25, 0.5, 1, 0.25}

	measure := func(vm photonics.VariationModel, seed int64) float64 {
		wb := photonics.NewWeightBank(9)
		if err := wb.Program(weights); err != nil {
			t.Fatal(err)
		}
		ideal, err := wb.IdealOutput(acts)
		if err != nil {
			t.Fatal(err)
		}
		src := photonics.NewNoiseSource(seed)
		if err := wb.PerturbResonances(vm.Sample(9, src)); err != nil {
			t.Fatal(err)
		}
		got, err := wb.Output(acts)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(got - ideal)
	}

	var trimmed, untrimmed float64
	for seed := int64(0); seed < 8; seed++ {
		trimmed += measure(photonics.DefaultVariation(), seed)
		untrimmed += measure(photonics.UntrimmedVariation(), seed)
	}
	trimmed /= 8
	untrimmed /= 8
	if untrimmed < 3*trimmed {
		t.Errorf("untrimmed variation error %.4f not clearly above trimmed %.4f", untrimmed, trimmed)
	}
	// Trimmed residual stays below one 4-bit weight step on a 9-tap MAC.
	if trimmed > 9.0/15 {
		t.Errorf("trimmed variation error %.4f exceeds the quantization budget", trimmed)
	}
}

// Failure injection: feeding activations outside the DMVA's range must
// clip (saturating driver), never amplify.
func TestActivationClipping(t *testing.T) {
	core, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := core.Program([][]float64{{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	inRange, err := pm.Apply([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	over, err := pm.Apply([]float64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if over[0] != inRange[0] {
		t.Errorf("over-range activations not clipped: %g vs %g", over[0], inRange[0])
	}
	under, err := pm.Apply([]float64{-5, -5, -5})
	if err != nil {
		t.Fatal(err)
	}
	if under[0] != 0 {
		t.Errorf("negative activations should clip to zero light: %g", under[0])
	}
}

// Weight levels must be symmetric around zero for even level counts'
// midpoint pair, and the bank model must reproduce the exact quantized
// grid in Ideal fidelity.
func TestIdealGridExactness(t *testing.T) {
	core, err := NewCore(4, 4, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	w := make([][]float64, 1)
	w[0] = make([]float64, n)
	for l := 0; l < n; l++ {
		w[0][l] = -1 + 2*float64(l)/float64(n-1)
	}
	pm, err := core.Program(w)
	if err != nil {
		t.Fatal(err)
	}
	// One-hot activations extract each programmed weight.
	for l := 0; l < n; l++ {
		x := make([]float64, n)
		x[l] = 1
		y, err := pm.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		want := -1 + 2*float64(l)/float64(n-1)
		if math.Abs(y[0]-want) > 1e-12 {
			t.Errorf("level %d: got %g, want %g", l, y[0], want)
		}
	}
}
