package photonics

import "math"

// Physical constants and typical silicon-photonics material parameters used
// across the device models. Values follow standard references (Bogaerts et
// al., "Silicon microring resonators", Laser & Photonics Reviews 2012, the
// paper's reference [4]).
const (
	// SpeedOfLight in vacuum, m/s.
	SpeedOfLight = 299792458.0

	// ElementaryCharge, coulombs. Used by photodetector shot-noise and
	// responsivity models.
	ElementaryCharge = 1.602176634e-19

	// BoltzmannConstant, J/K. Used by the thermal (Johnson) noise model.
	BoltzmannConstant = 1.380649e-23

	// PlanckConstant, J*s.
	PlanckConstant = 6.62607015e-34

	// SiliconThermoOpticCoeff is dn/dT for crystalline silicon at 1550 nm,
	// 1/K. This sets how much heater power shifts an MR's resonance.
	SiliconThermoOpticCoeff = 1.86e-4

	// DefaultNeff is a typical effective index for a 450x220 nm silicon
	// strip waveguide at 1550 nm.
	DefaultNeff = 2.35

	// DefaultNGroup is the corresponding group index, which governs the
	// free spectral range.
	DefaultNGroup = 4.2

	// CBandCenter is the center wavelength of the telecom C band, meters.
	// Lightator's WDM channels are placed around it.
	CBandCenter = 1550e-9

	// RoomTemperature in kelvin, used as the thermal-noise reference.
	RoomTemperature = 300.0
)

// DB2Linear converts a power ratio expressed in dB to linear scale.
func DB2Linear(db float64) float64 {
	return math.Pow(10, db/10.0)
}

// Linear2DB converts a linear power ratio to dB.
func Linear2DB(lin float64) float64 {
	return 10.0 * math.Log10(lin)
}
