package photonics

import "math"

// Photodetector converts optical power into photocurrent. Lightator places
// one balanced photodetector (BPD) at the end of each MVM arm; the BPD's
// differential output realises signed multiply-accumulate results in the
// analog domain (incoherent WDM powers sum on the junction).
type Photodetector struct {
	// Responsivity in A/W. Germanium-on-silicon detectors at 1550 nm
	// typically reach 0.8-1.1 A/W.
	Responsivity float64
	// DarkCurrent in amperes, added to every conversion.
	DarkCurrent float64
	// Bandwidth in Hz; sets the noise integration bandwidth and bounds the
	// symbol rate the arm can sustain.
	Bandwidth float64
	// LoadResistance in ohms for the thermal-noise model (TIA input).
	LoadResistance float64
	// Temperature in kelvin for the thermal-noise model.
	Temperature float64
}

// DefaultPhotodetector returns a Ge-on-Si detector typical of silicon
// photonic PICs: 0.95 A/W, 10 nA dark current, 30 GHz bandwidth.
func DefaultPhotodetector() *Photodetector {
	return &Photodetector{
		Responsivity:   0.95,
		DarkCurrent:    10e-9,
		Bandwidth:      30e9,
		LoadResistance: 50,
		Temperature:    RoomTemperature,
	}
}

// Current returns the photocurrent for total incident optical power p
// watts (non-negative), including dark current.
func (d *Photodetector) Current(p float64) float64 {
	if p < 0 {
		p = 0
	}
	return d.Responsivity*p + d.DarkCurrent
}

// ShotNoiseSigma returns the RMS shot-noise current for photocurrent i:
// sqrt(2 q i B).
func (d *Photodetector) ShotNoiseSigma(i float64) float64 {
	if i < 0 {
		i = 0
	}
	return math.Sqrt(2 * ElementaryCharge * i * d.Bandwidth)
}

// ThermalNoiseSigma returns the RMS Johnson-noise current of the load:
// sqrt(4 k T B / R).
func (d *Photodetector) ThermalNoiseSigma() float64 {
	if d.LoadResistance <= 0 {
		return 0
	}
	return math.Sqrt(4 * BoltzmannConstant * d.Temperature * d.Bandwidth / d.LoadResistance)
}

// BalancedDetector is a pair of matched photodetectors wired back to back.
// The through-port rail of an arm illuminates the plus detector and the
// drop-port rail the minus detector, so the output current is proportional
// to sum_i P_i * (T_through,i - T_drop,i): a signed weighted sum.
type BalancedDetector struct {
	Plus  *Photodetector
	Minus *Photodetector
}

// DefaultBalancedDetector returns a matched BPD pair.
func DefaultBalancedDetector() *BalancedDetector {
	return &BalancedDetector{
		Plus:  DefaultPhotodetector(),
		Minus: DefaultPhotodetector(),
	}
}

// Output returns the differential photocurrent for the given through-rail
// and drop-rail optical powers. Dark currents cancel in the balanced pair
// when the detectors are matched.
func (b *BalancedDetector) Output(throughPower, dropPower float64) float64 {
	return b.Plus.Current(throughPower) - b.Minus.Current(dropPower)
}

// NoisySigma returns the RMS noise current of the balanced output for the
// given rail powers: the shot noise of both junctions and the thermal
// noise of the shared load add in quadrature.
func (b *BalancedDetector) NoisySigma(throughPower, dropPower float64) float64 {
	sp := b.Plus.ShotNoiseSigma(b.Plus.Current(throughPower))
	sm := b.Minus.ShotNoiseSigma(b.Minus.Current(dropPower))
	st := b.Plus.ThermalNoiseSigma()
	return math.Sqrt(sp*sp + sm*sm + st*st)
}
