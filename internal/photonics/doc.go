// Package photonics implements the device-level optical models that the
// Lightator architecture is built on: add-drop microring resonators (MRs)
// with thermo-optic tuning, directly modulated VCSELs, photodetectors and
// balanced photodetector pairs, and wavelength-division-multiplexed (WDM)
// weight-bank arms with physically derived inter-channel crosstalk.
//
// The models are analytic but physically grounded: ring transmission comes
// from the standard add-drop transfer function (round-trip phase,
// self-coupling coefficients, propagation loss), tuning from the silicon
// thermo-optic effect, and crosstalk from the Lorentzian tails of each
// ring's resonance overlapping neighbouring WDM channels. This mirrors the
// role of the fabricated-and-measured MR devices in the paper's
// device-to-architecture evaluation framework (Fig. 7): upper layers only
// consume the transmission-vs-detuning transfer function, the tuning power,
// and the detection model, all of which are reproduced here.
package photonics
