package photonics

import (
	"fmt"
	"math"
)

// LinkBudget models the optical power budget of one arm's light path:
// VCSEL output, coupling and propagation losses, the insertion loss of
// every traversed MR, and the split of the drop rail — ending at the
// balanced photodetector. Photonic accelerator papers (CrossLight, Robin)
// use exactly this accounting to size their laser power; here it closes
// the loop between the device models and the DMVA's drive levels: the
// budget decides how many activation bits survive the analog path.
type LinkBudget struct {
	// LaserPower is the per-channel optical launch power, watts.
	LaserPower float64
	// CouplingLossDB is the fiber/grating coupler loss at the input.
	CouplingLossDB float64
	// WaveguideLossDBPerCm is the on-chip propagation loss.
	WaveguideLossDBPerCm float64
	// PathLengthCm is the on-chip route length to the detector.
	PathLengthCm float64
	// MRInsertionLossDB is the off-resonance through loss per traversed
	// ring (parasitic tail absorption).
	MRInsertionLossDB float64
	// MRsTraversed counts rings the channel passes (9 per arm).
	MRsTraversed int
	// Detector receives what survives.
	Detector *Photodetector
}

// DefaultLinkBudget returns the budget of one Lightator arm fed by the
// default VCSEL at full drive: 2 dB coupler, 2 dB/cm waveguide over 0.5 cm,
// 0.05 dB per traversed MR, 9 MRs.
func DefaultLinkBudget() LinkBudget {
	v := DefaultVCSEL(CBandCenter)
	return LinkBudget{
		LaserPower:           v.MaxOpticalPower(),
		CouplingLossDB:       2.0,
		WaveguideLossDBPerCm: 2.0,
		PathLengthCm:         0.5,
		MRInsertionLossDB:    0.05,
		MRsTraversed:         9,
		Detector:             DefaultPhotodetector(),
	}
}

// TotalLossDB sums the path losses.
func (lb LinkBudget) TotalLossDB() float64 {
	return lb.CouplingLossDB +
		lb.WaveguideLossDBPerCm*lb.PathLengthCm +
		lb.MRInsertionLossDB*float64(lb.MRsTraversed)
}

// ReceivedPower returns the optical power reaching the detector, watts.
func (lb LinkBudget) ReceivedPower() float64 {
	return lb.LaserPower * DB2Linear(-lb.TotalLossDB())
}

// SNR returns the electrical signal-to-noise ratio at the detector for
// the received power (shot + thermal noise, linear ratio).
func (lb LinkBudget) SNR() float64 {
	if lb.Detector == nil {
		return 0
	}
	p := lb.ReceivedPower()
	signal := lb.Detector.Responsivity * p
	if signal <= 0 {
		return 0
	}
	shot := lb.Detector.ShotNoiseSigma(lb.Detector.Current(p))
	thermal := lb.Detector.ThermalNoiseSigma()
	noise := math.Sqrt(shot*shot + thermal*thermal)
	if noise == 0 {
		return math.Inf(1)
	}
	return signal / noise
}

// ResolvableBits returns how many activation bits the analog link can
// distinguish: the received full scale divided into 2^b levels must keep
// each level step above one noise sigma, i.e. 2^b <= SNR.
func (lb LinkBudget) ResolvableBits() int {
	snr := lb.SNR()
	if snr <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(snr)))
}

// MinLaserPowerForBits inverts the budget: the launch power needed for a
// b-bit activation resolution. Returns an error if the requirement cannot
// be met below maxPower watts (thermal-noise floor too high).
func (lb LinkBudget) MinLaserPowerForBits(bits int, maxPower float64) (float64, error) {
	if bits < 1 {
		return 0, fmt.Errorf("photonics: bits %d < 1", bits)
	}
	lo, hi := 0.0, maxPower
	probe := lb
	probe.LaserPower = hi
	if probe.ResolvableBits() < bits {
		return 0, fmt.Errorf("photonics: %d bits unreachable below %g W launch power", bits, maxPower)
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		probe.LaserPower = mid
		if probe.ResolvableBits() >= bits {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
