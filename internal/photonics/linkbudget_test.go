package photonics

import (
	"math"
	"testing"
)

func TestLinkBudgetLossAccounting(t *testing.T) {
	lb := DefaultLinkBudget()
	// 2 + 2*0.5 + 0.05*9 = 3.45 dB.
	if math.Abs(lb.TotalLossDB()-3.45) > 1e-12 {
		t.Fatalf("total loss %g dB, want 3.45", lb.TotalLossDB())
	}
	rx := lb.ReceivedPower()
	if rx >= lb.LaserPower {
		t.Fatal("received power not below launch power")
	}
	want := lb.LaserPower * math.Pow(10, -0.345)
	if math.Abs(rx-want) > 1e-12 {
		t.Fatalf("received %g, want %g", rx, want)
	}
}

func TestLinkBudgetSupportsFourBits(t *testing.T) {
	lb := DefaultLinkBudget()
	// The default VCSEL at full drive must comfortably resolve the 4-bit
	// activations Lightator's DMVA encodes — otherwise the paper's design
	// point would not close.
	if bits := lb.ResolvableBits(); bits < 4 {
		t.Fatalf("link resolves only %d bits, need >= 4", bits)
	}
	if snr := lb.SNR(); snr < 16 {
		t.Fatalf("SNR %g too low for 4-bit operation", snr)
	}
}

func TestLinkBudgetMonotonicity(t *testing.T) {
	lb := DefaultLinkBudget()
	base := lb.SNR()
	// More loss -> less SNR.
	lossy := lb
	lossy.CouplingLossDB += 10
	if lossy.SNR() >= base {
		t.Error("extra loss did not reduce SNR")
	}
	// More power -> more SNR.
	hot := lb
	hot.LaserPower *= 10
	if hot.SNR() <= base {
		t.Error("extra power did not raise SNR")
	}
	// Zero power -> zero SNR and bits.
	dark := lb
	dark.LaserPower = 0
	if dark.SNR() != 0 || dark.ResolvableBits() != 0 {
		t.Error("dark link should resolve nothing")
	}
}

func TestMinLaserPowerForBits(t *testing.T) {
	lb := DefaultLinkBudget()
	p4, err := lb.MinLaserPowerForBits(4, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	if p4 <= 0 || p4 > lb.LaserPower {
		t.Fatalf("4-bit minimum power %g not below the VCSEL max %g", p4, lb.LaserPower)
	}
	// More bits need more power.
	p6, err := lb.MinLaserPowerForBits(6, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	if p6 <= p4 {
		t.Errorf("6-bit power %g not above 4-bit power %g", p6, p4)
	}
	// Verify the returned power actually achieves the resolution.
	probe := lb
	probe.LaserPower = p4 * 1.01
	if probe.ResolvableBits() < 4 {
		t.Error("returned minimum power does not deliver 4 bits")
	}
	// Unreachable demands error out.
	if _, err := lb.MinLaserPowerForBits(30, 1e-3); err == nil {
		t.Error("30 bits at 1 mW accepted")
	}
	if _, err := lb.MinLaserPowerForBits(0, 1); err == nil {
		t.Error("0 bits accepted")
	}
}
