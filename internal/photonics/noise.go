package photonics

import "math/rand"

// NoiseSource produces deterministic Gaussian samples for the analog noise
// models (shot, thermal, RIN). A seeded source makes every simulation and
// test reproducible while still exercising the noisy code paths.
type NoiseSource struct {
	rng *rand.Rand
}

// NewNoiseSource returns a Gaussian noise source with the given seed.
func NewNoiseSource(seed int64) *NoiseSource {
	return &NoiseSource{rng: rand.New(rand.NewSource(seed))}
}

// Normal returns one standard-normal sample.
func (n *NoiseSource) Normal() float64 {
	return n.rng.NormFloat64()
}

// Gaussian returns a sample from N(mean, sigma^2).
func (n *NoiseSource) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*n.rng.NormFloat64()
}

// Uniform returns a sample from U[lo, hi).
func (n *NoiseSource) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*n.rng.Float64()
}
