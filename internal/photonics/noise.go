package photonics

import "math/rand"

// NoiseSource produces deterministic Gaussian samples for the analog noise
// models (shot, thermal, RIN). A seeded source makes every simulation and
// test reproducible while still exercising the noisy code paths.
type NoiseSource struct {
	src rand.Source
	rng *rand.Rand
}

// NewNoiseSource returns a Gaussian noise source with the given seed.
func NewNoiseSource(seed int64) *NoiseSource {
	src := rand.NewSource(seed)
	return &NoiseSource{src: src, rng: rand.New(src)}
}

// Reseed re-initializes the source in place to the exact state of
// NewNoiseSource(seed): the sample stream after Reseed(s) is bit-identical
// to that of a freshly constructed source with seed s (the generator state
// is fully determined by the seed, and the samplers carry no state of
// their own). Hot paths that need one independent stream per output row
// (oc.ApplySeeded) pool sources and reseed them instead of allocating a
// new generator (~5 KiB of math/rand state) per stream. Not safe
// concurrently with other methods on the same source.
func (n *NoiseSource) Reseed(seed int64) {
	n.src.Seed(seed)
}

// Normal returns one standard-normal sample.
func (n *NoiseSource) Normal() float64 {
	return n.rng.NormFloat64()
}

// Gaussian returns a sample from N(mean, sigma^2).
func (n *NoiseSource) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*n.rng.NormFloat64()
}

// Uniform returns a sample from U[lo, hi).
func (n *NoiseSource) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*n.rng.Float64()
}
