package photonics

import (
	"fmt"
	"math"
)

// Ring models an add-drop microring resonator (MR), the fundamental weight
// element of Lightator's optical core (paper Fig. 1). Light entering the
// input port couples into the ring in the coupling region; on resonance the
// power exits mostly at the drop port, off resonance mostly at the through
// port. A phase shifter (microheater) moves the resonant wavelength
// lambda_res = neff * L / m, which is how a weight value is "imprinted" on
// the transmitted signal.
//
// The transfer functions are the textbook add-drop expressions (Bogaerts
// 2012): with self-coupling coefficients t1 (input bus) and t2 (drop bus),
// single-pass amplitude transmission a, and round-trip phase phi,
//
//	T_through = (t2^2 a^2 - 2 t1 t2 a cos(phi) + t1^2) / D
//	T_drop    = ((1-t1^2)(1-t2^2) a) / D
//	D         = 1 - 2 t1 t2 a cos(phi) + (t1 t2 a)^2
type Ring struct {
	// Radius of the ring, meters.
	Radius float64
	// Neff is the effective refractive index of the ring waveguide.
	Neff float64
	// NGroup is the group index; it sets the free spectral range.
	NGroup float64
	// SelfCoupling1 (t1) is the through-amplitude coefficient of the input
	// bus coupler. Power coupling kappa^2 = 1 - t1^2.
	SelfCoupling1 float64
	// SelfCoupling2 (t2) is the through-amplitude coefficient of the drop
	// bus coupler.
	SelfCoupling2 float64
	// LossDBPerCm is the propagation loss of the ring waveguide in dB/cm.
	LossDBPerCm float64
	// MaxWeightDetune caps the detuning SolveWeight may apply, meters.
	// Weight banks must keep rings well inside their own WDM channel: a
	// ring detuned past half the channel spacing would sit on a
	// neighbouring channel and destroy it. Zero means no cap (FSR/2).
	MaxWeightDetune float64

	// shift is the current thermo-optic resonance shift in meters of
	// wavelength, applied by Tune.
	shift float64
}

// DefaultRing returns an MR with parameters representative of the
// fabricated devices used by the paper: 5 um radius, moderately
// over-coupled so the through-port extinction is deep enough to imprint
// 4-bit weights, and 2 dB/cm propagation loss.
func DefaultRing() *Ring {
	return &Ring{
		Radius:        5e-6,
		Neff:          DefaultNeff,
		NGroup:        DefaultNGroup,
		SelfCoupling1: 0.87,
		SelfCoupling2: 0.87,
		LossDBPerCm:   2.0,
	}
}

// RingAt returns a ring whose untuned resonance is aligned exactly to
// wavelength lam, by snapping the effective index so that neff*L/m = lam
// for the nearest resonance order m. This mirrors post-fabrication trimming
// of weight-bank rings to their WDM channel.
func RingAt(lam float64) *Ring {
	r := DefaultRing()
	r.AlignTo(lam)
	return r
}

// WeightBankRing returns a ring suited to dense WDM weight banks: 3 um
// radius so the FSR (~30 nm) clears the 9-channel x 2 nm arm span with
// margin, 0.99 self-coupling on both buses so the resonance is narrow
// (Q ~ 8000, FWHM ~ 0.2 nm), and the weight detuning capped at half the
// 2 nm channel spacing so a programmed ring never wanders onto a
// neighbouring channel. Together these keep inter-channel crosstalk at
// the few-percent level, comparable to a 4-bit weight step. Aligned to
// wavelength lam.
func WeightBankRing(lam float64) *Ring {
	r := DefaultRing()
	r.Radius = 3e-6
	r.SelfCoupling1 = 0.99
	r.SelfCoupling2 = 0.99
	r.MaxWeightDetune = 1e-9
	r.AlignTo(lam)
	return r
}

// AlignTo snaps the ring's effective index so an untuned resonance lands
// exactly at wavelength lam, and clears any tuning shift.
func (r *Ring) AlignTo(lam float64) {
	m := r.ResonantOrder(lam)
	if m < 1 {
		m = 1
	}
	r.Neff = float64(m) * lam / r.Circumference()
	r.shift = 0
}

// Circumference returns the ring's round-trip length L in meters.
func (r *Ring) Circumference() float64 {
	return 2 * math.Pi * r.Radius
}

// amplitudeTransmission returns the single-pass amplitude factor a,
// derived from the propagation loss: a = 10^(-alpha_dB * L / 20).
func (r *Ring) amplitudeTransmission() float64 {
	lossDB := r.LossDBPerCm * r.Circumference() * 100 // circumference in cm
	return math.Pow(10, -lossDB/20)
}

// ResonantOrder returns the resonance order m closest to wavelength lam:
// m = round(neff * L / lam).
func (r *Ring) ResonantOrder(lam float64) int {
	return int(math.Round(r.Neff * r.Circumference() / lam))
}

// ResonantWavelength returns lambda_res = neff*L/m for resonance order m,
// including the current tuning shift.
func (r *Ring) ResonantWavelength(m int) float64 {
	if m <= 0 {
		return math.NaN()
	}
	return r.Neff*r.Circumference()/float64(m) + r.shift
}

// NearestResonance returns the resonant wavelength closest to lam,
// including the current tuning shift.
func (r *Ring) NearestResonance(lam float64) float64 {
	m := r.ResonantOrder(lam - r.shift)
	return r.ResonantWavelength(m)
}

// FSR returns the free spectral range at wavelength lam in meters:
// FSR = lam^2 / (n_g * L).
func (r *Ring) FSR(lam float64) float64 {
	return lam * lam / (r.NGroup * r.Circumference())
}

// roundTripPhase returns the round-trip phase at wavelength lam, measured
// relative to the nearest (tuned) resonance so that phi = 2*pi*k exactly on
// resonance. Using the group index for the local dispersion slope keeps the
// FSR physical.
func (r *Ring) roundTripPhase(lam float64) float64 {
	res := r.NearestResonance(lam)
	// Detuning in wavelength converts to phase via the FSR: one FSR of
	// detuning is 2*pi of round-trip phase.
	return 2 * math.Pi * (lam - res) / r.FSR(lam)
}

// ThroughTransmission returns the power transmission from input to through
// port at wavelength lam, in [0,1].
func (r *Ring) ThroughTransmission(lam float64) float64 {
	t1, t2 := r.SelfCoupling1, r.SelfCoupling2
	a := r.amplitudeTransmission()
	phi := r.roundTripPhase(lam)
	cos := math.Cos(phi)
	den := 1 - 2*t1*t2*a*cos + (t1*t2*a)*(t1*t2*a)
	num := t2*t2*a*a - 2*t1*t2*a*cos + t1*t1
	return num / den
}

// DropTransmission returns the power transmission from input to drop port
// at wavelength lam, in [0,1].
func (r *Ring) DropTransmission(lam float64) float64 {
	t1, t2 := r.SelfCoupling1, r.SelfCoupling2
	a := r.amplitudeTransmission()
	phi := r.roundTripPhase(lam)
	cos := math.Cos(phi)
	den := 1 - 2*t1*t2*a*cos + (t1*t2*a)*(t1*t2*a)
	num := (1 - t1*t1) * (1 - t2*t2) * a
	return num / den
}

// FWHM returns the full width at half maximum of the drop-port resonance
// at wavelength lam, in meters: FWHM = (1 - t1 t2 a) * lam^2 /
// (pi * n_g * L * sqrt(t1 t2 a)).
func (r *Ring) FWHM(lam float64) float64 {
	t1, t2 := r.SelfCoupling1, r.SelfCoupling2
	a := r.amplitudeTransmission()
	x := t1 * t2 * a
	return (1 - x) * lam * lam / (math.Pi * r.NGroup * r.Circumference() * math.Sqrt(x))
}

// QFactor returns the loaded quality factor lam/FWHM.
func (r *Ring) QFactor(lam float64) float64 {
	return lam / r.FWHM(lam)
}

// Finesse returns FSR/FWHM.
func (r *Ring) Finesse(lam float64) float64 {
	return r.FSR(lam) / r.FWHM(lam)
}

// ExtinctionRatio returns the through-port extinction in dB: the ratio of
// far-off-resonance transmission to on-resonance transmission.
func (r *Ring) ExtinctionRatio(lam float64) float64 {
	res := r.NearestResonance(lam)
	onRes := r.ThroughTransmission(res)
	offRes := r.ThroughTransmission(res + r.FSR(lam)/2)
	if onRes <= 0 {
		return math.Inf(1)
	}
	return Linear2DB(offRes / onRes)
}

// Tune applies a thermo-optic resonance shift of dLambda meters. Positive
// shifts move the resonance to longer wavelengths (heating). Tuning is
// absolute: calling Tune twice replaces the shift rather than accumulating.
func (r *Ring) Tune(dLambda float64) {
	r.shift = dLambda
}

// Shift returns the currently applied resonance shift in meters.
func (r *Ring) Shift() float64 {
	return r.shift
}

// Detune reports the signed distance from wavelength lam to the nearest
// tuned resonance, in meters.
func (r *Ring) Detune(lam float64) float64 {
	return lam - r.NearestResonance(lam)
}

// ThermalTuner converts resonance shifts into heater power, modelling the
// microheater/PIN tuning mechanism referenced in the paper. The efficiency
// is expressed in nm of resonance shift per mW of heater power, a standard
// figure of merit for silicon MR heaters.
type ThermalTuner struct {
	// NmPerMW is the tuning efficiency (nm shift per mW heater power).
	// Typical silicon microheaters achieve 0.1-0.4 nm/mW.
	NmPerMW float64
	// SettleTime is the thermal time constant: how long the ring takes to
	// reach a newly programmed resonance, seconds. Thermal tuning is slow
	// (microseconds); this is what makes weight re-mapping the latency
	// bottleneck for large models (see internal/arch).
	SettleTime float64
	// MaxShiftNm bounds the achievable shift (heater power budget).
	MaxShiftNm float64
}

// DefaultThermalTuner returns tuning parameters representative of
// thermally isolated (undercut/trenched) silicon microheaters, the kind
// edge-targeted designs need for their power budget: 7.5 nm/mW efficiency
// and a 4 us thermal settle. With weight detunings capped at 1 nm, the
// mean hold power lands near 50 uW per MR — the TUN slice of the paper's
// power breakdowns.
func DefaultThermalTuner() ThermalTuner {
	return ThermalTuner{NmPerMW: 7.5, SettleTime: 4e-6, MaxShiftNm: 1.2}
}

// PowerForShift returns the heater power in watts needed to hold a
// resonance shift of dLambda meters.
func (t ThermalTuner) PowerForShift(dLambda float64) float64 {
	nm := math.Abs(dLambda) * 1e9
	if t.NmPerMW <= 0 {
		return 0
	}
	return nm / t.NmPerMW * 1e-3
}

// ShiftForPower returns the resonance shift in meters produced by heater
// power p watts.
func (t ThermalTuner) ShiftForPower(p float64) float64 {
	return p * 1e3 * t.NmPerMW * 1e-9
}

// ErrWeightRange is returned by SolveWeight when the requested weight is
// outside the range the ring can realise.
type ErrWeightRange struct {
	Want     float64
	Min, Max float64
}

func (e ErrWeightRange) Error() string {
	return fmt.Sprintf("photonics: weight %.4f outside realisable range [%.4f, %.4f]", e.Want, e.Min, e.Max)
}

// maxDetune returns the largest detuning SolveWeight may apply.
func (r *Ring) maxDetune(lam float64) float64 {
	hi := r.FSR(lam) / 2
	if r.MaxWeightDetune > 0 && r.MaxWeightDetune < hi {
		hi = r.MaxWeightDetune
	}
	return hi
}

// WeightRange returns the (min, max) differential weight the ring can
// imprint at wavelength lam using balanced detection, where the effective
// weight is d = T_through - T_drop. On resonance d is most negative; at
// the maximum allowed detuning it is most positive.
func (r *Ring) WeightRange(lam float64) (min, max float64) {
	saved := r.shift
	defer func() { r.shift = saved }()
	r.shift = 0
	res := r.NearestResonance(lam)
	min = r.ThroughTransmission(res) - r.DropTransmission(res)
	far := res + r.maxDetune(lam)
	max = r.ThroughTransmission(far) - r.DropTransmission(far)
	return min, max
}

// SolveWeight finds the detuning (resonance shift) that makes the ring
// imprint the differential weight w = T_through - T_drop at wavelength lam,
// and applies it with Tune. The weight is monotonically increasing in
// |detuning| over half an FSR, so a bisection search suffices. Returns the
// applied shift in meters.
func (r *Ring) SolveWeight(lam float64, w float64) (float64, error) {
	min, max := r.WeightRange(lam)
	if w < min || w > max {
		return 0, ErrWeightRange{Want: w, Min: min, Max: max}
	}
	// Bisection over shift in [0, maxDetune]. Shifting the resonance away
	// from lam increases d monotonically. The baseline shift "base" places
	// the resonance exactly at lam for s=0, so d(0) = min and
	// d(maxDetune) = max.
	base := lam - r.nearestResonanceUntuned(lam)
	lo, hi := 0.0, r.maxDetune(lam)
	eval := func(s float64) float64 {
		r.shift = base + s
		return r.ThroughTransmission(lam) - r.DropTransmission(lam)
	}
	for i := 0; i < 64; i++ {
		mid := 0.5 * (lo + hi)
		if eval(mid) < w {
			lo = mid
		} else {
			hi = mid
		}
	}
	shift := base + 0.5*(lo+hi)
	r.shift = shift
	return shift, nil
}

// nearestResonanceUntuned returns the closest resonance ignoring the
// current tuning shift.
func (r *Ring) nearestResonanceUntuned(lam float64) float64 {
	m := r.ResonantOrder(lam)
	return r.Neff * r.Circumference() / float64(m)
}

// Spectrum samples the through- and drop-port transmission over
// [lam0, lam1] with n points. Used to regenerate Fig. 1.
type SpectrumPoint struct {
	Wavelength float64
	Through    float64
	Drop       float64
}

// Spectrum returns n samples of the ring's transfer function across the
// given wavelength range.
func (r *Ring) Spectrum(lam0, lam1 float64, n int) []SpectrumPoint {
	if n < 2 {
		n = 2
	}
	out := make([]SpectrumPoint, n)
	for i := 0; i < n; i++ {
		lam := lam0 + (lam1-lam0)*float64(i)/float64(n-1)
		out[i] = SpectrumPoint{
			Wavelength: lam,
			Through:    r.ThroughTransmission(lam),
			Drop:       r.DropTransmission(lam),
		}
	}
	return out
}
