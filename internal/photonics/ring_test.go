package photonics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRingResonanceCondition(t *testing.T) {
	r := DefaultRing()
	lam := CBandCenter
	m := r.ResonantOrder(lam)
	res := r.ResonantWavelength(m)
	// lambda_res = neff*L/m must hold exactly.
	want := r.Neff * r.Circumference() / float64(m)
	if math.Abs(res-want) > 1e-18 {
		t.Fatalf("resonant wavelength %g != neff*L/m %g", res, want)
	}
	// And it must be within one FSR of the request.
	if math.Abs(res-lam) > r.FSR(lam) {
		t.Fatalf("nearest resonance %g more than one FSR from %g", res, lam)
	}
}

func TestRingAlignTo(t *testing.T) {
	r := RingAt(CBandCenter)
	res := r.NearestResonance(CBandCenter)
	if math.Abs(res-CBandCenter) > 1e-15 {
		t.Fatalf("aligned ring resonance %g, want %g", res, CBandCenter)
	}
}

func TestThroughDipAtResonance(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	onRes := r.ThroughTransmission(CBandCenter)
	off := r.ThroughTransmission(CBandCenter + r.FSR(CBandCenter)/2)
	if onRes >= off {
		t.Fatalf("through transmission should dip at resonance: on=%g off=%g", onRes, off)
	}
	if onRes > 0.01 {
		t.Errorf("on-resonance through transmission %g, want < 0.01 (deep extinction)", onRes)
	}
	if off < 0.95 {
		t.Errorf("off-resonance through transmission %g, want > 0.95", off)
	}
}

func TestDropPeakAtResonance(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	onRes := r.DropTransmission(CBandCenter)
	off := r.DropTransmission(CBandCenter + r.FSR(CBandCenter)/2)
	if onRes <= off {
		t.Fatalf("drop transmission should peak at resonance: on=%g off=%g", onRes, off)
	}
	if onRes < 0.9 {
		t.Errorf("on-resonance drop transmission %g, want > 0.9", onRes)
	}
}

// Property: passive device — through + drop never exceeds unity at any
// wavelength or tuning.
func TestEnergyConservationProperty(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	f := func(detuneFrac, shiftFrac float64) bool {
		fsr := r.FSR(CBandCenter)
		r.Tune(math.Mod(math.Abs(shiftFrac), 1) * fsr / 2)
		lam := CBandCenter + math.Mod(detuneFrac, 1)*fsr
		sum := r.ThroughTransmission(lam) + r.DropTransmission(lam)
		return sum <= 1.0+1e-9 && sum >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	r.Tune(0)
}

func TestFSRFormula(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	fsr := r.FSR(CBandCenter)
	// Locate two adjacent through-port minima numerically and compare.
	res1 := r.NearestResonance(CBandCenter)
	m := r.ResonantOrder(CBandCenter)
	res2 := r.ResonantWavelength(m - 1) // next order up in wavelength
	gap := res2 - res1
	if gap <= 0 {
		t.Fatalf("resonance order spacing not positive: %g", gap)
	}
	// The analytic FSR uses the group index; the order spacing uses neff.
	// They agree within the dispersion ratio neff/ng.
	ratio := gap / fsr
	want := r.NGroup / r.Neff
	if math.Abs(ratio/want-1) > 0.05 {
		t.Errorf("FSR ratio %g, want about %g", ratio, want)
	}
}

func TestQFactorAndFWHMConsistency(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	fwhm := r.FWHM(CBandCenter)
	q := r.QFactor(CBandCenter)
	if math.Abs(q-CBandCenter/fwhm) > 1e-6*q {
		t.Fatalf("Q %g inconsistent with lam/FWHM %g", q, CBandCenter/fwhm)
	}
	if q < 1000 || q > 50000 {
		t.Errorf("weight-bank ring Q = %g, want a realistic 1e3-5e4", q)
	}
	// Verify FWHM against the numerically measured half-max width of the
	// drop resonance.
	peak := r.DropTransmission(CBandCenter)
	half := peak / 2
	// scan outward for the half-max crossing
	var hwhm float64
	for d := 0.0; d < r.FSR(CBandCenter)/2; d += fwhm / 400 {
		if r.DropTransmission(CBandCenter+d) < half {
			hwhm = d
			break
		}
	}
	if hwhm == 0 {
		t.Fatal("no half-max crossing found")
	}
	measured := 2 * hwhm
	if math.Abs(measured/fwhm-1) > 0.1 {
		t.Errorf("measured FWHM %g vs analytic %g (>10%% off)", measured, fwhm)
	}
}

func TestExtinctionRatio(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	er := r.ExtinctionRatio(CBandCenter)
	if er < 20 {
		t.Errorf("extinction ratio %g dB, want > 20 dB for a weight-bank ring", er)
	}
}

func TestTuneShiftsResonance(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	shift := 0.5e-9
	r.Tune(shift)
	res := r.NearestResonance(CBandCenter)
	if math.Abs(res-(CBandCenter+shift)) > 1e-15 {
		t.Fatalf("tuned resonance %g, want %g", res, CBandCenter+shift)
	}
	// Tuning is absolute, not cumulative.
	r.Tune(shift)
	if math.Abs(r.Shift()-shift) > 1e-18 {
		t.Fatalf("shift accumulated: %g", r.Shift())
	}
}

func TestWeightRangeSigns(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	min, max := r.WeightRange(CBandCenter)
	if min >= 0 {
		t.Errorf("min weight %g, want negative (on-resonance drop dominates)", min)
	}
	if max <= 0.9 {
		t.Errorf("max weight %g, want > 0.9 (off-resonance through dominates)", max)
	}
}

func TestSolveWeightRoundTrip(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	min, max := r.WeightRange(CBandCenter)
	for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		want := min + (max-min)*frac
		if _, err := r.SolveWeight(CBandCenter, want); err != nil {
			t.Fatalf("SolveWeight(%g): %v", want, err)
		}
		got := r.ThroughTransmission(CBandCenter) - r.DropTransmission(CBandCenter)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("solved weight %g, want %g", got, want)
		}
	}
}

// Property: SolveWeight converges for any weight inside the realisable
// range, to tight tolerance.
func TestSolveWeightProperty(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	min, max := r.WeightRange(CBandCenter)
	f := func(u float64) bool {
		frac := math.Mod(math.Abs(u), 1)
		want := min + (max-min)*frac
		if _, err := r.SolveWeight(CBandCenter, want); err != nil {
			return false
		}
		got := r.ThroughTransmission(CBandCenter) - r.DropTransmission(CBandCenter)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWeightOutOfRange(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	if _, err := r.SolveWeight(CBandCenter, 1.5); err == nil {
		t.Fatal("expected range error for weight 1.5")
	}
	if _, err := r.SolveWeight(CBandCenter, -1.5); err == nil {
		t.Fatal("expected range error for weight -1.5")
	}
}

func TestThermalTunerReciprocity(t *testing.T) {
	tn := DefaultThermalTuner()
	for _, p := range []float64{0, 1e-6, 1e-4, 1e-3} {
		shift := tn.ShiftForPower(p)
		back := tn.PowerForShift(shift)
		if math.Abs(back-p) > 1e-12 {
			t.Errorf("power %g -> shift %g -> power %g", p, shift, back)
		}
	}
}

func TestSpectrumShape(t *testing.T) {
	r := WeightBankRing(CBandCenter)
	fsr := r.FSR(CBandCenter)
	pts := r.Spectrum(CBandCenter-fsr/4, CBandCenter+fsr/4, 401)
	if len(pts) != 401 {
		t.Fatalf("got %d points", len(pts))
	}
	// Find minimum through transmission; it must sit near center.
	minI := 0
	for i, p := range pts {
		if p.Through < pts[minI].Through {
			minI = i
		}
	}
	center := pts[minI].Wavelength
	if math.Abs(center-CBandCenter) > fsr/100 {
		t.Errorf("through dip at %g, want near %g", center, CBandCenter)
	}
}

func TestDB2LinearRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10} {
		lin := DB2Linear(db)
		if math.Abs(Linear2DB(lin)-db) > 1e-9 {
			t.Errorf("dB %g round-trips to %g", db, Linear2DB(lin))
		}
	}
}
