package photonics

// Fabrication-variation model. Silicon microrings are notoriously
// sensitive to nanometer-scale width/thickness deviations; uncorrected,
// each ring's resonance lands a fraction of a nanometer away from its
// design target. Lightator (like CrossLight and Robin, which devote whole
// sections to it) absorbs the systematic part of this with the same
// thermal tuners that imprint weights; the residual random part appears as
// weight error. This file provides the sampler used by the ablation
// benches and failure-injection tests.

// VariationModel describes the statistical distribution of uncorrected
// resonance offsets across a chip.
type VariationModel struct {
	// SigmaNm is the standard deviation of the per-ring resonance offset
	// in nanometers after trimming/locking (residual error).
	SigmaNm float64
	// CorrelationSpanNm adds a common-mode (die-level) offset shared by
	// all rings of a bank, also in nanometers standard deviation.
	CorrelationSpanNm float64
}

// DefaultVariation returns a post-trim residual model: 5 pm random
// per-ring error plus 2 pm common-mode drift — representative of an
// actively locked weight bank. The tight figure is necessary, not
// optimistic: with FWHM ~0.2 nm, a ring sitting on its resonance flank
// changes transmission by ~20% for a 50 pm offset, so locking loops must
// hold picometer-scale residuals for multi-bit weights to survive.
func DefaultVariation() VariationModel {
	return VariationModel{SigmaNm: 0.005, CorrelationSpanNm: 0.002}
}

// UntrimmedVariation returns a raw as-fabricated model (no trimming):
// ~0.6 nm per-ring scatter, used by failure-injection tests to show the
// accelerator degrades without resonance locking.
func UntrimmedVariation() VariationModel {
	return VariationModel{SigmaNm: 0.6, CorrelationSpanNm: 0.3}
}

// Sample draws per-ring resonance offsets (meters) for a bank of n rings.
func (v VariationModel) Sample(n int, src *NoiseSource) []float64 {
	common := src.Gaussian(0, v.CorrelationSpanNm*1e-9)
	out := make([]float64, n)
	for i := range out {
		out[i] = common + src.Gaussian(0, v.SigmaNm*1e-9)
	}
	return out
}
