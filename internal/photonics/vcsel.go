package photonics

import "math"

// VCSEL models a directly modulated vertical-cavity surface-emitting laser,
// the activation source of Lightator's DMVA. The optical output follows the
// standard L-I curve: zero below the threshold current, then linear with
// the slope efficiency. Activations are encoded by switching 16 parallel
// driving transistors (see internal/analog.Driver), so the drive current —
// and hence the optical power — takes one of 16 discrete levels (4-bit).
type VCSEL struct {
	// Wavelength of the emitted carrier, meters. Each VCSEL in the DMVA
	// owns one WDM channel.
	Wavelength float64
	// ThresholdCurrent in amperes. Typical 1550 nm VCSELs: 0.5-2 mA.
	ThresholdCurrent float64
	// SlopeEfficiency in W/A above threshold.
	SlopeEfficiency float64
	// MaxCurrent bounds the drive current (thermal rollover is modelled as
	// a hard clip rather than a soft curve).
	MaxCurrent float64
	// ForwardVoltage is the diode drop used for electrical power
	// accounting, volts.
	ForwardVoltage float64
}

// DefaultVCSEL returns a VCSEL with parameters typical of long-wavelength
// datacom devices: 0.8 mA threshold, 0.3 W/A slope, 8 mA max drive.
func DefaultVCSEL(wavelength float64) *VCSEL {
	return &VCSEL{
		Wavelength:       wavelength,
		ThresholdCurrent: 0.8e-3,
		SlopeEfficiency:  0.3,
		MaxCurrent:       8e-3,
		ForwardVoltage:   1.8,
	}
}

// OpticalPower returns the emitted optical power in watts for drive
// current i amperes.
func (v *VCSEL) OpticalPower(i float64) float64 {
	if i > v.MaxCurrent {
		i = v.MaxCurrent
	}
	if i <= v.ThresholdCurrent {
		return 0
	}
	return v.SlopeEfficiency * (i - v.ThresholdCurrent)
}

// ElectricalPower returns the wall power consumed at drive current i.
func (v *VCSEL) ElectricalPower(i float64) float64 {
	if i > v.MaxCurrent {
		i = v.MaxCurrent
	}
	if i < 0 {
		i = 0
	}
	return i * v.ForwardVoltage
}

// CurrentForPower inverts the L-I curve: the drive current needed to emit
// optical power p watts. Powers beyond the max-current point are clipped.
func (v *VCSEL) CurrentForPower(p float64) float64 {
	if p <= 0 {
		return v.ThresholdCurrent
	}
	i := v.ThresholdCurrent + p/v.SlopeEfficiency
	if i > v.MaxCurrent {
		i = v.MaxCurrent
	}
	return i
}

// MaxOpticalPower returns the optical power at the maximum drive current.
func (v *VCSEL) MaxOpticalPower() float64 {
	return v.OpticalPower(v.MaxCurrent)
}

// ModulationLevels returns the n discrete optical power levels produced by
// driving the VCSEL with k/(n-1) of the full modulation current swing,
// k = 0..n-1. For Lightator n = 16 (4-bit activations). Level 0 emits zero
// optical power (the driver holds the VCSEL at threshold).
func (v *VCSEL) ModulationLevels(n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	swing := v.MaxCurrent - v.ThresholdCurrent
	for k := 0; k < n; k++ {
		i := v.ThresholdCurrent + swing*float64(k)/float64(n-1)
		out[k] = v.OpticalPower(i)
	}
	return out
}

// LevelForCode returns the optical power for a b-bit activation code.
func (v *VCSEL) LevelForCode(code, bits int) float64 {
	n := 1 << uint(bits)
	if code < 0 {
		code = 0
	}
	if code > n-1 {
		code = n - 1
	}
	swing := v.MaxCurrent - v.ThresholdCurrent
	i := v.ThresholdCurrent + swing*float64(code)/float64(n-1)
	return v.OpticalPower(i)
}

// RelativeIntensityNoise applies a multiplicative RIN perturbation to an
// optical power, given a RIN level in dB/Hz, a detection bandwidth in Hz
// and a unit-normal random sample. Typical VCSEL RIN: -140 dB/Hz.
func RelativeIntensityNoise(power, rinDBHz, bandwidthHz, normal float64) float64 {
	if power <= 0 {
		return power
	}
	variance := math.Pow(10, rinDBHz/10) * bandwidthHz * power * power
	return power + math.Sqrt(variance)*normal
}
