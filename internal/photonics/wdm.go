package photonics

import (
	"fmt"
	"math"
)

// WDMGrid describes the wavelength-division-multiplexing channel plan of an
// MVM arm: N channels centred on Center with uniform spacing. Lightator
// arms carry 9 channels (one per MR / kernel weight).
type WDMGrid struct {
	// Center wavelength in meters.
	Center float64
	// Spacing between adjacent channels in meters.
	Spacing float64
	// N is the number of channels.
	N int
}

// DefaultGrid returns the 9-channel, 2 nm-spaced C-band grid used by
// Lightator's arms. 9 channels x 2 nm fits comfortably inside one FSR
// (~18 nm) of the 5 um weight-bank rings, so each ring interacts with
// exactly one intended channel plus Lorentzian-tail crosstalk.
func DefaultGrid(n int) WDMGrid {
	return WDMGrid{Center: CBandCenter, Spacing: 2e-9, N: n}
}

// Wavelengths returns the channel wavelengths, lowest first.
func (g WDMGrid) Wavelengths() []float64 {
	out := make([]float64, g.N)
	span := float64(g.N-1) * g.Spacing
	for i := 0; i < g.N; i++ {
		out[i] = g.Center - span/2 + float64(i)*g.Spacing
	}
	return out
}

// WeightBank is one MVM arm's set of rings: ring i is aligned to channel i
// and tuned to imprint weight w_i. The bank propagates a WDM power vector
// through the rings in series; through-rail survivors hit the BPD plus
// input and drop-rail accumulations hit the minus input.
//
// WeightBank is the exact (per-ring) model: it supports per-ring
// fabrication variation and arbitrary (unquantized) weights. The quantized
// fast path used by the architecture simulator is BankModel.
type WeightBank struct {
	Grid  WDMGrid
	Rings []*Ring
	Tuner ThermalTuner

	// weightScale is the |d| magnitude that weight 1.0 maps to; set by the
	// realisable range of the template ring so weights in [-1,1] are
	// always solvable.
	weightScale float64
	weights     []float64
}

// NewWeightBank builds an arm of n rings aligned to an n-channel grid.
// Fabrication variation can be injected afterwards via PerturbResonances.
func NewWeightBank(n int) *WeightBank {
	grid := DefaultGrid(n)
	lams := grid.Wavelengths()
	rings := make([]*Ring, n)
	for i := range rings {
		rings[i] = WeightBankRing(lams[i])
	}
	wb := &WeightBank{Grid: grid, Rings: rings, Tuner: DefaultThermalTuner(), weights: make([]float64, n)}
	min, max := rings[0].WeightRange(lams[0])
	wb.weightScale = math.Min(-min, max) * 0.999 // margin keeps the solver in range
	return wb
}

// Size returns the number of rings (= channels) in the bank.
func (wb *WeightBank) Size() int { return len(wb.Rings) }

// WeightScale returns the physical differential transmission magnitude
// that a logical weight of 1.0 maps to.
func (wb *WeightBank) WeightScale() float64 { return wb.weightScale }

// PerturbResonances applies per-ring resonance offsets (meters), modelling
// fabrication variation. Offsets add to whatever tuning Program applies,
// i.e. they model *uncorrected* variation.
func (wb *WeightBank) PerturbResonances(offsets []float64) error {
	if len(offsets) != len(wb.Rings) {
		return fmt.Errorf("photonics: %d offsets for %d rings", len(offsets), len(wb.Rings))
	}
	lams := wb.Grid.Wavelengths()
	for i, r := range wb.Rings {
		// Re-align then offset, preserving any programmed weight shift.
		shift := r.Shift()
		r.AlignTo(lams[i])
		r.Tune(shift + offsets[i])
	}
	return nil
}

// Program tunes each ring to imprint the corresponding logical weight in
// [-1, 1]. Returns an error if a weight is out of range.
func (wb *WeightBank) Program(weights []float64) error {
	if len(weights) != len(wb.Rings) {
		return fmt.Errorf("photonics: %d weights for %d rings", len(weights), len(wb.Rings))
	}
	lams := wb.Grid.Wavelengths()
	for i, w := range weights {
		if w < -1 || w > 1 {
			return fmt.Errorf("photonics: weight %g at index %d outside [-1,1]", w, i)
		}
		if _, err := wb.Rings[i].SolveWeight(lams[i], w*wb.weightScale); err != nil {
			return fmt.Errorf("photonics: ring %d: %w", i, err)
		}
		wb.weights[i] = w
	}
	return nil
}

// Weights returns the logical weights most recently programmed.
func (wb *WeightBank) Weights() []float64 {
	out := make([]float64, len(wb.weights))
	copy(out, wb.weights)
	return out
}

// TransferCoefficients propagates a unit power on each channel through the
// ring chain and returns the effective differential coefficient per
// channel: c_j = T_through_total(lambda_j) - sum_k dropped_k(lambda_j),
// normalised by the weight scale so that c_j == w_j in the absence of
// crosstalk and loss. Inter-channel crosstalk emerges from each ring's
// Lorentzian tails touching neighbouring channels.
func (wb *WeightBank) TransferCoefficients() []float64 {
	lams := wb.Grid.Wavelengths()
	out := make([]float64, len(lams))
	for j, lam := range lams {
		through := 1.0
		dropped := 0.0
		for _, ring := range wb.Rings {
			d := ring.DropTransmission(lam)
			t := ring.ThroughTransmission(lam)
			dropped += through * d
			through *= t
		}
		out[j] = (through - dropped) / wb.weightScale
	}
	return out
}

// Output computes the arm's normalised MAC result for the given channel
// powers (activations in [0,1]): sum_j c_j * p_j. The BPD differential
// current is this value scaled by responsivity and laser power, which the
// TIA gain normalises away.
func (wb *WeightBank) Output(powers []float64) (float64, error) {
	if len(powers) != len(wb.Rings) {
		return 0, fmt.Errorf("photonics: %d powers for %d rings", len(powers), len(wb.Rings))
	}
	coeffs := wb.TransferCoefficients()
	sum := 0.0
	for j, p := range powers {
		sum += coeffs[j] * p
	}
	return sum, nil
}

// IdealOutput returns the crosstalk-free reference sum_j w_j * p_j.
func (wb *WeightBank) IdealOutput(powers []float64) (float64, error) {
	if len(powers) != len(wb.weights) {
		return 0, fmt.Errorf("photonics: %d powers for %d weights", len(powers), len(wb.weights))
	}
	sum := 0.0
	for j, p := range powers {
		sum += wb.weights[j] * p
	}
	return sum, nil
}

// HeaterPower returns the total tuning power in watts currently needed to
// hold the programmed weights.
func (wb *WeightBank) HeaterPower() float64 {
	total := 0.0
	for _, r := range wb.Rings {
		total += wb.Tuner.PowerForShift(r.Shift())
	}
	return total
}

// BankModel is the quantized fast path for whole-network simulation. All
// rings share the template geometry and channels are uniformly spaced, so
// the through/drop transmissions seen by channel j from ring k depend only
// on (j-k) and ring k's quantized weight level. BankModel precomputes that
// table once per precision, making per-segment crosstalk coefficients a
// handful of lookups instead of transcendental evaluations.
type BankModel struct {
	Grid WDMGrid
	Bits int

	n           int
	levels      int
	weightScale float64
	shifts      []float64 // per level, meters
	// through[l][o], drop[l][o]: transmissions of a ring programmed to
	// level l, seen by a channel offset o-(n-1) channels away.
	through [][]float64
	drop    [][]float64
	tuner   ThermalTuner
}

// NewBankModel builds the quantized transfer tables for an n-ring arm with
// b-bit signed weights. Level l in [0, 2^b-1] maps to the logical weight
// w = -1 + 2l/(2^b-1).
func NewBankModel(n, bits int) (*BankModel, error) {
	if n < 1 {
		return nil, fmt.Errorf("photonics: bank size %d < 1", n)
	}
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("photonics: weight bits %d outside [1,8]", bits)
	}
	grid := DefaultGrid(n)
	lams := grid.Wavelengths()
	center := lams[n/2]
	template := WeightBankRing(center)
	min, max := template.WeightRange(center)
	scale := math.Min(-min, max) * 0.999

	levels := 1 << uint(bits)
	bm := &BankModel{
		Grid:        grid,
		Bits:        bits,
		n:           n,
		levels:      levels,
		weightScale: scale,
		shifts:      make([]float64, levels),
		through:     make([][]float64, levels),
		drop:        make([][]float64, levels),
		tuner:       DefaultThermalTuner(),
	}
	for l := 0; l < levels; l++ {
		w := bm.LevelToWeight(l)
		shift, err := template.SolveWeight(center, w*scale)
		if err != nil {
			return nil, fmt.Errorf("photonics: level %d: %w", l, err)
		}
		bm.shifts[l] = shift
		bm.through[l] = make([]float64, 2*n-1)
		bm.drop[l] = make([]float64, 2*n-1)
		for o := -(n - 1); o <= n-1; o++ {
			lam := center + float64(o)*grid.Spacing
			bm.through[l][o+n-1] = template.ThroughTransmission(lam)
			bm.drop[l][o+n-1] = template.DropTransmission(lam)
		}
	}
	return bm, nil
}

// Size returns the arm width (number of rings / channels).
func (bm *BankModel) Size() int { return bm.n }

// Levels returns the number of quantized weight levels (2^bits).
func (bm *BankModel) Levels() int { return bm.levels }

// LevelToWeight maps a quantized level to its logical weight in [-1, 1].
func (bm *BankModel) LevelToWeight(l int) float64 {
	return -1 + 2*float64(l)/float64(bm.levels-1)
}

// WeightToLevel maps a logical weight in [-1, 1] to the nearest level.
func (bm *BankModel) WeightToLevel(w float64) int {
	if w < -1 {
		w = -1
	}
	if w > 1 {
		w = 1
	}
	l := int(math.Round((w + 1) / 2 * float64(bm.levels-1)))
	if l < 0 {
		l = 0
	}
	if l > bm.levels-1 {
		l = bm.levels - 1
	}
	return l
}

// Coefficients returns the effective per-channel differential coefficients
// (crosstalk included, normalised by the weight scale) for an arm whose
// rings are programmed to the given levels. len(levels) may be shorter
// than the arm; remaining rings are parked far off resonance (treated as
// transparent), modelling the unused/gray MRs of Fig. 6.
func (bm *BankModel) Coefficients(levels []int) ([]float64, error) {
	if len(levels) > bm.n {
		return nil, fmt.Errorf("photonics: %d levels for %d rings", len(levels), bm.n)
	}
	out := make([]float64, bm.n)
	for j := 0; j < bm.n; j++ {
		through := 1.0
		dropped := 0.0
		for k := 0; k < len(levels); k++ {
			l := levels[k]
			if l < 0 || l >= bm.levels {
				return nil, fmt.Errorf("photonics: level %d outside [0,%d]", l, bm.levels-1)
			}
			o := j - k + bm.n - 1
			dropped += through * bm.drop[l][o]
			through *= bm.through[l][o]
		}
		out[j] = (through - dropped) / bm.weightScale
	}
	return out, nil
}

// IdealCoefficients returns the crosstalk-free coefficients: the exact
// quantized logical weights.
func (bm *BankModel) IdealCoefficients(levels []int) ([]float64, error) {
	if len(levels) > bm.n {
		return nil, fmt.Errorf("photonics: %d levels for %d rings", len(levels), bm.n)
	}
	out := make([]float64, bm.n)
	for k, l := range levels {
		if l < 0 || l >= bm.levels {
			return nil, fmt.Errorf("photonics: level %d outside [0,%d]", l, bm.levels-1)
		}
		out[k] = bm.LevelToWeight(l)
	}
	return out, nil
}

// HeaterPower returns the tuning power needed to hold the given levels.
func (bm *BankModel) HeaterPower(levels []int) float64 {
	total := 0.0
	for _, l := range levels {
		if l >= 0 && l < bm.levels {
			total += bm.tuner.PowerForShift(bm.shifts[l])
		}
	}
	return total
}

// MeanHeaterPowerPerRing returns the tuning power averaged over all weight
// levels — the expected per-MR tuning cost for uniformly distributed
// weights, used by the energy model.
func (bm *BankModel) MeanHeaterPowerPerRing() float64 {
	total := 0.0
	for l := 0; l < bm.levels; l++ {
		total += bm.tuner.PowerForShift(bm.shifts[l])
	}
	return total / float64(bm.levels)
}
