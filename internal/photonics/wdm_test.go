package photonics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridWavelengths(t *testing.T) {
	g := DefaultGrid(9)
	lams := g.Wavelengths()
	if len(lams) != 9 {
		t.Fatalf("got %d wavelengths", len(lams))
	}
	for i := 1; i < len(lams); i++ {
		if math.Abs((lams[i]-lams[i-1])-g.Spacing) > 1e-18 {
			t.Fatalf("non-uniform spacing at %d", i)
		}
	}
	mid := (lams[0] + lams[8]) / 2
	if math.Abs(mid-g.Center) > 1e-15 {
		t.Fatalf("grid not centred: %g vs %g", mid, g.Center)
	}
}

func TestGridSpanWithinFSR(t *testing.T) {
	g := DefaultGrid(9)
	r := WeightBankRing(g.Center)
	span := float64(g.N-1) * g.Spacing
	if span >= r.FSR(g.Center) {
		t.Fatalf("WDM span %g exceeds ring FSR %g: periodic aliasing", span, r.FSR(g.Center))
	}
}

func TestWeightBankProgramAndOutput(t *testing.T) {
	wb := NewWeightBank(9)
	weights := []float64{0.5, -0.25, 1, -1, 0, 0.75, -0.5, 0.125, -0.875}
	if err := wb.Program(weights); err != nil {
		t.Fatal(err)
	}
	acts := []float64{1, 0.5, 0.25, 1, 0.75, 0, 0.5, 1, 0.25}
	got, err := wb.Output(acts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wb.IdealOutput(acts)
	if err != nil {
		t.Fatal(err)
	}
	// Crosstalk bounds: the physical result should track the ideal MAC
	// within a few percent of full scale for a 9-channel, 2 nm bank.
	if math.Abs(got-want) > 0.15 {
		t.Errorf("photonic MAC %g vs ideal %g: crosstalk too large", got, want)
	}
}

func TestWeightBankCrosstalkSmall(t *testing.T) {
	wb := NewWeightBank(9)
	// Program one strong weight, zeros elsewhere (level for 0 still parks
	// mid-range detuning). Coefficients off the hot channel should stay
	// close to their programmed values.
	weights := make([]float64, 9)
	weights[4] = -1 // on resonance: maximum perturbation to neighbours
	if err := wb.Program(weights); err != nil {
		t.Fatal(err)
	}
	coeffs := wb.TransferCoefficients()
	for j, c := range coeffs {
		if j == 4 {
			if math.Abs(c-(-1)) > 0.05 {
				t.Errorf("hot channel coefficient %g, want about -1", c)
			}
			continue
		}
		if math.Abs(c-weights[j]) > 0.08 {
			t.Errorf("channel %d coefficient %g, want near %g (crosstalk)", j, c, weights[j])
		}
	}
}

func TestWeightBankHeaterPower(t *testing.T) {
	wb := NewWeightBank(9)
	if err := wb.Program(make([]float64, 9)); err != nil {
		t.Fatal(err)
	}
	p := wb.HeaterPower()
	if p <= 0 {
		t.Fatal("zero heater power for nonzero detunings")
	}
	// Per-MR average must be microwatt-to-milliwatt scale; anything beyond
	// says the tuner model is unphysical.
	per := p / 9
	if per > 20e-3 {
		t.Errorf("per-MR heater power %g W too large", per)
	}
}

func TestPerturbResonancesChangesCoefficients(t *testing.T) {
	wb := NewWeightBank(9)
	weights := []float64{0.5, -0.5, 0.25, -0.25, 0.75, -0.75, 1, -1, 0}
	if err := wb.Program(weights); err != nil {
		t.Fatal(err)
	}
	before := wb.TransferCoefficients()
	offsets := make([]float64, 9)
	for i := range offsets {
		offsets[i] = 0.2e-9 // 0.2 nm uncorrected variation
	}
	if err := wb.PerturbResonances(offsets); err != nil {
		t.Fatal(err)
	}
	after := wb.TransferCoefficients()
	moved := false
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-3 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("0.2 nm resonance perturbation did not move any coefficient")
	}
}

func TestBankModelLevelMapping(t *testing.T) {
	bm, err := NewBankModel(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Levels() != 16 {
		t.Fatalf("levels = %d", bm.Levels())
	}
	if w := bm.LevelToWeight(0); w != -1 {
		t.Errorf("level 0 -> %g, want -1", w)
	}
	if w := bm.LevelToWeight(15); w != 1 {
		t.Errorf("level 15 -> %g, want 1", w)
	}
	// Round trip within half a step.
	step := 2.0 / 15
	for l := 0; l < 16; l++ {
		w := bm.LevelToWeight(l)
		if bm.WeightToLevel(w) != l {
			t.Errorf("level %d -> weight %g -> level %d", l, w, bm.WeightToLevel(w))
		}
		if bm.WeightToLevel(w+step/2.01) != l && bm.WeightToLevel(w+step/2.01) != l+1 {
			t.Errorf("perturbed weight mapped far from level %d", l)
		}
	}
}

func TestBankModelMatchesWeightBank(t *testing.T) {
	// The quantized fast path must agree with the exact per-ring model
	// when programmed with the same quantized weights.
	bm, err := NewBankModel(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWeightBank(9)
	levels := []int{0, 3, 7, 8, 11, 15, 5, 9, 12}
	weights := make([]float64, 9)
	for i, l := range levels {
		weights[i] = bm.LevelToWeight(l)
	}
	if err := wb.Program(weights); err != nil {
		t.Fatal(err)
	}
	exact := wb.TransferCoefficients()
	fast, err := bm.Coefficients(levels)
	if err != nil {
		t.Fatal(err)
	}
	for j := range exact {
		if math.Abs(exact[j]-fast[j]) > 0.02 {
			t.Errorf("channel %d: exact %g vs table %g", j, exact[j], fast[j])
		}
	}
}

func TestBankModelShortSegment(t *testing.T) {
	bm, err := NewBankModel(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// FC tail segments use fewer than 9 weights; remaining rings parked.
	coeffs, err := bm.Coefficients([]int{15, 0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(coeffs) != 9 {
		t.Fatalf("got %d coefficients", len(coeffs))
	}
	// Parked channels see only residual crosstalk; their coefficients sit
	// near the transparent value (close to +1/scale of full through).
	for j := 3; j < 9; j++ {
		if coeffs[j] < 0.9 {
			t.Errorf("parked channel %d coefficient %g, want near transparent (>0.9)", j, coeffs[j])
		}
	}
}

func TestBankModelCoefficientAccuracyProperty(t *testing.T) {
	bm, err := NewBankModel(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		levels := make([]int, 9)
		for i := range levels {
			levels[i] = rng.Intn(16)
		}
		coeffs, err := bm.Coefficients(levels)
		if err != nil {
			return false
		}
		ideal, err := bm.IdealCoefficients(levels)
		if err != nil {
			return false
		}
		for j := range coeffs {
			if math.Abs(coeffs[j]-ideal[j]) > 0.12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBankModelHeaterPower(t *testing.T) {
	bm, err := NewBankModel(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	mean := bm.MeanHeaterPowerPerRing()
	if mean <= 0 || mean > 20e-3 {
		t.Fatalf("mean heater power per ring %g W unphysical", mean)
	}
	full := bm.HeaterPower([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	if full <= 0 {
		t.Fatal("zero heater power for a programmed bank")
	}
}

func TestBankModelRejectsBadInput(t *testing.T) {
	if _, err := NewBankModel(0, 4); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewBankModel(9, 0); err == nil {
		t.Error("0 bits accepted")
	}
	if _, err := NewBankModel(9, 12); err == nil {
		t.Error("12 bits accepted")
	}
	bm, _ := NewBankModel(9, 4)
	if _, err := bm.Coefficients(make([]int, 10)); err == nil {
		t.Error("oversized segment accepted")
	}
	if _, err := bm.Coefficients([]int{99}); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestVCSELLICurve(t *testing.T) {
	v := DefaultVCSEL(CBandCenter)
	if p := v.OpticalPower(0); p != 0 {
		t.Errorf("power below threshold: %g", p)
	}
	if p := v.OpticalPower(v.ThresholdCurrent); p != 0 {
		t.Errorf("power at threshold: %g", p)
	}
	p1 := v.OpticalPower(2e-3)
	p2 := v.OpticalPower(4e-3)
	if p1 <= 0 || p2 <= p1 {
		t.Fatalf("L-I curve not increasing: %g %g", p1, p2)
	}
	// Slope check.
	slope := (p2 - p1) / 2e-3
	if math.Abs(slope-v.SlopeEfficiency) > 1e-12 {
		t.Errorf("slope %g, want %g", slope, v.SlopeEfficiency)
	}
	// Clip at max current.
	if v.OpticalPower(1) != v.MaxOpticalPower() {
		t.Error("no clipping at max current")
	}
}

func TestVCSELModulationLevels(t *testing.T) {
	v := DefaultVCSEL(CBandCenter)
	levels := v.ModulationLevels(16)
	if len(levels) != 16 {
		t.Fatalf("got %d levels", len(levels))
	}
	if levels[0] != 0 {
		t.Errorf("level 0 power %g, want 0", levels[0])
	}
	for i := 1; i < 16; i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("levels not strictly increasing at %d", i)
		}
	}
	// Uniform steps (linear L-I above threshold).
	step := levels[1] - levels[0]
	for i := 1; i < 16; i++ {
		if math.Abs((levels[i]-levels[i-1])-step) > 1e-12 {
			t.Fatalf("non-uniform step at %d", i)
		}
	}
	if got := v.LevelForCode(15, 4); math.Abs(got-levels[15]) > 1e-15 {
		t.Errorf("LevelForCode(15,4) = %g, want %g", got, levels[15])
	}
}

func TestVCSELCurrentForPowerInverse(t *testing.T) {
	v := DefaultVCSEL(CBandCenter)
	for _, p := range []float64{1e-5, 1e-4, 5e-4, 1e-3} {
		i := v.CurrentForPower(p)
		if math.Abs(v.OpticalPower(i)-p) > 1e-12 {
			t.Errorf("power %g -> current %g -> power %g", p, i, v.OpticalPower(i))
		}
	}
}

func TestPhotodetectorCurrent(t *testing.T) {
	d := DefaultPhotodetector()
	if got := d.Current(0); math.Abs(got-d.DarkCurrent) > 1e-18 {
		t.Errorf("dark current %g, want %g", got, d.DarkCurrent)
	}
	if got := d.Current(1e-3); got <= d.Current(1e-4) {
		t.Error("photocurrent not increasing with power")
	}
	if got := d.Current(-1); math.Abs(got-d.DarkCurrent) > 1e-18 {
		t.Error("negative power should clip to zero")
	}
}

func TestBalancedDetectorCancelsDark(t *testing.T) {
	b := DefaultBalancedDetector()
	if out := b.Output(0, 0); math.Abs(out) > 1e-18 {
		t.Errorf("balanced output with no light: %g", out)
	}
	plus := b.Output(1e-3, 0)
	minus := b.Output(0, 1e-3)
	if math.Abs(plus+minus) > 1e-15 {
		t.Errorf("balanced detector asymmetric: %g vs %g", plus, minus)
	}
}

func TestNoiseSigmasPositive(t *testing.T) {
	d := DefaultPhotodetector()
	if d.ShotNoiseSigma(1e-3) <= 0 {
		t.Error("shot noise sigma not positive")
	}
	if d.ThermalNoiseSigma() <= 0 {
		t.Error("thermal noise sigma not positive")
	}
	b := DefaultBalancedDetector()
	if b.NoisySigma(1e-3, 1e-3) <= b.NoisySigma(0, 0) {
		t.Error("noise should grow with optical power (shot noise)")
	}
}

func TestNoiseSourceDeterminism(t *testing.T) {
	a := NewNoiseSource(42)
	b := NewNoiseSource(42)
	for i := 0; i < 100; i++ {
		if a.Normal() != b.Normal() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestVariationSampling(t *testing.T) {
	v := DefaultVariation()
	src := NewNoiseSource(1)
	offsets := v.Sample(9, src)
	if len(offsets) != 9 {
		t.Fatalf("got %d offsets", len(offsets))
	}
	// All should be sub-nanometer for the trimmed model.
	for _, o := range offsets {
		if math.Abs(o) > 1e-9 {
			t.Errorf("trimmed variation offset %g m too large", o)
		}
	}
	// Untrimmed model must be visibly wider on average.
	ut := UntrimmedVariation()
	var sumT, sumU float64
	for i := 0; i < 200; i++ {
		for _, o := range v.Sample(9, src) {
			sumT += math.Abs(o)
		}
		for _, o := range ut.Sample(9, src) {
			sumU += math.Abs(o)
		}
	}
	if sumU < 3*sumT {
		t.Errorf("untrimmed variation (%g) not clearly wider than trimmed (%g)", sumU, sumT)
	}
}

func TestRelativeIntensityNoise(t *testing.T) {
	p := 1e-3
	same := RelativeIntensityNoise(p, -140, 5e9, 0)
	if same != p {
		t.Errorf("zero-sample RIN changed power: %g", same)
	}
	up := RelativeIntensityNoise(p, -140, 5e9, 1)
	if up <= p {
		t.Error("positive sample should increase power")
	}
	// RIN perturbation must be small relative to signal at -140 dB/Hz.
	if (up-p)/p > 0.01 {
		t.Errorf("RIN perturbation %g too large", (up-p)/p)
	}
}
