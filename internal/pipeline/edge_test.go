// Edge cases the serving layer depends on: seeded submissions that are
// independent of batch composition, stream termination behaviour, and
// stats that stay sane with zero frames.
package pipeline

import (
	"testing"
	"time"

	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// TestRunSeededBatchIndependence is the contract the server's
// micro-batcher is built on: a frame's result depends only on its own
// (scene, seed) pair — processing it alone, or inside any batch mix, in
// any slot, yields identical bytes.
func TestRunSeededBatchIndependence(t *testing.T) {
	scenes := testScenes(6, 16, 16)
	p := newTestPipeline(t, oc.PhysicalNoisy, 4)

	// Each frame alone, as frame 0 of a Run under its own seed.
	solo := make([]Result, len(scenes))
	for i, s := range scenes {
		sp := newTestPipeline(t, oc.PhysicalNoisy, 1)
		sp.cfg.Seed = int64(1000 + i)
		res, _, err := sp.Run([]*sensor.Image{s})
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = res[0]
	}

	// The same frames coalesced into one seeded batch, reversed order.
	batch := make([]SeededScene, len(scenes))
	for i := range scenes {
		j := len(scenes) - 1 - i
		batch[i] = SeededScene{Seed: int64(1000 + j), Scene: scenes[j]}
	}
	got, stats, err := p.RunSeeded(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != len(scenes) {
		t.Errorf("stats frames %d, want %d", stats.Frames, len(scenes))
	}
	for i := range batch {
		j := len(scenes) - 1 - i
		want := solo[j]
		want.Index = i // position differs by construction; outputs must not
		assertIdentical(t, want, got[i])
	}
}

// TestRunSeededEmpty mirrors Run's empty-batch contract.
func TestRunSeededEmpty(t *testing.T) {
	p := newTestPipeline(t, oc.Ideal, 2)
	if _, _, err := p.RunSeeded(nil); err == nil {
		t.Error("empty seeded batch accepted")
	}
}

// TestStreamEarlyClose: an input channel closed before any frame arrives
// must terminate the stream promptly with a sane zero-frame stats report.
func TestStreamEarlyClose(t *testing.T) {
	p := newTestPipeline(t, oc.Physical, 3)
	in := make(chan *sensor.Image)
	close(in)
	out := p.Stream(in)
	select {
	case _, ok := <-out:
		if ok {
			t.Fatal("result emitted for empty stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after early input close")
	}
	st := p.Stats()
	if st.Frames != 0 || st.Errors != 0 {
		t.Errorf("zero-frame stats: frames=%d errors=%d", st.Frames, st.Errors)
	}
	if st.FPS != 0 {
		t.Errorf("zero-frame FPS %g, want 0 (no divide-by-zero artifacts)", st.FPS)
	}
	if st.Render() == "" {
		t.Error("zero-frame Render is empty")
	}
	rep := st.Report()
	if rep.Capture.Count != 0 || rep.Capture.P99NS != 0 || rep.FPS != 0 {
		t.Errorf("zero-frame report not zeroed: %+v", rep)
	}
}

// TestStreamAbandonedConsumer: a consumer that stops reading does not
// wedge the pool as long as the remaining results fit the buffered result
// channel — the documented contract the server relies on for departed
// clients. Completion is observed via the cumulative stats, which only
// update when the run's workers have all exited.
func TestStreamAbandonedConsumer(t *testing.T) {
	p := newTestPipeline(t, oc.Physical, 2) // Queue defaults to 2*Workers = 4
	const n = 4
	scenes := testScenes(n, 16, 16)
	in := make(chan *sensor.Image, n)
	for _, s := range scenes {
		in <- s
	}
	close(in)
	out := p.Stream(in)
	<-out // read one result, then abandon the channel
	deadline := time.After(10 * time.Second)
	for {
		if p.Stats().Frames == n {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("pool did not finish after consumer abandoned the stream: %+v", p.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestEmptyHistReport pins the zero-value behaviour of the latency
// histogram export.
func TestEmptyHistReport(t *testing.T) {
	var h LatencyHist
	rep := h.Report()
	if rep != (StageReport{}) {
		t.Errorf("empty histogram report not zero: %+v", rep)
	}
	if h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Error("empty histogram mean/quantile not zero")
	}
}
