package pipeline

import (
	"testing"

	"lightator/internal/infer"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// testInferModel builds a compiled tiny model over the compressed plane
// of a rows x cols sensor at the given CA pool.
func testInferModel(t *testing.T, core *oc.Core, pool, rows, cols int) *infer.Model {
	t.Helper()
	eng, err := infer.NewEngine(core, pool, rows/pool, cols/pool, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.Model("tiny-cnn")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInferStageMatchesDirectComposition pins the inference stage's exact
// seed derivation: frame i's logits equal the hand-composed Capture ->
// CompressSeeded(DeriveSeed(frameSeed, 1)) -> Apply(DeriveSeed(frameSeed,
// 4)) chain, bit for bit, in PhysicalNoisy fidelity. A change to the
// stage seed tags breaks the facade/server determinism contract, and
// this test, together.
func TestInferStageMatchesDirectComposition(t *testing.T) {
	const baseSeed = 1234
	core, err := oc.NewCore(4, 4, oc.PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	model := testInferModel(t, core, 2, 16, 16)
	p, err := New(Config{
		Rows: 16, Cols: 16, Workers: 3, Seed: baseSeed,
		CAPool: 2, Infer: model, Core: core,
	})
	if err != nil {
		t.Fatal(err)
	}
	scenes := testScenes(5, 16, 16)
	results, stats, err := p.Run(scenes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Infer.Count != len(scenes) {
		t.Errorf("infer stage observed %d frames, want %d", stats.Infer.Count, len(scenes))
	}

	arr, err := sensor.NewArray(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := oc.NewAcquisitor(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", i, res.Err)
		}
		frameSeed := oc.DeriveSeed(baseSeed, i)
		frame, err := arr.Capture(scenes[i])
		if err != nil {
			t.Fatal(err)
		}
		small, err := ca.CompressSeeded(frame, StageSeed(frameSeed, StageCompress))
		if err != nil {
			t.Fatal(err)
		}
		want, err := model.Apply(small, StageSeed(frameSeed, StageInfer), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Logits) != len(want) {
			t.Fatalf("frame %d: %d logits, want %d", i, len(res.Logits), len(want))
		}
		for j := range want {
			if res.Logits[j] != want[j] {
				t.Fatalf("frame %d: logit %d differs: %g (pipeline) vs %g (direct)",
					i, j, res.Logits[j], want[j])
			}
		}
	}
}

// TestInferStageWorkerInvariance runs the same seeded batch at 1 and 4
// workers in PhysicalNoisy fidelity; logits must be bit-identical.
func TestInferStageWorkerInvariance(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	model := testInferModel(t, core, 2, 16, 16)
	scenes := testScenes(6, 16, 16)
	var want []Result
	for _, workers := range []int{1, 4} {
		p, err := New(Config{
			Rows: 16, Cols: 16, Workers: workers, Seed: 777,
			CAPool: 2, Infer: model, Core: core,
		})
		if err != nil {
			t.Fatal(err)
		}
		results, _, err := p.Run(scenes)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = results
			continue
		}
		for i := range results {
			if results[i].Err != nil {
				t.Fatalf("frame %d: %v", i, results[i].Err)
			}
			for j := range want[i].Logits {
				if results[i].Logits[j] != want[i].Logits[j] {
					t.Fatalf("frame %d logit %d differs across worker counts", i, j)
				}
			}
		}
	}
}

// TestInferStageRequiresCA pins the configuration guard.
func TestInferStageRequiresCA(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Physical)
	if err != nil {
		t.Fatal(err)
	}
	model := testInferModel(t, core, 2, 16, 16)
	if _, err := New(Config{Rows: 16, Cols: 16, Infer: model, Core: core}); err == nil {
		t.Fatal("pipeline accepted an inference stage without compressive acquisition")
	}
}
