package pipeline

import (
	"testing"

	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// TestKernelStageMatchesDirectComposition pins the kernel stage's exact
// seed derivation: frame i's kernel output equals the hand-composed
// Capture -> CompressSeeded(DeriveSeed(frameSeed, 1)) ->
// Apply(DeriveSeed(frameSeed, 2)) chain, bit for bit, in PhysicalNoisy
// fidelity. A change to the stage seed tags breaks the facade/server
// determinism contract, and this test, together.
func TestKernelStageMatchesDirectComposition(t *testing.T) {
	const baseSeed = 987
	core, err := oc.NewCore(4, 4, oc.PhysicalNoisy)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := kernels.NewReconstruct(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Rows: 16, Cols: 16, Workers: 3, Seed: baseSeed,
		CAPool: 2, Kernel: kern, Core: core,
	})
	if err != nil {
		t.Fatal(err)
	}
	scenes := testScenes(5, 16, 16)
	results, _, err := p.Run(scenes)
	if err != nil {
		t.Fatal(err)
	}

	arr, err := sensor.NewArray(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := oc.NewAcquisitor(core, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", i, res.Err)
		}
		frameSeed := oc.DeriveSeed(baseSeed, i)
		frame, err := arr.Capture(scenes[i])
		if err != nil {
			t.Fatal(err)
		}
		small, err := ca.CompressSeeded(frame, StageSeed(frameSeed, StageCompress))
		if err != nil {
			t.Fatal(err)
		}
		want, err := kern.Apply(small, StageSeed(frameSeed, StageKernel), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Processed.H != want.H || res.Processed.W != want.W {
			t.Fatalf("frame %d: kernel output %dx%d, want %dx%d", i, res.Processed.H, res.Processed.W, want.H, want.W)
		}
		for j := range want.Pix {
			if res.Processed.Pix[j] != want.Pix[j] {
				t.Fatalf("frame %d: kernel output pixel %d differs: %g (pipeline) vs %g (direct)",
					i, j, res.Processed.Pix[j], want.Pix[j])
			}
		}
	}
}
