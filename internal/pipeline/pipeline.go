// Package pipeline is Lightator's batched, concurrent frame engine: a
// bounded worker pool that streams scenes through the accelerator's
// stages — ADC-less Capture, Compressive Acquisition, and an optional
// programmed optical MVM — at high aggregate throughput.
//
// The paper's pitch (DAC 2024) is versatile image processing on frame
// *streams*, not single stills; this package is the load-bearing layer
// that turns the one-scene facade paths into a stream server. Three
// properties drive the design:
//
//   - Bounded parallelism and backpressure: each Run/Stream call keeps
//     at most Workers frames in flight; job and result queues are
//     bounded, so a slow consumer throttles producers instead of
//     ballooning memory. (Concurrent Run/Stream calls each bring their
//     own pool — the bound is per call, not per Pipeline.)
//
//   - Determinism: frame i derives its noise seed from (Seed, i) via
//     oc.DeriveSeed, and every stage draws from per-row / per-window
//     child streams. N-worker output is therefore bit-identical to the
//     1-worker run — goroutine scheduling can never change a result,
//     even in PhysicalNoisy fidelity.
//
//   - Isolation: the sensor Array latches exposure state, so each worker
//     clones its own array; the programmed MR banks (CA weights and the
//     optional MVM matrix) are immutable after programming and shared.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lightator/internal/analog"
	"lightator/internal/fault"
	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/sensor"
	"lightator/internal/trace"
)

// Stage seed tags: frame seed s yields DeriveSeed(s, stage) per stage, so
// stages of one frame never share a noise stream. Exported so a layer
// that re-runs a stage outside the pipeline (the streaming session's
// delta stage, internal/session) can reproduce a frame's exact stage
// seed chain.
const (
	StageCapture  = 0
	StageCompress = 1
	StageMatVec   = 2
	StageKernel   = 3
	StageInfer    = 4
)

// FrameSeed maps a request-level seed to the frame seed RunSeeded (and
// StreamSeeded) give that submission — the seed a streamed session frame
// shares with its per-frame facade equivalent.
func FrameSeed(requestSeed int64) int64 { return oc.DeriveSeed(requestSeed, 0) }

// StageSeed derives one stage's noise seed from a frame seed.
func StageSeed(frameSeed int64, stage int) int64 { return oc.DeriveSeed(frameSeed, stage) }

// InferModel is the inference post-stage contract, implemented by
// infer.Model: a compiled network that consumes the CA measurement plane
// and returns class logits, bit-identically for any worker count (window
// j of layer L draws its noise from per-layer DeriveSeed child streams).
// Declared here, not imported, so the pipeline depends on the contract
// rather than the engine.
type InferModel interface {
	Name() string
	Apply(plane *sensor.Image, seed int64, workers int) ([]float64, error)
}

// Config assembles a pipeline.
type Config struct {
	// Rows, Cols size the per-worker sensor arrays.
	Rows, Cols int
	// Workers bounds the number of frames processed concurrently.
	// Defaults to runtime.NumCPU().
	Workers int
	// Queue is the depth of the job and result buffers (backpressure
	// window). Defaults to 2*Workers.
	Queue int
	// Seed is the base noise seed; frame i uses oc.DeriveSeed(Seed, i).
	Seed int64
	// CAPool enables the Compressive Acquisition stage when non-zero
	// (even, >= 2 — the Bayer quad constraint).
	CAPool int
	// Weights, when non-nil, adds an optical MVM stage applied to the
	// flattened output of the previous stage (the compressed plane when
	// CAPool > 0, the raw frame intensities otherwise). Entries in [-1,1].
	Weights [][]float64
	// Kernel, when non-nil, adds a compressed-domain processing stage
	// applied to the CA output plane (requires CAPool > 0); see
	// internal/kernels and docs/KERNELS.md. Kernel and Weights may be
	// combined — both consume the compressed plane independently.
	Kernel kernels.Kernel
	// Infer, when non-nil, adds a compressed-domain CNN inference stage
	// applied to the CA output plane (requires CAPool > 0); see
	// internal/infer and docs/INFER.md. Infer composes freely with Kernel
	// and Weights — all three consume the compressed plane independently.
	Infer InferModel
	// Core executes the CA and MVM stages; required when either is
	// enabled.
	Core *oc.Core
	// Array, when non-nil, is the sensor prototype the workers clone
	// (preserving its device models); its dimensions override Rows/Cols.
	// When nil a default array of Rows x Cols is built.
	Array *sensor.Array
	// FaultPlan, when non-nil, is the chaos plan whose sensor-side
	// comparator faults the capture stage injects (optical-core faults
	// are compiled by the core itself — see oc.Core.SetFaultPlan). Nil
	// inherits the Core's plan, so configuring the core once covers both
	// sides.
	FaultPlan *fault.Plan
}

// Result is one frame's trip through the pipeline. Stages that were not
// enabled leave their field nil.
type Result struct {
	// Index is the frame's position in the input order.
	Index int
	// Frame is the ADC-less capture readout.
	Frame *sensor.Frame
	// Compressed is the CA output plane (nil when CAPool == 0).
	Compressed *sensor.Image
	// Processed is the compressed-domain kernel output (nil when
	// Config.Kernel is nil). Values may lie outside [0,1] — e.g. signed
	// edge responses.
	Processed *sensor.Image
	// Logits is the compressed-domain inference output (nil when
	// Config.Infer is nil).
	Logits []float64
	// Output is the MVM stage result (nil when Weights == nil).
	Output []float64
	// Err is the first stage error; later stages are skipped. A frame
	// error does not abort the run — other frames keep flowing.
	Err error
	// Degraded reports that at least one optical stage this frame passed
	// through is serving degraded output — rows retired to the digital
	// fallback or unrecovered ABFT detections (see docs/FAULTS.md). The
	// result is still well-formed; the flag propagates to the wire so
	// clients can decide whether degraded answers are acceptable.
	Degraded bool
	// CaptureTime, CompressTime, KernelTime, InferTime and MatVecTime are
	// per-stage latencies.
	CaptureTime, CompressTime, KernelTime, InferTime, MatVecTime time.Duration
	// Ops is the frame's modeled per-stage analog op counts — the
	// pipeline's static FrameOps value copied in (a plain struct copy, no
	// allocation; see internal/trace). Stages that were not enabled stay
	// zero.
	Ops trace.StageOps
}

// Pipeline is a configured worker pool. It is safe to call Run and
// Stream from multiple goroutines, but each Stream's input channel must
// be closed by its producer, and its result channel fully drained by the
// consumer, to release the workers — abandoning a result channel
// mid-stream blocks the pool once the queue fills (there is no
// cancellation path yet). Note the cumulative Stats sum per-run wall
// times, so cumulative FPS reads as serialized-equivalent throughput
// when runs overlap in time.
type Pipeline struct {
	cfg   Config
	ca    *oc.Acquisitor
	pm    *oc.ProgrammedMatrix
	proto *sensor.Array
	// sensorFaults are the chaos plan's comparator stuck-ats, applied to
	// the captured frame codes before any optical stage (nil in the
	// common no-chaos case — a zero-cost branch per frame).
	sensorFaults []fault.Fault
	// ops is the per-frame op-count profile, fixed by the configured
	// geometry at construction (every frame of a pipeline does identical
	// modeled analog work).
	ops trace.StageOps

	mu    sync.Mutex
	total Stats
}

// New validates the configuration and programs the shared MR banks.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Array != nil {
		cfg.Rows, cfg.Cols = cfg.Array.Rows, cfg.Array.Cols
	}
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("pipeline: invalid sensor size %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Workers
	}
	proto := cfg.Array
	if proto == nil {
		arr, err := sensor.NewArray(cfg.Rows, cfg.Cols)
		if err != nil {
			return nil, err
		}
		proto = arr
	}
	p := &Pipeline{cfg: cfg, proto: proto}
	if cfg.CAPool != 0 || cfg.Weights != nil || cfg.Kernel != nil || cfg.Infer != nil {
		if cfg.Core == nil {
			return nil, fmt.Errorf("pipeline: CA/MVM/kernel/infer stages enabled but no optical core configured")
		}
	}
	if cfg.Kernel != nil && cfg.CAPool == 0 {
		return nil, fmt.Errorf("pipeline: kernel stage %q needs the compressive acquisition stage (CAPool > 0)", cfg.Kernel.Name())
	}
	if cfg.Infer != nil && cfg.CAPool == 0 {
		return nil, fmt.Errorf("pipeline: inference stage %q needs the compressive acquisition stage (CAPool > 0)", cfg.Infer.Name())
	}
	mvmCols := cfg.Rows * cfg.Cols
	if cfg.CAPool != 0 {
		if cfg.Rows%cfg.CAPool != 0 || cfg.Cols%cfg.CAPool != 0 {
			return nil, fmt.Errorf("pipeline: sensor %dx%d not divisible by CA pool %d", cfg.Rows, cfg.Cols, cfg.CAPool)
		}
		ca, err := oc.NewAcquisitor(cfg.Core, cfg.CAPool)
		if err != nil {
			return nil, err
		}
		p.ca = ca
		mvmCols = (cfg.Rows / cfg.CAPool) * (cfg.Cols / cfg.CAPool)
	}
	if cfg.Weights != nil {
		if len(cfg.Weights) == 0 || len(cfg.Weights[0]) != mvmCols {
			have := 0
			if len(cfg.Weights) > 0 {
				have = len(cfg.Weights[0])
			}
			return nil, fmt.Errorf("pipeline: MVM weights have %d columns, stage input is %d", have, mvmCols)
		}
		pm, err := cfg.Core.Program(cfg.Weights)
		if err != nil {
			return nil, err
		}
		// The MVM stage shares the "mvm" health component with the serving
		// layer's mat-vec path — both are the paper's runtime-driven bank.
		pm.SetLabel("mvm")
		p.pm = pm
	}
	plan := cfg.FaultPlan
	if plan == nil && cfg.Core != nil {
		plan = cfg.Core.FaultPlan()
	}
	p.sensorFaults = plan.Sensor()
	if err := p.profileOps(); err != nil {
		return nil, err
	}
	return p, nil
}

// profileOps derives the static per-frame op-count profile from the
// configured geometry: capture reads every pixel through the CRC
// comparator ladder; the CA streams one pre-set row per pooled window;
// kernel and infer stages report their own programmed geometry; the MVM
// stage is one runtime-driven matrix apply. See docs/OBSERVABILITY.md.
func (p *Pipeline) profileOps() error {
	cfg := p.cfg
	p.ops.Capture = trace.OpCounts{
		ComparatorFires: int64(cfg.Rows) * int64(cfg.Cols) * int64(analog.NumComparators),
	}
	caH, caW := cfg.Rows, cfg.Cols
	if p.ca != nil {
		caH, caW = cfg.Rows/cfg.CAPool, cfg.Cols/cfg.CAPool
		windows := int64(caH) * int64(caW)
		taps := int64(cfg.CAPool) * int64(cfg.CAPool)
		p.ops.Compress = trace.OpCounts{
			MVMRows:        windows,
			ADCConversions: windows,
			// Pre-set bank: coefficients tuned once at programming time, so
			// the windows hold MRs without runtime DAC settles.
			MRCoeffHolds: windows * taps,
			ABFTChecks:   p.ca.ABFTChecksPer(windows),
		}
	}
	if cfg.Kernel != nil {
		ops, err := cfg.Kernel.Ops(caH, caW)
		if err != nil {
			return fmt.Errorf("pipeline: kernel %s op profile: %w", cfg.Kernel.Name(), err)
		}
		p.ops.Kernel = ops
	}
	if cfg.Infer != nil {
		// infer.Model implements the optional op-count contract; other
		// InferModels simply report zero (the pipeline depends on the
		// contract, not the engine).
		if om, ok := cfg.Infer.(interface {
			Ops() (trace.OpCounts, error)
		}); ok {
			ops, err := om.Ops()
			if err != nil {
				return fmt.Errorf("pipeline: infer %s op profile: %w", cfg.Infer.Name(), err)
			}
			p.ops.Infer = ops
		}
	}
	if p.pm != nil {
		rows, cols := int64(p.pm.Rows()), int64(p.pm.Cols())
		p.ops.MatVec = trace.OpCounts{
			MVMRows:        rows,
			DACSettles:     rows * cols,
			ADCConversions: rows,
			MRCoeffHolds:   rows * cols,
			ABFTChecks:     p.pm.ABFTChecksPer(1),
		}
	}
	return nil
}

// FrameOps returns the modeled per-stage analog op counts of one frame
// through this pipeline — constant for the pipeline's lifetime.
func (p *Pipeline) FrameOps() trace.StageOps { return p.ops }

// Config returns the effective (defaulted) configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// degraded reports whether any optical stage of this pipeline is
// currently serving degraded output — a handful of atomic loads, cheap
// enough to evaluate per frame.
func (p *Pipeline) degraded() bool {
	if p.ca != nil && p.ca.Degraded() {
		return true
	}
	if p.pm != nil && p.pm.Degraded() {
		return true
	}
	if d, ok := p.cfg.Kernel.(interface{ Degraded() bool }); ok && d.Degraded() {
		return true
	}
	if d, ok := p.cfg.Infer.(interface{ Degraded() bool }); ok && d.Degraded() {
		return true
	}
	return false
}

// injectSensorFaults applies the chaos plan's comparator stuck-ats to a
// captured frame's CRC codes, before any optical stage reads them. A
// thermometer code c means comparators 0..c-1 fired; sticking comparator
// k on adds a rung to codes with k >= c, sticking it off removes one
// from codes with k < c. Activation hashes the frame's capture-stage
// seed, so injection is bit-identical at any worker count. A fault with
// Row == RowEnd == 0 covers the whole frame; otherwise [Row, RowEnd]
// bounds the affected sensor rows.
func (p *Pipeline) injectSensorFaults(f *sensor.Frame, frameSeed int64) {
	seed := StageSeed(frameSeed, StageCapture)
	for _, flt := range p.sensorFaults {
		if flt.Col >= analog.NumComparators || !flt.Window.Active(seed) {
			continue
		}
		lo, hi := flt.Row, flt.LastRow()
		if flt.Row == 0 && flt.RowEnd == 0 || hi >= f.Rows {
			hi = f.Rows - 1
		}
		k := uint8(flt.Col)
		stuckOn := flt.Value > 0
		for y := lo; y <= hi; y++ {
			row := f.Codes[y*f.Cols : (y+1)*f.Cols]
			for x, c := range row {
				if stuckOn {
					if c <= k && int(c) < analog.NumComparators {
						row[x] = c + 1
					}
				} else if c > k {
					row[x] = c - 1
				}
			}
		}
	}
}

// processFrame runs every enabled stage for one frame on one worker.
// frameSeed is the frame's top-level noise seed; stages derive children
// from it.
func (p *Pipeline) processFrame(arr *sensor.Array, idx int, frameSeed int64, scene *sensor.Image, st *Stats) (res Result) {
	res = Result{Index: idx, Ops: p.ops}
	st.Frames++
	// The degraded flag reflects component health after this frame's own
	// stages ran — a frame whose ABFT check trips and retires a row
	// reports the degradation it caused.
	defer func() { res.Degraded = p.degraded() }()

	t0 := time.Now()
	frame, err := arr.Capture(scene)
	res.CaptureTime = time.Since(t0)
	st.Capture.Observe(res.CaptureTime)
	if err != nil {
		res.Err = fmt.Errorf("pipeline: frame %d capture: %w", idx, err)
		st.Errors++
		return res
	}
	res.Frame = frame
	if p.sensorFaults != nil {
		p.injectSensorFaults(frame, frameSeed)
	}

	var activations []float64
	if p.ca != nil {
		t0 = time.Now()
		small, err := p.ca.CompressSeeded(frame, StageSeed(frameSeed, StageCompress))
		res.CompressTime = time.Since(t0)
		st.Compress.Observe(res.CompressTime)
		if err != nil {
			res.Err = fmt.Errorf("pipeline: frame %d compress: %w", idx, err)
			st.Errors++
			return res
		}
		res.Compressed = small
		activations = small.Pix

		if p.cfg.Kernel != nil {
			t0 = time.Now()
			// Workers is 1: frame-level parallelism already saturates the
			// pool, and the kernel contract makes the worker count
			// unobservable in the output anyway.
			proc, err := p.cfg.Kernel.Apply(small, StageSeed(frameSeed, StageKernel), 1)
			res.KernelTime = time.Since(t0)
			st.Kernel.Observe(res.KernelTime)
			if err != nil {
				res.Err = fmt.Errorf("pipeline: frame %d kernel %s: %w", idx, p.cfg.Kernel.Name(), err)
				st.Errors++
				return res
			}
			res.Processed = proc
		}

		if p.cfg.Infer != nil {
			t0 = time.Now()
			// Workers is 1 for the same reason as the kernel stage:
			// frame-level parallelism already saturates the pool, and the
			// infer contract makes the worker count unobservable anyway.
			logits, err := p.cfg.Infer.Apply(small, StageSeed(frameSeed, StageInfer), 1)
			res.InferTime = time.Since(t0)
			st.Infer.Observe(res.InferTime)
			if err != nil {
				res.Err = fmt.Errorf("pipeline: frame %d infer %s: %w", idx, p.cfg.Infer.Name(), err)
				st.Errors++
				return res
			}
			res.Logits = logits
		}
	} else if p.pm != nil {
		activations = make([]float64, frame.Rows*frame.Cols)
		for y := 0; y < frame.Rows; y++ {
			for x := 0; x < frame.Cols; x++ {
				activations[y*frame.Cols+x] = frame.Intensity(y, x)
			}
		}
	}

	if p.pm != nil {
		t0 = time.Now()
		// Destination-passing keeps the MVM stage's steady-state
		// allocations to the one result slice that escapes into Result.
		y := make([]float64, p.pm.Rows())
		err := p.pm.ApplySeededInto(y, activations, StageSeed(frameSeed, StageMatVec))
		res.MatVecTime = time.Since(t0)
		st.MatVec.Observe(res.MatVecTime)
		if err != nil {
			res.Err = fmt.Errorf("pipeline: frame %d matvec: %w", idx, err)
			st.Errors++
			return res
		}
		res.Output = y
	}
	return res
}

// job pairs a frame with its input-order index and resolved noise seed.
type job struct {
	idx   int
	seed  int64
	scene *sensor.Image
}

// run is the shared engine: it drains jobs with the worker pool, hands
// each Result to emit, and returns the merged run stats. known caps the
// pool when the caller knows the job count up front (a micro-batch of 2
// frames should not clone NumCPU sensor arrays); 0 means unknown.
func (p *Pipeline) run(known int, jobs <-chan job, emit func(Result)) *Stats {
	start := time.Now()
	workers := p.cfg.Workers
	if known > 0 && known < workers {
		workers = known
	}
	var (
		wg     sync.WaitGroup
		locals = make([]*Stats, workers)
	)
	for w := 0; w < workers; w++ {
		st := &Stats{}
		locals[w] = st
		arr := p.proto.Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// emit targets either a distinct slice index or a
				// channel — both safe from concurrent workers.
				emit(p.processFrame(arr, j.idx, j.seed, j.scene, st))
			}
		}()
	}
	wg.Wait()
	run := &Stats{Workers: workers}
	for _, st := range locals {
		run.merge(st)
	}
	run.Wall = time.Since(start)
	if run.Wall > 0 {
		run.FPS = float64(run.Frames) / run.Wall.Seconds()
	}
	p.mu.Lock()
	// Cumulative stats report the configured pool bound, not the possibly
	// batch-capped count of the last run.
	p.total.Workers = p.cfg.Workers
	p.total.merge(run)
	p.total.Wall += run.Wall
	if p.total.Wall > 0 {
		p.total.FPS = float64(p.total.Frames) / p.total.Wall.Seconds()
	}
	p.mu.Unlock()
	return run
}

// Run processes a batch of scenes and returns results in input order,
// plus the run's aggregate stats. Per-frame failures are reported in
// Result.Err; Run itself only fails on an empty batch.
func (p *Pipeline) Run(scenes []*sensor.Image) ([]Result, *Stats, error) {
	if len(scenes) == 0 {
		return nil, nil, fmt.Errorf("pipeline: empty batch")
	}
	jobs := make(chan job, p.cfg.Queue)
	go func() {
		for i, s := range scenes {
			jobs <- job{idx: i, seed: oc.DeriveSeed(p.cfg.Seed, i), scene: s}
		}
		close(jobs)
	}()
	results := make([]Result, len(scenes))
	stats := p.run(len(scenes), jobs, func(r Result) { results[r.Index] = r })
	return results, stats, nil
}

// SeededScene is a single-frame submission with an explicit base seed: the
// frame is processed exactly as frame 0 of a Run on a pipeline configured
// with that seed. It is the hook a request/response front-end (the network
// serving layer) uses to coalesce independent requests into one pipeline
// batch without the batch composition leaking into any result — each
// frame's noise depends only on its own (scene, seed) pair.
type SeededScene struct {
	// Seed is the base noise seed for this frame alone.
	Seed int64
	// Scene is the RGB input.
	Scene *sensor.Image
}

// RunSeeded processes a batch of independently-seeded scenes and returns
// results in input order (Result.Index is the submission position). Frame
// i's output is bit-identical to Run([]{scenes[i]}) on a pipeline whose
// Config.Seed is jobs[i].Seed — regardless of which other frames share the
// batch or how many workers drain it.
func (p *Pipeline) RunSeeded(batch []SeededScene) ([]Result, *Stats, error) {
	if len(batch) == 0 {
		return nil, nil, fmt.Errorf("pipeline: empty batch")
	}
	jobs := make(chan job, p.cfg.Queue)
	go func() {
		for i, s := range batch {
			jobs <- job{idx: i, seed: FrameSeed(s.Seed), scene: s.Scene}
		}
		close(jobs)
	}()
	results := make([]Result, len(batch))
	stats := p.run(len(batch), jobs, func(r Result) { results[r.Index] = r })
	return results, stats, nil
}

// Stream processes scenes from a channel, emitting results as frames
// finish (unordered — Result.Index identifies the frame). The result
// channel is buffered to the configured Queue depth, so a slow consumer
// exerts backpressure on the workers, which in turn stop draining the
// input. The result channel closes once the input channel is closed and
// every in-flight frame has been emitted.
func (p *Pipeline) Stream(in <-chan *sensor.Image) <-chan Result {
	jobs := make(chan job, p.cfg.Queue)
	out := make(chan Result, p.cfg.Queue)
	go func() {
		i := 0
		for s := range in {
			jobs <- job{idx: i, seed: oc.DeriveSeed(p.cfg.Seed, i), scene: s}
			i++
		}
		close(jobs)
	}()
	go func() {
		p.run(0, jobs, func(r Result) { out <- r })
		close(out)
	}()
	return out
}

// StreamSeeded processes independently-seeded scenes from a channel,
// emitting results as frames finish (unordered — Result.Index is the
// submission position). It is the streaming form of RunSeeded: frame i's
// output is bit-identical to RunSeeded on a batch containing only that
// submission, regardless of stream composition or worker count. The
// streaming session layer (internal/session) feeds each session frame i
// with Seed = DeriveSeed(sessionSeed, i), making streamed bytes identical
// to per-frame facade calls under that seed. Channel semantics match
// Stream: the producer must close in, and the consumer must drain the
// result channel fully to release the workers.
func (p *Pipeline) StreamSeeded(in <-chan SeededScene) <-chan Result {
	jobs := make(chan job, p.cfg.Queue)
	out := make(chan Result, p.cfg.Queue)
	go func() {
		i := 0
		for s := range in {
			jobs <- job{idx: i, seed: FrameSeed(s.Seed), scene: s.Scene}
			i++
		}
		close(jobs)
	}()
	go func() {
		p.run(0, jobs, func(r Result) { out <- r })
		close(out)
	}()
	return out
}

// Stats returns a snapshot of the cumulative stats across every Run and
// Stream this pipeline has completed.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}
