package pipeline

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/sensor"
)

// testScenes builds deterministic RGB scenes with per-frame structure so
// no two frames capture identically.
func testScenes(n, rows, cols int) []*sensor.Image {
	rng := rand.New(rand.NewSource(42))
	scenes := make([]*sensor.Image, n)
	for i := range scenes {
		s := sensor.NewImage(rows, cols, 3)
		for j := range s.Pix {
			s.Pix[j] = rng.Float64()
		}
		scenes[i] = s
	}
	return scenes
}

// testWeights builds an MVM matrix for the post-CA plane.
func testWeights(rows, cols int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = 2*rng.Float64() - 1
		}
	}
	return w
}

func newTestPipeline(t *testing.T, fid oc.Fidelity, workers int) *Pipeline {
	t.Helper()
	core, err := oc.NewCore(4, 4, fid)
	if err != nil {
		t.Fatal(err)
	}
	// All four stages enabled: the kernel post-stage rides every
	// determinism and stream test for free.
	kern, err := kernels.NewBlockConv(core, "edge", "test edge kernel",
		[][]float64{{0, -1, 0}, {-1, 4, -1}, {0, -1, 0}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Rows: 16, Cols: 16,
		Workers: workers,
		Seed:    1234,
		CAPool:  2,
		Weights: testWeights(4, 64),
		Kernel:  kern,
		Core:    core,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertIdentical requires two results to be byte-identical across every
// stage output.
func assertIdentical(t *testing.T, a, b Result) {
	t.Helper()
	if (a.Err == nil) != (b.Err == nil) {
		t.Fatalf("frame %d: error mismatch: %v vs %v", a.Index, a.Err, b.Err)
	}
	if a.Err != nil {
		return
	}
	for i := range a.Frame.Codes {
		if a.Frame.Codes[i] != b.Frame.Codes[i] {
			t.Fatalf("frame %d: capture code %d differs", a.Index, i)
		}
	}
	for i := range a.Compressed.Pix {
		if a.Compressed.Pix[i] != b.Compressed.Pix[i] {
			t.Fatalf("frame %d: compressed pixel %d differs: %g vs %g",
				a.Index, i, a.Compressed.Pix[i], b.Compressed.Pix[i])
		}
	}
	if (a.Processed == nil) != (b.Processed == nil) {
		t.Fatalf("frame %d: kernel output presence differs", a.Index)
	}
	if a.Processed != nil {
		for i := range a.Processed.Pix {
			if a.Processed.Pix[i] != b.Processed.Pix[i] {
				t.Fatalf("frame %d: kernel output pixel %d differs: %g vs %g",
					a.Index, i, a.Processed.Pix[i], b.Processed.Pix[i])
			}
		}
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("frame %d: MVM output %d differs: %g vs %g",
				a.Index, i, a.Output[i], b.Output[i])
		}
	}
}

// TestWorkersMatchSerial is the acceptance-criterion test: for every
// fidelity — including PhysicalNoisy — N-worker output is byte-identical
// to the 1-worker (serial) run under the same seed.
func TestWorkersMatchSerial(t *testing.T) {
	scenes := testScenes(12, 16, 16)
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.Physical, oc.PhysicalNoisy} {
		serial, _, err := newTestPipeline(t, fid, 1).Run(scenes)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			got, _, err := newTestPipeline(t, fid, workers).Run(scenes)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", fid, workers, err)
			}
			for i := range serial {
				assertIdentical(t, serial[i], got[i])
			}
		}
	}
}

// TestSeededBatchesReproducible pins the determinism guarantee for noisy
// batches: same seed, same bits; different seed, different bits.
func TestSeededBatchesReproducible(t *testing.T) {
	scenes := testScenes(6, 16, 16)
	run := func(seed int64) []Result {
		core, err := oc.NewCore(4, 4, oc.PhysicalNoisy)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			Rows: 16, Cols: 16, Workers: 4, Seed: seed,
			CAPool: 2, Weights: testWeights(4, 64), Core: core,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := p.Run(scenes)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(555), run(555)
	for i := range a {
		assertIdentical(t, a[i], b[i])
	}
	c := run(556)
	same := true
	for i := range a {
		for j := range a[i].Output {
			if a[i].Output[j] != c[i].Output[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different base seeds produced identical noisy batches")
	}
}

func TestStreamDeliversAllFrames(t *testing.T) {
	const n = 20
	scenes := testScenes(n, 16, 16)
	p := newTestPipeline(t, oc.Physical, 4)
	in := make(chan *sensor.Image)
	go func() {
		for _, s := range scenes {
			in <- s
		}
		close(in)
	}()
	seen := map[int]bool{}
	for res := range p.Stream(in) {
		if res.Err != nil {
			t.Fatalf("frame %d: %v", res.Index, res.Err)
		}
		if seen[res.Index] {
			t.Fatalf("frame %d delivered twice", res.Index)
		}
		seen[res.Index] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d frames, want %d", len(seen), n)
	}
	st := p.Stats()
	if st.Frames != n || st.FPS <= 0 {
		t.Errorf("stats: frames=%d fps=%g", st.Frames, st.FPS)
	}
}

// TestStreamMatchesRun checks the two entry points agree frame-by-frame.
func TestStreamMatchesRun(t *testing.T) {
	scenes := testScenes(8, 16, 16)
	batch, _, err := newTestPipeline(t, oc.PhysicalNoisy, 3).Run(scenes)
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPipeline(t, oc.PhysicalNoisy, 3)
	in := make(chan *sensor.Image, len(scenes))
	for _, s := range scenes {
		in <- s
	}
	close(in)
	for res := range p.Stream(in) {
		assertIdentical(t, batch[res.Index], res)
	}
}

// TestFrameErrorsDoNotAbort: a bad frame carries its error; the rest of
// the batch still processes.
func TestFrameErrorsDoNotAbort(t *testing.T) {
	scenes := testScenes(5, 16, 16)
	scenes[2] = sensor.NewImage(8, 8, 3) // wrong dimensions for the array
	p := newTestPipeline(t, oc.Ideal, 2)
	results, stats, err := p.Run(scenes)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 2 {
			if r.Err == nil {
				t.Error("mismatched frame did not error")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("frame %d: unexpected error %v", i, r.Err)
		}
	}
	if stats.Errors != 1 || stats.Frames != 5 {
		t.Errorf("stats: frames=%d errors=%d", stats.Frames, stats.Errors)
	}
}

func TestStatsHistograms(t *testing.T) {
	scenes := testScenes(10, 16, 16)
	_, st, err := newTestPipeline(t, oc.Physical, 2).Run(scenes)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*LatencyHist{&st.Capture, &st.Compress, &st.Kernel, &st.MatVec} {
		if h.Count != 10 {
			t.Errorf("histogram count %d, want 10", h.Count)
		}
		if h.Mean() <= 0 || h.Max < h.Min {
			t.Errorf("degenerate histogram: %s", h.String())
		}
		if q50, q99 := h.Quantile(0.5), h.Quantile(0.99); q50 > q99 {
			t.Errorf("p50 %v > p99 %v", q50, q99)
		}
	}
	if st.Render() == "" {
		t.Error("empty render")
	}
}

func TestLatencyHistMergeAndQuantile(t *testing.T) {
	var a, b LatencyHist
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
	}
	b.Observe(5 * time.Millisecond)
	a.Merge(b)
	if a.Count != 101 {
		t.Fatalf("merged count %d", a.Count)
	}
	if a.Max != 5*time.Millisecond || a.Min != time.Microsecond {
		t.Errorf("min/max %v/%v", a.Min, a.Max)
	}
	if q := a.Quantile(1); q != a.Max {
		t.Errorf("p100 %v != max %v", q, a.Max)
	}
	if q := a.Quantile(0.5); q < 32*time.Microsecond || q > 256*time.Microsecond {
		t.Errorf("p50 %v outside plausible bucket bounds", q)
	}
}

func TestConfigValidation(t *testing.T) {
	core, err := oc.NewCore(4, 4, oc.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero rows", Config{Cols: 16, CAPool: 2, Core: core}},
		{"no core", Config{Rows: 16, Cols: 16, CAPool: 2}},
		{"indivisible pool", Config{Rows: 16, Cols: 18, CAPool: 4, Core: core}},
		{"odd pool", Config{Rows: 16, Cols: 16, CAPool: 3, Core: core}},
		{"bad weight width", Config{Rows: 16, Cols: 16, CAPool: 2, Core: core, Weights: testWeights(2, 63)}},
	}
	kern, err := kernels.NewBlockConv(core, "edge", "", [][]float64{{1}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"kernel without CA", Config{Rows: 16, Cols: 16, Core: core, Kernel: kern}})
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := New(Config{Rows: 16, Cols: 16}); err != nil {
		t.Errorf("capture-only pipeline rejected: %v", err)
	}
}
