package pipeline

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket k
// holds observations in [2^k, 2^(k+1)) nanoseconds, which spans 1 ns to
// ~1 minute — more than any per-frame stage latency the simulator sees.
const histBuckets = 36

// LatencyHist is a fixed-size log2 latency histogram. It is cheap enough
// to update on every frame and coarse enough (one octave per bucket) to
// merge across workers without locks during the hot path.
type LatencyHist struct {
	Count   int
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [histBuckets]int
}

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	b := bits.Len64(uint64(d)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(d time.Duration) {
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	h.Buckets[bucketOf(d)]++
}

// Merge folds another histogram into this one (worker-local accumulators
// are merged once at the end of a run).
func (h *LatencyHist) Merge(o LatencyHist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
}

// Mean returns the average observed latency.
func (h *LatencyHist) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile returns an upper bound on the q-quantile latency (the top of
// the bucket the q-th observation falls in). q is clipped to [0, 1].
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(q * float64(h.Count-1))
	seen := 0
	for k, n := range h.Buckets {
		seen += n
		if seen > rank {
			upper := time.Duration(uint64(1) << uint(k+1))
			if upper > h.Max || h.Max == 0 {
				return h.Max
			}
			return upper
		}
	}
	return h.Max
}

// String renders a one-line summary.
func (h *LatencyHist) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v max=%v",
		h.Count, h.Mean().Round(time.Microsecond),
		h.Quantile(0.5).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max.Round(time.Microsecond))
}

// Stats aggregates a pipeline run: frame throughput plus a latency
// histogram per stage.
type Stats struct {
	// Frames is the number of frames that completed (with or without a
	// per-frame error).
	Frames int
	// Errors is how many of those carried a per-frame error.
	Errors int
	// Wall is the end-to-end wall time of the run.
	Wall time.Duration
	// FPS is Frames / Wall — the aggregate throughput across workers.
	FPS float64
	// Workers is the worker count the run used.
	Workers int
	// Capture, Compress, Kernel, Infer and MatVec are per-stage latency
	// histograms; stages that were not enabled have Count == 0.
	Capture  LatencyHist
	Compress LatencyHist
	Kernel   LatencyHist
	Infer    LatencyHist
	MatVec   LatencyHist
}

// StageReport is a JSON-marshalable latency summary of one stage, with
// quantiles resolved from the histogram (all durations in nanoseconds).
type StageReport struct {
	Count  int   `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Report resolves the histogram into a machine-readable summary.
func (h *LatencyHist) Report() StageReport {
	return StageReport{
		Count:  h.Count,
		MeanNS: int64(h.Mean()),
		P50NS:  int64(h.Quantile(0.5)),
		P99NS:  int64(h.Quantile(0.99)),
		MinNS:  int64(h.Min),
		MaxNS:  int64(h.Max),
	}
}

// StatsReport is the machine-readable counterpart of Stats, consumed by
// the serving layer's /metrics endpoint and lightator-bench -json. Stages
// that never ran report Count == 0.
type StatsReport struct {
	Frames   int         `json:"frames"`
	Errors   int         `json:"errors"`
	Workers  int         `json:"workers"`
	WallNS   int64       `json:"wall_ns"`
	FPS      float64     `json:"fps"`
	Capture  StageReport `json:"capture"`
	Compress StageReport `json:"compress"`
	Kernel   StageReport `json:"kernel"`
	Infer    StageReport `json:"infer"`
	MatVec   StageReport `json:"matvec"`
}

// Report exports the stats snapshot in machine-readable form.
func (s *Stats) Report() StatsReport {
	return StatsReport{
		Frames:   s.Frames,
		Errors:   s.Errors,
		Workers:  s.Workers,
		WallNS:   int64(s.Wall),
		FPS:      s.FPS,
		Capture:  s.Capture.Report(),
		Compress: s.Compress.Report(),
		Kernel:   s.Kernel.Report(),
		Infer:    s.Infer.Report(),
		MatVec:   s.MatVec.Report(),
	}
}

// merge folds a worker-local accumulator into the run totals.
func (s *Stats) merge(o *Stats) {
	s.Frames += o.Frames
	s.Errors += o.Errors
	s.Capture.Merge(o.Capture)
	s.Compress.Merge(o.Compress)
	s.Kernel.Merge(o.Kernel)
	s.Infer.Merge(o.Infer)
	s.MatVec.Merge(o.MatVec)
}

// Render returns a human-readable multi-line summary.
func (s *Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %d frames, %d workers, %v wall, %.1f frames/sec",
		s.Frames, s.Workers, s.Wall.Round(time.Millisecond), s.FPS)
	if s.Errors > 0 {
		fmt.Fprintf(&b, " (%d frame errors)", s.Errors)
	}
	for _, st := range []struct {
		name string
		h    *LatencyHist
	}{{"capture", &s.Capture}, {"compress", &s.Compress}, {"kernel", &s.Kernel}, {"infer", &s.Infer}, {"matvec", &s.MatVec}} {
		if st.h.Count > 0 {
			fmt.Fprintf(&b, "\n  %-8s %s", st.name, st.h.String())
		}
	}
	return b.String()
}
