package pipeline

import (
	"sort"
	"testing"

	"lightator/internal/oc"
)

// TestStreamSeededMatchesRunSeeded: the session-layer entry point must
// produce exactly the per-frame results RunSeeded would for the same
// seed list — at any worker count, in every fidelity, with the stream
// arriving incrementally rather than as a batch.
func TestStreamSeededMatchesRunSeeded(t *testing.T) {
	const frames = 12
	scenes := testScenes(frames, 16, 16)
	for _, fid := range []oc.Fidelity{oc.Ideal, oc.Physical, oc.PhysicalNoisy} {
		for _, workers := range []int{1, 4} {
			t.Run(fid.String(), func(t *testing.T) {
				seeded := make([]SeededScene, frames)
				for i := range seeded {
					seeded[i] = SeededScene{Seed: oc.DeriveSeed(777, i), Scene: scenes[i]}
				}
				want, _, err := newTestPipeline(t, fid, 1).RunSeeded(seeded)
				if err != nil {
					t.Fatal(err)
				}

				p := newTestPipeline(t, fid, workers)
				in := make(chan SeededScene)
				go func() {
					defer close(in)
					for _, s := range seeded {
						in <- s
					}
				}()
				got := make([]Result, 0, frames)
				for r := range p.StreamSeeded(in) {
					got = append(got, r)
				}
				if len(got) != frames {
					t.Fatalf("streamed %d results, want %d", len(got), frames)
				}
				sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
				for i := range got {
					if got[i].Index != i {
						t.Fatalf("result %d has index %d", i, got[i].Index)
					}
					assertIdentical(t, want[i], got[i])
				}
			})
		}
	}
}

// TestStreamSeededEmpty: closing the input without feeding any frames
// must close the output without deadlock.
func TestStreamSeededEmpty(t *testing.T) {
	p := newTestPipeline(t, oc.Ideal, 2)
	in := make(chan SeededScene)
	close(in)
	if _, ok := <-p.StreamSeeded(in); ok {
		t.Fatal("expected no results from an empty stream")
	}
}
