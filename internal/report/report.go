// Package report renders experiment results as aligned text tables,
// log-scale ASCII bar charts and CSV — the output layer for regenerating
// the paper's tables and figures on a terminal.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes for cells
// containing commas).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// BarItem is one bar of a chart.
type BarItem struct {
	Label string
	Value float64
}

// BarChart renders labelled horizontal bars, optionally on a log10 axis
// (the paper's Figs. 8-10 all use log-scale power/time axes).
type BarChart struct {
	Title string
	Unit  string
	Log   bool
	Width int
	Items []BarItem
}

// Add appends a bar.
func (c *BarChart) Add(label string, value float64) {
	c.Items = append(c.Items, BarItem{Label: label, Value: value})
}

// Render draws the chart.
func (c *BarChart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	if len(c.Items) == 0 {
		return b.String()
	}
	labW := 0
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, it := range c.Items {
		if len(it.Label) > labW {
			labW = len(it.Label)
		}
		if it.Value > 0 && it.Value < minV {
			minV = it.Value
		}
		if it.Value > maxV {
			maxV = it.Value
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	if math.IsInf(minV, 1) {
		minV = maxV / 10
	}
	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		if !c.Log {
			return int(math.Round(v / maxV * float64(width)))
		}
		lo := math.Log10(minV) - 0.5
		hi := math.Log10(maxV)
		if hi <= lo {
			return width
		}
		n := int(math.Round((math.Log10(v) - lo) / (hi - lo) * float64(width)))
		if n < 1 {
			n = 1
		}
		return n
	}
	for _, it := range c.Items {
		fmt.Fprintf(&b, "%-*s |%-*s %.4g %s\n", labW, it.Label, width, strings.Repeat("#", scale(it.Value)), it.Value, c.Unit)
	}
	return b.String()
}

// FormatSI renders a value with an SI prefix (e.g. 2.71 -> "2.71",
// 0.00264 -> "2.64m").
func FormatSI(v float64, digits int) string {
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return "0"
	case abs >= 1e9:
		return fmt.Sprintf("%.*fG", digits, v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.*fM", digits, v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.*fk", digits, v/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.*f", digits, v)
	case abs >= 1e-3:
		return fmt.Sprintf("%.*fm", digits, v*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.*fu", digits, v*1e6)
	case abs >= 1e-9:
		return fmt.Sprintf("%.*fn", digits, v*1e9)
	default:
		return fmt.Sprintf("%.*g", digits, v)
	}
}
