package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"a", "long-header", "c"}}
	tb.AddRow("1", "2")
	tb.AddRow("wide-cell", "3", "4")
	out := tb.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	// All data lines equal width (aligned columns).
	if len(lines[1]) != len(lines[2]) {
		t.Error("header and separator widths differ")
	}
	if !strings.Contains(lines[3], "1") || !strings.Contains(lines[4], "wide-cell") {
		t.Error("row content lost")
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"x", "y"}}
	tb.AddRow(`has "quote"`, "a,b")
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quote"""`) {
		t.Errorf("quote escaping broken: %q", csv)
	}
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma quoting broken: %q", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("header row broken: %q", csv)
	}
}

func TestBarChartLinearAndLog(t *testing.T) {
	lin := BarChart{Title: "t", Unit: "W", Width: 20}
	lin.Add("small", 1)
	lin.Add("big", 10)
	out := lin.Render()
	if !strings.Contains(out, "t") || !strings.Contains(out, "W") {
		t.Error("missing title or unit")
	}
	smallBars := strings.Count(strings.Split(out, "\n")[1], "#")
	bigBars := strings.Count(strings.Split(out, "\n")[2], "#")
	if bigBars <= smallBars {
		t.Error("linear chart not monotone")
	}
	// Log chart compresses the ratio but keeps order.
	logc := BarChart{Log: true, Width: 20}
	logc.Add("a", 0.001)
	logc.Add("b", 1000)
	lout := logc.Render()
	la := strings.Count(strings.Split(lout, "\n")[0], "#")
	lb := strings.Count(strings.Split(lout, "\n")[1], "#")
	if lb <= la {
		t.Error("log chart not monotone")
	}
	if la < 1 {
		t.Error("log chart should give the smallest positive value at least one mark")
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	c := BarChart{Title: "empty"}
	if out := c.Render(); !strings.Contains(out, "empty") {
		t.Error("empty chart lost title")
	}
	z := BarChart{}
	z.Add("zero", 0)
	if out := z.Render(); !strings.Contains(out, "zero") {
		t.Error("zero bar lost label")
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.71:    "2.71",
		2640:    "2.64k",
		2.64e-3: "2.64m",
		4.7e-6:  "4.70u",
		3.1e-9:  "3.10n",
		5.2e9:   "5.20G",
		8.4e6:   "8.40M",
	}
	for in, want := range cases {
		if got := FormatSI(in, 2); got != want {
			t.Errorf("FormatSI(%g) = %q, want %q", in, got, want)
		}
	}
}
