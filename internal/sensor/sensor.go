// Package sensor implements Lightator's ADC-less imager: a 256x256
// global-shutter RGB image sensor with a Bayer colour-filter mosaic, whose
// pixels are read by the CRC comparator banks of package analog instead of
// conventional column ADCs (paper §3, "ADC-Less Imager").
package sensor

import (
	"fmt"

	"lightator/internal/analog"
)

// Image is a dense H x W x C image with float64 samples in [0, 1],
// channel-interleaved (C fastest). C is 1 for grayscale or 3 for RGB.
type Image struct {
	H, W, C int
	Pix     []float64
}

// NewImage allocates a zeroed image.
func NewImage(h, w, c int) *Image {
	return &Image{H: h, W: w, C: c, Pix: make([]float64, h*w*c)}
}

// At returns the sample at row y, column x, channel c.
func (im *Image) At(y, x, c int) float64 {
	return im.Pix[(y*im.W+x)*im.C+c]
}

// Set writes the sample at row y, column x, channel c, clipping to [0,1].
func (im *Image) Set(y, x, c int, v float64) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	im.Pix[(y*im.W+x)*im.C+c] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.H, im.W, im.C)
	copy(out.Pix, im.Pix)
	return out
}

// Grayscale returns the ITU-R BT.601 luma of an RGB image — the same
// coefficients the Compressive Acquisitor maps onto its MRs:
// 0.299 R + 0.587 G + 0.114 B.
func (im *Image) Grayscale() (*Image, error) {
	if im.C == 1 {
		return im.Clone(), nil
	}
	if im.C != 3 {
		return nil, fmt.Errorf("sensor: grayscale needs 1 or 3 channels, have %d", im.C)
	}
	out := NewImage(im.H, im.W, 1)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			g := 0.299*im.At(y, x, 0) + 0.587*im.At(y, x, 1) + 0.114*im.At(y, x, 2)
			out.Set(y, x, 0, g)
		}
	}
	return out, nil
}

// BayerChannel identifies which colour filter covers a pixel site in the
// RGGB mosaic of Fig. 2.
type BayerChannel int

const (
	BayerR BayerChannel = 0
	BayerG BayerChannel = 1
	BayerB BayerChannel = 2
)

// BayerChannelAt returns the colour filter at pixel (y, x) for an RGGB
// pattern: even row: R G R G..., odd row: G B G B...
func BayerChannelAt(y, x int) BayerChannel {
	if y%2 == 0 {
		if x%2 == 0 {
			return BayerR
		}
		return BayerG
	}
	if x%2 == 0 {
		return BayerG
	}
	return BayerB
}

// Mosaic samples an RGB scene through the RGGB colour-filter array,
// producing the single-plane raw frame the sensor actually captures.
func Mosaic(scene *Image) (*Image, error) {
	if scene.C != 3 {
		return nil, fmt.Errorf("sensor: mosaic needs an RGB scene, have %d channels", scene.C)
	}
	raw := NewImage(scene.H, scene.W, 1)
	for y := 0; y < scene.H; y++ {
		for x := 0; x < scene.W; x++ {
			raw.Set(y, x, 0, scene.At(y, x, int(BayerChannelAt(y, x))))
		}
	}
	return raw, nil
}

// Array is the 256x256 global-shutter pixel array plus its readout chain.
// Expose captures the whole frame in one shutter event (global shutter:
// every pixel integrates over the same interval), and ReadFrame converts
// pixel voltages to 4-bit codes through the per-column CRC units.
type Array struct {
	Rows, Cols int
	PD         analog.Photodiode
	CRC        *analog.CRC

	vpd []float64 // latched pixel voltages from the last exposure
}

// DefaultRows/DefaultCols are the paper's sensor dimensions.
const (
	DefaultRows = 256
	DefaultCols = 256
)

// NewArray builds a sensor array with default pixel and CRC models.
func NewArray(rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sensor: invalid array size %dx%d", rows, cols)
	}
	return &Array{
		Rows: rows,
		Cols: cols,
		PD:   analog.DefaultPhotodiode(),
		CRC:  analog.DefaultCRC(),
		vpd:  make([]float64, rows*cols),
	}, nil
}

// Default returns the paper's 256x256 array.
func Default() *Array {
	a, err := NewArray(DefaultRows, DefaultCols)
	if err != nil {
		panic(err) // unreachable: constant dimensions are valid
	}
	return a
}

// Clone returns an array sharing this one's device models (the PD and
// CRC are read-only after construction) but with its own exposure latch,
// so clones can capture concurrently. Capture mutates the latched pixel
// voltages, which is why a single Array must not be shared between
// goroutines — each pipeline worker clones its own.
func (a *Array) Clone() *Array {
	return &Array{
		Rows: a.Rows,
		Cols: a.Cols,
		PD:   a.PD,
		CRC:  a.CRC,
		vpd:  make([]float64, a.Rows*a.Cols),
	}
}

// Expose latches V_PD for every pixel from a raw (mosaicked, single-plane)
// frame. The scene must match the array dimensions.
func (a *Array) Expose(raw *Image) error {
	if raw.C != 1 {
		return fmt.Errorf("sensor: expose needs a raw single-plane frame, have %d channels", raw.C)
	}
	if raw.H != a.Rows || raw.W != a.Cols {
		return fmt.Errorf("sensor: frame %dx%d does not match array %dx%d", raw.H, raw.W, a.Rows, a.Cols)
	}
	for y := 0; y < a.Rows; y++ {
		for x := 0; x < a.Cols; x++ {
			a.vpd[y*a.Cols+x] = a.PD.Voltage(raw.At(y, x, 0))
		}
	}
	return nil
}

// ExposeRGB mosaics an RGB scene through the Bayer filter and exposes it.
// The mosaic is fused into the exposure loop — each site reads its Bayer
// channel straight from the scene (exactly Mosaic's per-site selection)
// without materializing the intermediate raw plane, since Capture runs
// once per pipeline frame.
func (a *Array) ExposeRGB(scene *Image) error {
	if scene.C != 3 {
		return fmt.Errorf("sensor: mosaic needs an RGB scene, have %d channels", scene.C)
	}
	if scene.H != a.Rows || scene.W != a.Cols {
		return fmt.Errorf("sensor: frame %dx%d does not match array %dx%d", scene.H, scene.W, a.Rows, a.Cols)
	}
	for y := 0; y < a.Rows; y++ {
		rowBase := y * a.Cols
		for x := 0; x < a.Cols; x++ {
			// Clip to [0,1] exactly as the materialized path did via
			// Image.Set (the Bayer filter cannot emit over-range light).
			v := scene.Pix[(rowBase+x)*3+int(BayerChannelAt(y, x))]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			a.vpd[rowBase+x] = a.PD.Voltage(v)
		}
	}
	return nil
}

// Voltage returns the latched V_PD at pixel (y, x).
func (a *Array) Voltage(y, x int) float64 {
	return a.vpd[y*a.Cols+x]
}

// Frame is a readout result: 4-bit codes per pixel plus the Bayer layout
// so downstream stages know which colour each site carries.
type Frame struct {
	Rows, Cols int
	Codes      []uint8
}

// CodeAt returns the 4-bit code at (y, x).
func (f *Frame) CodeAt(y, x int) uint8 {
	return f.Codes[y*f.Cols+x]
}

// Intensity returns the code at (y, x) normalised to [0, 1].
func (f *Frame) Intensity(y, x int) float64 {
	return float64(f.CodeAt(y, x)) / float64(analog.NumComparators)
}

// ReadFrame converts every latched pixel voltage into its 4-bit CRC code.
// This is the ADC-less readout: 15 comparisons per pixel, no ADC ramp, no
// sense amplifiers.
func (a *Array) ReadFrame() *Frame {
	f := &Frame{Rows: a.Rows, Cols: a.Cols, Codes: make([]uint8, a.Rows*a.Cols)}
	for i, v := range a.vpd {
		f.Codes[i] = uint8(a.CRC.Code(v))
	}
	return f
}

// Capture is the convenience path: mosaic, expose and read an RGB scene.
func (a *Array) Capture(scene *Image) (*Frame, error) {
	if err := a.ExposeRGB(scene); err != nil {
		return nil, err
	}
	return a.ReadFrame(), nil
}

// ComparisonsPerFrame returns the number of comparator evaluations one
// full-frame readout performs — the activity factor the energy model uses.
func (a *Array) ComparisonsPerFrame() int {
	return a.Rows * a.Cols * analog.NumComparators
}
