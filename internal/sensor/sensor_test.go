package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"lightator/internal/analog"
)

func TestImageSetAtClipping(t *testing.T) {
	im := NewImage(4, 4, 3)
	im.Set(1, 2, 0, 0.5)
	if im.At(1, 2, 0) != 0.5 {
		t.Fatal("round trip failed")
	}
	im.Set(0, 0, 1, -0.5)
	if im.At(0, 0, 1) != 0 {
		t.Error("negative not clipped")
	}
	im.Set(0, 0, 2, 1.5)
	if im.At(0, 0, 2) != 1 {
		t.Error("over-range not clipped")
	}
}

func TestImageClone(t *testing.T) {
	im := NewImage(2, 2, 1)
	im.Set(0, 0, 0, 0.7)
	cp := im.Clone()
	cp.Set(0, 0, 0, 0.1)
	if im.At(0, 0, 0) != 0.7 {
		t.Error("clone aliased the original")
	}
}

func TestGrayscaleCoefficients(t *testing.T) {
	im := NewImage(1, 3, 3)
	// Pure R, G, B pixels.
	im.Set(0, 0, 0, 1)
	im.Set(0, 1, 1, 1)
	im.Set(0, 2, 2, 1)
	g, err := im.Grayscale()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0.299, 0.587, 0.114} {
		if math.Abs(g.At(0, i, 0)-want) > 1e-12 {
			t.Errorf("channel %d luma %g, want %g", i, g.At(0, i, 0), want)
		}
	}
	// Grayscale of grayscale is identity.
	g2, err := g.Grayscale()
	if err != nil {
		t.Fatal(err)
	}
	if g2.At(0, 0, 0) != g.At(0, 0, 0) {
		t.Error("grayscale of single-channel image changed values")
	}
}

func TestBayerPatternRGGB(t *testing.T) {
	// 2x2 super-pixel: R G / G B.
	if BayerChannelAt(0, 0) != BayerR {
		t.Error("(0,0) not R")
	}
	if BayerChannelAt(0, 1) != BayerG {
		t.Error("(0,1) not G")
	}
	if BayerChannelAt(1, 0) != BayerG {
		t.Error("(1,0) not G")
	}
	if BayerChannelAt(1, 1) != BayerB {
		t.Error("(1,1) not B")
	}
	// Period 2 in both directions.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if BayerChannelAt(y, x) != BayerChannelAt(y+2, x) || BayerChannelAt(y, x) != BayerChannelAt(y, x+2) {
				t.Fatalf("pattern not periodic at (%d,%d)", y, x)
			}
		}
	}
	// Green sites are half of all sites.
	greens := 0
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if BayerChannelAt(y, x) == BayerG {
				greens++
			}
		}
	}
	if greens != 128 {
		t.Errorf("green sites %d, want 128 of 256", greens)
	}
}

func TestMosaicSelectsChannel(t *testing.T) {
	scene := NewImage(4, 4, 3)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			scene.Set(y, x, 0, 0.9) // R
			scene.Set(y, x, 1, 0.5) // G
			scene.Set(y, x, 2, 0.1) // B
		}
	}
	raw, err := Mosaic(scene)
	if err != nil {
		t.Fatal(err)
	}
	want := map[BayerChannel]float64{BayerR: 0.9, BayerG: 0.5, BayerB: 0.1}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if raw.At(y, x, 0) != want[BayerChannelAt(y, x)] {
				t.Fatalf("site (%d,%d) value %g", y, x, raw.At(y, x, 0))
			}
		}
	}
	if _, err := Mosaic(NewImage(2, 2, 1)); err == nil {
		t.Error("mosaic of non-RGB accepted")
	}
}

func TestArrayDefaultDimensions(t *testing.T) {
	a := Default()
	if a.Rows != 256 || a.Cols != 256 {
		t.Fatalf("default array %dx%d, want 256x256", a.Rows, a.Cols)
	}
	if a.ComparisonsPerFrame() != 256*256*15 {
		t.Errorf("comparisons per frame %d", a.ComparisonsPerFrame())
	}
}

func TestArrayValidation(t *testing.T) {
	if _, err := NewArray(0, 10); err == nil {
		t.Error("zero rows accepted")
	}
	a, _ := NewArray(4, 4)
	if err := a.Expose(NewImage(4, 4, 3)); err == nil {
		t.Error("RGB frame accepted by Expose")
	}
	if err := a.Expose(NewImage(8, 8, 1)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCaptureBrightnessMapping(t *testing.T) {
	a, _ := NewArray(8, 8)
	scene := NewImage(8, 8, 3)
	// Left half dark, right half bright (all channels equal so the Bayer
	// mosaic is irrelevant).
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := 0.0
			if x >= 4 {
				v = 1.0
			}
			for c := 0; c < 3; c++ {
				scene.Set(y, x, c, v)
			}
		}
	}
	f, err := a.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 4; x++ {
			if f.CodeAt(y, x) != 0 {
				t.Errorf("dark pixel (%d,%d) code %d", y, x, f.CodeAt(y, x))
			}
		}
		for x := 4; x < 8; x++ {
			if f.CodeAt(y, x) != analog.NumComparators {
				t.Errorf("bright pixel (%d,%d) code %d", y, x, f.CodeAt(y, x))
			}
		}
	}
	if f.Intensity(0, 7) != 1 {
		t.Errorf("bright intensity %g, want 1", f.Intensity(0, 7))
	}
}

// Property: quantisation error of the full capture chain never exceeds
// one CRC LSB for any mid-gray scene.
func TestCaptureQuantisationProperty(t *testing.T) {
	a, _ := NewArray(2, 2)
	f := func(v float64) bool {
		in := math.Mod(math.Abs(v), 1)
		scene := NewImage(2, 2, 3)
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				for c := 0; c < 3; c++ {
					scene.Set(y, x, c, in)
				}
			}
		}
		fr, err := a.Capture(scene)
		if err != nil {
			return false
		}
		rec := fr.Intensity(0, 0)
		return math.Abs(rec-in) <= 1.0/15+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalShutterLatching(t *testing.T) {
	a, _ := NewArray(2, 2)
	scene := NewImage(2, 2, 3)
	for c := 0; c < 3; c++ {
		scene.Set(0, 0, c, 1)
	}
	if err := a.ExposeRGB(scene); err != nil {
		t.Fatal(err)
	}
	v := a.Voltage(0, 0)
	// Mutating the scene after exposure must not change latched voltages
	// (global shutter semantics).
	for c := 0; c < 3; c++ {
		scene.Set(0, 0, c, 0)
	}
	if a.Voltage(0, 0) != v {
		t.Error("latched voltage changed after exposure")
	}
}
