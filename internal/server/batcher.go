package server

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lightator/internal/pipeline"
	"lightator/internal/sensor"
)

// Admission-control sentinels. They are typed apiErrors (compared by
// pointer identity via errors.Is) so handlers get status and code along
// with the sentinel.
var (
	// errOverloaded means the bounded submission queue was full (429).
	errOverloaded = apiErr(http.StatusTooManyRequests, CodeOverloaded, "overloaded, request queue full")
	// errDraining means the server is shutting down (503).
	errDraining = apiErr(http.StatusServiceUnavailable, CodeDraining, "draining, not accepting new work")
)

// batchItem is one request's trip through the micro-batcher.
type batchItem struct {
	seed  int64
	scene *sensor.Image
	// done receives exactly one Result. It is buffered, so delivery never
	// blocks a flush on a departed client.
	done chan pipeline.Result
}

// batcher coalesces single-frame submissions into pipeline batches. A
// collector goroutine accumulates items and flushes when the batch fills
// (size trigger) or when BatchDelay has elapsed since the batch's first
// item (deadline trigger) — the classic dynamic micro-batching policy.
// Flushes run on their own goroutines, bounded by a slot semaphore, so
// the collector keeps admitting while a batch is in the pipeline.
//
// Every frame carries its own seed into pipeline.RunSeeded, so which
// requests happen to share a batch can never change any response — the
// property the serving determinism contract rests on.
type batcher struct {
	pipe  *pipeline.Pipeline
	size  int
	delay time.Duration
	m     *metrics

	in    chan batchItem
	slots chan struct{} // limits concurrent in-flight flushes

	// parked gauges the collector's currently-accumulating batch (frames
	// admitted but not yet dispatched) for the observability layer.
	parked atomic.Int64

	// mu orders submissions against shutdown: close() flips closed under
	// the write lock, so once it proceeds no submit can still be mid-
	// enqueue and the final drain sweep is guaranteed to see every
	// admitted item.
	mu       sync.RWMutex
	closed   bool
	quit     chan struct{} // closed by close(): collector flushes and exits
	done     chan struct{} // closed by the collector on exit
	flushing sync.WaitGroup
}

// newBatcher starts the collector. queue bounds admission; maxFlights
// bounds concurrent pipeline batches.
func newBatcher(pipe *pipeline.Pipeline, size, queue, maxFlights int, delay time.Duration, m *metrics) *batcher {
	b := &batcher{
		pipe:  pipe,
		size:  size,
		delay: delay,
		m:     m,
		in:    make(chan batchItem, queue),
		slots: make(chan struct{}, maxFlights),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go b.collect()
	return b
}

// submit enqueues one item without blocking; a full queue is an overload.
func (b *batcher) submit(it batchItem) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return errDraining
	}
	select {
	case b.in <- it:
		return nil
	default:
		return errOverloaded
	}
}

// collect is the batching loop. It never processes frames itself: full
// batches are handed to dispatch, which runs them on a flush goroutine.
func (b *batcher) collect() {
	defer close(b.done)
	for {
		// Wait for the batch's first item; its arrival starts the clock.
		var first batchItem
		select {
		case first = <-b.in:
		case <-b.quit:
			b.drainRemaining()
			return
		}
		batch := []batchItem{first}
		b.parked.Store(1)
		timer := time.NewTimer(b.delay)
		trigger := flushDeadline
	collecting:
		for len(batch) < b.size {
			select {
			case it := <-b.in:
				batch = append(batch, it)
				b.parked.Store(int64(len(batch)))
			case <-timer.C:
				break collecting
			case <-b.quit:
				trigger = flushDrain
				break collecting
			}
		}
		if len(batch) == b.size {
			trigger = flushSize
		}
		timer.Stop()
		b.parked.Store(0)
		b.dispatch(batch, trigger)
		select {
		case <-b.quit:
			b.drainRemaining()
			return
		default:
		}
	}
}

// drainRemaining flushes whatever is still queued at shutdown so every
// admitted request gets its response before Drain returns.
func (b *batcher) drainRemaining() {
	var batch []batchItem
	for {
		select {
		case it := <-b.in:
			batch = append(batch, it)
			if len(batch) == b.size {
				b.dispatch(batch, flushDrain)
				batch = nil
			}
		default:
			if len(batch) > 0 {
				b.dispatch(batch, flushDrain)
			}
			return
		}
	}
}

// dispatch runs one batch through the pipeline on its own goroutine,
// bounded by the flight slots, and delivers each frame's result.
func (b *batcher) dispatch(batch []batchItem, trigger flushTrigger) {
	b.slots <- struct{}{}
	b.flushing.Add(1)
	go func() {
		defer func() {
			<-b.slots
			b.flushing.Done()
		}()
		b.m.flush(len(batch), trigger)
		jobs := make([]pipeline.SeededScene, len(batch))
		for i, it := range batch {
			jobs[i] = pipeline.SeededScene{Seed: it.seed, Scene: it.scene}
		}
		results, _, err := b.pipe.RunSeeded(jobs)
		if err != nil {
			for _, it := range batch {
				it.done <- pipeline.Result{Err: err}
			}
			return
		}
		for i, it := range batch {
			it.done <- results[i]
		}
	}()
}

// queueDepth gauges admitted-but-uncollected frames (channel backlog).
func (b *batcher) queueDepth() int { return len(b.in) }

// load gauges queue fullness in [0,1] — the tiered shedder's input.
func (b *batcher) load() float64 { return float64(len(b.in)) / float64(cap(b.in)) }

// inflightBatches gauges pipeline batches currently executing.
func (b *batcher) inflightBatches() int { return len(b.slots) }

// occupancy gauges the collector's accumulating (parked) batch size.
func (b *batcher) occupancy() int { return int(b.parked.Load()) }

// close stops admission, flushes everything already queued, and waits for
// in-flight flushes, so every admitted request has its response delivered
// before close returns. Safe to call once.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	<-b.done
	b.flushing.Wait()
}
