package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// responseCache is a content-addressed LRU over marshaled response bodies.
// Keys hash the full request content (endpoint, seed, raw sample bytes),
// so a hit replays the exact bytes a fresh computation would produce —
// safe only because every cached endpoint is deterministic in its key
// (the server skips the cache for noisy compress/matvec; see Server).
//
// Eviction is double-bounded: by entry count and by total body bytes,
// because bodies are client-sized (a matvec response can be megabytes) —
// an entry-count bound alone would let a few hundred large responses pin
// unbounded memory.
type responseCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int
	bytes    int
	ll       *list.List // front = most recently used
	items    map[cacheKey]*list.Element
}

// cacheMaxBytes bounds the total cached body bytes regardless of the
// entry cap.
const cacheMaxBytes = 64 << 20

type cacheKey [sha256.Size]byte

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newResponseCache returns nil when capacity <= 0 (cache disabled); the
// nil receiver is safe on every method.
func newResponseCache(capacity int) *responseCache {
	if capacity <= 0 {
		return nil
	}
	return &responseCache{
		cap:      capacity,
		maxBytes: cacheMaxBytes,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// hashRequest builds a cache key from an endpoint tag, the effective seed
// and the request's content bytes.
func hashRequest(endpoint string, seed int64, parts ...[]byte) cacheKey {
	h := sha256.New()
	h.Write([]byte(endpoint))
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], uint64(seed))
	h.Write(s[:])
	for _, p := range parts {
		// Length-prefix each part so concatenations can't collide.
		binary.LittleEndian.PutUint64(s[:], uint64(len(p)))
		h.Write(s[:])
		h.Write(p)
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// get returns the cached body and marks it most recently used.
func (c *responseCache) get(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts a body, evicting least recently used entries while either
// bound (entry count, total bytes) is exceeded. Bodies larger than the
// whole byte budget are not cached at all.
func (c *responseCache) put(key cacheKey, body []byte) {
	if c == nil || len(body) > cacheMaxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += len(body) - len(e.body)
		e.body = body
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += len(body)
	}
	for c.ll.Len() > c.cap || c.bytes > c.maxBytes {
		last := c.ll.Back()
		if last == nil {
			break
		}
		e := last.Value.(*cacheEntry)
		c.ll.Remove(last)
		delete(c.items, e.key)
		c.bytes -= len(e.body)
	}
}

// len reports the current entry count.
func (c *responseCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// capacity reports the configured entry bound (0 when disabled).
func (c *responseCache) capacity() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// sizeBytes reports the current total cached body bytes.
func (c *responseCache) sizeBytes() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
