// Chaos e2e: the serving stack under the committed fault plan
// (testdata/chaos_plan.json — the same plan docs/FAULTS.md walks
// through). The ladder's repairs depend on request arrival order, so
// these tests assert properties, not bytes: zero 500s, every persistent
// optical-core fault detected within one frame and recovered or degraded
// per the ladder, degraded responses correctly flagged on the wire, and
// byte-identity to a fault-free server when no fault is active. The
// comparator stuck-at in the plan is the documented ABFT-blind case
// (docs/FAULTS.md#taxonomy): it corrupts the sensor readout before the
// optical core, so no health assertion covers it — only the no-500 and
// no-corrupted-200 properties do.
package server_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lightator"
	"lightator/internal/server"
)

// chaosPlan loads the committed fault plan.
func chaosPlan(t *testing.T) *lightator.FaultPlan {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "chaos_plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := lightator.ParseFaultPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// chaosAccelerator builds the small test accelerator with a fault plan
// installed.
func chaosAccelerator(t *testing.T, fid lightator.Fidelity, plan *lightator.FaultPlan) *lightator.Accelerator {
	t.Helper()
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 32, 32
	cfg.Fidelity = fid
	cfg.FaultPlan = plan
	acc, err := lightator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// chaosMatVec builds a 32-row weight matrix (32 rows => ABFT stride 1,
// every apply checked) whose row 1 coefficient 0 sits far from the
// plan's stuck rail, plus a matching activation vector.
func chaosMatVec() ([][]float64, []float64) {
	const rows, cols = 32, 8
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = math.Sin(float64(r*cols+c+1)) * 0.8
		}
	}
	w[1][0] = -0.5
	x := make([]float64, cols)
	for j := range x {
		x[j] = 0.25 + 0.5*float64(j%3)/3
	}
	return w, x
}

// componentHealth finds one component's snapshot by label.
func componentHealth(t *testing.T, acc *lightator.Accelerator, label string) lightator.ComponentHealth {
	t.Helper()
	for _, h := range acc.Health() {
		if h.Label == label {
			return h
		}
	}
	t.Fatalf("component %q not in health snapshot %+v", label, acc.Health())
	return lightator.ComponentHealth{}
}

// TestChaosBurstNo500s is the headline chaos property: a concurrent
// mixed burst against a server running the committed plan produces zero
// HTTP 500s and zero undecodable 200 bodies, and afterwards every
// persistent optical-core fault in the plan has been detected and
// resolved per the ladder — the CA drift absorbed by recalibration, the
// stuck MVM coefficient retired to the digital fallback (degraded).
func TestChaosBurstNo500s(t *testing.T) {
	acc := chaosAccelerator(t, lightator.Physical, chaosPlan(t))
	_, ts := testServer(t, acc, lightator.ServeOptions{
		Workers: 2, BatchSize: 4, Queue: 64,
	})
	weights, acts := chaosMatVec()
	seed := int64(7)

	const perKind = 8
	var wg sync.WaitGroup
	post := func(i int, path string, req any, out any) {
		defer wg.Done()
		status, body := postJSON(t, ts.URL+path, req, out)
		if status >= http.StatusInternalServerError {
			t.Errorf("%s #%d: status %d under chaos: %s", path, i, status, body)
		}
	}
	for i := 0; i < perKind; i++ {
		s := lightator.EncodeImage(testScene(int64(100+i), 32, 32))
		sd := seed + int64(i)
		wg.Add(4)
		go post(i, "/v1/capture", lightator.NewCaptureRequest(s, &sd), &lightator.CaptureResponse{})
		go post(i, "/v1/compress", lightator.NewCompressRequest(s, &sd), &lightator.CompressResponse{})
		go post(i, "/v1/process", lightator.NewProcessRequest(s, "edge", &sd), &lightator.ProcessResponse{})
		go post(i, "/v1/matvec", server.MatVecRequest{Weights: weights, Activations: acts, Seed: &sd}, &lightator.MatVecResponse{})
	}
	wg.Wait()

	// Ladder outcomes, per docs/FAULTS.md: drift_coeff 0.03 on "ca" is
	// within the recalibration budget; stuck_coeff 0.95 on "mvm" row 1
	// is not, so that row retires and the component degrades. Both must
	// have been detected within the burst (CA checks are stride-sampled,
	// but one 32x32 frame is 256 window applies — well past one stride).
	ca := componentHealth(t, acc, "ca")
	if ca.Detections == 0 || ca.Recalibrations == 0 {
		t.Errorf("ca: detections=%d recalibrations=%d, want both > 0", ca.Detections, ca.Recalibrations)
	}
	if ca.RetiredRows != 0 {
		t.Errorf("ca: %d rows retired for an absorbable drift", ca.RetiredRows)
	}
	mvm := componentHealth(t, acc, "mvm")
	if mvm.Detections == 0 || mvm.RetiredRows == 0 || !mvm.Degraded {
		t.Errorf("mvm: detections=%d retired=%d degraded=%v, want detection and retirement", mvm.Detections, mvm.RetiredRows, mvm.Degraded)
	}

	// A sequential matvec against the now-degraded component must carry
	// the wire flag and the header — no silently-degraded 200s.
	reqBody, err := json.Marshal(server.MatVecRequest{Weights: weights, Activations: acts, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/matvec", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded matvec: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Lightator-Degraded") != "true" {
		t.Error("degraded matvec response missing X-Lightator-Degraded header")
	}
	var mv lightator.MatVecResponse
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatalf("decode degraded matvec response: %v", err)
	}
	if !mv.Degraded {
		t.Error("degraded matvec response missing degraded wire flag")
	}

	// /healthz reports the degradation with the failing component.
	var hz server.HealthzResponse
	if status, body := getJSON(t, ts.URL+"/healthz", &hz); status != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", status, body)
	}
	if hz.Status != "degraded" || !hz.Degraded {
		t.Errorf("healthz status %q degraded=%v, want degraded", hz.Status, hz.Degraded)
	}
	if !contains(hz.Failing, "mvm") {
		t.Errorf("healthz failing %v, want mvm listed", hz.Failing)
	}
}

// TestChaosTransientRetries drives the plan's windowed bit-flip on
// kernel:edge through /v1/process until it lands, and expects the
// bounded-retry tier to clear every detection — no retirement, no
// degradation, and no 500s.
func TestChaosTransientRetries(t *testing.T) {
	acc := chaosAccelerator(t, lightator.Physical, chaosPlan(t))
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 2, BatchSize: 4})
	s := lightator.EncodeImage(testScene(5, 32, 32))
	for i := 0; i < 12; i++ {
		sd := int64(40 + i)
		var pr lightator.ProcessResponse
		status, body := postJSON(t, ts.URL+"/v1/process", lightator.NewProcessRequest(s, "edge", &sd), &pr)
		if status != http.StatusOK {
			t.Fatalf("process #%d: status %d: %s", i, status, body)
		}
		if pr.Degraded {
			t.Fatalf("process #%d flagged degraded for a transient fault", i)
		}
	}
	k := componentHealth(t, acc, "kernel:edge")
	if k.Detections == 0 {
		t.Fatal("windowed bit-flip never landed in 12 frames of edge windows")
	}
	if k.RetrySuccesses != k.Detections {
		t.Fatalf("retries cleared %d of %d detections", k.RetrySuccesses, k.Detections)
	}
	if k.RetiredRows != 0 || k.Degraded {
		t.Fatal("transient fault must not retire or degrade")
	}
}

// TestChaosInactiveFaultByteIdentity pins the no-fault half of the
// contract: a server whose plan compiles real injection hooks that never
// activate (zero-duty windows, unmatched targets) answers byte-for-byte
// identically to a server with no plan at all — fault *machinery* being
// armed changes nothing until a fault fires.
func TestChaosInactiveFaultByteIdentity(t *testing.T) {
	inactive := &lightator.FaultPlan{Name: "inactive", Faults: []lightator.Fault{
		{Kind: "stuck_coeff", Target: "*", Row: 0, Value: 0.9,
			Window: lightator.FaultWindow{Period: 7, Duty: 0}},
		{Kind: "bit_flip", Target: "ca", Row: 0, Value: 0.5,
			Window: lightator.FaultWindow{Period: 3, Duty: 0, Salt: 4}},
		{Kind: "comparator_stuck", Target: "sensor", Col: 3, Value: 1,
			Window: lightator.FaultWindow{Period: 5, Duty: 0}},
		{Kind: "drift_coeff", Target: "kernel:no-such-kernel", Row: 0, Value: 0.1},
	}}
	for _, fid := range []lightator.Fidelity{lightator.Physical, lightator.PhysicalNoisy} {
		t.Run(fid.String(), func(t *testing.T) {
			_, plain := testServer(t, testAccelerator(t, fid), lightator.ServeOptions{Workers: 2, BatchSize: 4})
			_, armed := testServer(t, chaosAccelerator(t, fid, inactive), lightator.ServeOptions{Workers: 2, BatchSize: 4})
			scene := lightator.EncodeImage(testScene(9, 32, 32))
			seed := int64(21)
			weights, acts := chaosMatVec()
			for _, rq := range []struct {
				path string
				req  any
			}{
				{"/v1/capture", lightator.NewCaptureRequest(scene, &seed)},
				{"/v1/compress", lightator.NewCompressRequest(scene, &seed)},
				{"/v1/process", lightator.NewProcessRequest(scene, "edge", &seed)},
				{"/v1/matvec", server.MatVecRequest{Weights: weights, Activations: acts, Seed: &seed}},
			} {
				st1, want := postJSON(t, plain.URL+rq.path, rq.req, nil)
				st2, got := postJSON(t, armed.URL+rq.path, rq.req, nil)
				if st1 != http.StatusOK || st2 != http.StatusOK {
					t.Fatalf("%s: status plain=%d armed=%d", rq.path, st1, st2)
				}
				if string(want) != string(got) {
					t.Errorf("%s: armed-but-inactive plan changed bytes:\n plain %s\n armed %s", rq.path, want, got)
				}
			}
		})
	}
}

// TestChaosRejectDegraded covers the strict serving policy: with
// RejectDegraded set, the request that trips the fault is still served
// (flagged), and every compute request after the component degrades is
// refused with 503 degraded_unavailable — while /healthz keeps
// answering so operators can see why.
func TestChaosRejectDegraded(t *testing.T) {
	plan := &lightator.FaultPlan{Name: "stuck-mvm", Faults: []lightator.Fault{
		{Kind: "stuck_coeff", Target: "mvm", Row: 1, Value: 0.95},
	}}
	acc := chaosAccelerator(t, lightator.Physical, plan)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 2, BatchSize: 4, RejectDegraded: true})
	weights, acts := chaosMatVec()
	seed := int64(3)
	req := server.MatVecRequest{Weights: weights, Activations: acts, Seed: &seed}

	var mv lightator.MatVecResponse
	status, body := postJSON(t, ts.URL+"/v1/matvec", req, &mv)
	if status != http.StatusOK {
		t.Fatalf("first matvec: status %d: %s", status, body)
	}
	if !mv.Degraded {
		t.Error("fault-tripping matvec not flagged degraded")
	}

	status, body = postJSON(t, ts.URL+"/v1/matvec", req, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("matvec after degradation: status %d, want 503: %s", status, body)
	}
	assertErrShape(t, body, "degraded_unavailable")

	var hz server.HealthzResponse
	if status, body := getJSON(t, ts.URL+"/healthz", &hz); status != http.StatusOK || !hz.Degraded {
		t.Fatalf("healthz under RejectDegraded: status %d degraded %v: %s", status, hz.Degraded, body)
	}
}

// TestChaosSessionDegradedFlag checks the streaming path: once any
// component degrades, session frame results carry the degraded flag.
func TestChaosSessionDegradedFlag(t *testing.T) {
	plan := &lightator.FaultPlan{Name: "stuck-mvm", Faults: []lightator.Fault{
		{Kind: "stuck_coeff", Target: "mvm", Row: 1, Value: 0.95},
	}}
	acc := chaosAccelerator(t, lightator.Physical, plan)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 2, BatchSize: 4})
	weights, acts := chaosMatVec()
	seed := int64(3)
	if status, body := postJSON(t, ts.URL+"/v1/matvec",
		server.MatVecRequest{Weights: weights, Activations: acts, Seed: &seed}, nil); status != http.StatusOK {
		t.Fatalf("trip matvec: status %d: %s", status, body)
	}
	if !acc.Degraded() {
		t.Fatal("accelerator not degraded after the stuck-coefficient trip")
	}

	sr := openSession(t, ts.URL, server.SessionRequest{Kind: "process", Kernel: "edge", Seed: &seed})
	results, _ := streamAll(t, ts.URL, sr.ID, e2eScenes(3, 0))
	if len(results) != 3 {
		t.Fatalf("streamed %d results, want 3", len(results))
	}
	for _, r := range results {
		if !r.Degraded {
			t.Fatalf("session frame %d not flagged degraded: %+v", r.Index, r)
		}
	}
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
