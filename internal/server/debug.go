// Observability endpoints and per-request trace recording: the ring
// behind GET /debug/traces, the structured response headers every
// compute endpoint sets, and the opt-in debug mux (net/http/pprof +
// GET /debug/runtime) mounted when Config.Debug is set. See
// docs/OBSERVABILITY.md.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lightator/internal/energy"
	"lightator/internal/pipeline"
	"lightator/internal/trace"
)

// traceFrame records a batched request's per-stage spans from its
// pipeline result: stage wall times from the Result, op counts from the
// pipeline's static profile. target is the kernel/model addressed, ""
// when the endpoint has none.
func (s *Server) traceFrame(w http.ResponseWriter, endpoint, target string, start time.Time, res pipeline.Result) {
	spans := make([]trace.Span, 0, 5)
	add := func(stage string, d time.Duration, ops trace.OpCounts) {
		if d == 0 && ops.IsZero() {
			return
		}
		spans = append(spans, trace.Span{Stage: stage, DurationNS: d.Nanoseconds(), Ops: ops})
	}
	add("capture", res.CaptureTime, res.Ops.Capture)
	add("compress", res.CompressTime, res.Ops.Compress)
	add("kernel", res.KernelTime, res.Ops.Kernel)
	add("infer", res.InferTime, res.Ops.Infer)
	add("matvec", res.MatVecTime, res.Ops.MatVec)
	s.finishTrace(w, trace.Trace{Endpoint: endpoint, Target: target, Spans: spans}, start)
}

// traceSpan records an unbatched request (matvec, plane infer) as a
// single span carrying the whole request's op counts.
func (s *Server) traceSpan(w http.ResponseWriter, endpoint, target, stage string, start time.Time, ops trace.OpCounts) {
	t := trace.Trace{
		Endpoint: endpoint,
		Target:   target,
		Spans:    []trace.Span{{Stage: stage, DurationNS: time.Since(start).Nanoseconds(), Ops: ops}},
	}
	s.finishTrace(w, t, start)
}

// finishTrace stamps identity and energy, sets the per-request response
// headers (before the body is written — callers run inside the compute
// closure), and retains the trace in the debug ring.
func (s *Server) finishTrace(w http.ResponseWriter, t trace.Trace, start time.Time) {
	t.ID = trace.NewID()
	t.Start = start
	t.DurationNS = time.Since(start).Nanoseconds()
	ops := t.Ops()
	t.EnergyJ = s.backend.Energy.RequestEnergy(ops, s.backend.WBits).Total()
	t.ModeledKFPSPerW = energy.ModeledKFPSPerW(t.EnergyJ)
	if w != nil {
		h := w.Header()
		h.Set("X-Lightator-Trace-Id", t.ID)
		h.Set("X-Lightator-Ops", ops.String())
		h.Set("X-Lightator-Energy-J", strconv.FormatFloat(t.EnergyJ, 'g', -1, 64))
		var sb strings.Builder
		for i, sp := range t.Spans {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%d", sp.Stage, sp.DurationNS)
		}
		if sb.Len() > 0 {
			h.Set("X-Lightator-Stage-Ns", sb.String())
		}
	}
	s.traces.Add(t)
}

// traceCacheHit records a cache-served request: no spans, no op counts
// (nothing analog ran), flagged CacheHit.
func (s *Server) traceCacheHit(w http.ResponseWriter, endpoint string, start time.Time) {
	t := trace.Trace{Endpoint: endpoint, CacheHit: true}
	t.ID = trace.NewID()
	t.Start = start
	t.DurationNS = time.Since(start).Nanoseconds()
	if w != nil {
		w.Header().Set("X-Lightator-Trace-Id", t.ID)
		w.Header().Set("X-Lightator-Cache", "hit")
	}
	s.traces.Add(t)
}

// TracesResponse is the GET /debug/traces body.
type TracesResponse struct {
	// Total counts every trace ever recorded, including ones the ring
	// has evicted.
	Total uint64 `json:"total"`
	// Traces holds the retained traces, oldest first.
	Traces []trace.Trace `json:"traces"`
}

// handleTraces serves the retained request traces, oldest first; ?limit=N
// keeps only the newest N.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.traces.Snapshot()
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad limit %q", q))
			return
		}
		if n < len(traces) {
			traces = traces[len(traces)-n:]
		}
	}
	if traces == nil {
		traces = []trace.Trace{}
	}
	body, err := json.Marshal(TracesResponse{Total: s.traces.Total(), Traces: traces})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// mountDebug mounts the opt-in debug mux: the standard net/http/pprof
// handlers (profile, heap, goroutine, ... via the index) and the
// runtime snapshot. Deliberately not mounted by default — profiling
// endpoints do not belong on an unauthenticated production surface.
func (s *Server) mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/runtime", s.handleRuntime)
}

// RuntimeSnapshot is the GET /debug/runtime body: Go runtime health
// plus the serving gauges a load shedder watches.
type RuntimeSnapshot struct {
	Goroutines     int     `json:"goroutines"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseTotalNS uint64  `json:"gc_pause_total_ns"`
	NextGCBytes    uint64  `json:"next_gc_bytes"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Inflight       int64   `json:"inflight"`
	Draining       bool    `json:"draining"`
	// Queues gauges each batched endpoint's admission state (depth,
	// parked-batch occupancy, in-flight batches).
	Queues map[string]QueueSnapshot `json:"queues,omitempty"`
	// TracesHeld / TracesTotal describe the /debug/traces ring.
	TracesHeld  int    `json:"traces_held"`
	TracesTotal uint64 `json:"traces_total"`
}

// handleRuntime serves the runtime snapshot (debug mux only).
func (s *Server) handleRuntime(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := RuntimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotalNS: ms.PauseTotalNs,
		NextGCBytes:    ms.NextGC,
		UptimeSeconds:  s.m.uptime().Seconds(),
		Inflight:       s.inflight.Load(),
		Draining:       s.draining.Load(),
		Queues:         s.queueSnapshots(),
		TracesHeld:     s.traces.Len(),
		TracesTotal:    s.traces.Total(),
	}
	body, err := json.Marshal(snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
