// The generic frame-endpoint constructor: one typed path collapsing the
// decode → gate → validate → cache → micro-batch → trace → encode
// boilerplate the compute endpoints used to copy per handler. Each
// endpoint supplies only a resolve step that validates its own fields
// and names its batcher, cache identity and encoder; everything shared
// — strict envelope decoding, image validation, the content-hash cache
// probe, seed resolution, batching and error projection — runs here, so
// new endpoints (the session layer's open path reuses the same helpers)
// don't grow another copy.
package server

import (
	"encoding/json"
	"net/http"
	"time"

	"lightator/internal/infer"
	"lightator/internal/pipeline"
	"lightator/internal/sensor"
)

// frameOp is one request's resolved execution plan.
type frameOp struct {
	// target labels traces with the kernel/model name ("" when none).
	target string
	// tag namespaces the cache key; parts are extra identity bytes
	// (kernel/model names) hashed before the image content.
	tag   string
	parts [][]byte
	// cacheAll caches regardless of fidelity (noise-free endpoints);
	// otherwise caching requires a deterministic backend.
	cacheAll bool
	// input is the image to validate, hash and decode.
	input *ImageWire
	// b, when set, runs the frame through that micro-batcher. Otherwise
	// direct computes the payload inline (the plane-infer path).
	b      *batcher
	direct func(w http.ResponseWriter, img *sensor.Image, seed int64, start time.Time) (any, error)
	// encode turns a batched pipeline result into the response payload.
	encode func(res pipeline.Result) (any, error)
}

// envelopeRequest constrains frame requests to pointer types exposing
// the shared envelope (via the embedded Envelope's promoted method).
type envelopeRequest[Req any] interface {
	*Req
	env() *Envelope
}

// handleFrame builds the handler for one frame endpoint from its
// resolve step.
func handleFrame[Req any, P envelopeRequest[Req]](s *Server, endpoint string, resolve func(req P) (frameOp, error)) func(http.ResponseWriter, *http.Request) (int, error) {
	return func(w http.ResponseWriter, r *http.Request) (int, error) {
		start := time.Now()
		var req Req
		p := P(&req)
		if err := decodeBody(r, p); err != nil {
			return decodeStatus(err), err
		}
		op, err := resolve(p)
		if err != nil {
			return errStatus(err, http.StatusBadRequest), err
		}
		// Tier-2/3 sheds and the degraded policy reject before the cache
		// probe (tier-1, which spares cache hits, lives in submitFrame).
		if err := s.admitCompute(); err != nil {
			return errStatus(err, http.StatusServiceUnavailable), err
		}
		rawPix, err := validateImageWire(*op.input)
		if err != nil {
			return http.StatusBadRequest, wrapErr(http.StatusBadRequest, CodeInvalidImage, "invalid image", err)
		}
		// Cacheable in noisy fidelity only when the endpoint is
		// noise-free (cacheAll); keys omit the seed because noise-free
		// output is seed-independent. An active fault plan disables
		// caching outright — injected faults are seed- and
		// ladder-state-dependent, which the key does not capture.
		cacheable := s.cache != nil && !s.chaos && (op.cacheAll || s.backend.Deterministic)
		var key cacheKey
		if cacheable {
			parts := make([][]byte, 0, len(op.parts)+2)
			parts = append(parts, op.parts...)
			parts = append(parts, rawPix, dimBytes(op.input.H, op.input.W, op.input.C))
			key = hashRequest(op.tag, 0, parts...)
		}
		return s.respond(w, endpoint, start, cacheable, key, func() ([]byte, int, error) {
			img := imageFromRaw(*op.input, rawPix)
			seed := s.effectiveSeed(p.env().Seed)
			var payload any
			if op.b != nil {
				res, status, err := s.submitFrame(r, op.b, seed, img)
				if err != nil {
					return nil, status, err
				}
				s.traceFrame(w, endpoint, op.target, start, res)
				if res.Degraded {
					s.flagDegraded(w)
				}
				if payload, err = op.encode(res); err != nil {
					return nil, http.StatusInternalServerError, err
				}
			} else {
				if payload, err = op.direct(w, img, seed, start); err != nil {
					return nil, errStatus(err, http.StatusBadRequest), err
				}
			}
			body, err := json.Marshal(payload)
			if err != nil {
				return nil, http.StatusInternalServerError, err
			}
			return body, http.StatusOK, nil
		})
	}
}

// captureOp resolves /v1/capture: noise-free, so responses cache in
// every fidelity.
func (s *Server) captureOp(req *CaptureRequest) (frameOp, error) {
	return frameOp{
		tag: "capture", cacheAll: true, input: &req.Scene, b: s.captureB,
		encode: func(res pipeline.Result) (any, error) {
			return CaptureResponse{Frame: EncodeFrame(res.Frame), Degraded: res.Degraded}, nil
		},
	}, nil
}

// compressOp resolves /v1/compress.
func (s *Server) compressOp(req *CompressRequest) (frameOp, error) {
	if s.compressB == nil {
		return frameOp{}, apiErr(http.StatusNotImplemented, CodeNotImplemented, "compressive acquisition disabled (CAPool = 0)")
	}
	return frameOp{
		tag: "compress", input: &req.Scene, b: s.compressB,
		encode: func(res pipeline.Result) (any, error) {
			return CompressResponse{Image: EncodeImage(res.Compressed), Degraded: res.Degraded}, nil
		},
	}, nil
}

// processOp resolves /v1/process: the kernel picks the micro-batcher
// and joins the cache identity.
func (s *Server) processOp(req *ProcessRequest) (frameOp, error) {
	if len(s.processB) == 0 {
		return frameOp{}, apiErr(http.StatusNotImplemented, CodeNotImplemented, "compressed-domain kernels disabled (CAPool = 0)")
	}
	b, ok := s.processB[req.Kernel]
	if !ok {
		return frameOp{}, apiErr(http.StatusBadRequest, CodeUnknownKernel, "unknown kernel %q (GET /v1/kernels lists the registry)", req.Kernel)
	}
	return frameOp{
		target: req.Kernel, tag: "process", parts: [][]byte{[]byte(req.Kernel)},
		input: &req.Envelope.Scene, b: b,
		encode: func(res pipeline.Result) (any, error) {
			return ProcessResponse{Plane: EncodeImage(res.Processed), Degraded: res.Degraded}, nil
		},
	}, nil
}

// inferOp resolves /v1/infer: scene requests micro-batch through the
// model's pipeline; plane requests compute inline (no pipeline trip to
// coalesce).
func (s *Server) inferOp(req *InferRequest) (frameOp, error) {
	if len(s.inferB) == 0 {
		return frameOp{}, apiErr(http.StatusNotImplemented, CodeNotImplemented, "compressed-domain inference disabled (CAPool = 0)")
	}
	b, ok := s.inferB[req.Model]
	if !ok {
		return frameOp{}, apiErr(http.StatusBadRequest, CodeUnknownModel, "unknown model %q (GET /v1/models lists the registry)", req.Model)
	}
	if (req.Scene == nil) == (req.Plane == nil) {
		return frameOp{}, apiErr(http.StatusBadRequest, CodeBadRequest, "infer needs exactly one of scene (full pipeline) or plane (pre-compressed)")
	}
	model := req.Model
	if req.Scene != nil {
		return frameOp{
			target: model, tag: "infer-scene", parts: [][]byte{[]byte(model)},
			input: req.Scene, b: b,
			encode: func(res pipeline.Result) (any, error) {
				return InferResponse{Model: model, Logits: res.Logits, Class: infer.Argmax(res.Logits), Degraded: res.Degraded}, nil
			},
		}, nil
	}
	return frameOp{
		target: model, tag: "infer-plane", parts: [][]byte{[]byte(model)},
		input: req.Plane,
		direct: func(w http.ResponseWriter, plane *sensor.Image, seed int64, start time.Time) (any, error) {
			if s.draining.Load() {
				return nil, errDraining
			}
			logits, err := s.backend.InferPlane(model, plane, seed)
			if err != nil {
				return nil, wrapErr(http.StatusBadRequest, CodeBadRequest, "infer failed", err)
			}
			// Plane requests skip capture+CA; the model's op counts are
			// the infer stage of its pipeline's static profile.
			s.traceSpan(w, "/v1/infer", model, "infer", start, s.backend.Infer[model].FrameOps().Infer)
			resp := InferResponse{Model: model, Logits: logits, Class: infer.Argmax(logits)}
			if d, ok := s.backend.ModelObjects[model].(interface{ Degraded() bool }); ok && d.Degraded() {
				s.flagDegraded(w)
				resp.Degraded = true
			}
			return resp, nil
		},
	}, nil
}
