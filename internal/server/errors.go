// Structured errors of the v1 wire API. Every non-2xx response (and
// every in-stream session error record) carries a stable
// {"code","message","detail"} shape; the code table is documented in
// docs/API.md and pinned by the wire-compat fixtures.
package server

import (
	"errors"
	"fmt"
	"net/http"
)

// Stable error codes shared by every /v1/* endpoint, including the
// session stream records. Codes are the machine-readable contract;
// messages and details may change wording freely.
const (
	CodeBadRequest      = "bad_request"
	CodeInvalidImage    = "invalid_image"
	CodeUnknownKernel   = "unknown_kernel"
	CodeUnknownModel    = "unknown_model"
	CodePayloadTooLarge = "payload_too_large"
	CodeOverloaded      = "overloaded"
	CodeDraining        = "draining"
	CodeNotImplemented  = "not_implemented"
	CodeClientClosed    = "client_closed"
	CodeSessionNotFound = "session_not_found"
	CodeSessionBusy     = "session_busy"
	CodeSessionClosed   = "session_closed"
	CodeSessionLimit    = "session_limit"
	CodeFrameFailed     = "frame_failed"
	CodeInternal        = "internal"
	// CodeDeadlineExceeded means the request outlived the configured
	// per-request deadline (504): the work may still complete in its
	// batch, but the response is gone.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeDegradedUnavailable means the accelerator is serving degraded
	// output (retired rows / unrecovered ABFT detections) and the server
	// is configured to reject rather than flag (503 + Retry-After).
	CodeDegradedUnavailable = "degraded_unavailable"
	// CodeShedOverload means the tiered load shedder dropped the request
	// (429 for tier-1/2 sheds, 503 when everything is being shed).
	CodeShedOverload = "shed_overload"
)

// apiError is the typed error handlers return; writeError projects it
// onto the wire shape. The status is carried alongside the code so one
// value answers both "what HTTP status" and "what machine code".
type apiError struct {
	status int
	code   string
	msg    string
	detail string
}

// Error renders message and detail as one line (the legacy "error"
// string old clients keep decoding).
func (e *apiError) Error() string {
	if e.detail != "" {
		return e.msg + ": " + e.detail
	}
	return e.msg
}

// apiErr builds a typed error with a formatted message and no detail.
func apiErr(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// wrapErr builds a typed error whose detail is the underlying error.
func wrapErr(status int, code, msg string, err error) *apiError {
	return &apiError{status: status, code: code, msg: msg, detail: err.Error()}
}

// codeForStatus maps a bare status to its default code, for errors that
// reach writeError untyped.
func codeForStatus(status int) string {
	switch status {
	case http.StatusGatewayTimeout:
		return CodeDeadlineExceeded
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodeDraining
	case http.StatusNotImplemented:
		return CodeNotImplemented
	case http.StatusNotFound:
		return CodeSessionNotFound
	case statusClientClosed:
		return CodeClientClosed
	case http.StatusInternalServerError:
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// errorBody projects an error onto the wire shape for the given status.
func errorBody(status int, err error) ErrorResponse {
	var ae *apiError
	if errors.As(err, &ae) {
		return ErrorResponse{Code: ae.code, Message: ae.msg, Detail: ae.detail, Error: ae.Error()}
	}
	return ErrorResponse{Code: codeForStatus(status), Message: err.Error(), Error: err.Error()}
}

// errStatus extracts an apiError's status, defaulting otherwise.
func errStatus(err error, fallback int) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	return fallback
}
