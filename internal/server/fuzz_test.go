// Native Go fuzz targets for the wire codecs and the server's JSON
// decoding: malformed base64, dimension, and body payloads must come
// back as errors (HTTP 4xx at the handler), never as panics. Seed
// corpora live under testdata/fuzz/<FuzzName>/ and run as ordinary unit
// cases during `go test`; `make fuzz` (and the ci.yml fuzz-smoke job)
// runs each target through the coverage-guided fuzzer for a short burst.
//
// Like every server test this is package server_test: the process
// target drives a real accelerator through the public facade. The
// handler is invoked directly via httptest.NewRecorder — not through a
// live listener — so a handler panic reaches the fuzzer instead of being
// swallowed by net/http's connection-level recover.
package server_test

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lightator"
	"lightator/internal/server"
)

// FuzzDecodeImage: DecodeImage either rejects the wire form with an
// error or produces an image that re-encodes to the same canonical wire
// form (the codec is lossless, bit-for-bit, including NaN payloads).
func FuzzDecodeImage(f *testing.F) {
	valid := server.EncodeImage(testScene(1, 2, 3))
	f.Add(valid.H, valid.W, valid.C, valid.Pix)
	f.Add(0, 4, 1, "")                   // zero dim
	f.Add(-1, 4, 3, valid.Pix)           // negative dim
	f.Add(1<<20, 1<<20, 3, valid.Pix)    // dims beyond maxWireDim
	f.Add(2, 3, 2, valid.Pix)            // invalid channel count
	f.Add(2, 3, 1, "!!! not base64 !!!") // undecodable payload
	f.Add(2, 3, 1, "AAAA")               // wrong payload length
	f.Fuzz(func(t *testing.T, h, w, c int, pix string) {
		im, err := server.DecodeImage(server.ImageWire{H: h, W: w, C: c, Pix: pix})
		if err != nil {
			return
		}
		if im.H != h || im.W != w || im.C != c || len(im.Pix) != h*w*c {
			t.Fatalf("decoded image %dx%dx%d (%d samples) from wire %dx%dx%d", im.H, im.W, im.C, len(im.Pix), h, w, c)
		}
		back, err := server.DecodeImage(server.EncodeImage(im))
		if err != nil {
			t.Fatalf("re-encoded image failed to decode: %v", err)
		}
		for i := range im.Pix {
			if math.Float64bits(back.Pix[i]) != math.Float64bits(im.Pix[i]) {
				t.Fatalf("sample %d not bit-identical through the codec: %x vs %x",
					i, math.Float64bits(back.Pix[i]), math.Float64bits(im.Pix[i]))
			}
		}
	})
}

// FuzzDecodeFrame: same contract for the 4-bit frame codec.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(2, 2, "AAAA")              // 4 bytes decode to 3 — wrong length
	f.Add(2, 3, "AAAAAAAA")          // 8 bytes decode to 6 codes: valid
	f.Add(0, 2, "")                  // zero dim
	f.Add(-3, -3, "AAAA")            // negative dims
	f.Add(1<<20, 2, "AAAA")          // beyond maxWireDim
	f.Add(2, 2, "not base64 at all") // undecodable payload
	f.Fuzz(func(t *testing.T, rows, cols int, codes string) {
		fr, err := server.DecodeFrame(server.FrameWire{Rows: rows, Cols: cols, Codes: codes})
		if err != nil {
			return
		}
		if fr.Rows != rows || fr.Cols != cols || len(fr.Codes) != rows*cols {
			t.Fatalf("decoded frame %dx%d (%d codes) from wire %dx%d", fr.Rows, fr.Cols, len(fr.Codes), rows, cols)
		}
		again, err := server.DecodeFrame(server.EncodeFrame(fr))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		for i := range fr.Codes {
			if again.Codes[i] != fr.Codes[i] {
				t.Fatalf("code %d changed through the codec: %d vs %d", i, again.Codes[i], fr.Codes[i])
			}
		}
	})
}

// fuzzHandler lazily stands up one shared accelerator + server per
// process for the process-endpoint target. No Drain: the fuzz process
// exits with the server's goroutines still serving, which is fine — the
// target never shuts the server down mid-run.
var (
	fuzzOnce    sync.Once
	fuzzProcess http.Handler
	fuzzErr     error
)

func fuzzProcessHandler() (http.Handler, error) {
	fuzzOnce.Do(func() {
		cfg := lightator.DefaultConfig()
		cfg.SensorRows, cfg.SensorCols = 16, 16
		acc, err := lightator.New(cfg)
		if err != nil {
			fuzzErr = err
			return
		}
		srv, err := acc.NewServer(lightator.ServeOptions{
			Workers: 1, BatchSize: 1, BatchDelay: time.Millisecond,
			AgreementFrames: -1, CacheEntries: -1,
		})
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzProcess = srv.Handler()
	})
	return fuzzProcess, fuzzErr
}

// FuzzProcessRequest throws arbitrary bodies at POST /v1/process: every
// response must be a well-formed status < 500 — malformed JSON, bad
// dimensions, undecodable pixels, and unknown kernels are all client
// errors — and a 200 must carry a decodable ProcessResponse plane.
func FuzzProcessRequest(f *testing.F) {
	scene := server.EncodeImage(testScene(3, 16, 16))
	for _, kernel := range []string{"reconstruct", "reconstruct-direct", "reconstruct-cg", "edge"} {
		body, err := json.Marshal(server.NewProcessRequest(scene, kernel, nil))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte(`{`))
	f.Add([]byte(`{"scene":{"h":1,"w":1,"c":1,"pix_b64":"zzz"},"kernel":"edge"}`))
	f.Add([]byte(`{"scene":{"h":-4,"w":70000,"c":3,"pix_b64":""},"kernel":"reconstruct"}`))
	f.Add([]byte(`{"kernel":"no-such-kernel"}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		h, err := fuzzProcessHandler()
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/process", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("server error %d for body %q: %s", rec.Code, body, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			var resp server.ProcessResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body: %v", err)
			}
			if _, err := server.DecodeImage(resp.Plane); err != nil {
				t.Fatalf("200 with undecodable plane: %v", err)
			}
		} else {
			// Every non-200 must carry the structured error shape: a
			// non-empty stable code, a message, and the legacy "error"
			// string old clients decode.
			var resp server.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("non-200 (%d) without an ErrorResponse body: %q", rec.Code, rec.Body.String())
			}
			if resp.Code == "" || resp.Message == "" || resp.Error == "" {
				t.Fatalf("non-200 (%d) with incomplete error shape %+v: %q", rec.Code, resp, rec.Body.String())
			}
		}
	})
}
