// End-to-end tests of /v1/infer and /v1/models, run through the public
// facade: the acceptance criterion is that a served inference response
// is bit-identical to the direct Infer (scene) / InferPlane (plane)
// call, no matter how the micro-batcher coalesces concurrent requests.
package server_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"lightator"
)

// inferWant marshals the expected /v1/infer body for the given logits.
func inferWant(t *testing.T, model string, logits []float64) []byte {
	t.Helper()
	class := 0
	for i, v := range logits {
		if v > logits[class] {
			class = i
		}
	}
	body, err := json.Marshal(lightator.InferResponse{Model: model, Logits: logits, Class: class})
	if err != nil {
		t.Fatal(err)
	}
	return append(body, '\n')
}

// testCompressedPlane builds a deterministic single-channel plane of the
// accelerator's CA measurement geometry.
func testCompressedPlane(seed int64, h, w int) *lightator.Image {
	rng := rand.New(rand.NewSource(seed))
	p := lightator.NewImage(h, w, 1)
	for i := range p.Pix {
		p.Pix[i] = rng.Float64()
	}
	return p
}

// TestConcurrentInferMatchesFacade is the acceptance-criterion test:
// concurrent clients hitting /v1/infer across every registered model and
// both input kinds — so scene requests for the same model coalesce into
// shared micro-batches while plane requests bypass batching — get
// responses byte-identical to direct facade calls, in every fidelity.
func TestConcurrentInferMatchesFacade(t *testing.T) {
	const clients = 12
	for _, fid := range []lightator.Fidelity{lightator.Ideal, lightator.Physical, lightator.PhysicalNoisy} {
		t.Run(fid.String(), func(t *testing.T) {
			acc := testAccelerator(t, fid)
			names := acc.Models()
			if len(names) == 0 {
				t.Fatal("no registered models")
			}
			cfg := acc.Config()
			planeH := cfg.SensorRows / cfg.CAPool
			planeW := cfg.SensorCols / cfg.CAPool
			_, ts := testServer(t, acc, lightator.ServeOptions{
				Workers: 2, BatchSize: 3, BatchDelay: 5 * time.Millisecond, CacheEntries: -1,
			})

			reqs := make([]lightator.InferRequest, clients)
			want := make([][]byte, clients)
			for i := range reqs {
				model := names[i%len(names)]
				if i%3 == 2 {
					// Every third client sends a pre-compressed plane.
					plane := testCompressedPlane(int64(300+i), planeH, planeW)
					logits, err := acc.InferPlane(plane, model)
					if err != nil {
						t.Fatal(err)
					}
					reqs[i] = lightator.InferRequest{Model: model, Plane: wirePtr(lightator.EncodeImage(plane))}
					want[i] = inferWant(t, model, logits)
					continue
				}
				scene := testScene(int64(300+i), 32, 32)
				logits, err := acc.Infer(scene, model)
				if err != nil {
					t.Fatal(err)
				}
				reqs[i] = lightator.InferRequest{Model: model, Scene: wirePtr(lightator.EncodeImage(scene))}
				want[i] = inferWant(t, model, logits)
			}

			got := make([][]byte, clients)
			var wg sync.WaitGroup
			for i := range reqs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					status, body := postJSON(t, ts.URL+"/v1/infer", reqs[i], nil)
					if status != http.StatusOK {
						t.Errorf("client %d (%s): status %d (%s)", i, reqs[i].Model, status, body)
						return
					}
					got[i] = body
				}(i)
			}
			wg.Wait()
			for i := range reqs {
				if got[i] == nil {
					t.Fatalf("client %d: no response", i)
				}
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("fidelity %v client %d (%s): served response differs from direct facade call",
						fid, i, reqs[i].Model)
				}
			}
		})
	}
}

func wirePtr(w lightator.ImageWire) *lightator.ImageWire { return &w }

// TestModelsEndpointAndInferErrors covers the registry listing and the
// /v1/infer error paths.
func TestModelsEndpointAndInferErrors(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchDelay: time.Millisecond})

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list lightator.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := acc.Models()
	if len(list.Models) != len(names) {
		t.Fatalf("registry lists %d models, facade has %d", len(list.Models), len(names))
	}
	cfg := acc.Config()
	for i, m := range list.Models {
		if m.Name != names[i] || m.Description == "" {
			t.Errorf("registry entry %d: %+v, want name %q with a description", i, m, names[i])
		}
		if m.InputH != cfg.SensorRows/cfg.CAPool || m.InputW != cfg.SensorCols/cfg.CAPool || m.Classes < 2 {
			t.Errorf("registry entry %d has implausible geometry: %+v", i, m)
		}
	}

	scene := lightator.EncodeImage(testScene(3, 32, 32))
	// Unknown model: 400 with the registry hint.
	if status, body := postJSON(t, ts.URL+"/v1/infer",
		lightator.InferRequest{Scene: &scene, Model: "nope"}, nil); status != http.StatusBadRequest {
		t.Errorf("unknown model got %d (%s), want 400", status, body)
	}
	// Neither scene nor plane, and both: 400.
	if status, _ := postJSON(t, ts.URL+"/v1/infer",
		lightator.InferRequest{Model: names[0]}, nil); status != http.StatusBadRequest {
		t.Error("empty infer request accepted")
	}
	if status, _ := postJSON(t, ts.URL+"/v1/infer",
		lightator.InferRequest{Scene: &scene, Plane: &scene, Model: names[0]}, nil); status != http.StatusBadRequest {
		t.Error("infer request with both scene and plane accepted")
	}
	// A plane of the wrong geometry: 400 from the model's input guard.
	wrong := lightator.EncodeImage(testCompressedPlane(5, 3, 3))
	if status, _ := postJSON(t, ts.URL+"/v1/infer",
		lightator.InferRequest{Plane: &wrong, Model: names[0]}, nil); status != http.StatusBadRequest {
		t.Error("mismatched plane accepted")
	}

	// Deterministic fidelity: the repeat is a cache hit with identical
	// bytes, and the model name is part of the key.
	req := lightator.InferRequest{Scene: &scene, Model: names[0]}
	_, body1 := postJSON(t, ts.URL+"/v1/infer", req, nil)
	_, body2 := postJSON(t, ts.URL+"/v1/infer", req, nil)
	if !bytes.Equal(body1, body2) {
		t.Error("cached infer response differs from computed one")
	}
	if len(names) > 1 {
		_, body3 := postJSON(t, ts.URL+"/v1/infer", lightator.InferRequest{Scene: &scene, Model: names[1]}, nil)
		if bytes.Equal(body1, body3) {
			t.Error("different models served identical bytes; model name must be in the cache key")
		}
	}
	m := srv.Metrics()
	if ep := m.Endpoints["/v1/infer"]; ep.CacheHits == 0 {
		t.Errorf("no cache hit in deterministic fidelity: %+v", ep)
	}
	if rep, ok := m.Infer[names[0]]; !ok || rep.Frames == 0 || rep.Infer.Count == 0 {
		t.Errorf("infer pipeline stats missing activity: %+v", m.Infer)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(text.Bytes(), []byte(`pipeline="infer:`+names[0]+`"`)) {
		t.Errorf("prometheus text missing per-model pipeline series:\n%s", text.String())
	}

	// CA disabled: 501, and the registry is empty (but present).
	cfg2 := lightator.DefaultConfig()
	cfg2.SensorRows, cfg2.SensorCols, cfg2.CAPool = 32, 32, 0
	noCA, err := lightator.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := testServer(t, noCA, lightator.ServeOptions{BatchDelay: time.Millisecond})
	if status, _ := postJSON(t, ts2.URL+"/v1/infer",
		lightator.InferRequest{Scene: &scene, Model: names[0]}, nil); status != http.StatusNotImplemented {
		t.Error("CA-disabled infer did not answer 501")
	}
	resp, err = http.Get(ts2.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var empty lightator.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(empty.Models) != 0 {
		t.Errorf("CA-disabled registry lists %d models, want 0", len(empty.Models))
	}
}

// TestInferNoisyBypassesCacheButReproduces mirrors the process cache
// policy: PhysicalNoisy never touches the cache yet repeated requests
// reproduce bit-identically thanks to per-request seeding; an explicit
// seed changes the bytes.
func TestInferNoisyBypassesCacheButReproduces(t *testing.T) {
	acc := testAccelerator(t, lightator.PhysicalNoisy)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchDelay: time.Millisecond})
	model := acc.Models()[0]
	scene := lightator.EncodeImage(testScene(17, 32, 32))
	req := lightator.InferRequest{Scene: &scene, Model: model}
	_, body1 := postJSON(t, ts.URL+"/v1/infer", req, nil)
	_, body2 := postJSON(t, ts.URL+"/v1/infer", req, nil)
	if !bytes.Equal(body1, body2) {
		t.Error("seeded noisy infer responses must still be reproducible")
	}
	seed := int64(4242)
	seeded := req
	seeded.Seed = &seed
	_, body3 := postJSON(t, ts.URL+"/v1/infer", seeded, nil)
	if bytes.Equal(body1, body3) {
		t.Error("explicit request seed did not change the noisy response")
	}
	if m := srv.Metrics(); m.Endpoints["/v1/infer"].CacheHits != 0 || m.Endpoints["/v1/infer"].CacheMisses != 0 {
		t.Errorf("cache touched in noisy fidelity: %+v", m.Endpoints["/v1/infer"])
	}
}
