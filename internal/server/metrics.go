package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lightator/internal/fault"
	"lightator/internal/pipeline"
	"lightator/internal/session"
)

// flushTrigger labels why a micro-batch left the collector.
type flushTrigger string

const (
	flushSize     flushTrigger = "size"     // batch filled to BatchSize
	flushDeadline flushTrigger = "deadline" // BatchDelay expired
	flushDrain    flushTrigger = "drain"    // server shutdown flushed it
)

// epCounters accumulates one endpoint's request counters. Latency is only
// observed for requests that produced a response (2xx or 4xx/5xx with a
// body), not for rejected admissions.
type epCounters struct {
	requests  int64
	errors    int64
	rejected  int64
	cacheHits int64
	cacheMiss int64
	lat       pipeline.LatencyHist
}

// metrics is the server-wide counter set. One mutex is plenty: every
// update is a few integer adds, far off the request hot path's decode and
// pipeline costs.
type metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*epCounters
	flushes   map[flushTrigger]int64
	frames    int64 // frames that went through a micro-batch
	maxBatch  int
	// sheds counts tiered-shedder drops by tier; deadlines counts 504s
	// from the per-request deadline; degraded counts responses served
	// with the degraded flag set.
	sheds     map[string]int64
	deadlines int64
	degraded  int64
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*epCounters),
		flushes:   make(map[flushTrigger]int64),
		sheds:     make(map[string]int64),
	}
}

func (m *metrics) ep(endpoint string) *epCounters {
	c, ok := m.endpoints[endpoint]
	if !ok {
		c = &epCounters{}
		m.endpoints[endpoint] = c
	}
	return c
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, d time.Duration, isErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.ep(endpoint)
	c.requests++
	if isErr {
		c.errors++
	}
	c.lat.Observe(d)
}

// reject records an admission-control rejection (429/503).
func (m *metrics) reject(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.ep(endpoint)
	c.requests++
	c.rejected++
}

// cache records a cache lookup outcome.
func (m *metrics) cache(endpoint string, hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.ep(endpoint)
	if hit {
		c.cacheHits++
	} else {
		c.cacheMiss++
	}
}

// shed records one tiered-shedder drop.
func (m *metrics) shed(tier string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sheds[tier]++
}

// deadline records one per-request deadline expiry (504).
func (m *metrics) deadline() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadlines++
}

// degradedResp records one response served with the degraded flag set.
func (m *metrics) degradedResp() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.degraded++
}

// flush records one micro-batch dispatch.
func (m *metrics) flush(n int, trigger flushTrigger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flushes[trigger]++
	m.frames += int64(n)
	if n > m.maxBatch {
		m.maxBatch = n
	}
}

// uptime reports the time since the server's construction.
func (m *metrics) uptime() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Since(m.start)
}

// EndpointSnapshot is one endpoint's counters at snapshot time.
type EndpointSnapshot struct {
	Requests    int64                `json:"requests"`
	Errors      int64                `json:"errors"`
	Rejected    int64                `json:"rejected"`
	CacheHits   int64                `json:"cache_hits"`
	CacheMisses int64                `json:"cache_misses"`
	Latency     pipeline.StageReport `json:"latency"`
}

// BatcherSnapshot summarises micro-batcher activity.
type BatcherSnapshot struct {
	SizeFlushes     int64 `json:"size_flushes"`
	DeadlineFlushes int64 `json:"deadline_flushes"`
	DrainFlushes    int64 `json:"drain_flushes"`
	BatchedFrames   int64 `json:"batched_frames"`
	MaxBatch        int   `json:"max_batch"`
}

// QueueSnapshot gauges one batched endpoint's admission state at
// snapshot time: queued-but-uncollected frames, the collector's
// accumulating (parked) batch, and pipeline batches in flight.
type QueueSnapshot struct {
	Depth           int `json:"depth"`
	Occupancy       int `json:"occupancy"`
	InflightBatches int `json:"inflight_batches"`
}

// EnergyGauge is one pipeline series' modeled per-request energy: the
// joules one frame through that pipeline costs under the paper's
// component model, and the KFPS/W a stream of such frames would
// sustain. Fixed at construction (every frame of a pipeline does
// identical modeled analog work).
type EnergyGauge struct {
	EnergyJPerRequest float64 `json:"energy_j_per_request"`
	ModeledKFPSPerW   float64 `json:"modeled_kfps_per_w"`
}

// MetricsSnapshot is the full machine-readable state of a running server,
// served as JSON at /metrics?format=json.
type MetricsSnapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Inflight      int64                       `json:"inflight"`
	Draining      bool                        `json:"draining"`
	CacheEntries  int                         `json:"cache_entries"`
	CacheCapacity int                         `json:"cache_capacity"`
	CacheBytes    int                         `json:"cache_bytes"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Batcher       BatcherSnapshot             `json:"batcher"`
	// Queues gauges each batched endpoint's admission state, keyed by
	// endpoint (kernel/model series as "/v1/process:<kernel>" etc.).
	Queues map[string]QueueSnapshot `json:"queues,omitempty"`
	// Energy holds each pipeline series' modeled per-request energy,
	// keyed like the pipeline stats below (capture, compress,
	// process:<kernel>, infer:<model>).
	Energy map[string]EnergyGauge `json:"energy,omitempty"`
	// Capture and Compress are the cumulative pipeline stats behind the
	// batched endpoints (frames, FPS, per-stage latency histograms).
	Capture  pipeline.StatsReport `json:"capture_pipeline"`
	Compress pipeline.StatsReport `json:"compress_pipeline"`
	// Process holds the cumulative pipeline stats behind /v1/process,
	// keyed by kernel name (absent when kernels are disabled).
	Process map[string]pipeline.StatsReport `json:"process_pipelines,omitempty"`
	// Infer holds the cumulative pipeline stats behind /v1/infer scene
	// requests, keyed by model name (absent when inference is disabled).
	Infer map[string]pipeline.StatsReport `json:"infer_pipelines,omitempty"`
	// Sessions aggregates the streaming-session registry: open/lifetime
	// counters plus per-open-session reuse accounting (absent when
	// sessions are disabled).
	Sessions *session.ManagerStats `json:"sessions,omitempty"`
	// Sheds counts tiered-shedder drops by tier (cache_miss, non_session,
	// all).
	Sheds map[string]int64 `json:"sheds"`
	// DeadlineTimeouts counts requests that outlived the per-request
	// deadline (504 deadline_exceeded).
	DeadlineTimeouts int64 `json:"deadline_timeouts"`
	// DegradedResponses counts responses served with the degraded flag
	// set; Degraded is the live gauge (any component degraded now).
	DegradedResponses int64 `json:"degraded_responses"`
	Degraded          bool  `json:"degraded"`
	// Health is the per-component fault-tolerance state (ABFT checks,
	// detections, ladder outcomes), sorted by component label.
	Health []fault.HealthSnapshot `json:"health,omitempty"`
}

// snapshot captures the counters; pipeline stats and gauges are filled in
// by the server, which owns them.
func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		UptimeSeconds:     time.Since(m.start).Seconds(),
		Endpoints:         make(map[string]EndpointSnapshot, len(m.endpoints)),
		Sheds:             make(map[string]int64, len(m.sheds)),
		DeadlineTimeouts:  m.deadlines,
		DegradedResponses: m.degraded,
		Batcher: BatcherSnapshot{
			SizeFlushes:     m.flushes[flushSize],
			DeadlineFlushes: m.flushes[flushDeadline],
			DrainFlushes:    m.flushes[flushDrain],
			BatchedFrames:   m.frames,
			MaxBatch:        m.maxBatch,
		},
	}
	for tier, n := range m.sheds {
		snap.Sheds[tier] = n
	}
	for name, c := range m.endpoints {
		snap.Endpoints[name] = EndpointSnapshot{
			Requests:    c.requests,
			Errors:      c.errors,
			Rejected:    c.rejected,
			CacheHits:   c.cacheHits,
			CacheMisses: c.cacheMiss,
			Latency:     c.lat.Report(),
		}
	}
	return snap
}

// renderProm renders the snapshot in Prometheus text exposition format.
func renderProm(snap MetricsSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lightator_uptime_seconds %g\n", snap.UptimeSeconds)
	fmt.Fprintf(&b, "lightator_inflight_requests %d\n", snap.Inflight)
	fmt.Fprintf(&b, "lightator_cache_entries %d\n", snap.CacheEntries)
	fmt.Fprintf(&b, "lightator_cache_capacity %d\n", snap.CacheCapacity)
	fmt.Fprintf(&b, "lightator_cache_bytes %d\n", snap.CacheBytes)
	queueNames := make([]string, 0, len(snap.Queues))
	for name := range snap.Queues {
		queueNames = append(queueNames, name)
	}
	sort.Strings(queueNames)
	for _, name := range queueNames {
		q := snap.Queues[name]
		fmt.Fprintf(&b, "lightator_queue_depth{endpoint=%q} %d\n", name, q.Depth)
		fmt.Fprintf(&b, "lightator_batch_occupancy{endpoint=%q} %d\n", name, q.Occupancy)
		fmt.Fprintf(&b, "lightator_inflight_batches{endpoint=%q} %d\n", name, q.InflightBatches)
	}
	names := make([]string, 0, len(snap.Endpoints))
	for name := range snap.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := snap.Endpoints[name]
		fmt.Fprintf(&b, "lightator_requests_total{endpoint=%q} %d\n", name, ep.Requests)
		fmt.Fprintf(&b, "lightator_request_errors_total{endpoint=%q} %d\n", name, ep.Errors)
		fmt.Fprintf(&b, "lightator_rejected_total{endpoint=%q} %d\n", name, ep.Rejected)
		fmt.Fprintf(&b, "lightator_cache_hits_total{endpoint=%q} %d\n", name, ep.CacheHits)
		fmt.Fprintf(&b, "lightator_cache_misses_total{endpoint=%q} %d\n", name, ep.CacheMisses)
		if ep.Latency.Count > 0 {
			fmt.Fprintf(&b, "lightator_request_latency_seconds{endpoint=%q,quantile=\"0.5\"} %g\n",
				name, float64(ep.Latency.P50NS)/1e9)
			fmt.Fprintf(&b, "lightator_request_latency_seconds{endpoint=%q,quantile=\"0.99\"} %g\n",
				name, float64(ep.Latency.P99NS)/1e9)
		}
	}
	// Fixed slice order: scrapes must be diffable, so no map iteration.
	for _, fl := range []struct {
		trigger flushTrigger
		n       int64
	}{
		{flushSize, snap.Batcher.SizeFlushes},
		{flushDeadline, snap.Batcher.DeadlineFlushes},
		{flushDrain, snap.Batcher.DrainFlushes},
	} {
		fmt.Fprintf(&b, "lightator_batch_flushes_total{trigger=%q} %d\n", fl.trigger, fl.n)
	}
	fmt.Fprintf(&b, "lightator_batched_frames_total %d\n", snap.Batcher.BatchedFrames)
	fmt.Fprintf(&b, "lightator_batch_max_size %d\n", snap.Batcher.MaxBatch)
	pipes := []struct {
		name string
		rep  pipeline.StatsReport
	}{
		{"capture", snap.Capture},
		{"compress", snap.Compress},
	}
	// Kernel and model pipelines append in sorted name order, again for
	// diffable scrapes.
	kernNames := make([]string, 0, len(snap.Process))
	for name := range snap.Process {
		kernNames = append(kernNames, name)
	}
	sort.Strings(kernNames)
	for _, name := range kernNames {
		pipes = append(pipes, struct {
			name string
			rep  pipeline.StatsReport
		}{"process:" + name, snap.Process[name]})
	}
	modelNames := make([]string, 0, len(snap.Infer))
	for name := range snap.Infer {
		modelNames = append(modelNames, name)
	}
	sort.Strings(modelNames)
	for _, name := range modelNames {
		pipes = append(pipes, struct {
			name string
			rep  pipeline.StatsReport
		}{"infer:" + name, snap.Infer[name]})
	}
	for _, p := range pipes {
		fmt.Fprintf(&b, "lightator_pipeline_frames_total{pipeline=%q} %d\n", p.name, p.rep.Frames)
		fmt.Fprintf(&b, "lightator_pipeline_fps{pipeline=%q} %g\n", p.name, p.rep.FPS)
	}
	// Energy gauges per pipeline series, sorted for diffable scrapes.
	energyNames := make([]string, 0, len(snap.Energy))
	for name := range snap.Energy {
		energyNames = append(energyNames, name)
	}
	sort.Strings(energyNames)
	for _, name := range energyNames {
		e := snap.Energy[name]
		fmt.Fprintf(&b, "lightator_energy_j_per_request{pipeline=%q} %g\n", name, e.EnergyJPerRequest)
		fmt.Fprintf(&b, "lightator_modeled_kfps_per_w{pipeline=%q} %g\n", name, e.ModeledKFPSPerW)
	}
	// Session series are always emitted (zero-valued when no sessions
	// have existed, absent only when the subsystem is disabled — and even
	// then a zero block keeps scrapes shape-stable).
	var ss session.ManagerStats
	if snap.Sessions != nil {
		ss = *snap.Sessions
	}
	fmt.Fprintf(&b, "lightator_sessions_open %d\n", ss.Open)
	fmt.Fprintf(&b, "lightator_sessions_opened_total %d\n", ss.Opened)
	fmt.Fprintf(&b, "lightator_sessions_closed_total %d\n", ss.Closed)
	fmt.Fprintf(&b, "lightator_sessions_expired_total %d\n", ss.Expired)
	fmt.Fprintf(&b, "lightator_session_frames_total %d\n", ss.Frames)
	fmt.Fprintf(&b, "lightator_session_blocks_total %d\n", ss.BlocksTotal)
	fmt.Fprintf(&b, "lightator_session_blocks_reused_total %d\n", ss.BlocksReused)
	// Overload and degradation series. Tiers render in fixed severity
	// order and every series is emitted unconditionally (zero-valued on a
	// healthy idle server) so scrapes stay shape-stable and the
	// metricscheck gate can verify the catalogue against a live server.
	for _, tier := range []string{"cache_miss", "non_session", "all"} {
		fmt.Fprintf(&b, "lightator_shed_total{tier=%q} %d\n", tier, snap.Sheds[tier])
	}
	fmt.Fprintf(&b, "lightator_deadline_timeouts_total %d\n", snap.DeadlineTimeouts)
	fmt.Fprintf(&b, "lightator_degraded_responses_total %d\n", snap.DegradedResponses)
	degraded := 0
	if snap.Degraded {
		degraded = 1
	}
	fmt.Fprintf(&b, "lightator_degraded %d\n", degraded)
	// Per-component fault-tolerance counters (snapshot is label-sorted).
	// Components register at construction, so a fault-free server still
	// emits its full zero-valued component set.
	for _, h := range snap.Health {
		fmt.Fprintf(&b, "lightator_abft_checks_total{component=%q} %d\n", h.Label, h.Checks)
		fmt.Fprintf(&b, "lightator_fault_detections_total{component=%q} %d\n", h.Label, h.Detections)
		fmt.Fprintf(&b, "lightator_fault_retry_successes_total{component=%q} %d\n", h.Label, h.RetrySuccesses)
		fmt.Fprintf(&b, "lightator_fault_recalibrations_total{component=%q} %d\n", h.Label, h.Recalibrations)
		fmt.Fprintf(&b, "lightator_fault_retired_rows{component=%q} %d\n", h.Label, h.RetiredRows)
		fmt.Fprintf(&b, "lightator_fault_unrecovered_total{component=%q} %d\n", h.Label, h.Unrecovered)
	}
	return b.String()
}
