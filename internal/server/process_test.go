// End-to-end tests of /v1/process and /v1/kernels, run through the
// public facade: the acceptance criterion is that a served kernel
// response is bit-identical to the direct ProcessCompressed call, no
// matter how the micro-batcher coalesces concurrent requests.
package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"lightator"
)

// TestConcurrentProcessMatchesFacade is the acceptance-criterion test:
// concurrent clients hitting /v1/process across every registered kernel
// — so requests for the same kernel coalesce into shared micro-batches —
// get responses byte-identical to direct facade ProcessCompressed calls,
// in every fidelity (the criterion demands the deterministic ones; the
// seeded pipeline delivers PhysicalNoisy too).
func TestConcurrentProcessMatchesFacade(t *testing.T) {
	const clients = 12
	for _, fid := range []lightator.Fidelity{lightator.Ideal, lightator.Physical, lightator.PhysicalNoisy} {
		t.Run(fid.String(), func(t *testing.T) {
			acc := testAccelerator(t, fid)
			names := acc.Kernels()
			if len(names) == 0 {
				t.Fatal("no registered kernels")
			}
			// Small batch size and a non-trivial delay force both size-
			// and deadline-triggered flushes; caching is disabled so every
			// response is a fresh pipeline trip.
			_, ts := testServer(t, acc, lightator.ServeOptions{
				Workers: 2, BatchSize: 3, BatchDelay: 5 * time.Millisecond, CacheEntries: -1,
			})

			scenes := make([]*lightator.Image, clients)
			kernels := make([]string, clients)
			want := make([][]byte, clients)
			for i := range scenes {
				scenes[i] = testScene(int64(200+i), 32, 32)
				kernels[i] = names[i%len(names)]
				out, err := acc.ProcessCompressed(scenes[i], kernels[i])
				if err != nil {
					t.Fatal(err)
				}
				body, err := json.Marshal(lightator.ProcessResponse{Plane: lightator.EncodeImage(out)})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = append(body, '\n')
			}

			got := make([][]byte, clients)
			var wg sync.WaitGroup
			for i := range scenes {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					status, body := postJSON(t, ts.URL+"/v1/process", lightator.NewProcessRequest(lightator.EncodeImage(scenes[i]), kernels[i], nil), nil)
					if status != http.StatusOK {
						t.Errorf("client %d (%s): status %d (%s)", i, kernels[i], status, body)
						return
					}
					got[i] = body
				}(i)
			}
			wg.Wait()
			for i := range scenes {
				if got[i] == nil {
					t.Fatalf("client %d: no response", i)
				}
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("fidelity %v client %d (%s): served response differs from direct ProcessCompressed",
						fid, i, kernels[i])
				}
			}
		})
	}
}

// TestKernelsEndpointAndProcessErrors covers the registry listing and
// the /v1/process error paths.
func TestKernelsEndpointAndProcessErrors(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchDelay: time.Millisecond})

	resp, err := http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	var list lightator.KernelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	names := acc.Kernels()
	if len(list.Kernels) != len(names) {
		t.Fatalf("registry lists %d kernels, facade has %d", len(list.Kernels), len(names))
	}
	for i, k := range list.Kernels {
		if k.Name != names[i] || k.Description == "" {
			t.Errorf("registry entry %d: %+v, want name %q with a description", i, k, names[i])
		}
	}

	// Unknown kernel: 400 with the registry hint.
	scene := lightator.EncodeImage(testScene(3, 32, 32))
	if status, body := postJSON(t, ts.URL+"/v1/process",
		lightator.NewProcessRequest(scene, "nope", nil), nil); status != http.StatusBadRequest {
		t.Errorf("unknown kernel got %d (%s), want 400", status, body)
	}

	// Deterministic fidelity: the repeat is a cache hit with identical
	// bytes, and the kernel name is part of the key (edge != denoise).
	req := lightator.NewProcessRequest(scene, "edge", nil)
	_, body1 := postJSON(t, ts.URL+"/v1/process", req, nil)
	_, body2 := postJSON(t, ts.URL+"/v1/process", req, nil)
	if !bytes.Equal(body1, body2) {
		t.Error("cached process response differs from computed one")
	}
	_, body3 := postJSON(t, ts.URL+"/v1/process", lightator.NewProcessRequest(scene, "denoise", nil), nil)
	if bytes.Equal(body1, body3) {
		t.Error("different kernels served identical bytes; kernel name must be in the cache key")
	}
	m := srv.Metrics()
	if ep := m.Endpoints["/v1/process"]; ep.CacheHits == 0 {
		t.Errorf("no cache hit in deterministic fidelity: %+v", ep)
	}
	if rep, ok := m.Process["edge"]; !ok || rep.Frames == 0 || rep.Kernel.Count == 0 {
		t.Errorf("process pipeline stats missing kernel activity: %+v", m.Process)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(text.Bytes(), []byte(`pipeline="process:edge"`)) {
		t.Errorf("prometheus text missing per-kernel pipeline series:\n%s", text.String())
	}

	// CA disabled: 501, and the registry is empty.
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols, cfg.CAPool = 32, 32, 0
	noCA, err := lightator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := testServer(t, noCA, lightator.ServeOptions{BatchDelay: time.Millisecond})
	if status, _ := postJSON(t, ts2.URL+"/v1/process",
		lightator.NewProcessRequest(scene, "edge", nil), nil); status != http.StatusNotImplemented {
		t.Errorf("CA-disabled process got %d, want 501", status)
	}
	resp, err = http.Get(ts2.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	var empty lightator.KernelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(empty.Kernels) != 0 {
		t.Errorf("CA-disabled registry lists %d kernels, want 0", len(empty.Kernels))
	}
}

// TestProcessNoisyBypassesCacheButReproduces mirrors the compress cache
// policy: PhysicalNoisy never touches the cache yet repeated requests
// reproduce bit-identically thanks to per-request seeding.
func TestProcessNoisyBypassesCacheButReproduces(t *testing.T) {
	acc := testAccelerator(t, lightator.PhysicalNoisy)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchDelay: time.Millisecond})
	req := lightator.NewProcessRequest(lightator.EncodeImage(testScene(17, 32, 32)), "reconstruct", nil)
	_, body1 := postJSON(t, ts.URL+"/v1/process", req, nil)
	_, body2 := postJSON(t, ts.URL+"/v1/process", req, nil)
	if !bytes.Equal(body1, body2) {
		t.Error("seeded noisy process responses must still be reproducible")
	}
	// An explicit seed changes the noise, and therefore the bytes.
	seed := int64(4242)
	seeded := req
	seeded.Seed = &seed
	_, body3 := postJSON(t, ts.URL+"/v1/process", seeded, nil)
	if bytes.Equal(body1, body3) {
		t.Error("explicit request seed did not change the noisy response")
	}
	if m := srv.Metrics(); m.Endpoints["/v1/process"].CacheHits != 0 || m.Endpoints["/v1/process"].CacheMisses != 0 {
		t.Errorf("cache touched in noisy fidelity: %+v", m.Endpoints["/v1/process"])
	}
}
