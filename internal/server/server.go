// Package server is Lightator's network serving layer: an HTTP/JSON
// front-end over the accelerator that turns independent requests into
// pipeline batches via dynamic micro-batching.
//
//	POST   /v1/capture             one ADC-less sensor readout        (micro-batched)
//	POST   /v1/compress            capture + compressive acquisition  (micro-batched)
//	POST   /v1/process             capture + CA + compressed-domain kernel (micro-batched)
//	POST   /v1/matvec              one optical matrix-vector product
//	POST   /v1/simulate            architecture simulation of a named model
//	POST   /v1/session             open a streaming video session
//	POST   /v1/session/{id}/frames NDJSON frames in, ordered results out
//	GET    /v1/session/{id}        session reuse counters
//	DELETE /v1/session/{id}        close a session (final counters)
//	GET    /v1/kernels             the compressed-domain kernel registry
//	GET    /healthz                liveness (always 200 while the process runs)
//	GET    /readyz                 readiness (503 while draining)
//	GET    /metrics                Prometheus text (or ?format=json snapshot)
//
// Three serving properties are load-bearing (docs/SERVER.md):
//
//   - Determinism: a micro-batched response is byte-identical to the
//     corresponding direct facade call — each frame enters the pipeline
//     with its own seed (pipeline.RunSeeded), so batch composition never
//     leaks into a result. That also makes responses content-addressable:
//     deterministic fidelities are served from a content-hash LRU cache.
//
//   - Backpressure: admission is a bounded queue; when it is full the
//     request is rejected with 429 instead of queueing unboundedly.
//
//   - Graceful shutdown: Drain stops admission (503 for new work),
//     flushes partially-filled batches immediately, and waits for every
//     in-flight frame before returning.
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"lightator/internal/arch"
	"lightator/internal/energy"
	"lightator/internal/kernels"
	"lightator/internal/oc"
	"lightator/internal/pipeline"
	"lightator/internal/sensor"
	"lightator/internal/session"
	"lightator/internal/trace"
)

// maxBodyBytes bounds request bodies: a 256x256 RGB float64 scene is
// ~2.1 MB base64-encoded, so 64 MB leaves generous headroom for larger
// sensors and matvec weight payloads without letting one client exhaust
// memory.
const maxBodyBytes = 64 << 20

// Backend wires the server to the accelerator internals. The facade
// (lightator.Accelerator.NewServer) is the intended constructor of this
// struct; tests may assemble it directly.
type Backend struct {
	// Capture is the capture-only pipeline behind /v1/capture.
	Capture *pipeline.Pipeline
	// Compress is the capture+CA pipeline behind /v1/compress; nil when
	// the accelerator has compressive acquisition disabled.
	Compress *pipeline.Pipeline
	// Process maps each registered compressed-domain kernel to its
	// capture+CA+kernel pipeline (behind /v1/process); nil or empty when
	// compressive acquisition is disabled.
	Process map[string]*pipeline.Pipeline
	// Kernels describes the registry for GET /v1/kernels, sorted by name.
	Kernels []KernelInfo
	// Infer maps each registered inference model to its capture+CA+infer
	// pipeline (behind /v1/infer scene requests); nil or empty when
	// compressive acquisition is disabled.
	Infer map[string]*pipeline.Pipeline
	// Models describes the registry for GET /v1/models, sorted by name.
	Models []ModelInfo
	// InferPlane runs a registered model directly over a pre-compressed
	// measurement plane (the /v1/infer plane path, which bypasses the
	// micro-batcher — there is no pipeline trip to coalesce).
	InferPlane func(model string, plane *sensor.Image, seed int64) ([]float64, error)
	// KernelObjects maps kernel names to their operators, for streaming
	// sessions (which run the kernel stage themselves, after the delta
	// diff). Keys mirror Process.
	KernelObjects map[string]kernels.Kernel
	// ModelObjects maps model names to their inference models, for
	// streaming sessions. Keys mirror Infer.
	ModelObjects map[string]pipeline.InferModel
	// Core executes /v1/matvec.
	Core *oc.Core
	// Seed is the base noise seed a request without an explicit seed
	// uses — the accelerator Config.Seed, so default responses line up
	// with the facade's batched paths.
	Seed int64
	// Deterministic reports whether the analog fidelity is noise-free
	// (Ideal or Physical); it gates the response cache for the compute
	// endpoints. (Seeded noisy responses are reproducible too, but the
	// cache intentionally serves only deterministic fidelities.)
	Deterministic bool
	// Simulate runs the architecture simulator for /v1/simulate.
	Simulate func(model string) (*arch.Report, error)
	// Energy prices per-request op counts for the observability layer; a
	// zero value takes energy.Default() — existing backends need not set
	// it.
	Energy energy.Params
	// WBits is the weight precision the energy bridge prices DAC holds
	// at; 0 takes the paper's default 4.
	WBits int
}

// Config tunes the serving layer; zero values take the documented
// defaults.
type Config struct {
	// BatchSize flushes a micro-batch when it reaches this many frames.
	// Default 8.
	BatchSize int
	// BatchDelay flushes a partial batch this long after its first frame
	// arrived. Default 2ms.
	BatchDelay time.Duration
	// Queue bounds each batched endpoint's admission queue; a full queue
	// rejects with 429. Default 64.
	Queue int
	// MaxBatches bounds concurrent in-flight pipeline batches per
	// endpoint. Default 2.
	MaxBatches int
	// CacheEntries sizes the content-hash response LRU; 0 means the
	// default 256, negative disables caching.
	CacheEntries int
	// TraceEntries sizes the /debug/traces ring; 0 means the default
	// 256, negative disables per-request trace retention (headers are
	// still set).
	TraceEntries int
	// Debug mounts the opt-in debug mux: net/http/pprof under
	// /debug/pprof/ and the runtime snapshot at /debug/runtime.
	// /debug/traces is always mounted.
	Debug bool
	// MaxSessions bounds concurrently open streaming sessions. Default 64.
	MaxSessions int
	// SessionIdleTimeout expires sessions with no activity. Default 60s;
	// negative disables expiry.
	SessionIdleTimeout time.Duration
	// SessionWindow is the default per-stream in-flight frame window (the
	// connection-level backpressure bound). Default 8.
	SessionWindow int
	// RequestTimeout bounds each compute request's wall time; a request
	// that outlives it gets 504 deadline_exceeded (its frame may still
	// complete inside the batch). 0 disables; negative also disables.
	RequestTimeout time.Duration
	// ReadHeaderTimeout and IdleTimeout harden the HTTP listener against
	// slow-loris clients and idle keep-alive pile-ups. Defaults 10s and
	// 120s; negative disables.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	// RejectDegraded turns degraded service into refusal: while any
	// optical component is degraded (retired rows, unrecovered ABFT
	// detections), compute requests get 503 degraded_unavailable instead
	// of a flagged 200 (docs/FAULTS.md#the-wire-contract).
	RejectDegraded bool
	// ShedCacheMiss, ShedNonSession and ShedAll are the tiered load
	// shedder's queue-occupancy thresholds in (0,1]: at ShedCacheMiss the
	// server sheds cache-miss bulk compute, at ShedNonSession all
	// non-session compute (cache hits included), at ShedAll everything
	// (session opens and streams too). Defaults 0.75 / 0.90 / 0.98;
	// negative disables that tier.
	ShedCacheMiss  float64
	ShedNonSession float64
	ShedAll        float64
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 2
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.TraceEntries == 0 {
		c.TraceEntries = 256
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.ShedCacheMiss == 0 {
		c.ShedCacheMiss = 0.75
	}
	if c.ShedNonSession == 0 {
		c.ShedNonSession = 0.90
	}
	if c.ShedAll == 0 {
		c.ShedAll = 0.98
	}
	return c
}

// Server is a configured serving layer. Create with New, expose with
// Handler (or Serve/ListenAndServe), stop with Drain or Shutdown.
type Server struct {
	backend Backend
	cfg     Config
	mux     *http.ServeMux
	m       *metrics
	cache   *responseCache
	traces  *trace.Ring
	// energy maps each pipeline series (capture, compress,
	// process:<kernel>, infer:<model>) to its modeled per-request gauge,
	// fixed at construction.
	energy map[string]EnergyGauge

	captureB  *batcher
	compressB *batcher
	processB  map[string]*batcher // one micro-batcher per kernel
	inferB    map[string]*batcher // one micro-batcher per model

	// sessions is the streaming-session registry; nil when compressive
	// acquisition is disabled (sessions stream the capture+CA pipeline).
	sessions *session.Manager

	// chaos reports an active fault-injection plan on the core. The
	// response cache is disabled under chaos: injected faults make
	// outputs depend on per-request seeds and on the recovery ladder's
	// live state, neither of which the content-hash key captures.
	chaos bool

	inflight atomic.Int64
	draining atomic.Bool
	stopped  chan struct{} // closed when Drain has finished

	httpSrv *http.Server
}

// New builds a server over the backend. The Capture pipeline is required;
// Compress may be nil (its endpoint then reports 501).
func New(b Backend, cfg Config) (*Server, error) {
	if b.Capture == nil {
		return nil, fmt.Errorf("server: backend needs a capture pipeline")
	}
	if b.Core == nil {
		return nil, fmt.Errorf("server: backend needs an optical core")
	}
	if b.Simulate == nil {
		return nil, fmt.Errorf("server: backend needs a simulate function")
	}
	cfg = cfg.withDefaults()
	// Zero-value energy params mean "unconfigured" (a real model always
	// has a clock): default them so directly-assembled backends keep
	// working and always price requests with the calibrated model.
	if b.Energy.ClockHz == 0 {
		b.Energy = energy.Default()
	}
	if b.WBits == 0 {
		b.WBits = 4
	}
	s := &Server{
		backend: b,
		cfg:     cfg,
		m:       newMetrics(),
		cache:   newResponseCache(cfg.CacheEntries),
		traces:  trace.NewRing(cfg.TraceEntries),
		chaos:   b.Core.FaultPlan() != nil,
		stopped: make(chan struct{}),
	}
	// Per-series energy gauges are fixed by the pipelines' geometry;
	// compute them once.
	s.energy = make(map[string]EnergyGauge)
	addGauge := func(name string, pipe *pipeline.Pipeline) {
		j := b.Energy.RequestEnergy(pipe.FrameOps().Total(), b.WBits).Total()
		s.energy[name] = EnergyGauge{
			EnergyJPerRequest: j,
			ModeledKFPSPerW:   energy.ModeledKFPSPerW(j),
		}
	}
	addGauge("capture", b.Capture)
	if b.Compress != nil {
		addGauge("compress", b.Compress)
	}
	for name, pipe := range b.Process {
		addGauge("process:"+name, pipe)
	}
	for name, pipe := range b.Infer {
		addGauge("infer:"+name, pipe)
	}
	// Built here, not in Serve, so Shutdown never races a concurrent
	// Serve call on the field. Header/idle timeouts bound slow-loris
	// clients and keep-alive pile-ups (negative config disables).
	s.httpSrv = &http.Server{}
	if cfg.ReadHeaderTimeout > 0 {
		s.httpSrv.ReadHeaderTimeout = cfg.ReadHeaderTimeout
	}
	if cfg.IdleTimeout > 0 {
		s.httpSrv.IdleTimeout = cfg.IdleTimeout
	}
	s.captureB = newBatcher(b.Capture, cfg.BatchSize, cfg.Queue, cfg.MaxBatches, cfg.BatchDelay, s.m)
	if b.Compress != nil {
		s.compressB = newBatcher(b.Compress, cfg.BatchSize, cfg.Queue, cfg.MaxBatches, cfg.BatchDelay, s.m)
	}
	s.processB = make(map[string]*batcher, len(b.Process))
	for name, pipe := range b.Process {
		s.processB[name] = newBatcher(pipe, cfg.BatchSize, cfg.Queue, cfg.MaxBatches, cfg.BatchDelay, s.m)
	}
	s.inferB = make(map[string]*batcher, len(b.Infer))
	for name, pipe := range b.Infer {
		s.inferB[name] = newBatcher(pipe, cfg.BatchSize, cfg.Queue, cfg.MaxBatches, cfg.BatchDelay, s.m)
	}
	if b.Compress != nil {
		s.sessions = session.NewManager(session.ManagerConfig{
			MaxSessions: cfg.MaxSessions,
			IdleTimeout: cfg.SessionIdleTimeout,
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/capture", s.instrument("/v1/capture", handleFrame[CaptureRequest](s, "/v1/capture", s.captureOp)))
	mux.HandleFunc("POST /v1/compress", s.instrument("/v1/compress", handleFrame[CompressRequest](s, "/v1/compress", s.compressOp)))
	mux.HandleFunc("POST /v1/process", s.instrument("/v1/process", handleFrame[ProcessRequest](s, "/v1/process", s.processOp)))
	mux.HandleFunc("POST /v1/infer", s.instrument("/v1/infer", handleFrame[InferRequest](s, "/v1/infer", s.inferOp)))
	mux.HandleFunc("POST /v1/session", s.instrument("/v1/session", s.handleSessionOpen))
	mux.HandleFunc("POST /v1/session/{id}/frames", s.instrumentStream("/v1/session/frames", s.handleSessionFrames))
	mux.HandleFunc("GET /v1/session/{id}", s.instrument("/v1/session", s.handleSessionStats))
	mux.HandleFunc("DELETE /v1/session/{id}", s.instrument("/v1/session", s.handleSessionClose))
	mux.HandleFunc("POST /v1/matvec", s.instrument("/v1/matvec", s.handleMatVec))
	mux.HandleFunc("POST /v1/simulate", s.instrument("/v1/simulate", s.handleSimulate))
	mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if cfg.Debug {
		s.mountDebug(mux)
	}
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler (for httptest or embedding behind an
// existing server/router).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a snapshot of the server's counters and the cumulative
// pipeline stats behind the batched endpoints.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.m.snapshot()
	snap.Inflight = s.inflight.Load()
	snap.Draining = s.draining.Load()
	snap.CacheEntries = s.cache.len()
	snap.CacheCapacity = s.cache.capacity()
	snap.CacheBytes = s.cache.sizeBytes()
	snap.Queues = s.queueSnapshots()
	snap.Energy = make(map[string]EnergyGauge, len(s.energy))
	for name, g := range s.energy {
		snap.Energy[name] = g
	}
	st := s.backend.Capture.Stats()
	snap.Capture = st.Report()
	if s.backend.Compress != nil {
		st = s.backend.Compress.Stats()
		snap.Compress = st.Report()
	}
	if len(s.backend.Process) > 0 {
		snap.Process = make(map[string]pipeline.StatsReport, len(s.backend.Process))
		for name, pipe := range s.backend.Process {
			st = pipe.Stats()
			snap.Process[name] = st.Report()
		}
	}
	if len(s.backend.Infer) > 0 {
		snap.Infer = make(map[string]pipeline.StatsReport, len(s.backend.Infer))
		for name, pipe := range s.backend.Infer {
			st = pipe.Stats()
			snap.Infer[name] = st.Report()
		}
	}
	if s.sessions != nil {
		ss := s.sessions.Stats()
		snap.Sessions = &ss
	}
	reg := s.backend.Core.Health()
	snap.Degraded = reg.Degraded()
	snap.Health = reg.Snapshot()
	return snap
}

// queueSnapshots gauges every batched endpoint's admission state, keyed
// by endpoint with per-kernel/model series suffixed by name.
func (s *Server) queueSnapshots() map[string]QueueSnapshot {
	qs := make(map[string]QueueSnapshot, 2+len(s.processB)+len(s.inferB))
	add := func(name string, b *batcher) {
		if b == nil {
			return
		}
		qs[name] = QueueSnapshot{
			Depth:           b.queueDepth(),
			Occupancy:       b.occupancy(),
			InflightBatches: b.inflightBatches(),
		}
	}
	add("/v1/capture", s.captureB)
	add("/v1/compress", s.compressB)
	for name, b := range s.processB {
		add("/v1/process:"+name, b)
	}
	for name, b := range s.inferB {
		add("/v1/infer:"+name, b)
	}
	return qs
}

// Drain gracefully stops the serving layer: new submissions are rejected
// with 503 immediately, partially-collected micro-batches flush without
// waiting out their deadline, and Drain returns once every in-flight
// frame has its response delivered (or ctx expires — the drain itself
// keeps going in the background, and further Drain calls wait on it).
// The HTTP listener, if any, is not touched — use Shutdown for the full
// sequence.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		go func() {
			// Sessions first: active streams stop feeding, finish their
			// in-flight frames, and report ErrClosed to the client before
			// the batchers flush.
			if s.sessions != nil {
				s.sessions.Drain()
			}
			s.captureB.close()
			if s.compressB != nil {
				s.compressB.close()
			}
			for _, b := range s.processB {
				b.close()
			}
			for _, b := range s.inferB {
				b.close()
			}
			close(s.stopped)
		}()
	}
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv.Handler = s.mux
	return s.httpSrv.Serve(l)
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown is the full graceful stop for a Serve/ListenAndServe server:
// stop accepting connections, let in-flight handlers finish (they keep
// being fed by the still-running batchers), then drain the batchers.
func (s *Server) Shutdown(ctx context.Context) error {
	httpErr := s.httpSrv.Shutdown(ctx)
	if err := s.Drain(ctx); err != nil {
		return err
	}
	return httpErr
}

// statusClientClosed is nginx's convention for "client went away while we
// were working"; it is not a server failure and must not trip error-rate
// alerts.
const statusClientClosed = 499

// Shed tiers, ordered by severity. The tiered shedder replaces the old
// single full-queue gate: load sheds the cheapest-to-refuse traffic
// first (uncached bulk compute), then all non-session compute, and only
// at the last tier the session streams (docs/FAULTS.md#load-shedding).
const (
	shedNone = iota
	shedTierCacheMiss
	shedTierNonSession
	shedTierAll
)

// Shed sentinels, typed like the admission-control ones.
var (
	errShedCacheMiss = apiErr(http.StatusTooManyRequests, CodeShedOverload,
		"overloaded, shedding uncached compute")
	errShedNonSession = apiErr(http.StatusTooManyRequests, CodeShedOverload,
		"overloaded, shedding non-session requests")
	errShedAll = apiErr(http.StatusServiceUnavailable, CodeShedOverload,
		"overloaded, shedding all requests")
	errDegraded = apiErr(http.StatusServiceUnavailable, CodeDegradedUnavailable,
		"accelerator degraded, rejecting requests per policy")
)

// shedLevel maps the worst batched-endpoint queue occupancy onto a shed
// tier. Reading channel lengths is a few atomic loads — cheap enough per
// request. Health endpoints (/healthz, /readyz, /metrics) are never
// shed; they are exactly what an operator needs during an overload.
func (s *Server) shedLevel() int {
	load := s.captureB.load()
	if s.compressB != nil {
		load = max(load, s.compressB.load())
	}
	for _, b := range s.processB {
		load = max(load, b.load())
	}
	for _, b := range s.inferB {
		load = max(load, b.load())
	}
	cfg := s.cfg
	switch {
	case cfg.ShedAll > 0 && load >= cfg.ShedAll:
		return shedTierAll
	case cfg.ShedNonSession > 0 && load >= cfg.ShedNonSession:
		return shedTierNonSession
	case cfg.ShedCacheMiss > 0 && load >= cfg.ShedCacheMiss:
		return shedTierCacheMiss
	default:
		return shedNone
	}
}

// degraded reports whether any optical component registered on the core
// is serving degraded output (docs/FAULTS.md#degradation).
func (s *Server) degraded() bool { return s.backend.Core.Health().Degraded() }

// shedGate applies the tier-2 and tier-3 sheds (non-session traffic).
func (s *Server) shedGate() error {
	switch lvl := s.shedLevel(); {
	case lvl >= shedTierAll:
		s.m.shed("all")
		return errShedAll
	case lvl >= shedTierNonSession:
		s.m.shed("non_session")
		return errShedNonSession
	}
	return nil
}

// admitCompute applies the shed tiers and the degraded policy for
// non-session compute endpoints, before any cache probe (tier-2 sheds
// refuse even cache hits — at that point the queue backlog, not compute,
// is the bottleneck).
func (s *Server) admitCompute() error {
	if err := s.shedGate(); err != nil {
		return err
	}
	if s.cfg.RejectDegraded && s.degraded() {
		return errDegraded
	}
	return nil
}

// flagDegraded marks a response as served while its optical components
// were degraded — the header twin of the body's "degraded" field, so
// proxies and clients that never decode bodies still see the state.
func (s *Server) flagDegraded(w http.ResponseWriter) {
	w.Header().Set("X-Lightator-Degraded", "true")
	s.m.degradedResp()
}

// admitSession is the session-traffic gate: streams and opens survive
// until the last shed tier.
func (s *Server) admitSession() error {
	if s.shedLevel() >= shedTierAll {
		s.m.shed("all")
		return errShedAll
	}
	if s.cfg.RejectDegraded && s.degraded() {
		return errDegraded
	}
	return nil
}

// instrument wraps a handler with inflight/latency/error accounting and
// the per-request deadline (RequestTimeout): the handler's context is
// bounded, so a frame stuck behind a backlog returns 504 instead of
// holding its connection indefinitely.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) (int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		start := time.Now()
		status, err := h(w, r)
		if err != nil {
			writeError(w, status, err)
		}
		switch status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			s.m.reject(endpoint)
		case http.StatusGatewayTimeout:
			s.m.deadline()
			s.m.observe(endpoint, time.Since(start), true)
		default:
			s.m.observe(endpoint, time.Since(start), status >= 400 && status != statusClientClosed)
		}
	}
}

// writeJSON marshals body with status; the precomputed form is used on
// cache hits so hit and miss responses are the same bytes.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, err error) {
	body, _ := json.Marshal(errorBody(status, err))
	writeJSON(w, status, body)
}

// decodeBody strictly decodes a JSON request body.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: request body: %w", err)
	}
	return nil
}

// decodeStatus maps a body-decode failure to its HTTP status: 413 when
// the MaxBytesReader cap tripped, 400 otherwise.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// effectiveSeed resolves a request's seed against the server default.
func (s *Server) effectiveSeed(req *int64) int64 {
	if req != nil {
		return *req
	}
	return s.backend.Seed
}

// submitFrame runs one scene through a batched endpoint: cache probe,
// micro-batcher submission, and the wait for this frame's result. The
// request context bounds the wait, so a departed client releases its
// handler even though the frame itself still completes in the batch.
func (s *Server) submitFrame(r *http.Request, b *batcher, seed int64, scene *sensor.Image) (pipeline.Result, int, error) {
	if s.draining.Load() {
		return pipeline.Result{}, http.StatusServiceUnavailable, errDraining
	}
	// Tier-1 shed: reaching here means the cache did not answer, so this
	// is exactly the uncached bulk compute the first tier refuses.
	// (Tier-2/3 loads were already rejected at admission.)
	if s.shedLevel() >= shedTierCacheMiss {
		s.m.shed("cache_miss")
		return pipeline.Result{}, http.StatusTooManyRequests, errShedCacheMiss
	}
	it := batchItem{seed: seed, scene: scene, done: make(chan pipeline.Result, 1)}
	if err := b.submit(it); err != nil {
		status := http.StatusTooManyRequests
		if errors.Is(err, errDraining) {
			status = http.StatusServiceUnavailable
		}
		return pipeline.Result{}, status, err
	}
	select {
	case res := <-it.done:
		if res.Err != nil {
			// Frame-level errors are bad inputs (e.g. scene/sensor size
			// mismatch), surfaced per-frame by the pipeline.
			return pipeline.Result{}, http.StatusBadRequest, wrapErr(http.StatusBadRequest, CodeFrameFailed, "frame failed", res.Err)
		}
		return res, http.StatusOK, nil
	case <-r.Context().Done():
		if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			// The per-request deadline fired, not the client: the frame
			// still completes inside its batch, only the response is gone.
			return pipeline.Result{}, http.StatusGatewayTimeout,
				wrapErr(http.StatusGatewayTimeout, CodeDeadlineExceeded, "request deadline exceeded", r.Context().Err())
		}
		return pipeline.Result{}, statusClientClosed, wrapErr(statusClientClosed, CodeClientClosed, "client went away", r.Context().Err())
	}
}

// respond is the shared cache-or-compute tail of every compute endpoint:
// probe the cache when use is set (recording hit/miss), otherwise run
// compute, cache the marshaled body (when use) and write it. Keeping this
// in one place guarantees hit and miss responses are the same bytes on
// every endpoint. (Trace/cache headers differ between hit and miss by
// design; the byte-identity contract covers bodies.) start is the
// request's arrival time, stamped onto the cache-hit trace.
func (s *Server) respond(w http.ResponseWriter, endpoint string, start time.Time, use bool, key cacheKey, compute func() ([]byte, int, error)) (int, error) {
	if use {
		if body, ok := s.cache.get(key); ok {
			s.m.cache(endpoint, true)
			s.traceCacheHit(w, endpoint, start)
			writeJSON(w, http.StatusOK, body)
			return http.StatusOK, nil
		}
		s.m.cache(endpoint, false)
	}
	body, status, err := compute()
	if err != nil {
		return status, err
	}
	if use {
		s.cache.put(key, body)
		w.Header().Set("X-Lightator-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, body)
	return http.StatusOK, nil
}

// handleModels lists the compressed-domain inference model registry. The
// list is fixed at construction, so no instrumentation or caching is
// needed.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(ModelsResponse{Models: s.backend.Models})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleKernels lists the compressed-domain kernel registry. The list is
// fixed at construction, so no instrumentation or caching is needed.
func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(KernelsResponse{Kernels: s.backend.Kernels})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMatVec programs the request's weight matrix and applies the
// activation vector with the frame-0 seed derivation, matching the
// facade's MatVecBatch on a single-vector batch.
// Draining is checked inside the compute closure, not up front, so cache
// hits keep serving mid-drain on every endpoint (same policy as
// capture/compress, whose drain check lives in submitFrame).
func (s *Server) handleMatVec(w http.ResponseWriter, r *http.Request) (int, error) {
	start := time.Now()
	var req MatVecRequest
	if err := decodeBody(r, &req); err != nil {
		return decodeStatus(err), err
	}
	if len(req.Weights) == 0 || len(req.Activations) == 0 {
		return http.StatusBadRequest, fmt.Errorf("server: matvec needs weights and activations")
	}
	if err := s.admitCompute(); err != nil {
		return errStatus(err, http.StatusServiceUnavailable), err
	}
	// Seed omitted for the same reason as compress: cacheable means
	// noise-free, so the result is seed-independent. Chaos/degraded
	// states disable caching (see the chaos field).
	cacheable := s.cache != nil && s.backend.Deterministic && !s.chaos && !s.degraded()
	var key cacheKey
	if cacheable {
		parts := make([][]byte, 0, len(req.Weights)+1)
		for _, row := range req.Weights {
			parts = append(parts, floatBytes(row))
		}
		parts = append(parts, floatBytes(req.Activations))
		key = hashRequest("matvec", 0, parts...)
	}
	return s.respond(w, "/v1/matvec", start, cacheable, key, func() ([]byte, int, error) {
		if s.draining.Load() {
			return nil, http.StatusServiceUnavailable, errDraining
		}
		ys, err := s.backend.Core.MatVecBatch(req.Weights, [][]float64{req.Activations}, 1, s.effectiveSeed(req.Seed))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		// One runtime-driven matrix apply: rows readouts, every
		// coefficient DAC-held for its cycle.
		rows, cols := int64(len(req.Weights)), int64(len(req.Activations))
		s.traceSpan(w, "/v1/matvec", "", "matvec", start, trace.OpCounts{
			MVMRows:        rows,
			DACSettles:     rows * cols,
			ADCConversions: rows,
			MRCoeffHolds:   rows * cols,
		})
		degraded := s.backend.Core.Health().Component("mvm").Degraded()
		if degraded {
			s.flagDegraded(w)
		}
		body, err := json.Marshal(MatVecResponse{Output: ys[0], Degraded: degraded})
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return body, http.StatusOK, nil
	})
}

// handleSimulate runs the architecture simulator; reports are
// deterministic, so they always cache.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) (int, error) {
	start := time.Now()
	var req SimulateRequest
	if err := decodeBody(r, &req); err != nil {
		return decodeStatus(err), err
	}
	if req.Model == "" {
		return http.StatusBadRequest, fmt.Errorf("server: simulate needs a model name")
	}
	// Simulation is purely digital, so the degraded policy does not apply
	// — only the shed tiers do.
	if err := s.shedGate(); err != nil {
		return errStatus(err, http.StatusServiceUnavailable), err
	}
	var key cacheKey
	if s.cache != nil {
		key = hashRequest("simulate", 0, []byte(req.Model))
	}
	return s.respond(w, "/v1/simulate", start, s.cache != nil, key, func() ([]byte, int, error) {
		if s.draining.Load() {
			return nil, http.StatusServiceUnavailable, errDraining
		}
		rep, err := s.backend.Simulate(req.Model)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		// Purely digital: the trace carries identity and wall time, no
		// analog op counts.
		s.traceSpan(w, "/v1/simulate", req.Model, "simulate", start, trace.OpCounts{})
		body, err := json.Marshal(rep)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		return body, http.StatusOK, nil
	})
}

// handleHealthz reports liveness: always 200 while the process runs, even
// mid-drain or degraded — a liveness probe that fails then would get the
// process killed while it can still serve (degraded output is flagged,
// not dead). Routing decisions belong to /readyz; the degraded detail
// here is for operators and the chaos suite.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reg := s.backend.Core.Health()
	degraded := reg.Degraded()
	state := "ok"
	if degraded {
		state = "degraded"
	}
	if s.draining.Load() {
		state = "draining"
	}
	resp := HealthzResponse{
		Status:   state,
		Inflight: s.inflight.Load(),
		Degraded: degraded,
		Failing:  reg.Failing(),
	}
	body, _ := json.Marshal(resp)
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz reports readiness: 503 while draining so load balancers
// stop routing here, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ready"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	body, _ := json.Marshal(map[string]any{"status": state})
	writeJSON(w, status, body)
}

// handleMetrics serves Prometheus text by default, the full JSON snapshot
// with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Metrics()
	if r.URL.Query().Get("format") == "json" {
		body, err := json.Marshal(snap)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, renderProm(snap))
}

// dimBytes packs dimensions into the cache key so 2x8 and 8x2 planes with
// identical sample bytes hash differently.
func dimBytes(dims ...int) []byte {
	buf := make([]byte, 8*len(dims))
	for i, d := range dims {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(d))
	}
	return buf
}
