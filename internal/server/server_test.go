// End-to-end tests of the serving layer, run through the public facade so
// the determinism contract is checked against the exact calls it is
// stated in terms of (lightator.AcquireCompressed and friends).
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lightator"
	"lightator/internal/server"
)

// testAccelerator builds a small, fast accelerator (32x32 sensor, 2x2 CA).
func testAccelerator(t *testing.T, fid lightator.Fidelity) *lightator.Accelerator {
	t.Helper()
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols = 32, 32
	cfg.Fidelity = fid
	acc, err := lightator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// testServer stands up a server over acc with the given options and
// registers cleanup (drain, then close the listener).
func testServer(t *testing.T, acc *lightator.Accelerator, opts lightator.ServeOptions) (*lightator.Server, *httptest.Server) {
	t.Helper()
	srv, err := acc.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
	})
	return srv, ts
}

// testScene builds a deterministic RGB scene.
func testScene(seed int64, h, w int) *lightator.Image {
	rng := rand.New(rand.NewSource(seed))
	s := lightator.NewImage(h, w, 3)
	for i := range s.Pix {
		s.Pix[i] = rng.Float64()
	}
	return s
}

// postJSON posts v and decodes the response body into out (when non-nil),
// returning the status code and raw body.
func postJSON(t *testing.T, url string, v any, out any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s response: %v (body %q)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.Bytes()
}

// TestConcurrentCompressMatchesDirect is the acceptance-criterion test:
// many concurrent clients hitting /v1/compress — so their requests
// coalesce into shared micro-batches — get responses byte-identical to
// direct facade calls, in every fidelity.
func TestConcurrentCompressMatchesDirect(t *testing.T) {
	const clients = 10
	for _, fid := range []lightator.Fidelity{lightator.Ideal, lightator.Physical, lightator.PhysicalNoisy} {
		t.Run(fid.String(), func(t *testing.T) {
			acc := testAccelerator(t, fid)
			// Small batch size and a non-trivial delay force both size-
			// and deadline-triggered flushes across the burst.
			_, ts := testServer(t, acc, lightator.ServeOptions{
				Workers: 2, BatchSize: 4, BatchDelay: 5 * time.Millisecond,
			})

			scenes := make([]*lightator.Image, clients)
			for i := range scenes {
				scenes[i] = testScene(int64(100+i), 32, 32)
			}
			// Direct single-scene batches: the calls the contract quotes.
			want := make([]*lightator.Image, clients)
			for i, s := range scenes {
				out, err := acc.AcquireCompressedBatch([]*lightator.Image{s}, 1)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = out[0]
			}

			got := make([]*lightator.Image, clients)
			var wg sync.WaitGroup
			for i := range scenes {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					var resp lightator.CompressResponse
					status, body := postJSON(t, ts.URL+"/v1/compress",
						lightator.NewCompressRequest(lightator.EncodeImage(scenes[i]), nil), &resp)
					if status != http.StatusOK {
						t.Errorf("client %d: status %d (%s)", i, status, body)
						return
					}
					im, err := lightator.DecodeImage(resp.Image)
					if err != nil {
						t.Errorf("client %d: %v", i, err)
						return
					}
					got[i] = im
				}(i)
			}
			wg.Wait()

			for i := range scenes {
				if got[i] == nil {
					t.Fatalf("client %d: no response", i)
				}
				for j := range want[i].Pix {
					if got[i].Pix[j] != want[i].Pix[j] {
						t.Fatalf("fidelity %v client %d: pixel %d differs: %g (HTTP) vs %g (direct)",
							fid, i, j, got[i].Pix[j], want[i].Pix[j])
					}
				}
				// In noise-free fidelities the serial facade path must
				// agree too.
				if fid != lightator.PhysicalNoisy {
					serial, err := acc.AcquireCompressed(scenes[i])
					if err != nil {
						t.Fatal(err)
					}
					for j := range serial.Pix {
						if got[i].Pix[j] != serial.Pix[j] {
							t.Fatalf("client %d: pixel %d differs from AcquireCompressed", i, j)
						}
					}
				}
			}
		})
	}
}

// TestBatcherFlushTriggers pins both flush paths: a full batch flushes on
// size without waiting out the deadline, and a partial batch flushes on
// the deadline.
func TestBatcherFlushTriggers(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	// Deadline far too long to finish the test: only a size trigger can
	// deliver these four responses quickly.
	srv, ts := testServer(t, acc, lightator.ServeOptions{
		Workers: 2, BatchSize: 4, BatchDelay: 30 * time.Second, CacheEntries: -1,
	})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJSON(t, ts.URL+"/v1/compress",
				lightator.NewCompressRequest(lightator.EncodeImage(testScene(int64(i), 32, 32)), nil), nil)
			if status != http.StatusOK {
				t.Errorf("status %d (%s)", status, body)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("size-triggered flush took %v; batch must not wait for the deadline", elapsed)
	}
	if m := srv.Metrics(); m.Batcher.SizeFlushes == 0 {
		t.Errorf("no size-triggered flush recorded: %+v", m.Batcher)
	}

	// Deadline trigger: batch far larger than the two requests sent.
	srv2, ts2 := testServer(t, acc, lightator.ServeOptions{
		Workers: 2, BatchSize: 64, BatchDelay: 10 * time.Millisecond, CacheEntries: -1,
	})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJSON(t, ts2.URL+"/v1/compress",
				lightator.NewCompressRequest(lightator.EncodeImage(testScene(int64(i), 32, 32)), nil), nil)
			if status != http.StatusOK {
				t.Errorf("status %d (%s)", status, body)
			}
		}(i)
	}
	wg.Wait()
	if m := srv2.Metrics(); m.Batcher.DeadlineFlushes == 0 {
		t.Errorf("no deadline-triggered flush recorded: %+v", m.Batcher)
	}
}

// TestOverloadReturns429 pins admission control: with a tiny queue and a
// slow-flushing batcher, a burst must see rejections — 429 from the
// bounded queue and the lower shed tiers, 503 once occupancy crosses the
// shed-everything tier (with a queue of 1, any queued item is 100%
// occupancy) — while every accepted request still completes.
func TestOverloadReturns429(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	// Queue of 1, one in-flight batch, and a batch size of 2 with a long
	// deadline: the burst of 32 cannot all fit in flight.
	srv, ts := testServer(t, acc, lightator.ServeOptions{
		Workers: 1, BatchSize: 2, BatchDelay: 20 * time.Millisecond,
		Queue: 1, MaxBatches: 1, CacheEntries: -1,
	})
	const burst = 32
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct scenes so no two requests could ever be conflated.
			statuses[i], _ = postJSON(t, ts.URL+"/v1/compress",
				lightator.NewCompressRequest(lightator.EncodeImage(testScene(int64(i), 32, 32)), nil), nil)
		}(i)
	}
	wg.Wait()
	var ok, rejected int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if rejected == 0 {
		t.Errorf("burst of %d with queue=1 produced no rejections (ok=%d)", burst, ok)
	}
	if ok == 0 {
		t.Errorf("burst of %d produced no successes (rejected=%d)", burst, rejected)
	}
	m := srv.Metrics()
	if ep := m.Endpoints["/v1/compress"]; ep.Rejected != int64(rejected) {
		t.Errorf("metrics rejected=%d, observed %d", ep.Rejected, rejected)
	}
}

// TestGracefulShutdownDrains pins the drain contract: requests already
// admitted complete (their partially-filled batch flushes immediately,
// not at the deadline), and requests after drain get 503.
func TestGracefulShutdownDrains(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	srv, err := acc.NewServer(lightator.ServeOptions{
		Workers: 2, BatchSize: 64, BatchDelay: 30 * time.Second, CacheEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const inflight = 6
	statuses := make([]int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postJSON(t, ts.URL+"/v1/compress",
				lightator.NewCompressRequest(lightator.EncodeImage(testScene(int64(i), 32, 32)), nil), nil)
		}(i)
	}
	// Let the burst reach the batcher; with a 30s deadline and batch size
	// 64 the requests are necessarily parked in the collector when drain
	// begins.
	time.Sleep(200 * time.Millisecond)

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v; must flush parked batches immediately", elapsed)
	}
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("in-flight request %d finished with %d, want 200", i, st)
		}
	}

	// After drain: new work is refused, readiness reports draining, but
	// liveness stays 200 (a failing liveness probe would get the process
	// killed mid-drain).
	status, _ := postJSON(t, ts.URL+"/v1/compress",
		lightator.NewCompressRequest(lightator.EncodeImage(testScene(99, 32, 32)), nil), nil)
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-drain request got %d, want 503", status)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain readyz %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain healthz %d, want 200 (liveness must survive drain)", resp.StatusCode)
	}
	if m := srv.Metrics(); m.Batcher.DrainFlushes == 0 {
		t.Errorf("no drain-triggered flush recorded: %+v", m.Batcher)
	}
}

// TestCaptureMatchesDirect checks /v1/capture against the serial facade
// path (capture is noise-free in every fidelity).
func TestCaptureMatchesDirect(t *testing.T) {
	acc := testAccelerator(t, lightator.PhysicalNoisy)
	_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 2, BatchDelay: time.Millisecond})
	scene := testScene(7, 32, 32)
	want, err := acc.Capture(scene)
	if err != nil {
		t.Fatal(err)
	}
	var resp lightator.CaptureResponse
	status, body := postJSON(t, ts.URL+"/v1/capture",
		lightator.NewCaptureRequest(lightator.EncodeImage(scene), nil), &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, body)
	}
	got, err := lightator.DecodeFrame(resp.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("frame dims %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Codes {
		if got.Codes[i] != want.Codes[i] {
			t.Fatalf("code %d differs: %d vs %d", i, got.Codes[i], want.Codes[i])
		}
	}
}

// TestMatVecMatchesDirect checks /v1/matvec against the facade's seeded
// batch path in every fidelity, and the serial path when noise-free.
func TestMatVecMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := make([][]float64, 4)
	for r := range weights {
		weights[r] = make([]float64, 12)
		for c := range weights[r] {
			weights[r][c] = 2*rng.Float64() - 1
		}
	}
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.Float64()
	}
	for _, fid := range []lightator.Fidelity{lightator.Physical, lightator.PhysicalNoisy} {
		acc := testAccelerator(t, fid)
		_, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1})
		want, err := acc.MatVecBatch(weights, [][]float64{x}, 1)
		if err != nil {
			t.Fatal(err)
		}
		var resp lightator.MatVecResponse
		status, body := postJSON(t, ts.URL+"/v1/matvec",
			lightator.MatVecRequest{Weights: weights, Activations: x}, &resp)
		if status != http.StatusOK {
			t.Fatalf("%v: status %d (%s)", fid, status, body)
		}
		if len(resp.Output) != len(want[0]) {
			t.Fatalf("%v: output length %d, want %d", fid, len(resp.Output), len(want[0]))
		}
		for i := range want[0] {
			if resp.Output[i] != want[0][i] {
				t.Fatalf("%v: output %d differs: %g vs %g", fid, i, resp.Output[i], want[0][i])
			}
		}
		if fid != lightator.PhysicalNoisy {
			serial, err := acc.MatVec(weights, x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				if resp.Output[i] != serial[i] {
					t.Fatalf("output %d differs from serial MatVec", i)
				}
			}
		}
	}
}

// TestSimulateAndHealth covers /v1/simulate, /healthz and /metrics.
func TestSimulateAndHealth(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	srv, ts := testServer(t, acc, lightator.ServeOptions{})
	var rep lightator.PerformanceReport
	status, body := postJSON(t, ts.URL+"/v1/simulate", lightator.SimulateRequest{Model: "lenet"}, &rep)
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, body)
	}
	if rep.FPS <= 0 || rep.Model != "lenet" {
		t.Errorf("implausible report: model=%q fps=%g", rep.Model, rep.FPS)
	}
	// Repeat: must be a cache hit with identical bytes.
	status2, body2 := postJSON(t, ts.URL+"/v1/simulate", lightator.SimulateRequest{Model: "lenet"}, nil)
	if status2 != http.StatusOK || !bytes.Equal(body, body2) {
		t.Errorf("cached simulate response differs")
	}
	if status, _ := postJSON(t, ts.URL+"/v1/simulate", lightator.SimulateRequest{Model: "nope"}, nil); status != http.StatusBadRequest {
		t.Errorf("unknown model got %d, want 400", status)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap lightator.ServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ep := snap.Endpoints["/v1/simulate"]; ep.Requests < 3 || ep.CacheHits < 1 {
		t.Errorf("simulate metrics: %+v", ep)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(text.Bytes(), []byte("lightator_requests_total")) {
		t.Errorf("prometheus text missing counters: %q", text.String())
	}
	_ = srv
}

// TestCompressCacheDeterministicOnly: deterministic fidelities serve
// repeats from the cache with identical bytes; PhysicalNoisy bypasses the
// cache entirely (yet stays reproducible thanks to seeding).
func TestCompressCacheDeterministicOnly(t *testing.T) {
	scene := testScene(11, 32, 32)
	acc := testAccelerator(t, lightator.Physical)
	srv, ts := testServer(t, acc, lightator.ServeOptions{Workers: 1, BatchDelay: time.Millisecond})
	req := lightator.NewCompressRequest(lightator.EncodeImage(scene), nil)
	_, body1 := postJSON(t, ts.URL+"/v1/compress", req, nil)
	_, body2 := postJSON(t, ts.URL+"/v1/compress", req, nil)
	if !bytes.Equal(body1, body2) {
		t.Error("cached compress response differs from computed one")
	}
	if m := srv.Metrics(); m.Endpoints["/v1/compress"].CacheHits == 0 {
		t.Errorf("no cache hit in deterministic fidelity: %+v", m.Endpoints["/v1/compress"])
	}

	noisy := testAccelerator(t, lightator.PhysicalNoisy)
	nsrv, nts := testServer(t, noisy, lightator.ServeOptions{Workers: 1, BatchDelay: time.Millisecond})
	_, nbody1 := postJSON(t, nts.URL+"/v1/compress", req, nil)
	_, nbody2 := postJSON(t, nts.URL+"/v1/compress", req, nil)
	if !bytes.Equal(nbody1, nbody2) {
		t.Error("seeded noisy responses must still be reproducible")
	}
	if m := nsrv.Metrics(); m.Endpoints["/v1/compress"].CacheHits != 0 || m.Endpoints["/v1/compress"].CacheMisses != 0 {
		t.Errorf("cache touched in noisy fidelity: %+v", m.Endpoints["/v1/compress"])
	}
}

// TestBadRequests pins the client-error paths.
func TestBadRequests(t *testing.T) {
	acc := testAccelerator(t, lightator.Physical)
	_, ts := testServer(t, acc, lightator.ServeOptions{BatchDelay: time.Millisecond})

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/compress", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON got %d, want 400", resp.StatusCode)
	}

	// Image payload length inconsistent with dims.
	bad := lightator.EncodeImage(testScene(1, 16, 16))
	bad.H = 32
	if status, _ := postJSON(t, ts.URL+"/v1/compress", lightator.NewCompressRequest(bad, nil), nil); status != http.StatusBadRequest {
		t.Errorf("inconsistent image got %d, want 400", status)
	}

	// Overflow-crafted dims (h*w*c*8 wraps): must 400, not panic the
	// handler on allocation.
	huge := lightator.ImageWire{H: 1 << 31, W: 1 << 30, C: 1}
	if status, _ := postJSON(t, ts.URL+"/v1/capture", lightator.NewCaptureRequest(huge, nil), nil); status != http.StatusBadRequest {
		t.Errorf("overflow dims got %d, want 400", status)
	}

	// Scene that doesn't match the sensor: a per-frame pipeline error.
	if status, _ := postJSON(t, ts.URL+"/v1/compress",
		lightator.NewCompressRequest(lightator.EncodeImage(testScene(1, 16, 16)), nil), nil); status != http.StatusBadRequest {
		t.Errorf("mismatched scene got %d, want 400", status)
	}

	// Ragged matvec weights.
	if status, _ := postJSON(t, ts.URL+"/v1/matvec", lightator.MatVecRequest{
		Weights: [][]float64{{1, 2}, {3}}, Activations: []float64{0.5, 0.5},
	}, nil); status != http.StatusBadRequest {
		t.Errorf("ragged weights got %d, want 400", status)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on /v1/compress got %d, want 405", resp.StatusCode)
	}

	// Compress disabled: a CAPool=0 accelerator answers 501.
	cfg := lightator.DefaultConfig()
	cfg.SensorRows, cfg.SensorCols, cfg.CAPool = 32, 32, 0
	noCA, err := lightator.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := testServer(t, noCA, lightator.ServeOptions{BatchDelay: time.Millisecond})
	if status, _ := postJSON(t, ts2.URL+"/v1/compress",
		lightator.NewCompressRequest(lightator.EncodeImage(testScene(1, 32, 32)), nil), nil); status != http.StatusNotImplemented {
		t.Errorf("CA-disabled compress got %d, want 501", status)
	}
}

// TestWireRoundTrip pins the lossless codec property the determinism
// contract depends on.
func TestWireRoundTrip(t *testing.T) {
	im := testScene(5, 8, 6)
	back, err := server.DecodeImage(server.EncodeImage(im))
	if err != nil {
		t.Fatal(err)
	}
	if back.H != im.H || back.W != im.W || back.C != im.C {
		t.Fatalf("dims changed: %dx%dx%d", back.H, back.W, back.C)
	}
	for i := range im.Pix {
		if back.Pix[i] != im.Pix[i] {
			t.Fatalf("pixel %d not bit-identical", i)
		}
	}
	if _, err := server.DecodeImage(server.ImageWire{H: 2, W: 2, C: 3, Pix: "!!!"}); err == nil {
		t.Error("invalid base64 accepted")
	}
	if _, err := server.DecodeImage(server.ImageWire{H: 0, W: 2, C: 3}); err == nil {
		t.Error("zero height accepted")
	}
	if _, err := server.DecodeFrame(server.FrameWire{Rows: 4, Cols: 4, Codes: "AAAA"}); err == nil {
		t.Error("short frame payload accepted")
	}
}
