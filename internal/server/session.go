// The streaming-session endpoints: open, frame stream, stats, close.
//
// The frame stream is one long-lived chunked request: NDJSON
// SessionFrame lines in, NDJSON SessionResult lines out (in frame
// order), a SessionSummary record on clean end. Flow control is
// connection-level: the session keeps at most Window frames in flight,
// and a full window pauses the body read, which TCP propagates to the
// client as backpressure — never a 429
// (docs/SERVER.md#backpressure-and-overload).
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"lightator/internal/infer"
	"lightator/internal/sensor"
	"lightator/internal/session"
)

// instrumentStream wraps a streaming handler with the same accounting
// as instrument, but without the MaxBytesReader cap: a frame stream
// legitimately carries an unbounded body (each NDJSON line is still
// bounded by maxBodyBytes). Errors returned after the handler has
// started streaming are reported in-stream, so writeError only fires
// for pre-stream failures.
func (s *Server) instrumentStream(endpoint string, h func(http.ResponseWriter, *http.Request) (int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		start := time.Now()
		status, err := h(w, r)
		if err != nil {
			writeError(w, errStatus(err, status), err)
		}
		switch status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			s.m.reject(endpoint)
		default:
			s.m.observe(endpoint, time.Since(start), status >= 400 && status != statusClientClosed)
		}
	}
}

// handleSessionOpen opens a streaming session (POST /v1/session).
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) (int, error) {
	if s.sessions == nil {
		return http.StatusNotImplemented, apiErr(http.StatusNotImplemented, CodeNotImplemented, "streaming sessions disabled (CAPool = 0)")
	}
	var req SessionRequest
	if err := decodeBody(r, &req); err != nil {
		return decodeStatus(err), err
	}
	// Session traffic survives until the last shed tier.
	if err := s.admitSession(); err != nil {
		return errStatus(err, http.StatusServiceUnavailable), err
	}
	cfg := session.Config{
		Kind:          session.Kind(req.Kind),
		Pipe:          s.backend.Compress,
		Seed:          s.effectiveSeed(req.Seed),
		Window:        s.cfg.SessionWindow,
		Deterministic: s.backend.Deterministic,
	}
	switch cfg.Kind {
	case session.KindCompress:
	case session.KindProcess:
		k, ok := s.backend.KernelObjects[req.Kernel]
		if !ok {
			return http.StatusBadRequest, apiErr(http.StatusBadRequest, CodeUnknownKernel, "unknown kernel %q (GET /v1/kernels lists the registry)", req.Kernel)
		}
		cfg.Kernel = k
	case session.KindInfer:
		m, ok := s.backend.ModelObjects[req.Model]
		if !ok {
			return http.StatusBadRequest, apiErr(http.StatusBadRequest, CodeUnknownModel, "unknown model %q (GET /v1/models lists the registry)", req.Model)
		}
		cfg.Model = m
	default:
		return http.StatusBadRequest, apiErr(http.StatusBadRequest, CodeBadRequest, "unknown session kind %q (want compress, process or infer)", req.Kind)
	}
	if req.Window > 0 {
		cfg.Window = req.Window
	}
	if req.Delta != nil {
		cfg.Delta = session.DeltaConfig{Disable: req.Delta.Disable, Block: req.Delta.Block, Threshold: req.Delta.Threshold}
	}
	if req.IdleTimeoutMS != 0 {
		cfg.IdleTimeout = time.Duration(req.IdleTimeoutMS) * time.Millisecond
	}
	sess, err := s.sessions.Open(cfg)
	switch {
	case err == nil:
	case errors.Is(err, session.ErrClosed):
		return http.StatusServiceUnavailable, errDraining
	case errors.Is(err, session.ErrLimit):
		return http.StatusTooManyRequests, wrapErr(http.StatusTooManyRequests, CodeSessionLimit, "session limit reached", err)
	default:
		return http.StatusBadRequest, wrapErr(http.StatusBadRequest, CodeBadRequest, "invalid session config", err)
	}
	ecfg := sess.Config()
	body, err := json.Marshal(SessionResponse{
		ID:            sess.ID(),
		Kind:          string(ecfg.Kind),
		Kernel:        req.Kernel,
		Model:         req.Model,
		Seed:          ecfg.Seed,
		Window:        ecfg.Window,
		IdleTimeoutMS: ecfg.IdleTimeout.Milliseconds(),
		Delta:         DeltaWire{Disable: ecfg.Delta.Disable, Block: ecfg.Delta.Block, Threshold: ecfg.Delta.Threshold},
		DeltaActive:   sess.DeltaEnabled(),
	})
	if err != nil {
		return http.StatusInternalServerError, err
	}
	writeJSON(w, http.StatusOK, body)
	return http.StatusOK, nil
}

// lookupSession resolves the {id} path segment.
func (s *Server) lookupSession(r *http.Request) (*session.Session, error) {
	if s.sessions == nil {
		return nil, apiErr(http.StatusNotImplemented, CodeNotImplemented, "streaming sessions disabled (CAPool = 0)")
	}
	id := r.PathValue("id")
	sess, ok := s.sessions.Get(id)
	if !ok {
		return nil, apiErr(http.StatusNotFound, CodeSessionNotFound, "unknown session %q", id)
	}
	return sess, nil
}

// handleSessionFrames runs one frame stream
// (POST /v1/session/{id}/frames). The response status is committed by
// the first result line, so anything that goes wrong after that is
// reported as an in-stream record with index -1 and the stream ends.
func (s *Server) handleSessionFrames(w http.ResponseWriter, r *http.Request) (int, error) {
	sess, err := s.lookupSession(r)
	if err != nil {
		return errStatus(err, http.StatusNotFound), err
	}
	if s.draining.Load() {
		return http.StatusServiceUnavailable, errDraining
	}
	if err := s.admitSession(); err != nil {
		return errStatus(err, http.StatusServiceUnavailable), err
	}

	// An HTTP/1.x handler that writes while still reading needs explicit
	// full-duplex mode — otherwise the first result write closes the
	// request body under the frame reader.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
		return http.StatusInternalServerError, wrapErr(http.StatusInternalServerError, CodeInternal, "full-duplex streaming unsupported", err)
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// The reader decodes NDJSON lines into scenes. It owns readErr (a
	// buffered channel, so the send never blocks): a malformed line or a
	// transport read failure is stream-fatal — the seed chain cannot
	// skip the bad frame without renumbering everything behind it.
	in := make(chan *sensor.Image)
	readErr := make(chan error, 1)
	go func() {
		defer close(in)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64<<10), maxBodyBytes)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var f SessionFrame
			dec := json.NewDecoder(bytes.NewReader(line))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&f); err != nil {
				readErr <- wrapErr(http.StatusBadRequest, CodeBadRequest, "malformed frame line", err)
				cancel()
				return
			}
			raw, err := validateImageWire(f.Scene)
			if err != nil {
				readErr <- wrapErr(http.StatusBadRequest, CodeInvalidImage, "invalid frame scene", err)
				cancel()
				return
			}
			select {
			case in <- imageFromRaw(f.Scene, raw):
			case <-ctx.Done():
				return
			}
		}
		if err := sc.Err(); err != nil {
			readErr <- wrapErr(http.StatusBadRequest, CodeBadRequest, "frame stream read failed", err)
			cancel()
		}
	}()

	// The status is committed lazily: the first encoded record writes
	// the 200. Failures before any output (ErrBusy, an instantly-closed
	// session) still get a proper status + JSON error body.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	kind := sess.Config().Kind
	emit := func(fr session.FrameResult) error {
		rec := SessionResult{Index: fr.Index, BlocksTotal: fr.Blocks, BlocksReused: fr.Reused, Degraded: s.degraded()}
		if rec.Degraded {
			s.m.degradedResp()
		}
		if fr.Err != nil {
			eb := errorBody(http.StatusBadRequest, wrapErr(http.StatusBadRequest, CodeFrameFailed, "frame failed", fr.Err))
			rec.Error = &eb
		} else {
			switch kind {
			case session.KindCompress:
				iw := EncodeImage(fr.Compressed)
				rec.Image = &iw
			case session.KindProcess:
				iw := EncodeImage(fr.Plane)
				rec.Plane = &iw
			case session.KindInfer:
				rec.Logits = fr.Logits
				class := infer.Argmax(fr.Logits)
				rec.Class = &class
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	streamErr := sess.Stream(ctx, in, emit)

	// A reader-side failure surfaces as ctx.Err from Stream; the typed
	// cause is waiting on readErr.
	var fatal error
	select {
	case fatal = <-readErr:
	default:
	}
	switch {
	case streamErr == nil && fatal == nil:
		// Clean end: input EOF, all frames emitted. Trailing summary.
		if err := enc.Encode(SessionSummary{Done: true, Stats: sess.Stats()}); err == nil && flusher != nil {
			flusher.Flush()
		}
		return http.StatusOK, nil
	case fatal != nil:
		return s.streamFatal(w, enc, flusher, wrote, errStatus(fatal, http.StatusBadRequest), fatal)
	case errors.Is(streamErr, session.ErrBusy):
		return s.streamFatal(w, enc, flusher, wrote, http.StatusConflict, apiErr(http.StatusConflict, CodeSessionBusy, "a frame stream is already active on session %q", sess.ID()))
	case errors.Is(streamErr, session.ErrClosed):
		code, msg := CodeSessionClosed, "session closed mid-stream"
		if s.draining.Load() {
			code, msg = CodeDraining, "server draining, session closed"
		}
		return s.streamFatal(w, enc, flusher, wrote, http.StatusServiceUnavailable, apiErr(http.StatusServiceUnavailable, code, "%s", msg))
	case errors.Is(streamErr, context.Canceled), errors.Is(streamErr, context.DeadlineExceeded):
		// Client went away mid-stream; nothing left to tell it.
		return statusClientClosed, nil
	default:
		// emit failed: the response writer is broken (client gone).
		return statusClientClosed, nil
	}
}

// streamFatal reports a stream-ending condition: as a plain HTTP error
// while the status is still open, as a final index -1 record once
// results have been written.
func (s *Server) streamFatal(w http.ResponseWriter, enc *json.Encoder, flusher http.Flusher, wrote bool, status int, err error) (int, error) {
	if !wrote {
		return status, err
	}
	eb := errorBody(status, err)
	if encErr := enc.Encode(SessionResult{Index: -1, Error: &eb}); encErr == nil && flusher != nil {
		flusher.Flush()
	}
	return status, nil
}

// handleSessionStats reports a session's live counters
// (GET /v1/session/{id}).
func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) (int, error) {
	sess, err := s.lookupSession(r)
	if err != nil {
		return errStatus(err, http.StatusNotFound), err
	}
	return s.writeSessionStats(w, sess)
}

// handleSessionClose closes a session and reports its final counters
// (DELETE /v1/session/{id}).
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) (int, error) {
	if s.sessions == nil {
		return http.StatusNotImplemented, apiErr(http.StatusNotImplemented, CodeNotImplemented, "streaming sessions disabled (CAPool = 0)")
	}
	id := r.PathValue("id")
	sess, ok := s.sessions.Close(id)
	if !ok {
		return http.StatusNotFound, apiErr(http.StatusNotFound, CodeSessionNotFound, "unknown session %q", id)
	}
	return s.writeSessionStats(w, sess)
}

// writeSessionStats renders the shared stats payload.
func (s *Server) writeSessionStats(w http.ResponseWriter, sess *session.Session) (int, error) {
	body, err := json.Marshal(SessionStatsResponse{
		ID:    sess.ID(),
		Kind:  string(sess.Config().Kind),
		Stats: sess.Stats(),
	})
	if err != nil {
		return http.StatusInternalServerError, err
	}
	writeJSON(w, http.StatusOK, body)
	return http.StatusOK, nil
}
